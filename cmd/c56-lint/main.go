// c56-lint runs the repository's invariant analyzers (internal/lint) over
// Go packages. It is both a standalone multichecker and a `go vet`
// backend:
//
//	c56-lint ./...                                  # whole module
//	c56-lint -tags purego ./...                     # portable build config
//	c56-lint -audit-allows ./...                    # audit //lint:allow directives
//	go vet -vettool=$(command -v c56-lint) ./...    # as a vet tool
//	c56-lint help                                   # describe the analyzers
//
// The seven analyzers enforce conventions that correctness and
// performance work in this repository depend on: XOR through the xorblk
// kernels (xorloop), balanced buffer-pool rentals (bufpoolpair), unsafe
// confined to the gated wide kernel (unsafegate), context threading into
// the parallel engine (ctxflow), constant pkg.snake_case telemetry names
// (metricname), mutex-guarded field access per //c56:guardedby
// annotations (lockcheck), and statically allocation-free //c56:noalloc
// functions (noalloc). Exit status: 0 clean, 1 findings or stale allows,
// 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"code56/internal/lint"
	"code56/internal/lint/driver"
	"code56/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("c56-lint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: c56-lint [-tags list] packages...\n")
		fs.PrintDefaults()
	}
	tags := fs.String("tags", "", "comma-separated build tags for package loading")
	auditAllows := fs.Bool("audit-allows", false, "list every //lint:allow directive; exit 1 if any is stale (its analyzer no longer fires on that line)")
	version := fs.String("V", "", "print version and exit (-V=full, for the go vet handshake)")
	flagsMode := fs.Bool("flags", false, "print the tool's analyzer flags as JSON (go vet handshake)")
	httpAddr := fs.String("http", "", "serve the observability plane (/metrics, /healthz, /debug/pprof) on this address, e.g. :8080")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	_, handle, err := obs.Plane(*httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-lint:", err)
		return 2
	}
	defer handle.Drain()
	if handle != nil {
		fmt.Fprintf(os.Stderr, "observability plane listening on http://%s\n", handle.Addr())
	}

	switch {
	case *version != "":
		if *version != "full" {
			fmt.Fprintf(os.Stderr, "c56-lint: unsupported flag value -V=%s\n", *version)
			return 2
		}
		if err := driver.PrintVersion(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "c56-lint:", err)
			return 2
		}
		return 0
	case *flagsMode:
		driver.PrintFlags(os.Stdout)
		return 0
	}

	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	if rest[0] == "help" {
		for _, a := range lint.Suite() {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}

	if *auditAllows {
		stale, err := driver.AuditAllows(os.Stdout, lint.Suite(), *tags, rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c56-lint:", err)
			return 2
		}
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "c56-lint: %d stale //lint:allow directive(s)\n", stale)
			return 1
		}
		return 0
	}

	// go vet invokes the tool with a single *.cfg argument per package.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		n, err := driver.RunUnitchecker(os.Stderr, lint.Suite(), rest[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "c56-lint:", err)
			return 2
		}
		if n > 0 {
			return 1
		}
		return 0
	}

	n, err := driver.Run(os.Stdout, lint.Suite(), *tags, rest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-lint:", err)
		return 2
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "c56-lint: %d finding(s)\n", n)
		return 1
	}
	return 0
}
