package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	code56 "code56"
	"code56/internal/serve"
	"code56/internal/serve/bwtimetable"
	"code56/internal/telemetry"
)

// ServePhase is one measurement phase of the serve benchmark: client-side
// read and write latency quantiles over the wire.
type ServePhase struct {
	Phase      string  `json:"phase"` // "idle" or "migrating"
	Reads      int     `json:"reads"`
	Writes     int     `json:"writes"`
	ReadP50US  float64 `json:"read_p50_us"`
	ReadP99US  float64 `json:"read_p99_us"`
	WriteP50US float64 `json:"write_p50_us"`
	WriteP99US float64 `json:"write_p99_us"`
	Errors     int     `json:"errors"`
	// MigrationStripesDone counts stripes converted while this phase's
	// ops ran — nonzero in the migrating phase proves the latencies were
	// really measured under live conversion.
	MigrationStripesDone int64 `json:"migration_stripes_done"`
}

// ServeReport is BENCH_serve.json's top-level object: the reproduction's
// under-load evidence that migration runs online behind foreground I/O.
type ServeReport struct {
	BlockSize   int   `json:"block_size"`
	Disks       int   `json:"disks"`
	Stripes     int64 `json:"stripes"`
	Blocks      int64 `json:"blocks"`
	Clients     int   `json:"clients"`
	OpsPerPhase int   `json:"ops_per_phase"`
	// Timetable is the active migration bandwidth schedule during the
	// migrating phase (bwtimetable grammar).
	Timetable        string       `json:"timetable"`
	MigrationSeconds float64      `json:"migration_seconds"`
	Phases           []ServePhase `json:"phases"`
}

// latRec collects one phase's client-observed latencies.
type latRec struct {
	mu     sync.Mutex
	reads  []float64 // microseconds
	writes []float64
	errs   int
}

func (l *latRec) read(us float64)  { l.mu.Lock(); l.reads = append(l.reads, us); l.mu.Unlock() }
func (l *latRec) write(us float64) { l.mu.Lock(); l.writes = append(l.writes, us); l.mu.Unlock() }
func (l *latRec) err()             { l.mu.Lock(); l.errs++; l.mu.Unlock() }

// quantile returns the nearest-rank q-quantile of s (sorted in place);
// 0 when empty. Nearest-rank keeps small-sample p99s honest: the tail
// observation is reported, not interpolated away.
func quantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func (l *latRec) phase(name string, stripesDone int64) ServePhase {
	l.mu.Lock()
	defer l.mu.Unlock()
	return ServePhase{
		Phase:                name,
		Reads:                len(l.reads),
		Writes:               len(l.writes),
		ReadP50US:            quantile(l.reads, 0.50),
		ReadP99US:            quantile(l.reads, 0.99),
		WriteP50US:           quantile(l.writes, 0.50),
		WriteP99US:           quantile(l.writes, 0.99),
		Errors:               l.errs,
		MigrationStripesDone: stripesDone,
	}
}

// loadClient drives ops mixed 3:1 read:write against one volume URL.
type loadClient struct {
	base      string // http://addr/v1/t/<tenant>/v/<vol>
	blockSize int
	blocks    int64
	client    *http.Client
}

func (c *loadClient) do(rng *rand.Rand, rec *latRec) {
	blk := rng.Int63n(c.blocks)
	url := fmt.Sprintf("%s/b/%d", c.base, blk)
	start := time.Now()
	if rng.Intn(4) == 0 {
		payload := make([]byte, c.blockSize)
		rng.Read(payload)
		req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(payload))
		if err != nil {
			rec.err()
			return
		}
		resp, err := c.client.Do(req)
		if err != nil {
			rec.err()
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			rec.err()
			return
		}
		rec.write(float64(time.Since(start)) / float64(time.Microsecond))
		return
	}
	resp, err := c.client.Get(url)
	if err != nil {
		rec.err()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rec.err()
		return
	}
	rec.read(float64(time.Since(start)) / float64(time.Microsecond))
}

// runOps fires total ops from clients concurrent goroutines.
func (c *loadClient) runOps(clients, total int, seed int64, rec *latRec) {
	var wg sync.WaitGroup
	per := total / clients
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(n)))
			for j := 0; j < per; j++ {
				c.do(rng, rec)
			}
		}(i)
	}
	wg.Wait()
}

// runServe is the self-contained under-load benchmark: it boots a real
// serve.Server on loopback, measures wire latency idle, then starts an
// online migration shaped by the given bandwidth timetable and measures
// again while stripes convert, writing BENCH_serve.json.
func runServe(out string, disks int, stripes int64, block, clients, ops int, bw string) error {
	tt, err := bwtimetable.Parse(bw)
	if err != nil {
		return err
	}
	p := disks + 1
	rows := stripes * int64(p-1)
	blocks := rows * int64(disks-1)

	r5, err := code56.NewRAID5Array(disks,
		code56.WithBlockSize(block),
		code56.WithLayout(code56.LeftAsymmetric))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(11))
	buf := make([]byte, block)
	for L := int64(0); L < blocks; L++ {
		rng.Read(buf)
		if err := r5.WriteBlock(L, buf); err != nil {
			return err
		}
	}

	reg := telemetry.NewRegistry()
	srv := serve.NewServer(reg)
	tenant, err := srv.AddTenant("bench", serve.QoS{})
	if err != nil {
		return err
	}
	vol, err := tenant.AddVolume("v0", r5, blocks)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(serve.Limit(ln, 64, reg))
	defer hs.Close()

	lc := &loadClient{
		base:      fmt.Sprintf("http://%s/v1/t/bench/v/v0", ln.Addr()),
		blockSize: block,
		blocks:    blocks,
		client:    &http.Client{Timeout: 30 * time.Second},
	}

	rep := ServeReport{
		BlockSize: block, Disks: disks, Stripes: stripes, Blocks: blocks,
		Clients: clients, OpsPerPhase: ops, Timetable: tt.String(),
	}

	// Phase 1: idle — no migration running.
	idle := &latRec{}
	lc.runOps(clients, ops, 21, idle)
	rep.Phases = append(rep.Phases, idle.phase("idle", 0))

	// Phase 2: the same load during a live, timetable-shaped migration.
	mig, err := code56.NewMigrator(r5, rows)
	if err != nil {
		return err
	}
	vol.SetIO(serve.MigratorIO{M: mig})
	ctrl := bwtimetable.NewController(tt, mig, mig.StripeConversionBytes())
	ctrl.Apply()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ctrl.Run(ctx)
	migStart := time.Now()
	if err := mig.Start(); err != nil {
		return err
	}
	before, _ := mig.Progress()
	under := &latRec{}
	lc.runOps(clients, ops, 22, under)
	after, total := mig.Progress()
	rep.Phases = append(rep.Phases, under.phase("migrating", after-before))

	// Let the rest of the conversion finish unthrottled, then verify it.
	cancel()
	mig.SetThrottle(0)
	if err := mig.Wait(); err != nil {
		return err
	}
	rep.MigrationSeconds = time.Since(migStart).Seconds()
	if done, _ := mig.Progress(); done != total {
		return fmt.Errorf("migration finished at %d/%d stripes", done, total)
	}
	r6, err := mig.Result()
	if err != nil {
		return err
	}
	for st := int64(0); st < stripes; st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("stripe %d inconsistent after under-load migration", st)
		}
	}

	if err := writeJSON(out, rep); err != nil {
		return err
	}
	if out != "-" {
		idleP, underP := rep.Phases[0], rep.Phases[1]
		fmt.Printf("wrote serve bench to %s: read p99 %0.fus idle -> %0.fus migrating (%d stripes converted under load, timetable %q)\n",
			out, idleP.ReadP99US, underP.ReadP99US, underP.MigrationStripesDone, rep.Timetable)
	}
	return nil
}

// runLoadGen drives an already-running c56-serve for the given duration —
// the CI end-to-end smoke's foreground traffic — and prints a ServePhase
// JSON object to stdout.
func runLoadGen(baseURL, tenant, volName string, clients int, d time.Duration) error {
	infoURL := fmt.Sprintf("%s/v1/t/%s/v/%s", baseURL, tenant, volName)
	resp, err := http.Get(infoURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", infoURL, resp.StatusCode)
	}
	var info struct {
		BlockSize int   `json:"block_size"`
		Blocks    int64 `json:"blocks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return err
	}
	lc := &loadClient{
		base:      fmt.Sprintf("%s/v1/t/%s/v/%s", baseURL, tenant, volName),
		blockSize: info.BlockSize,
		blocks:    info.Blocks,
		client:    &http.Client{Timeout: 30 * time.Second},
	}
	rec := &latRec{}
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(31 + int64(n)))
			for time.Now().Before(stop) {
				lc.do(rng, rec)
			}
		}(i)
	}
	wg.Wait()
	ph := rec.phase("load", 0)
	if ph.Reads+ph.Writes == 0 {
		return fmt.Errorf("load generator completed no operations against %s", baseURL)
	}
	return writeJSON("-", ph)
}
