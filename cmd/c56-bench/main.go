// Command c56-bench measures full-stripe encoding for Code 5-6 against the
// paper's RAID-6 baselines (RDP, EVENODD) and writes the results as JSON —
// the machine-readable companion to the paper's Fig. 13 computation-cost
// comparison.
//
// It also sweeps the parallel stripe engine: full-array encodes at
// 1, 2, 4 and 8 workers, written to BENCH_parallel.json together with the
// host's core count (scaling beyond 1× needs GOMAXPROCS > 1).
//
// Usage:
//
//	c56-bench                        # writes BENCH_encode.json + BENCH_parallel.json
//	c56-bench -out - -p 7 -block 8192 -parallel-out ''
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	code56 "code56"
	"code56/internal/layout"
)

// Result is one code's encoding measurement.
type Result struct {
	Code  string `json:"code"`
	Disks int    `json:"disks"`
	// DataElements is the number of data blocks per stripe.
	DataElements int `json:"data_elements"`
	// XORsPerElement is the encoding cost: block XOR operations per data
	// block (the paper's Fig. 13 metric, here measured, not derived).
	XORsPerElement float64 `json:"xors_per_element"`
	// MBPerSec is the encoding throughput over the stripe's data bytes.
	MBPerSec float64 `json:"mb_per_s"`
	// Iterations is how many full-stripe encodes the sample averaged.
	Iterations int `json:"iterations"`
}

// Report is the file's top-level object.
type Report struct {
	BlockSize int      `json:"block_size"`
	P         int      `json:"p"`
	Results   []Result `json:"results"`
}

// ParallelResult is one worker count's full-array encode measurement.
type ParallelResult struct {
	Workers    int     `json:"workers"`
	MBPerSec   float64 `json:"mb_per_s"`
	Speedup    float64 `json:"speedup_vs_1"`
	Iterations int     `json:"iterations"`
}

// ParallelReport is BENCH_parallel.json's top-level object. GOMAXPROCS and
// NumCPU qualify the speedup column: on a single-core host every worker
// count time-slices one CPU and Speedup stays ~1.
type ParallelReport struct {
	Code       string           `json:"code"`
	BlockSize  int              `json:"block_size"`
	P          int              `json:"p"`
	Stripes    int64            `json:"stripes"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Results    []ParallelResult `json:"results"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_encode.json", "output file ('-' for stdout)")
		block    = flag.Int("block", 4096, "block size in bytes")
		p        = flag.Int("p", 5, "prime parameter")
		minTime  = flag.Duration("mintime", 200*time.Millisecond, "minimum measurement time per code")
		parOut   = flag.String("parallel-out", "BENCH_parallel.json", "parallel sweep output file ('-' for stdout, '' to skip)")
		parP     = flag.Int("parallel-p", 13, "prime parameter for the parallel sweep")
		parBlock = flag.Int("parallel-block", 16384, "block size for the parallel sweep")
		stripes  = flag.Int64("parallel-stripes", 64, "stripes per full-array encode in the parallel sweep")
	)
	flag.Parse()
	if err := run(*out, *block, *p, *minTime); err != nil {
		fmt.Fprintln(os.Stderr, "c56-bench:", err)
		os.Exit(1)
	}
	if *parOut != "" {
		if err := runParallel(*parOut, *parBlock, *parP, *stripes, *minTime); err != nil {
			fmt.Fprintln(os.Stderr, "c56-bench:", err)
			os.Exit(1)
		}
	}
}

func run(out string, block, p int, minTime time.Duration) error {
	c56, err := code56.New(p)
	if err != nil {
		return err
	}
	rdp, err := code56.NewRDP(p)
	if err != nil {
		return err
	}
	eo, err := code56.NewEVENODD(p)
	if err != nil {
		return err
	}
	rep := Report{BlockSize: block, P: p}
	for _, c := range []struct {
		name string
		code code56.Code
	}{
		{fmt.Sprintf("code56-p%d", p), c56},
		{fmt.Sprintf("rdp-p%d", p), rdp},
		{fmt.Sprintf("evenodd-p%d", p), eo},
	} {
		rep.Results = append(rep.Results, measure(c.name, c.code, block, minTime))
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote %d results to %s\n", len(rep.Results), out)
	}
	return nil
}

// runParallel measures full-array Code 5-6 encodes through the parallel
// stripe engine at 1, 2, 4 and 8 workers and writes BENCH_parallel.json.
func runParallel(out string, block, p int, stripes int64, minTime time.Duration) error {
	code, err := code56.NewCode(p)
	if err != nil {
		return err
	}
	a, err := code56.NewRAID6Array(code, code56.WithBlockSize(block))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	blocks := int64(a.DataPerStripe()) * stripes
	b := make([]byte, block)
	for L := int64(0); L < blocks; L++ {
		rng.Read(b)
		if err := a.WriteBlock(L, b); err != nil {
			return err
		}
	}
	rep := ParallelReport{
		Code:       fmt.Sprintf("code56-p%d", p),
		BlockSize:  block,
		P:          p,
		Stripes:    stripes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	ctx := context.Background()
	dataBytes := float64(blocks) * float64(block)
	for _, w := range []int{1, 2, 4, 8} {
		// Warm-up pass, then measure until minTime has elapsed.
		if err := code56.EncodeArrayStripes(ctx, a, stripes, code56.WithWorkers(w)); err != nil {
			return err
		}
		iters := 0
		start := time.Now()
		for time.Since(start) < minTime {
			if err := code56.EncodeArrayStripes(ctx, a, stripes, code56.WithWorkers(w)); err != nil {
				return err
			}
			iters++
		}
		elapsed := time.Since(start)
		r := ParallelResult{
			Workers:    w,
			MBPerSec:   float64(iters) * dataBytes / 1e6 / elapsed.Seconds(),
			Iterations: iters,
		}
		if len(rep.Results) > 0 {
			r.Speedup = r.MBPerSec / rep.Results[0].MBPerSec
		} else {
			r.Speedup = 1
		}
		rep.Results = append(rep.Results, r)
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote parallel sweep (%d worker counts, GOMAXPROCS=%d) to %s\n",
			len(rep.Results), rep.GOMAXPROCS, out)
	}
	return nil
}

// measure encodes full stripes until minTime has elapsed and averages.
func measure(name string, code code56.Code, block int, minTime time.Duration) Result {
	s := layout.NewStripe(code.Geometry(), block)
	s.FillRandom(code, rand.New(rand.NewSource(1)))
	data := len(layout.DataElements(code))
	xors := layout.Encode(code, s) // warm-up; XOR count is deterministic
	iters := 0
	start := time.Now()
	for time.Since(start) < minTime {
		layout.Encode(code, s)
		iters++
	}
	elapsed := time.Since(start)
	bytesDone := float64(iters) * float64(data*block)
	return Result{
		Code:           name,
		Disks:          code.Geometry().Cols,
		DataElements:   data,
		XORsPerElement: float64(xors) / float64(data),
		MBPerSec:       bytesDone / 1e6 / elapsed.Seconds(),
		Iterations:     iters,
	}
}
