// Command c56-bench measures full-stripe encoding for Code 5-6 against the
// paper's RAID-6 baselines (RDP, EVENODD) and writes the results as JSON —
// the machine-readable companion to the paper's Fig. 13 computation-cost
// comparison.
//
// It also measures the XOR kernel hierarchy (wide / word / byte paths of
// internal/xorblk, written to BENCH_xor.json) and sweeps the parallel
// stripe engine: full-array encodes at 1, 2, 4 and 8 workers, each worker
// count sampled several times with the median reported, written to
// BENCH_parallel.json together with the host's core count (scaling beyond
// 1× needs GOMAXPROCS > 1).
//
// Usage:
//
//	c56-bench          # writes BENCH_encode.json + BENCH_xor.json + BENCH_parallel.json
//	c56-bench -out - -p 7 -block 8192 -xor-out '' -parallel-out ''
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	code56 "code56"
	"code56/internal/layout"
	"code56/internal/obs"
	"code56/internal/xorblk"
)

// Result is one code's encoding measurement.
type Result struct {
	Code  string `json:"code"`
	Disks int    `json:"disks"`
	// DataElements is the number of data blocks per stripe.
	DataElements int `json:"data_elements"`
	// XORsPerElement is the encoding cost: block XOR operations per data
	// block (the paper's Fig. 13 metric, here measured, not derived).
	XORsPerElement float64 `json:"xors_per_element"`
	// MBPerSec is the encoding throughput over the stripe's data bytes.
	MBPerSec float64 `json:"mb_per_s"`
	// Iterations is how many full-stripe encodes the sample averaged.
	Iterations int `json:"iterations"`
}

// Report is the file's top-level object.
type Report struct {
	BlockSize int      `json:"block_size"`
	P         int      `json:"p"`
	Results   []Result `json:"results"`
}

// ParallelResult is one worker count's full-array encode measurement.
// MBPerSec is the median of Samples independent measurement windows;
// AllocsPerStripe is heap allocations per stripe encode across all windows
// (the zero-allocation hot path keeps it near 0 in steady state).
type ParallelResult struct {
	Workers         int     `json:"workers"`
	MBPerSec        float64 `json:"mb_per_s"`
	Speedup         float64 `json:"speedup_vs_1"`
	Iterations      int     `json:"iterations"`
	Samples         int     `json:"samples"`
	AllocsPerStripe float64 `json:"allocs_per_stripe"`
}

// ParallelReport is BENCH_parallel.json's top-level object. GOMAXPROCS and
// NumCPU qualify the speedup column: on a single-core host every worker
// count time-slices one CPU and Speedup stays ~1.
type ParallelReport struct {
	Code       string           `json:"code"`
	BlockSize  int              `json:"block_size"`
	P          int              `json:"p"`
	Stripes    int64            `json:"stripes"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Results    []ParallelResult `json:"results"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_encode.json", "output file ('-' for stdout)")
		block    = flag.Int("block", 4096, "block size in bytes")
		p        = flag.Int("p", 5, "prime parameter")
		minTime  = flag.Duration("mintime", 200*time.Millisecond, "minimum measurement time per code")
		xorOut   = flag.String("xor-out", "BENCH_xor.json", "XOR kernel sweep output file ('-' for stdout, '' to skip)")
		parOut   = flag.String("parallel-out", "BENCH_parallel.json", "parallel sweep output file ('-' for stdout, '' to skip)")
		parP     = flag.Int("parallel-p", 13, "prime parameter for the parallel sweep")
		parBlock = flag.Int("parallel-block", 16384, "block size for the parallel sweep")
		stripes  = flag.Int64("parallel-stripes", 64, "stripes per full-array encode in the parallel sweep")
		reps     = flag.Int("parallel-reps", 5, "measurement windows per worker count (median reported, min 3)")
		maxprocs = flag.Int("maxprocs", 0, "GOMAXPROCS for the sweeps (0 = all CPUs)")
		backend  = flag.String("backend", "", "block-store backend for the parallel sweep's array: 'mem:' (default) or 'file:<dir>' to measure over durable image files")
		httpAddr = flag.String("http", "", "serve the observability plane (/metrics, /healthz, /debug/pprof) on this address, e.g. :8080")

		serveOut     = flag.String("serve-out", "", "under-load serve benchmark output file ('-' for stdout, '' to skip): wire p50/p99 latency idle vs during a timetable-shaped online migration")
		serveDisks   = flag.Int("serve-disks", 4, "serve bench: RAID-5 disks (disks+1 must be prime)")
		serveStripes = flag.Int64("serve-stripes", 64, "serve bench: Code 5-6 stripes to migrate")
		serveBlock   = flag.Int("serve-block", 4096, "serve bench: block size in bytes")
		serveClients = flag.Int("serve-clients", 4, "serve bench / load gen: concurrent client goroutines")
		serveOps     = flag.Int("serve-ops", 2000, "serve bench: operations per measurement phase")
		serveBW      = flag.String("serve-bw", "1M", "serve bench: migration bandwidth timetable during the under-load phase (bwtimetable grammar)")

		loadURL      = flag.String("load-url", "", "load-generator mode: drive this running c56-serve base URL (e.g. http://127.0.0.1:8080) instead of benchmarking in-process")
		loadTenant   = flag.String("load-tenant", "demo", "load gen: tenant to drive")
		loadVol      = flag.String("load-vol", "vol0", "load gen: volume to drive")
		loadDuration = flag.Duration("load-duration", 5*time.Second, "load gen: how long to run")
	)
	flag.Parse()
	if *loadURL != "" {
		if err := runLoadGen(*loadURL, *loadTenant, *loadVol, *serveClients, *loadDuration); err != nil {
			fmt.Fprintln(os.Stderr, "c56-bench:", err)
			os.Exit(1)
		}
		return
	}
	_, handle, err := obs.Plane(*httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-bench:", err)
		os.Exit(1)
	}
	defer handle.Drain()
	if handle != nil {
		fmt.Fprintf(os.Stderr, "observability plane listening on http://%s\n", handle.Addr())
	}
	// Pin GOMAXPROCS explicitly so the recorded value reflects the sweep's
	// real parallelism even when the environment (cgroup limits, an
	// inherited GOMAXPROCS env var) would silently cap it.
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	} else {
		runtime.GOMAXPROCS(runtime.NumCPU())
	}
	if err := run(*out, *block, *p, *minTime); err != nil {
		fmt.Fprintln(os.Stderr, "c56-bench:", err)
		os.Exit(1)
	}
	if *xorOut != "" {
		if err := runXor(*xorOut, *minTime); err != nil {
			fmt.Fprintln(os.Stderr, "c56-bench:", err)
			os.Exit(1)
		}
	}
	if *parOut != "" {
		if err := runParallel(*parOut, *parBlock, *parP, *stripes, *minTime, *reps, *backend); err != nil {
			fmt.Fprintln(os.Stderr, "c56-bench:", err)
			os.Exit(1)
		}
	}
	if *serveOut != "" {
		if err := runServe(*serveOut, *serveDisks, *serveStripes, *serveBlock, *serveClients, *serveOps, *serveBW); err != nil {
			fmt.Fprintln(os.Stderr, "c56-bench:", err)
			os.Exit(1)
		}
	}
}

// XorResult is one (path, size) throughput sample of the XOR kernel sweep.
type XorResult struct {
	// Path names the kernel: the compiled fast path (xorblk.KernelName,
	// "wide" unless built with -tags purego), "word", or "byte".
	Path string `json:"path"`
	Size int    `json:"size"`
	// MBPerSec counts destination bytes processed (one read+xor+write pass).
	MBPerSec float64 `json:"mb_per_s"`
	// SpeedupVsWord is this path's throughput over the word path's at the
	// same size (the acceptance metric for the wide kernel).
	SpeedupVsWord float64 `json:"speedup_vs_word"`
	Iterations    int     `json:"iterations"`
}

// XorReport is BENCH_xor.json's top-level object.
type XorReport struct {
	// Kernel is the fast path compiled into this binary.
	Kernel  string      `json:"kernel"`
	Results []XorResult `json:"results"`
}

// runXor measures dst ^= src throughput for each kernel path across block
// sizes and writes BENCH_xor.json.
func runXor(out string, minTime time.Duration) error {
	rep := XorReport{Kernel: xorblk.KernelName}
	paths := []struct {
		name string
		fn   func(dst, src []byte)
	}{
		{xorblk.KernelName, xorblk.Xor},
		{"word", xorblk.XorWords},
		{"byte", xorblk.XorBytes},
	}
	for _, size := range []int{1024, 4096, 16384, 65536} {
		rng := rand.New(rand.NewSource(3))
		dst := make([]byte, size)
		src := make([]byte, size)
		rng.Read(dst)
		rng.Read(src)
		var wordMB float64
		base := len(rep.Results)
		for _, p := range paths {
			p.fn(dst, src) // warm-up
			iters := 0
			start := time.Now()
			for time.Since(start) < minTime {
				p.fn(dst, src)
				iters++
			}
			elapsed := time.Since(start)
			mb := float64(iters) * float64(size) / 1e6 / elapsed.Seconds()
			if p.name == "word" {
				wordMB = mb
			}
			rep.Results = append(rep.Results, XorResult{
				Path: p.name, Size: size, MBPerSec: mb, Iterations: iters,
			})
		}
		for i := base; i < len(rep.Results); i++ {
			rep.Results[i].SpeedupVsWord = rep.Results[i].MBPerSec / wordMB
		}
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote XOR kernel sweep (%s fast path, %d results) to %s\n",
			rep.Kernel, len(rep.Results), out)
	}
	return nil
}

// writeJSON writes v indented to path ('-' for stdout).
func writeJSON(path string, v any) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func run(out string, block, p int, minTime time.Duration) error {
	c56, err := code56.New(p)
	if err != nil {
		return err
	}
	rdp, err := code56.NewRDP(p)
	if err != nil {
		return err
	}
	eo, err := code56.NewEVENODD(p)
	if err != nil {
		return err
	}
	rep := Report{BlockSize: block, P: p}
	for _, c := range []struct {
		name string
		code code56.Code
	}{
		{fmt.Sprintf("code56-p%d", p), c56},
		{fmt.Sprintf("rdp-p%d", p), rdp},
		{fmt.Sprintf("evenodd-p%d", p), eo},
	} {
		rep.Results = append(rep.Results, measure(c.name, c.code, block, minTime))
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote %d results to %s\n", len(rep.Results), out)
	}
	return nil
}

// runParallel measures full-array Code 5-6 encodes through the parallel
// stripe engine at 1, 2, 4 and 8 workers and writes BENCH_parallel.json.
// Each worker count runs reps independent measurement windows (each at
// least minTime long) and reports the median throughput, plus heap
// allocations per stripe encode taken from runtime.MemStats.
func runParallel(out string, block, p int, stripes int64, minTime time.Duration, reps int, backend string) error {
	if reps < 3 {
		reps = 3
	}
	code, err := code56.NewCode(p)
	if err != nil {
		return err
	}
	a, err := code56.NewRAID6Array(code,
		code56.WithBackend(backend), code56.WithBlockSize(block))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	blocks := int64(a.DataPerStripe()) * stripes
	b := make([]byte, block)
	for L := int64(0); L < blocks; L++ {
		rng.Read(b)
		if err := a.WriteBlock(L, b); err != nil {
			return err
		}
	}
	rep := ParallelReport{
		Code:       fmt.Sprintf("code56-p%d", p),
		BlockSize:  block,
		P:          p,
		Stripes:    stripes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	ctx := context.Background()
	dataBytes := float64(blocks) * float64(block)
	for _, w := range []int{1, 2, 4, 8} {
		encode := func() error {
			return code56.EncodeArrayStripes(ctx, a, stripes, code56.WithWorkers(w))
		}
		// Warm-up pass primes the buffer pools so the measured windows see
		// steady state, then reps independent windows of at least minTime.
		if err := encode(); err != nil {
			return err
		}
		var (
			samples     []float64
			totalIters  int
			totalAllocs uint64
			ms          runtime.MemStats
		)
		for win := 0; win < reps; win++ {
			runtime.ReadMemStats(&ms)
			allocsBefore := ms.Mallocs
			iters := 0
			start := time.Now()
			for iters == 0 || time.Since(start) < minTime {
				if err := encode(); err != nil {
					return err
				}
				iters++
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&ms)
			samples = append(samples, float64(iters)*dataBytes/1e6/elapsed.Seconds())
			totalIters += iters
			totalAllocs += ms.Mallocs - allocsBefore
		}
		r := ParallelResult{
			Workers:         w,
			MBPerSec:        median(samples),
			Iterations:      totalIters,
			Samples:         reps,
			AllocsPerStripe: float64(totalAllocs) / float64(int64(totalIters)*stripes),
		}
		if len(rep.Results) > 0 {
			r.Speedup = r.MBPerSec / rep.Results[0].MBPerSec
		} else {
			r.Speedup = 1
		}
		rep.Results = append(rep.Results, r)
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote parallel sweep (%d worker counts, %d windows each, GOMAXPROCS=%d) to %s\n",
			len(rep.Results), reps, rep.GOMAXPROCS, out)
	}
	return nil
}

// median returns the middle value of s (mean of the middle two for even
// lengths). s is sorted in place.
func median(s []float64) float64 {
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// measure encodes full stripes until minTime has elapsed and averages.
func measure(name string, code code56.Code, block int, minTime time.Duration) Result {
	s := layout.NewStripe(code.Geometry(), block)
	s.FillRandom(code, rand.New(rand.NewSource(1)))
	data := len(layout.DataElements(code))
	xors := layout.Encode(code, s) // warm-up; XOR count is deterministic
	iters := 0
	start := time.Now()
	for time.Since(start) < minTime {
		layout.Encode(code, s)
		iters++
	}
	elapsed := time.Since(start)
	bytesDone := float64(iters) * float64(data*block)
	return Result{
		Code:           name,
		Disks:          code.Geometry().Cols,
		DataElements:   data,
		XORsPerElement: float64(xors) / float64(data),
		MBPerSec:       bytesDone / 1e6 / elapsed.Seconds(),
		Iterations:     iters,
	}
}
