// Command c56-bench measures full-stripe encoding for Code 5-6 against the
// paper's RAID-6 baselines (RDP, EVENODD) and writes the results as JSON —
// the machine-readable companion to the paper's Fig. 13 computation-cost
// comparison.
//
// It also measures the XOR kernel hierarchy (every tier the host can run —
// asm/wide/word/byte, per xorblk.Tiers() — written to BENCH_xor.json with
// sizes reaching past the non-temporal store threshold) and sweeps the
// parallel stripe engine: full-array encodes at 1, 2, 4 and 8 workers in
// both per-stripe and interleaved batch modes, each sampled several times
// with the median reported, written to BENCH_parallel.json. Both reports
// carry the host topology (NumCPU, GOMAXPROCS, selected kernel, detected
// CPU features) so throughput numbers are interpretable after the fact.
//
// Usage:
//
//	c56-bench          # writes BENCH_encode.json + BENCH_xor.json + BENCH_parallel.json
//	c56-bench -out - -p 7 -block 8192 -xor-out '' -parallel-out ''
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	code56 "code56"
	"code56/internal/layout"
	"code56/internal/obs"
	"code56/internal/xorblk"
)

// Result is one code's encoding measurement.
type Result struct {
	Code  string `json:"code"`
	Disks int    `json:"disks"`
	// DataElements is the number of data blocks per stripe.
	DataElements int `json:"data_elements"`
	// XORsPerElement is the encoding cost: block XOR operations per data
	// block (the paper's Fig. 13 metric, here measured, not derived).
	XORsPerElement float64 `json:"xors_per_element"`
	// MBPerSec is the encoding throughput over the stripe's data bytes.
	MBPerSec float64 `json:"mb_per_s"`
	// Iterations is how many full-stripe encodes the sample averaged.
	Iterations int `json:"iterations"`
}

// Report is the file's top-level object.
type Report struct {
	BlockSize int      `json:"block_size"`
	P         int      `json:"p"`
	Results   []Result `json:"results"`
}

// Topology records the host parallelism and the XOR fast path this binary
// selected at init — the context every throughput number needs: speedups
// flatten when GOMAXPROCS is 1, and per-size kernel throughput is only
// comparable between hosts running the same tier.
type Topology struct {
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Kernel     string   `json:"kernel"`
	Features   []string `json:"features,omitempty"`
}

// topo snapshots the host topology for a report header.
func topo() Topology {
	return Topology{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Kernel:     xorblk.KernelName,
		Features:   xorblk.Features(),
	}
}

// ParallelResult is one (mode, worker count) full-array encode measurement.
// MBPerSec is the median of Samples independent measurement windows;
// AllocsPerStripe is heap allocations per stripe encode across all windows
// (the zero-allocation hot path keeps it near 0 in steady state). Speedup
// is relative to the same mode at 1 worker.
type ParallelResult struct {
	// Mode is "per-stripe" (EncodeArrayStripes: every chain of a stripe,
	// then the next stripe) or "interleaved" (EncodeArrayStripesInterleaved:
	// one chain across a whole claimed batch, so column accesses stream).
	Mode            string  `json:"mode"`
	Workers         int     `json:"workers"`
	MBPerSec        float64 `json:"mb_per_s"`
	Speedup         float64 `json:"speedup_vs_1"`
	Iterations      int     `json:"iterations"`
	Samples         int     `json:"samples"`
	AllocsPerStripe float64 `json:"allocs_per_stripe"`
}

// ParallelReport is BENCH_parallel.json's top-level object.
type ParallelReport struct {
	Topology
	Code      string           `json:"code"`
	BlockSize int              `json:"block_size"`
	P         int              `json:"p"`
	Stripes   int64            `json:"stripes"`
	Results   []ParallelResult `json:"results"`
}

func main() {
	var (
		out      = flag.String("out", "BENCH_encode.json", "output file ('-' for stdout)")
		block    = flag.Int("block", 4096, "block size in bytes")
		p        = flag.Int("p", 5, "prime parameter")
		minTime  = flag.Duration("mintime", 200*time.Millisecond, "minimum measurement time per code")
		xorOut   = flag.String("xor-out", "BENCH_xor.json", "XOR kernel sweep output file ('-' for stdout, '' to skip)")
		parOut   = flag.String("parallel-out", "BENCH_parallel.json", "parallel sweep output file ('-' for stdout, '' to skip)")
		parP     = flag.Int("parallel-p", 13, "prime parameter for the parallel sweep")
		parBlock = flag.Int("parallel-block", 16384, "block size for the parallel sweep")
		stripes  = flag.Int64("parallel-stripes", 64, "stripes per full-array encode in the parallel sweep")
		reps     = flag.Int("parallel-reps", 5, "measurement windows per worker count (median reported, min 3)")
		maxprocs = flag.Int("maxprocs", 0, "GOMAXPROCS for the sweeps (0 = all CPUs)")
		backend  = flag.String("backend", "", "block-store backend for the parallel sweep's array: 'mem:' (default) or 'file:<dir>' to measure over durable image files")
		httpAddr = flag.String("http", "", "serve the observability plane (/metrics, /healthz, /debug/pprof) on this address, e.g. :8080")

		serveOut     = flag.String("serve-out", "", "under-load serve benchmark output file ('-' for stdout, '' to skip): wire p50/p99 latency idle vs during a timetable-shaped online migration")
		serveDisks   = flag.Int("serve-disks", 4, "serve bench: RAID-5 disks (disks+1 must be prime)")
		serveStripes = flag.Int64("serve-stripes", 64, "serve bench: Code 5-6 stripes to migrate")
		serveBlock   = flag.Int("serve-block", 4096, "serve bench: block size in bytes")
		serveClients = flag.Int("serve-clients", 4, "serve bench / load gen: concurrent client goroutines")
		serveOps     = flag.Int("serve-ops", 2000, "serve bench: operations per measurement phase")
		serveBW      = flag.String("serve-bw", "1M", "serve bench: migration bandwidth timetable during the under-load phase (bwtimetable grammar)")

		loadURL      = flag.String("load-url", "", "load-generator mode: drive this running c56-serve base URL (e.g. http://127.0.0.1:8080) instead of benchmarking in-process")
		loadTenant   = flag.String("load-tenant", "demo", "load gen: tenant to drive")
		loadVol      = flag.String("load-vol", "vol0", "load gen: volume to drive")
		loadDuration = flag.Duration("load-duration", 5*time.Second, "load gen: how long to run")
	)
	flag.Parse()
	if *loadURL != "" {
		if err := runLoadGen(*loadURL, *loadTenant, *loadVol, *serveClients, *loadDuration); err != nil {
			fmt.Fprintln(os.Stderr, "c56-bench:", err)
			os.Exit(1)
		}
		return
	}
	_, handle, err := obs.Plane(*httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-bench:", err)
		os.Exit(1)
	}
	defer handle.Drain()
	if handle != nil {
		fmt.Fprintf(os.Stderr, "observability plane listening on http://%s\n", handle.Addr())
	}
	// Pin GOMAXPROCS explicitly so the recorded value reflects the sweep's
	// real parallelism even when the environment (cgroup limits, an
	// inherited GOMAXPROCS env var) would silently cap it.
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	} else {
		runtime.GOMAXPROCS(runtime.NumCPU())
	}
	if err := run(*out, *block, *p, *minTime); err != nil {
		fmt.Fprintln(os.Stderr, "c56-bench:", err)
		os.Exit(1)
	}
	if *xorOut != "" {
		if err := runXor(*xorOut, *minTime); err != nil {
			fmt.Fprintln(os.Stderr, "c56-bench:", err)
			os.Exit(1)
		}
	}
	if *parOut != "" {
		if err := runParallel(*parOut, *parBlock, *parP, *stripes, *minTime, *reps, *backend); err != nil {
			fmt.Fprintln(os.Stderr, "c56-bench:", err)
			os.Exit(1)
		}
	}
	if *serveOut != "" {
		if err := runServe(*serveOut, *serveDisks, *serveStripes, *serveBlock, *serveClients, *serveOps, *serveBW); err != nil {
			fmt.Fprintln(os.Stderr, "c56-bench:", err)
			os.Exit(1)
		}
	}
}

// XorResult is one (tier, size) throughput sample of the XOR kernel sweep.
type XorResult struct {
	// Path names the tier exactly as dispatched: "avx512"/"avx2"/"neon"
	// (hosts with the matching features), "wide", "word", and the "byte"
	// reference — every tier xorblk.Tiers() reports for this binary.
	Path string `json:"path"`
	Size int    `json:"size"`
	// MBPerSec counts destination bytes processed (one read+xor+write pass).
	MBPerSec float64 `json:"mb_per_s"`
	// SpeedupVsWord is this tier's throughput over the word path's at the
	// same size (the acceptance metric for the fast tiers).
	SpeedupVsWord float64 `json:"speedup_vs_word"`
	Iterations    int     `json:"iterations"`
}

// XorReport is BENCH_xor.json's top-level object. The embedded Topology's
// Kernel field names the fast path selected for this binary on this host.
type XorReport struct {
	Topology
	Results []XorResult `json:"results"`
}

// xorSizes spans cache-resident blocks through streaming ones: 256 KiB
// exceeds most L2s' fair share, and the ≥1 MiB sizes engage the assembly
// tiers' non-temporal stores (xorblk.NonTemporalThreshold) — the cliff
// region the cached-store wide path shows in earlier BENCH_xor.json runs.
var xorSizes = []int{1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20}

// runXor measures dst ^= src throughput for every kernel tier this host
// can run across block sizes and writes BENCH_xor.json.
func runXor(out string, minTime time.Duration) error {
	rep := XorReport{Topology: topo()}
	tiers := xorblk.Tiers()
	for _, size := range xorSizes {
		rng := rand.New(rand.NewSource(3))
		dst := make([]byte, size)
		src := make([]byte, size)
		rng.Read(dst)
		rng.Read(src)
		var wordMB float64
		base := len(rep.Results)
		for _, tier := range tiers {
			tier.Xor(dst, src) // warm-up
			iters := 0
			start := time.Now()
			for time.Since(start) < minTime {
				tier.Xor(dst, src)
				iters++
			}
			elapsed := time.Since(start)
			mb := float64(iters) * float64(size) / 1e6 / elapsed.Seconds()
			if tier.Name == "word" {
				wordMB = mb
			}
			rep.Results = append(rep.Results, XorResult{
				Path: tier.Name, Size: size, MBPerSec: mb, Iterations: iters,
			})
		}
		for i := base; i < len(rep.Results); i++ {
			rep.Results[i].SpeedupVsWord = rep.Results[i].MBPerSec / wordMB
		}
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote XOR kernel sweep (%s fast path, %d tiers, %d results) to %s\n",
			rep.Kernel, len(tiers), len(rep.Results), out)
	}
	return nil
}

// writeJSON writes v indented to path ('-' for stdout).
func writeJSON(path string, v any) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func run(out string, block, p int, minTime time.Duration) error {
	c56, err := code56.New(p)
	if err != nil {
		return err
	}
	rdp, err := code56.NewRDP(p)
	if err != nil {
		return err
	}
	eo, err := code56.NewEVENODD(p)
	if err != nil {
		return err
	}
	rep := Report{BlockSize: block, P: p}
	for _, c := range []struct {
		name string
		code code56.Code
	}{
		{fmt.Sprintf("code56-p%d", p), c56},
		{fmt.Sprintf("rdp-p%d", p), rdp},
		{fmt.Sprintf("evenodd-p%d", p), eo},
	} {
		rep.Results = append(rep.Results, measure(c.name, c.code, block, minTime))
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote %d results to %s\n", len(rep.Results), out)
	}
	return nil
}

// runParallel measures full-array Code 5-6 encodes through the parallel
// stripe engine at 1, 2, 4 and 8 workers — in per-stripe and interleaved
// batch modes side by side — and writes BENCH_parallel.json. Each (mode,
// worker count) pair runs reps independent measurement windows (each at
// least minTime long) and reports the median throughput, plus heap
// allocations per stripe encode taken from runtime.MemStats.
func runParallel(out string, block, p int, stripes int64, minTime time.Duration, reps int, backend string) error {
	if reps < 3 {
		reps = 3
	}
	code, err := code56.NewCode(p)
	if err != nil {
		return err
	}
	a, err := code56.NewRAID6Array(code,
		code56.WithBackend(backend), code56.WithBlockSize(block))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	blocks := int64(a.DataPerStripe()) * stripes
	b := make([]byte, block)
	for L := int64(0); L < blocks; L++ {
		rng.Read(b)
		if err := a.WriteBlock(L, b); err != nil {
			return err
		}
	}
	rep := ParallelReport{
		Topology:  topo(),
		Code:      fmt.Sprintf("code56-p%d", p),
		BlockSize: block,
		P:         p,
		Stripes:   stripes,
	}
	ctx := context.Background()
	dataBytes := float64(blocks) * float64(block)
	modes := []struct {
		name string
		fn   func(w int) error
	}{
		{"per-stripe", func(w int) error {
			return code56.EncodeArrayStripes(ctx, a, stripes, code56.WithWorkers(w))
		}},
		{"interleaved", func(w int) error {
			return code56.EncodeArrayStripesInterleaved(ctx, a, stripes, code56.WithWorkers(w))
		}},
	}
	for _, w := range []int{1, 2, 4, 8} {
		for _, mode := range modes {
			encode := func() error { return mode.fn(w) }
			// Warm-up pass primes the buffer pools so the measured windows
			// see steady state, then reps independent windows of minTime.
			if err := encode(); err != nil {
				return err
			}
			var (
				samples     []float64
				totalIters  int
				totalAllocs uint64
				ms          runtime.MemStats
			)
			for win := 0; win < reps; win++ {
				runtime.ReadMemStats(&ms)
				allocsBefore := ms.Mallocs
				iters := 0
				start := time.Now()
				for iters == 0 || time.Since(start) < minTime {
					if err := encode(); err != nil {
						return err
					}
					iters++
				}
				elapsed := time.Since(start)
				runtime.ReadMemStats(&ms)
				samples = append(samples, float64(iters)*dataBytes/1e6/elapsed.Seconds())
				totalIters += iters
				totalAllocs += ms.Mallocs - allocsBefore
			}
			r := ParallelResult{
				Mode:            mode.name,
				Workers:         w,
				MBPerSec:        median(samples),
				Speedup:         1,
				Iterations:      totalIters,
				Samples:         reps,
				AllocsPerStripe: float64(totalAllocs) / float64(int64(totalIters)*stripes),
			}
			for _, prev := range rep.Results {
				if prev.Mode == mode.name && prev.Workers == 1 {
					r.Speedup = r.MBPerSec / prev.MBPerSec
					break
				}
			}
			rep.Results = append(rep.Results, r)
		}
	}
	if err := writeJSON(out, rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote parallel sweep (%d mode×worker results, %d windows each, GOMAXPROCS=%d, kernel=%s) to %s\n",
			len(rep.Results), reps, rep.GOMAXPROCS, rep.Kernel, out)
	}
	return nil
}

// median returns the middle value of s (mean of the middle two for even
// lengths). s is sorted in place.
func median(s []float64) float64 {
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// measure encodes full stripes until minTime has elapsed and averages.
func measure(name string, code code56.Code, block int, minTime time.Duration) Result {
	s := layout.NewStripe(code.Geometry(), block)
	s.FillRandom(code, rand.New(rand.NewSource(1)))
	data := len(layout.DataElements(code))
	xors := layout.Encode(code, s) // warm-up; XOR count is deterministic
	iters := 0
	start := time.Now()
	for time.Since(start) < minTime {
		layout.Encode(code, s)
		iters++
	}
	elapsed := time.Since(start)
	bytesDone := float64(iters) * float64(data*block)
	return Result{
		Code:           name,
		Disks:          code.Geometry().Cols,
		DataElements:   data,
		XORsPerElement: float64(xors) / float64(data),
		MBPerSec:       bytesDone / 1e6 / elapsed.Seconds(),
		Iterations:     iters,
	}
}
