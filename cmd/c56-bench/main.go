// Command c56-bench measures full-stripe encoding for Code 5-6 against the
// paper's RAID-6 baselines (RDP, EVENODD) and writes the results as JSON —
// the machine-readable companion to the paper's Fig. 13 computation-cost
// comparison.
//
// Usage:
//
//	c56-bench                        # writes BENCH_encode.json
//	c56-bench -out - -p 7 -block 8192
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	code56 "code56"
	"code56/internal/layout"
)

// Result is one code's encoding measurement.
type Result struct {
	Code  string `json:"code"`
	Disks int    `json:"disks"`
	// DataElements is the number of data blocks per stripe.
	DataElements int `json:"data_elements"`
	// XORsPerElement is the encoding cost: block XOR operations per data
	// block (the paper's Fig. 13 metric, here measured, not derived).
	XORsPerElement float64 `json:"xors_per_element"`
	// MBPerSec is the encoding throughput over the stripe's data bytes.
	MBPerSec float64 `json:"mb_per_s"`
	// Iterations is how many full-stripe encodes the sample averaged.
	Iterations int `json:"iterations"`
}

// Report is the file's top-level object.
type Report struct {
	BlockSize int      `json:"block_size"`
	P         int      `json:"p"`
	Results   []Result `json:"results"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_encode.json", "output file ('-' for stdout)")
		block   = flag.Int("block", 4096, "block size in bytes")
		p       = flag.Int("p", 5, "prime parameter")
		minTime = flag.Duration("mintime", 200*time.Millisecond, "minimum measurement time per code")
	)
	flag.Parse()
	if err := run(*out, *block, *p, *minTime); err != nil {
		fmt.Fprintln(os.Stderr, "c56-bench:", err)
		os.Exit(1)
	}
}

func run(out string, block, p int, minTime time.Duration) error {
	c56, err := code56.New(p)
	if err != nil {
		return err
	}
	rdp, err := code56.NewRDP(p)
	if err != nil {
		return err
	}
	eo, err := code56.NewEVENODD(p)
	if err != nil {
		return err
	}
	rep := Report{BlockSize: block, P: p}
	for _, c := range []struct {
		name string
		code code56.Code
	}{
		{fmt.Sprintf("code56-p%d", p), c56},
		{fmt.Sprintf("rdp-p%d", p), rdp},
		{fmt.Sprintf("evenodd-p%d", p), eo},
	} {
		rep.Results = append(rep.Results, measure(c.name, c.code, block, minTime))
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("wrote %d results to %s\n", len(rep.Results), out)
	}
	return nil
}

// measure encodes full stripes until minTime has elapsed and averages.
func measure(name string, code code56.Code, block int, minTime time.Duration) Result {
	s := layout.NewStripe(code.Geometry(), block)
	s.FillRandom(code, rand.New(rand.NewSource(1)))
	data := len(layout.DataElements(code))
	xors := layout.Encode(code, s) // warm-up; XOR count is deterministic
	iters := 0
	start := time.Now()
	for time.Since(start) < minTime {
		layout.Encode(code, s)
		iters++
	}
	elapsed := time.Since(start)
	bytesDone := float64(iters) * float64(data*block)
	return Result{
		Code:           name,
		Disks:          code.Geometry().Cols,
		DataElements:   data,
		XORsPerElement: float64(xors) / float64(data),
		MBPerSec:       bytesDone / 1e6 / elapsed.Seconds(),
		Iterations:     iters,
	}
}
