package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestBenchReport runs the harness into a temp file and validates the JSON:
// all three codes present, sensible XOR costs, positive throughput.
func TestBenchReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_encode.json")
	if err := run(out, 1024, 5, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	want := map[string]bool{"code56-p5": true, "rdp-p5": true, "evenodd-p5": true}
	for _, r := range rep.Results {
		if !want[r.Code] {
			t.Errorf("unexpected code %q", r.Code)
		}
		delete(want, r.Code)
		if r.XORsPerElement <= 0 || r.XORsPerElement >= 4 {
			t.Errorf("%s: implausible XORs/element %.3f", r.Code, r.XORsPerElement)
		}
		if r.MBPerSec <= 0 {
			t.Errorf("%s: non-positive throughput %.3f", r.Code, r.MBPerSec)
		}
		if r.Iterations <= 0 {
			t.Errorf("%s: no iterations measured", r.Code)
		}
	}
	for c := range want {
		t.Errorf("missing code %q", c)
	}
}

// TestServeBenchReport runs the under-load serve benchmark small and
// validates its JSON: both phases present, every op accounted for, and
// stripes genuinely converted while the migrating phase's load ran.
func TestServeBenchReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	// 16 stripes of 512-byte blocks at a 256k cap: the 8 KiB-per-stripe
	// migration is shaped hard enough that the 400-op load overlaps it.
	if err := runServe(out, 4, 16, 512, 2, 400, "256k"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep ServeReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Phase != "idle" || rep.Phases[1].Phase != "migrating" {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	for _, ph := range rep.Phases {
		if ph.Errors != 0 {
			t.Fatalf("%s phase had %d errors", ph.Phase, ph.Errors)
		}
		if ph.Reads+ph.Writes != 400 {
			t.Fatalf("%s phase completed %d ops, want 400", ph.Phase, ph.Reads+ph.Writes)
		}
		if ph.Reads > 0 && (ph.ReadP50US <= 0 || ph.ReadP99US < ph.ReadP50US) {
			t.Fatalf("%s phase read quantiles implausible: %+v", ph.Phase, ph)
		}
	}
	if rep.Phases[1].MigrationStripesDone == 0 {
		t.Fatal("migrating phase overlapped no stripe conversions — latencies were not measured under load")
	}
	if rep.Timetable != "256k" {
		t.Fatalf("timetable recorded as %q", rep.Timetable)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{5, 1, 4, 2, 3}
	if q := quantile(s, 0.5); q != 3 {
		t.Fatalf("p50 = %v", q)
	}
	if q := quantile(s, 0.99); q != 5 {
		t.Fatalf("p99 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty = %v", q)
	}
}
