package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestBenchReport runs the harness into a temp file and validates the JSON:
// all three codes present, sensible XOR costs, positive throughput.
func TestBenchReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_encode.json")
	if err := run(out, 1024, 5, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	want := map[string]bool{"code56-p5": true, "rdp-p5": true, "evenodd-p5": true}
	for _, r := range rep.Results {
		if !want[r.Code] {
			t.Errorf("unexpected code %q", r.Code)
		}
		delete(want, r.Code)
		if r.XORsPerElement <= 0 || r.XORsPerElement >= 4 {
			t.Errorf("%s: implausible XORs/element %.3f", r.Code, r.XORsPerElement)
		}
		if r.MBPerSec <= 0 {
			t.Errorf("%s: non-positive throughput %.3f", r.Code, r.MBPerSec)
		}
		if r.Iterations <= 0 {
			t.Errorf("%s: no iterations measured", r.Code)
		}
	}
	for c := range want {
		t.Errorf("missing code %q", c)
	}
}
