package main

import "testing"

func TestRunAllCodes(t *testing.T) {
	if err := run("", 5, -1); err != nil {
		t.Fatal(err)
	}
	if err := run("code56", 7, 3); err != nil {
		t.Fatal(err)
	}
	if err := run("code56", 4, -1); err == nil {
		t.Error("non-prime p accepted")
	}
	if err := run("code56", 5, 999); err == nil {
		t.Error("out-of-range chain accepted")
	}
}
