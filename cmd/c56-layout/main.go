// Command c56-layout prints the stripe layouts of the array codes — the
// textual counterpart of the paper's Figures 2 (RDP), 3 (X-Code), 4
// (Code 5-6) and 7 (right-oriented Code 5-6) — and, optionally, individual
// parity chains.
//
// Usage:
//
//	c56-layout                      # all codes at p=5
//	c56-layout -code code56 -p 7
//	c56-layout -code code56 -chain 6    # one chain's members
package main

import (
	"flag"
	"fmt"
	"os"

	"code56/internal/codes/evenodd"
	"code56/internal/codes/hcode"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/obs"
)

func main() {
	var (
		codeName = flag.String("code", "", "one code to print (default: all)")
		p        = flag.Int("p", 5, "prime parameter")
		chain    = flag.Int("chain", -1, "also render this chain index")
		httpAddr = flag.String("http", "", "serve the observability plane (/metrics, /healthz, /debug/pprof) on this address, e.g. :8080")
	)
	flag.Parse()
	_, handle, err := obs.Plane(*httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-layout:", err)
		os.Exit(1)
	}
	defer handle.Drain()
	if handle != nil {
		fmt.Fprintf(os.Stderr, "observability plane listening on http://%s\n", handle.Addr())
	}
	if err := run(*codeName, *p, *chain); err != nil {
		fmt.Fprintln(os.Stderr, "c56-layout:", err)
		os.Exit(1)
	}
}

func codesAt(p int) ([]layout.Code, error) {
	c56, err := core.New(p)
	if err != nil {
		return nil, err
	}
	c56r, err := core.NewOriented(p, core.Right)
	if err != nil {
		return nil, err
	}
	out := []layout.Code{c56, c56r}
	if r, err := rdp.New(p); err == nil {
		out = append(out, r)
	}
	if e, err := evenodd.New(p); err == nil {
		out = append(out, e)
	}
	if x, err := xcode.New(p); err == nil {
		out = append(out, x)
	}
	if h, err := hcode.New(p); err == nil {
		out = append(out, h)
	}
	if h, err := hdp.New(p); err == nil {
		out = append(out, h)
	}
	if pc, err := pcode.New(p, pcode.VariantPMinus1); err == nil {
		out = append(out, pc)
	}
	if pc, err := pcode.New(p, pcode.VariantP); err == nil {
		out = append(out, pc)
	}
	return out, nil
}

func run(codeName string, p, chain int) error {
	codes, err := codesAt(p)
	if err != nil {
		return err
	}
	for _, c := range codes {
		if codeName != "" && c.Name() != codeName {
			continue
		}
		if err := layout.RenderLayout(os.Stdout, c); err != nil {
			return err
		}
		fmt.Println()
		if chain >= 0 {
			if err := layout.RenderChain(os.Stdout, c, chain); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}
