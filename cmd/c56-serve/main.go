// Command c56-serve exposes code56 arrays as a multi-tenant network
// block service: per-tenant QoS (token-bucket bandwidth + in-flight
// admission caps), connection-level backpressure, and online RAID-5 →
// Code 5-6 migrations whose bandwidth follows a time-of-day timetable so
// they yield to foreground traffic. The observability plane (/metrics,
// /healthz, /progress, /debug/pprof) shares the service listener.
//
// Usage:
//
//	c56-serve -http :8080 -demo
//	c56-serve -http :8080 -demo -migrate -bw "08:00,10M 23:00,off"
//	c56-serve -http :8080 -config tenants.json
//
// The config file is JSON:
//
//	{
//	  "max_conns": 256,
//	  "bw": "08:00,10M 23:00,off",
//	  "tenants": [
//	    {"name": "acme",
//	     "qos": {"bytes_per_sec": 10485760, "max_in_flight": 32},
//	     "volumes": [
//	       {"name": "vol0", "disks": 4, "stripes": 64, "block": 4096,
//	        "backend": "mem:", "migrate": true, "seed": 1}
//	     ]}
//	  ]
//	}
//
// SIGINT/SIGTERM drain the plane gracefully; finished migrations are
// scrub-verified on exit and any damage fails the process.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"syscall"

	code56 "code56"
	"code56/internal/obs"
	"code56/internal/serve"
	"code56/internal/serve/bwtimetable"
	"code56/internal/telemetry"
)

func main() {
	var (
		httpAddr = flag.String("http", ":8080", "address to serve blocks and the observability plane on")
		cfgPath  = flag.String("config", "", "JSON tenant/volume config file (see package doc)")
		demo     = flag.Bool("demo", false, "serve a built-in demo tenant instead of -config")
		disks    = flag.Int("disks", 4, "demo: RAID-5 disks per volume (disks+1 must be prime)")
		stripes  = flag.Int64("stripes", 64, "demo: Code 5-6 stripes per volume")
		block    = flag.Int("block", 4096, "demo: block size in bytes")
		backend  = flag.String("backend", "", "demo: block-store backend spec, 'mem:' or 'file:<dir>'")
		migrate  = flag.Bool("migrate", false, "demo: start an online RAID-5 to Code 5-6 migration on the demo volume")
		bw       = flag.String("bw", "", "migration bandwidth timetable, e.g. '08:00,10M 23:00,off' (overrides the config's)")
		maxConns = flag.Int("max-conns", 256, "connection-level backpressure: concurrently open connections")
	)
	flag.Parse()
	if err := run(*httpAddr, *cfgPath, *demo, demoConfig{
		disks: *disks, stripes: *stripes, block: *block,
		backend: *backend, migrate: *migrate,
	}, *bw, *maxConns); err != nil {
		fmt.Fprintln(os.Stderr, "c56-serve:", err)
		os.Exit(1)
	}
}

// volumeConfig describes one served array.
type volumeConfig struct {
	Name    string `json:"name"`
	Disks   int    `json:"disks"`
	Stripes int64  `json:"stripes"`
	Block   int    `json:"block"`
	Backend string `json:"backend"`
	Migrate bool   `json:"migrate"`
	// Seed fills the array with reproducible data before serving (the
	// migration needs bytes to move; 0 leaves the array zeroed).
	Seed int64 `json:"seed"`
}

type tenantConfig struct {
	Name    string         `json:"name"`
	QoS     serve.QoS      `json:"qos"`
	Volumes []volumeConfig `json:"volumes"`
}

type serverConfig struct {
	MaxConns int            `json:"max_conns"`
	BW       string         `json:"bw"`
	Tenants  []tenantConfig `json:"tenants"`
}

// notifyReady, when set (tests), receives the bound listen address once
// the server is accepting.
var notifyReady func(addr string)

type demoConfig struct {
	disks   int
	stripes int64
	block   int
	backend string
	migrate bool
}

func loadConfig(path string, demo bool, d demoConfig) (*serverConfig, error) {
	switch {
	case path != "" && demo:
		return nil, fmt.Errorf("-config and -demo are mutually exclusive")
	case path != "":
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var cfg serverConfig
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(cfg.Tenants) == 0 {
			return nil, fmt.Errorf("%s: no tenants", path)
		}
		return &cfg, nil
	case demo:
		return &serverConfig{
			Tenants: []tenantConfig{{
				Name: "demo",
				QoS:  serve.QoS{MaxInFlight: 64},
				Volumes: []volumeConfig{{
					Name: "vol0", Disks: d.disks, Stripes: d.stripes,
					Block: d.block, Backend: d.backend,
					Migrate: d.migrate, Seed: 1,
				}},
			}},
		}, nil
	default:
		return nil, fmt.Errorf("need -config <file> or -demo")
	}
}

// migration is one volume's in-flight conversion plus its shaping state.
type migration struct {
	tenant, volume string
	stripes        int64
	mig            *code56.OnlineMigrator
}

// buildVolume opens the volume's RAID-5 through the facade, fills it with
// seeded data, and (optionally) wraps it in an online migrator.
func buildVolume(vc volumeConfig) (serve.BlockIO, int64, *code56.OnlineMigrator, error) {
	if vc.Disks == 0 {
		vc.Disks = 4
	}
	if vc.Stripes == 0 {
		vc.Stripes = 64
	}
	if vc.Block == 0 {
		vc.Block = 4096
	}
	p := vc.Disks + 1
	rows := vc.Stripes * int64(p-1)
	blocks := rows * int64(vc.Disks-1)
	r5, err := code56.NewRAID5Array(vc.Disks,
		code56.WithBackend(vc.Backend),
		code56.WithBlockSize(vc.Block),
		code56.WithLayout(code56.LeftAsymmetric))
	if err != nil {
		return nil, 0, nil, err
	}
	if vc.Seed != 0 {
		if err := fillArray(r5, blocks, vc.Block, vc.Seed); err != nil {
			return nil, 0, nil, err
		}
	}
	if !vc.Migrate {
		return r5, blocks, nil, nil
	}
	mig, err := code56.NewMigrator(r5, rows)
	if err != nil {
		return nil, 0, nil, err
	}
	return serve.MigratorIO{M: mig}, blocks, mig, nil
}

func run(httpAddr, cfgPath string, demo bool, d demoConfig, bwFlag string, maxConns int) error {
	cfg, err := loadConfig(cfgPath, demo, d)
	if err != nil {
		return err
	}
	if bwFlag != "" {
		cfg.BW = bwFlag
	}
	if maxConns > 0 {
		cfg.MaxConns = maxConns
	}
	tt, err := bwtimetable.Parse(cfg.BW)
	if err != nil {
		return err
	}

	reg := telemetry.Default()
	srv := serve.NewServer(reg)
	plane := obs.New(reg)
	plane.Handle("/v1/", srv.Handler())

	var migrations []*migration
	for _, tc := range cfg.Tenants {
		tenant, err := srv.AddTenant(tc.Name, tc.QoS)
		if err != nil {
			return err
		}
		for _, vc := range tc.Volumes {
			io, blocks, mig, err := buildVolume(vc)
			if err != nil {
				return fmt.Errorf("tenant %s volume %s: %w", tc.Name, vc.Name, err)
			}
			if _, err := tenant.AddVolume(vc.Name, io, blocks); err != nil {
				return err
			}
			if mig != nil {
				name := tc.Name + "/" + vc.Name
				plane.RegisterProgress(name, mig)
				plane.RegisterHealth(name, obs.MigratorHealth(mig))
				migrations = append(migrations, &migration{
					tenant: tc.Name, volume: vc.Name,
					stripes: stripesOf(vc), mig: mig,
				})
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Start the migrations shaped by the timetable before traffic lands.
	for _, m := range migrations {
		ctrl := bwtimetable.NewController(tt, m.mig, m.mig.StripeConversionBytes())
		rate := ctrl.Apply()
		go ctrl.Run(ctx)
		if err := m.mig.Start(); err != nil {
			return err
		}
		fmt.Printf("migrating %s/%s online: %d stripes at %s (timetable %q)\n",
			m.tenant, m.volume, m.stripes, bwtimetable.FormatRate(rate), tt)
	}

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return err
	}
	handle := plane.StartListener(serve.Limit(ln, cfg.MaxConns, reg))
	fmt.Printf("serving %d tenant(s) on http://%s (max %d conns)\n",
		len(cfg.Tenants), handle.Addr(), cfg.MaxConns)
	if notifyReady != nil {
		notifyReady(handle.Addr())
	}

	<-ctx.Done()
	stop() // a second signal kills the process the default way
	fmt.Println("signal received; draining")
	if err := handle.Drain(); err != nil {
		return err
	}
	return verifyMigrations(migrations)
}

// verifyMigrations scrub-checks every finished conversion on the way
// out; a still-running one is parked at its watermark (file-backed
// migrations resume from the journal via c56-migrate -resume).
func verifyMigrations(migrations []*migration) error {
	for _, m := range migrations {
		converted, total := m.mig.Progress()
		if converted != total {
			fmt.Printf("migration %s/%s parked at stripe %d of %d\n", m.tenant, m.volume, converted, total)
			continue
		}
		if err := m.mig.Wait(); err != nil {
			return fmt.Errorf("migration %s/%s: %w", m.tenant, m.volume, err)
		}
		r6, err := m.mig.Result()
		if err != nil {
			return err
		}
		rep, err := code56.ScrubArrayMode(context.Background(), r6, m.stripes, code56.ScrubCheck)
		if err != nil {
			return err
		}
		if !rep.Clean() {
			return fmt.Errorf("migration %s/%s: scrub found damage: %+v", m.tenant, m.volume, rep)
		}
		fmt.Printf("migration %s/%s: scrub clean (%d stripes)\n", m.tenant, m.volume, m.stripes)
	}
	return nil
}

func stripesOf(vc volumeConfig) int64 {
	if vc.Stripes == 0 {
		return 64
	}
	return vc.Stripes
}

func fillArray(r5 *code56.RAID5, blocks int64, block int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, block)
	for L := int64(0); L < blocks; L++ {
		rng.Read(buf)
		if err := r5.WriteBlock(L, buf); err != nil {
			return err
		}
	}
	return nil
}
