package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestLoadConfig(t *testing.T) {
	if _, err := loadConfig("", false, demoConfig{}); err == nil {
		t.Fatal("no config and no demo accepted")
	}
	if _, err := loadConfig("x.json", true, demoConfig{}); err == nil {
		t.Fatal("-config with -demo accepted")
	}

	cfg, err := loadConfig("", true, demoConfig{disks: 4, stripes: 8, block: 512, migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 1 || cfg.Tenants[0].Name != "demo" || !cfg.Tenants[0].Volumes[0].Migrate {
		t.Fatalf("demo config = %+v", cfg)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	raw := `{
	  "max_conns": 8,
	  "bw": "08:00,10M 23:00,off",
	  "tenants": [
	    {"name": "acme",
	     "qos": {"bytes_per_sec": 1048576, "max_in_flight": 4},
	     "volumes": [{"name": "v0", "disks": 4, "stripes": 8, "block": 512, "migrate": true, "seed": 3}]}
	  ]
	}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err = loadConfig(path, false, demoConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tc := cfg.Tenants[0]
	if tc.QoS.BytesPerSec != 1048576 || tc.QoS.MaxInFlight != 4 {
		t.Fatalf("parsed QoS = %+v", tc.QoS)
	}
	if cfg.BW != "08:00,10M 23:00,off" || cfg.MaxConns != 8 {
		t.Fatalf("parsed config = %+v", cfg)
	}
}

func TestBuildVolume(t *testing.T) {
	io_, blocks, mig, err := buildVolume(volumeConfig{
		Name: "v", Disks: 4, Stripes: 8, Block: 512, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mig != nil {
		t.Fatal("non-migrating volume got a migrator")
	}
	if want := int64(8 * 4 * 3); blocks != want {
		t.Fatalf("blocks = %d, want %d", blocks, want)
	}
	buf := make([]byte, 512)
	if err := io_.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, make([]byte, 512)) {
		t.Fatal("seeded volume reads back zeros")
	}

	_, _, mig, err = buildVolume(volumeConfig{
		Name: "v", Disks: 4, Stripes: 8, Block: 512, Migrate: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mig == nil {
		t.Fatal("migrating volume without a migrator")
	}
}

// TestRunServesAndDrainsOnSignal boots the real server (demo tenant,
// migrating volume, constant 4M timetable), does wire I/O against it,
// waits for the migration to finish, then delivers SIGTERM to the
// process and expects run to drain and scrub-verify cleanly.
func TestRunServesAndDrainsOnSignal(t *testing.T) {
	addrCh := make(chan string, 1)
	notifyReady = func(addr string) { addrCh <- addr }
	defer func() { notifyReady = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", "", true,
			demoConfig{disks: 4, stripes: 8, block: 512, migrate: true},
			"4M", 16)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	base := "http://" + addr
	resp, err := http.Get(base + "/v1/t/demo/v/vol0/b/0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 512 {
		t.Fatalf("read over wire: status %d, %d bytes", resp.StatusCode, len(body))
	}

	// Wait out the (4 MiB/s-shaped, 8-stripe) migration via /progress.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/progress")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(b), `"finished"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("migration never finished: %s", b)
		}
		time.Sleep(50 * time.Millisecond)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean drain + scrub", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not drain after SIGTERM")
	}
}

func TestVerifyMigrationsReportsParked(t *testing.T) {
	_, _, mig, err := buildVolume(volumeConfig{
		Name: "v", Disks: 4, Stripes: 8, Block: 512, Migrate: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: Progress is 0/8, so verify must park, not scrub.
	ms := []*migration{{tenant: "t", volume: "v", stripes: 8, mig: mig}}
	if err := verifyMigrations(ms); err != nil {
		t.Fatalf("parked migration reported as error: %v", err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := verifyMigrations(ms); err != nil {
		t.Fatalf("finished migration failed verify: %v", err)
	}
}

func TestStripesOfDefault(t *testing.T) {
	if got := stripesOf(volumeConfig{}); got != 64 {
		t.Fatalf("stripesOf zero = %d", got)
	}
	if got := stripesOf(volumeConfig{Stripes: 7}); got != 7 {
		t.Fatalf("stripesOf 7 = %d", got)
	}
}
