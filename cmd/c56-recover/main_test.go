package main

import "testing"

func TestRunModes(t *testing.T) {
	if err := run("code56", 5, "1,3", false, false, 256); err != nil {
		t.Fatal(err)
	}
	if err := run("", 5, "0,1", false, true, 256); err != nil {
		t.Fatal(err)
	}
	if err := run("", 5, "", true, false, 256); err != nil {
		t.Fatal(err)
	}
	if err := run("nonesuch", 5, "0,1", false, false, 256); err == nil {
		t.Error("unknown code accepted")
	}
	if err := run("code56", 5, "0,99", false, false, 256); err == nil {
		t.Error("out-of-range failed column accepted")
	}
	if err := run("code56", 5, "x", false, false, 256); err == nil {
		t.Error("malformed fail spec accepted")
	}
}

func TestRunRebuild(t *testing.T) {
	if err := runRebuild("code56", 7, "2,5", 256, 16, 4, ""); err != nil {
		t.Fatal(err)
	}
	if err := runRebuild("rdp", 5, "0", 256, 8, 2, ""); err != nil {
		t.Fatal(err)
	}
	// The same rebuild over durable image files.
	if err := runRebuild("code56", 5, "1", 256, 8, 2, "file:"+t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := runRebuild("code56", 7, "99", 256, 8, 1, ""); err == nil {
		t.Error("out-of-range failed column accepted")
	}
	if err := runRebuild("code56", 7, "x", 256, 8, 1, ""); err == nil {
		t.Error("malformed fail spec accepted")
	}
}
