package main

import "testing"

func TestRunModes(t *testing.T) {
	if err := run("code56", 5, "1,3", false, false, 256); err != nil {
		t.Fatal(err)
	}
	if err := run("", 5, "0,1", false, true, 256); err != nil {
		t.Fatal(err)
	}
	if err := run("", 5, "", true, false, 256); err != nil {
		t.Fatal(err)
	}
	if err := run("nonesuch", 5, "0,1", false, false, 256); err == nil {
		t.Error("unknown code accepted")
	}
	if err := run("code56", 5, "0,99", false, false, 256); err == nil {
		t.Error("out-of-range failed column accepted")
	}
	if err := run("code56", 5, "x", false, false, 256); err == nil {
		t.Error("malformed fail spec accepted")
	}
}
