// Command c56-recover demonstrates failure recovery for every code in the
// repository: it encodes random stripes, fails disks, reconstructs, and
// reports the work done. With -hybrid it runs the paper's §III-E-4
// read-minimizing single-disk recovery for Code 5-6 (Fig. 6).
//
// With -rebuild it runs a whole-array rebuild instead: it fails and
// replaces disks of a populated RAID-6 array, rebuilds every stripe with
// -workers goroutines through the parallel stripe engine, and verifies the
// result.
//
// Usage:
//
//	c56-recover -code code56 -p 5 -fail 1,2
//	c56-recover -hybrid -p 5
//	c56-recover -all -p 7
//	c56-recover -rebuild -p 13 -fail 2,5 -stripes 128 -workers 4
//	c56-recover -scrub -p 5 -stripes 64
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	code56 "code56"
	"code56/internal/analysis"
	"code56/internal/obs"
)

func main() {
	var (
		codeName = flag.String("code", "code56", "code: code56, rdp, evenodd, xcode, pcode, pcode-p, hcode, hdp")
		p        = flag.Int("p", 5, "prime parameter")
		failSpec = flag.String("fail", "0,1", "comma-separated failed columns")
		hybrid   = flag.Bool("hybrid", false, "run the hybrid single-disk recovery study")
		all      = flag.Bool("all", false, "run double-failure recovery for every code")
		block    = flag.Int("block", 4096, "block size in bytes")
		rebuild  = flag.Bool("rebuild", false, "rebuild failed+replaced disks of a whole array in parallel")
		stripes  = flag.Int64("stripes", 64, "stripes in the array (-rebuild/-scrub modes)")
		workers  = flag.Int("workers", 1, "worker goroutines for the rebuild or scrub")
		scrub    = flag.Bool("scrub", false, "plant latent errors and silent corruption in an array, then check and repair it by scrubbing")
		seed     = flag.Int64("seed", 23, "seed for planted faults (-scrub mode)")
		backend  = flag.String("backend", "", "block-store backend for -rebuild/-scrub arrays: 'mem:' (default) or 'file:<dir>'")
		httpAddr = flag.String("http", "", "serve the observability plane (/metrics, /healthz, /debug/pprof) on this address, e.g. :8080")
	)
	flag.Parse()
	_, handle, err := obs.Plane(*httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-recover:", err)
		os.Exit(1)
	}
	defer handle.Drain()
	if handle != nil {
		fmt.Fprintf(os.Stderr, "observability plane listening on http://%s\n", handle.Addr())
	}
	if *scrub {
		if err := runScrub(*codeName, *p, *block, *stripes, *workers, *seed, *backend); err != nil {
			fmt.Fprintln(os.Stderr, "c56-recover:", err)
			os.Exit(1)
		}
		return
	}
	if *rebuild {
		if err := runRebuild(*codeName, *p, *failSpec, *block, *stripes, *workers, *backend); err != nil {
			fmt.Fprintln(os.Stderr, "c56-recover:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*codeName, *p, *failSpec, *hybrid, *all, *block); err != nil {
		fmt.Fprintln(os.Stderr, "c56-recover:", err)
		os.Exit(1)
	}
}

func makeCode(name string, p int) (code56.Code, error) {
	switch name {
	case "code56":
		return code56.New(p)
	case "rdp":
		return code56.NewRDP(p)
	case "evenodd":
		return code56.NewEVENODD(p)
	case "xcode":
		return code56.NewXCode(p)
	case "pcode":
		return code56.NewPCode(p)
	case "pcode-p":
		return code56.NewPCodeP(p)
	case "hcode":
		return code56.NewHCode(p)
	case "hdp":
		return code56.NewHDP(p)
	default:
		return nil, fmt.Errorf("unknown code %q", name)
	}
}

func run(codeName string, p int, failSpec string, hybrid, all bool, block int) error {
	if hybrid {
		if err := analysis.RenderHybridRecovery(os.Stdout, []int{5, 7, 11, 13}); err != nil {
			return err
		}
		fmt.Println()
		for _, pp := range []int{5, 7} {
			if err := analysis.RenderRecoveryAcrossCodes(os.Stdout, pp); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	names := []string{codeName}
	if all {
		names = []string{"code56", "rdp", "evenodd", "xcode", "pcode", "pcode-p", "hcode", "hdp"}
	}
	var fails []int
	for _, f := range strings.Split(failSpec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -fail value: %v", err)
		}
		fails = append(fails, v)
	}
	for _, name := range names {
		if err := demo(name, p, fails, block); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

func demo(name string, p int, fails []int, block int) error {
	code, err := makeCode(name, p)
	if err != nil {
		return err
	}
	g := code.Geometry()
	for _, f := range fails {
		if f < 0 || f >= g.Cols {
			return fmt.Errorf("failed column %d outside 0..%d", f, g.Cols-1)
		}
	}
	s := code56.NewStripe(g, block)
	s.FillRandom(code, rand.New(rand.NewSource(42)))
	xors := code56.Encode(code, s)
	orig := s.Clone()

	es := code56.EraseColumns(s, fails...)
	st, err := code56.Reconstruct(code, s, es)
	if err != nil {
		return err
	}
	if !s.Equal(orig) {
		return fmt.Errorf("reconstruction produced wrong contents")
	}
	method := "peeling"
	if st.UsedElimination {
		method = "GF(2) elimination"
	}
	fmt.Printf("%-8s p=%-2d %dx%d stripe: encode %d XORs; failed cols %v: recovered %d blocks via %s (%d XORs, %d distinct reads)\n",
		name, p, g.Rows, g.Cols, xors, fails, st.Recovered, method, st.XORs, st.BlocksRead)
	return nil
}

// runScrub populates a RAID-6 array, plants latent sector errors and silent
// single-block corruptions, surveys the damage with a check-only scrub,
// repairs it with a repairing scrub, and proves the array clean with a
// final check pass plus a full data read-back.
func runScrub(codeName string, p, block int, stripes int64, workers int, seed int64, backend string) error {
	code, err := makeCode(codeName, p)
	if err != nil {
		return err
	}
	g := code.Geometry()
	a, err := code56.NewRAID6Array(code,
		code56.WithBackend(backend), code56.WithBlockSize(block))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	blocks := int64(a.DataPerStripe()) * stripes
	want := make([][]byte, blocks)
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, block)
		rng.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			return err
		}
	}

	// Plant faults on disjoint stripes so each stripe has a single,
	// locatable problem: latent errors on stripes ≡ 0 (mod 4), silent
	// corruptions on stripes ≡ 2 (mod 4).
	var nLatent, nCorrupt int
	garbage := make([]byte, block)
	for st := int64(0); st < stripes; st++ {
		r := int64(rng.Intn(g.Rows))
		d := rng.Intn(g.Cols)
		switch st % 4 {
		case 0:
			a.Disks().Disk(d).InjectLatentError(st*int64(g.Rows) + r)
			nLatent++
		case 2:
			rng.Read(garbage)
			if err := a.Disks().Disk(d).Write(st*int64(g.Rows)+r, garbage); err != nil {
				return err
			}
			nCorrupt++
		}
	}
	fmt.Printf("%s p=%d: planted %d latent sector errors and %d silent corruptions across %d stripes\n",
		code.Name(), p, nLatent, nCorrupt, stripes)

	ctx := context.Background()
	check, err := code56.ScrubArrayMode(ctx, a, stripes, code56.ScrubCheck, code56.WithWorkers(workers))
	if err != nil {
		return err
	}
	fmt.Printf("check pass:  %d latent found, %d corruptions located, %d unrecoverable (nothing written)\n",
		check.LatentFound, check.CorruptFound, len(check.Unrecoverable))
	if check.LatentRepaired != 0 || check.CorruptRepaired != 0 {
		return fmt.Errorf("check-mode scrub wrote to the array")
	}

	rep, err := code56.ScrubArrayMode(ctx, a, stripes, code56.ScrubRepair, code56.WithWorkers(workers))
	if err != nil {
		return err
	}
	fmt.Printf("repair pass: %d latent repaired, %d corruptions rewritten\n",
		rep.LatentRepaired, rep.CorruptRepaired)

	final, err := code56.ScrubArrayMode(ctx, a, stripes, code56.ScrubCheck, code56.WithWorkers(workers))
	if err != nil {
		return err
	}
	if !final.Clean() {
		return fmt.Errorf("array still dirty after repair scrub: %+v", final)
	}
	buf := make([]byte, block)
	for L := int64(0); L < blocks; L++ {
		if err := a.ReadBlock(L, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, want[L]) {
			return fmt.Errorf("block %d wrong after scrub repair", L)
		}
	}
	if err := a.Disks().Sync(); err != nil {
		return err
	}
	fmt.Printf("verified: array clean, all %d data blocks intact\n", blocks)
	return nil
}

// runRebuild populates a RAID-6 array, fails and replaces the given disks,
// rebuilds every stripe through the parallel stripe engine, and verifies
// both parity consistency and data integrity.
func runRebuild(codeName string, p int, failSpec string, block int, stripes int64, workers int, backend string) error {
	code, err := makeCode(codeName, p)
	if err != nil {
		return err
	}
	g := code.Geometry()
	var fails []int
	for _, f := range strings.Split(failSpec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -fail value: %v", err)
		}
		if v < 0 || v >= g.Cols {
			return fmt.Errorf("failed column %d outside 0..%d", v, g.Cols-1)
		}
		fails = append(fails, v)
	}
	a, err := code56.NewRAID6Array(code,
		code56.WithBackend(backend), code56.WithBlockSize(block))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	blocks := int64(a.DataPerStripe()) * stripes
	want := make([][]byte, blocks)
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, block)
		rng.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			return err
		}
	}
	for _, f := range fails {
		a.Disks().Disk(f).Fail()
		a.Disks().Disk(f).Replace()
	}
	fmt.Printf("%s: rebuilding disks %v across %d stripes with %d workers\n",
		code.Name(), fails, stripes, workers)
	start := time.Now()
	if err := code56.RebuildArray(context.Background(), a, stripes, fails,
		code56.WithWorkers(workers)); err != nil {
		return err
	}
	elapsed := time.Since(start)
	buf := make([]byte, block)
	for L := int64(0); L < blocks; L++ {
		if err := a.ReadBlock(L, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, want[L]) {
			return fmt.Errorf("block %d corrupted by rebuild", L)
		}
	}
	if err := a.Disks().Sync(); err != nil {
		return err
	}
	rebuilt := stripes * int64(g.Rows) * int64(len(fails))
	mb := float64(rebuilt) * float64(block) / 1e6
	fmt.Printf("rebuilt %d blocks (%.1f MB) in %v (%.1f MB/s); all %d data blocks verified\n",
		rebuilt, mb, elapsed.Truncate(time.Microsecond), mb/elapsed.Seconds(), blocks)
	return nil
}
