package main

import "testing"

func TestRunDemoFleet(t *testing.T) {
	if err := run("", 0, 4096, 24); err != nil {
		t.Fatal(err)
	}
	if err := run("", 1, 4096, 24); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomFleet(t *testing.T) {
	if err := run("4:3:6000,8:5:20000", 0, 4096, 24); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"4:3", "x:3:100", "4:y:100", "4:3:z"} {
		if err := run(bad, 0, 4096, 24); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
