// Command c56-fleet answers the paper's opening question at data-center
// scale: given a fleet of aging RAID-5 arrays, it scores each array's
// data-loss exposure (Markov MTTDL from the paper's Table I failure
// rates), prices each Code 5-6 migration with the planner and disk
// simulator, and prints a risk-ordered migration schedule under a
// conversion-bandwidth budget.
//
// Usage:
//
//	c56-fleet                         # demo fleet, unlimited bandwidth
//	c56-fleet -budget 12              # only 12 h of conversion bandwidth
//	c56-fleet -arrays 4:3:60000,8:5:200000
//	                                  # disks:age-years:blocks per array
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"code56/internal/disksim"
	"code56/internal/fleet"
	"code56/internal/obs"
	"code56/internal/telemetry"
)

func main() {
	var (
		arrays   = flag.String("arrays", "", "comma-separated disks:age:blocks specs (default: a demo fleet)")
		budget   = flag.Float64("budget", 0, "conversion-bandwidth budget in hours (0 = unlimited)")
		block    = flag.Int("block", 4096, "block size in bytes")
		mttr     = flag.Float64("mttr", 24, "per-disk rebuild time, hours")
		metrics  = flag.String("metrics", "", "dump final telemetry counters to this file ('-' for stdout, '.json' suffix for JSON)")
		traceOut = flag.String("trace", "", "write a JSON-lines span/event trace to this file ('-' for stderr)")
		httpAddr = flag.String("http", "", "serve the observability plane (/metrics, /healthz, /debug/pprof) on this address, e.g. :8080")
	)
	flag.Parse()
	_, handle, err := obs.Plane(*httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-fleet:", err)
		os.Exit(1)
	}
	defer handle.Drain()
	if handle != nil {
		fmt.Fprintf(os.Stderr, "observability plane listening on http://%s\n", handle.Addr())
	}
	closeTrace, err := telemetry.AttachTraceFile(telemetry.DefaultTracer(), *traceOut)
	if err == nil {
		err = run(*arrays, *budget, *block, *mttr)
	}
	if cerr := closeTrace(); err == nil {
		err = cerr
	}
	if merr := telemetry.DumpMetrics(telemetry.Default(), *metrics); err == nil {
		err = merr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-fleet:", err)
		os.Exit(1)
	}
}

func parseFleet(spec string, block int, mttr float64) ([]fleet.ArraySpec, error) {
	if spec == "" {
		// Data blocks sized like real arrays: ~2 TB of data per disk at
		// 4 KB blocks.
		perDisk := 2 << 40 / block
		return []fleet.ArraySpec{
			{Name: "db-a", Disks: 4, AgeYears: 3, DataBlocks: 3 * perDisk, BlockSize: block, MTTRHours: mttr},
			{Name: "db-b", Disks: 4, AgeYears: 1, DataBlocks: 3 * perDisk, BlockSize: block, MTTRHours: mttr},
			{Name: "object-1", Disks: 8, AgeYears: 4, DataBlocks: 7 * perDisk, BlockSize: block, MTTRHours: mttr},
			{Name: "object-2", Disks: 8, AgeYears: 2, DataBlocks: 7 * perDisk, BlockSize: block, MTTRHours: mttr},
			{Name: "scratch", Disks: 6, AgeYears: 5, DataBlocks: 5 * perDisk, BlockSize: block, MTTRHours: mttr},
		}, nil
	}
	var out []fleet.ArraySpec
	for i, part := range strings.Split(spec, ",") {
		f := strings.Split(strings.TrimSpace(part), ":")
		if len(f) != 3 {
			return nil, fmt.Errorf("array %d: want disks:age:blocks, got %q", i, part)
		}
		disks, err1 := strconv.Atoi(f[0])
		age, err2 := strconv.Atoi(f[1])
		blocks, err3 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("array %d: malformed spec %q", i, part)
		}
		out = append(out, fleet.ArraySpec{
			Name:       fmt.Sprintf("array-%d", i),
			Disks:      disks,
			AgeYears:   age,
			DataBlocks: blocks,
			BlockSize:  block,
			MTTRHours:  mttr,
		})
	}
	return out, nil
}

func run(arrays string, budget float64, block int, mttr float64) error {
	specs, err := parseFleet(arrays, block, mttr)
	if err != nil {
		return err
	}
	sched, err := fleet.Plan(specs, disksim.DefaultModel(), budget)
	if err != nil {
		return err
	}
	fmt.Printf("fleet migration plan (%d arrays, budget %s)\n", len(specs), budgetStr(budget))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "order\tarray\tdisks\tage\tAFR\t1y loss now\t1y loss after\tmigration\twindow (h)")
	for i, e := range sched.Entries {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%dy\t%.1f%%\t%.2e\t%.2e\t%.2fh\t%.2f-%.2f\n",
			i+1, e.Spec.Name, e.Spec.Disks, e.Spec.AgeYears, e.AFR*100,
			e.LossBefore, e.LossAfter, e.MigrationHours, e.StartHour, e.EndHour)
	}
	for _, d := range sched.Deferred {
		fmt.Fprintf(tw, "-\t%s\t%d\t%dy\t%.1f%%\t%.2e\t(deferred)\t%.2fh\t-\n",
			d.Spec.Name, d.Spec.Disks, d.Spec.AgeYears, d.AFR*100, d.LossBefore, d.MigrationHours)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("fleet 1-year expected data-loss events: %.2e -> %.2e (%.0fx reduction), %.2f conversion hours\n",
		sched.ExpectedLossBefore, sched.ExpectedLossAfter,
		sched.ExpectedLossBefore/sched.ExpectedLossAfter, sched.TotalHours)
	return nil
}

func budgetStr(b float64) string {
	if b <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.1fh", b)
}
