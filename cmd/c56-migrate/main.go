// Command c56-migrate demonstrates the paper's Algorithm 2 end to end on
// simulated disks: it builds a RAID-5, fills it with data, converts it
// online to a Code 5-6 RAID-6 while an application workload keeps reading
// and writing, then verifies every stripe and every data block.
//
// With -online=false it instead replays the offline conversion plan
// through the executor and reports the paper's §V-A cost metrics.
//
// With -backend file:<dir> the array lives in durable sparse image files
// under <dir> and the migration is journaled through the directory's
// intent log; a run killed mid-conversion restarts from its last
// checkpoint with -resume <dir>.
//
// Usage:
//
//	c56-migrate -disks 4 -stripes 256 -block 4096 -workload random
//	c56-migrate -online -metrics - -trace trace.jsonl
//	c56-migrate -backend file:/var/tmp/array -stripes 64
//	c56-migrate -resume /var/tmp/array
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	code56 "code56"
	"code56/internal/obs"
	"code56/internal/telemetry"
	"code56/internal/trace"
)

func main() {
	var (
		disks    = flag.Int("disks", 4, "RAID-5 disks (disks+1 must be prime)")
		stripes  = flag.Int("stripes", 256, "Code 5-6 stripes to migrate (online mode)")
		block    = flag.Int("block", 4096, "block size in bytes")
		workload = flag.String("workload", "random", "application workload during migration: random, sequential, write-heavy, zipf, none")
		ops      = flag.Int("ops", 2000, "application operations during migration")
		seed     = flag.Int64("seed", 1, "workload seed")
		throttle = flag.Duration("throttle", 0, "pause between converted stripes (e.g. 5ms)")
		parallel = flag.Int("parallel", 1, "concurrent stripe-conversion workers (alias of -workers)")
		workers  = flag.Int("workers", 0, "worker goroutines for conversion (online) or plan execution (offline); 0 = -parallel")
		snapshot = flag.String("snapshot", "", "write a disk-array snapshot of the converted array to this file")
		online   = flag.Bool("online", true, "convert online with Algorithm 2; false replays the offline plan via the executor")
		metrics  = flag.String("metrics", "", "dump final telemetry counters to this file ('-' for stdout, '.json' suffix for JSON)")
		traceOut = flag.String("trace", "", "write a JSON-lines span/event trace to this file ('-' for stderr)")
		progress = flag.Bool("progress", true, "show a live progress line on stderr during online migration")
		httpAddr = flag.String("http", "", "serve the observability plane (/metrics, /healthz, /progress, /debug/pprof) on this address, e.g. :8080")
		watch    = flag.Bool("watch", false, "rich live status line: state, watermark, recent stripes/s, MB/s, repairs, ETA")
		backend  = flag.String("backend", "", "block-store backend spec: 'mem:' (default) or 'file:<dir>' for durable image files plus a crash-resumable migration intent log")
		resume   = flag.String("resume", "", "resume the parked file-backed migration in this directory (ignores the array-shape flags)")
		interval = flag.Int64("checkpoint", 0, "stripes between intent-log checkpoints for file-backed migrations (0 = default, 16)")

		latent    = flag.Float64("latent", 0, "per-read probability of discovering a latent sector error (online mode; above ~0.005 double faults within a row become likely, which genuinely exceeds the RAID-5 phase's tolerance)")
		transient = flag.Float64("transient-prob", 0, "per-I/O probability of a transient error (online mode)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault injector")
		retry     = flag.Int("retry", 0, "retries for transient I/O errors")
		retryBase = flag.Duration("retry-base", 0, "backoff base between retries (doubles each attempt)")
	)
	flag.Parse()
	if *workers == 0 {
		*workers = *parallel
	}
	faults := faultOpts{
		latent:    *latent,
		transient: *transient,
		seed:      *faultSeed,
		retry:     *retry,
		retryBase: *retryBase,
	}
	plane, handle, err := obs.Plane(*httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-migrate:", err)
		os.Exit(1)
	}
	defer handle.Drain()
	if handle != nil {
		fmt.Fprintf(os.Stderr, "observability plane listening on http://%s\n", handle.Addr())
	}
	closeTrace, err := telemetry.AttachTraceFile(telemetry.DefaultTracer(), *traceOut)
	if err == nil {
		switch {
		case *resume != "":
			err = runResume(*resume, *workers, *throttle, *interval, *progress, plane)
		case *online:
			err = runOnline(onlineConfig{
				disks:    *disks,
				stripes:  *stripes,
				block:    *block,
				workload: *workload,
				ops:      *ops,
				seed:     *seed,
				throttle: *throttle,
				snapshot: *snapshot,
				workers:  *workers,
				progress: *progress,
				watch:    *watch,
				backend:  *backend,
				interval: *interval,
				faults:   faults,
				plane:    plane,
			})
		default:
			err = runOffline(*disks, *block, *seed, *workers)
		}
	}
	if cerr := closeTrace(); err == nil {
		err = cerr
	}
	if merr := telemetry.DumpMetrics(telemetry.Default(), *metrics); err == nil {
		err = merr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-migrate:", err)
		os.Exit(1)
	}
}

// faultOpts carries the -latent/-transient-prob/-retry flags.
type faultOpts struct {
	latent, transient float64
	seed              int64
	retry             int
	retryBase         time.Duration
}

func (f faultOpts) armed() bool { return f.latent > 0 || f.transient > 0 }

// onlineConfig carries runOnline's flags plus the observability plane the
// run registers its array and migrator with (nil when -http is unset — the
// registrations are then no-ops).
type onlineConfig struct {
	disks, stripes, block int
	workload              string
	ops                   int
	seed                  int64
	throttle              time.Duration
	snapshot              string
	workers               int
	progress, watch       bool
	backend               string
	interval              int64
	faults                faultOpts
	plane                 *obs.Server
}

func runOnline(cfg onlineConfig) error {
	disks, stripes, block := cfg.disks, cfg.stripes, cfg.block
	faults := cfg.faults
	p := disks + 1
	rows := int64(stripes) * int64(p-1)
	blocks := rows * int64(disks-1)

	r5, err := code56.NewRAID5Array(disks,
		code56.WithBackend(cfg.backend),
		code56.WithBlockSize(block),
		code56.WithLayout(code56.LeftAsymmetric))
	if err != nil {
		return err
	}
	cfg.plane.RegisterHealth("vdisk", obs.ArrayHealth(r5.Disks()))
	fmt.Printf("filling RAID-5: %d disks, %d rows, %d data blocks of %d B\n", disks, rows, blocks, block)
	rng := rand.New(rand.NewSource(cfg.seed))
	want := make([][]byte, blocks)
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, block)
		rng.Read(b)
		want[L] = b
		if err := r5.WriteBlock(L, b); err != nil {
			return err
		}
	}

	if faults.retry > 0 || faults.retryBase > 0 {
		if err := r5.Disks().SetRetry(faults.retry, faults.retryBase); err != nil {
			return err
		}
	}
	if faults.armed() {
		err := r5.Disks().SetFaults(code56.FaultConfig{
			Seed:               faults.seed,
			ReadTransientProb:  faults.transient,
			WriteTransientProb: faults.transient,
			LatentProb:         faults.latent,
		})
		if err != nil {
			return err
		}
		fmt.Printf("fault injector armed: latent %.3g, transient %.3g, seed %d, retry %d @ %v\n",
			faults.latent, faults.transient, faults.seed, faults.retry, faults.retryBase)
	}

	migOpts := []code56.Option{}
	if cfg.interval > 0 {
		migOpts = append(migOpts, code56.WithCheckpointInterval(cfg.interval))
	}
	mig, err := code56.NewMigrator(r5, rows, migOpts...)
	if err != nil {
		return err
	}
	if j := mig.Journal(); j != nil {
		fmt.Printf("durable backend %q: migration journaled through %s (resume a killed run with -resume)\n",
			cfg.backend, j.Dir())
		defer j.Close()
	}
	cfg.plane.RegisterHealth("migrate", obs.MigratorHealth(mig))
	cfg.plane.RegisterProgress("r5tor6", mig)
	if cfg.throttle > 0 {
		mig.SetThrottle(cfg.throttle)
	}
	if cfg.workers > 1 {
		if err := mig.SetParallelism(cfg.workers); err != nil {
			return err
		}
	}
	var kind trace.WorkloadKind
	runApp := true
	switch cfg.workload {
	case "random":
		kind = trace.RandomRW
	case "sequential":
		kind = trace.SequentialRead
	case "write-heavy":
		kind = trace.WriteHeavy
	case "zipf":
		kind = trace.ZipfRW
	case "none":
		runApp = false
	default:
		return fmt.Errorf("unknown workload %q", cfg.workload)
	}

	r5.Disks().ResetStats()
	// Counter baseline: the default registry is process-wide and the fill
	// phase above already moved it, so report deltas from here.
	base := telemetry.Default().Snapshot().Counters
	start := time.Now()
	if err := mig.Start(); err != nil {
		return err
	}

	stopProgress := make(chan struct{})
	var progWG sync.WaitGroup
	if cfg.progress || cfg.watch {
		// Bytes of application data one converted stripe carries, for the
		// watch line's MB/s (derived from the same stripe-rate EWMA the
		// /progress endpoint serves).
		stripeBytes := float64((p - 1) * (disks - 1) * block)
		progWG.Add(1)
		go func() {
			defer progWG.Done()
			tick := time.NewTicker(150 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopProgress:
					fmt.Fprintf(os.Stderr, "\r%110s\r", "")
					return
				case <-tick.C:
					pr := mig.ProgressSnapshot()
					if cfg.watch {
						fmt.Fprintf(os.Stderr, "\r%-8s %5.1f%% (%d/%d stripes) %7.0f stripes/s %7.1f MB/s  repairs %d  ETA %-12s",
							pr.State(), 100*pr.Fraction(), pr.Converted, pr.Total,
							pr.RecentStripesPerSec, pr.RecentStripesPerSec*stripeBytes/1e6,
							pr.Stats.FaultsRepaired, pr.ETA.Truncate(time.Millisecond))
					} else {
						fmt.Fprintf(os.Stderr, "\rmigrating: %5.1f%% (%d/%d stripes) %8.0f stripes/s ETA %-12s",
							100*pr.Fraction(), pr.Converted, pr.Total, pr.StripesPerSec,
							pr.ETA.Truncate(time.Millisecond))
					}
				}
			}
		}()
	}

	appOps := 0
	if runApp {
		var mu sync.Mutex
		buf := make([]byte, block)
		for _, op := range trace.Workload(kind, blocks, cfg.ops, cfg.seed+1) {
			if op.Write {
				b := make([]byte, block)
				rng.Read(b)
				mu.Lock()
				if err := mig.Write(op.Logical, b); err != nil {
					mu.Unlock()
					return err
				}
				want[op.Logical] = b
				mu.Unlock()
			} else if err := mig.Read(op.Logical, buf); err != nil {
				return err
			}
			appOps++
		}
	}

	err = mig.Wait()
	close(stopProgress)
	progWG.Wait()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	converted, total := mig.Progress()
	st := mig.Stats()
	fmt.Printf("conversion done: %d/%d stripes in %v, %d concurrent app ops\n", converted, total, elapsed, appOps)
	fmt.Printf("interaction: %d write interrupts, %d diagonal updates, %d stripes redone after races\n",
		st.WriteInterrupts, st.DiagonalUpdates, st.StripesRedone)

	r6, err := mig.Result()
	if err != nil {
		return err
	}
	if faults.armed() {
		// Quiesce the injector, then scrub-repair whatever latent errors the
		// workload discovered but the conversion didn't walk over, so the
		// verification below checks data integrity rather than injector luck.
		if err := r5.Disks().SetFaults(code56.FaultConfig{}); err != nil {
			return err
		}
		rep, err := r6.Scrub(int64(stripes))
		if err != nil {
			return err
		}
		fmt.Printf("faults: %d bad blocks repaired during conversion, %d latent repaired by scrub, %d silent corruptions, %d unrecoverable stripes\n",
			st.FaultsRepaired, rep.LatentRepaired, rep.CorruptRepaired, len(rep.Unrecoverable))
		if len(rep.Unrecoverable) > 0 {
			return fmt.Errorf("scrub left unrecoverable stripes: %v", rep.Unrecoverable)
		}
	}
	for st := int64(0); st < int64(stripes); st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("stripe %d inconsistent", st)
		}
	}
	buf := make([]byte, block)
	for L := int64(0); L < blocks; L++ {
		if err := mig.Read(L, buf); err != nil {
			return err
		}
		if !equal(buf, want[L]) {
			return fmt.Errorf("block %d corrupted", L)
		}
	}
	fmt.Printf("verified: all %d stripes consistent, all %d data blocks intact\n", stripes, blocks)
	if err := r6.Disks().Sync(); err != nil {
		return err
	}

	var reads, writes int64
	for i := 0; i < r5.Disks().Len(); i++ {
		s := r5.Disks().Disk(i).Stats()
		fmt.Printf("  disk %d: %6d reads %6d writes\n", i, s.Reads, s.Writes)
		reads += s.Reads
		writes += s.Writes
	}
	fmt.Printf("total I/O during migration+workload: %d reads, %d writes\n", reads, writes)
	if err := reportCounters(disks, st, base); err != nil {
		return err
	}
	if cfg.snapshot != "" {
		f, err := os.Create(cfg.snapshot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r5.Disks().Save(f); err != nil {
			return err
		}
		fmt.Printf("snapshot of the converted array written to %s\n", cfg.snapshot)
	}
	return nil
}

// runResume restarts a parked file-backed migration: it replays the
// directory's intent log, reopens the RAID-5, resumes the conversion at
// the journaled watermark, and verifies the finished RAID-6 with a full
// scrub. A directory whose migration already committed is reported as
// complete (after the same scrub); a directory that never began one is an
// error — start it with -backend file:<dir>.
func runResume(dir string, workers int, throttle time.Duration, interval int64, progress bool, plane *obs.Server) error {
	opts := []code56.Option{}
	if workers > 1 {
		opts = append(opts, code56.WithWorkers(workers))
	}
	if throttle > 0 {
		opts = append(opts, code56.WithThrottle(throttle))
	}
	if interval > 0 {
		opts = append(opts, code56.WithCheckpointInterval(interval))
	}
	mig, err := code56.ResumeMigration(dir, opts...)
	if err != nil {
		if errors.Is(err, code56.ErrMigrationComplete) {
			fmt.Printf("%s: migration already committed; verifying the RAID-6\n", dir)
			r6, err := code56.OpenRAID6Array(dir)
			if err != nil {
				return err
			}
			defer r6.Disks().Close()
			return scrubResumed(r6)
		}
		return err
	}
	defer mig.Journal().Close()
	converted, total := mig.Progress()
	fmt.Printf("%s: resuming at stripe %d of %d\n", dir, converted, total)
	plane.RegisterHealth("migrate", obs.MigratorHealth(mig))
	plane.RegisterProgress("r5tor6", mig)
	start := time.Now()
	if err := mig.Start(); err != nil {
		return err
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if progress {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(150 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					fmt.Fprintf(os.Stderr, "\r%110s\r", "")
					return
				case <-tick.C:
					pr := mig.ProgressSnapshot()
					fmt.Fprintf(os.Stderr, "\rmigrating: %5.1f%% (%d/%d stripes) ETA %-12s",
						100*pr.Fraction(), pr.Converted, pr.Total, pr.ETA.Truncate(time.Millisecond))
				}
			}
		}()
	}
	err = mig.Wait()
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	converted, total = mig.Progress()
	fmt.Printf("conversion done: %d/%d stripes (%d redone this run) in %v\n",
		converted, total, mig.Stats().StripesConverted, time.Since(start))
	r6, err := mig.Result()
	if err != nil {
		return err
	}
	defer r6.Disks().Close()
	return scrubResumed(r6)
}

// scrubResumed proves a resumed (or already-committed) conversion left a
// consistent array: every stripe verifies and a check-only scrub is clean.
func scrubResumed(r6 *code56.RAID6) error {
	// The stripe count isn't journaled once the migration commits; recover
	// it from the disks' high-water marks (every used row is a written
	// parity row, so the tallest disk bounds the stripe range exactly).
	g := r6.Code().Geometry()
	bs := int64(r6.BlockSize())
	var rows int64
	for i := 0; i < r6.Disks().Len(); i++ {
		sz, err := r6.Disks().Disk(i).Store().Size()
		if err != nil {
			return err
		}
		if n := (sz + bs - 1) / bs; n > rows {
			rows = n
		}
	}
	stripes := rows / int64(g.Rows)
	for st := int64(0); st < stripes; st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("stripe %d inconsistent after resume", st)
		}
	}
	rep, err := code56.ScrubArrayMode(context.Background(), r6, stripes, code56.ScrubCheck)
	if err != nil {
		return err
	}
	if !rep.Clean() {
		return fmt.Errorf("scrub found damage after resume: %+v", rep)
	}
	if err := r6.Disks().Sync(); err != nil {
		return err
	}
	fmt.Printf("verified: all %d stripes consistent, scrub clean\n", stripes)
	return nil
}

// reportCounters prints the migration's telemetry counters and cross-checks
// the conversion XOR tally against the offline plan's aggregate: every
// converted stripe (including redos) costs Plan.XORs / Plan.Period XORs.
func reportCounters(disks int, st code56.MigrationStats, base map[string]int64) error {
	plan, err := code56.NewVirtualPlan(disks, code56.LeftAsymmetric)
	if err != nil {
		return err
	}
	c := telemetry.Default().Snapshot().Counters
	delta := func(name string) int64 { return c[name] - base[name] }
	expected := st.StripesConverted * int64(plan.XORs/plan.Period)
	fmt.Printf("telemetry: %d stripes converted, %d app reads, %d app writes, %d conversion XORs (plan predicts %d)\n",
		delta("migrate.stripes_converted"), delta("migrate.app_reads"), delta("migrate.app_writes"),
		delta("migrate.conversion_xors"), expected)
	if got := delta("migrate.conversion_xors"); got != expected {
		return fmt.Errorf("conversion XOR counter %d does not match the plan's %d", got, expected)
	}
	return nil
}

func runOffline(disks, block int, seed int64, workers int) error {
	plan, err := code56.NewVirtualPlan(disks, code56.LeftAsymmetric)
	if err != nil {
		return err
	}
	fmt.Printf("offline plan %s: %d stripes/period, %d data blocks, %d ops (%d reuse, %d invalidate, %d migrate, %d generate)\n",
		plan.Conv.Label(), plan.Period, plan.DataBlocks, len(plan.Ops),
		plan.Reused, plan.Invalidated, plan.Migrated, plan.Generated)
	base := telemetry.Default().Snapshot().Counters
	ex := code56.NewExecutor(plan, block, seed)
	fmt.Printf("executing with %d workers\n", workers)
	if err := code56.RunPlan(context.Background(), ex, code56.WithWorkers(workers)); err != nil {
		return err
	}
	if err := ex.VerifyResult(); err != nil {
		return err
	}
	fmt.Printf("verified: all %d stripes consistent, all data blocks intact\n", plan.Period)
	m := plan.Metrics()
	fmt.Printf("metrics (per data block): %.4f XORs, %.4f reads, %.4f writes, %.4f total I/O\n",
		m.XORRatio, m.ReadRatio, m.WriteRatio, m.TotalIORatio)
	c := telemetry.Default().Snapshot().Counters
	delta := func(name string) int64 { return c[name] - base[name] }
	fmt.Printf("telemetry: %d reads, %d writes, %d XORs (plan: %d reads, %d writes, %d XORs)\n",
		delta("migrate.exec.reads"), delta("migrate.exec.writes"), delta("migrate.exec.xors"),
		plan.TotalReads(), plan.TotalWrites(), plan.XORs)
	if delta("migrate.exec.reads") != int64(plan.TotalReads()) ||
		delta("migrate.exec.writes") != int64(plan.TotalWrites()) ||
		delta("migrate.exec.xors") != int64(plan.XORs) {
		return fmt.Errorf("executor counters diverge from the plan's aggregates")
	}
	return nil
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
