package main

import (
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"code56/internal/obs"
)

// online returns a small runOnline config; tests override what they probe.
func online(disks, stripes int, workload string, ops int) onlineConfig {
	return onlineConfig{
		disks:    disks,
		stripes:  stripes,
		block:    512,
		workload: workload,
		ops:      ops,
		seed:     1,
		workers:  1,
	}
}

func TestRunWorkloads(t *testing.T) {
	for _, w := range []string{"random", "sequential", "write-heavy", "zipf", "none"} {
		if err := runOnline(online(4, 4, w, 50)); err != nil {
			t.Fatalf("%s: %v", w, err)
		}
	}
	if err := runOnline(online(4, 4, "nonesuch", 10)); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := runOnline(online(5, 4, "none", 0)); err == nil {
		t.Error("non-prime-plus-one disk count accepted")
	}
}

func TestRunSnapshot(t *testing.T) {
	cfg := online(4, 2, "none", 0)
	cfg.snapshot = filepath.Join(t.TempDir(), "arr.snap")
	cfg.workers = 4
	if err := runOnline(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnlineWithFaults(t *testing.T) {
	cfg := online(4, 8, "random", 100)
	cfg.faults = faultOpts{latent: 0.01, transient: 0.02, seed: 3, retry: 4}
	if err := runOnline(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunOnlineWithPlane runs a migration registered on a live plane and
// scrapes it afterwards: the acceptance-criteria smoke that -http serves
// the migration's own series.
func TestRunOnlineWithPlane(t *testing.T) {
	srv, handle, err := obs.Plane("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()
	cfg := online(4, 4, "random", 50)
	cfg.plane = srv
	if err := runOnline(cfg); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/healthz", "/progress"} {
		resp, err := http.Get("http://" + handle.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d\n%s", path, resp.StatusCode, body)
		}
		switch path {
		case "/metrics":
			for _, series := range []string{"migrate_stripes_converted", "vdisk_reads", "migrate_stripe_rate_total"} {
				if !strings.Contains(string(body), series) {
					t.Fatalf("/metrics missing %s", series)
				}
			}
		case "/healthz":
			if !strings.Contains(string(body), `"status": "ok"`) {
				t.Fatalf("/healthz not ok:\n%s", body)
			}
		case "/progress":
			if !strings.Contains(string(body), `"State": "finished"`) {
				t.Fatalf("/progress not finished:\n%s", body)
			}
		}
	}
}

func TestRunOffline(t *testing.T) {
	if err := runOffline(4, 512, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := runOffline(4, 512, 1, 4); err != nil {
		t.Fatal(err)
	}
}
