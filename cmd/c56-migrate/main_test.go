package main

import (
	"path/filepath"
	"testing"
)

func TestRunWorkloads(t *testing.T) {
	for _, w := range []string{"random", "sequential", "write-heavy", "zipf", "none"} {
		if err := runOnline(4, 4, 512, w, 50, 1, 0, "", 1, false, faultOpts{}); err != nil {
			t.Fatalf("%s: %v", w, err)
		}
	}
	if err := runOnline(4, 4, 512, "nonesuch", 10, 1, 0, "", 1, false, faultOpts{}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := runOnline(5, 4, 512, "none", 0, 1, 0, "", 1, false, faultOpts{}); err == nil {
		t.Error("non-prime-plus-one disk count accepted")
	}
}

func TestRunSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arr.snap")
	if err := runOnline(4, 2, 512, "none", 0, 1, 0, path, 4, false, faultOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnlineWithFaults(t *testing.T) {
	f := faultOpts{latent: 0.01, transient: 0.02, seed: 3, retry: 4}
	if err := runOnline(4, 8, 512, "random", 100, 1, 0, "", 1, false, f); err != nil {
		t.Fatal(err)
	}
}

func TestRunOffline(t *testing.T) {
	if err := runOffline(4, 512, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := runOffline(4, 512, 1, 4); err != nil {
		t.Fatal(err)
	}
}
