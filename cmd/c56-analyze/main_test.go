package main

import "testing"

// TestRunModes smoke-tests every mode of the tool.
func TestRunModes(t *testing.T) {
	cases := []struct {
		name                                                    string
		fig, table, n                                           int
		csv, all, ablations, recovery, writeperf, degra, motive bool
		planFor                                                 string
	}{
		{name: "fig15", fig: 15, n: 6},
		{name: "fig15csv", fig: 15, n: 6, csv: true},
		{name: "fig18", fig: 18},
		{name: "table3", table: 3},
		{name: "table4", table: 4, n: 5},
		{name: "table6", table: 6, n: 6},
		{name: "ablations", ablations: true},
		{name: "recovery", recovery: true},
		{name: "degraded", degra: true},
		{name: "motivation", motive: true},
		{name: "plan", planFor: "code56", n: 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.fig, c.table, c.n, c.csv, c.all, c.ablations, c.recovery, c.writeperf, c.degra, c.motive, c.planFor); err != nil {
				t.Fatal(err)
			}
		})
	}
	if err := run(0, 0, 0, false, false, false, false, false, false, false, ""); err == nil {
		t.Error("no-op invocation should error with usage hint")
	}
	if err := run(0, 0, 5, false, false, false, false, false, false, false, "nonesuch"); err == nil {
		t.Error("unknown plan code accepted")
	}
}

// TestRunAll smoke-tests the full -all report (a few seconds).
func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("-all report skipped in -short mode")
	}
	if err := run(0, 0, 6, false, true, false, false, false, false, false, ""); err != nil {
		t.Fatal(err)
	}
}
