// Command c56-analyze regenerates the paper's analytical evaluation:
// Figures 9–18, Table III, and Table IV, from the migration planner's cost
// model.
//
// Usage:
//
//	c56-analyze -all                 # everything, all n
//	c56-analyze -fig 15 -n 6        # one figure at one array size
//	c56-analyze -fig 15 -n 6 -csv   # ... as CSV
//	c56-analyze -table 4            # Table IV (NLB and LB)
//	c56-analyze -fig 18             # storage efficiency series
//	c56-analyze -ablations          # the DESIGN.md §4.5 ablation studies
//	c56-analyze -recovery           # hybrid single-disk recovery (Fig. 6)
package main

import (
	"flag"
	"fmt"
	"os"

	"code56/internal/analysis"
	"code56/internal/migrate"
	"code56/internal/obs"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure number to regenerate (9-18)")
		table     = flag.Int("table", 0, "table number to regenerate (3, 4 or 6)")
		n         = flag.Int("n", 0, "target RAID-6 disk count (default: 5, 6 and 7)")
		csv       = flag.Bool("csv", false, "emit CSV instead of a text table")
		all       = flag.Bool("all", false, "regenerate everything")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		recovery  = flag.Bool("recovery", false, "hybrid single-disk recovery study (paper Fig. 6)")
		writeperf = flag.Bool("writeperf", false, "post-conversion small-write cost (paper §V-D)")
		degraded  = flag.Bool("degraded", false, "degraded-read I/O amplification study")
		motive    = flag.Bool("motivation", false, "quantified §I motivation: RAID-5 vs RAID-6 MTTDL from Table I AFRs")
		planFor   = flag.String("plan", "", "dump the operation stream of one conversion (code name, e.g. code56; with -n)")
		httpAddr  = flag.String("http", "", "serve the observability plane (/metrics, /healthz, /debug/pprof) on this address, e.g. :8080")
	)
	flag.Parse()

	_, handle, err := obs.Plane(*httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-analyze:", err)
		os.Exit(1)
	}
	defer handle.Drain()
	if handle != nil {
		fmt.Fprintf(os.Stderr, "observability plane listening on http://%s\n", handle.Addr())
	}
	if err := run(*fig, *table, *n, *csv, *all, *ablations, *recovery, *writeperf, *degraded, *motive, *planFor); err != nil {
		fmt.Fprintln(os.Stderr, "c56-analyze:", err)
		os.Exit(1)
	}
}

func run(fig, table, n int, csv, all, ablations, recovery, writeperf, degraded, motive bool, planFor string) error {
	ns := []int{5, 6, 7}
	if n != 0 {
		ns = []int{n}
	}
	out := os.Stdout

	if all {
		if err := analysis.RenderMotivation(out, 5, 24); err != nil {
			return err
		}
		fmt.Fprintln(out)
		for _, n := range ns {
			if err := analysis.RenderAllMetrics(out, n); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		if err := analysis.RenderTableIII(out, 6); err != nil {
			return err
		}
		fmt.Fprintln(out)
		for _, lb := range []bool{false, true} {
			if err := analysis.RenderSpeedupTable(out, ns, lb); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		if err := analysis.RenderStorageEfficiency(out, 3, 20); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := analysis.RenderTableVI(out, 6); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := analysis.RenderHybridRecovery(out, []int{5, 7, 11, 13}); err != nil {
			return err
		}
		fmt.Fprintln(out)
		for _, p := range []int{5, 7} {
			if err := analysis.RenderRecoveryAcrossCodes(out, p); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if err := analysis.RenderWritePerformance(out, p, 1000); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if err := analysis.RenderDegradedReads(out, p); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return runAblations(out)
	}

	switch {
	case planFor != "":
		target := 6
		if n != 0 {
			target = n
		}
		printed := false
		for _, c := range migrate.StandardConversions(target) {
			if c.Code.Name() != planFor {
				continue
			}
			plan, err := migrate.NewPlan(c)
			if err != nil {
				return err
			}
			if err := plan.Describe(out, 40); err != nil {
				return err
			}
			fmt.Fprintln(out)
			printed = true
		}
		if !printed {
			return fmt.Errorf("no conversion for code %q at n=%d", planFor, target)
		}
		return nil
	case motive:
		return analysis.RenderMotivation(out, 5, 24)
	case degraded:
		for _, p := range []int{5, 7} {
			if err := analysis.RenderDegradedReads(out, p); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	case writeperf:
		for _, p := range []int{5, 7} {
			if err := analysis.RenderWritePerformance(out, p, 1000); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	case recovery:
		return analysis.RenderHybridRecovery(out, []int{5, 7, 11, 13})
	case ablations:
		return runAblations(out)
	case table == 3:
		return analysis.RenderTableIII(out, pick(ns))
	case table == 4:
		if err := analysis.RenderSpeedupTable(out, ns, false); err != nil {
			return err
		}
		return analysis.RenderSpeedupTable(out, ns, true)
	case table == 6:
		for _, n := range ns {
			if err := analysis.RenderTableVI(out, n); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	case fig == 18:
		return analysis.RenderStorageEfficiency(out, 3, 20)
	case fig >= 9 && fig <= 17:
		f := analysis.Figure(fig)
		for _, n := range ns {
			var err error
			if csv {
				err = analysis.RenderFigureCSV(out, f, n)
			} else {
				err = analysis.RenderFigure(out, f, n)
			}
			if err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -all, -fig, -table, -ablations or -recovery")
	}
}

func pick(ns []int) int {
	for _, n := range ns {
		if n == 6 {
			return 6
		}
	}
	return ns[0]
}

func runAblations(out *os.File) error {
	for _, p := range []int{5, 7} {
		ab, err := analysis.AblationHCodeDirect(p)
		if err != nil {
			return err
		}
		if err := analysis.RenderAblation(out, ab); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ab, err = analysis.AblationLayoutMismatch(p)
		if err != nil {
			return err
		}
		if err := analysis.RenderAblation(out, ab); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
