// Command c56-sim regenerates the paper's §V-C simulation study (Figure 19
// and Table V): it synthesizes migration I/O traces for every conversion
// scheme and replays them through the DiskSim-substitute disk simulator.
//
// Usage:
//
//	c56-sim                          # both panels of Fig. 19 + Table V
//	c56-sim -p 7 -block 8192        # one panel
//	c56-sim -by-n -n 6              # group codes by resulting disk count
//	c56-sim -B 600000               # the paper's full 0.6M-block scale
//	c56-sim -dump-trace out.trace -p 5 -code code56
//	c56-sim -faults -fault-seed 7   # deterministic fault-injection smoke run
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"code56"
	"code56/internal/analysis"
	"code56/internal/disksim"
	"code56/internal/migrate"
	"code56/internal/obs"
	"code56/internal/telemetry"
	"code56/internal/trace"
)

func main() {
	var (
		p         = flag.Int("p", 0, "prime parameter (default: both 5 and 7)")
		n         = flag.Int("n", 0, "with -by-n: target disk count")
		byN       = flag.Bool("by-n", false, "group codes by resulting disk count instead of by p")
		block     = flag.Int("block", 0, "block size in bytes (default: both 4096 and 8192)")
		b         = flag.Int("B", 60000, "total data blocks (paper: 600000)")
		nlb       = flag.Bool("nlb", false, "disable load-balancing support (paper's Fig. 19 uses LB)")
		seek      = flag.Float64("seek", 8.5, "average seek time, ms")
		rot       = flag.Float64("rotation", 8.33, "full-rotation time, ms")
		rate      = flag.Float64("rate", 100, "media transfer rate, MB/s")
		window    = flag.Int64("window", 16, "read-through window, blocks")
		util      = flag.Bool("utilization", false, "also print per-disk utilization of each winner")
		dumpTrace = flag.String("dump-trace", "", "write the migration trace for -code to a file and exit")
		codeName  = flag.String("code", "code56", "with -dump-trace: which code's trace to dump")
		metrics   = flag.String("metrics", "", "dump final telemetry counters to this file ('-' for stdout, '.json' suffix for JSON)")
		traceOut  = flag.String("trace", "", "write a JSON-lines span/event trace to this file ('-' for stderr)")
		faults    = flag.Bool("faults", false, "run the deterministic fault-injection smoke scenario and exit")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the -faults scenario")
		backend   = flag.String("backend", "", "block-store backend for the -faults scenario: 'mem:' (default) or 'file:<dir>'")
		httpAddr  = flag.String("http", "", "serve the observability plane (/metrics, /healthz, /debug/pprof) on this address, e.g. :8080")
	)
	flag.Parse()
	_, handle, err := obs.Plane(*httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-sim:", err)
		os.Exit(1)
	}
	defer handle.Drain()
	if handle != nil {
		fmt.Fprintf(os.Stderr, "observability plane listening on http://%s\n", handle.Addr())
	}

	if *faults {
		if err := runFaults(*faultSeed, *block, *backend); err != nil {
			fmt.Fprintln(os.Stderr, "c56-sim:", err)
			os.Exit(1)
		}
		return
	}

	model := disksim.Model{SeekTime: *seek, RotationTime: *rot, TransferMBps: *rate, SeqWindow: *window}
	cfg := analysis.SimConfig{TotalDataBlocks: *b, LoadBalanced: !*nlb, Model: model}

	closeTrace, err := telemetry.AttachTraceFile(telemetry.DefaultTracer(), *traceOut)
	if err == nil {
		err = run(*p, *n, *byN, *block, cfg, *dumpTrace, *codeName, *util)
	}
	if cerr := closeTrace(); err == nil {
		err = cerr
	}
	if merr := telemetry.DumpMetrics(telemetry.Default(), *metrics); err == nil {
		err = merr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-sim:", err)
		os.Exit(1)
	}
}

func run(p, n int, byN bool, block int, cfg analysis.SimConfig, dumpTrace, codeName string, util bool) error {
	blocks := []int{4096, 8192}
	if block != 0 {
		blocks = []int{block}
	}

	if dumpTrace != "" {
		if p == 0 {
			p = 5
		}
		cfg.BlockSize = blocks[0]
		return dump(p, cfg, dumpTrace, codeName)
	}

	if byN {
		ns := []int{5, 6, 7}
		if n != 0 {
			ns = []int{n}
		}
		for _, n := range ns {
			for _, bs := range blocks {
				c := cfg
				c.BlockSize = bs
				if err := analysis.RenderSimulation(os.Stdout, n, c); err != nil {
					return err
				}
				fmt.Println()
			}
		}
		return nil
	}

	ps := []int{5, 7}
	if p != 0 {
		ps = []int{p}
	}
	for _, p := range ps {
		for _, bs := range blocks {
			c := cfg
			c.BlockSize = bs
			if err := analysis.RenderSimulationByP(os.Stdout, p, c); err != nil {
				return err
			}
			if util {
				details, err := analysis.SimulateBestByPDetailed(p, c)
				if err != nil {
					return err
				}
				for _, d := range details {
					fmt.Printf("  %-10s seq %.0f%%  util:", d.Code, d.SequentialFrac*100)
					for _, u := range d.Utilization {
						fmt.Printf(" %.2f", u)
					}
					fmt.Println()
				}
			}
			fmt.Println()
		}
	}
	return nil
}

// runFaults is the -faults smoke scenario: a seeded fault injector
// (transient I/O errors plus latent-sector discovery) runs against an
// online RAID-5 → Code 5-6 migration with a retry policy, then a disk is
// fail-stopped, every block is served degraded, the disk is replaced and
// rebuilt, and a final scrub plus full read-back proves zero data loss.
// With backend "file:<dir>" the whole scenario runs over durable sparse
// image files instead of in-memory stores.
func runFaults(seed int64, block int, backend string) error {
	if block == 0 {
		block = 4096
	}
	const (
		disks = 4  // p = 5
		rows  = 24 // 6 Code 5-6 stripes
	)
	r5, err := code56.NewRAID5Array(disks,
		code56.WithBackend(backend), code56.WithBlockSize(block))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	blocks := int64(disks-1) * rows
	want := make([][]byte, blocks)
	for L := int64(0); L < blocks; L++ {
		b := make([]byte, block)
		rng.Read(b)
		want[L] = b
		if err := r5.WriteBlock(L, b); err != nil {
			return err
		}
	}

	// Arm the injector and a retry policy that absorbs most transients.
	if err := r5.Disks().SetRetry(4, 0); err != nil {
		return err
	}
	err = r5.Disks().SetFaults(code56.FaultConfig{
		Seed:              seed,
		ReadTransientProb: 0.02,
		LatentProb:        0.01,
	})
	if err != nil {
		return err
	}

	mig, err := code56.NewMigrator(r5, rows)
	if err != nil {
		return err
	}
	if err := mig.Start(); err != nil {
		return err
	}
	if err := mig.Wait(); err != nil {
		return err
	}
	st := mig.Stats()
	fmt.Printf("migration: %d stripes converted under faults, %d bad blocks repaired in flight\n",
		st.StripesConverted, st.FaultsRepaired)

	// Quiesce the injector, then lose a whole disk.
	if err := r5.Disks().SetFaults(code56.FaultConfig{}); err != nil {
		return err
	}
	r6, err := mig.Result()
	if err != nil {
		return err
	}
	r6.Disks().Disk(1).Fail()
	buf := make([]byte, block)
	for L := int64(0); L < blocks; L++ {
		if err := r6.ReadBlock(L, buf); err != nil {
			return fmt.Errorf("degraded read of block %d: %w", L, err)
		}
		if !bytes.Equal(buf, want[L]) {
			return fmt.Errorf("degraded read of block %d returned wrong data", L)
		}
	}
	fmt.Printf("degraded: all %d blocks served with disk 1 failed\n", blocks)

	r6.Disks().Disk(1).Replace()
	const stripes = rows / disks // p-1 = 4 rows per Code 5-6 stripe
	if err := r6.Rebuild(int64(stripes), 1); err != nil {
		return err
	}
	rep, err := r6.Scrub(int64(stripes))
	if err != nil {
		return err
	}
	if !rep.Clean() {
		return fmt.Errorf("post-rebuild scrub found problems: %+v", rep)
	}
	for L := int64(0); L < blocks; L++ {
		if err := r6.ReadBlock(L, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, want[L]) {
			return fmt.Errorf("block %d wrong after rebuild", L)
		}
	}
	if err := r6.Disks().Sync(); err != nil {
		return err
	}
	fmt.Printf("rebuilt: disk 1 restored, scrub clean, zero data loss\n")
	return nil
}

// dump writes one code's best-approach migration trace in the DiskSim-style
// ASCII format.
func dump(p int, cfg analysis.SimConfig, path, codeName string) error {
	convs, err := analysis.ConversionsByP(p)
	if err != nil {
		return err
	}
	var best *migrate.Plan
	var bestTime float64
	for _, c := range convs {
		if c.Code.Name() != codeName {
			continue
		}
		plan, err := migrate.NewPlan(c)
		if err != nil {
			return err
		}
		tm := plan.Metrics().TimeLB
		if best == nil || tm < bestTime {
			best, bestTime = plan, tm
		}
	}
	if best == nil {
		return fmt.Errorf("no conversion for code %q at p=%d", codeName, p)
	}
	phases := trace.FromPlan(best, trace.Options{
		TotalDataBlocks: cfg.TotalDataBlocks,
		LoadBalanced:    cfg.LoadBalanced,
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i, ph := range phases {
		if _, err := fmt.Fprintf(f, "# phase %d (%s)\n", i, best.PhaseNames[i]); err != nil {
			return err
		}
		if err := trace.Write(f, ph); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s trace (%s) to %s\n", codeName, best.Conv.Label(), path)
	return nil
}
