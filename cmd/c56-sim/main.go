// Command c56-sim regenerates the paper's §V-C simulation study (Figure 19
// and Table V): it synthesizes migration I/O traces for every conversion
// scheme and replays them through the DiskSim-substitute disk simulator.
//
// Usage:
//
//	c56-sim                          # both panels of Fig. 19 + Table V
//	c56-sim -p 7 -block 8192        # one panel
//	c56-sim -by-n -n 6              # group codes by resulting disk count
//	c56-sim -B 600000               # the paper's full 0.6M-block scale
//	c56-sim -dump-trace out.trace -p 5 -code code56
package main

import (
	"flag"
	"fmt"
	"os"

	"code56/internal/analysis"
	"code56/internal/disksim"
	"code56/internal/migrate"
	"code56/internal/telemetry"
	"code56/internal/trace"
)

func main() {
	var (
		p         = flag.Int("p", 0, "prime parameter (default: both 5 and 7)")
		n         = flag.Int("n", 0, "with -by-n: target disk count")
		byN       = flag.Bool("by-n", false, "group codes by resulting disk count instead of by p")
		block     = flag.Int("block", 0, "block size in bytes (default: both 4096 and 8192)")
		b         = flag.Int("B", 60000, "total data blocks (paper: 600000)")
		nlb       = flag.Bool("nlb", false, "disable load-balancing support (paper's Fig. 19 uses LB)")
		seek      = flag.Float64("seek", 8.5, "average seek time, ms")
		rot       = flag.Float64("rotation", 8.33, "full-rotation time, ms")
		rate      = flag.Float64("rate", 100, "media transfer rate, MB/s")
		window    = flag.Int64("window", 16, "read-through window, blocks")
		util      = flag.Bool("utilization", false, "also print per-disk utilization of each winner")
		dumpTrace = flag.String("dump-trace", "", "write the migration trace for -code to a file and exit")
		codeName  = flag.String("code", "code56", "with -dump-trace: which code's trace to dump")
		metrics   = flag.String("metrics", "", "dump final telemetry counters to this file ('-' for stdout, '.json' suffix for JSON)")
		traceOut  = flag.String("trace", "", "write a JSON-lines span/event trace to this file ('-' for stderr)")
	)
	flag.Parse()

	model := disksim.Model{SeekTime: *seek, RotationTime: *rot, TransferMBps: *rate, SeqWindow: *window}
	cfg := analysis.SimConfig{TotalDataBlocks: *b, LoadBalanced: !*nlb, Model: model}

	closeTrace, err := telemetry.AttachTraceFile(telemetry.DefaultTracer(), *traceOut)
	if err == nil {
		err = run(*p, *n, *byN, *block, cfg, *dumpTrace, *codeName, *util)
	}
	if cerr := closeTrace(); err == nil {
		err = cerr
	}
	if merr := telemetry.DumpMetrics(telemetry.Default(), *metrics); err == nil {
		err = merr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "c56-sim:", err)
		os.Exit(1)
	}
}

func run(p, n int, byN bool, block int, cfg analysis.SimConfig, dumpTrace, codeName string, util bool) error {
	blocks := []int{4096, 8192}
	if block != 0 {
		blocks = []int{block}
	}

	if dumpTrace != "" {
		if p == 0 {
			p = 5
		}
		cfg.BlockSize = blocks[0]
		return dump(p, cfg, dumpTrace, codeName)
	}

	if byN {
		ns := []int{5, 6, 7}
		if n != 0 {
			ns = []int{n}
		}
		for _, n := range ns {
			for _, bs := range blocks {
				c := cfg
				c.BlockSize = bs
				if err := analysis.RenderSimulation(os.Stdout, n, c); err != nil {
					return err
				}
				fmt.Println()
			}
		}
		return nil
	}

	ps := []int{5, 7}
	if p != 0 {
		ps = []int{p}
	}
	for _, p := range ps {
		for _, bs := range blocks {
			c := cfg
			c.BlockSize = bs
			if err := analysis.RenderSimulationByP(os.Stdout, p, c); err != nil {
				return err
			}
			if util {
				details, err := analysis.SimulateBestByPDetailed(p, c)
				if err != nil {
					return err
				}
				for _, d := range details {
					fmt.Printf("  %-10s seq %.0f%%  util:", d.Code, d.SequentialFrac*100)
					for _, u := range d.Utilization {
						fmt.Printf(" %.2f", u)
					}
					fmt.Println()
				}
			}
			fmt.Println()
		}
	}
	return nil
}

// dump writes one code's best-approach migration trace in the DiskSim-style
// ASCII format.
func dump(p int, cfg analysis.SimConfig, path, codeName string) error {
	convs, err := analysis.ConversionsByP(p)
	if err != nil {
		return err
	}
	var best *migrate.Plan
	var bestTime float64
	for _, c := range convs {
		if c.Code.Name() != codeName {
			continue
		}
		plan, err := migrate.NewPlan(c)
		if err != nil {
			return err
		}
		tm := plan.Metrics().TimeLB
		if best == nil || tm < bestTime {
			best, bestTime = plan, tm
		}
	}
	if best == nil {
		return fmt.Errorf("no conversion for code %q at p=%d", codeName, p)
	}
	phases := trace.FromPlan(best, trace.Options{
		TotalDataBlocks: cfg.TotalDataBlocks,
		LoadBalanced:    cfg.LoadBalanced,
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i, ph := range phases {
		if _, err := fmt.Fprintf(f, "# phase %d (%s)\n", i, best.PhaseNames[i]); err != nil {
			return err
		}
		if err := trace.Write(f, ph); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s trace (%s) to %s\n", codeName, best.Conv.Label(), path)
	return nil
}
