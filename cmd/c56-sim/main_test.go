package main

import (
	"os"
	"path/filepath"
	"testing"

	"code56/internal/analysis"
	"code56/internal/disksim"
)

func TestRunByPAndByN(t *testing.T) {
	cfg := analysis.SimConfig{TotalDataBlocks: 600, LoadBalanced: true, Model: disksim.DefaultModel()}
	if err := run(5, 0, false, 4096, cfg, "", "", true); err != nil {
		t.Fatal(err)
	}
	if err := run(0, 5, true, 4096, cfg, "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestDumpTrace(t *testing.T) {
	cfg := analysis.SimConfig{TotalDataBlocks: 120, LoadBalanced: true, Model: disksim.DefaultModel()}
	path := filepath.Join(t.TempDir(), "out.trace")
	if err := run(5, 0, false, 4096, cfg, path, "code56", false); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("empty trace file")
	}
	if err := run(5, 0, false, 4096, cfg, path, "nonesuch", false); err == nil {
		t.Error("unknown code accepted for dump")
	}
}
