package code56

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"code56/internal/durable"
)

func TestBackendSpecGrammar(t *testing.T) {
	for _, spec := range []string{"", "mem:", "file:/tmp/x"} {
		s := ApplyOptions(WithBackend(spec))
		if err := s.Err(); err != nil {
			t.Errorf("spec %q rejected: %v", spec, err)
		}
	}
	for _, spec := range []string{"file:", "mem", "disk:/x", "s3://bucket"} {
		s := ApplyOptions(WithBackend(spec))
		if err := s.Err(); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	bad := ApplyOptions(WithCheckpointInterval(0))
	if err := bad.Err(); err == nil {
		t.Error("WithCheckpointInterval(0) accepted")
	}
}

// TestPositionalConstructorsStayInMemory pins the compatibility promise:
// the positional constructors and the option forms without WithBackend
// build pure in-memory arrays (no Dir capability on the backend).
func TestPositionalConstructorsStayInMemory(t *testing.T) {
	a, err := NewRAID5Array(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Disks().Backend().(interface{ Dir() string }); ok {
		t.Fatal("default backend is not in-memory")
	}
	m, err := NewMigrator(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Journal() != nil {
		t.Fatal("in-memory migration must not be journaled")
	}
}

func TestFileBackedRAID6RoundTrip(t *testing.T) {
	dir := t.TempDir()
	code, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewRAID6Array(code, WithBackend("file:"+dir), WithBlockSize(512))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	want := make([][]byte, 12)
	for l := range want {
		b := make([]byte, 512)
		r.Read(b)
		want[l] = b
		if err := a.WriteBlock(int64(l), b); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Disks().Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Disks().Close(); err != nil {
		t.Fatal(err)
	}

	// Kind mismatch is caught, with a pointer to the right entry point.
	if _, err := OpenRAID5Array(dir); err == nil {
		t.Fatal("OpenRAID5Array accepted a raid6 directory")
	}

	b, err := OpenRAID6Array(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Disks().Close()
	if b.Code().Name() != "code56" || b.BlockSize() != 512 {
		t.Fatalf("reopened identity: %s/%d", b.Code().Name(), b.BlockSize())
	}
	buf := make([]byte, 512)
	for l, w := range want {
		if err := b.ReadBlock(int64(l), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d mismatch after reopen", l)
		}
	}
	// Survives a double failure after reopen, like any RAID-6.
	b.Disks().Disk(0).Fail()
	b.Disks().Disk(2).Fail()
	if err := b.ReadBlock(0, buf); err != nil {
		t.Fatalf("degraded read after reopen: %v", err)
	}
	if !bytes.Equal(buf, want[0]) {
		t.Fatal("degraded read returned wrong data")
	}
}

func TestResumeMigrationErrors(t *testing.T) {
	// No meta.json at all.
	if _, err := ResumeMigration(t.TempDir()); !errors.Is(err, durable.ErrNoMeta) {
		t.Fatalf("empty dir: %v", err)
	}
	// A RAID-5 directory that never began a migration.
	dir := t.TempDir()
	a, err := NewRAID5Array(4, WithBackend("file:"+dir), WithBlockSize(512))
	if err != nil {
		t.Fatal(err)
	}
	a.Disks().Close()
	if _, err := ResumeMigration(dir); !errors.Is(err, ErrNoMigration) {
		t.Fatalf("unbegun dir: %v", err)
	}
	// A RAID-6 directory: migration (or construction) already complete.
	dir6 := t.TempDir()
	code, _ := New(5)
	b, err := NewRAID6Array(code, WithBackend("file:"+dir6), WithBlockSize(512))
	if err != nil {
		t.Fatal(err)
	}
	b.Disks().Close()
	if _, err := ResumeMigration(dir6); !errors.Is(err, ErrMigrationComplete) {
		t.Fatalf("raid6 dir: %v", err)
	}
	if _, err := OpenRAID6Array(dir); err == nil {
		t.Fatal("OpenRAID6Array accepted a raid5 directory")
	}
}
