package code56_test

import (
	"fmt"
	"log"
	"math/rand"

	code56 "code56"
)

// The shortest possible tour: encode a stripe, lose two disks, recover
// with the paper's Algorithm 1.
func ExampleNew() {
	code, err := code56.New(5)
	if err != nil {
		log.Fatal(err)
	}
	stripe := code56.NewStripe(code.Geometry(), 64)
	stripe.FillRandom(code, rand.New(rand.NewSource(1)))
	code56.Encode(code, stripe)
	original := stripe.Clone()

	stripe.ZeroColumn(1)
	stripe.ZeroColumn(3)
	stats, err := code.ReconstructDouble(stripe, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered blocks:", stats.Recovered)
	fmt.Println("intact:", stripe.Equal(original))
	// Output:
	// recovered blocks: 8
	// intact: true
}

// Online migration of a live RAID-5 to a Code 5-6 RAID-6 (the paper's
// Algorithm 2), then a double failure the old array could not survive.
func ExampleNewOnlineMigrator() {
	r5, err := code56.NewRAID5(4, 512, code56.LeftAsymmetric)
	if err != nil {
		log.Fatal(err)
	}
	const rows = 8 // 2 Code 5-6 stripes at p = 5
	block := make([]byte, 512)
	for L := int64(0); L < rows*3; L++ {
		if err := r5.WriteBlock(L, block); err != nil {
			log.Fatal(err)
		}
	}

	mig, err := code56.NewOnlineMigrator(r5, rows)
	if err != nil {
		log.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		log.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		log.Fatal(err)
	}
	r6, err := mig.Result()
	if err != nil {
		log.Fatal(err)
	}

	r6.Disks().Disk(0).Fail()
	r6.Disks().Disk(2).Fail()
	ok := true
	buf := make([]byte, 512)
	for st := int64(0); st < 2; st++ {
		for r := 0; r < 4; r++ {
			for c := 0; c < 5; c++ {
				if err := r6.ReadCell(st, code56.Coord{Row: r, Col: c}, buf); err != nil {
					ok = false
				}
			}
		}
	}
	fmt.Println("all cells served under double failure:", ok)
	// Output:
	// all cells served under double failure: true
}

// Planning a conversion and reading the paper's cost metrics off it.
func ExampleNewVirtualPlan() {
	plan, err := code56.NewVirtualPlan(4, code56.LeftAsymmetric) // p = 5, no padding
	if err != nil {
		log.Fatal(err)
	}
	m := plan.Metrics()
	fmt.Printf("new parities per data block: %.3f\n", m.NewParityRatio)
	fmt.Printf("total I/O per data block:   %.3f\n", m.TotalIORatio)
	fmt.Printf("old parities touched:       %.0f\n", m.InvalidParityRatio+m.MigrationRatio)
	// Output:
	// new parities per data block: 0.333
	// total I/O per data block:   1.333
	// old parities touched:       0
}

// Read-minimizing single-disk recovery for any code (§III-E-4).
func ExamplePlanColumnRecovery() {
	code, _ := code56.New(5)
	plan, _ := code56.PlanColumnRecovery(code, 1)
	conventional, _ := code56.ConventionalRecoveryReads(code, 1)
	fmt.Printf("reads: %d hybrid vs %d conventional\n", plan.Reads, conventional)
	// Output:
	// reads: 9 hybrid vs 12 conventional
}
