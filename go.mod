module code56

go 1.22
