package code56

// This file is the benchmark harness deliverable: one benchmark per table
// and figure of the paper's evaluation (§V), each regenerating the same
// rows/series the paper reports, plus throughput benchmarks for the
// underlying machinery. Run with:
//
//	go test -bench=. -benchmem
//
// Scale note: the figure/table benchmarks run the full regeneration at a
// reduced B per iteration; cmd/c56-analyze and cmd/c56-sim run the
// paper-scale versions.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"code56/internal/analysis"
	"code56/internal/core"
	"code56/internal/disksim"
	"code56/internal/fleet"
	"code56/internal/layout"
	"code56/internal/migrate"
	"code56/internal/raid5"
	"code56/internal/trace"
)

// benchFigure regenerates one §V-B comparison figure across n = 5, 6, 7.
func benchFigure(b *testing.B, f analysis.Figure) {
	for _, n := range []int{5, 6, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				entries, err := analysis.Compare(n)
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range entries {
					_ = f.Value(e.Metrics)
				}
			}
		})
	}
}

func BenchmarkFig09InvalidParityRatio(b *testing.B) { benchFigure(b, analysis.Fig9InvalidParity) }
func BenchmarkFig10MigrationRatio(b *testing.B)     { benchFigure(b, analysis.Fig10Migration) }
func BenchmarkFig11NewParityRatio(b *testing.B)     { benchFigure(b, analysis.Fig11NewParity) }
func BenchmarkFig12ExtraSpaceRatio(b *testing.B)    { benchFigure(b, analysis.Fig12ExtraSpace) }
func BenchmarkFig13ComputationCost(b *testing.B)    { benchFigure(b, analysis.Fig13Computation) }
func BenchmarkFig14WriteIOs(b *testing.B)           { benchFigure(b, analysis.Fig14WriteIO) }
func BenchmarkFig15TotalIOs(b *testing.B)           { benchFigure(b, analysis.Fig15TotalIO) }
func BenchmarkFig16ConversionTimeNLB(b *testing.B)  { benchFigure(b, analysis.Fig16TimeNLB) }
func BenchmarkFig17ConversionTimeLB(b *testing.B)   { benchFigure(b, analysis.Fig17TimeLB) }

// BenchmarkFig18StorageEfficiency regenerates the Fig. 18 series.
func BenchmarkFig18StorageEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := analysis.StorageEfficiencySeries(3, 20)
		if len(pts) != 18 {
			b.Fatal("wrong series length")
		}
	}
}

// BenchmarkFig19Simulation regenerates both panels of Fig. 19 (4 KB and
// 8 KB blocks) at both p values, trace synthesis plus disk simulation.
func BenchmarkFig19Simulation(b *testing.B) {
	for _, p := range []int{5, 7} {
		for _, bs := range []int{4096, 8192} {
			b.Run(fmt.Sprintf("p=%d/block=%d", p, bs), func(b *testing.B) {
				cfg := analysis.SimConfig{BlockSize: bs, TotalDataBlocks: 6000, LoadBalanced: true}
				for i := 0; i < b.N; i++ {
					entries, err := analysis.SimulateBestByP(p, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if len(entries) == 0 {
						b.Fatal("no entries")
					}
				}
			})
		}
	}
}

// BenchmarkTable3Qualitative regenerates the derived Table III.
func BenchmarkTable3Qualitative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analysis.TableIII(6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Speedups regenerates Table IV (both modes).
func BenchmarkTable4Speedups(b *testing.B) {
	for _, lb := range []bool{false, true} {
		name := "NLB"
		if lb {
			name = "LB"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := analysis.SpeedupTable([]int{5, 6, 7}, lb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5SimSpeedups regenerates Table V from a p=5 simulation.
func BenchmarkTable5SimSpeedups(b *testing.B) {
	cfg := analysis.SimConfig{BlockSize: 4096, TotalDataBlocks: 6000, LoadBalanced: true}
	for i := 0; i < b.N; i++ {
		entries, err := analysis.SimulateBestByP(5, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := analysis.SimSpeedups(entries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6HybridRecovery regenerates the §III-E-4 recovery study
// (exhaustive plan search per prime).
func BenchmarkFig6HybridRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analysis.HybridRecoverySeries([]int{5, 7, 11, 13}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Throughput benchmarks for the machinery under the figures. ---

// benchCodes returns the comparison set at p=5 plus Code 5-6 at p=13 for a
// larger-stripe data point.
func benchCodes(b *testing.B) map[string]Code {
	b.Helper()
	rdp5, err := NewRDP(5)
	if err != nil {
		b.Fatal(err)
	}
	eo5, err := NewEVENODD(5)
	if err != nil {
		b.Fatal(err)
	}
	xc5, err := NewXCode(5)
	if err != nil {
		b.Fatal(err)
	}
	return map[string]Code{
		"code56-p5":  core.MustNew(5),
		"code56-p13": core.MustNew(13),
		"rdp-p5":     rdp5,
		"evenodd-p5": eo5,
		"xcode-p5":   xc5,
	}
}

// BenchmarkEncode measures full-stripe encoding throughput (data bytes per
// second) per code.
func BenchmarkEncode(b *testing.B) {
	for name, code := range benchCodes(b) {
		b.Run(name, func(b *testing.B) {
			s := layout.NewStripe(code.Geometry(), 4096)
			s.FillRandom(code, rand.New(rand.NewSource(1)))
			b.SetBytes(int64(len(layout.DataElements(code)) * 4096))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				layout.Encode(code, s)
			}
		})
	}
}

// BenchmarkDecodeDouble measures double-column reconstruction throughput.
func BenchmarkDecodeDouble(b *testing.B) {
	for name, code := range benchCodes(b) {
		b.Run(name, func(b *testing.B) {
			orig := layout.NewStripe(code.Geometry(), 4096)
			orig.FillRandom(code, rand.New(rand.NewSource(2)))
			layout.Encode(code, orig)
			b.SetBytes(int64(2 * code.Geometry().Rows * 4096))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := orig.Clone()
				es := layout.EraseColumns(s, 0, 2)
				b.StartTimer()
				if _, err := layout.Reconstruct(code, s, es); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgorithm1VsPeeling compares Code 5-6's special-case double
// reconstruction (paper Algorithm 1, sequential and parallel) against the
// generic peeling decoder — an implementation ablation.
func BenchmarkAlgorithm1VsPeeling(b *testing.B) {
	code := core.MustNew(13)
	orig := layout.NewStripe(code.Geometry(), 4096)
	orig.FillRandom(code, rand.New(rand.NewSource(3)))
	layout.Encode(code, orig)
	bytes := int64(2 * code.Geometry().Rows * 4096)

	b.Run("algorithm1", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := orig.Clone()
			s.ZeroColumn(2)
			s.ZeroColumn(7)
			b.StartTimer()
			if _, err := code.ReconstructDouble(s, 2, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("algorithm1-parallel", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := orig.Clone()
			s.ZeroColumn(2)
			s.ZeroColumn(7)
			b.StartTimer()
			if _, err := code.ReconstructDoubleParallel(s, 2, 7); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("peeling", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := orig.Clone()
			es := layout.EraseColumns(s, 2, 7)
			b.StartTimer()
			if _, err := layout.PeelDecode(code, s, es); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanConversion measures planner throughput for every approach.
func BenchmarkPlanConversion(b *testing.B) {
	for _, c := range migrate.StandardConversions(6) {
		c := c
		b.Run(c.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := migrate.NewPlan(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineMigration measures end-to-end online conversion throughput
// (migrated data bytes per second) on simulated disks, quiet array.
func BenchmarkOnlineMigration(b *testing.B) {
	const stripes = 16
	rows := int64(stripes * 4)
	blocks := rows * 3
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, err := raid5.New(4, 4096, raid5.LeftAsymmetric)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 4096)
		for L := int64(0); L < blocks; L++ {
			if err := a.WriteBlock(L, buf); err != nil {
				b.Fatal(err)
			}
		}
		mig, err := migrate.NewOnlineMigrator(a, rows)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := mig.Start(); err != nil {
			b.Fatal(err)
		}
		if err := mig.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(blocks * 4096)
}

// BenchmarkTraceSynthesis measures trace generation for Code 5-6 at 60k
// blocks.
func BenchmarkTraceSynthesis(b *testing.B) {
	plan, err := migrate.NewPlan(migrate.Conversion{
		M: 4, SourceLayout: raid5.LeftAsymmetric, Code: core.MustNew(5), Approach: migrate.Direct,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		phases := trace.FromPlan(plan, trace.Options{TotalDataBlocks: 60000, LoadBalanced: true})
		if len(phases) == 0 {
			b.Fatal("no phases")
		}
	}
}

// BenchmarkDiskSimReplay measures simulator throughput (requests/s).
func BenchmarkDiskSimReplay(b *testing.B) {
	plan, err := migrate.NewPlan(migrate.Conversion{
		M: 4, SourceLayout: raid5.LeftAsymmetric, Code: core.MustNew(5), Approach: migrate.Direct,
	})
	if err != nil {
		b.Fatal(err)
	}
	phases := trace.FromPlan(plan, trace.Options{TotalDataBlocks: 60000, LoadBalanced: true})
	n := 0
	for _, ph := range phases {
		n += len(ph)
	}
	sim, err := disksim.New(5, 4096, disksim.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPhases(phases); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "reqs/op")
}

// BenchmarkRenderAll measures the full report generation path used by
// cmd/c56-analyze -all (sans simulation).
func BenchmarkRenderAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{5, 6, 7} {
			if err := analysis.RenderAllMetrics(io.Discard, n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable6Reliability regenerates the derived Table VI (symbolic
// in-flight fault-tolerance replay of every conversion).
func BenchmarkTable6Reliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analysis.TableVI(6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossCodeRecovery regenerates the generalized hybrid-recovery
// study (optimized rebuild planning for all seven codes).
func BenchmarkCrossCodeRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analysis.RecoveryAcrossCodes(7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePerformance regenerates the §V-D post-conversion
// small-write study (measured on live arrays).
func BenchmarkWritePerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analysis.MeasureWritePerformance(5, 200, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScrub measures scrub throughput (stripes per op) on a clean
// Code 5-6 array.
func BenchmarkScrub(b *testing.B) {
	a := NewRAID6(core.MustNew(7), 4096)
	buf := make([]byte, 4096)
	const stripes = 32
	for L := int64(0); L < int64(a.DataPerStripe()*stripes); L++ {
		if err := a.WriteBlock(L, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(stripes * a.Code().Geometry().Elements() * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Scrub(stripes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryPlanning measures the optimized rebuild planner.
func BenchmarkRecoveryPlanning(b *testing.B) {
	for name, code := range benchCodes(b) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := PlanColumnRecovery(code, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableIMotivation regenerates the quantified §I motivation
// (MTTDL from the paper's Table I failure rates).
func BenchmarkTableIMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analysis.MotivationTable(5, 24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetPlan measures the data-center migration scheduler on a
// 12-array fleet.
func BenchmarkFleetPlan(b *testing.B) {
	var specs []fleet.ArraySpec
	for i := 0; i < 12; i++ {
		specs = append(specs, fleet.ArraySpec{
			Name: fmt.Sprintf("a%d", i), Disks: 4 + i%6, AgeYears: 1 + i%5,
			DataBlocks: 30000, BlockSize: 4096, MTTRHours: 24,
		})
	}
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Plan(specs, disksim.DefaultModel(), 0); err != nil {
			b.Fatal(err)
		}
	}
}
