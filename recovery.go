package code56

import (
	"code56/internal/raid6"
	"code56/internal/recovery"
	"code56/internal/superblock"
)

// Recovery and maintenance facade.
type (
	// ColumnRecoveryPlan is a read-minimizing single-disk rebuild plan
	// usable with any Code (the §III-E-4 hybrid recovery generalized).
	ColumnRecoveryPlan = recovery.Plan
	// ScrubReport summarizes a RAID-6 scrub pass: latent-sector-error
	// repairs, located silent corruptions, unrecoverable stripes.
	ScrubReport = raid6.ScrubReport
	// ScrubMode selects whether a scrub pass repairs what it finds
	// (ScrubRepair) or only detects and counts (ScrubCheck).
	ScrubMode = raid6.ScrubMode
)

// Scrub modes.
const (
	ScrubRepair = raid6.ScrubRepair
	ScrubCheck  = raid6.ScrubCheck
)

// PlanColumnRecovery computes a read-minimizing plan for rebuilding one
// failed column of any code.
func PlanColumnRecovery(code Code, failed int) (ColumnRecoveryPlan, error) {
	return recovery.PlanColumn(code, failed)
}

// ConventionalRecoveryReads returns the read cost of the baseline rebuild
// strategy for comparison with PlanColumnRecovery.
func ConventionalRecoveryReads(code Code, failed int) (int, error) {
	return recovery.ConventionalReads(code, failed)
}

// Array persistence (mdadm-style assembly).
type (
	// Manifest identifies a persisted array's code and geometry.
	Manifest = superblock.Manifest
)

// Array persistence entry points.
var (
	// SaveArray persists a RAID-6 array (manifest + disk snapshot) to a
	// writer.
	SaveArray = superblock.SaveArray
	// LoadArray reassembles an array saved by SaveArray.
	LoadArray = superblock.LoadArray
	// BuildCode reconstructs the erasure code a manifest names.
	BuildCode = superblock.BuildCode
)
