// Package code56 is a complete implementation of "Code 5-6: An Efficient
// MDS Array Coding Scheme to Accelerate Online RAID Level Migration"
// (Wu, He, Li, Guo — ICPP 2015), together with everything the paper builds
// on or compares against:
//
//   - Code 5-6 itself: an XOR-based MDS RAID-6 array code for p disks
//     (p prime) whose horizontal parities sit exactly where a
//     left-asymmetric RAID-5 keeps them, so converting a RAID-5 to a
//     RAID-6 only adds one disk of diagonal parities;
//   - the comparison codes: RDP, EVENODD, X-Code, P-Code, H-Code, HDP;
//   - RAID-5 (all four layouts) and a generic RAID-6 driver over simulated
//     disks with failure injection;
//   - the migration engine: a conversion planner for all three approaches
//     of the paper (via RAID-0, via RAID-4, direct), an offline executor,
//     an online converter with concurrent application I/O (the paper's
//     Algorithm 2), and virtual-disk support for arbitrary disk counts;
//   - the evaluation harness: the conversion cost model behind the paper's
//     Figures 9–18 and Tables III–IV, and a DiskSim-style trace-driven
//     disk simulator behind Figure 19 and Table V.
//
// # Quick start
//
//	code, _ := code56.New(5)                     // Code 5-6 for 5 disks
//	array := code56.NewRAID6(code, 4096)         // simulated RAID-6 array
//	array.WriteBlock(0, block)                   // parity maintained
//	array.Disks().Disk(1).Fail()                 // two concurrent failures
//	array.Disks().Disk(3).Fail()
//	array.ReadBlock(0, buf)                      // still served
//
// See the examples/ directory for online migration, virtual disks, and
// hybrid recovery walkthroughs, and cmd/ for the tools regenerating the
// paper's tables and figures.
//
// # Options and parallelism
//
// Every facade constructor has an option-based form, and every long-running
// operation has a context-bound form; both converge on one functional
// Option type:
//
//	code, _ := code56.NewCode(13)                          // defaults
//	array := code56.NewRAID6Array(code,
//	        code56.WithBlockSize(64<<10))
//	err := code56.ScrubArray(ctx, array, stripes,
//	        code56.WithWorkers(8))                         // parallel scrub
//	mig, _ := code56.NewMigrator(r5, rows,
//	        code56.WithWorkers(4), code56.WithThrottle(time.Millisecond))
//	err = code56.StartMigration(ctx, mig)                  // cancelable
//
// WithWorkers and WithChunkSize control the stripe engine: independent
// stripes fan out over a bounded worker pool (internal/parallel), and large
// blocks split into chunks for the multi-source XOR kernel. Cancelling the
// context stops cleanly at a stripe boundary; for online migration the
// array stays consistent and resumable. The positional constructors (New,
// NewRAID5, NewRAID6, NewExecutor, NewOnlineMigrator) and serial methods
// (Run, Rebuild, Scrub, Start) are all kept and are equivalent to the
// option forms with WithWorkers(1) and a background context — nothing is
// deprecated; the new forms only add knobs.
package code56

import (
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/raid5"
	"code56/internal/raid6"
	"code56/internal/vdisk"
)

// Core erasure-coding types, re-exported from the internal framework.
type (
	// Code is the interface every array code implements.
	Code = layout.Code
	// Geometry describes a stripe's shape.
	Geometry = layout.Geometry
	// Coord addresses one element: Row within the stripe, Col = disk.
	Coord = layout.Coord
	// Chain is one parity constraint of a code.
	Chain = layout.Chain
	// Kind classifies stripe cells (data or a parity family).
	Kind = layout.Kind
	// Stripe holds the blocks of one stripe.
	Stripe = layout.Stripe
	// ErasureSet tracks lost elements during reconstruction.
	ErasureSet = layout.ErasureSet
	// DecodeStats reports reconstruction work (XORs, distinct reads).
	DecodeStats = layout.DecodeStats
)

// Cell kinds.
const (
	KindData    = layout.Data
	KindParityH = layout.ParityH
	KindParityD = layout.ParityD
	KindParityA = layout.ParityA
)

// Code 5-6 types.
type (
	// Code56 is the paper's code; it implements Code and adds the
	// reconstruction algorithms of §III and the hybrid recovery of
	// §III-E-4.
	Code56 = core.Code56
	// Orientation selects which RAID-5 parity rotation the layout
	// mirrors (paper Fig. 7).
	Orientation = core.Orientation
	// RecoveryPlan is a read-minimizing single-disk rebuild plan.
	RecoveryPlan = core.RecoveryPlan
)

// Orientations.
const (
	Left  = core.Left
	Right = core.Right
)

// New returns Code 5-6 for p disks, p prime (left orientation).
func New(p int) (*Code56, error) { return core.New(p) }

// NewOriented returns Code 5-6 with an explicit orientation.
func NewOriented(p int, o Orientation) (*Code56, error) { return core.NewOriented(p, o) }

// Stripe-level operations, re-exported for users driving codes directly.
var (
	// NewStripe allocates a zeroed stripe.
	NewStripe = layout.NewStripe
	// Encode computes every parity of a stripe; returns the XOR count.
	Encode = layout.Encode
	// Verify checks all parity chains of a stripe.
	Verify = layout.Verify
	// Reconstruct recovers an erasure set in place (peeling with a GF(2)
	// elimination fallback).
	Reconstruct = layout.Reconstruct
	// EraseColumns zeroes whole columns and returns the erasure set.
	EraseColumns = layout.EraseColumns
	// IsPrime reports primality (codes need a prime parameter).
	IsPrime = layout.IsPrime
	// NextPrime returns the smallest prime greater than its argument.
	NextPrime = layout.NextPrime
)

// Simulated block-device substrate.
type (
	// Disk is an in-memory block device with failure injection.
	Disk = vdisk.Disk
	// DiskArray is an ordered set of disks supporting add/remove.
	DiskArray = vdisk.Array
	// DiskStats counts a disk's I/O.
	DiskStats = vdisk.Stats
	// FaultConfig is a deterministic, seeded fault-injection scenario:
	// transient read/write errors, latent-sector-error discovery, and a
	// scheduled whole-disk failure. Arm it with DiskArray.SetFaults or the
	// WithFaults option; replaying the same config against the same I/O
	// sequence reproduces the same faults.
	FaultConfig = vdisk.FaultConfig
)

// Disk-fault sentinels, matchable with errors.Is through every layer.
var (
	// ErrDiskFailed marks I/O against a fail-stopped disk (Fail or a
	// scheduled FaultConfig failure); cleared by Replace.
	ErrDiskFailed = vdisk.ErrFailed
	// ErrLatentSector marks a read of a block with a latent sector error;
	// rewriting the block clears it (sector remap semantics).
	ErrLatentSector = vdisk.ErrLatent
	// ErrTransientIO marks a transiently failed I/O; retrying may succeed
	// (see WithRetry / DiskArray.SetRetry).
	ErrTransientIO = vdisk.ErrTransient
)

// RAID layers.
type (
	// RAID5 is a RAID-5 array over simulated disks.
	RAID5 = raid5.Array
	// RAID5Layout selects the RAID-5 parity rotation.
	RAID5Layout = raid5.Layout
	// RAID6 is a RAID-6 array over any Code.
	RAID6 = raid6.Array
)

// RAID-5 layouts (md naming).
const (
	LeftAsymmetric  = raid5.LeftAsymmetric
	LeftSymmetric   = raid5.LeftSymmetric
	RightAsymmetric = raid5.RightAsymmetric
	RightSymmetric  = raid5.RightSymmetric
)

// NewRAID5 creates a RAID-5 array of m fresh simulated disks.
func NewRAID5(m, blockSize int, l RAID5Layout) (*RAID5, error) {
	return raid5.New(m, blockSize, l)
}

// WrapRAID5 builds a RAID-5 view over existing disks (e.g. restored from a
// snapshot); extra disks beyond the first m are left untouched.
func WrapRAID5(disks *DiskArray, m int, l RAID5Layout) (*RAID5, error) {
	return raid5.Wrap(disks, m, l)
}

// LoadDiskArray restores a disk array from a snapshot produced by
// DiskArray.Save — including failure states and latent errors — so
// simulated arrays and in-flight migrations survive process restarts.
var LoadDiskArray = vdisk.Load

// NewRAID6 creates a RAID-6 array over fresh simulated disks for the code.
func NewRAID6(code Code, blockSize int) *RAID6 { return raid6.New(code, blockSize) }

// WrapRAID6 builds a RAID-6 view over existing disks (e.g. after a
// migration).
func WrapRAID6(code Code, disks *DiskArray) (*RAID6, error) { return raid6.Wrap(code, disks) }
