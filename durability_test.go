package code56

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"code56/internal/durable"
	"code56/internal/vdisk/filestore"
	"code56/internal/wal"
)

// The kill-9/reopen/verify matrix. A golden (uninterrupted) file-backed
// migration counts its durability barriers; then, for every barrier n, a
// child process runs the same migration armed to SIGKILL itself right
// after barrier n. The parent reopens the directory with
// ResumeMigration, completes the conversion, and requires the result to
// be bit-identical to the golden run: same scrub-clean RAID-6, same
// readback, same disk image bytes.
const (
	matrixDisks = 4 // p = 5
	matrixBS    = 512
	matrixRows  = 16 // 4 Code 5-6 stripes
)

// buildMatrixArray creates the file-backed RAID-5 under dir and fills it
// with seeded data; returns the expected data blocks for readback checks.
func buildMatrixArray(t *testing.T, dir string) [][]byte {
	t.Helper()
	a, err := NewRAID5Array(matrixDisks,
		WithBackend("file:"+dir), WithBlockSize(matrixBS))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	blocks := int64(matrixRows) * int64(matrixDisks-1)
	want := make([][]byte, blocks)
	for l := int64(0); l < blocks; l++ {
		b := make([]byte, matrixBS)
		r.Read(b)
		want[l] = b
		if err := a.WriteBlock(l, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Disks().Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Disks().Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// startMatrixMigration opens dir's RAID-5 and prepares its journaled
// migration with a 1-stripe checkpoint interval (every barrier exercised).
func startMatrixMigration(t *testing.T, dir string) *OnlineMigrator {
	t.Helper()
	a, err := OpenRAID5Array(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMigrator(a, matrixRows, WithCheckpointInterval(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Journal() == nil {
		t.Fatal("file-backed migration did not auto-attach a journal")
	}
	return m
}

// verifyMatrixResult scrubs and reads back the migrated RAID-6 and
// compares its disk images byte-for-byte against the golden run's.
func verifyMatrixResult(t *testing.T, dir string, r6 *RAID6, want [][]byte, golden map[string][]byte) {
	t.Helper()
	stripes := int64(matrixRows) / int64(matrixDisks)
	for st := int64(0); st < stripes; st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil || !ok {
			t.Fatalf("stripe %d: ok=%v err=%v", st, ok, err)
		}
	}
	rep, err := ScrubArray(context.Background(), r6, stripes)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("scrub found damage: %+v", rep)
	}
	buf := make([]byte, matrixBS)
	for l, w := range want {
		if err := r6.ReadBlock(int64(l), buf); err != nil {
			t.Fatalf("readback %d: %v", l, err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("readback %d: data mismatch", l)
		}
	}
	if err := r6.Disks().Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r6.Disks().Close(); err != nil {
		t.Fatal(err)
	}
	if golden != nil {
		images := readImages(t, dir)
		if len(images) != len(golden) {
			t.Fatalf("image count %d vs golden %d", len(images), len(golden))
		}
		for name, g := range golden {
			if !bytes.Equal(images[name], g) {
				t.Fatalf("%s differs from the golden run", name)
			}
		}
	}
	meta, err := durable.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kind != durable.KindRAID6 {
		t.Fatalf("meta not flipped: %+v", meta)
	}
}

func readImages(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ids, err := filestore.Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(ids))
	for _, id := range ids {
		name := filestore.DiskFileName(id)
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = b
	}
	return out
}

// resumeAndFinish reopens a crashed directory and drives the migration to
// completion, whatever crash window the child died in.
func resumeAndFinish(t *testing.T, dir string, want [][]byte, golden map[string][]byte) {
	t.Helper()
	m, err := ResumeMigration(dir, WithCheckpointInterval(1))
	switch {
	case err == nil:
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		if err := m.Wait(); err != nil {
			t.Fatal(err)
		}
		r6, err := m.Result()
		if err != nil {
			t.Fatal(err)
		}
		m.Journal().Close()
		verifyMatrixResult(t, dir, r6, want, golden)
	case errors.Is(err, ErrMigrationComplete):
		// Killed after the final commit: the directory is already a RAID-6.
		r6, err := OpenRAID6Array(dir)
		if err != nil {
			t.Fatal(err)
		}
		verifyMatrixResult(t, dir, r6, want, golden)
	case errors.Is(err, ErrNoMigration):
		// Killed before the begin record became durable: nothing to
		// resume; a fresh migration runs from scratch.
		m := startMatrixMigration(t, dir)
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		if err := m.Wait(); err != nil {
			t.Fatal(err)
		}
		r6, err := m.Result()
		if err != nil {
			t.Fatal(err)
		}
		m.Journal().Close()
		verifyMatrixResult(t, dir, r6, want, golden)
	default:
		t.Fatal(err)
	}
}

// runCrashChild re-execs this test binary as a child that migrates dir
// and SIGKILLs itself at the requested crash point.
func runCrashChild(t *testing.T, dir string, env ...string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$")
	cmd.Env = append(os.Environ(), append([]string{"C56_CRASH_DIR=" + dir}, env...)...)
	out, err := cmd.CombinedOutput()
	if bytes.Contains(out, []byte("CHILD_ERR")) {
		t.Fatalf("crash child failed before the injected kill:\n%s", out)
	}
	// Expected outcomes: killed by the injector (non-zero exit) or ran
	// past the last barrier and completed (exit 0, CHILD_COMPLETED).
	if err == nil && !bytes.Contains(out, []byte("CHILD_COMPLETED")) {
		t.Fatalf("crash child exited cleanly without completing:\n%s", out)
	}
}

// TestCrashChild is the child half of the matrix: not a test when run
// normally. It resumes (or begins) the directory's migration with the
// crash injector armed from the environment; the injector SIGKILLs the
// process mid-migration.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("C56_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-matrix child; driven by TestMigrationKill9Matrix")
	}
	fail := func(err error) {
		fmt.Printf("CHILD_ERR: %v\n", err)
		os.Exit(3)
	}
	m, err := ResumeMigration(dir, WithCheckpointInterval(1))
	if errors.Is(err, ErrNoMigration) {
		a, aerr := OpenRAID5Array(dir)
		if aerr != nil {
			fail(aerr)
		}
		m, err = NewMigrator(a, matrixRows, WithCheckpointInterval(1))
	}
	if err != nil {
		fail(err)
	}
	cp := &wal.CrashPoints{}
	if v := os.Getenv("C56_CRASH_AFTER"); v != "" {
		n, cerr := strconv.ParseInt(v, 10, 64)
		if cerr != nil {
			fail(cerr)
		}
		cp.FailAfterSync(n)
	}
	if v := os.Getenv("C56_CRASH_TORN"); v != "" {
		k, cerr := strconv.Atoi(v)
		if cerr != nil {
			fail(cerr)
		}
		cp.FailDuringAppend(k)
	}
	m.Journal().SetCrashPoints(cp)
	if err := m.Start(); err != nil {
		fail(err)
	}
	if err := m.Wait(); err != nil {
		fail(err)
	}
	// Only reachable when the armed barrier lies beyond this run's last
	// barrier (or nothing was armed).
	fmt.Println("CHILD_COMPLETED")
	os.Exit(0)
}

// TestMigrationKill9Matrix sweeps a SIGKILL over every durability barrier
// of a file-backed migration and proves each crash resumes to a result
// bit-identical to an uninterrupted run.
func TestMigrationKill9Matrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns one child process per durability barrier")
	}
	// Golden run: uninterrupted, with a disarmed injector counting
	// barriers.
	goldenDir := t.TempDir()
	want := buildMatrixArray(t, goldenDir)
	m := startMatrixMigration(t, goldenDir)
	cp := &wal.CrashPoints{}
	m.Journal().SetCrashPoints(cp)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	r6, err := m.Result()
	if err != nil {
		t.Fatal(err)
	}
	m.Journal().Close()
	verifyMatrixResult(t, goldenDir, r6, want, nil)
	golden := readImages(t, goldenDir)
	barriers := cp.Hits()
	if barriers < 5 {
		t.Fatalf("golden run hit only %d barriers; matrix would be vacuous", barriers)
	}

	for n := int64(1); n <= barriers; n++ {
		n := n
		t.Run(fmt.Sprintf("barrier-%02d", n), func(t *testing.T) {
			dir := t.TempDir()
			w := buildMatrixArray(t, dir)
			runCrashChild(t, dir, "C56_CRASH_AFTER="+strconv.FormatInt(n, 10))
			resumeAndFinish(t, dir, w, golden)
		})
	}
}

// TestMigrationTornRecordCrashes kills the child MID-APPEND, leaving a
// physically torn record in the intent log; replay must truncate it and
// resume from the last whole record.
func TestMigrationTornRecordCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	// Torn begin record, two tear offsets: the journal replays empty, so
	// recovery is a fresh migration.
	for _, k := range []int{0, 7} {
		t.Run(fmt.Sprintf("torn-begin-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			w := buildMatrixArray(t, dir)
			runCrashChild(t, dir, "C56_CRASH_TORN="+strconv.Itoa(k))
			resumeAndFinish(t, dir, w, nil)
		})
	}
	// Torn watermark mid-run: first child dies cleanly between barriers,
	// second child resumes and tears its first checkpoint append.
	t.Run("torn-watermark", func(t *testing.T) {
		dir := t.TempDir()
		w := buildMatrixArray(t, dir)
		runCrashChild(t, dir, "C56_CRASH_AFTER=4")
		runCrashChild(t, dir, "C56_CRASH_TORN=6")
		resumeAndFinish(t, dir, w, nil)
	})
}
