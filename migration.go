package code56

import (
	"code56/internal/codes/evenodd"
	"code56/internal/codes/hcode"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/migrate"
)

// Migration types, re-exported from the migration engine.
type (
	// Conversion describes one RAID-5 → RAID-6 migration scenario.
	Conversion = migrate.Conversion
	// Approach is one of the paper's three conversion strategies.
	Approach = migrate.Approach
	// Plan is a conversion's exact operation schedule plus aggregates.
	Plan = migrate.Plan
	// Metrics are the paper's §V-A conversion cost quantities.
	Metrics = migrate.Metrics
	// OnlineMigrator converts a live RAID-5 to Code 5-6 while serving
	// application I/O (the paper's Algorithm 2).
	OnlineMigrator = migrate.OnlineMigrator
	// Executor replays a plan against simulated disks and verifies the
	// result.
	Executor = migrate.Executor
	// MigrationStats counts an online conversion's interactions with the
	// concurrent application workload.
	MigrationStats = migrate.MigrationStats
	// ProgressReport is a coherent point-in-time view of an online
	// migration (see OnlineMigrator.ProgressSnapshot).
	ProgressReport = migrate.ProgressReport
)

// Conversion approaches.
const (
	ViaRAID0 = migrate.ViaRAID0
	ViaRAID4 = migrate.ViaRAID4
	Direct   = migrate.Direct
)

// Migration entry points.
var (
	// NewPlan builds the operation schedule for a conversion.
	NewPlan = migrate.NewPlan
	// NewVirtualPlan plans a Code 5-6 direct conversion for a RAID-5 of
	// any size using virtual disks (paper §IV-B2).
	NewVirtualPlan = migrate.NewVirtualPlan
	// NewExecutor replays a plan against simulated disks.
	NewExecutor = migrate.NewExecutor
	// NewOnlineMigrator prepares an online RAID-5 → Code 5-6 migration.
	NewOnlineMigrator = migrate.NewOnlineMigrator
	// Downgrade converts a Code 5-6 RAID-6 back to a RAID-5 by detaching
	// the diagonal parity disk.
	Downgrade = migrate.Downgrade
	// StandardConversions returns the paper's §V-A comparison matrix for
	// a target disk count.
	StandardConversions = migrate.StandardConversions
	// Code56StorageEfficiency evaluates the paper's Eq. 6.
	Code56StorageEfficiency = migrate.Code56StorageEfficiency
)

// Comparison code constructors (the paper's baselines). Each returns an
// implementation of Code validated as MDS by exhaustive erasure tests.
var (
	// NewRDP returns the Row-Diagonal Parity code for p+1 disks.
	NewRDP = rdp.New
	// NewEVENODD returns the EVENODD code for p+2 disks.
	NewEVENODD = evenodd.New
	// NewXCode returns X-Code for p disks.
	NewXCode = xcode.New
	// NewHCode returns H-Code for p+1 disks.
	NewHCode = hcode.New
	// NewHDP returns the HDP code for p-1 disks.
	NewHDP = hdp.New
)

// NewPCode returns P-Code for p-1 disks (the paper's default variant).
func NewPCode(p int) (Code, error) { return pcode.New(p, pcode.VariantPMinus1) }

// NewPCodeP returns the P-Code variant spanning p disks.
func NewPCodeP(p int) (Code, error) { return pcode.New(p, pcode.VariantP) }
