package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"code56/internal/migrate"
)

// BlockIO is the server's view of an array: logical block reads and
// writes. raid5.Array and raid6.Array satisfy it directly; a live
// migration serves through MigratorIO so foreground traffic follows the
// paper's online access path (Algorithm 2) while stripes convert
// underneath it.
type BlockIO interface {
	ReadBlock(logical int64, buf []byte) error
	WriteBlock(logical int64, data []byte) error
	BlockSize() int
}

// MigratorIO adapts an OnlineMigrator's watermark-routed Read/Write to
// BlockIO. It stays valid after the migration finishes (the migrator
// keeps routing to the converted array), so a volume can point at it for
// the whole server lifetime of a migration.
type MigratorIO struct {
	M *migrate.OnlineMigrator
}

func (io MigratorIO) ReadBlock(logical int64, buf []byte) error   { return io.M.Read(logical, buf) }
func (io MigratorIO) WriteBlock(logical int64, data []byte) error { return io.M.Write(logical, data) }
func (io MigratorIO) BlockSize() int                              { return io.M.BlockSize() }

// Volume is one addressable block device owned by a tenant.
type Volume struct {
	name   string
	blocks int64 // addressable logical blocks

	mu sync.RWMutex
	io BlockIO //c56:guardedby mu
}

// Name returns the volume's name.
func (v *Volume) Name() string { return v.name }

// Blocks returns the number of addressable logical blocks.
func (v *Volume) Blocks() int64 { return v.blocks }

// IO returns the current backing BlockIO.
func (v *Volume) IO() BlockIO {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.io
}

// SetIO swaps the backing array, e.g. from a bare RAID-5 to a MigratorIO
// when a migration starts. In-flight requests finish against the IO they
// resolved; new requests see the replacement.
func (v *Volume) SetIO(io BlockIO) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.io = io
}

// BlockSize returns the backing array's block size in bytes.
func (v *Volume) BlockSize() int { return v.IO().BlockSize() }

// Tenant owns volumes and the QoS state that admits requests to them.
type Tenant struct {
	name   string
	qos    QoS
	bucket *tokenBucket

	mu      sync.RWMutex
	volumes map[string]*Volume //c56:guardedby mu

	inflight atomic.Int64
}

// InFlight reports the tenant's currently admitted request count.
func (t *Tenant) InFlight() int64 { return t.inflight.Load() }

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// QoS returns the tenant's service contract.
func (t *Tenant) QoS() QoS { return t.qos }

// Volume returns the named volume, or nil.
func (t *Tenant) Volume(name string) *Volume {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.volumes[name]
}

// Volumes returns the tenant's volume names.
func (t *Tenant) Volumes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := make([]string, 0, len(t.volumes))
	for n := range t.volumes {
		names = append(names, n)
	}
	return names
}

// AddVolume registers a volume backed by io with the given logical size.
func (t *Tenant) AddVolume(name string, io BlockIO, blocks int64) (*Volume, error) {
	if io == nil {
		return nil, fmt.Errorf("serve: volume %q: nil BlockIO", name)
	}
	if blocks <= 0 {
		return nil, fmt.Errorf("serve: volume %q: blocks must be positive", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.volumes[name]; dup {
		return nil, fmt.Errorf("serve: tenant %q already has volume %q", t.name, name)
	}
	v := &Volume{name: name, blocks: blocks, io: io}
	t.volumes[name] = v
	return v, nil
}
