package bwtimetable

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"off", Unlimited},
		{"OFF", Unlimited},
		{"512", 512 * 1024}, // suffixless = KiB/s
		{"1k", 1024},
		{"10M", 10 * 1024 * 1024},
		{"2G", 2 * 1024 * 1024 * 1024},
		{"1T", 1024 * 1024 * 1024 * 1024},
		{"4096B", 4096},
		{"0", Unlimited},
		{"1.5M", 1536 * 1024},
	}
	for _, c := range cases {
		got, err := ParseRate(c.in)
		if err != nil {
			t.Fatalf("ParseRate(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseRate(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "fast", "-1M", "10X9"} {
		if _, err := ParseRate(bad); err == nil {
			t.Fatalf("ParseRate(%q) accepted", bad)
		}
	}
}

func at(hh, mm int) time.Time {
	return time.Date(2026, 8, 8, hh, mm, 0, 0, time.UTC)
}

func TestTimetableSchedule(t *testing.T) {
	tt, err := Parse("08:00,10M 19:00,50M 23:00,off")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		hh, mm int
		want   int64
	}{
		{8, 0, 10 * 1024 * 1024},
		{12, 30, 10 * 1024 * 1024},
		{19, 0, 50 * 1024 * 1024},
		{22, 59, 50 * 1024 * 1024},
		{23, 0, Unlimited},
		// Wraparound: before the first entry, last night's rule holds.
		{0, 0, Unlimited},
		{7, 59, Unlimited},
	}
	for _, c := range cases {
		if got := tt.Rate(at(c.hh, c.mm)); got != c.want {
			t.Fatalf("Rate(%02d:%02d) = %d, want %d", c.hh, c.mm, got, c.want)
		}
	}
	if s := tt.String(); s != "08:00,10M 19:00,50M 23:00,off" {
		t.Fatalf("String() = %q", s)
	}
}

func TestTimetableUnsortedInputAndConstants(t *testing.T) {
	tt, err := Parse("23:00,off 08:00,10M")
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.Rate(at(9, 0)); got != 10*1024*1024 {
		t.Fatalf("unsorted spec: Rate(09:00) = %d", got)
	}

	constant, err := Parse("10M")
	if err != nil {
		t.Fatal(err)
	}
	for _, hm := range [][2]int{{0, 0}, {12, 0}, {23, 59}} {
		if got := constant.Rate(at(hm[0], hm[1])); got != 10*1024*1024 {
			t.Fatalf("constant spec: Rate(%v) = %d", hm, got)
		}
	}

	empty, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.Rate(at(12, 0)); got != Unlimited {
		t.Fatalf("empty spec: Rate = %d, want unlimited", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"8am,10M",
		"25:00,10M",
		"08:60,10M",
		"08:00",
		"08:00,fast",
		"08:00,10M 08:00,off", // duplicate time
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestThrottleFor(t *testing.T) {
	// 64 KiB per stripe at 1 MiB/s -> 62.5ms between stripes.
	if got := ThrottleFor(1024*1024, 64*1024); got != 62500*time.Microsecond {
		t.Fatalf("ThrottleFor = %v", got)
	}
	if got := ThrottleFor(Unlimited, 64*1024); got != 0 {
		t.Fatalf("unlimited ThrottleFor = %v", got)
	}
	if got := ThrottleFor(1024, 0); got != 0 {
		t.Fatalf("zero stripeBytes ThrottleFor = %v", got)
	}
}

type fakeThrottler struct {
	mu   sync.Mutex
	last time.Duration
	sets int
}

func (f *fakeThrottler) SetThrottle(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.last = d
	f.sets++
}

func (f *fakeThrottler) state() (time.Duration, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last, f.sets
}

func TestControllerRetunesAcrossBoundary(t *testing.T) {
	tt, err := Parse("08:00,1M 09:00,off")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu  sync.Mutex
		now = at(8, 30)
	)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	th := &fakeThrottler{}
	c := NewController(tt, th, 64*1024)
	c.SetClock(clock, time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); c.Run(ctx) }()

	deadline := time.Now().Add(2 * time.Second)
	want := ThrottleFor(1024*1024, 64*1024)
	for {
		if d, n := th.state(); n > 0 && d == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("controller never applied the 08:00 rate")
		}
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	now = at(9, 5) // cross the 09:00,off boundary
	mu.Unlock()
	for {
		if d, _ := th.state(); d == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("controller never lifted the cap at 09:00")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}
