// Package bwtimetable schedules migration bandwidth around foreground
// demand with rclone-style time-of-day rules.
//
// A timetable is a space-separated list of "HH:MM,RATE" entries, e.g.
//
//	08:00,10M 19:00,50M 23:00,off
//
// meaning: from 08:00 local time cap migration at 10 MiB/s, from 19:00 at
// 50 MiB/s, and from 23:00 run unthrottled. The last entry of the day
// wraps around midnight and stays in force until the first entry the next
// morning. A single bare rate ("10M") is a constant cap with no schedule.
//
// Rates follow the rclone SizeSuffix convention: a suffixless number is
// KiB/s, and k/M/G/T suffixes are successive 1024 multipliers ("512" =
// 512 KiB/s, "10M" = 10 MiB/s). "off" — or a rate of 0 — means unlimited.
//
// The Controller translates the active rate into an OnlineMigrator
// per-stripe throttle: a migration stripe moves a fixed number of bytes
// (StripeConversionBytes), so pausing stripeBytes/rate between stripes
// caps sustained migration bandwidth at the scheduled rate. Retuning
// relies on SetThrottle waking sleeping workers immediately.
package bwtimetable

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Unlimited is the Rate value meaning "no bandwidth cap" ("off").
const Unlimited int64 = 0

// Entry is one timetable rule: from HH:MM onwards, cap at BytesPerSec.
type Entry struct {
	// Minute is the start of day offset in minutes (0..1439).
	Minute int
	// BytesPerSec is the cap; Unlimited (0) means no cap.
	BytesPerSec int64
}

// Timetable is an ordered set of time-of-day bandwidth rules.
type Timetable struct {
	entries []Entry // sorted by Minute, unique
}

// ParseRate parses a single rclone-style rate token: "off" or 0 mean
// unlimited; a suffixless number is KiB/s; k/M/G/T suffixes multiply by
// successive factors of 1024.
func ParseRate(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("bwtimetable: empty rate")
	}
	if strings.EqualFold(t, "off") {
		return Unlimited, nil
	}
	mult := int64(1024) // suffixless = KiB/s
	switch t[len(t)-1] {
	case 'b', 'B':
		mult = 1
		t = t[:len(t)-1]
	case 'k', 'K':
		mult = 1024
		t = t[:len(t)-1]
	case 'm', 'M':
		mult = 1024 * 1024
		t = t[:len(t)-1]
	case 'g', 'G':
		mult = 1024 * 1024 * 1024
		t = t[:len(t)-1]
	case 't', 'T':
		mult = 1024 * 1024 * 1024 * 1024
		t = t[:len(t)-1]
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bwtimetable: bad rate %q", s)
	}
	return int64(v * float64(mult)), nil
}

// FormatRate renders a rate the way Parse accepts it.
func FormatRate(bps int64) string {
	if bps == Unlimited {
		return "off"
	}
	switch {
	case bps%(1024*1024*1024) == 0:
		return fmt.Sprintf("%dG", bps/(1024*1024*1024))
	case bps%(1024*1024) == 0:
		return fmt.Sprintf("%dM", bps/(1024*1024))
	case bps%1024 == 0:
		return fmt.Sprintf("%dk", bps/1024)
	}
	return fmt.Sprintf("%dB", bps)
}

func parseMinute(s string) (int, error) {
	hm := strings.SplitN(s, ":", 2)
	if len(hm) != 2 {
		return 0, fmt.Errorf("bwtimetable: bad time %q (want HH:MM)", s)
	}
	h, errH := strconv.Atoi(hm[0])
	m, errM := strconv.Atoi(hm[1])
	if errH != nil || errM != nil || h < 0 || h > 23 || m < 0 || m > 59 {
		return 0, fmt.Errorf("bwtimetable: bad time %q (want HH:MM)", s)
	}
	return h*60 + m, nil
}

// Parse parses a timetable specification. The empty string means
// "always unlimited". A single bare rate is a constant cap. Otherwise
// every token must be "HH:MM,RATE".
func Parse(spec string) (*Timetable, error) {
	tt := &Timetable{}
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		tt.entries = []Entry{{Minute: 0, BytesPerSec: Unlimited}}
		return tt, nil
	}
	if len(fields) == 1 && !strings.Contains(fields[0], ",") {
		rate, err := ParseRate(fields[0])
		if err != nil {
			return nil, err
		}
		tt.entries = []Entry{{Minute: 0, BytesPerSec: rate}}
		return tt, nil
	}
	seen := map[int]bool{}
	for _, f := range fields {
		parts := strings.SplitN(f, ",", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bwtimetable: bad entry %q (want HH:MM,RATE)", f)
		}
		min, err := parseMinute(parts[0])
		if err != nil {
			return nil, err
		}
		rate, err := ParseRate(parts[1])
		if err != nil {
			return nil, err
		}
		if seen[min] {
			return nil, fmt.Errorf("bwtimetable: duplicate time %q", parts[0])
		}
		seen[min] = true
		tt.entries = append(tt.entries, Entry{Minute: min, BytesPerSec: rate})
	}
	sort.Slice(tt.entries, func(i, j int) bool { return tt.entries[i].Minute < tt.entries[j].Minute })
	return tt, nil
}

// Rate returns the bandwidth cap in force at t (local wall-clock rules).
// Before the day's first entry, the previous day's last entry still
// applies (midnight wraparound).
func (tt *Timetable) Rate(t time.Time) int64 {
	if tt == nil || len(tt.entries) == 0 {
		return Unlimited
	}
	minute := t.Hour()*60 + t.Minute()
	// Last entry whose Minute <= now; if none, wrap to the day's last.
	active := tt.entries[len(tt.entries)-1]
	for _, e := range tt.entries {
		if e.Minute <= minute {
			active = e
		}
	}
	return active.BytesPerSec
}

// String renders the timetable back in parseable form.
func (tt *Timetable) String() string {
	if tt == nil || len(tt.entries) == 0 {
		return "off"
	}
	if len(tt.entries) == 1 && tt.entries[0].Minute == 0 {
		return FormatRate(tt.entries[0].BytesPerSec)
	}
	parts := make([]string, 0, len(tt.entries))
	for _, e := range tt.entries {
		parts = append(parts, fmt.Sprintf("%02d:%02d,%s", e.Minute/60, e.Minute%60, FormatRate(e.BytesPerSec)))
	}
	return strings.Join(parts, " ")
}

// Throttler is the seam into OnlineMigrator: a per-stripe pause length.
type Throttler interface {
	SetThrottle(d time.Duration)
}

// ThrottleFor converts a bandwidth cap into the per-stripe pause that
// sustains it, given how many bytes one stripe conversion moves.
// Unlimited maps to 0 (no pause).
func ThrottleFor(bytesPerSec, stripeBytes int64) time.Duration {
	if bytesPerSec == Unlimited || stripeBytes <= 0 {
		return 0
	}
	return time.Duration(stripeBytes * int64(time.Second) / bytesPerSec)
}

// Controller applies a Timetable to a Throttler, retuning as wall-clock
// time crosses entry boundaries.
type Controller struct {
	tt          *Timetable
	target      Throttler
	stripeBytes int64

	// now and tick are injectable for tests; defaults are time.Now and
	// a 10s re-evaluation cadence (entry granularity is one minute).
	now  func() time.Time
	tick time.Duration
}

// NewController shapes target by tt. stripeBytes is the number of bytes
// one migration stripe conversion moves (OnlineMigrator.StripeConversionBytes).
func NewController(tt *Timetable, target Throttler, stripeBytes int64) *Controller {
	return &Controller{
		tt:          tt,
		target:      target,
		stripeBytes: stripeBytes,
		now:         time.Now,
		tick:        10 * time.Second,
	}
}

// SetClock overrides the controller's clock and re-evaluation cadence
// (tests only).
func (c *Controller) SetClock(now func() time.Time, tick time.Duration) {
	c.now = now
	c.tick = tick
}

// Apply applies the rate in force right now and returns it.
func (c *Controller) Apply() int64 {
	rate := c.tt.Rate(c.now())
	c.target.SetThrottle(ThrottleFor(rate, c.stripeBytes))
	return rate
}

// Run applies the timetable until ctx is cancelled, re-evaluating each
// tick. SetThrottle itself no-ops on an unchanged value, so steady-state
// ticks do not wake migration workers.
func (c *Controller) Run(ctx context.Context) {
	t := time.NewTicker(c.tick)
	defer t.Stop()
	c.Apply()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Apply()
		}
	}
}
