// Package serve exposes code56 arrays as a multi-tenant network block
// service over HTTP, with per-tenant QoS (token-bucket bandwidth +
// in-flight admission caps) and connection-level backpressure. It exists
// to exercise the paper's headline claim — Code 5-6 migration runs
// *online*, under foreground I/O — against traffic that arrives over a
// wire instead of in-process.
//
// Protocol (HTTP/1.1, raw block bodies):
//
//	GET  /v1/                          JSON service listing
//	GET  /v1/t/{tenant}/v/{vol}        JSON volume info (block_size, blocks)
//	GET  /v1/t/{tenant}/v/{vol}/b/{n}  read logical block n (binary body)
//	PUT  /v1/t/{tenant}/v/{vol}/b/{n}  write logical block n (binary body)
//
// Errors are JSON objects {"error": "..."}; overload is 429 with a
// Retry-After hint. Admission order is deliberate: the in-flight cap is
// checked before the rate bucket, so a saturating tenant is bounced
// immediately rather than queueing into the shaper.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"code56/internal/bufpool"
	"code56/internal/telemetry"
)

// Metric identities (compile-time constants per c56-lint metricname).
const (
	metricReads            = "serve.reads"
	metricWrites           = "serve.writes"
	metricReadLatencyUS    = "serve.read_latency_us"
	metricWriteLatencyUS   = "serve.write_latency_us"
	metricQoSWaitUS        = "serve.qos_wait_us"
	metricRejectedInflight = "serve.rejected_inflight"
	metricRejectedRate     = "serve.rejected_rate"
	metricInflight         = "serve.inflight"
	metricConns            = "serve.conns"
	metricErrors           = "serve.errors"
	metricRequestRate      = "serve.request_rate"

	// tenantPrefix namespaces per-tenant instruments:
	// serve.tenant.<name>.<suffix>.
	tenantPrefix = "serve.tenant"
)

// latencyBucketsUS covers served block I/O: in-memory hits land in tens
// of microseconds, QoS shaping and migration contention push the tail
// into tens of milliseconds.
var latencyBucketsUS = []float64{
	50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000,
}

// tenantMetrics are the per-tenant instruments, one Instanced namespace
// per tenant name.
type tenantMetrics struct {
	reads            *telemetry.Counter
	writes           *telemetry.Counter
	rejectedInflight *telemetry.Counter
	rejectedRate     *telemetry.Counter
	inflight         *telemetry.Gauge
}

// Server hosts tenants and serves their volumes.
type Server struct {
	reg *telemetry.Registry

	mu      sync.RWMutex
	tenants map[string]*Tenant        //c56:guardedby mu
	metrics map[string]*tenantMetrics //c56:guardedby mu

	reads            *telemetry.Counter
	writes           *telemetry.Counter
	readLatencyUS    *telemetry.Histogram
	writeLatencyUS   *telemetry.Histogram
	qosWaitUS        *telemetry.Histogram
	rejectedInflight *telemetry.Counter
	rejectedRate     *telemetry.Counter
	inflight         *telemetry.Gauge
	errors           *telemetry.Counter
	requestRate      *telemetry.Rate
}

// NewServer builds a volume server registering its metrics in reg (nil
// uses the process-default registry).
func NewServer(reg *telemetry.Registry) *Server {
	s := &Server{
		reg:     reg,
		tenants: map[string]*Tenant{},
		metrics: map[string]*tenantMetrics{},
	}
	s.reads = reg.Counter(metricReads)
	s.writes = reg.Counter(metricWrites)
	s.readLatencyUS = reg.Histogram(metricReadLatencyUS, latencyBucketsUS)
	s.writeLatencyUS = reg.Histogram(metricWriteLatencyUS, latencyBucketsUS)
	s.qosWaitUS = reg.Histogram(metricQoSWaitUS, latencyBucketsUS)
	s.rejectedInflight = reg.Counter(metricRejectedInflight)
	s.rejectedRate = reg.Counter(metricRejectedRate)
	s.inflight = reg.Gauge(metricInflight)
	s.errors = reg.Counter(metricErrors)
	s.requestRate = reg.Rate(metricRequestRate)
	return s
}

// AddTenant registers a tenant under the given QoS contract.
func (s *Server) AddTenant(name string, qos QoS) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty tenant name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[name]; dup {
		return nil, fmt.Errorf("serve: tenant %q already exists", name)
	}
	t := &Tenant{
		name:    name,
		qos:     qos,
		bucket:  newTokenBucket(qos.BytesPerSec, qos.Burst),
		volumes: map[string]*Volume{},
	}
	s.tenants[name] = t
	inst := s.reg.PerInstance(tenantPrefix, name)
	s.metrics[name] = &tenantMetrics{
		reads:            inst.Counter("reads"),
		writes:           inst.Counter("writes"),
		rejectedInflight: inst.Counter("rejected_inflight"),
		rejectedRate:     inst.Counter("rejected_rate"),
		inflight:         inst.Gauge("inflight"),
	}
	return t, nil
}

// Tenant returns the named tenant, or nil.
func (s *Server) Tenant(name string) *Tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tenants[name]
}

func (s *Server) tenantAndMetrics(name string) (*Tenant, *tenantMetrics) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tenants[name], s.metrics[name]
}

// Handler returns the service's HTTP handler, rooted at /v1/. Mount it
// on an obs plane (Server.Handle) to share the listener with /metrics,
// /healthz and /progress.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/{$}", s.handleIndex)
	mux.HandleFunc("GET /v1/t/{tenant}/v/{vol}", s.handleVolumeInfo)
	mux.HandleFunc("GET /v1/t/{tenant}/v/{vol}/b/{block}", s.handleReadBlock)
	mux.HandleFunc("PUT /v1/t/{tenant}/v/{vol}/b/{block}", s.handleWriteBlock)
	return mux
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	type volInfo struct {
		BlockSize int   `json:"block_size"`
		Blocks    int64 `json:"blocks"`
	}
	out := map[string]map[string]volInfo{}
	s.mu.RLock()
	for name, t := range s.tenants {
		vols := map[string]volInfo{}
		for _, vn := range t.Volumes() {
			v := t.Volume(vn)
			vols[vn] = volInfo{BlockSize: v.BlockSize(), Blocks: v.Blocks()}
		}
		out[name] = vols
	}
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"tenants": out})
}

func (s *Server) handleVolumeInfo(w http.ResponseWriter, r *http.Request) {
	_, _, v, _, ok := s.resolve(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"name":       v.Name(),
		"block_size": v.BlockSize(),
		"blocks":     v.Blocks(),
	})
}

// resolve maps the request path to tenant/volume, writing the 404 itself
// on a miss.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*Tenant, *tenantMetrics, *Volume, int64, bool) {
	tn, vn := r.PathValue("tenant"), r.PathValue("vol")
	t, tm := s.tenantAndMetrics(tn)
	if t == nil {
		s.errors.Inc()
		writeError(w, http.StatusNotFound, "unknown tenant %q", tn)
		return nil, nil, nil, 0, false
	}
	v := t.Volume(vn)
	if v == nil {
		s.errors.Inc()
		writeError(w, http.StatusNotFound, "tenant %q has no volume %q", tn, vn)
		return nil, nil, nil, 0, false
	}
	var block int64 = -1
	if raw := r.PathValue("block"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || n < 0 || n >= v.Blocks() {
			s.errors.Inc()
			writeError(w, http.StatusBadRequest, "block %q out of range [0,%d)", raw, v.Blocks())
			return nil, nil, nil, 0, false
		}
		block = n
	}
	return t, tm, v, block, true
}

// admit runs admission control for one block request: the in-flight cap
// first (reject saturating tenants immediately), then the rate bucket
// (bounded shaping delay, else reject). On ok=true the caller owns one
// in-flight slot and must call the returned release.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, t *Tenant, tm *tenantMetrics, bytes int64) (release func(), ok bool) {
	s.requestRate.Add(1)
	n := t.inflight.Add(1)
	release = func() {
		t.inflight.Add(-1)
		tm.inflight.Add(-1)
		s.inflight.Add(-1)
	}
	tm.inflight.Add(1)
	s.inflight.Add(1)
	if cap := t.qos.MaxInFlight; cap > 0 && n > cap {
		release()
		s.rejectedInflight.Inc()
		tm.rejectedInflight.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"tenant %q over in-flight cap (%d)", t.name, cap)
		return nil, false
	}
	wait, admitted := t.bucket.Reserve(bytes, t.qos.maxWait())
	if !admitted {
		release()
		s.rejectedRate.Inc()
		tm.rejectedRate.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(wait/time.Second)+1))
		writeError(w, http.StatusTooManyRequests,
			"tenant %q over bandwidth cap (wanted %v of shaping delay)", t.name, wait)
		return nil, false
	}
	if wait > 0 {
		s.qosWaitUS.Observe(float64(wait / time.Microsecond))
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-r.Context().Done():
			// The client gave up mid-shaping; its tokens stay spent
			// (the bucket already committed them) but the slot frees.
			release()
			return nil, false
		}
	}
	return release, true
}

func (s *Server) handleReadBlock(w http.ResponseWriter, r *http.Request) {
	t, tm, v, block, ok := s.resolve(w, r)
	if !ok {
		return
	}
	bs := v.BlockSize()
	release, ok := s.admit(w, r, t, tm, int64(bs))
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	buf := bufpool.Get(bs)
	defer bufpool.Put(buf)
	if err := v.IO().ReadBlock(block, buf); err != nil {
		s.errors.Inc()
		writeError(w, http.StatusInternalServerError, "read block %d: %v", block, err)
		return
	}
	s.reads.Inc()
	tm.reads.Inc()
	s.readLatencyUS.Observe(float64(time.Since(start) / time.Microsecond))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(bs))
	w.Write(buf)
}

func (s *Server) handleWriteBlock(w http.ResponseWriter, r *http.Request) {
	t, tm, v, block, ok := s.resolve(w, r)
	if !ok {
		return
	}
	bs := v.BlockSize()
	if r.ContentLength >= 0 && r.ContentLength != int64(bs) {
		s.errors.Inc()
		writeError(w, http.StatusBadRequest,
			"body is %d bytes, want exactly one %d-byte block", r.ContentLength, bs)
		return
	}
	release, ok := s.admit(w, r, t, tm, int64(bs))
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	buf := bufpool.Get(bs)
	defer bufpool.Put(buf)
	if _, err := io.ReadFull(r.Body, buf); err != nil {
		// Client died or sent a short body: the connection resources
		// (slot, buffer) release via the defers above.
		s.errors.Inc()
		writeError(w, http.StatusBadRequest, "short body: %v", err)
		return
	}
	if err := v.IO().WriteBlock(block, buf); err != nil {
		s.errors.Inc()
		writeError(w, http.StatusInternalServerError, "write block %d: %v", block, err)
		return
	}
	s.writes.Inc()
	tm.writes.Inc()
	s.writeLatencyUS.Observe(float64(time.Since(start) / time.Microsecond))
	w.WriteHeader(http.StatusNoContent)
}

// TenantNames returns the registered tenant names, sorted.
func (s *Server) TenantNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
