package serve

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"code56/internal/bufpool"
	"code56/internal/migrate"
	"code56/internal/raid5"
	"code56/internal/telemetry"
)

const testBlockSize = 512

// newLoadedRAID5 builds a RAID-5 of m disks with rows rows of random data.
func newLoadedRAID5(t *testing.T, m int, rows int64) *raid5.Array {
	t.Helper()
	a, err := raid5.New(m, testBlockSize, raid5.LeftAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	b := make([]byte, testBlockSize)
	for L := int64(0); L < rows*int64(m-1); L++ {
		r.Read(b)
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func newTestServer(t *testing.T, reg *telemetry.Registry) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(reg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func blockURL(ts *httptest.Server, tenant, vol string, block int64) string {
	return fmt.Sprintf("%s/v1/t/%s/v/%s/b/%d", ts.URL, tenant, vol, block)
}

func readBlock(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func writeBlock(t *testing.T, url string, data []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestProtocolRoundTrip: blocks written over the wire read back verbatim,
// both against a bare RAID-5 and info endpoints report the geometry.
func TestProtocolRoundTrip(t *testing.T) {
	const rows = 8
	a := newLoadedRAID5(t, 4, rows)
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, reg)
	tn, err := s.AddTenant("acme", QoS{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := rows * int64(a.M()-1)
	if _, err := tn.AddVolume("vol0", a, blocks); err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte{0xA5}, testBlockSize)
	if code := writeBlock(t, blockURL(ts, "acme", "vol0", 3), payload); code != http.StatusNoContent {
		t.Fatalf("write: status %d", code)
	}
	code, body := readBlock(t, blockURL(ts, "acme", "vol0", 3))
	if code != http.StatusOK || !bytes.Equal(body, payload) {
		t.Fatalf("read back: status %d, %d bytes, match=%v", code, len(body), bytes.Equal(body, payload))
	}
	// The write really landed in the array, not a server-side cache.
	direct := make([]byte, testBlockSize)
	if err := a.ReadBlock(3, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, payload) {
		t.Fatal("array does not hold the written block")
	}

	// Info + error paths.
	code, body = readBlock(t, ts.URL+"/v1/t/acme/v/vol0")
	if code != http.StatusOK || !strings.Contains(string(body), "\"block_size\":512") {
		t.Fatalf("volume info: status %d body %s", code, body)
	}
	if code, body = readBlock(t, blockURL(ts, "nobody", "vol0", 0)); code != http.StatusNotFound || !strings.Contains(string(body), "error") {
		t.Fatalf("unknown tenant: status %d body %s", code, body)
	}
	if code, _ = readBlock(t, blockURL(ts, "acme", "vol0", blocks)); code != http.StatusBadRequest {
		t.Fatalf("out-of-range block: status %d", code)
	}
	if code := writeBlock(t, blockURL(ts, "acme", "vol0", 0), payload[:10]); code != http.StatusBadRequest {
		t.Fatalf("short write body: status %d", code)
	}

	snap := reg.Snapshot()
	if snap.Counters[metricReads] < 1 || snap.Counters[metricWrites] < 1 {
		t.Fatalf("serve counters not advancing: %+v", snap.Counters)
	}
	if snap.Counters["serve.tenant.acme.reads"] < 1 {
		t.Fatalf("per-tenant counters not advancing: %+v", snap.Counters)
	}
}

// gatedIO wraps a BlockIO, holding every read until the gate opens — a
// controllable stand-in for a slow disk.
type gatedIO struct {
	BlockIO
	gate    chan struct{}
	started chan struct{} // one tick per read that reached the array
}

func (g *gatedIO) ReadBlock(logical int64, buf []byte) error {
	g.started <- struct{}{}
	<-g.gate
	return g.BlockIO.ReadBlock(logical, buf)
}

// TestAdmissionSaturation is the satellite acceptance test: a tenant over
// its in-flight cap gets 429s while another tenant is untouched.
func TestAdmissionSaturation(t *testing.T) {
	const cap = 2
	a := newLoadedRAID5(t, 4, 8)
	b := newLoadedRAID5(t, 4, 8)
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, reg)

	slow := &gatedIO{BlockIO: a, gate: make(chan struct{}), started: make(chan struct{}, 16)}
	capped, err := s.AddTenant("capped", QoS{MaxInFlight: cap})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := capped.AddVolume("v", slow, 8); err != nil {
		t.Fatal(err)
	}
	free, err := s.AddTenant("free", QoS{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := free.AddVolume("v", b, 8); err != nil {
		t.Fatal(err)
	}

	// Fill the capped tenant's two slots with reads stuck on the gate.
	var wg sync.WaitGroup
	codes := make(chan int, cap)
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			code, _ := readBlock(t, blockURL(ts, "capped", "v", n))
			codes <- code
		}(int64(i))
	}
	for i := 0; i < cap; i++ {
		select {
		case <-slow.started:
		case <-time.After(5 * time.Second):
			t.Fatal("gated reads never reached the array")
		}
	}

	// The cap is saturated: the next request bounces immediately.
	code, body := readBlock(t, blockURL(ts, "capped", "v", 2))
	if code != http.StatusTooManyRequests || !strings.Contains(string(body), "in-flight cap") {
		t.Fatalf("over-cap request: status %d body %s", code, body)
	}

	// The other tenant is unaffected while "capped" is saturated.
	for i := int64(0); i < 4; i++ {
		if code, _ := readBlock(t, blockURL(ts, "free", "v", i)); code != http.StatusOK {
			t.Fatalf("free tenant read %d: status %d", i, code)
		}
	}

	close(slow.gate)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted read finished with status %d", code)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.tenant.capped.rejected_inflight"] != 1 {
		t.Fatalf("rejected_inflight = %d, want 1", snap.Counters["serve.tenant.capped.rejected_inflight"])
	}
	if snap.Counters["serve.tenant.free.rejected_inflight"] != 0 {
		t.Fatal("free tenant saw rejections")
	}
	if g := snap.Gauges[metricInflight]; g != 0 {
		t.Fatalf("serve.inflight = %d after drain, want 0", g)
	}
}

// TestRateLimit429: a tenant whose burst is one block gets its second
// immediate request rejected with Retry-After once the shaping delay
// would exceed MaxWait.
func TestRateLimit429(t *testing.T) {
	a := newLoadedRAID5(t, 4, 8)
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, reg)
	tn, err := s.AddTenant("slow", QoS{
		BytesPerSec: testBlockSize, // one block per second
		Burst:       testBlockSize,
		MaxWait:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.AddVolume("v", a, 8); err != nil {
		t.Fatal(err)
	}

	if code, _ := readBlock(t, blockURL(ts, "slow", "v", 0)); code != http.StatusOK {
		t.Fatalf("first read within burst: status %d", code)
	}
	resp, err := http.Get(blockURL(ts, "slow", "v", 1))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst-exhausted read: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After hint")
	}
	if n := reg.Snapshot().Counters["serve.tenant.slow.rejected_rate"]; n != 1 {
		t.Fatalf("rejected_rate = %d, want 1", n)
	}
}

// TestRateShapingDelays: within MaxWait, requests are delayed — not
// rejected — and sustained throughput tracks the configured rate.
func TestRateShapingDelays(t *testing.T) {
	a := newLoadedRAID5(t, 4, 8)
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, reg)
	// 20 blocks/s sustained, 1-block burst: each request past the first
	// waits ~50ms.
	tn, err := s.AddTenant("shaped", QoS{
		BytesPerSec: 20 * testBlockSize,
		Burst:       testBlockSize,
		MaxWait:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.AddVolume("v", a, 8); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	const n = 5
	for i := int64(0); i < n; i++ {
		if code, _ := readBlock(t, blockURL(ts, "shaped", "v", i)); code != http.StatusOK {
			t.Fatalf("shaped read %d: status %d", i, code)
		}
	}
	elapsed := time.Since(start)
	// 5 blocks with a 1-block burst at 20 blocks/s needs >= 4 * 50ms.
	if elapsed < 150*time.Millisecond {
		t.Fatalf("5 shaped reads took %v, want rate-limited pacing", elapsed)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve.tenant.shaped.rejected_rate"] != 0 {
		t.Fatal("shaping rejected a request that fit MaxWait")
	}
	if snap.Histograms[metricQoSWaitUS].Count < n-1 {
		t.Fatalf("qos_wait_us count = %d, want >= %d", snap.Histograms[metricQoSWaitUS].Count, n-1)
	}
}

// TestKillClientMidStreamReleasesResources is the satellite leak test: a
// client that dies mid-PUT must not leak its admission slot or pooled
// buffer (verified via bufpool.bytes_in_flight returning to baseline).
func TestKillClientMidStreamReleasesResources(t *testing.T) {
	a := newLoadedRAID5(t, 4, 8)
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, reg)
	tn, err := s.AddTenant("acme", QoS{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.AddVolume("v", a, 8); err != nil {
		t.Fatal(err)
	}
	baseline := bufpool.InFlight()

	for i := 0; i < 8; i++ {
		// Raw TCP: send a PUT promising a full block, deliver half, die.
		conn, err := net.Dial("tcp", ts.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "PUT /v1/t/acme/v/v/b/0 HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n", testBlockSize)
		conn.Write(make([]byte, testBlockSize/2))
		conn.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if bufpool.InFlight() == baseline && s.Tenant("acme").InFlight() == 0 {
			if g := reg.Snapshot().Gauges[metricInflight]; g != 0 {
				t.Fatalf("serve.inflight = %d after client deaths", g)
			}
			// The tenant still serves normal traffic afterwards.
			if code, _ := readBlock(t, blockURL(ts, "acme", "v", 0)); code != http.StatusOK {
				t.Fatalf("post-leak-check read: status %d", code)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("resources leaked: bufpool in-flight %d (baseline %d), tenant in-flight %d",
		bufpool.InFlight(), baseline, s.Tenant("acme").InFlight())
}

// TestServeDuringLiveMigration: foreground wire traffic against a volume
// whose IO is swapped to a MigratorIO keeps reading correct data while
// stripes convert underneath, and writes land in the converted array.
func TestServeDuringLiveMigration(t *testing.T) {
	const rows = 16 * 4 // 16 stripes at p=5
	a := newLoadedRAID5(t, 4, rows)
	blocks := rows * int64(a.M()-1)

	// Remember every block's expected contents.
	want := make([][]byte, blocks)
	for i := range want {
		want[i] = make([]byte, testBlockSize)
		if err := a.ReadBlock(int64(i), want[i]); err != nil {
			t.Fatal(err)
		}
	}

	mig, err := migrate.NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	mig.SetThrottle(2 * time.Millisecond)

	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, reg)
	tn, err := s.AddTenant("acme", QoS{})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := tn.AddVolume("v", a, blocks)
	if err != nil {
		t.Fatal(err)
	}
	vol.SetIO(MigratorIO{M: mig})
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(99))
	payload := bytes.Repeat([]byte{0x5C}, testBlockSize)
	written := map[int64]bool{}
	for i := 0; i < 200; i++ {
		blk := int64(rnd.Intn(int(blocks)))
		if rnd.Intn(4) == 0 {
			if code := writeBlock(t, blockURL(ts, "acme", "v", blk), payload); code != http.StatusNoContent {
				t.Fatalf("write %d during migration: status %d", blk, code)
			}
			written[blk] = true
			continue
		}
		code, body := readBlock(t, blockURL(ts, "acme", "v", blk))
		if code != http.StatusOK {
			t.Fatalf("read %d during migration: status %d", blk, code)
		}
		exp := want[blk]
		if written[blk] {
			exp = payload
		}
		if !bytes.Equal(body, exp) {
			t.Fatalf("block %d corrupted during migration", blk)
		}
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	// After conversion the same volume (still through MigratorIO) returns
	// the same data from the RAID-6 layout.
	for blk := int64(0); blk < blocks; blk++ {
		code, body := readBlock(t, blockURL(ts, "acme", "v", blk))
		exp := want[blk]
		if written[blk] {
			exp = payload
		}
		if code != http.StatusOK || !bytes.Equal(body, exp) {
			t.Fatalf("block %d wrong after migration (status %d)", blk, code)
		}
	}
	r6, err := mig.Result()
	if err != nil {
		t.Fatal(err)
	}
	for st := int64(0); st < 16; st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil || !ok {
			t.Fatalf("stripe %d not parity-clean after served migration: ok=%v err=%v", st, ok, err)
		}
	}
}

// TestLimitListener: at most n connections are open at once; the n+1th
// dial is not accepted until a slot frees.
func TestLimitListener(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ln := Limit(inner, 2, reg)
	defer ln.Close()

	accepted := make(chan net.Conn, 8)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	dial()
	dial()
	var held []net.Conn
	for i := 0; i < 2; i++ {
		select {
		case c := <-accepted:
			held = append(held, c)
		case <-time.After(2 * time.Second):
			t.Fatal("first two connections not accepted")
		}
	}
	if g := reg.Snapshot().Gauges[metricConns]; g != 2 {
		t.Fatalf("serve.conns = %d, want 2", g)
	}

	dial() // third: must sit in the backlog
	select {
	case <-accepted:
		t.Fatal("third connection accepted over the limit")
	case <-time.After(200 * time.Millisecond):
	}

	held[0].Close() // free a slot
	select {
	case c := <-accepted:
		c.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("third connection not accepted after a slot freed")
	}
}
