package serve

import (
	"net"
	"sync"

	"code56/internal/telemetry"
)

// LimitListener bounds concurrently accepted connections — the server's
// outermost backpressure layer. Past the limit, Accept blocks, the
// kernel's listen backlog fills, and remote dials queue or time out
// instead of piling goroutines onto an overloaded process. (Same model
// as golang.org/x/net/netutil.LimitListener, reimplemented because the
// repo is stdlib-only.)
type LimitListener struct {
	net.Listener
	sem   chan struct{}
	conns *telemetry.Gauge

	closeOnce sync.Once
	done      chan struct{}
}

// Limit wraps ln so at most n connections are open at once. The
// serve.conns gauge in reg tracks the open count.
func Limit(ln net.Listener, n int, reg *telemetry.Registry) *LimitListener {
	if n <= 0 {
		n = 1
	}
	return &LimitListener{
		Listener: ln,
		sem:      make(chan struct{}, n),
		conns:    reg.Gauge(metricConns),
		done:     make(chan struct{}),
	}
}

func (l *LimitListener) acquire() bool {
	select {
	case <-l.done:
		return false
	case l.sem <- struct{}{}:
		return true
	}
}

func (l *LimitListener) release() {
	<-l.sem
	l.conns.Add(-1)
}

// Accept waits for a connection slot, then accepts.
func (l *LimitListener) Accept() (net.Conn, error) {
	if !l.acquire() {
		return nil, net.ErrClosed
	}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	l.conns.Add(1)
	return &limitConn{Conn: c, release: l.release}, nil
}

// Close unblocks pending Accepts and closes the inner listener.
func (l *LimitListener) Close() error {
	l.closeOnce.Do(func() { close(l.done) })
	return l.Listener.Close()
}

type limitConn struct {
	net.Conn
	releaseOnce sync.Once
	release     func()
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.releaseOnce.Do(c.release)
	return err
}
