package serve

import (
	"sync"
	"time"
)

// QoS is a tenant's service contract. Zero values mean "no limit" so a
// tenant with an empty QoS is admitted unconditionally.
type QoS struct {
	// BytesPerSec caps the tenant's sustained block-I/O bandwidth
	// (reads + writes combined). 0 = unlimited.
	BytesPerSec int64 `json:"bytes_per_sec"`
	// Burst is the token-bucket depth: how many bytes may be served
	// above the sustained rate after an idle period. Defaults to one
	// second's worth (BytesPerSec) when 0.
	Burst int64 `json:"burst"`
	// MaxInFlight caps concurrently admitted requests. A request over
	// the cap is rejected with 429 immediately (admission control, not
	// queueing: queues hide overload until latency is already ruined).
	// 0 = unlimited.
	MaxInFlight int64 `json:"max_in_flight"`
	// MaxWait bounds how long a request may be delayed for rate shaping
	// before being rejected with 429 instead. Defaults to 500ms when 0.
	MaxWait time.Duration `json:"max_wait_ns"`
}

const defaultMaxWait = 500 * time.Millisecond

func (q QoS) maxWait() time.Duration {
	if q.MaxWait <= 0 {
		return defaultMaxWait
	}
	return q.MaxWait
}

// tokenBucket meters bytes at a sustained rate with a bounded burst. It
// is deliberately reservation-based: Reserve commits the caller to the
// wait it returns, so concurrent requests serialize their shaping delays
// instead of all sleeping until the same refill instant and stampeding.
type tokenBucket struct {
	mu sync.Mutex
	// rate (bytes per second; <= 0 means unlimited) and burst (bucket
	// depth in bytes) are fixed at construction.
	rate   int64
	burst  int64
	tokens float64   //c56:guardedby mu
	last   time.Time //c56:guardedby mu
}

func newTokenBucket(rate, burst int64) *tokenBucket {
	if burst <= 0 {
		burst = rate
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: float64(burst)}
}

// Reserve claims n bytes. It returns the shaping delay the caller must
// observe before proceeding and ok=true, or ok=false (reservation undone)
// when the delay would exceed maxWait. Requests larger than the bucket
// depth are still admitted — one block can exceed a small burst — they
// just pay a proportionally longer delay.
func (b *tokenBucket) Reserve(n int64, maxWait time.Duration) (time.Duration, bool) {
	if b == nil || b.rate <= 0 {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * float64(b.rate)
		if max := float64(b.burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = now
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0, true
	}
	wait := time.Duration(-b.tokens / float64(b.rate) * float64(time.Second))
	if wait > maxWait {
		b.tokens += float64(n) // undo: the request is rejected, not served
		return wait, false
	}
	return wait, true
}
