// Package disksim is this repository's substitute for the DiskSim 4.0
// simulator the paper uses in §V-C: a deterministic, event-driven disk
// array simulator that replays block-level I/O traces against a mechanical
// disk model (seek + rotational latency + transfer) with per-disk FIFO
// queues, and reports the overall completion time (makespan), which is the
// paper's "conversion time".
//
// The model captures what Figure 19 measures: how a conversion scheme's I/O
// counts and their distribution across disks translate into wall-clock
// time, including the block-size sensitivity (a larger block raises the
// transfer term but not the positioning terms) and the benefit of
// sequential access runs.
package disksim

import (
	"fmt"
	"sort"

	"code56/internal/telemetry"
)

// Model holds the mechanical parameters of one disk. The defaults mimic a
// 7200 RPM enterprise SATA drive of the paper's era.
type Model struct {
	// SeekTime is the average positioning time for a non-sequential
	// access, in milliseconds.
	SeekTime float64
	// RotationTime is the full-revolution time in milliseconds; a random
	// access pays half of it on average.
	RotationTime float64
	// TransferMBps is the sustained media transfer rate in MB/s.
	TransferMBps float64
	// SeqWindow is the forward gap, in blocks, the drive covers by
	// reading through (read-ahead / skip within a track) instead of
	// seeking: a request whose LBA lies within (last, last+SeqWindow]
	// costs gap * transfer instead of a repositioning.
	SeqWindow int64
}

// DefaultModel returns parameters of a 7200 RPM drive: 8.5 ms average seek,
// 8.33 ms revolution, 100 MB/s media rate, 16-block read-through window.
func DefaultModel() Model {
	return Model{SeekTime: 8.5, RotationTime: 8.33, TransferMBps: 100, SeqWindow: 16}
}

// ServiceTime returns the time in milliseconds to serve one request of
// size bytes. sequential requests skip the positioning terms.
func (m Model) ServiceTime(size int, sequential bool) float64 {
	transfer := float64(size) / (m.TransferMBps * 1e6) * 1e3
	if sequential {
		return transfer
	}
	return m.SeekTime + m.RotationTime/2 + transfer
}

// serviceTimeGap returns the service time given the LBA distance from the
// previous request on the same disk: 1 is sequential; small forward gaps
// within SeqWindow are covered by reading through; anything else pays the
// positioning cost.
func (m Model) serviceTimeGap(size int, gap int64) float64 {
	transfer := float64(size) / (m.TransferMBps * 1e6) * 1e3
	switch {
	case gap == 1:
		return transfer
	case gap > 1 && gap <= m.SeqWindow:
		return float64(gap) * transfer
	default:
		return m.ServiceTime(size, false)
	}
}

// Request is one block I/O against one disk.
type Request struct {
	// Disk is the target disk index.
	Disk int
	// LBA is the logical block address on the disk (in blocks).
	LBA int64
	// Write distinguishes writes from reads (same service time in this
	// model; kept for accounting and trace fidelity).
	Write bool
	// Arrival is the request's arrival time in milliseconds. Requests
	// arriving while the disk is busy queue FIFO.
	Arrival float64
}

// Stats summarizes one simulation run.
type Stats struct {
	// Makespan is the completion time of the last request, ms.
	Makespan float64
	// PerDiskBusy is each disk's total service time, ms.
	PerDiskBusy []float64
	// PerDiskOps counts the requests each disk served.
	PerDiskOps []int
	// Requests is the total number of requests served.
	Requests int
	// SequentialHits counts requests served without repositioning.
	SequentialHits int
}

// Utilization returns disk d's busy fraction of the makespan.
func (s Stats) Utilization(d int) float64 {
	if s.Makespan == 0 {
		return 0
	}
	return s.PerDiskBusy[d] / s.Makespan
}

// serviceBucketsMS covers the model's service-time range: a sequential
// 4 KB transfer (~0.04 ms) up to long queued random accesses.
var serviceBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 15, 20, 50}

// Sim replays request traces over an array of identical disks.
type Sim struct {
	model     Model
	disks     int
	blockSize int

	tr       *telemetry.Tracer
	requests *telemetry.Counter
	seqHits  *telemetry.Counter
	svcTime  *telemetry.Histogram
}

// New creates a simulator for `disks` disks with the given block size in
// bytes, bound to the default telemetry registry (rebind with
// SetTelemetry).
func New(disks, blockSize int, model Model) (*Sim, error) {
	if disks <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("disksim: need positive disks (%d) and block size (%d)", disks, blockSize)
	}
	s := &Sim{model: model, disks: disks, blockSize: blockSize}
	s.SetTelemetry(nil, nil)
	return s, nil
}

// SetTelemetry rebinds the simulator's counters, service-time histogram
// and tracer. Pass nil for either argument to use the process-wide
// defaults.
func (s *Sim) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	s.tr = tr
	s.requests = reg.Counter("disksim.requests")
	s.seqHits = reg.Counter("disksim.sequential_hits")
	s.svcTime = reg.Histogram("disksim.service_ms", serviceBucketsMS)
}

// Run replays the trace and returns the run's statistics. Requests are
// served per disk in arrival order (stable for equal arrivals: trace
// order). A request is sequential if its LBA immediately follows the
// previous request served by the same disk.
func (s *Sim) Run(trace []Request) (Stats, error) {
	st := Stats{
		PerDiskBusy: make([]float64, s.disks),
		PerDiskOps:  make([]int, s.disks),
		Requests:    len(trace),
	}
	// Partition by disk, preserving trace order per disk (stable sort by
	// arrival).
	perDisk := make([][]Request, s.disks)
	for _, r := range trace {
		if r.Disk < 0 || r.Disk >= s.disks {
			return Stats{}, fmt.Errorf("disksim: request for disk %d of %d", r.Disk, s.disks)
		}
		if r.LBA < 0 {
			return Stats{}, fmt.Errorf("disksim: negative LBA %d", r.LBA)
		}
		perDisk[r.Disk] = append(perDisk[r.Disk], r)
	}
	sp := s.tr.StartSpan("disksim.run", telemetry.A("requests", len(trace)))
	for d, reqs := range perDisk {
		sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
		now := 0.0
		lastLBA := int64(-1 << 40)
		for _, r := range reqs {
			if r.Arrival > now {
				now = r.Arrival
			}
			gap := r.LBA - lastLBA
			if gap >= 1 && gap <= max64(1, s.model.SeqWindow) {
				st.SequentialHits++
			}
			dt := s.model.serviceTimeGap(s.blockSize, gap)
			s.svcTime.Observe(dt)
			now += dt
			st.PerDiskBusy[d] += dt
			lastLBA = r.LBA
			st.PerDiskOps[d]++
		}
		if now > st.Makespan {
			st.Makespan = now
		}
	}
	s.requests.Add(int64(st.Requests))
	s.seqHits.Add(int64(st.SequentialHits))
	sp.End(telemetry.A("makespan_ms", st.Makespan), telemetry.A("sequential_hits", st.SequentialHits))
	return st, nil
}

// RunPhases replays several traces back to back with a barrier between
// them (the degrade/upgrade structure of the RAID-0/RAID-4 conversion
// approaches) and returns the combined statistics.
func (s *Sim) RunPhases(phases [][]Request) (Stats, error) {
	total := Stats{
		PerDiskBusy: make([]float64, s.disks),
		PerDiskOps:  make([]int, s.disks),
	}
	for _, tr := range phases {
		st, err := s.Run(tr)
		if err != nil {
			return Stats{}, err
		}
		total.Makespan += st.Makespan
		total.Requests += st.Requests
		total.SequentialHits += st.SequentialHits
		for d := range st.PerDiskBusy {
			total.PerDiskBusy[d] += st.PerDiskBusy[d]
			total.PerDiskOps[d] += st.PerDiskOps[d]
		}
	}
	return total, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
