package disksim

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestServiceTime(t *testing.T) {
	m := Model{SeekTime: 8, RotationTime: 8, TransferMBps: 100}
	// 4 KiB at 100 MB/s = 4096/1e8 s = 0.04096 ms.
	if got := m.ServiceTime(4096, true); !approx(got, 0.04096) {
		t.Errorf("sequential 4K = %v", got)
	}
	if got := m.ServiceTime(4096, false); !approx(got, 8+4+0.04096) {
		t.Errorf("random 4K = %v", got)
	}
	// Doubling the block size doubles only the transfer term.
	d := m.ServiceTime(8192, false) - m.ServiceTime(4096, false)
	if !approx(d, 0.04096) {
		t.Errorf("8K-4K delta = %v", d)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(0, 4096, DefaultModel()); err == nil {
		t.Error("0 disks accepted")
	}
	if _, err := New(4, 0, DefaultModel()); err == nil {
		t.Error("0 block size accepted")
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	s, _ := New(2, 4096, DefaultModel())
	if _, err := s.Run([]Request{{Disk: 5}}); err == nil {
		t.Error("out-of-range disk accepted")
	}
	if _, err := s.Run([]Request{{Disk: 0, LBA: -1}}); err == nil {
		t.Error("negative LBA accepted")
	}
}

func TestSequentialDetection(t *testing.T) {
	s, _ := New(1, 4096, Model{SeekTime: 10, RotationTime: 10, TransferMBps: 100, SeqWindow: 4})
	st, err := s.Run([]Request{
		{Disk: 0, LBA: 0}, {Disk: 0, LBA: 1}, {Disk: 0, LBA: 2}, // 2 sequential hits
		{Disk: 0, LBA: 5}, // gap 3, within window: read-through, counted as hit
		{Disk: 0, LBA: 100}, {Disk: 0, LBA: 101},
		{Disk: 0, LBA: 50}, // backward: full seek
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SequentialHits != 4 {
		t.Errorf("sequential hits = %d, want 4", st.SequentialHits)
	}
	transfer := 4096.0 / 1e8 * 1e3
	// first request seeks, 2 sequential, gap-3 read-through (3 transfers),
	// seek, sequential, backward seek.
	want := 3*(10+5+transfer) + 2*transfer + 3*transfer + transfer
	if !approx(st.Makespan, want) {
		t.Errorf("makespan %v, want %v", st.Makespan, want)
	}
}

func TestParallelDisks(t *testing.T) {
	m := Model{SeekTime: 10, RotationTime: 0, TransferMBps: 1000}
	s, _ := New(4, 4096, m)
	// Disk 0 gets 4 random requests, others 1: makespan is disk 0's queue.
	var tr []Request
	for i := 0; i < 4; i++ {
		tr = append(tr, Request{Disk: 0, LBA: int64(100 * i)})
	}
	for d := 1; d < 4; d++ {
		tr = append(tr, Request{Disk: d, LBA: 0})
	}
	st, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	per := m.ServiceTime(4096, false)
	if !approx(st.Makespan, 4*per) {
		t.Errorf("makespan %v, want %v (bottleneck disk)", st.Makespan, 4*per)
	}
	if !approx(st.PerDiskBusy[1], per) || st.PerDiskOps[0] != 4 {
		t.Errorf("per-disk stats wrong: %+v", st)
	}
	if u := st.Utilization(0); !approx(u, 1.0) {
		t.Errorf("bottleneck utilization %v, want 1", u)
	}
	if u := st.Utilization(1); !approx(u, 0.25) {
		t.Errorf("idle-ish disk utilization %v, want 0.25", u)
	}
}

func TestArrivalsCreateIdleTime(t *testing.T) {
	m := Model{SeekTime: 1, RotationTime: 0, TransferMBps: 1e6}
	s, _ := New(1, 1000, m)
	st, err := s.Run([]Request{
		{Disk: 0, LBA: 0, Arrival: 0},
		{Disk: 0, LBA: 50, Arrival: 100}, // disk idles until t=100
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan <= 100 {
		t.Errorf("makespan %v should exceed the late arrival", st.Makespan)
	}
	if st.Utilization(0) >= 0.5 {
		t.Errorf("utilization %v should reflect idle gap", st.Utilization(0))
	}
}

func TestRunPhasesBarrier(t *testing.T) {
	m := Model{SeekTime: 10, RotationTime: 0, TransferMBps: 1e6}
	s, _ := New(2, 1000, m)
	// Phase 1: disk 0 busy; phase 2: disk 1 busy. With a barrier the
	// makespans add even though different disks are used.
	st, err := s.RunPhases([][]Request{
		{{Disk: 0, LBA: 0}},
		{{Disk: 1, LBA: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	per := m.ServiceTime(1000, false)
	if !approx(st.Makespan, 2*per) {
		t.Errorf("phased makespan %v, want %v", st.Makespan, 2*per)
	}
	if st.Requests != 2 {
		t.Errorf("requests %d, want 2", st.Requests)
	}
}

// TestMakespanLowerBound: the makespan is never less than any disk's busy
// time, for arbitrary traces.
func TestMakespanLowerBound(t *testing.T) {
	s, _ := New(3, 4096, DefaultModel())
	f := func(raw []uint16) bool {
		var tr []Request
		for i, v := range raw {
			tr = append(tr, Request{Disk: int(v) % 3, LBA: int64(v % 977), Arrival: float64(i % 7)})
		}
		st, err := s.Run(tr)
		if err != nil {
			return false
		}
		for _, busy := range st.PerDiskBusy {
			if busy > st.Makespan+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
