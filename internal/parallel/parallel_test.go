package parallel

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"code56/internal/xorblk"
)

func TestResolveDefaults(t *testing.T) {
	c := Resolve()
	if c.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("default Workers = %d, want GOMAXPROCS %d", c.Workers, runtime.GOMAXPROCS(0))
	}
	if c.ChunkSize != DefaultChunkSize {
		t.Errorf("default ChunkSize = %d, want %d", c.ChunkSize, DefaultChunkSize)
	}
	c = Resolve(WithWorkers(3), WithChunkSize(512), nil)
	if c.Workers != 3 || c.ChunkSize != 512 {
		t.Errorf("Resolve(WithWorkers(3), WithChunkSize(512)) = %+v", c)
	}
	c = Resolve(WithWorkers(-1), WithChunkSize(0))
	if c.Workers != runtime.GOMAXPROCS(0) || c.ChunkSize != DefaultChunkSize {
		t.Errorf("non-positive options should fall back to defaults, got %+v", c)
	}
	if c.BatchBytes != DefaultBatchBytes {
		t.Errorf("default BatchBytes = %d, want %d", c.BatchBytes, DefaultBatchBytes)
	}
	c = Resolve(WithBatchBytes(4096))
	if c.BatchBytes != 4096 {
		t.Errorf("WithBatchBytes(4096) = %+v", c)
	}
}

func TestForEachBatchCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct {
		workers   int
		itemBytes int64
		batch     int
	}{
		{1, 1024, 64},         // serial, many items per batch
		{4, 1024, 64},         // parallel, many items per batch
		{4, 1 << 21, 1 << 20}, // item bigger than budget: per-item claims
		{4, 0, 0},             // unknown item size: per-item claims
		{16, 3000, 1 << 18},   // non-dividing sizes exercise the tail batch
	} {
		const n = 1000
		var hits [n]atomic.Int32
		err := ForEachBatch(context.Background(), n, tc.itemBytes, func(i int64) error {
			hits[i].Add(1)
			return nil
		}, WithWorkers(tc.workers), WithBatchBytes(tc.batch))
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("%+v: index %d ran %d times", tc, i, got)
			}
		}
	}
}

func TestForEachBatchStopsOnError(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int64
	err := ForEachBatch(context.Background(), 1000, 1024, func(i int64) error {
		ran.Add(1)
		if i == 100 {
			return sentinel
		}
		return nil
	}, WithWorkers(1), WithBatchBytes(64*1024))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Serial execution claims batches in order, so nothing past the failing
	// index runs.
	if got := ran.Load(); got != 101 {
		t.Fatalf("ran %d items before stopping, want 101", got)
	}
}

func TestForEachBatchHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachBatch(ctx, 1000, 1024, func(i int64) error {
		t.Error("fn ran under a cancelled context")
		return nil
	}, WithWorkers(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachBatchRangeCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct {
		workers   int
		itemBytes int64
		batch     int
		wantSpan  int64 // expected hi-lo of every non-tail range
	}{
		{1, 1024, 64 * 1024, 64},
		{4, 1024, 64 * 1024, 64},
		{4, 1 << 21, 1 << 20, 1}, // item bigger than budget: single-item ranges
		{4, 0, 0, 1},             // unknown item size: single-item ranges
		{8, 3000, 1 << 18, 87},   // non-dividing sizes exercise the tail range
	} {
		const n = 1000
		var hits [n]atomic.Int32
		err := ForEachBatchRange(context.Background(), n, tc.itemBytes, func(lo, hi int64) error {
			if lo >= hi || hi > n {
				t.Errorf("%+v: bad range [%d, %d)", tc, lo, hi)
			}
			if span := hi - lo; span != tc.wantSpan && hi != n {
				t.Errorf("%+v: range [%d, %d) has span %d, want %d", tc, lo, hi, span, tc.wantSpan)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
			return nil
		}, WithWorkers(tc.workers), WithBatchBytes(tc.batch))
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("%+v: index %d covered %d times", tc, i, got)
			}
		}
	}
}

func TestForEachBatchRangeStopsOnError(t *testing.T) {
	sentinel := errors.New("boom")
	var ranges atomic.Int64
	err := ForEachBatchRange(context.Background(), 1000, 1024, func(lo, hi int64) error {
		ranges.Add(1)
		if lo >= 128 {
			return sentinel
		}
		return nil
	}, WithWorkers(1), WithBatchBytes(64*1024))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Serial execution claims ranges in order: [0,64), [64,128), [128,192)
	// fails — nothing past it runs.
	if got := ranges.Load(); got != 3 {
		t.Fatalf("ran %d ranges before stopping, want 3", got)
	}
}

func TestForEachBatchRangeHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachBatchRange(ctx, 1000, 1024, func(lo, hi int64) error {
		t.Error("fn ran under a cancelled context")
		return nil
	}, WithWorkers(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := ForEachBatchRange(context.Background(), 0, 1024, func(lo, hi int64) error {
		t.Error("fn ran for an empty index space")
		return nil
	}); err != nil {
		t.Fatalf("n=0: err = %v, want nil", err)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		var hits [n]atomic.Int32
		err := ForEach(context.Background(), n, func(i int64) error {
			hits[i].Add(1)
			return nil
		}, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	err := ForEach(context.Background(), 200, func(i int64) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
		return nil
	}, WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent workers, bound is %d", p, workers)
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	err := ForEach(context.Background(), 10_000, func(i int64) error {
		if i == 5 {
			return boom
		}
		if i > 5 {
			after.Add(1)
		}
		return nil
	}, WithWorkers(4))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Cancellation is prompt: nowhere near all 10k items may run after the
	// failure (each worker may finish only its in-flight item).
	if a := after.Load(); a > 9000 {
		t.Errorf("%d items ran after the error; cancellation did not propagate", a)
	}

	// Serial path: error stops immediately.
	var ran int64
	err = ForEach(context.Background(), 100, func(i int64) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	}, WithWorkers(1))
	if !errors.Is(err, boom) || ran != 4 {
		t.Errorf("serial: err=%v ran=%d, want boom after 4 items", err, ran)
	}
}

func TestForEachHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	var once sync.Once
	err := ForEach(ctx, 1_000_000, func(i int64) error {
		ran.Add(1)
		once.Do(cancel)
		return nil
	}, WithWorkers(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r := ran.Load(); r >= 1_000_000 {
		t.Error("cancellation did not stop the loop")
	}

	// Already-cancelled context: nothing runs, even serially.
	err = ForEach(ctx, 10, func(i int64) error { t.Error("fn ran"); return nil }, WithWorkers(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	// n <= 0 is a no-op that still reports cancellation state.
	if err := ForEach(context.Background(), 0, nil); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestXorMultiChunkedMatchesKernel(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 100, 4096, 200_000, 1<<20 + 37} {
		srcs := make([][]byte, 6)
		for i := range srcs {
			srcs[i] = make([]byte, n)
			r.Read(srcs[i])
		}
		want := make([]byte, n)
		xorblk.XorMulti(want, srcs...)
		got := make([]byte, n)
		ops, err := XorMulti(context.Background(), got, srcs,
			WithWorkers(4), WithChunkSize(4096))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("n=%d: chunked XorMulti diverges from kernel", n)
		}
		if ops != len(srcs)-1 {
			t.Errorf("n=%d: ops = %d, want %d", n, ops, len(srcs)-1)
		}
	}
}

func TestXorMultiChunkedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]byte, 1<<20)
	if _, err := XorMulti(ctx, dst, [][]byte{make([]byte, 1<<20)},
		WithWorkers(2), WithChunkSize(1024)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
