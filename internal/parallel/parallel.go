// Package parallel is the stripe engine's scheduling substrate: a bounded
// worker pool with first-error cancellation and context support, plus a
// chunked multi-source XOR that splits one large block across workers.
//
// Stripes of an array are independent — encode, scrub, rebuild and
// migration all read and write disjoint per-stripe block ranges — so every
// bulk operation in this repository reduces to "run f(stripe) for stripes
// [0, n) on at most W goroutines, stop at the first error". ForEach is that
// loop. Work is claimed from a shared atomic counter rather than
// pre-partitioned, so a slow stripe (e.g. one needing reconstruction)
// doesn't leave its worker's whole shard waiting behind it.
//
// Callers pass knobs as functional options (WithWorkers, WithChunkSize);
// the same options are re-exported by the public code56 facade, so one
// option vocabulary reaches from the CLI flags down to this pool.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"code56/internal/xorblk"
)

// DefaultChunkSize is the per-goroutine granule used when splitting a
// single large block's XOR across workers: big enough that scheduling cost
// is noise, small enough to split a typical multi-megabyte block usefully.
const DefaultChunkSize = 64 * 1024

// DefaultBatchBytes is the per-claim byte budget of ForEachBatch: a worker
// takes as many contiguous items as fit in this budget before touching the
// shared claim counter again. Sized to a typical per-core L2 slice (1 MiB),
// so one batch's stripes stay cache-resident while a worker streams through
// them, and small enough that the tail imbalance between workers is bounded
// by one batch.
const DefaultBatchBytes = 1 << 20

// Config is the resolved knob set of one bulk operation.
type Config struct {
	// Workers bounds the number of concurrently running goroutines.
	Workers int
	// ChunkSize is the byte granule for intra-block splitting (XorMulti).
	ChunkSize int
	// BatchBytes is the contiguous-work byte budget per claim (ForEachBatch).
	BatchBytes int
}

// Option adjusts a Config. The zero Config resolves to defaults
// (GOMAXPROCS workers, DefaultChunkSize), so options are always optional.
type Option func(*Config)

// WithWorkers bounds the operation to n concurrent workers. n <= 0 selects
// GOMAXPROCS.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithChunkSize sets the byte granule for splitting single blocks across
// workers. b <= 0 selects DefaultChunkSize.
func WithChunkSize(b int) Option { return func(c *Config) { c.ChunkSize = b } }

// WithBatchBytes sets the contiguous-work byte budget a worker claims at a
// time in batched loops (ForEachBatch): bulk stripe operations group
// ceil(BatchBytes / stripeBytes) adjacent stripes into one claim. b <= 0
// selects DefaultBatchBytes.
func WithBatchBytes(b int) Option { return func(c *Config) { c.BatchBytes = b } }

// Resolve applies opts to the default Config. Nil options are ignored.
func Resolve(opts ...Option) Config {
	var c Config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = DefaultBatchBytes
	}
	return c
}

// ForEach runs fn(i) for every i in [0, n) across at most Workers
// goroutines and returns the first error. The first failure (or ctx
// becoming done) stops further claims; workers finish their in-flight item
// and exit, so when ForEach returns no fn is still running. With one worker
// (or n <= 1) everything runs on the calling goroutine in index order —
// bulk entry points rely on that to keep their serial wrappers
// byte-for-byte identical to the pre-engine behavior.
func ForEach(ctx context.Context, n int64, fn func(i int64) error, opts ...Option) error {
	if n <= 0 {
		return ctx.Err()
	}
	cfg := Resolve(opts...)
	workers := cfg.Workers
	if int64(workers) > n {
		workers = int(n)
	}
	if workers <= 1 {
		for i := int64(0); i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stopped  atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := next.Add(1) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// ForEachBatch is ForEach with cache-aware claiming: items are grouped into
// batches of contiguous indices sized so one batch's data fits the
// BatchBytes budget (itemBytes is the caller's per-item working-set size,
// e.g. one stripe's bytes), and a worker claims a whole batch at a time.
// Per-stripe work items are small relative to scheduling cost — claiming
// them one by one thrashes the shared counter and bounces adjacent stripes
// between cores, which is what made tiny-stripe parallel sweeps collapse
// below 1x. Batching restores streaming access within each worker while
// keeping work stealing at batch granularity. Results and error semantics
// are identical to ForEach for any batch size; itemBytes <= 0 or a budget
// smaller than one item degrades to per-item claiming.
func ForEachBatch(ctx context.Context, n, itemBytes int64, fn func(i int64) error, opts ...Option) error {
	return ForEachBatchRange(ctx, n, itemBytes, func(lo, hi int64) error {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}, opts...)
}

// ForEachBatchRange is the range-granular form of ForEachBatch: instead of
// invoking fn once per item inside a claimed batch, it hands the whole
// contiguous claim [lo, hi) to fn in one call. Callers that can amortize
// per-call setup across a batch — the interleaved stripe encoder loads hi-lo
// stripes and walks them chain-by-chain so parity-column reads and writes
// stream sequentially — use this; per-item callers use ForEachBatch, which
// is this function plus the inner loop. Batch sizing, claiming, error and
// cancellation semantics are identical: batches are ceil(BatchBytes /
// itemBytes) items (itemBytes <= 0 degrades to single-item ranges), the
// first error stops further claims, and ranges never overlap and cover
// [0, n) exactly.
func ForEachBatchRange(ctx context.Context, n, itemBytes int64, fn func(lo, hi int64) error, opts ...Option) error {
	cfg := Resolve(opts...)
	batch := int64(1)
	if itemBytes > 0 {
		batch = int64(cfg.BatchBytes) / itemBytes
	}
	if batch < 1 {
		batch = 1
	}
	batches := (n + batch - 1) / batch
	return ForEach(ctx, batches, func(b int64) error {
		lo := b * batch
		hi := lo + batch
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	}, opts...)
}

// XorMulti computes dst = XOR of srcs with the block split into ChunkSize
// ranges distributed over Workers goroutines — the chunked complement to
// per-stripe fan-out, for workloads with few stripes but very large blocks.
// It returns the block XOR count of the fold (len(srcs)-1 for non-empty
// srcs), matching xorblk.XorMulti's accounting regardless of the split.
func XorMulti(ctx context.Context, dst []byte, srcs [][]byte, opts ...Option) (int, error) {
	cfg := Resolve(opts...)
	if len(dst) <= cfg.ChunkSize || cfg.Workers <= 1 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return xorblk.XorMulti(dst, srcs...), nil
	}
	chunks := (int64(len(dst)) + int64(cfg.ChunkSize) - 1) / int64(cfg.ChunkSize)
	err := ForEach(ctx, chunks, func(i int64) error {
		lo := int(i) * cfg.ChunkSize
		hi := lo + cfg.ChunkSize
		if hi > len(dst) {
			hi = len(dst)
		}
		xorblk.XorMultiRange(dst, lo, hi, srcs...)
		return nil
	}, opts...)
	if err != nil {
		return 0, err
	}
	if len(srcs) == 0 {
		return 0, nil
	}
	return len(srcs) - 1, nil
}
