package raid5

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

var layouts = []Layout{LeftAsymmetric, LeftSymmetric, RightAsymmetric, RightSymmetric}

func TestLayoutStrings(t *testing.T) {
	want := map[Layout]string{
		LeftAsymmetric:  "left-asymmetric",
		LeftSymmetric:   "left-symmetric",
		RightAsymmetric: "right-asymmetric",
		RightSymmetric:  "right-symmetric",
		Layout(9):       "Layout(9)",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d: %q", int(l), l.String())
		}
	}
}

func TestNewRejectsSmallArrays(t *testing.T) {
	for _, m := range []int{0, 1, 2} {
		if _, err := New(m, 16, LeftAsymmetric); err == nil {
			t.Errorf("New(%d) should fail", m)
		}
	}
}

// TestPlacement checks the rotation conventions: every disk of every row is
// used exactly once (parity + m-1 data positions form a permutation), and
// the left-asymmetric rotation matches the paper's assumption (row i parity
// on disk m-1-i for i < m).
func TestPlacement(t *testing.T) {
	for _, l := range layouts {
		a, _ := New(5, 16, l)
		for row := int64(0); row < 10; row++ {
			used := map[int]bool{a.ParityDisk(row): true}
			for k := 0; k < 4; k++ {
				d := a.DataDisk(row, k)
				if used[d] {
					t.Fatalf("%v row %d: disk %d reused", l, row, d)
				}
				used[d] = true
			}
			if len(used) != 5 {
				t.Fatalf("%v row %d: %d disks used", l, row, len(used))
			}
		}
	}
	a, _ := New(5, 16, LeftAsymmetric)
	for i := int64(0); i < 5; i++ {
		if pd := a.ParityDisk(i); pd != 4-int(i) {
			t.Errorf("left-asymmetric row %d parity on disk %d, want %d", i, pd, 4-int(i))
		}
	}
	r, _ := New(5, 16, RightAsymmetric)
	for i := int64(0); i < 5; i++ {
		if pd := r.ParityDisk(i); pd != int(i) {
			t.Errorf("right-asymmetric row %d parity on disk %d, want %d", i, pd, int(i))
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	for _, l := range layouts {
		a, _ := New(4, 16, l)
		r := rand.New(rand.NewSource(1))
		want := make(map[int64][]byte)
		for L := int64(0); L < 30; L++ {
			b := make([]byte, 16)
			r.Read(b)
			want[L] = b
			if err := a.WriteBlock(L, b); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]byte, 16)
		for L, w := range want {
			if err := a.ReadBlock(L, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, w) {
				t.Fatalf("%v block %d mismatch", l, L)
			}
		}
		for row := int64(0); row < 10; row++ {
			ok, err := a.VerifyRow(row)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%v row %d parity inconsistent", l, row)
			}
		}
	}
}

func TestWriteRejectsBadSize(t *testing.T) {
	a, _ := New(4, 16, LeftAsymmetric)
	if err := a.WriteBlock(0, make([]byte, 8)); err == nil {
		t.Fatal("short write accepted")
	}
}

func TestDegradedRead(t *testing.T) {
	a, _ := New(4, 16, LeftSymmetric)
	r := rand.New(rand.NewSource(2))
	want := make(map[int64][]byte)
	for L := int64(0); L < 24; L++ {
		b := make([]byte, 16)
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	a.Disks().Disk(2).Fail()
	buf := make([]byte, 16)
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatalf("degraded read %d: %v", L, err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("degraded read %d mismatch", L)
		}
	}
}

func TestDegradedWriteAndRebuild(t *testing.T) {
	a, _ := New(4, 16, LeftAsymmetric)
	r := rand.New(rand.NewSource(3))
	want := make(map[int64][]byte)
	write := func(L int64) {
		b := make([]byte, 16)
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	for L := int64(0); L < 24; L++ {
		write(L)
	}
	a.Disks().Disk(1).Fail()
	// Degraded writes: some land on the failed disk (reconstruct-write),
	// some on parity rows whose parity disk failed.
	for L := int64(0); L < 24; L += 2 {
		write(L)
	}
	// Replace and rebuild.
	a.Disks().Disk(1).Replace()
	if err := a.Rebuild(1, 8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d mismatch after rebuild", L)
		}
	}
	for row := int64(0); row < 8; row++ {
		ok, err := a.VerifyRow(row)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("row %d inconsistent after rebuild", row)
		}
	}
}

func TestDoubleFailure(t *testing.T) {
	a, _ := New(4, 16, LeftAsymmetric)
	for L := int64(0); L < 12; L++ {
		if err := a.WriteBlock(L, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	a.Disks().Disk(0).Fail()
	a.Disks().Disk(2).Fail()
	sawDouble := false
	buf := make([]byte, 16)
	for L := int64(0); L < 12; L++ {
		if err := a.ReadBlock(L, buf); errors.Is(err, ErrDoubleFailure) {
			sawDouble = true
		}
	}
	if !sawDouble {
		t.Fatal("double failure never surfaced — RAID-5 should not survive two failed disks")
	}
	if err := a.Rebuild(0, 3); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("Rebuild with failed disks: %v", err)
	}
}

// TestLatentErrorRecovery: a latent sector error on a data block is
// transparently recovered through parity.
func TestLatentErrorRecovery(t *testing.T) {
	a, _ := New(4, 16, LeftAsymmetric)
	want := []byte("0123456789abcdef")
	if err := a.WriteBlock(5, want); err != nil {
		t.Fatal(err)
	}
	row, disk := a.Locate(5)
	a.Disks().Disk(disk).InjectLatentError(row)
	buf := make([]byte, 16)
	if err := a.ReadBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("latent error not recovered via parity")
	}
}

// TestRMWTouchesTwoDisks asserts the single-write I/O profile the paper's
// Table III builds on: an update in a healthy array costs 2 reads + 2
// writes on exactly the data disk and the parity disk.
func TestRMWTouchesTwoDisks(t *testing.T) {
	a, _ := New(5, 16, LeftAsymmetric)
	if err := a.WriteBlock(7, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	a.Disks().ResetStats()
	if err := a.WriteBlock(7, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	row, disk := a.Locate(7)
	pd := a.ParityDisk(row)
	for i := 0; i < 5; i++ {
		s := a.Disks().Disk(i).Stats()
		switch i {
		case disk, pd:
			if s.Reads != 1 || s.Writes != 1 {
				t.Errorf("disk %d stats %+v, want 1r/1w", i, s)
			}
		default:
			if s.Total() != 0 {
				t.Errorf("disk %d touched: %+v", i, s)
			}
		}
	}
}

func TestAccessorsAndWrap(t *testing.T) {
	a, _ := New(5, 32, LeftSymmetric)
	if a.M() != 5 || a.Layout() != LeftSymmetric || a.BlockSize() != 32 {
		t.Fatalf("accessors: m=%d layout=%v bs=%d", a.M(), a.Layout(), a.BlockSize())
	}
	w, err := Wrap(a.Disks(), 5, LeftSymmetric)
	if err != nil {
		t.Fatal(err)
	}
	if w.Disks() != a.Disks() {
		t.Fatal("Wrap must reuse the disk set")
	}
	if _, err := Wrap(a.Disks(), 2, LeftSymmetric); err == nil {
		t.Error("Wrap with m=2 accepted")
	}
	if _, err := Wrap(a.Disks(), 9, LeftSymmetric); err == nil {
		t.Error("Wrap with too few disks accepted")
	}
}

// TestWriteParity regenerates a row's parity wholesale after direct data
// manipulation.
func TestWriteParity(t *testing.T) {
	a, _ := New(4, 16, LeftAsymmetric)
	// Write data blocks directly to the disks, skipping parity upkeep.
	row := int64(2)
	for k := 0; k < 3; k++ {
		d := a.DataDisk(row, k)
		// 1, 2, 4: XOR is nonzero, so the zero parity is genuinely stale.
		if err := a.Disks().Disk(d).Write(row, bytes.Repeat([]byte{byte(1 << k)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := a.VerifyRow(row); ok {
		t.Fatal("row should be inconsistent before WriteParity")
	}
	if err := a.WriteParity(row); err != nil {
		t.Fatal(err)
	}
	ok, err := a.VerifyRow(row)
	if err != nil || !ok {
		t.Fatalf("row inconsistent after WriteParity: %v %v", ok, err)
	}
}
