// Package raid5 implements a RAID-5 array over the vdisk substrate: the
// starting point of every conversion the paper studies. All four standard
// parity placements are supported; the paper's default is left-asymmetric,
// whose rotation is what Code 5-6's horizontal parity anti-diagonal mirrors.
//
// Addressing: the array exposes logical data blocks 0..N-1. Logical block L
// lives in stripe row L/(m-1) at in-row position L%(m-1); each row has one
// parity block on the disk chosen by the layout's rotation.
package raid5

import (
	"errors"
	"fmt"

	"code56/internal/bufpool"
	"code56/internal/telemetry"
	"code56/internal/vdisk"
	"code56/internal/xorblk"
)

// Layout selects the parity rotation and data placement convention
// (following the Linux md naming).
type Layout int

const (
	// LeftAsymmetric: parity rotates from the last disk leftward; data
	// fills left-to-right skipping the parity disk. The paper's default.
	LeftAsymmetric Layout = iota
	// LeftSymmetric: parity as LeftAsymmetric; data starts just after the
	// parity disk and wraps (the Linux md default).
	LeftSymmetric
	// RightAsymmetric: parity rotates from the first disk rightward; data
	// fills left-to-right skipping the parity disk.
	RightAsymmetric
	// RightSymmetric: parity as RightAsymmetric; data starts just after
	// the parity disk and wraps.
	RightSymmetric
)

// String returns the md-style layout name.
func (l Layout) String() string {
	switch l {
	case LeftAsymmetric:
		return "left-asymmetric"
	case LeftSymmetric:
		return "left-symmetric"
	case RightAsymmetric:
		return "right-asymmetric"
	case RightSymmetric:
		return "right-symmetric"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ErrDoubleFailure is returned when an operation cannot complete because
// more than one disk has failed — the exact scenario RAID-5 cannot survive
// and the paper's motivation for migrating to RAID-6.
var ErrDoubleFailure = errors.New("raid5: more than one failed disk")

// tel holds the array's bound telemetry instruments (see README
// "Telemetry" for the metric reference).
type tel struct {
	tr            *telemetry.Tracer
	blockReads    *telemetry.Counter // ReadBlock calls served
	blockWrites   *telemetry.Counter // WriteBlock calls served
	degradedReads *telemetry.Counter // reads answered by reconstruction
	parityUpdates *telemetry.Counter // parity blocks written
	xors          *telemetry.Counter // block XOR operations
	rebuilt       *telemetry.Counter // blocks rebuilt onto replaced disks
}

func bindTel(reg *telemetry.Registry, tr *telemetry.Tracer) tel {
	return tel{
		tr:            tr,
		blockReads:    reg.Counter("raid5.block_reads"),
		blockWrites:   reg.Counter("raid5.block_writes"),
		degradedReads: reg.Counter("raid5.degraded_reads"),
		parityUpdates: reg.Counter("raid5.parity_updates"),
		xors:          reg.Counter("raid5.xors"),
		rebuilt:       reg.Counter("raid5.blocks_rebuilt"),
	}
}

// Array is a RAID-5 array of m >= 3 disks.
type Array struct {
	disks     *vdisk.Array
	m         int
	layout    Layout
	blockSize int
	tel       tel
}

// New creates a RAID-5 array over m fresh disks.
func New(m, blockSize int, layout Layout) (*Array, error) {
	if m < 3 {
		return nil, fmt.Errorf("raid5: need at least 3 disks, got %d", m)
	}
	return &Array{disks: vdisk.NewArray(m, blockSize), m: m, layout: layout, blockSize: blockSize, tel: bindTel(nil, nil)}, nil
}

// SetTelemetry rebinds the array's counters and tracer (and those of the
// underlying disks). Pass nil for either argument to use the process-wide
// defaults.
func (a *Array) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	a.tel = bindTel(reg, tr)
	a.disks.SetTelemetry(reg, tr)
}

// Wrap builds a RAID-5 view over existing disks (e.g. restored from a
// snapshot). The first m disks serve the RAID-5; extra disks — such as a
// partially filled diagonal-parity disk from an interrupted migration —
// are left untouched by RAID-5 operations.
func Wrap(disks *vdisk.Array, m int, layout Layout) (*Array, error) {
	if m < 3 {
		return nil, fmt.Errorf("raid5: need at least 3 disks, got %d", m)
	}
	if disks.Len() < m {
		return nil, fmt.Errorf("raid5: %d disks present, need at least %d", disks.Len(), m)
	}
	return &Array{disks: disks, m: m, layout: layout, blockSize: disks.BlockSize(), tel: bindTel(nil, nil)}, nil
}

// Disks exposes the underlying disk array (the migration engine attaches new
// disks through it).
func (a *Array) Disks() *vdisk.Array { return a.disks }

// M returns the number of disks.
func (a *Array) M() int { return a.m }

// Layout returns the parity placement convention.
func (a *Array) Layout() Layout { return a.layout }

// BlockSize returns the block size in bytes.
func (a *Array) BlockSize() int { return a.blockSize }

// ParityDisk returns the disk holding row's parity block.
func (a *Array) ParityDisk(row int64) int {
	r := int(row % int64(a.m))
	switch a.layout {
	case LeftAsymmetric, LeftSymmetric:
		return a.m - 1 - r
	default:
		return r
	}
}

// DataDisk returns the disk holding in-row data position k (0 <= k < m-1)
// of the given row.
func (a *Array) DataDisk(row int64, k int) int {
	pd := a.ParityDisk(row)
	switch a.layout {
	case LeftSymmetric, RightSymmetric:
		return (pd + 1 + k) % a.m
	default:
		if k < pd {
			return k
		}
		return k + 1
	}
}

// Locate maps a logical data block to its (row, disk) location.
func (a *Array) Locate(logical int64) (row int64, disk int) {
	row = logical / int64(a.m-1)
	k := int(logical % int64(a.m-1))
	return row, a.DataDisk(row, k)
}

// failedDisks returns the indices of failed disks.
func (a *Array) failedDisks() []int {
	var f []int
	for i := 0; i < a.m; i++ {
		if a.disks.Disk(i).Failed() {
			f = append(f, i)
		}
	}
	return f
}

// ReadBlock reads logical data block L, reconstructing from parity if the
// holding disk has failed or the block is unreadable (degraded read).
func (a *Array) ReadBlock(logical int64, buf []byte) error {
	a.tel.blockReads.Inc()
	row, disk := a.Locate(logical)
	err := a.disks.Disk(disk).Read(row, buf)
	if err == nil {
		return nil
	}
	if !isDegradable(err) {
		return err
	}
	a.tel.degradedReads.Inc()
	return a.reconstructInto(row, disk, buf)
}

// isDegradable reports whether a read error can be served by
// reconstruction: fail-stopped disks, latent sector errors, and transient
// faults that survived the disk's retry policy.
func isDegradable(err error) bool {
	return errors.Is(err, vdisk.ErrFailed) || errors.Is(err, vdisk.ErrLatent) ||
		errors.Is(err, vdisk.ErrTransient)
}

// ReconstructBlock rebuilds the physical block at (row, disk) — data or
// parity — from the other columns of the row into buf: a degraded read of
// an arbitrary cell. The online migrator uses it to survive latent errors
// in stripes it is converting.
func (a *Array) ReconstructBlock(row int64, disk int, buf []byte) error {
	if disk < 0 || disk >= a.m {
		return fmt.Errorf("raid5: disk %d outside 0..%d", disk, a.m-1)
	}
	if len(buf) != a.blockSize {
		return fmt.Errorf("raid5: reconstruct into %d bytes, want %d", len(buf), a.blockSize)
	}
	a.tel.degradedReads.Inc()
	return a.reconstructInto(row, disk, buf)
}

// reconstructInto rebuilds (row, disk) from all other disks into buf.
func (a *Array) reconstructInto(row int64, disk int, buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	tmp := bufpool.Get(a.blockSize)
	defer bufpool.Put(tmp)
	for i := 0; i < a.m; i++ {
		if i == disk {
			continue
		}
		if err := a.disks.Disk(i).Read(row, tmp); err != nil {
			if errors.Is(err, vdisk.ErrFailed) {
				return fmt.Errorf("%w: disks %d and %d", ErrDoubleFailure, disk, i)
			}
			// A latent or transient error on a peer is a second fault in
			// this row — beyond single-parity tolerance.
			return fmt.Errorf("raid5: reconstructing (row %d, disk %d) needs disk %d: %w", row, disk, i, err)
		}
		xorblk.Xor(buf, tmp)
		a.tel.xors.Inc()
	}
	return nil
}

// WriteBlock writes logical data block L using read-modify-write: the
// parity is updated with the XOR delta of old and new data. Degraded
// states (one failed disk) are handled by reconstruct-write.
func (a *Array) WriteBlock(logical int64, data []byte) error {
	if len(data) != a.blockSize {
		return fmt.Errorf("raid5: write of %d bytes, want %d", len(data), a.blockSize)
	}
	a.tel.blockWrites.Inc()
	row, disk := a.Locate(logical)
	pd := a.ParityDisk(row)

	dataDisk := a.disks.Disk(disk)
	parityDisk := a.disks.Disk(pd)

	switch {
	case !dataDisk.Failed() && !parityDisk.Failed():
		old := bufpool.Get(a.blockSize)
		defer bufpool.Put(old)
		if err := dataDisk.Read(row, old); err != nil {
			if !isDegradable(err) {
				return err
			}
			// The old data is unreadable (latent/transient): fall back to
			// reconstruct-write, which never needs it. Writing the new
			// data clears any latent error on the block.
			return a.reconstructWrite(row, disk, pd, data, true)
		}
		parity := bufpool.Get(a.blockSize)
		defer bufpool.Put(parity)
		if err := parityDisk.Read(row, parity); err != nil {
			if !isDegradable(err) {
				return err
			}
			// The old parity is unreadable: recompute it from scratch.
			return a.reconstructWrite(row, disk, pd, data, true)
		}
		// parity ^= old ^ new
		xorblk.Xor(parity, old)
		xorblk.Xor(parity, data)
		a.tel.xors.Add(2)
		if err := dataDisk.Write(row, data); err != nil {
			return err
		}
		a.tel.parityUpdates.Inc()
		return parityDisk.Write(row, parity)

	case dataDisk.Failed():
		return a.reconstructWrite(row, disk, pd, data, false)

	default:
		// Parity disk failed: just write the data; parity is lost until
		// rebuild.
		return dataDisk.Write(row, data)
	}
}

// reconstructWrite writes logical data by full-row reconstruction: the new
// parity is the XOR of the new data and the row's other data blocks, so
// neither the old data nor the old parity is read. writeData is false when
// the data disk itself is failed (only the parity is written; the data is
// restored at rebuild time).
func (a *Array) reconstructWrite(row int64, disk, pd int, data []byte, writeData bool) error {
	parity := bufpool.Get(a.blockSize)
	defer bufpool.Put(parity)
	copy(parity, data)
	tmp := bufpool.Get(a.blockSize)
	defer bufpool.Put(tmp)
	for i := 0; i < a.m; i++ {
		if i == disk || i == pd {
			continue
		}
		if err := a.disks.Disk(i).Read(row, tmp); err != nil {
			if errors.Is(err, vdisk.ErrFailed) {
				return fmt.Errorf("%w: disks %d and %d", ErrDoubleFailure, disk, i)
			}
			return fmt.Errorf("raid5: reconstruct-write (row %d, disk %d) needs disk %d: %w", row, disk, i, err)
		}
		xorblk.Xor(parity, tmp)
		a.tel.xors.Inc()
	}
	if writeData {
		if err := a.disks.Disk(disk).Write(row, data); err != nil {
			return err
		}
	}
	a.tel.parityUpdates.Inc()
	return a.disks.Disk(pd).Write(row, parity)
}

// WriteParity recomputes and writes the parity of a row from its data
// blocks (full-stripe parity generation).
func (a *Array) WriteParity(row int64) error {
	pd := a.ParityDisk(row)
	parity := bufpool.GetZero(a.blockSize)
	defer bufpool.Put(parity)
	tmp := bufpool.Get(a.blockSize)
	defer bufpool.Put(tmp)
	for i := 0; i < a.m; i++ {
		if i == pd {
			continue
		}
		if err := a.disks.Disk(i).Read(row, tmp); err != nil {
			return err
		}
		xorblk.Xor(parity, tmp)
		a.tel.xors.Inc()
	}
	a.tel.parityUpdates.Inc()
	return a.disks.Disk(pd).Write(row, parity)
}

// Rebuild reconstructs every row of a replaced disk from the surviving
// disks. Call vdisk.Disk.Replace on the failed disk first. rows is the
// number of stripe rows to rebuild.
func (a *Array) Rebuild(disk int, rows int64) error {
	if len(a.failedDisks()) > 0 {
		return fmt.Errorf("%w: cannot rebuild with failed disks present", ErrDoubleFailure)
	}
	sp := a.tel.tr.StartSpan("raid5.rebuild", telemetry.A("disk", disk), telemetry.A("rows", rows))
	buf := bufpool.Get(a.blockSize)
	defer bufpool.Put(buf)
	for row := int64(0); row < rows; row++ {
		if err := a.reconstructInto(row, disk, buf); err != nil {
			sp.End(telemetry.A("error", err.Error()))
			return err
		}
		if err := a.disks.Disk(disk).Write(row, buf); err != nil {
			sp.End(telemetry.A("error", err.Error()))
			return err
		}
		a.tel.rebuilt.Inc()
	}
	sp.End(telemetry.A("blocks", rows))
	return nil
}

// VerifyRow checks that the row's parity equals the XOR of its data blocks.
func (a *Array) VerifyRow(row int64) (bool, error) {
	acc := bufpool.GetZero(a.blockSize)
	defer bufpool.Put(acc)
	tmp := bufpool.Get(a.blockSize)
	defer bufpool.Put(tmp)
	for i := 0; i < a.m; i++ {
		if err := a.disks.Disk(i).Read(row, tmp); err != nil {
			return false, err
		}
		xorblk.Xor(acc, tmp)
	}
	return xorblk.IsZero(acc), nil
}
