// Package durable defines the on-disk identity of a file-backed array
// directory: a meta.json describing what the images are (kind, geometry,
// layout), written atomically (temp file + fsync + rename + directory
// fsync) so a crash leaves either the old manifest or the new one, never
// a mix. The migration intent log (wal.log) lives beside it; together
// they make an array directory self-describing — reopen needs no
// out-of-band knowledge.
package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"code56/internal/raid5"
	"code56/internal/superblock"
	"code56/internal/vdisk/filestore"
)

// MetaVersion is the current meta.json format version.
const MetaVersion = 1

// File names inside an array directory, beside the disk-NNNN.img files.
const (
	MetaFile = "meta.json"
	WALFile  = "wal.log"
)

// Array kinds.
const (
	KindRAID5 = "raid5"
	KindRAID6 = "raid6"
)

// ErrBadMeta is returned for malformed or unsupported metadata.
var ErrBadMeta = errors.New("durable: bad metadata")

// ErrNoMeta is returned when the directory has no meta.json at all.
var ErrNoMeta = errors.New("durable: no metadata")

// Meta is a directory's identity record. For a RAID-5 it carries the
// layout and the data-row count; for a RAID-6 it embeds the superblock
// manifest (code name, prime, rotation). The migration's meta flip —
// the single atomic step that turns a RAID-5 directory into a RAID-6
// one — replaces a KindRAID5 Meta with a KindRAID6 one.
type Meta struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind"`
	BlockSize int    `json:"block_size"`
	// Disks is the image-file count the directory should hold (data +
	// parity; for a mid-migration RAID-5 the extra diagonal disk is on
	// media but not yet counted here).
	Disks int `json:"disks"`
	// Layout is the RAID-5 parity rotation (md-style name); empty for
	// RAID-6.
	Layout string `json:"layout,omitempty"`
	// Rows is the RAID-5 data-row count — what a migration will convert.
	Rows int64 `json:"rows,omitempty"`
	// Manifest is the RAID-6 identity (code, prime, stripes, rotation).
	Manifest *superblock.Manifest `json:"manifest,omitempty"`
}

// ParseLayout maps an md-style layout name back to the raid5 constant.
func ParseLayout(name string) (raid5.Layout, error) {
	for _, l := range []raid5.Layout{
		raid5.LeftAsymmetric, raid5.LeftSymmetric,
		raid5.RightAsymmetric, raid5.RightSymmetric,
	} {
		if l.String() == name {
			return l, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown layout %q", ErrBadMeta, name)
}

// Validate checks internal consistency.
func (m Meta) Validate() error {
	if m.Version != MetaVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadMeta, m.Version)
	}
	if m.BlockSize <= 0 {
		return fmt.Errorf("%w: block size %d", ErrBadMeta, m.BlockSize)
	}
	if m.Disks <= 0 {
		return fmt.Errorf("%w: disk count %d", ErrBadMeta, m.Disks)
	}
	switch m.Kind {
	case KindRAID5:
		if _, err := ParseLayout(m.Layout); err != nil {
			return err
		}
		if m.Rows < 0 {
			return fmt.Errorf("%w: negative rows", ErrBadMeta)
		}
	case KindRAID6:
		if m.Manifest == nil {
			return fmt.Errorf("%w: raid6 meta without manifest", ErrBadMeta)
		}
		if err := m.Manifest.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadMeta, err)
		}
		if m.Manifest.BlockSize != m.BlockSize {
			return fmt.Errorf("%w: manifest block size %d vs meta %d",
				ErrBadMeta, m.Manifest.BlockSize, m.BlockSize)
		}
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadMeta, m.Kind)
	}
	return nil
}

// Save writes meta.json atomically: marshal to a temp file in the same
// directory, fsync it, rename over the target, fsync the directory. A
// crash at any point leaves either the previous meta.json or the new
// one — the rename is the commit point.
func Save(dir string, m Meta) error {
	if err := m.Validate(); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, MetaFile+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once the rename lands
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, MetaFile)); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return filestore.SyncDir(dir)
}

// Load reads and validates the directory's meta.json. A missing file is
// ErrNoMeta (distinguishable from a corrupt one, which is ErrBadMeta).
func Load(dir string) (Meta, error) {
	blob, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Meta{}, fmt.Errorf("%w: %s", ErrNoMeta, dir)
		}
		return Meta{}, fmt.Errorf("durable: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(blob, &m); err != nil {
		return Meta{}, fmt.Errorf("%w: %v", ErrBadMeta, err)
	}
	if err := m.Validate(); err != nil {
		return Meta{}, err
	}
	return m, nil
}

// WALPath returns the directory's intent-log path.
func WALPath(dir string) string { return filepath.Join(dir, WALFile) }
