package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"code56/internal/raid5"
	"code56/internal/superblock"
)

func raid5Meta() Meta {
	return Meta{
		Version:   MetaVersion,
		Kind:      KindRAID5,
		BlockSize: 4096,
		Disks:     4,
		Layout:    raid5.LeftAsymmetric.String(),
		Rows:      16,
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	want := raid5Meta()
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("roundtrip: %+v != %+v", got, want)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("leftover files: %v", entries)
	}
}

func TestSaveIsAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, raid5Meta()); err != nil {
		t.Fatal(err)
	}
	// The migration's meta flip: RAID-5 → RAID-6 in one rename.
	flip := Meta{
		Version:   MetaVersion,
		Kind:      KindRAID6,
		BlockSize: 4096,
		Disks:     5,
		Manifest: &superblock.Manifest{
			Version:   superblock.ManifestVersion,
			CodeName:  "code56",
			P:         5,
			BlockSize: 4096,
			Stripes:   4,
		},
	}
	if err := Save(dir, flip); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindRAID6 || got.Manifest == nil || got.Manifest.CodeName != "code56" {
		t.Fatalf("flip: %+v", got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); !errors.Is(err, ErrNoMeta) {
		t.Fatalf("missing meta: %v", err)
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, MetaFile), []byte("{not json"), 0o644)
	if _, err := Load(dir); !errors.Is(err, ErrBadMeta) {
		t.Fatalf("corrupt meta: %v", err)
	}
	os.WriteFile(filepath.Join(dir, MetaFile), []byte(`{"version":1,"kind":"zfs","block_size":512,"disks":3}`), 0o644)
	if _, err := Load(dir); !errors.Is(err, ErrBadMeta) {
		t.Fatalf("unknown kind: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []func(*Meta){
		func(m *Meta) { m.Version = 99 },
		func(m *Meta) { m.BlockSize = 0 },
		func(m *Meta) { m.Disks = 0 },
		func(m *Meta) { m.Layout = "diagonal" },
		func(m *Meta) { m.Rows = -1 },
		func(m *Meta) { m.Kind = KindRAID6 }, // raid6 without manifest
	}
	for i, mut := range cases {
		m := raid5Meta()
		mut(&m)
		if err := m.Validate(); !errors.Is(err, ErrBadMeta) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	// Manifest/meta block-size mismatch.
	m := Meta{
		Version: MetaVersion, Kind: KindRAID6, BlockSize: 4096, Disks: 5,
		Manifest: &superblock.Manifest{
			Version: superblock.ManifestVersion, CodeName: "code56",
			P: 5, BlockSize: 512, Stripes: 1,
		},
	}
	if err := m.Validate(); !errors.Is(err, ErrBadMeta) {
		t.Errorf("block-size mismatch: %v", err)
	}
}

func TestParseLayoutRoundtrip(t *testing.T) {
	for _, l := range []raid5.Layout{
		raid5.LeftAsymmetric, raid5.LeftSymmetric,
		raid5.RightAsymmetric, raid5.RightSymmetric,
	} {
		got, err := ParseLayout(l.String())
		if err != nil || got != l {
			t.Errorf("%v: got %v err %v", l, got, err)
		}
	}
}
