package core

import (
	"fmt"
	"sync"

	"code56/internal/layout"
)

// logicalCol maps a physical column back to the Left-layout logical column
// the reconstruction math operates in. It is its own inverse composed with
// col().
func (c *Code56) logicalCol(physical int) int {
	if c.orient == Right && physical < c.p-1 {
		return c.p - 2 - physical
	}
	return physical
}

// hChain returns the horizontal parity chain of row i.
func (c *Code56) hChain(i int) layout.Chain { return c.chains[i] }

// dChain returns the diagonal parity chain with parity element C[i][p-1].
func (c *Code56) dChain(i int) layout.Chain { return c.chains[c.p-1+i] }

// RecoverSingle reconstructs one failed column in place using the plain
// (non-hybrid) strategy: horizontal chains if a data/horizontal column
// failed, re-encoding of the diagonal chains if the diagonal parity column
// failed. It returns decode statistics. The failed column's blocks are
// assumed zeroed/garbage and are fully rewritten.
func (c *Code56) RecoverSingle(s *layout.Stripe, failed int) (layout.DecodeStats, error) {
	p := c.p
	if failed < 0 || failed >= p {
		return layout.DecodeStats{}, fmt.Errorf("core: column %d out of range [0,%d)", failed, p)
	}
	var st layout.DecodeStats
	read := make(map[layout.Coord]bool)
	if failed == p-1 {
		for i := 0; i < p-1; i++ {
			layout.SolveChainTracked(s, c.dChain(i), layout.Coord{Row: i, Col: p - 1}, read, &st)
		}
	} else {
		for i := 0; i < p-1; i++ {
			layout.SolveChainTracked(s, c.hChain(i), layout.Coord{Row: i, Col: failed}, read, &st)
		}
	}
	st.BlocksRead = len(read)
	return st, nil
}

// ReconstructDouble implements the paper's Algorithm 1: reconstruction of
// any two concurrently failed columns. Columns are physical indices; their
// blocks are assumed lost and are fully rewritten in place.
func (c *Code56) ReconstructDouble(s *layout.Stripe, colA, colB int) (layout.DecodeStats, error) {
	return c.reconstructDouble(s, colA, colB, false)
}

// ReconstructDoubleParallel is ReconstructDouble with the two recovery
// chains of Case II executed concurrently, as Algorithm 1's "two cases
// start synchronously" suggests. The chains touch disjoint cells, so no
// synchronization beyond completion is needed.
func (c *Code56) ReconstructDoubleParallel(s *layout.Stripe, colA, colB int) (layout.DecodeStats, error) {
	return c.reconstructDouble(s, colA, colB, true)
}

func (c *Code56) reconstructDouble(s *layout.Stripe, colA, colB int, parallel bool) (layout.DecodeStats, error) {
	p := c.p
	if colA == colB {
		return layout.DecodeStats{}, fmt.Errorf("core: identical failed columns %d", colA)
	}
	for _, col := range []int{colA, colB} {
		if col < 0 || col >= p {
			return layout.DecodeStats{}, fmt.Errorf("core: column %d out of range [0,%d)", col, p)
		}
	}
	// Work in logical columns; sort so f1 < f2.
	f1, f2 := c.logicalCol(colA), c.logicalCol(colB)
	if f1 > f2 {
		f1, f2 = f2, f1
	}

	var st layout.DecodeStats
	read := make(map[layout.Coord]bool)

	// Case I: the diagonal parity column is among the failures.
	if f2 == p-1 {
		// Step 2-IA: every row has exactly one missing element in column
		// f1 (data or the row's horizontal parity); its horizontal chain
		// recovers it.
		for i := 0; i < p-1; i++ {
			layout.SolveChainTracked(s, c.hChain(i), layout.Coord{Row: i, Col: c.col(f1)}, read, &st)
		}
		// Step 2-IB: re-encode the diagonal parity column.
		for i := 0; i < p-1; i++ {
			layout.SolveChainTracked(s, c.dChain(i), layout.Coord{Row: i, Col: p - 1}, read, &st)
		}
		st.BlocksRead = len(read)
		return st, nil
	}

	// Case II: two data/horizontal columns failed; diagonal parity column
	// intact. Two independent recovery chains (paper Fig. 5).
	if parallel {
		var wg sync.WaitGroup
		var stA, stB layout.DecodeStats
		readA := make(map[layout.Coord]bool)
		readB := make(map[layout.Coord]bool)
		wg.Add(2)
		go func() { defer wg.Done(); c.recoveryChainA(s, f1, f2, readA, &stA) }()
		go func() { defer wg.Done(); c.recoveryChainB(s, f1, f2, readB, &stB) }()
		wg.Wait()
		st.XORs = stA.XORs + stB.XORs
		st.Recovered = stA.Recovered + stB.Recovered
		for co := range readA {
			read[co] = true
		}
		for co := range readB {
			read[co] = true
		}
	} else {
		c.recoveryChainA(s, f1, f2, read, &st)
		c.recoveryChainB(s, f1, f2, read, &st)
	}
	st.BlocksRead = len(read)
	return st, nil
}

// recoveryChainA runs the first recovery chain of Algorithm 1 Case II:
// starting point C[f2-f1-1][f1] (recovered by its diagonal chain), then
// alternating horizontal solves in column f2 and diagonal solves in column
// f1 until the endpoint C[p-2-f2][f2] (a horizontal parity element).
// Columns are logical.
func (c *Code56) recoveryChainA(s *layout.Stripe, f1, f2 int, read map[layout.Coord]bool, st *layout.DecodeStats) {
	p := c.p
	r := f2 - f1 - 1
	// Starting point: C[f2-f1-1][f1] is the only lost member of diagonal
	// chain f2 (that chain skips logical column f2 entirely).
	layout.SolveChainTracked(s, c.dChain(f2), layout.Coord{Row: r, Col: c.col(f1)}, read, st)
	for {
		// Horizontal solve: row r's element in column f2 (the endpoint
		// iteration recovers the horizontal parity of row p-2-f2 itself).
		layout.SolveChainTracked(s, c.hChain(r), layout.Coord{Row: r, Col: c.col(f2)}, read, st)
		if r == p-2-f2 {
			return
		}
		// Diagonal solve: the next lost element of column f1 shares the
		// diagonal chain i = <r+f2+1>_p with the element just recovered;
		// within chain i, column f1's member sits at row <i-f1-1>_p.
		r = ((r+f2-f1)%p + p) % p
		layout.SolveChainTracked(s, c.dChain((r+f1+1)%p), layout.Coord{Row: r, Col: c.col(f1)}, read, st)
	}
}

// recoveryChainB runs the second recovery chain: starting point
// C[p-1-f2+f1][f2] (recovered by diagonal chain f1), then alternating
// horizontal solves in column f1 and diagonal solves in column f2 until the
// endpoint C[p-2-f1][f1].
func (c *Code56) recoveryChainB(s *layout.Stripe, f1, f2 int, read map[layout.Coord]bool, st *layout.DecodeStats) {
	p := c.p
	r := p - 1 - f2 + f1
	layout.SolveChainTracked(s, c.dChain(f1), layout.Coord{Row: r, Col: c.col(f2)}, read, st)
	for {
		layout.SolveChainTracked(s, c.hChain(r), layout.Coord{Row: r, Col: c.col(f1)}, read, st)
		if r == p-2-f1 {
			return
		}
		r = ((r+f1-f2)%p + p) % p
		layout.SolveChainTracked(s, c.dChain((r+f2+1)%p), layout.Coord{Row: r, Col: c.col(f2)}, read, st)
	}
}
