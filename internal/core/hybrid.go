package core

import (
	"fmt"
	"math"

	"code56/internal/layout"
)

// RecoveryPlan describes how a single failed data/horizontal column will be
// rebuilt: for each lost row, whether the horizontal or the diagonal chain
// recovers it. The paper's §III-E-4 hybrid recovery (after Xiang et al.,
// SIGMETRICS'10) picks the mix minimizing the number of distinct blocks
// read; shared reads between chains are counted once.
type RecoveryPlan struct {
	// Failed is the physical failed column.
	Failed int
	// UseDiagonal[i] reports whether the lost element in row i is
	// recovered through its diagonal chain (false = horizontal chain).
	// The row holding the column's horizontal parity is always false:
	// a parity element belongs to no diagonal chain.
	UseDiagonal []bool
	// Reads is the number of distinct surviving blocks the plan reads.
	Reads int
}

// ConventionalReads returns the read cost of the naive single-disk rebuild
// (every element via its horizontal chain): (p-1)*(p-2) distinct blocks.
func (c *Code56) ConventionalReads() int { return (c.p - 1) * (c.p - 2) }

// exhaustiveLimit bounds the brute-force search: 2^(p-2) subsets are
// enumerated for p-2 <= exhaustiveLimit.
const exhaustiveLimit = 16

// PlanHybridRecovery computes a read-minimizing recovery plan for a single
// failed column holding data (any physical column except the diagonal
// parity column p-1). For p-2 <= 16 the optimum is found by exhaustive
// search over chain choices; beyond that a balanced alternating heuristic
// (the shape Xiang et al. prove optimal for RDP) is used.
func (c *Code56) PlanHybridRecovery(failed int) (RecoveryPlan, error) {
	p := c.p
	if failed < 0 || failed >= p-1 {
		return RecoveryPlan{}, fmt.Errorf("core: hybrid recovery needs a data/horizontal column, got %d", failed)
	}
	f := c.logicalCol(failed)
	parityRow := p - 2 - f // the row whose horizontal parity lives in the failed column

	// readSet returns the distinct surviving blocks read for a choice
	// vector over rows (excluding parityRow, which is always horizontal).
	evaluate := func(useDiag func(row int) bool) (int, []bool) {
		read := make(map[layout.Coord]bool)
		use := make([]bool, p-1)
		for i := 0; i < p-1; i++ {
			var ch layout.Chain
			if i != parityRow && useDiag(i) {
				use[i] = true
				ch = c.dChain(c.DiagonalChainOf(i, c.col(f)))
			} else {
				ch = c.hChain(i)
			}
			missing := layout.Coord{Row: i, Col: c.col(f)}
			for _, m := range ch.Members() {
				if m != missing {
					read[m] = true
				}
			}
		}
		return len(read), use
	}

	if p-2 <= exhaustiveLimit {
		best := math.MaxInt
		var bestUse []bool
		for mask := 0; mask < 1<<(p-1); mask++ {
			if mask&(1<<parityRow) != 0 {
				continue
			}
			n, use := evaluate(func(row int) bool { return mask&(1<<row) != 0 })
			if n < best {
				best, bestUse = n, use
			}
		}
		return RecoveryPlan{Failed: failed, UseDiagonal: bestUse, Reads: best}, nil
	}

	// Heuristic: recover the first half of the rows diagonally, the rest
	// horizontally, maximizing row-overlap between the two chain families.
	n, use := evaluate(func(row int) bool { return row < (p-1)/2 })
	return RecoveryPlan{Failed: failed, UseDiagonal: use, Reads: n}, nil
}

// ExecuteRecoveryPlan rebuilds the failed column in place per the plan and
// returns decode statistics; st.BlocksRead equals plan.Reads.
func (c *Code56) ExecuteRecoveryPlan(s *layout.Stripe, plan RecoveryPlan) (layout.DecodeStats, error) {
	p := c.p
	if plan.Failed < 0 || plan.Failed >= p-1 || len(plan.UseDiagonal) != p-1 {
		return layout.DecodeStats{}, fmt.Errorf("core: malformed recovery plan")
	}
	f := c.logicalCol(plan.Failed)
	var st layout.DecodeStats
	read := make(map[layout.Coord]bool)
	for i := 0; i < p-1; i++ {
		missing := layout.Coord{Row: i, Col: c.col(f)}
		var ch layout.Chain
		if plan.UseDiagonal[i] {
			ch = c.dChain(c.DiagonalChainOf(i, c.col(f)))
		} else {
			ch = c.hChain(i)
		}
		layout.SolveChainTracked(s, ch, missing, read, &st)
	}
	st.BlocksRead = len(read)
	return st, nil
}
