// Package core implements Code 5-6, the MDS RAID-6 array code proposed by
// Wu, He, Li and Guo (ICPP 2015) to accelerate online RAID-5 → RAID-6
// migration.
//
// A Code 5-6 stripe is a (p-1)-row × p-column matrix, p prime. The last
// column holds diagonal parities; inside the remaining (p-1)×(p-1) square
// the horizontal parities sit on the anti-diagonal — exactly where a
// left-asymmetric RAID-5 of p-1 disks keeps its parity. Migration to RAID-6
// therefore adds one disk and computes only the diagonal column.
//
// Encoding equations (paper Eq. 1 and 2; rows and columns are 0-indexed):
//
//	horizontal: C[i][p-2-i] = XOR_{j != p-2-i} C[i][j]          (j in 0..p-2)
//	diagonal:   C[i][p-1]   = XOR_{j != i} C[(i-j-1) mod p][j]  (j in 0..p-2)
//
// The exclusion j == i in the diagonal equation is exactly the term whose
// row index would be p-1, a row that does not exist; and the diagonal chains
// by construction never contain a horizontal parity cell (the row index
// (i-j-1) mod p equals the anti-diagonal row p-2-j only when i = p-1).
// Consequently every data element belongs to exactly one horizontal and one
// diagonal chain — the optimal update complexity property of §III-E.
package core

import (
	"fmt"

	"code56/internal/layout"
)

// Orientation selects which RAID-5 parity placement the horizontal parities
// mirror (paper Fig. 7 extends Code 5-6 to right-symmetric/asymmetric
// RAID-5 layouts).
type Orientation int

const (
	// Left mirrors left-symmetric/asymmetric RAID-5: the horizontal
	// parity of row i sits at column p-2-i (anti-diagonal).
	Left Orientation = iota
	// Right mirrors right-symmetric/asymmetric RAID-5: the horizontal
	// parity of row i sits at column i (main diagonal); the diagonal
	// chains are the column-mirrored image of the Left layout.
	Right
)

// Code56 is Code 5-6 for p disks. It implements layout.Code. The zero value
// is not usable; construct with New or NewOriented.
type Code56 struct {
	p      int
	orient Orientation
	chains []layout.Chain
}

// New returns Code 5-6 for p disks with the default (left) orientation.
// p must be prime and at least 3.
func New(p int) (*Code56, error) { return NewOriented(p, Left) }

// NewOriented returns Code 5-6 for p disks with the given orientation.
func NewOriented(p int, o Orientation) (*Code56, error) {
	if !layout.IsPrime(p) || p < 3 {
		return nil, fmt.Errorf("core: p = %d must be a prime >= 3", p)
	}
	c := &Code56{p: p, orient: o}
	c.chains = c.buildChains()
	return c, nil
}

// MustNew is New but panics on error; intended for tests and examples with
// constant p.
func MustNew(p int) *Code56 {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the prime parameter (= number of disks).
func (c *Code56) P() int { return c.p }

// Orientation returns the layout orientation.
func (c *Code56) Orientation() Orientation { return c.orient }

// Name implements layout.Code.
func (c *Code56) Name() string {
	if c.orient == Right {
		return "code56r"
	}
	return "code56"
}

// Geometry implements layout.Code: (p-1) rows × p columns.
func (c *Code56) Geometry() layout.Geometry {
	return layout.Geometry{Rows: c.p - 1, Cols: c.p, P: c.p}
}

// FaultTolerance implements layout.Code.
func (c *Code56) FaultTolerance() int { return 2 }

// col maps a logical (Left-layout) column index in 0..p-2 to the physical
// column for the configured orientation. The diagonal parity column p-1 is
// fixed under both orientations.
func (c *Code56) col(j int) int {
	if c.orient == Right && j < c.p-1 {
		return c.p - 2 - j
	}
	return j
}

// HParityCol returns the physical column holding the horizontal parity of
// row i.
func (c *Code56) HParityCol(i int) int { return c.col(c.p - 2 - i) }

// Kind implements layout.Code.
func (c *Code56) Kind(row, col int) layout.Kind {
	p := c.p
	if col == p-1 {
		return layout.ParityD
	}
	if col == c.HParityCol(row) {
		return layout.ParityH
	}
	return layout.Data
}

// DiagonalChainOf returns the index i of the diagonal chain (i.e. the row of
// the diagonal parity element C[i][p-1]) covering the data element at
// (row, col). It panics if the cell is not a data element.
func (c *Code56) DiagonalChainOf(row, col int) int {
	if c.Kind(row, col) != layout.Data {
		panic(fmt.Sprintf("core: %v is not a data cell", layout.Coord{Row: row, Col: col}))
	}
	// Invert the physical column back to the logical Left-layout column.
	j := col
	if c.orient == Right {
		j = c.p - 2 - col
	}
	// row = (i - j - 1) mod p  =>  i = (row + j + 1) mod p.
	return (row + j + 1) % c.p
}

// buildChains constructs the p-1 horizontal and p-1 diagonal parity chains.
func (c *Code56) buildChains() []layout.Chain {
	p := c.p
	chains := make([]layout.Chain, 0, 2*(p-1))
	// Horizontal: row i, parity at logical column p-2-i.
	for i := 0; i < p-1; i++ {
		ch := layout.Chain{
			Kind:   layout.ParityH,
			Parity: layout.Coord{Row: i, Col: c.col(p - 2 - i)},
		}
		for j := 0; j < p-1; j++ {
			if j == p-2-i {
				continue
			}
			ch.Covers = append(ch.Covers, layout.Coord{Row: i, Col: c.col(j)})
		}
		chains = append(chains, ch)
	}
	// Diagonal: parity C[i][p-1] covers C[(i-j-1) mod p][j] for logical
	// j in 0..p-2, j != i.
	for i := 0; i < p-1; i++ {
		ch := layout.Chain{
			Kind:   layout.ParityD,
			Parity: layout.Coord{Row: i, Col: p - 1},
		}
		for j := 0; j < p-1; j++ {
			if j == i {
				continue
			}
			r := ((i-j-1)%p + p) % p
			ch.Covers = append(ch.Covers, layout.Coord{Row: r, Col: c.col(j)})
		}
		chains = append(chains, ch)
	}
	return chains
}

// Chains implements layout.Code.
func (c *Code56) Chains() []layout.Chain { return c.chains }

var _ layout.Code = (*Code56)(nil)
