package core

import (
	"math/rand"
	"testing"

	"code56/internal/layout"
)

var testPrimes = []int{3, 5, 7, 11, 13}

func TestNewRejectsNonPrimes(t *testing.T) {
	for _, p := range []int{-1, 0, 1, 2, 4, 6, 8, 9, 10, 12, 15} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) should fail", p)
		}
	}
}

func TestStructure(t *testing.T) {
	for _, p := range testPrimes {
		for _, o := range []Orientation{Left, Right} {
			c, err := NewOriented(p, o)
			if err != nil {
				t.Fatal(err)
			}
			if err := layout.ValidateStructure(c); err != nil {
				t.Errorf("p=%d orient=%d: %v", p, o, err)
			}
			g := c.Geometry()
			if g.Rows != p-1 || g.Cols != p {
				t.Errorf("p=%d: geometry %dx%d, want %dx%d", p, g.Rows, g.Cols, p-1, p)
			}
			if got := len(c.Chains()); got != 2*(p-1) {
				t.Errorf("p=%d: %d chains, want %d", p, got, 2*(p-1))
			}
			if got := len(layout.DataElements(c)); got != (p-1)*(p-2) {
				t.Errorf("p=%d: %d data elements, want %d", p, got, (p-1)*(p-2))
			}
		}
	}
}

// TestPaperExample verifies the worked example of the paper (p=5, i=1):
// C[1][4] = C[0][0] ^ C[3][2] ^ C[2][3].
func TestPaperExample(t *testing.T) {
	c := MustNew(5)
	ch := c.dChain(1)
	want := map[layout.Coord]bool{
		{Row: 0, Col: 0}: true,
		{Row: 3, Col: 2}: true,
		{Row: 2, Col: 3}: true,
	}
	if ch.Parity != (layout.Coord{Row: 1, Col: 4}) {
		t.Fatalf("diag chain 1 parity at %v, want (1,4)", ch.Parity)
	}
	if len(ch.Covers) != len(want) {
		t.Fatalf("diag chain 1 covers %v, want 3 elements", ch.Covers)
	}
	for _, m := range ch.Covers {
		if !want[m] {
			t.Errorf("unexpected member %v in diagonal chain 1", m)
		}
	}
}

// TestHorizontalParityPlacement checks that horizontal parities sit on the
// anti-diagonal (paper Fig. 4a): parity of row i at column p-2-i.
func TestHorizontalParityPlacement(t *testing.T) {
	for _, p := range testPrimes {
		c := MustNew(p)
		for i := 0; i < p-1; i++ {
			if got := c.HParityCol(i); got != p-2-i {
				t.Errorf("p=%d row %d: parity col %d, want %d", p, i, got, p-2-i)
			}
			if k := c.Kind(i, p-2-i); k != layout.ParityH {
				t.Errorf("p=%d: Kind(%d,%d)=%v, want ParityH", p, i, p-2-i, k)
			}
		}
	}
}

// TestUpdateComplexity asserts the optimal single-write property (§III-E-3):
// every data element belongs to exactly one horizontal and one diagonal
// chain.
func TestUpdateComplexity(t *testing.T) {
	for _, p := range testPrimes {
		for _, o := range []Orientation{Left, Right} {
			c, _ := NewOriented(p, o)
			for _, d := range layout.DataElements(c) {
				idx := layout.ChainsCovering(c, d)
				if len(idx) != 2 {
					t.Fatalf("p=%d %v: element %v in %d chains, want 2", p, o, d, len(idx))
				}
				kinds := map[layout.Kind]int{}
				for _, i := range idx {
					kinds[c.Chains()[i].Kind]++
				}
				if kinds[layout.ParityH] != 1 || kinds[layout.ParityD] != 1 {
					t.Fatalf("p=%d: element %v chains %v", p, d, kinds)
				}
			}
			// Parity elements belong to no chain's cover set.
			for _, pe := range layout.ParityElements(c) {
				if n := len(layout.ChainsCovering(c, pe)); n != 0 {
					t.Fatalf("p=%d: parity %v covered by %d chains, want 0", p, pe, n)
				}
			}
		}
	}
}

// TestEncodeXORCount asserts the optimal encoding complexity of §III-E-2:
// 2(p-1)(p-3) XORs per stripe.
func TestEncodeXORCount(t *testing.T) {
	for _, p := range testPrimes {
		c := MustNew(p)
		s := layout.NewStripe(c.Geometry(), 8)
		s.FillRandom(c, rand.New(rand.NewSource(9)))
		got := layout.Encode(c, s)
		want := 2 * (p - 1) * (p - 3)
		if got != want {
			t.Errorf("p=%d: encode used %d XORs, want %d", p, got, want)
		}
	}
}

func TestMDS(t *testing.T) {
	for _, p := range testPrimes {
		for _, o := range []Orientation{Left, Right} {
			c, _ := NewOriented(p, o)
			if err := layout.CheckMDS(c, int64(p)); err != nil {
				t.Errorf("orient=%d: %v", o, err)
			}
		}
	}
}

// TestAlgorithm1 exercises the paper's explicit double-failure
// reconstruction for every column pair and compares the result with the
// original stripe, for both orientations, sequential and parallel chains.
func TestAlgorithm1(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, p := range testPrimes {
		for _, o := range []Orientation{Left, Right} {
			c, _ := NewOriented(p, o)
			orig := layout.NewStripe(c.Geometry(), 32)
			orig.FillRandom(c, r)
			layout.Encode(c, orig)
			for f1 := 0; f1 < p; f1++ {
				for f2 := f1 + 1; f2 < p; f2++ {
					for _, par := range []bool{false, true} {
						s := orig.Clone()
						s.ZeroColumn(f1)
						s.ZeroColumn(f2)
						var st layout.DecodeStats
						var err error
						if par {
							st, err = c.ReconstructDoubleParallel(s, f2, f1) // order must not matter
						} else {
							st, err = c.ReconstructDouble(s, f1, f2)
						}
						if err != nil {
							t.Fatalf("p=%d o=%d cols (%d,%d) par=%v: %v", p, o, f1, f2, par, err)
						}
						if !s.Equal(orig) {
							t.Fatalf("p=%d o=%d cols (%d,%d) par=%v: wrong reconstruction", p, o, f1, f2, par)
						}
						if st.Recovered != 2*(p-1) {
							t.Errorf("p=%d cols (%d,%d): recovered %d elements, want %d", p, f1, f2, st.Recovered, 2*(p-1))
						}
					}
				}
			}
		}
	}
}

// TestDecodeXORCountPerElement asserts the optimal decoding complexity of
// §III-E-2: recovering any single element costs p-3 XORs.
func TestDecodeXORCountPerElement(t *testing.T) {
	for _, p := range testPrimes {
		c := MustNew(p)
		orig := layout.NewStripe(c.Geometry(), 8)
		orig.FillRandom(c, rand.New(rand.NewSource(3)))
		layout.Encode(c, orig)
		for f1 := 0; f1 < p; f1++ {
			for f2 := f1 + 1; f2 < p; f2++ {
				s := orig.Clone()
				s.ZeroColumn(f1)
				s.ZeroColumn(f2)
				st, err := c.ReconstructDouble(s, f1, f2)
				if err != nil {
					t.Fatal(err)
				}
				perElement := float64(st.XORs) / float64(st.Recovered)
				if want := float64(p - 3); perElement != want {
					t.Errorf("p=%d cols (%d,%d): %.2f XORs/element, want %.0f", p, f1, f2, perElement, want)
				}
			}
		}
	}
}

func TestReconstructDoubleRejectsBadColumns(t *testing.T) {
	c := MustNew(5)
	s := layout.NewStripe(c.Geometry(), 8)
	if _, err := c.ReconstructDouble(s, 1, 1); err == nil {
		t.Error("identical columns should fail")
	}
	if _, err := c.ReconstructDouble(s, -1, 2); err == nil {
		t.Error("negative column should fail")
	}
	if _, err := c.ReconstructDouble(s, 0, 5); err == nil {
		t.Error("out-of-range column should fail")
	}
	if _, err := c.RecoverSingle(s, 9); err == nil {
		t.Error("out-of-range single column should fail")
	}
}

func TestRecoverSingle(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, p := range testPrimes {
		c := MustNew(p)
		orig := layout.NewStripe(c.Geometry(), 16)
		orig.FillRandom(c, r)
		layout.Encode(c, orig)
		for f := 0; f < p; f++ {
			s := orig.Clone()
			s.ZeroColumn(f)
			st, err := c.RecoverSingle(s, f)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Equal(orig) {
				t.Fatalf("p=%d col %d: wrong single recovery", p, f)
			}
			if f < p-1 && st.BlocksRead != c.ConventionalReads() {
				t.Errorf("p=%d col %d: conventional recovery read %d blocks, want %d", p, f, st.BlocksRead, c.ConventionalReads())
			}
		}
	}
}

// TestHybridRecovery verifies the paper's §III-E-4 claim: at p=5, hybrid
// recovery reads 9 blocks per stripe versus 12 for the conventional
// approach (a 25%+ reduction, the paper says "up to 33%" counting its
// specific shared-element accounting).
func TestHybridRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, p := range []int{5, 7, 11, 13} {
		c := MustNew(p)
		orig := layout.NewStripe(c.Geometry(), 16)
		orig.FillRandom(c, r)
		layout.Encode(c, orig)
		for f := 0; f < p-1; f++ {
			plan, err := c.PlanHybridRecovery(f)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Reads >= c.ConventionalReads() {
				t.Errorf("p=%d col %d: hybrid reads %d, conventional %d — no saving", p, f, plan.Reads, c.ConventionalReads())
			}
			s := orig.Clone()
			s.ZeroColumn(f)
			st, err := c.ExecuteRecoveryPlan(s, plan)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Equal(orig) {
				t.Fatalf("p=%d col %d: hybrid recovery produced wrong contents", p, f)
			}
			if st.BlocksRead != plan.Reads {
				t.Errorf("p=%d col %d: executed reads %d != planned %d", p, f, st.BlocksRead, plan.Reads)
			}
		}
	}
	// Paper's concrete numbers at p=5.
	c := MustNew(5)
	plan, err := c.PlanHybridRecovery(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.ConventionalReads() != 12 {
		t.Errorf("p=5 conventional reads = %d, want 12", c.ConventionalReads())
	}
	if plan.Reads != 9 {
		t.Errorf("p=5 hybrid reads = %d, want 9", plan.Reads)
	}
}

func TestHybridRecoveryRejectsParityColumn(t *testing.T) {
	c := MustNew(5)
	if _, err := c.PlanHybridRecovery(4); err == nil {
		t.Error("diagonal parity column has no hybrid plan; expected error")
	}
}

// TestStorageEfficiency asserts the MDS optimum (n-2)/n.
func TestStorageEfficiency(t *testing.T) {
	for _, p := range testPrimes {
		c := MustNew(p)
		got := layout.StorageEfficiency(c)
		want := float64(p-2) / float64(p)
		if got != want {
			t.Errorf("p=%d: efficiency %f, want %f", p, got, want)
		}
	}
}

// TestAgainstGenericDecoder cross-checks Algorithm 1 against the generic
// peeling decoder on identical erasures.
func TestAgainstGenericDecoder(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for _, p := range []int{5, 7, 11} {
		c := MustNew(p)
		orig := layout.NewStripe(c.Geometry(), 16)
		orig.FillRandom(c, r)
		layout.Encode(c, orig)
		for f1 := 0; f1 < p; f1++ {
			for f2 := f1 + 1; f2 < p; f2++ {
				a := orig.Clone()
				a.ZeroColumn(f1)
				a.ZeroColumn(f2)
				if _, err := c.ReconstructDouble(a, f1, f2); err != nil {
					t.Fatal(err)
				}
				b := orig.Clone()
				es := layout.EraseColumns(b, f1, f2)
				if _, err := layout.PeelDecode(c, b, es); err != nil {
					t.Fatalf("p=%d (%d,%d): peeling failed: %v", p, f1, f2, err)
				}
				if !a.Equal(b) {
					t.Fatalf("p=%d (%d,%d): Algorithm 1 and peeling disagree", p, f1, f2)
				}
			}
		}
	}
}

// TestExactTolerance: Code 5-6 tolerates exactly 2 column failures — all
// pairs recover, some triple does not (MDS redundancy fully used).
func TestExactTolerance(t *testing.T) {
	got, err := layout.MeasureTolerance(MustNew(5), 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("measured tolerance %d, want 2", got)
	}
}

// TestLargePrime exercises the full stack at p=17 (16x17 stripes): MDS
// over all pairs plus Algorithm 1 and hybrid recovery. Skipped with -short.
func TestLargePrime(t *testing.T) {
	if testing.Short() {
		t.Skip("large-prime sweep skipped in -short mode")
	}
	const p = 17
	c := MustNew(p)
	if err := layout.CheckMDS(c, 1); err != nil {
		t.Fatal(err)
	}
	orig := layout.NewStripe(c.Geometry(), 16)
	orig.FillRandom(c, rand.New(rand.NewSource(1)))
	layout.Encode(c, orig)
	s := orig.Clone()
	s.ZeroColumn(3)
	s.ZeroColumn(11)
	if _, err := c.ReconstructDouble(s, 3, 11); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(orig) {
		t.Fatal("wrong reconstruction at p=17")
	}
	plan, err := c.PlanHybridRecovery(2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reads >= c.ConventionalReads() {
		t.Errorf("no hybrid saving at p=17: %d vs %d", plan.Reads, c.ConventionalReads())
	}
}
