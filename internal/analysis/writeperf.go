package analysis

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"

	"code56/internal/codes/evenodd"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/raid6"

	hcodepkg "code56/internal/codes/hcode"
)

// WritePerf measures the small-write cost of a live RAID-6 array after
// conversion — the paper's §V-D observation that "Code 5-6 provides high
// write performance after conversion due to its property on single write
// performance". Costs are measured, not derived: random single-block
// updates are issued against a real array and the disks' I/O counters are
// read back.
type WritePerf struct {
	Code string
	P    int
	// AvgIOsPerWrite is the mean disk I/Os (reads+writes) per
	// single-block update; the optimum for a RAID-6 is 6
	// (read+write of the data block and of two parity blocks).
	AvgIOsPerWrite float64
	// MaxDiskShare is the busiest disk's fraction of the total I/O — the
	// load-balance view (HDP's design goal).
	MaxDiskShare float64
}

// MeasureWritePerformance runs nWrites random single-block updates against
// each code's array at the given prime and reports the measured costs.
func MeasureWritePerformance(p int, nWrites int, seed int64) ([]WritePerf, error) {
	codes := map[string]layout.Code{
		"code56":  core.MustNew(p),
		"rdp":     rdp.MustNew(p),
		"evenodd": evenodd.MustNew(p),
		"xcode":   xcode.MustNew(p),
		"hcode":   hcodepkg.MustNew(p),
		"hdp":     hdp.MustNew(p),
		"pcode":   pcode.MustNew(p, pcode.VariantPMinus1),
	}
	var out []WritePerf
	for name, code := range codes {
		a := raid6.New(code, 64)
		r := rand.New(rand.NewSource(seed))
		blocks := int64(a.DataPerStripe() * 4)
		buf := make([]byte, 64)
		for L := int64(0); L < blocks; L++ {
			r.Read(buf)
			if err := a.WriteBlock(L, buf); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
		}
		a.Disks().ResetStats()
		for i := 0; i < nWrites; i++ {
			r.Read(buf)
			if err := a.WriteBlock(r.Int63n(blocks), buf); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
		}
		var total, max int64
		for i := 0; i < a.Disks().Len(); i++ {
			t := a.Disks().Disk(i).Stats().Total()
			total += t
			if t > max {
				max = t
			}
		}
		out = append(out, WritePerf{
			Code:           name,
			P:              p,
			AvgIOsPerWrite: float64(total) / float64(nWrites),
			MaxDiskShare:   float64(max) / float64(total),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out, nil
}

// RenderWritePerformance writes the measured small-write comparison.
func RenderWritePerformance(w io.Writer, p, nWrites int) error {
	rows, err := MeasureWritePerformance(p, nWrites, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Post-conversion small-write cost (p = %d, %d random updates; optimum 6 I/Os)\n", p, nWrites)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "code\tavg I/Os per write\tbusiest-disk share")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", r.Code, r.AvgIOsPerWrite, r.MaxDiskShare)
	}
	return tw.Flush()
}
