package analysis

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"code56/internal/mttdl"
)

// TableIAFRs are the paper's Table I annualized failure rates by disk age
// (years 1–5), the motivation for migrating aging RAID-5 arrays.
var TableIAFRs = map[int]float64{1: 0.017, 2: 0.081, 3: 0.086, 4: 0.058, 5: 0.072}

// MotivationRow quantifies §I for one disk age: the data-loss exposure of
// staying on RAID-5 versus migrating to a RAID-6 with Code 5-6 (one added
// disk).
type MotivationRow struct {
	YearOfUse int
	AFR       float64
	// RAID5MTTDLYears / RAID6MTTDLYears are the Markov mean times to data
	// loss, in years.
	RAID5MTTDLYears float64
	RAID6MTTDLYears float64
	// FiveYearLossRAID5 / FiveYearLossRAID6 are the data-loss
	// probabilities over a further five years of service.
	FiveYearLossRAID5 float64
	FiveYearLossRAID6 float64
}

// MotivationTable evaluates Table I's AFRs for a RAID-5 of m disks
// migrated to a RAID-6 of m+1 disks, with the given rebuild time.
func MotivationTable(m int, mttrHours float64) ([]MotivationRow, error) {
	var out []MotivationRow
	for year, afr := range TableIAFRs {
		r5, err := mttdl.RAID5Hours(mttdl.Params{Disks: m, AFR: afr, MTTRHours: mttrHours})
		if err != nil {
			return nil, err
		}
		r6, err := mttdl.RAID6Hours(mttdl.Params{Disks: m + 1, AFR: afr, MTTRHours: mttrHours})
		if err != nil {
			return nil, err
		}
		out = append(out, MotivationRow{
			YearOfUse:         year,
			AFR:               afr,
			RAID5MTTDLYears:   r5 / mttdl.HoursPerYear,
			RAID6MTTDLYears:   r6 / mttdl.HoursPerYear,
			FiveYearLossRAID5: mttdl.LossProbability(r5, 5),
			FiveYearLossRAID6: mttdl.LossProbability(r6, 5),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].YearOfUse < out[j].YearOfUse })
	return out, nil
}

// RenderMotivation writes the quantified §I motivation.
func RenderMotivation(w io.Writer, m int, mttrHours float64) error {
	rows, err := MotivationTable(m, mttrHours)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Motivation (paper §I, Table I): %d-disk RAID-5 vs migrated %d-disk RAID-6, %.0f h rebuild\n",
		m, m+1, mttrHours)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "age\tAFR\tRAID-5 MTTDL (y)\tRAID-6 MTTDL (y)\t5y loss RAID-5\t5y loss RAID-6")
	for _, r := range rows {
		fmt.Fprintf(tw, "year %d\t%.1f%%\t%.0f\t%.3g\t%.2e\t%.2e\n",
			r.YearOfUse, r.AFR*100, r.RAID5MTTDLYears, r.RAID6MTTDLYears,
			r.FiveYearLossRAID5, r.FiveYearLossRAID6)
	}
	return tw.Flush()
}
