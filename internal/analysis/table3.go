package analysis

import (
	"fmt"
	"sort"

	"code56/internal/codes/evenodd"
	"code56/internal/codes/rdp"
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/migrate"

	hcodepkg "code56/internal/codes/hcode"
)

// Grade is the paper's three-level qualitative scale.
type Grade int

// Qualitative grades of Table III.
const (
	Low Grade = iota
	Medium
	High
)

// String returns the paper's spelling.
func (g Grade) String() string {
	switch g {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	default:
		return fmt.Sprintf("Grade(%d)", int(g))
	}
}

// QualRow is one row of Table III. Unlike the paper, the grades here are
// *derived*: the single-write column from each code's parity-update cascade,
// the conversion columns from the approach class and measured conversion
// time.
type QualRow struct {
	Code string
	// SingleWrite grades small-write performance: High iff every data
	// update dirties exactly two parity blocks (optimal), Low if the
	// worst case exceeds four (EVENODD's S diagonal), Medium otherwise.
	SingleWrite Grade
	// AvgParityWrites and WorstParityWrites are the measured update
	// cascade sizes behind the grade.
	AvgParityWrites   float64
	WorstParityWrites int
	// ConversionComplexity grades the conversion process: High for
	// approaches that pass through an intermediate RAID form, Medium for
	// direct conversions, Low for direct conversion with full parity
	// reuse (Code 5-6).
	ConversionComplexity Grade
	// ConversionEfficiency is the inverse ranking, anchored on measured
	// conversion time.
	ConversionEfficiency Grade
	// TimeNLB is the measured best-approach conversion time backing the
	// efficiency grade.
	TimeNLB float64
}

// updateCascade returns the number of parity blocks a write to cell d
// dirties, following covering chains transitively (a parity covered by
// another chain propagates the delta, as RDP's row parity does into the
// diagonals).
func updateCascade(code layout.Code, d layout.Coord) int {
	writes := 0
	queue := []layout.Coord{d}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, ci := range layout.ChainsCovering(code, c) {
			p := code.Chains()[ci].Parity
			writes++
			queue = append(queue, p)
		}
	}
	return writes
}

// singleWriteProfile measures the average and worst parity-write cascade
// over all data elements of the code.
func singleWriteProfile(code layout.Code) (avg float64, worst int) {
	data := layout.DataElements(code)
	total := 0
	for _, d := range data {
		w := updateCascade(code, d)
		total += w
		if w > worst {
			worst = w
		}
	}
	return float64(total) / float64(len(data)), worst
}

// representative returns a structurally equivalent instance of the code
// with p >= 5 for update-complexity grading: at p = 3 some codes degenerate
// (EVENODD's S diagonal cascade collapses to 3 writes), masking their
// general behavior.
func representative(code layout.Code) layout.Code {
	if code.Geometry().P >= 5 {
		return code
	}
	switch code.Name() {
	case "evenodd":
		return evenodd.MustNew(5)
	case "rdp":
		return rdp.MustNew(5)
	case "hcode":
		return hcodepkg.MustNew(5)
	case "code56", "code56r":
		return core.MustNew(5)
	default:
		return code
	}
}

// TableIII derives the paper's Table III for the codes compared at target
// size n (grades are structural, so any valid n gives the same answers per
// code).
func TableIII(n int) ([]QualRow, error) {
	type agg struct {
		code       layout.Code
		direct     bool
		bestTime   float64
		reuses     bool
		haveMetric bool
	}
	byName := make(map[string]*agg)
	for _, c := range migrate.StandardConversions(n) {
		p, err := migrate.NewPlan(c)
		if err != nil {
			return nil, err
		}
		m := p.Metrics()
		a, ok := byName[c.Code.Name()]
		if !ok {
			a = &agg{code: c.Code, bestTime: m.TimeNLB}
			byName[c.Code.Name()] = a
		}
		if m.TimeNLB < a.bestTime {
			a.bestTime = m.TimeNLB
		}
		a.haveMetric = true
		if c.Approach == migrate.Direct {
			a.direct = true
			if p.Reused > 0 && p.Invalidated == 0 && p.Migrated == 0 {
				a.reuses = true
			}
		}
	}

	var rows []QualRow
	for name, a := range byName {
		avg, worst := singleWriteProfile(representative(a.code))
		row := QualRow{Code: name, AvgParityWrites: avg, WorstParityWrites: worst, TimeNLB: a.bestTime}
		switch {
		case worst > 4:
			row.SingleWrite = Low
		case worst > 2:
			row.SingleWrite = Medium
		default:
			row.SingleWrite = High
		}
		switch {
		case a.reuses:
			row.ConversionComplexity = Low
			row.ConversionEfficiency = High
		case a.direct:
			row.ConversionComplexity = Medium
			row.ConversionEfficiency = Medium
		default:
			row.ConversionComplexity = High
			row.ConversionEfficiency = Low
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Code < rows[j].Code })
	return rows, nil
}
