package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// RenderFigure writes one comparison figure as a text table: one row per
// conversion, the figure's metric as the value column.
func RenderFigure(w io.Writer, f Figure, n int) error {
	entries, err := Compare(n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure %d — %s (n = %d)\n", int(f), f.Title(), n)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "conversion\tvalue")
	for _, e := range entries {
		fmt.Fprintf(tw, "%s\t%.4f\n", e.Label, f.Value(e.Metrics))
	}
	return tw.Flush()
}

// RenderFigureCSV writes the figure's data as CSV (label,value).
func RenderFigureCSV(w io.Writer, f Figure, n int) error {
	entries, err := Compare(n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "conversion,%s\n", strings.ReplaceAll(f.Title(), ",", ";"))
	for _, e := range entries {
		fmt.Fprintf(w, "%q,%.6f\n", e.Label, f.Value(e.Metrics))
	}
	return nil
}

// RenderAllMetrics writes the full metric matrix for one n: every
// conversion against every figure column (a compact view of Figs 9–17).
func RenderAllMetrics(w io.Writer, n int) error {
	entries, err := Compare(n)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Conversion metrics, n = %d (per data block B; time per B*Te)\n", n)
	fmt.Fprintln(tw, "conversion\tinvalid\tmigrate\tnewpar\textra\txors\twrites\ttotalIO\ttNLB\ttLB")
	for _, e := range entries {
		m := e.Metrics
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			e.Label, m.InvalidParityRatio, m.MigrationRatio, m.NewParityRatio,
			m.ExtraSpaceRatio, m.XORRatio, m.WriteRatio, m.TotalIORatio, m.TimeNLB, m.TimeLB)
	}
	return tw.Flush()
}

// RenderTableIII writes the derived qualitative comparison.
func RenderTableIII(w io.Writer, n int) error {
	rows, err := TableIII(n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table III — comparison among MDS codes on conversion (derived, n = %d)\n", n)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "code\tsingle-write\t(avg/worst parity writes)\tconv. complexity\tconv. efficiency\t(best tNLB)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f/%d\t%s\t%s\t%.3f\n",
			r.Code, r.SingleWrite, r.AvgParityWrites, r.WorstParityWrites,
			r.ConversionComplexity, r.ConversionEfficiency, r.TimeNLB)
	}
	return tw.Flush()
}

// RenderSpeedupTable writes Table IV.
func RenderSpeedupTable(w io.Writer, ns []int, loadBalanced bool) error {
	rows, err := SpeedupTable(ns, loadBalanced)
	if err != nil {
		return err
	}
	mode := "NLB"
	if loadBalanced {
		mode = "LB"
	}
	fmt.Fprintf(w, "Table IV — speedup of Code 5-6 over each code's best approach (%s)\n", mode)
	codes := map[string]bool{}
	for _, r := range rows {
		for c := range r.Speedups {
			codes[c] = true
		}
	}
	var names []string
	for c := range codes {
		names = append(names, c)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n")
	for _, c := range names {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%d (%s)", r.N, mode)
		for _, c := range names {
			if v, ok := r.Speedups[c]; ok {
				fmt.Fprintf(tw, "\t%.2f", v)
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderStorageEfficiency writes Figure 18.
func RenderStorageEfficiency(w io.Writer, minM, maxM int) error {
	fmt.Fprintln(w, "Figure 18 — storage efficiency: typical RAID-6 vs Code 5-6 with virtual disks")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "m\ttypical\tcode56\tpenalty")
	for _, p := range StorageEfficiencySeries(minM, maxM) {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n", p.M, p.Typical, p.Code56, p.Typical-p.Code56)
	}
	return tw.Flush()
}

// RenderSimulation writes one panel of Figure 19 plus the Table V speedup
// line derived from it.
func RenderSimulation(w io.Writer, n int, cfg SimConfig) error {
	entries, err := SimulateBestByN(n, cfg)
	if err != nil {
		return err
	}
	mode := "NLB"
	if cfg.LoadBalanced {
		mode = "LB"
	}
	fmt.Fprintf(w, "Figure 19 — simulated conversion time (n = %d, block %d B, B = %d, %s)\n",
		n, cfg.BlockSize, cfg.TotalDataBlocks, mode)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "conversion\ttime (s)\trequests")
	for _, e := range entries {
		fmt.Fprintf(tw, "%s\t%.2f\t%d\n", e.Label, e.MakespanMS/1e3, e.Requests)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	sp, err := SimSpeedups(entries)
	if err != nil {
		return err
	}
	var names []string
	for c := range sp {
		names = append(names, c)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "Table V — simulated speedup of Code 5-6:")
	for _, c := range names {
		fmt.Fprintf(w, " %s %.2fx", c, sp[c])
	}
	fmt.Fprintln(w)
	return nil
}

// RenderAblation writes an ablation's entries.
func RenderAblation(w io.Writer, ab Ablation) error {
	fmt.Fprintf(w, "Ablation %s — %s\n", ab.Name, ab.Description)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "case\tinvalid\tmigrate\tnewpar\textra\twrites\ttotalIO\ttNLB\ttLB")
	for _, e := range ab.Entries {
		m := e.Metrics
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			e.Label, m.InvalidParityRatio, m.MigrationRatio, m.NewParityRatio,
			m.ExtraSpaceRatio, m.WriteRatio, m.TotalIORatio, m.TimeNLB, m.TimeLB)
	}
	return tw.Flush()
}

// RenderHybridRecovery writes the §III-E-4 recovery study.
func RenderHybridRecovery(w io.Writer, primes []int) error {
	pts, err := HybridRecoverySeries(primes)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Hybrid single-disk recovery (paper Fig. 6): reads per stripe")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tconventional\thybrid\tsaving")
	for _, pt := range pts {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f%%\n", pt.P, pt.ConventionalReads, pt.HybridReads, pt.Saving*100)
	}
	return tw.Flush()
}
