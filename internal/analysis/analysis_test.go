package analysis

import (
	"bytes"
	"strings"
	"testing"

	"code56/internal/disksim"
	"code56/internal/migrate"
)

func TestCompareCoversExpectedCodes(t *testing.T) {
	want := map[int][]string{
		5: {"evenodd", "xcode", "pcode-p", "code56"},
		6: {"rdp", "hcode", "pcode", "hdp", "code56"},
		7: {"evenodd", "xcode", "pcode-p", "code56"},
	}
	for n, codes := range want {
		entries, err := Compare(n)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, e := range entries {
			seen[e.Code] = true
			if e.N != n {
				t.Errorf("n=%d: entry %s reports N=%d", n, e.Label, e.N)
			}
		}
		for _, c := range codes {
			if !seen[c] {
				t.Errorf("n=%d: code %s missing from comparison", n, c)
			}
		}
	}
}

func TestFigureValueExtraction(t *testing.T) {
	m := migrate.Metrics{
		InvalidParityRatio: 1, MigrationRatio: 2, NewParityRatio: 3,
		ExtraSpaceRatio: 4, XORRatio: 5, WriteRatio: 6, TotalIORatio: 7,
		TimeNLB: 8, TimeLB: 9,
	}
	for f, want := range map[Figure]float64{
		Fig9InvalidParity: 1, Fig10Migration: 2, Fig11NewParity: 3,
		Fig12ExtraSpace: 4, Fig13Computation: 5, Fig14WriteIO: 6,
		Fig15TotalIO: 7, Fig16TimeNLB: 8, Fig17TimeLB: 9,
	} {
		if got := f.Value(m); got != want {
			t.Errorf("%v.Value = %v, want %v", f, got, want)
		}
		if f.Title() == "" {
			t.Errorf("%v has no title", f)
		}
	}
}

// TestSpeedupTableShape: every speedup of Code 5-6 over other codes must be
// > 1 at prime n (the paper's Table IV shows 1.27–3.38), with the
// documented HDP/NLB exception at n=6.
func TestSpeedupTableShape(t *testing.T) {
	for _, lb := range []bool{false, true} {
		rows, err := SpeedupTable([]int{5, 6, 7}, lb)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("%d rows, want 3", len(rows))
		}
		var maxSpeedup float64
		for _, r := range rows {
			if len(r.Speedups) == 0 {
				t.Fatalf("n=%d: empty speedup row", r.N)
			}
			for code, s := range r.Speedups {
				if s > maxSpeedup {
					maxSpeedup = s
				}
				// Documented deviations at non-prime n under the NLB
				// bottleneck model (see EXPERIMENTS.md): HDP edges the
				// virtual-disk Code 5-6 and P-Code ties it.
				if !lb && r.N == 6 && (code == "hdp" || code == "pcode") {
					if s < 0.8 {
						t.Errorf("n=6 NLB: %s speedup %.2f below documented band", code, s)
					}
					continue
				}
				if s <= 1 {
					t.Errorf("lb=%v n=%d: speedup over %s is %.2f, want > 1", lb, r.N, code, s)
				}
			}
		}
		// The paper reports speedups up to 3.38x; our model must reach a
		// comparable magnitude somewhere in the table.
		if maxSpeedup < 1.5 {
			t.Errorf("lb=%v: max speedup %.2f — no pronounced advantage found", lb, maxSpeedup)
		}
	}
}

// TestTableIIIMatchesPaper: the derived qualitative grades must reproduce
// the paper's Table III exactly.
func TestTableIIIMatchesPaper(t *testing.T) {
	type want struct{ sw, cc, ce Grade }
	paper := map[string]want{
		"evenodd": {Low, High, Low},
		"rdp":     {Medium, High, Low},
		"xcode":   {High, Medium, Medium},
		"pcode":   {High, Medium, Medium},
		"hcode":   {High, High, Low},
		"hdp":     {Medium, Medium, Medium},
		"code56":  {High, Low, High},
	}
	seen := map[string]bool{}
	for _, n := range []int{5, 6, 7} {
		rows, err := TableIII(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			w, ok := paper[r.Code]
			if !ok {
				continue // pcode-p variant is not in the paper's table
			}
			seen[r.Code] = true
			if r.SingleWrite != w.sw {
				t.Errorf("n=%d %s: single write %v, paper says %v (avg %.2f worst %d)",
					n, r.Code, r.SingleWrite, w.sw, r.AvgParityWrites, r.WorstParityWrites)
			}
			if r.ConversionComplexity != w.cc {
				t.Errorf("n=%d %s: complexity %v, paper says %v", n, r.Code, r.ConversionComplexity, w.cc)
			}
			if r.ConversionEfficiency != w.ce {
				t.Errorf("n=%d %s: efficiency %v, paper says %v", n, r.Code, r.ConversionEfficiency, w.ce)
			}
		}
	}
	for code := range paper {
		if !seen[code] {
			t.Errorf("code %s never graded", code)
		}
	}
}

func TestStorageEfficiencySeries(t *testing.T) {
	pts := StorageEfficiencySeries(3, 20)
	if len(pts) != 18 {
		t.Fatalf("%d points, want 18", len(pts))
	}
	for _, p := range pts {
		if p.Code56 > p.Typical+1e-9 {
			t.Errorf("m=%d: Code 5-6 efficiency above MDS optimum", p.M)
		}
		if p.Typical-p.Code56 > 0.039 {
			t.Errorf("m=%d: penalty %.4f too large", p.M, p.Typical-p.Code56)
		}
	}
}

// TestSimulationShape runs the Fig. 19 methodology at reduced scale: Code
// 5-6 must be the fastest at n=5 and n=7 for both block sizes, and larger
// blocks must increase every makespan.
func TestSimulationShape(t *testing.T) {
	for _, n := range []int{5, 7} {
		var prev map[string]float64
		for _, bs := range []int{4096, 8192} {
			cfg := SimConfig{BlockSize: bs, TotalDataBlocks: 3000, LoadBalanced: true}
			entries, err := SimulateBestByN(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			times := map[string]float64{}
			var t56 float64
			for _, e := range entries {
				times[e.Code] = e.MakespanMS
				if e.Code == "code56" {
					t56 = e.MakespanMS
				}
			}
			if t56 == 0 {
				t.Fatalf("n=%d: no code56 entry", n)
			}
			for code, tm := range times {
				if code != "code56" && tm <= t56 {
					t.Errorf("n=%d bs=%d: %s simulated time %.1f <= code56's %.1f", n, bs, code, tm, t56)
				}
				if prev != nil && tm <= prev[code] {
					t.Errorf("n=%d: %s time did not grow with block size", n, code)
				}
			}
			sp, err := SimSpeedups(entries)
			if err != nil {
				t.Fatal(err)
			}
			for code, s := range sp {
				if s <= 1 {
					t.Errorf("n=%d bs=%d: Table V speedup over %s = %.2f", n, bs, code, s)
				}
			}
			prev = times
		}
	}
}

// TestTableVShape checks Table V in the paper's own grouping by p
// (Figure 19): Code 5-6's best approach beats every other code's best
// approach in simulated conversion time.
func TestTableVShape(t *testing.T) {
	cfg := SimConfig{BlockSize: 4096, TotalDataBlocks: 3000, LoadBalanced: true}
	sp := map[int]map[string]float64{}
	for _, p := range []int{5, 7} {
		entries, err := SimulateBestByP(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := SimSpeedups(entries)
		if err != nil {
			t.Fatal(err)
		}
		sp[p] = s
	}
	// Primary Table V shape: Code 5-6 is fastest at both p values, for
	// every code. (The paper's secondary observation that the speedup
	// *grows* from p=5 to p=7 does not reproduce under our disk model;
	// see EXPERIMENTS.md.)
	for _, p := range []int{5, 7} {
		for code, s := range sp[p] {
			if s <= 1 {
				t.Errorf("%s: Table V speedup %.2f at p=%d not > 1", code, s, p)
			}
		}
	}
	if _, err := ConversionsByP(4); err == nil {
		t.Error("non-prime p accepted")
	}
}

func TestAblationHCodeDirect(t *testing.T) {
	ab, err := AblationHCodeDirect(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Entries) != 4 {
		t.Fatalf("%d entries, want 4", len(ab.Entries))
	}
	var direct, via0 *Entry
	for i := range ab.Entries {
		e := &ab.Entries[i]
		if e.Code == "hcode" {
			switch e.Approach {
			case migrate.Direct:
				direct = e
			case migrate.ViaRAID0:
				via0 = e
			}
		}
	}
	if direct == nil || via0 == nil {
		t.Fatal("missing H-Code entries")
	}
	// The ablation's finding: H-Code *could* convert directly with reuse,
	// beating its intermediate-form approaches.
	if direct.Plan.Reused == 0 {
		t.Error("H-Code direct conversion should reuse old parities")
	}
	if direct.Metrics.TotalIORatio >= via0.Metrics.TotalIORatio {
		t.Error("H-Code direct should beat via-RAID0 on total I/O")
	}
}

func TestAblationLayoutMismatch(t *testing.T) {
	ab, err := AblationLayoutMismatch(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Entries) != 3 {
		t.Fatalf("%d entries, want 3", len(ab.Entries))
	}
	matched, mismatched, matchedRight := ab.Entries[0].Metrics, ab.Entries[1].Metrics, ab.Entries[2].Metrics
	if matched.InvalidParityRatio != 0 || matchedRight.InvalidParityRatio != 0 {
		t.Error("matched orientations should invalidate nothing")
	}
	if mismatched.InvalidParityRatio == 0 {
		t.Error("mismatched orientation should invalidate old parities")
	}
	if mismatched.TotalIORatio <= matched.TotalIORatio {
		t.Error("mismatch should cost more I/O")
	}
	if matchedRight.TotalIORatio != matched.TotalIORatio {
		t.Error("Fig. 7: the right-oriented code should restore the matched cost")
	}
}

func TestHybridRecoverySeries(t *testing.T) {
	pts, err := HybridRecoverySeries([]int{5, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].ConventionalReads != 12 || pts[0].HybridReads != 9 {
		t.Errorf("p=5: %d/%d reads, want 12/9", pts[0].ConventionalReads, pts[0].HybridReads)
	}
	for _, pt := range pts {
		if pt.Saving <= 0 {
			t.Errorf("p=%d: no read saving", pt.P)
		}
	}
}

// TestRenderers smoke-tests every text renderer.
func TestRenderers(t *testing.T) {
	var b bytes.Buffer
	if err := RenderFigure(&b, Fig11NewParity, 5); err != nil {
		t.Fatal(err)
	}
	if err := RenderFigureCSV(&b, Fig15TotalIO, 6); err != nil {
		t.Fatal(err)
	}
	if err := RenderAllMetrics(&b, 7); err != nil {
		t.Fatal(err)
	}
	if err := RenderTableIII(&b, 6); err != nil {
		t.Fatal(err)
	}
	if err := RenderSpeedupTable(&b, []int{5, 6, 7}, true); err != nil {
		t.Fatal(err)
	}
	if err := RenderStorageEfficiency(&b, 3, 12); err != nil {
		t.Fatal(err)
	}
	if err := RenderSimulation(&b, 5, SimConfig{BlockSize: 4096, TotalDataBlocks: 1200, LoadBalanced: true, Model: disksim.DefaultModel()}); err != nil {
		t.Fatal(err)
	}
	ab, err := AblationHCodeDirect(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderAblation(&b, ab); err != nil {
		t.Fatal(err)
	}
	if err := RenderHybridRecovery(&b, []int{5, 7}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 11", "Table III", "Table IV", "Figure 18", "Figure 19", "Table V", "code56", "hybrid"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

// TestTableVIMatchesPaper: the derived in-flight reliability grades must
// reproduce the paper's Table VI: Low for the RAID-0 path, Medium for the
// RAID-4 path, High for direct conversions — with one exception our
// measurement surfaces (documented in EXPERIMENTS.md): HDP's anti-diagonal
// parities physically overwrite the old RAID-5 parities mid-conversion, so
// "retain old parities until conversion is done" is impossible for it and
// windows of unprotected data exist.
func TestTableVIMatchesPaper(t *testing.T) {
	for _, n := range []int{5, 6, 7} {
		rows, err := TableVI(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			var want migrate.ReliabilityGrade
			switch {
			case r.Code == "hdp":
				want = migrate.ReliabilityLow // measured deviation
			case r.Label[:len("RAID-5→RAID-0")] == "RAID-5→RAID-0":
				want = migrate.ReliabilityLow
			case r.Label[:len("RAID-5→RAID-4")] == "RAID-5→RAID-4":
				want = migrate.ReliabilityMedium
			default:
				want = migrate.ReliabilityHigh
			}
			if r.Grade != want {
				t.Errorf("n=%d %s: grade %v, want %v (safe=%v unsafe=%d moves=%d)",
					n, r.Label, r.Grade, want, r.SingleFailureSafe, r.UnsafeSteps, r.ParityMoves)
			}
			// Consistency between the grade and its evidence.
			if (r.Grade == migrate.ReliabilityLow) == r.SingleFailureSafe {
				t.Errorf("n=%d %s: grade %v inconsistent with safety %v", n, r.Label, r.Grade, r.SingleFailureSafe)
			}
		}
	}
}

// TestRenderTableVI smoke-tests the renderer.
func TestRenderTableVI(t *testing.T) {
	var b bytes.Buffer
	if err := RenderTableVI(&b, 6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table VI") {
		t.Fatal("missing header")
	}
}

// TestRecoveryAcrossCodes: the hybrid strategy must save reads for every
// code with two parity families (the §III-E-4 generalization); Code 5-6's
// saving must be at least RDP's (the paper positions it as benefiting more).
func TestRecoveryAcrossCodes(t *testing.T) {
	for _, p := range []int{5, 7} {
		rows, err := RecoveryAcrossCodes(p)
		if err != nil {
			t.Fatal(err)
		}
		byCode := map[string]CrossCodeRecovery{}
		for _, r := range rows {
			byCode[r.Code] = r
			if r.HybridReads > r.ConventionalReads {
				t.Errorf("p=%d %s: hybrid worse than conventional", p, r.Code)
			}
		}
		for _, code := range []string{"code56", "rdp", "xcode", "hcode"} {
			if byCode[code].Saving <= 0 {
				t.Errorf("p=%d %s: no hybrid saving", p, code)
			}
		}
		if byCode["code56"].Saving < byCode["rdp"].Saving {
			t.Errorf("p=%d: Code 5-6 saving %.2f below RDP's %.2f", p, byCode["code56"].Saving, byCode["rdp"].Saving)
		}
	}
	var b bytes.Buffer
	if err := RenderRecoveryAcrossCodes(&b, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "code56") {
		t.Fatal("render missing code56 row")
	}
}

// TestWritePerformance validates §V-D's post-conversion write claim with
// measured I/O: optimal-update codes average 6 I/Os per single-block
// update; EVENODD's S-diagonal and the cascading codes cost more.
func TestWritePerformance(t *testing.T) {
	rows, err := MeasureWritePerformance(5, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]WritePerf{}
	for _, r := range rows {
		by[r.Code] = r
	}
	for _, code := range []string{"code56", "xcode", "pcode", "hcode"} {
		if got := by[code].AvgIOsPerWrite; got < 5.99 || got > 6.01 {
			t.Errorf("%s: %.2f I/Os per write, want 6 (optimal)", code, got)
		}
	}
	for _, code := range []string{"evenodd", "rdp", "hdp"} {
		if by[code].AvgIOsPerWrite <= 6.01 {
			t.Errorf("%s: %.2f I/Os per write — should exceed the optimum", code, by[code].AvgIOsPerWrite)
		}
		if by[code].AvgIOsPerWrite <= by["code56"].AvgIOsPerWrite {
			t.Errorf("%s writes cheaper than Code 5-6", code)
		}
	}
	// HDP's design goal: best load balance among the dedicated/diagonal
	// layouts (all its disks carry parity).
	if by["hdp"].MaxDiskShare >= by["rdp"].MaxDiskShare {
		t.Errorf("hdp busiest-disk share %.2f not below rdp's %.2f", by["hdp"].MaxDiskShare, by["rdp"].MaxDiskShare)
	}
	var b bytes.Buffer
	if err := RenderWritePerformance(&b, 5, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "small-write") {
		t.Fatal("render missing header")
	}
}

// TestDegradedReads: healthy reads cost exactly one I/O per block; a failed
// disk amplifies reads for every code (stripe-wide reconstruction), and no
// code reads less than healthy.
func TestDegradedReads(t *testing.T) {
	rows, err := MeasureDegradedReads(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.HealthyAmplification != 1.0 {
			t.Errorf("%s: healthy amplification %.2f, want 1.0", r.Code, r.HealthyAmplification)
		}
		if r.Amplification <= 1.0 {
			t.Errorf("%s: degraded amplification %.2f should exceed 1", r.Code, r.Amplification)
		}
	}
	var b bytes.Buffer
	if err := RenderDegradedReads(&b, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Degraded-read") {
		t.Fatal("render missing header")
	}
}

// TestMotivationTable quantifies §I: RAID-6 after migration reduces the
// five-year data-loss probability by orders of magnitude for every Table I
// disk age.
func TestMotivationTable(t *testing.T) {
	rows, err := MotivationTable(5, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.FiveYearLossRAID6 >= r.FiveYearLossRAID5/100 {
			t.Errorf("year %d: RAID-6 loss %.2e not two orders below RAID-5's %.2e",
				r.YearOfUse, r.FiveYearLossRAID6, r.FiveYearLossRAID5)
		}
		if r.RAID6MTTDLYears <= r.RAID5MTTDLYears {
			t.Errorf("year %d: RAID-6 MTTDL not above RAID-5", r.YearOfUse)
		}
	}
	var b bytes.Buffer
	if err := RenderMotivation(&b, 5, 24); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Motivation") {
		t.Fatal("render missing header")
	}
}

// TestCompareScalesBeyondPaperSizes: the harness is not hardwired to the
// paper's n ∈ {5,6,7}; larger arrays compare the same way, with Code 5-6
// (virtual-padded where n-1+1 is not prime) still cheapest on total I/O.
func TestCompareScalesBeyondPaperSizes(t *testing.T) {
	for _, n := range []int{8, 11, 12, 14} {
		entries, err := Compare(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var c56 *Entry
		for i := range entries {
			if entries[i].Code == "code56" {
				c56 = &entries[i]
			}
		}
		if c56 == nil {
			t.Fatalf("n=%d: Code 5-6 missing", n)
		}
		for _, e := range entries {
			if e.Code == "code56" {
				continue
			}
			if e.Metrics.TotalIORatio < c56.Metrics.TotalIORatio {
				t.Errorf("n=%d: %s total I/O %.3f beats Code 5-6's %.3f",
					n, e.Label, e.Metrics.TotalIORatio, c56.Metrics.TotalIORatio)
			}
		}
	}
}
