package analysis

import (
	"fmt"
	"sort"

	"code56/internal/codes/evenodd"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/core"
	"code56/internal/disksim"
	"code56/internal/layout"
	"code56/internal/migrate"
	"code56/internal/raid5"
	"code56/internal/trace"

	hcodepkg "code56/internal/codes/hcode"
)

// ConversionsByP returns the §V-C comparison set grouped by the prime
// parameter p — the grouping of Figure 19 and Table V ("with the same value
// of p"), where the codes' disk counts differ but their stripe mathematics
// share p.
func ConversionsByP(p int) ([]migrate.Conversion, error) {
	if !layout.IsPrime(p) || p < 5 {
		return nil, fmt.Errorf("analysis: p = %d must be a prime >= 5", p)
	}
	mk := func(m int, code layout.Code, a migrate.Approach) migrate.Conversion {
		return migrate.Conversion{M: m, SourceLayout: raid5.LeftAsymmetric, Code: code, Approach: a}
	}
	var out []migrate.Conversion
	for _, a := range []migrate.Approach{migrate.ViaRAID0, migrate.ViaRAID4} {
		out = append(out,
			mk(p, evenodd.MustNew(p), a),
			mk(p-1, rdp.MustNew(p), a),
			mk(p-1, hcodepkg.MustNew(p), a),
		)
	}
	out = append(out,
		mk(p, xcode.MustNew(p), migrate.Direct),
		mk(p-1, pcode.MustNew(p, pcode.VariantPMinus1), migrate.Direct),
		mk(p, pcode.MustNew(p, pcode.VariantP), migrate.Direct),
		mk(p-1, hdp.MustNew(p), migrate.Direct),
		mk(p-1, core.MustNew(p), migrate.Direct),
	)
	return out, nil
}

// SimEntryDetail extends SimEntry with the winner's per-disk utilization
// (busy share of the makespan) and sequential-hit fraction.
type SimEntryDetail struct {
	SimEntry
	Utilization    []float64
	SequentialFrac float64
}

// SimulateBestByPDetailed is SimulateBestByP plus per-disk utilization for
// each code's winning approach.
func SimulateBestByPDetailed(p int, cfg SimConfig) ([]SimEntryDetail, error) {
	entries, err := simulateByP(p, cfg)
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// SimulateBestByP runs the Figure 19 methodology at one p: every code's
// conversions are traced and replayed through the disk simulator, and the
// best (fastest) approach per code is reported.
func SimulateBestByP(p int, cfg SimConfig) ([]SimEntry, error) {
	detailed, err := simulateByP(p, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]SimEntry, len(detailed))
	for i, d := range detailed {
		out[i] = d.SimEntry
	}
	return out, nil
}

func simulateByP(p int, cfg SimConfig) ([]SimEntryDetail, error) {
	if cfg.Model == (disksim.Model{}) {
		cfg.Model = disksim.DefaultModel()
	}
	convs, err := ConversionsByP(p)
	if err != nil {
		return nil, err
	}
	best := make(map[string]SimEntryDetail)
	for _, c := range convs {
		plan, err := migrate.NewPlan(c)
		if err != nil {
			return nil, err
		}
		phases := trace.FromPlan(plan, trace.Options{
			TotalDataBlocks: cfg.TotalDataBlocks,
			LoadBalanced:    cfg.LoadBalanced,
		})
		sim, err := disksim.New(c.N(), cfg.BlockSize, cfg.Model)
		if err != nil {
			return nil, err
		}
		st, err := sim.RunPhases(phases)
		if err != nil {
			return nil, err
		}
		cur, ok := best[c.Code.Name()]
		if !ok || st.Makespan < cur.MakespanMS {
			util := make([]float64, len(st.PerDiskBusy))
			for d := range util {
				util[d] = st.Utilization(d)
			}
			seq := 0.0
			if st.Requests > 0 {
				seq = float64(st.SequentialHits) / float64(st.Requests)
			}
			best[c.Code.Name()] = SimEntryDetail{
				SimEntry: SimEntry{
					Label:      c.Label(),
					Code:       c.Code.Name(),
					MakespanMS: st.Makespan,
					Requests:   st.Requests,
				},
				Utilization:    util,
				SequentialFrac: seq,
			}
		}
	}
	var out []SimEntryDetail
	for _, e := range best {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out, nil
}

// RenderSimulationByP writes one panel of Figure 19 in the paper's own
// grouping (same p) plus the corresponding Table V row.
func RenderSimulationByP(w interface{ Write([]byte) (int, error) }, p int, cfg SimConfig) error {
	entries, err := SimulateBestByP(p, cfg)
	if err != nil {
		return err
	}
	mode := "NLB"
	if cfg.LoadBalanced {
		mode = "LB"
	}
	fmt.Fprintf(w, "Figure 19 — simulated conversion time (p = %d, block %d B, B = %d, %s)\n",
		p, cfg.BlockSize, cfg.TotalDataBlocks, mode)
	for _, e := range entries {
		fmt.Fprintf(w, "  %-40s %10.2f s  (%d reqs)\n", e.Label, e.MakespanMS/1e3, e.Requests)
	}
	sp, err := SimSpeedups(entries)
	if err != nil {
		return err
	}
	var names []string
	for c := range sp {
		names = append(names, c)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "Table V (p=%d, %s) — speedup of Code 5-6:", p, mode)
	for _, c := range names {
		fmt.Fprintf(w, " %s %.2fx", c, sp[c])
	}
	fmt.Fprintln(w)
	return nil
}
