package analysis

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"code56/internal/migrate"
)

// ReliabilityRow is one row of the paper's Table VI ("Reliability of
// Conversions"), derived by symbolically replaying each conversion and
// checking, after every operation, whether a single disk failure would lose
// data.
type ReliabilityRow struct {
	Label string
	Code  string
	migrate.Reliability
}

// TableVI measures in-flight conversion reliability for every standard
// conversion targeting n disks.
func TableVI(n int) ([]ReliabilityRow, error) {
	var rows []ReliabilityRow
	for _, c := range migrate.StandardConversions(n) {
		p, err := migrate.NewPlan(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ReliabilityRow{
			Label:       c.Label(),
			Code:        c.Code.Name(),
			Reliability: p.ReliabilityProfile(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Label < rows[j].Label })
	return rows, nil
}

// RenderTableVI writes the derived reliability table.
func RenderTableVI(w io.Writer, n int) error {
	rows, err := TableVI(n)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table VI — reliability of conversions (derived, n = %d)\n", n)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "conversion\treliability\tsingle-failure safe\tunsafe steps\tparity moves")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%v\t%d\t%d\n",
			r.Label, r.Grade, r.SingleFailureSafe, r.UnsafeSteps, r.ParityMoves)
	}
	return tw.Flush()
}
