package analysis

import (
	"fmt"

	"code56/internal/codes/hcode"
	"code56/internal/core"
	"code56/internal/migrate"
	"code56/internal/raid5"
)

// Ablation quantifies one design-choice question beyond the paper's own
// experiments (see DESIGN.md §4.5).
type Ablation struct {
	Name        string
	Description string
	Entries     []Entry
}

// AblationHCodeDirect asks: how much of Code 5-6's advantage is the
// one-added-disk geometry versus parity-layout reuse per se? H-Code (same
// authors, same anti-diagonal horizontal parities plus an extra data
// column) could also convert directly with full reuse — the paper only
// evaluates it through intermediate RAID forms. This ablation runs H-Code
// through all three approaches.
func AblationHCodeDirect(p int) (Ablation, error) {
	ab := Ablation{
		Name: "hcode-direct",
		Description: "H-Code converted directly (with parity reuse) vs through " +
			"intermediate RAID-0/RAID-4, vs Code 5-6",
	}
	h := hcode.MustNew(p)
	for _, a := range []migrate.Approach{migrate.Direct, migrate.ViaRAID0, migrate.ViaRAID4} {
		c := migrate.Conversion{M: p - 1, SourceLayout: raid5.LeftAsymmetric, Code: h, Approach: a}
		plan, err := migrate.NewPlan(c)
		if err != nil {
			return Ablation{}, err
		}
		ab.Entries = append(ab.Entries, Entry{Label: c.Label(), Code: "hcode", Approach: a, N: c.N(), Metrics: plan.Metrics(), Plan: plan})
	}
	c56 := migrate.Conversion{M: p - 1, SourceLayout: raid5.LeftAsymmetric, Code: core.MustNew(p), Approach: migrate.Direct}
	plan, err := migrate.NewPlan(c56)
	if err != nil {
		return Ablation{}, err
	}
	ab.Entries = append(ab.Entries, Entry{Label: c56.Label(), Code: "code56", Approach: migrate.Direct, N: c56.N(), Metrics: plan.Metrics(), Plan: plan})
	return ab, nil
}

// AblationLayoutMismatch asks: how much of Code 5-6's conversion saving is
// the layout compatibility with left-oriented RAID-5? Converting from a
// right-asymmetric source (whose parity rotation does not match the Left
// code's anti-diagonal) defeats reuse, and the conversion pays
// invalidation plus full horizontal-parity regeneration. The matched
// orientation (core.Right against a right-asymmetric source) restores the
// zero-cost reuse, reproducing the paper's Fig. 7 point.
func AblationLayoutMismatch(p int) (Ablation, error) {
	ab := Ablation{
		Name: "layout-mismatch",
		Description: "Code 5-6 conversion cost from matched vs mismatched " +
			"RAID-5 parity rotations",
	}
	cases := []struct {
		label  string
		src    raid5.Layout
		orient core.Orientation
	}{
		{"matched/left", raid5.LeftAsymmetric, core.Left},
		{"mismatched", raid5.RightAsymmetric, core.Left},
		{"matched/right", raid5.RightAsymmetric, core.Right},
	}
	for _, cse := range cases {
		code, err := core.NewOriented(p, cse.orient)
		if err != nil {
			return Ablation{}, err
		}
		c := migrate.Conversion{M: p - 1, SourceLayout: cse.src, Code: code, Approach: migrate.Direct}
		plan, err := migrate.NewPlan(c)
		if err != nil {
			return Ablation{}, err
		}
		ab.Entries = append(ab.Entries, Entry{
			Label:    fmt.Sprintf("%s %s", c.Label(), cse.label),
			Code:     code.Name(),
			Approach: migrate.Direct,
			N:        c.N(),
			Metrics:  plan.Metrics(),
			Plan:     plan,
		})
	}
	return ab, nil
}

// RecoveryPoint is one row of the hybrid-recovery study (paper §III-E-4,
// Fig. 6): read cost of rebuilding one failed disk, per stripe.
type RecoveryPoint struct {
	P                 int
	ConventionalReads int
	HybridReads       int
	Saving            float64 // 1 - hybrid/conventional
}

// HybridRecoverySeries computes conventional vs hybrid single-disk
// recovery reads for the given primes (failed column 0).
func HybridRecoverySeries(primes []int) ([]RecoveryPoint, error) {
	var out []RecoveryPoint
	for _, p := range primes {
		c, err := core.New(p)
		if err != nil {
			return nil, err
		}
		plan, err := c.PlanHybridRecovery(0)
		if err != nil {
			return nil, err
		}
		conv := c.ConventionalReads()
		out = append(out, RecoveryPoint{
			P:                 p,
			ConventionalReads: conv,
			HybridReads:       plan.Reads,
			Saving:            1 - float64(plan.Reads)/float64(conv),
		})
	}
	return out, nil
}
