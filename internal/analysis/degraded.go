package analysis

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"

	"code56/internal/codes/evenodd"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/raid6"

	hcodepkg "code56/internal/codes/hcode"
)

// DegradedRead reports the measured cost of serving reads with one failed
// disk — the availability-under-failure view behind the paper's claim that
// staying RAID-5 leaves aging arrays exposed: a degraded array answers
// every read, but at an I/O amplification that rebuild-time choices (and
// the code's geometry) determine.
type DegradedRead struct {
	Code string
	P    int
	// Amplification is (disk I/Os) / (blocks read) with one failed disk,
	// over a uniform read of every logical block.
	Amplification float64
	// HealthyAmplification is the same ratio with no failures (1.0: one
	// disk read per block).
	HealthyAmplification float64
}

// MeasureDegradedReads fails disk 0 of each code's array and reads every
// logical block once, reporting the observed I/O amplification.
func MeasureDegradedReads(p int, seed int64) ([]DegradedRead, error) {
	codes := map[string]layout.Code{
		"code56":  core.MustNew(p),
		"rdp":     rdp.MustNew(p),
		"evenodd": evenodd.MustNew(p),
		"xcode":   xcode.MustNew(p),
		"hcode":   hcodepkg.MustNew(p),
		"hdp":     hdp.MustNew(p),
		"pcode":   pcode.MustNew(p, pcode.VariantPMinus1),
	}
	var out []DegradedRead
	for name, code := range codes {
		a := raid6.New(code, 64)
		r := rand.New(rand.NewSource(seed))
		const stripes = 2
		blocks := int64(a.DataPerStripe() * stripes)
		buf := make([]byte, 64)
		for L := int64(0); L < blocks; L++ {
			r.Read(buf)
			if err := a.WriteBlock(L, buf); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
		}
		healthy := measureReadAmp(a, blocks, buf)
		a.Disks().Disk(0).Fail()
		degraded := measureReadAmp(a, blocks, buf)
		out = append(out, DegradedRead{
			Code:                 name,
			P:                    p,
			Amplification:        degraded,
			HealthyAmplification: healthy,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out, nil
}

func measureReadAmp(a *raid6.Array, blocks int64, buf []byte) float64 {
	a.Disks().ResetStats()
	for L := int64(0); L < blocks; L++ {
		if err := a.ReadBlock(L, buf); err != nil {
			return -1
		}
	}
	return float64(a.Disks().TotalStats().Reads) / float64(blocks)
}

// RenderDegradedReads writes the degraded-read study.
func RenderDegradedReads(w io.Writer, p int) error {
	rows, err := MeasureDegradedReads(p, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Degraded-read I/O amplification (p = %d, disk 0 failed, uniform reads)\n", p)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "code\thealthy\tdegraded")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", r.Code, r.HealthyAmplification, r.Amplification)
	}
	return tw.Flush()
}
