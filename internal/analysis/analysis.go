// Package analysis regenerates the paper's evaluation section: the
// quantitative comparison of conversion approaches (Figures 9–17), the
// storage-efficiency study (Figure 18), the qualitative code comparison
// (Table III), the conversion-time speedup table (Table IV), and the
// trace-driven simulation results (Figure 19, Table V). Everything derives
// from the migration planner and the disk simulator; nothing is hardcoded
// from the paper.
package analysis

import (
	"fmt"
	"sort"

	"code56/internal/disksim"
	"code56/internal/migrate"
	"code56/internal/trace"
)

// Entry is one (conversion, metrics) pair of the comparison figures.
type Entry struct {
	// Label is the paper-style conversion label.
	Label string
	// Code is the target code's name.
	Code string
	// Approach is the conversion approach.
	Approach migrate.Approach
	// N is the resulting RAID-6 disk count.
	N int
	// Metrics holds the paper's §V-A quantities for the conversion.
	Metrics migrate.Metrics
	// Plan is the underlying plan (nil in derived tables).
	Plan *migrate.Plan
}

// Compare computes the metrics of every standard conversion targeting n
// disks (the bars of Figures 9–17 for that n), sorted by label.
func Compare(n int) ([]Entry, error) {
	var out []Entry
	for _, c := range migrate.StandardConversions(n) {
		p, err := migrate.NewPlan(c)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", c.Label(), err)
		}
		out = append(out, Entry{
			Label:    c.Label(),
			Code:     c.Code.Name(),
			Approach: c.Approach,
			N:        c.N(),
			Metrics:  p.Metrics(),
			Plan:     p,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out, nil
}

// Figure identifies one of the paper's metric figures.
type Figure int

// The comparison figures of §V-B.
const (
	Fig9InvalidParity Figure = 9 + iota
	Fig10Migration
	Fig11NewParity
	Fig12ExtraSpace
	Fig13Computation
	Fig14WriteIO
	Fig15TotalIO
	Fig16TimeNLB
	Fig17TimeLB
)

// Title returns the figure's caption subject.
func (f Figure) Title() string {
	switch f {
	case Fig9InvalidParity:
		return "Invalid parity ratio"
	case Fig10Migration:
		return "Old parity migration ratio"
	case Fig11NewParity:
		return "New parity generation ratio"
	case Fig12ExtraSpace:
		return "Extra space ratio"
	case Fig13Computation:
		return "Computation cost (XORs, x B)"
	case Fig14WriteIO:
		return "Write I/Os (x B)"
	case Fig15TotalIO:
		return "Total I/Os (x B)"
	case Fig16TimeNLB:
		return "Conversion time, no load balancing (x B*Te)"
	case Fig17TimeLB:
		return "Conversion time, load balanced (x B*Te)"
	default:
		return fmt.Sprintf("Figure %d", int(f))
	}
}

// Value extracts the figure's metric from an entry.
func (f Figure) Value(m migrate.Metrics) float64 {
	switch f {
	case Fig9InvalidParity:
		return m.InvalidParityRatio
	case Fig10Migration:
		return m.MigrationRatio
	case Fig11NewParity:
		return m.NewParityRatio
	case Fig12ExtraSpace:
		return m.ExtraSpaceRatio
	case Fig13Computation:
		return m.XORRatio
	case Fig14WriteIO:
		return m.WriteRatio
	case Fig15TotalIO:
		return m.TotalIORatio
	case Fig16TimeNLB:
		return m.TimeNLB
	case Fig17TimeLB:
		return m.TimeLB
	default:
		return 0
	}
}

// SpeedupRow is one row of Table IV: the speedup of Code 5-6's direct
// conversion over each code's best approach, at one n and one
// load-balancing mode.
type SpeedupRow struct {
	N            int
	LoadBalanced bool
	// Speedups maps code name -> time(code)/time(Code 5-6).
	Speedups map[string]float64
}

// SpeedupTable computes the paper's Table IV for the given disk counts.
func SpeedupTable(ns []int, loadBalanced bool) ([]SpeedupRow, error) {
	var rows []SpeedupRow
	for _, n := range ns {
		best, err := migrate.BestPlans(n, loadBalanced)
		if err != nil {
			return nil, err
		}
		c56, ok := best["code56"]
		if !ok {
			return nil, fmt.Errorf("analysis: no Code 5-6 plan for n=%d", n)
		}
		t56 := c56.Metrics().TimeNLB
		if loadBalanced {
			t56 = c56.Metrics().TimeLB
		}
		row := SpeedupRow{N: n, LoadBalanced: loadBalanced, Speedups: make(map[string]float64)}
		for name, p := range best {
			if name == "code56" {
				continue
			}
			tm := p.Metrics().TimeNLB
			if loadBalanced {
				tm = p.Metrics().TimeLB
			}
			row.Speedups[name] = tm / t56
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EffPoint is one point of Figure 18.
type EffPoint struct {
	M       int     // RAID-5 disks before conversion
	Typical float64 // MDS RAID-6 of m+1 disks: (m-1)/(m+1)
	Code56  float64 // Eq. 6 with virtual disks
}

// StorageEfficiencySeries computes Figure 18 over m in [minM, maxM].
func StorageEfficiencySeries(minM, maxM int) []EffPoint {
	var out []EffPoint
	for m := minM; m <= maxM; m++ {
		out = append(out, EffPoint{
			M:       m,
			Typical: migrate.TypicalRAID6StorageEfficiency(m),
			Code56:  migrate.Code56StorageEfficiency(m),
		})
	}
	return out
}

// SimEntry is one bar of Figure 19: the simulated conversion time of one
// code's best approach.
type SimEntry struct {
	Label      string
	Code       string
	MakespanMS float64
	Requests   int
}

// SimConfig parameterizes the §V-C simulation.
type SimConfig struct {
	// BlockSize in bytes (the paper uses 4 KB and 8 KB).
	BlockSize int
	// TotalDataBlocks is the paper's B (0.6 million in §V-C).
	TotalDataBlocks int
	// LoadBalanced selects the paper's "with load balancing support"
	// trace shape.
	LoadBalanced bool
	// Model is the disk model (DefaultModel if zero).
	Model disksim.Model
}

// SimulateBestByN runs the Fig. 19 methodology for the codes targeting n
// disks: each code's best (lowest simulated time) approach is reported.
func SimulateBestByN(n int, cfg SimConfig) ([]SimEntry, error) {
	if cfg.Model == (disksim.Model{}) {
		cfg.Model = disksim.DefaultModel()
	}
	bestTimes := make(map[string]SimEntry)
	for _, c := range migrate.StandardConversions(n) {
		p, err := migrate.NewPlan(c)
		if err != nil {
			return nil, err
		}
		phases := trace.FromPlan(p, trace.Options{
			TotalDataBlocks: cfg.TotalDataBlocks,
			LoadBalanced:    cfg.LoadBalanced,
		})
		sim, err := disksim.New(c.N(), cfg.BlockSize, cfg.Model)
		if err != nil {
			return nil, err
		}
		st, err := sim.RunPhases(phases)
		if err != nil {
			return nil, err
		}
		cur, ok := bestTimes[c.Code.Name()]
		if !ok || st.Makespan < cur.MakespanMS {
			bestTimes[c.Code.Name()] = SimEntry{
				Label:      c.Label(),
				Code:       c.Code.Name(),
				MakespanMS: st.Makespan,
				Requests:   st.Requests,
			}
		}
	}
	var out []SimEntry
	for _, e := range bestTimes {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out, nil
}

// SimSpeedups derives Table V from Figure 19 entries: each code's simulated
// time over Code 5-6's.
func SimSpeedups(entries []SimEntry) (map[string]float64, error) {
	var t56 float64
	for _, e := range entries {
		if e.Code == "code56" {
			t56 = e.MakespanMS
		}
	}
	if t56 == 0 {
		return nil, fmt.Errorf("analysis: no Code 5-6 entry in simulation set")
	}
	out := make(map[string]float64)
	for _, e := range entries {
		if e.Code != "code56" {
			out[e.Code] = e.MakespanMS / t56
		}
	}
	return out, nil
}
