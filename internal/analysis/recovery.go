package analysis

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"code56/internal/codes/evenodd"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/recovery"

	hcodepkg "code56/internal/codes/hcode"
)

// CrossCodeRecovery is one row of the cross-code single-disk recovery
// study: the paper's §III-E-4 notes the hybrid approach "can be used in
// many MDS codes"; this measures it for all of them.
type CrossCodeRecovery struct {
	Code              string
	P                 int
	ConventionalReads int
	HybridReads       int
	Saving            float64
}

// RecoveryAcrossCodes measures conventional vs optimized single-disk
// rebuild reads per stripe for every code at the given prime (worst data
// column: column 0 unless it holds no data).
func RecoveryAcrossCodes(p int) ([]CrossCodeRecovery, error) {
	codes := map[string]layout.Code{
		"code56":  core.MustNew(p),
		"rdp":     rdp.MustNew(p),
		"evenodd": evenodd.MustNew(p),
		"xcode":   xcode.MustNew(p),
		"hcode":   hcodepkg.MustNew(p),
		"hdp":     hdp.MustNew(p),
		"pcode":   pcode.MustNew(p, pcode.VariantPMinus1),
	}
	var out []CrossCodeRecovery
	for name, code := range codes {
		col := 0
		conv, err := recovery.ConventionalReads(code, col)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		plan, err := recovery.PlanColumn(code, col)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, CrossCodeRecovery{
			Code:              name,
			P:                 p,
			ConventionalReads: conv,
			HybridReads:       plan.Reads,
			Saving:            1 - float64(plan.Reads)/float64(conv),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out, nil
}

// RenderRecoveryAcrossCodes writes the cross-code recovery study.
func RenderRecoveryAcrossCodes(w io.Writer, p int) error {
	rows, err := RecoveryAcrossCodes(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Hybrid single-disk recovery across codes (p = %d, failed column 0)\n", p)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "code\tconventional reads\thybrid reads\tsaving")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\n", r.Code, r.ConventionalReads, r.HybridReads, r.Saving*100)
	}
	return tw.Flush()
}
