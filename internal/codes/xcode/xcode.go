// Package xcode implements X-Code (Xu & Bruck, IEEE Trans. Information
// Theory 1999), the vertical RAID-6 MDS code the paper uses as a direct
// RAID-5→RAID-6 conversion baseline (its two parity *rows* are why that
// conversion must reserve 2/p of each disk — the 40% extra space of Fig.
// 1(c) at p=5).
//
// An X-Code stripe is a p×p matrix (p prime): rows 0..p-3 hold data, row
// p-2 the diagonal parities and row p-1 the anti-diagonal parities:
//
//	C[p-2][i] = XOR_{j=0..p-3} C[j][(i+j+2) mod p]
//	C[p-1][i] = XOR_{j=0..p-3} C[j][(i-j-2) mod p]
package xcode

import (
	"fmt"

	"code56/internal/layout"
)

// Code is the X-Code for p disks. It implements layout.Code.
type Code struct {
	p      int
	chains []layout.Chain
}

// New returns X-Code for prime p (p disks).
func New(p int) (*Code, error) {
	if !layout.IsPrime(p) || p < 3 {
		return nil, fmt.Errorf("xcode: p = %d must be a prime >= 3", p)
	}
	c := &Code{p: p}
	c.chains = c.buildChains()
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(p int) *Code {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the prime parameter (= number of disks).
func (c *Code) P() int { return c.p }

// Name implements layout.Code.
func (c *Code) Name() string { return "xcode" }

// Geometry implements layout.Code: p rows × p columns.
func (c *Code) Geometry() layout.Geometry {
	return layout.Geometry{Rows: c.p, Cols: c.p, P: c.p}
}

// FaultTolerance implements layout.Code.
func (c *Code) FaultTolerance() int { return 2 }

// Kind implements layout.Code.
func (c *Code) Kind(row, col int) layout.Kind {
	switch row {
	case c.p - 2:
		return layout.ParityD
	case c.p - 1:
		return layout.ParityA
	default:
		return layout.Data
	}
}

func (c *Code) buildChains() []layout.Chain {
	p := c.p
	chains := make([]layout.Chain, 0, 2*p)
	for i := 0; i < p; i++ {
		ch := layout.Chain{Kind: layout.ParityD, Parity: layout.Coord{Row: p - 2, Col: i}}
		for j := 0; j <= p-3; j++ {
			ch.Covers = append(ch.Covers, layout.Coord{Row: j, Col: (i + j + 2) % p})
		}
		chains = append(chains, ch)
	}
	for i := 0; i < p; i++ {
		ch := layout.Chain{Kind: layout.ParityA, Parity: layout.Coord{Row: p - 1, Col: i}}
		for j := 0; j <= p-3; j++ {
			ch.Covers = append(ch.Covers, layout.Coord{Row: j, Col: ((i-j-2)%p + p) % p})
		}
		chains = append(chains, ch)
	}
	return chains
}

// Chains implements layout.Code.
func (c *Code) Chains() []layout.Chain { return c.chains }

var _ layout.Code = (*Code)(nil)
