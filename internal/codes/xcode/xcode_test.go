package xcode

import (
	"math/rand"
	"testing"

	"code56/internal/codes/codetest"
	"code56/internal/layout"
)

func TestConformance(t *testing.T) {
	for _, p := range []int{5, 7, 11, 13} {
		c := MustNew(p)
		codetest.Conformance(t, c, codetest.Expect{
			Rows:        p,
			Cols:        p,
			DataCells:   (p - 2) * p,
			ParityCells: 2 * p,
		})
	}
}

func TestRejectsNonPrime(t *testing.T) {
	for _, p := range []int{0, 1, 2, 4, 8, 9} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) should fail", p)
		}
	}
}

// TestUpdateComplexity: X-Code has optimal update complexity — every data
// cell in exactly one diagonal and one anti-diagonal chain.
func TestUpdateComplexity(t *testing.T) {
	for _, p := range []int{5, 7, 11} {
		codetest.UpdateComplexity(t, MustNew(p), 2)
	}
}

// TestPeelable: X-Code double-failure recovery zig-zags between the two
// parity families — pure peeling.
func TestPeelable(t *testing.T) {
	codetest.PeelableForColumnPairs(t, MustNew(5))
	codetest.PeelableForColumnPairs(t, MustNew(7))
}

// TestExactTolerance: the code tolerates exactly 2 column failures.
func TestExactTolerance(t *testing.T) {
	codetest.ExactTolerance(t, MustNew(5))
}

// TestReconstructDoubleAllPairs drives the code-specific entry point over
// every failure pair.
func TestReconstructDoubleAllPairs(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, p := range []int{5, 7, 11} {
		c := MustNew(p)
		orig := layout.NewStripe(c.Geometry(), 32)
		orig.FillRandom(c, r)
		layout.Encode(c, orig)
		for f1 := 0; f1 < p; f1++ {
			s1 := orig.Clone()
			s1.ZeroColumn(f1)
			if _, err := c.RecoverSingle(s1, f1); err != nil {
				t.Fatal(err)
			}
			if !s1.Equal(orig) {
				t.Fatalf("p=%d col %d: wrong single recovery", p, f1)
			}
			for f2 := f1 + 1; f2 < p; f2++ {
				s := orig.Clone()
				s.ZeroColumn(f1)
				s.ZeroColumn(f2)
				st, err := c.ReconstructDouble(s, f1, f2)
				if err != nil {
					t.Fatalf("p=%d (%d,%d): %v", p, f1, f2, err)
				}
				if !s.Equal(orig) {
					t.Fatalf("p=%d (%d,%d): wrong reconstruction", p, f1, f2)
				}
				if st.UsedElimination {
					t.Fatalf("p=%d (%d,%d): X-Code should never need elimination", p, f1, f2)
				}
				if st.Recovered != 2*p {
					t.Errorf("p=%d (%d,%d): recovered %d, want %d", p, f1, f2, st.Recovered, 2*p)
				}
			}
		}
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	c := MustNew(5)
	s := layout.NewStripe(c.Geometry(), 16)
	if _, err := c.ReconstructDouble(s, 2, 2); err == nil {
		t.Error("identical columns accepted")
	}
	if _, err := c.ReconstructDouble(s, -1, 2); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := c.RecoverSingle(s, 5); err == nil {
		t.Error("out-of-range column accepted")
	}
}
