package xcode

import (
	"fmt"

	"code56/internal/layout"
)

// X-Code's published reconstruction (Xu & Bruck §IV) alternates between the
// diagonal and anti-diagonal parity families, starting from the chains that
// have exactly one lost member — which is precisely chain peeling over the
// code's constraints. The methods below are the code-specific entry points
// (validation, statistics, and the guarantee that peeling alone suffices —
// X-Code never needs the framework's GF(2) elimination fallback).

// RecoverSingle rebuilds one failed column in place.
func (c *Code) RecoverSingle(s *layout.Stripe, failed int) (layout.DecodeStats, error) {
	if failed < 0 || failed >= c.p {
		return layout.DecodeStats{}, fmt.Errorf("xcode: column %d out of range [0,%d)", failed, c.p)
	}
	return c.reconstruct(s, failed)
}

// ReconstructDouble rebuilds any two failed columns in place.
func (c *Code) ReconstructDouble(s *layout.Stripe, colA, colB int) (layout.DecodeStats, error) {
	if colA == colB {
		return layout.DecodeStats{}, fmt.Errorf("xcode: identical failed columns %d", colA)
	}
	for _, col := range []int{colA, colB} {
		if col < 0 || col >= c.p {
			return layout.DecodeStats{}, fmt.Errorf("xcode: column %d out of range [0,%d)", col, c.p)
		}
	}
	return c.reconstruct(s, colA, colB)
}

func (c *Code) reconstruct(s *layout.Stripe, cols ...int) (layout.DecodeStats, error) {
	es := make(layout.ErasureSet)
	for _, col := range cols {
		for r := 0; r < c.p; r++ {
			es[layout.Coord{Row: r, Col: col}] = true
		}
	}
	st, err := layout.PeelDecode(c, s, es)
	if err != nil {
		// By Xu & Bruck's proof this cannot happen for <= 2 columns;
		// reaching here would mean a construction bug.
		return st, fmt.Errorf("xcode: zig-zag stalled: %w", err)
	}
	return st, nil
}
