package pcode

import (
	"fmt"

	"code56/internal/layout"
)

// P-Code's reconstruction peels its pair-label chains directly (Jin et
// al.'s algorithm walks the label graph; peeling the chains is the same
// computation). These methods are the code-specific entry points with
// validation and the no-elimination guarantee.

// RecoverSingle rebuilds one failed column in place.
func (c *Code) RecoverSingle(s *layout.Stripe, failed int) (layout.DecodeStats, error) {
	g := c.Geometry()
	if failed < 0 || failed >= g.Cols {
		return layout.DecodeStats{}, fmt.Errorf("pcode: column %d out of range [0,%d)", failed, g.Cols)
	}
	return c.reconstruct(s, failed)
}

// ReconstructDouble rebuilds any two failed columns in place.
func (c *Code) ReconstructDouble(s *layout.Stripe, colA, colB int) (layout.DecodeStats, error) {
	g := c.Geometry()
	if colA == colB {
		return layout.DecodeStats{}, fmt.Errorf("pcode: identical failed columns %d", colA)
	}
	for _, col := range []int{colA, colB} {
		if col < 0 || col >= g.Cols {
			return layout.DecodeStats{}, fmt.Errorf("pcode: column %d out of range [0,%d)", col, g.Cols)
		}
	}
	return c.reconstruct(s, colA, colB)
}

func (c *Code) reconstruct(s *layout.Stripe, cols ...int) (layout.DecodeStats, error) {
	g := c.Geometry()
	es := make(layout.ErasureSet)
	for _, col := range cols {
		for r := 0; r < g.Rows; r++ {
			es[layout.Coord{Row: r, Col: col}] = true
		}
	}
	st, err := layout.PeelDecode(c, s, es)
	if err != nil {
		return st, fmt.Errorf("pcode: label-graph walk stalled: %w", err)
	}
	return st, nil
}
