// Package pcode implements P-Code (Jin, Feng, Jiang, Tian, ICS 2009), a
// vertical RAID-6 MDS code built from a pair-labeling of {1..p-1}: every
// data element carries a two-element label {a,b}; it is stored in the column
// named (a+b) mod p and protected by the parity elements of columns a and b.
// The paper uses P-Code as a direct RAID-5→RAID-6 conversion baseline.
//
// Two published variants exist and both are provided:
//
//   - VariantPMinus1 (p-1 disks): columns are 1..p-1; labels are the
//     2-subsets {a,b} ⊆ {1..p-1} with (a+b) mod p != 0. Each column holds
//     one parity (row 0) and (p-3)/2 data elements.
//   - VariantP (p disks): adds column 0 holding the (p-1)/2 data elements
//     labeled {a, p-a} (the pairs summing to 0 mod p); column 0 carries no
//     parity. Every column then has (p-1)/2 cells.
package pcode

import (
	"fmt"
	"sort"

	"code56/internal/layout"
)

// Variant selects the P-Code construction.
type Variant int

const (
	// VariantPMinus1 is the p-1 disk construction.
	VariantPMinus1 Variant = iota
	// VariantP is the p disk construction with the extra parity-free
	// data column.
	VariantP
)

// Code is P-Code. It implements layout.Code.
type Code struct {
	p       int
	variant Variant
	chains  []layout.Chain
	kinds   [][]layout.Kind
	labels  map[layout.Coord][2]int
}

// New returns P-Code for prime p (p >= 5; p = 3 yields no data cells in
// either variant's label set combined with a usable geometry).
func New(p int, v Variant) (*Code, error) {
	if !layout.IsPrime(p) || p < 5 {
		return nil, fmt.Errorf("pcode: p = %d must be a prime >= 5", p)
	}
	c := &Code{p: p, variant: v}
	c.build()
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(p int, v Variant) *Code {
	c, err := New(p, v)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the prime parameter.
func (c *Code) P() int { return c.p }

// Variant returns the construction variant.
func (c *Code) Variant() Variant { return c.variant }

// Name implements layout.Code.
func (c *Code) Name() string {
	if c.variant == VariantP {
		return "pcode-p"
	}
	return "pcode"
}

// Geometry implements layout.Code: (p-1)/2 rows; p-1 or p columns.
func (c *Code) Geometry() layout.Geometry {
	cols := c.p - 1
	if c.variant == VariantP {
		cols = c.p
	}
	return layout.Geometry{Rows: (c.p - 1) / 2, Cols: cols, P: c.p}
}

// FaultTolerance implements layout.Code.
func (c *Code) FaultTolerance() int { return 2 }

// Kind implements layout.Code.
func (c *Code) Kind(row, col int) layout.Kind { return c.kinds[row][col] }

// Label returns the {a,b} pair label of the data element at co, and whether
// co is a data element.
func (c *Code) Label(co layout.Coord) ([2]int, bool) {
	l, ok := c.labels[co]
	return l, ok
}

// columnOf maps the construction's column name (1..p-1, plus 0 for
// VariantP) to the physical column index.
func (c *Code) columnOf(name int) int {
	if c.variant == VariantP {
		return name // names 0..p-1 map directly
	}
	return name - 1 // names 1..p-1 map to 0..p-2
}

func (c *Code) build() {
	p := c.p
	g := c.Geometry()
	c.kinds = make([][]layout.Kind, g.Rows)
	for r := range c.kinds {
		c.kinds[r] = make([]layout.Kind, g.Cols)
		for j := range c.kinds[r] {
			c.kinds[r][j] = layout.Data
		}
	}
	c.labels = make(map[layout.Coord][2]int)

	// Row 0 of every named column 1..p-1 is that column's parity.
	for name := 1; name <= p-1; name++ {
		c.kinds[0][c.columnOf(name)] = layout.ParityD
	}

	// Place data elements: collect the labels of each column, sort them
	// for a deterministic layout, and stack them under the parity.
	perColumn := make(map[int][][2]int)
	for a := 1; a <= p-1; a++ {
		for b := a + 1; b <= p-1; b++ {
			sum := (a + b) % p
			if sum == 0 {
				if c.variant == VariantP {
					perColumn[0] = append(perColumn[0], [2]int{a, b})
				}
				continue
			}
			perColumn[sum] = append(perColumn[sum], [2]int{a, b})
		}
	}
	covers := make(map[int][]layout.Coord) // by label element
	names := make([]int, 0, len(perColumn))
	for name := range perColumn {
		names = append(names, name)
	}
	sort.Ints(names)
	for _, name := range names {
		pairs := perColumn[name]
		sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
		row := 1
		if name == 0 {
			row = 0 // column 0 has no parity cell
		}
		for _, pr := range pairs {
			co := layout.Coord{Row: row, Col: c.columnOf(name)}
			c.labels[co] = pr
			covers[pr[0]] = append(covers[pr[0]], co)
			covers[pr[1]] = append(covers[pr[1]], co)
			row++
		}
	}

	// One chain per named column: its parity covers every data element
	// whose label contains the name.
	for name := 1; name <= p-1; name++ {
		c.chains = append(c.chains, layout.Chain{
			Kind:   layout.ParityD,
			Parity: layout.Coord{Row: 0, Col: c.columnOf(name)},
			Covers: covers[name],
		})
	}
}

// Chains implements layout.Code.
func (c *Code) Chains() []layout.Chain { return c.chains }

var _ layout.Code = (*Code)(nil)
