package pcode

import (
	"testing"

	"code56/internal/codes/codetest"
	"code56/internal/layout"
)

func TestConformancePMinus1(t *testing.T) {
	for _, p := range []int{5, 7, 11, 13} {
		c := MustNew(p, VariantPMinus1)
		codetest.Conformance(t, c, codetest.Expect{
			Rows:        (p - 1) / 2,
			Cols:        p - 1,
			DataCells:   (p - 1) * (p - 3) / 2,
			ParityCells: p - 1,
		})
	}
}

func TestConformanceP(t *testing.T) {
	for _, p := range []int{5, 7, 11, 13} {
		c := MustNew(p, VariantP)
		codetest.Conformance(t, c, codetest.Expect{
			Rows:        (p - 1) / 2,
			Cols:        p,
			DataCells:   (p - 1) * (p - 2) / 2,
			ParityCells: p - 1,
		})
	}
}

func TestRejectsBadP(t *testing.T) {
	for _, p := range []int{0, 1, 2, 3, 4, 6, 9} {
		if _, err := New(p, VariantPMinus1); err == nil {
			t.Errorf("New(%d) should fail", p)
		}
	}
}

// TestUpdateComplexity: each data element carries a 2-element label, hence
// exactly 2 parity chains — optimal.
func TestUpdateComplexity(t *testing.T) {
	for _, v := range []Variant{VariantPMinus1, VariantP} {
		codetest.UpdateComplexity(t, MustNew(7, v), 2)
	}
}

// TestLabels checks the pair-labeling construction invariants.
func TestLabels(t *testing.T) {
	for _, p := range []int{5, 7, 11} {
		for _, v := range []Variant{VariantPMinus1, VariantP} {
			c := MustNew(p, v)
			seen := make(map[[2]int]bool)
			for _, d := range layout.DataElements(c) {
				l, ok := c.Label(d)
				if !ok {
					t.Fatalf("p=%d v=%d: data cell %v has no label", p, v, d)
				}
				if seen[l] {
					t.Fatalf("p=%d v=%d: label %v duplicated", p, v, l)
				}
				seen[l] = true
				if l[0] < 1 || l[1] > p-1 || l[0] >= l[1] {
					t.Fatalf("p=%d: malformed label %v", p, l)
				}
				sum := (l[0] + l[1]) % p
				wantCol := c.columnOf(sum)
				if v == VariantPMinus1 && sum == 0 {
					t.Fatalf("p=%d variant p-1: zero-sum label %v present", p, l)
				}
				if d.Col != wantCol {
					t.Fatalf("p=%d: label %v in column %d, want %d", p, l, d.Col, wantCol)
				}
			}
		}
	}
}

// TestPeelable: P-Code's double-failure recovery proceeds chain by chain.
func TestPeelable(t *testing.T) {
	for _, v := range []Variant{VariantPMinus1, VariantP} {
		codetest.PeelableForColumnPairs(t, MustNew(5, v))
		codetest.PeelableForColumnPairs(t, MustNew(7, v))
	}
}

// TestExactTolerance: both variants tolerate exactly 2 column failures.
func TestExactTolerance(t *testing.T) {
	codetest.ExactTolerance(t, MustNew(5, VariantPMinus1))
	codetest.ExactTolerance(t, MustNew(5, VariantP))
}

// TestDedicatedDecoder exercises the code-specific recovery entry points
// for both variants.
func TestDedicatedDecoder(t *testing.T) {
	codetest.DedicatedDecoder(t, MustNew(5, VariantPMinus1))
	codetest.DedicatedDecoder(t, MustNew(7, VariantP))
	s := layout.NewStripe(MustNew(5, VariantP).Geometry(), 8)
	if _, err := MustNew(5, VariantP).ReconstructDouble(s, 1, 1); err == nil {
		t.Error("identical columns accepted")
	}
	if _, err := MustNew(5, VariantP).RecoverSingle(s, 99); err == nil {
		t.Error("out-of-range column accepted")
	}
}
