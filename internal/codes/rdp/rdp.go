// Package rdp implements the Row-Diagonal Parity code (Corbett et al.,
// FAST 2004), the horizontal RAID-6 MDS code the paper uses for its
// RAID-5→RAID-0→RAID-6 and RAID-5→RAID-4→RAID-6 conversion baselines.
//
// An RDP stripe has p-1 rows and p+1 columns (p prime): columns 0..p-2 hold
// data, column p-1 the row parity, and column p the diagonal parity.
// Diagonal d (0 <= d <= p-2) collects the cells (r, j) with
// (r+j) mod p == d over columns 0..p-1 — the diagonals deliberately include
// the row-parity column, which is what makes RDP's double-failure recovery a
// pure peeling chain. Diagonal p-1 is the "missing diagonal" with no parity.
package rdp

import (
	"fmt"

	"code56/internal/layout"
)

// Code is the RDP code for p+1 disks. It implements layout.Code.
type Code struct {
	p      int
	chains []layout.Chain
}

// New returns RDP for prime p (p+1 disks).
func New(p int) (*Code, error) {
	if !layout.IsPrime(p) || p < 3 {
		return nil, fmt.Errorf("rdp: p = %d must be a prime >= 3", p)
	}
	c := &Code{p: p}
	c.chains = c.buildChains()
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(p int) *Code {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the prime parameter; the code spans P()+1 disks.
func (c *Code) P() int { return c.p }

// Name implements layout.Code.
func (c *Code) Name() string { return "rdp" }

// Geometry implements layout.Code: (p-1) rows × (p+1) columns.
func (c *Code) Geometry() layout.Geometry {
	return layout.Geometry{Rows: c.p - 1, Cols: c.p + 1, P: c.p}
}

// FaultTolerance implements layout.Code.
func (c *Code) FaultTolerance() int { return 2 }

// Kind implements layout.Code.
func (c *Code) Kind(row, col int) layout.Kind {
	switch col {
	case c.p - 1:
		return layout.ParityH
	case c.p:
		return layout.ParityD
	default:
		return layout.Data
	}
}

func (c *Code) buildChains() []layout.Chain {
	p := c.p
	chains := make([]layout.Chain, 0, 2*(p-1))
	for i := 0; i < p-1; i++ {
		ch := layout.Chain{Kind: layout.ParityH, Parity: layout.Coord{Row: i, Col: p - 1}}
		for j := 0; j < p-1; j++ {
			ch.Covers = append(ch.Covers, layout.Coord{Row: i, Col: j})
		}
		chains = append(chains, ch)
	}
	for d := 0; d < p-1; d++ {
		ch := layout.Chain{Kind: layout.ParityD, Parity: layout.Coord{Row: d, Col: p}}
		for j := 0; j <= p-1; j++ {
			r := ((d-j)%p + p) % p
			if r == p-1 {
				continue // the phantom all-zero row of the p x (p+1) construction
			}
			ch.Covers = append(ch.Covers, layout.Coord{Row: r, Col: j})
		}
		chains = append(chains, ch)
	}
	return chains
}

// Chains implements layout.Code.
func (c *Code) Chains() []layout.Chain { return c.chains }

var _ layout.Code = (*Code)(nil)
