package rdp

import (
	"fmt"

	"code56/internal/layout"
)

// This file implements RDP's dedicated reconstruction (Corbett et al.,
// FAST 2004 §5): the alternating row/diagonal chain walk. The generic
// peeling decoder reaches the same result; the dedicated version mirrors
// the published algorithm, provides per-case entry points, and is used by
// the benchmarks comparing specialized against generic recovery.

func mod(a, p int) int { return ((a % p) + p) % p }

// rowChain returns the row parity chain of row r (chains 0..p-2).
func (c *Code) rowChain(r int) layout.Chain { return c.chains[r] }

// diagChain returns the diagonal parity chain of diagonal d (chains
// p-1..2p-3).
func (c *Code) diagChain(d int) layout.Chain { return c.chains[c.p-1+d] }

// RecoverSingle rebuilds one failed column in place: data and row-parity
// columns through the row chains, the diagonal column by re-encoding.
func (c *Code) RecoverSingle(s *layout.Stripe, failed int) (layout.DecodeStats, error) {
	p := c.p
	if failed < 0 || failed > p {
		return layout.DecodeStats{}, fmt.Errorf("rdp: column %d out of range [0,%d]", failed, p)
	}
	var st layout.DecodeStats
	read := make(map[layout.Coord]bool)
	if failed == p {
		for d := 0; d < p-1; d++ {
			layout.SolveChainTracked(s, c.diagChain(d), layout.Coord{Row: d, Col: p}, read, &st)
		}
	} else {
		for r := 0; r < p-1; r++ {
			layout.SolveChainTracked(s, c.rowChain(r), layout.Coord{Row: r, Col: failed}, read, &st)
		}
	}
	st.BlocksRead = len(read)
	return st, nil
}

// ReconstructDouble rebuilds any two failed columns in place with the
// published RDP algorithm.
func (c *Code) ReconstructDouble(s *layout.Stripe, colA, colB int) (layout.DecodeStats, error) {
	p := c.p
	if colA == colB {
		return layout.DecodeStats{}, fmt.Errorf("rdp: identical failed columns %d", colA)
	}
	f1, f2 := colA, colB
	if f1 > f2 {
		f1, f2 = f2, f1
	}
	if f1 < 0 || f2 > p {
		return layout.DecodeStats{}, fmt.Errorf("rdp: columns (%d,%d) out of range", colA, colB)
	}
	var st layout.DecodeStats
	read := make(map[layout.Coord]bool)

	switch {
	case f2 == p && f1 == p-1:
		// Both parity columns: re-encode rows, then diagonals (which
		// cover the row parity column).
		for r := 0; r < p-1; r++ {
			layout.SolveChainTracked(s, c.rowChain(r), layout.Coord{Row: r, Col: p - 1}, read, &st)
		}
		for d := 0; d < p-1; d++ {
			layout.SolveChainTracked(s, c.diagChain(d), layout.Coord{Row: d, Col: p}, read, &st)
		}

	case f2 == p:
		// Data column + diagonal parity: rows first, then diagonals.
		for r := 0; r < p-1; r++ {
			layout.SolveChainTracked(s, c.rowChain(r), layout.Coord{Row: r, Col: f1}, read, &st)
		}
		for d := 0; d < p-1; d++ {
			layout.SolveChainTracked(s, c.diagChain(d), layout.Coord{Row: d, Col: p}, read, &st)
		}

	default:
		// Two columns covered by the diagonals (two data columns, or a
		// data column plus the row-parity column): the published
		// alternating walk, in two independent chains.
		c.zigzag(s, f1, f2, read, &st)
	}
	st.BlocksRead = len(read)
	return st, nil
}

// zigzag performs the alternating recovery of two failed columns f1 < f2
// with f2 <= p-1 (both covered by the diagonal chains).
//
// Diagonal d's cell in column j sits at row <d-j> mod p; row p-1 is the
// construction's phantom all-zero row, and diagonal p-1 has no parity. Two
// walks start from the diagonals whose cell in one failed column is the
// phantom — <f2-1> (no real cell in f2) and <f1-1> (none in f1) — and
// alternate a diagonal-chain solve in one column with a row-chain solve in
// the other, each ending when the next diagonal would be the parity-less
// diagonal p-1. Together the walks visit every lost row exactly once (the
// same traversal lemma as Code 5-6's Algorithm 1). When f1 = 0, diagonal
// <f1-1> is the missing diagonal, and the first walk alone covers all rows.
func (c *Code) zigzag(s *layout.Stripe, f1, f2 int, read map[layout.Coord]bool, st *layout.DecodeStats) {
	p := c.p
	// Walk A: recover column f1 via diagonals, column f2 via rows.
	for d := mod(f2-1, p); d != p-1; {
		r := mod(d-f1, p)
		layout.SolveChainTracked(s, c.diagChain(d), layout.Coord{Row: r, Col: f1}, read, st)
		layout.SolveChainTracked(s, c.rowChain(r), layout.Coord{Row: r, Col: f2}, read, st)
		d = mod(r+f2, p)
	}
	// Walk B: the mirror image; absent when f1 = 0 (its starting diagonal
	// is the parity-less one, and walk A already covered every row).
	for d := mod(f1-1, p); d != p-1; {
		r := mod(d-f2, p)
		layout.SolveChainTracked(s, c.diagChain(d), layout.Coord{Row: r, Col: f2}, read, st)
		layout.SolveChainTracked(s, c.rowChain(r), layout.Coord{Row: r, Col: f1}, read, st)
		d = mod(r+f1, p)
	}
}
