package rdp

import (
	"math/rand"
	"testing"

	"code56/internal/layout"
)

// TestReconstructDoubleAllPairs runs the dedicated decoder over every
// failed-column pair and prime, comparing against the original stripe.
func TestReconstructDoubleAllPairs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []int{3, 5, 7, 11, 13} {
		c := MustNew(p)
		orig := layout.NewStripe(c.Geometry(), 32)
		orig.FillRandom(c, r)
		layout.Encode(c, orig)
		for f1 := 0; f1 <= p; f1++ {
			for f2 := f1 + 1; f2 <= p; f2++ {
				s := orig.Clone()
				s.ZeroColumn(f1)
				s.ZeroColumn(f2)
				st, err := c.ReconstructDouble(s, f2, f1) // order-insensitive
				if err != nil {
					t.Fatalf("p=%d (%d,%d): %v", p, f1, f2, err)
				}
				if !s.Equal(orig) {
					t.Fatalf("p=%d (%d,%d): wrong reconstruction", p, f1, f2)
				}
				if st.Recovered != 2*(p-1) {
					t.Errorf("p=%d (%d,%d): recovered %d, want %d", p, f1, f2, st.Recovered, 2*(p-1))
				}
			}
		}
	}
}

func TestRecoverSingleAllColumns(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, p := range []int{5, 7} {
		c := MustNew(p)
		orig := layout.NewStripe(c.Geometry(), 16)
		orig.FillRandom(c, r)
		layout.Encode(c, orig)
		for f := 0; f <= p; f++ {
			s := orig.Clone()
			s.ZeroColumn(f)
			if _, err := c.RecoverSingle(s, f); err != nil {
				t.Fatal(err)
			}
			if !s.Equal(orig) {
				t.Fatalf("p=%d col %d: wrong single recovery", p, f)
			}
		}
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	c := MustNew(5)
	s := layout.NewStripe(c.Geometry(), 16)
	if _, err := c.ReconstructDouble(s, 3, 3); err == nil {
		t.Error("identical columns accepted")
	}
	if _, err := c.ReconstructDouble(s, -1, 2); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := c.ReconstructDouble(s, 0, 7); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := c.RecoverSingle(s, 7); err == nil {
		t.Error("out-of-range single column accepted")
	}
}

// TestDedicatedMatchesPeeling cross-checks against the generic decoder.
func TestDedicatedMatchesPeeling(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := MustNew(7)
	orig := layout.NewStripe(c.Geometry(), 16)
	orig.FillRandom(c, r)
	layout.Encode(c, orig)
	for f1 := 0; f1 <= 7; f1++ {
		for f2 := f1 + 1; f2 <= 7; f2++ {
			a := orig.Clone()
			a.ZeroColumn(f1)
			a.ZeroColumn(f2)
			if _, err := c.ReconstructDouble(a, f1, f2); err != nil {
				t.Fatal(err)
			}
			b := orig.Clone()
			es := layout.EraseColumns(b, f1, f2)
			if _, err := layout.PeelDecode(c, b, es); err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("(%d,%d): dedicated and peeling decoders disagree", f1, f2)
			}
		}
	}
}
