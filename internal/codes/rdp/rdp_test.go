package rdp

import (
	"testing"

	"code56/internal/codes/codetest"
	"code56/internal/layout"
)

func TestConformance(t *testing.T) {
	for _, p := range []int{3, 5, 7, 11, 13} {
		c := MustNew(p)
		codetest.Conformance(t, c, codetest.Expect{
			Rows:        p - 1,
			Cols:        p + 1,
			DataCells:   (p - 1) * (p - 1),
			ParityCells: 2 * (p - 1),
		})
	}
}

func TestRejectsNonPrime(t *testing.T) {
	for _, p := range []int{0, 1, 2, 4, 9} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) should fail", p)
		}
	}
}

// TestUpdateComplexity documents RDP's known non-optimal update complexity:
// data cells on the missing diagonal (p-1) belong only to their row chain
// plus zero diagonals... no: they belong to the row chain only? In RDP every
// data cell is on exactly one of diagonals 0..p-1; cells on diagonal p-1
// have no diagonal parity, so they are covered by 1 chain directly — but
// updating them still dirties every diagonal indirectly through the row
// parity. Structurally: cells on diagonals 0..p-2 are in 2 chains, cells on
// the missing diagonal in 1.
func TestUpdateComplexity(t *testing.T) {
	for _, p := range []int{5, 7, 11} {
		c := MustNew(p)
		missing := 0
		for _, d := range layout.DataElements(c) {
			switch n := len(layout.ChainsCovering(c, d)); n {
			case 2:
			case 1:
				missing++
				if (d.Row+d.Col)%p != p-1 {
					t.Errorf("p=%d: single-chain cell %v not on missing diagonal", p, d)
				}
			default:
				t.Errorf("p=%d: cell %v in %d chains", p, d, n)
			}
		}
		// The missing diagonal has p-1 cells across columns 0..p-1, one of
		// which — (0, p-1) — is the row parity, not data.
		if missing != p-2 {
			t.Errorf("p=%d: %d data cells on missing diagonal, want %d", p, missing, p-2)
		}
		// The row-parity column is covered by diagonal chains (the RDP
		// signature): all but one of its cells.
		covered := 0
		for i := 0; i < p-1; i++ {
			if len(layout.ChainsCovering(c, layout.Coord{Row: i, Col: p - 1})) > 0 {
				covered++
			}
		}
		if covered != p-2 {
			t.Errorf("p=%d: %d row-parity cells covered by diagonals, want %d", p, covered, p-2)
		}
	}
}

// TestPeelable: RDP's double-failure recovery is the classic zig-zag,
// i.e. pure peeling.
func TestPeelable(t *testing.T) {
	codetest.PeelableForColumnPairs(t, MustNew(5))
	codetest.PeelableForColumnPairs(t, MustNew(7))
}

// TestExactTolerance: the code tolerates exactly 2 column failures.
func TestExactTolerance(t *testing.T) {
	codetest.ExactTolerance(t, MustNew(5))
}
