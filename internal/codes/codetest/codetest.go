// Package codetest provides the shared conformance suite every array code
// implementation in this repository must pass: structural validity,
// round-trip encode/verify, and the exhaustive MDS property over all column
// failure combinations.
package codetest

import (
	"math/rand"
	"testing"

	"code56/internal/layout"
)

// Expect describes the geometry facts a code must exhibit.
type Expect struct {
	Rows, Cols  int
	DataCells   int
	ParityCells int
}

// Conformance runs the shared suite against c.
func Conformance(t *testing.T, c layout.Code, e Expect) {
	t.Helper()
	if err := layout.ValidateStructure(c); err != nil {
		t.Fatalf("structure: %v", err)
	}
	g := c.Geometry()
	if g.Rows != e.Rows || g.Cols != e.Cols {
		t.Fatalf("geometry %dx%d, want %dx%d", g.Rows, g.Cols, e.Rows, e.Cols)
	}
	if n := len(layout.DataElements(c)); n != e.DataCells {
		t.Errorf("%d data cells, want %d", n, e.DataCells)
	}
	if n := len(layout.ParityElements(c)); n != e.ParityCells {
		t.Errorf("%d parity cells, want %d", n, e.ParityCells)
	}
	if n := len(c.Chains()); n != e.ParityCells {
		t.Errorf("%d chains, want %d (one per parity cell)", n, e.ParityCells)
	}

	// Encode → Verify round trip; corrupting any single block must break
	// verification (every cell participates in at least one chain).
	s := layout.NewStripe(g, 16)
	s.FillRandom(c, rand.New(rand.NewSource(42)))
	layout.Encode(c, s)
	if !layout.Verify(c, s) {
		t.Fatal("encoded stripe fails verification")
	}
	for r := 0; r < g.Rows; r++ {
		for j := 0; j < g.Cols; j++ {
			b := s.Block(layout.Coord{Row: r, Col: j})
			b[0] ^= 0xff
			if layout.Verify(c, s) {
				t.Fatalf("corruption at (%d,%d) undetected", r, j)
			}
			b[0] ^= 0xff
		}
	}

	if err := layout.CheckMDS(c, 7); err != nil {
		t.Fatal(err)
	}

	// MDS storage efficiency: data/(data+parity) must equal (n-2)/n scaled
	// to the stripe, i.e. parity cells == 2 * rows-worth of two columns?
	// For the codes here the invariant is simply: parity cells equal
	// 2/Cols of all cells.
	if e.ParityCells*g.Cols != 2*g.Elements() {
		t.Errorf("parity cells %d: not 2 columns' worth of a %dx%d stripe", e.ParityCells, g.Rows, g.Cols)
	}
}

// UpdateComplexity asserts that every data element is covered by exactly
// want chains (2 = optimal for RAID-6).
func UpdateComplexity(t *testing.T, c layout.Code, want int) {
	t.Helper()
	for _, d := range layout.DataElements(c) {
		if n := len(layout.ChainsCovering(c, d)); n != want {
			t.Fatalf("element %v in %d chains, want %d", d, n, want)
		}
	}
}

// PeelableForColumnPairs asserts that PeelDecode alone (no elimination)
// recovers every double column erasure — true for every code here except
// EVENODD.
func PeelableForColumnPairs(t *testing.T, c layout.Code) {
	t.Helper()
	g := c.Geometry()
	orig := layout.NewStripe(g, 16)
	orig.FillRandom(c, rand.New(rand.NewSource(13)))
	layout.Encode(c, orig)
	for f1 := 0; f1 < g.Cols; f1++ {
		for f2 := f1 + 1; f2 < g.Cols; f2++ {
			s := orig.Clone()
			es := layout.EraseColumns(s, f1, f2)
			if _, err := layout.PeelDecode(c, s, es); err != nil {
				t.Fatalf("columns (%d,%d): %v", f1, f2, err)
			}
			if !s.Equal(orig) {
				t.Fatalf("columns (%d,%d): wrong contents", f1, f2)
			}
		}
	}
}

// ExactTolerance asserts that the measured column-failure tolerance equals
// the code's declared FaultTolerance(): every 2-column erasure recovers and
// some 3-column erasure does not.
func ExactTolerance(t *testing.T, c layout.Code) {
	t.Helper()
	got, err := layout.MeasureTolerance(c, c.FaultTolerance()+1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got != c.FaultTolerance() {
		t.Fatalf("measured tolerance %d, declared %d", got, c.FaultTolerance())
	}
}
