package codetest

import (
	"math/rand"
	"testing"

	"code56/internal/layout"
)

// DoubleReconstructor is the code-specific recovery API every code package
// provides alongside the layout.Code interface.
type DoubleReconstructor interface {
	layout.Code
	RecoverSingle(s *layout.Stripe, failed int) (layout.DecodeStats, error)
	ReconstructDouble(s *layout.Stripe, colA, colB int) (layout.DecodeStats, error)
}

// DedicatedDecoder runs a code's own recovery entry points over every
// single and double column failure and checks the results byte for byte.
func DedicatedDecoder(t *testing.T, c DoubleReconstructor) {
	t.Helper()
	g := c.Geometry()
	orig := layout.NewStripe(g, 32)
	orig.FillRandom(c, rand.New(rand.NewSource(21)))
	layout.Encode(c, orig)
	for f1 := 0; f1 < g.Cols; f1++ {
		s := orig.Clone()
		s.ZeroColumn(f1)
		if _, err := c.RecoverSingle(s, f1); err != nil {
			t.Fatalf("single %d: %v", f1, err)
		}
		if !s.Equal(orig) {
			t.Fatalf("single %d: wrong recovery", f1)
		}
		for f2 := f1 + 1; f2 < g.Cols; f2++ {
			s := orig.Clone()
			s.ZeroColumn(f1)
			s.ZeroColumn(f2)
			st, err := c.ReconstructDouble(s, f2, f1)
			if err != nil {
				t.Fatalf("double (%d,%d): %v", f1, f2, err)
			}
			if !s.Equal(orig) {
				t.Fatalf("double (%d,%d): wrong recovery", f1, f2)
			}
			if st.Recovered != 2*g.Rows {
				t.Errorf("double (%d,%d): recovered %d cells, want %d", f1, f2, st.Recovered, 2*g.Rows)
			}
		}
	}
}
