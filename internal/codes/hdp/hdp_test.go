package hdp

import (
	"testing"

	"code56/internal/codes/codetest"
	"code56/internal/layout"
)

func TestConformance(t *testing.T) {
	for _, p := range []int{5, 7, 11, 13} {
		c := MustNew(p)
		codetest.Conformance(t, c, codetest.Expect{
			Rows:        p - 1,
			Cols:        p - 1,
			DataCells:   (p - 1) * (p - 3),
			ParityCells: 2 * (p - 1),
		})
	}
}

func TestRejectsBadP(t *testing.T) {
	for _, p := range []int{0, 1, 2, 3, 4, 6, 9} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) should fail", p)
		}
	}
}

// TestParityOnBothDiagonals: the load-balance property — parities occupy the
// two diagonals of the square stripe, so every disk carries exactly two
// parity cells per stripe.
func TestParityOnBothDiagonals(t *testing.T) {
	p := 7
	c := MustNew(p)
	perCol := make([]int, p-1)
	for r := 0; r < p-1; r++ {
		for j := 0; j < p-1; j++ {
			if c.Kind(r, j).IsParity() {
				perCol[j]++
			}
		}
	}
	for j, n := range perCol {
		if n != 2 {
			t.Errorf("column %d carries %d parity cells, want 2", j, n)
		}
	}
}

// TestUpdateComplexity documents HDP's structure: every data cell is in
// exactly 2 chains, but horizontal chains also cover the anti-diagonal
// parity cells (the "Medium" single-write cost of the paper's Table III:
// updating a data element dirties its anti-diagonal parity, whose row's
// horizontal parity must then change too).
func TestUpdateComplexity(t *testing.T) {
	for _, p := range []int{5, 7, 11} {
		c := MustNew(p)
		codetest.UpdateComplexity(t, c, 2)
		covered := 0
		for _, pe := range layout.ParityElements(c) {
			if c.Kind(pe.Row, pe.Col) == layout.ParityA {
				if n := len(layout.ChainsCovering(c, pe)); n != 1 {
					t.Errorf("p=%d: anti-diagonal parity %v in %d chains, want 1", p, pe, n)
				}
				covered++
			}
		}
		if covered != p-1 {
			t.Errorf("p=%d: %d anti-diagonal parities, want %d", p, covered, p-1)
		}
	}
}

func TestPeelable(t *testing.T) {
	codetest.PeelableForColumnPairs(t, MustNew(5))
	codetest.PeelableForColumnPairs(t, MustNew(7))
}

// TestExactTolerance: the code tolerates exactly 2 column failures.
func TestExactTolerance(t *testing.T) {
	codetest.ExactTolerance(t, MustNew(5))
}

// TestDedicatedDecoder exercises the code-specific recovery entry points.
func TestDedicatedDecoder(t *testing.T) {
	codetest.DedicatedDecoder(t, MustNew(5))
	codetest.DedicatedDecoder(t, MustNew(7))
	s := layout.NewStripe(MustNew(5).Geometry(), 8)
	if _, err := MustNew(5).ReconstructDouble(s, 1, 1); err == nil {
		t.Error("identical columns accepted")
	}
	if _, err := MustNew(5).RecoverSingle(s, 99); err == nil {
		t.Error("out-of-range column accepted")
	}
}
