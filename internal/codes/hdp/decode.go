package hdp

import (
	"fmt"

	"code56/internal/layout"
)

// HDP's published reconstruction alternates between the horizontal-diagonal
// and anti-diagonal chains; the framework's peeling decoder performs that
// walk (anti-diagonal chains before the horizontal chains that cover their
// parities). These methods are the code-specific entry points with
// validation and the no-elimination guarantee.

// RecoverSingle rebuilds one failed column in place.
func (c *Code) RecoverSingle(s *layout.Stripe, failed int) (layout.DecodeStats, error) {
	if failed < 0 || failed >= c.p-1 {
		return layout.DecodeStats{}, fmt.Errorf("hdp: column %d out of range [0,%d)", failed, c.p-1)
	}
	return c.reconstruct(s, failed)
}

// ReconstructDouble rebuilds any two failed columns in place.
func (c *Code) ReconstructDouble(s *layout.Stripe, colA, colB int) (layout.DecodeStats, error) {
	if colA == colB {
		return layout.DecodeStats{}, fmt.Errorf("hdp: identical failed columns %d", colA)
	}
	for _, col := range []int{colA, colB} {
		if col < 0 || col >= c.p-1 {
			return layout.DecodeStats{}, fmt.Errorf("hdp: column %d out of range [0,%d)", col, c.p-1)
		}
	}
	return c.reconstruct(s, colA, colB)
}

func (c *Code) reconstruct(s *layout.Stripe, cols ...int) (layout.DecodeStats, error) {
	es := make(layout.ErasureSet)
	for _, col := range cols {
		for r := 0; r < c.p-1; r++ {
			es[layout.Coord{Row: r, Col: col}] = true
		}
	}
	st, err := layout.PeelDecode(c, s, es)
	if err != nil {
		return st, fmt.Errorf("hdp: recovery chains stalled: %w", err)
	}
	return st, nil
}
