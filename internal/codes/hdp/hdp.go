// Package hdp implements the HDP code (Wu, He et al., DSN 2011), the
// Horizontal-Diagonal Parity RAID-6 MDS code for p-1 disks used by the
// paper as a direct-conversion baseline. Its defining feature is load
// balance: the two parity families occupy the two diagonals of a square
// stripe rather than dedicated columns.
//
// Geometry: (p-1) rows × (p-1) columns, p prime.
//
//   - Horizontal-diagonal parity at C[i][i] (main diagonal) covers the
//     entire row i — including the anti-diagonal parity element of that
//     row, which is what the "horizontal-diagonal" name refers to.
//   - Anti-diagonal parity at C[i][p-2-i] covers the data elements on the
//     wrapped diagonal (r-j) mod p == i+1 (the anti-diagonal parity cell on
//     that line is excluded; horizontal parity cells lie only on the line
//     (r-j) == 0, which no chain uses).
//
// Because horizontal chains cover anti-diagonal parity cells, a data write
// dirties up to three parity cells — the "Medium" single-write performance
// the paper's Table III assigns HDP. The construction is validated
// exhaustively (all double column erasures, several primes) in the package
// tests.
package hdp

import (
	"fmt"

	"code56/internal/layout"
)

// Code is HDP for p-1 disks. It implements layout.Code.
type Code struct {
	p      int
	chains []layout.Chain
}

// New returns HDP for prime p (p-1 disks).
func New(p int) (*Code, error) {
	if !layout.IsPrime(p) || p < 5 {
		return nil, fmt.Errorf("hdp: p = %d must be a prime >= 5", p)
	}
	c := &Code{p: p}
	c.chains = c.buildChains()
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(p int) *Code {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the prime parameter; the code spans P()-1 disks.
func (c *Code) P() int { return c.p }

// Name implements layout.Code.
func (c *Code) Name() string { return "hdp" }

// Geometry implements layout.Code: (p-1) rows × (p-1) columns.
func (c *Code) Geometry() layout.Geometry {
	return layout.Geometry{Rows: c.p - 1, Cols: c.p - 1, P: c.p}
}

// FaultTolerance implements layout.Code.
func (c *Code) FaultTolerance() int { return 2 }

// Kind implements layout.Code.
func (c *Code) Kind(row, col int) layout.Kind {
	switch {
	case row == col:
		return layout.ParityH
	case col == c.p-2-row:
		return layout.ParityA
	default:
		return layout.Data
	}
}

func (c *Code) buildChains() []layout.Chain {
	p := c.p
	chains := make([]layout.Chain, 0, 2*(p-1))
	for i := 0; i < p-1; i++ {
		ch := layout.Chain{Kind: layout.ParityH, Parity: layout.Coord{Row: i, Col: i}}
		for j := 0; j < p-1; j++ {
			if j != i {
				ch.Covers = append(ch.Covers, layout.Coord{Row: i, Col: j})
			}
		}
		chains = append(chains, ch)
	}
	for i := 0; i < p-1; i++ {
		ch := layout.Chain{Kind: layout.ParityA, Parity: layout.Coord{Row: i, Col: p - 2 - i}}
		line := (i + 1) % p
		for r := 0; r < p-1; r++ {
			j := ((r-line)%p + p) % p
			if j > p-2 || j == p-2-r {
				continue // off-grid column, or the anti-diagonal parity cell itself
			}
			ch.Covers = append(ch.Covers, layout.Coord{Row: r, Col: j})
		}
		chains = append(chains, ch)
	}
	return chains
}

// Chains implements layout.Code.
func (c *Code) Chains() []layout.Chain { return c.chains }

var _ layout.Code = (*Code)(nil)
