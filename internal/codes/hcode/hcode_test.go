package hcode

import (
	"testing"

	"code56/internal/codes/codetest"
	"code56/internal/layout"
)

func TestConformance(t *testing.T) {
	for _, p := range []int{3, 5, 7, 11, 13} {
		c := MustNew(p)
		codetest.Conformance(t, c, codetest.Expect{
			Rows:        p - 1,
			Cols:        p + 1,
			DataCells:   (p - 1) * (p - 1),
			ParityCells: 2 * (p - 1),
		})
	}
}

func TestRejectsNonPrime(t *testing.T) {
	for _, p := range []int{0, 1, 2, 4, 10} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) should fail", p)
		}
	}
}

// TestUpdateComplexity: H-Code has optimal update complexity (the property
// its paper optimizes partial-stripe writes around).
func TestUpdateComplexity(t *testing.T) {
	for _, p := range []int{5, 7, 11} {
		codetest.UpdateComplexity(t, MustNew(p), 2)
	}
}

// TestAntiDiagonalPlacement: horizontal parities sit at (i, p-2-i), the
// layout that makes H-Code "suitable for conversion from right-asymmetric
// RAID-5" per the Code 5-6 paper's §V-A.
func TestAntiDiagonalPlacement(t *testing.T) {
	p := 7
	c := MustNew(p)
	for i := 0; i < p-1; i++ {
		if k := c.Kind(i, p-2-i); k != layout.ParityH {
			t.Errorf("Kind(%d,%d) = %v, want ParityH", i, p-2-i, k)
		}
	}
	// Column p-1 is pure data; column p pure diagonal parity.
	for i := 0; i < p-1; i++ {
		if k := c.Kind(i, p-1); k != layout.Data {
			t.Errorf("Kind(%d,%d) = %v, want Data", i, p-1, k)
		}
		if k := c.Kind(i, p); k != layout.ParityD {
			t.Errorf("Kind(%d,%d) = %v, want ParityD", i, p, k)
		}
	}
}

func TestPeelable(t *testing.T) {
	codetest.PeelableForColumnPairs(t, MustNew(5))
	codetest.PeelableForColumnPairs(t, MustNew(7))
}

// TestExactTolerance: the code tolerates exactly 2 column failures.
func TestExactTolerance(t *testing.T) {
	codetest.ExactTolerance(t, MustNew(5))
}

// TestDedicatedDecoder exercises the code-specific recovery entry points.
func TestDedicatedDecoder(t *testing.T) {
	codetest.DedicatedDecoder(t, MustNew(5))
	codetest.DedicatedDecoder(t, MustNew(7))
	s := layout.NewStripe(MustNew(5).Geometry(), 8)
	if _, err := MustNew(5).ReconstructDouble(s, 1, 1); err == nil {
		t.Error("identical columns accepted")
	}
	if _, err := MustNew(5).RecoverSingle(s, 99); err == nil {
		t.Error("out-of-range column accepted")
	}
}
