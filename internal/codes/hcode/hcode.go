// Package hcode implements H-Code (Wu, He et al., IPDPS 2011), the hybrid
// RAID-6 MDS code for p+1 disks whose horizontal parities sit on an
// anti-diagonal among the data columns while the diagonal parities occupy a
// dedicated column — the parity layout Code 5-6 (same authors) later reused
// for migration: structurally, an H-Code stripe is a Code 5-6 stripe plus
// one extra pure-data column inserted before the diagonal parity column.
//
// Geometry: (p-1) rows × (p+1) columns, p prime. Columns 0..p-2 carry data
// plus the anti-diagonal of horizontal parities (row i's parity at column
// p-2-i), column p-1 is pure data, column p holds the diagonal parities:
//
//	horizontal: C[i][p-2-i] = XOR_{j=0..p-1, j != p-2-i} C[i][j]
//	diagonal:   C[i][p]     = XOR_{j=0..p-1, j != i} C[(i-j-1) mod p][j]
//
// The construction is validated exhaustively (all double column erasures,
// several primes) in the package tests; published H-Code presentations that
// index columns differently are equivalent up to disk relabeling.
package hcode

import (
	"fmt"

	"code56/internal/layout"
)

// Code is H-Code for p+1 disks. It implements layout.Code.
type Code struct {
	p      int
	chains []layout.Chain
}

// New returns H-Code for prime p (p+1 disks).
func New(p int) (*Code, error) {
	if !layout.IsPrime(p) || p < 3 {
		return nil, fmt.Errorf("hcode: p = %d must be a prime >= 3", p)
	}
	c := &Code{p: p}
	c.chains = c.buildChains()
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(p int) *Code {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the prime parameter; the code spans P()+1 disks.
func (c *Code) P() int { return c.p }

// Name implements layout.Code.
func (c *Code) Name() string { return "hcode" }

// Geometry implements layout.Code: (p-1) rows × (p+1) columns.
func (c *Code) Geometry() layout.Geometry {
	return layout.Geometry{Rows: c.p - 1, Cols: c.p + 1, P: c.p}
}

// FaultTolerance implements layout.Code.
func (c *Code) FaultTolerance() int { return 2 }

// Kind implements layout.Code.
func (c *Code) Kind(row, col int) layout.Kind {
	switch {
	case col == c.p:
		return layout.ParityD
	case col == c.p-2-row:
		return layout.ParityH
	default:
		return layout.Data
	}
}

func (c *Code) buildChains() []layout.Chain {
	p := c.p
	chains := make([]layout.Chain, 0, 2*(p-1))
	for i := 0; i < p-1; i++ {
		ch := layout.Chain{Kind: layout.ParityH, Parity: layout.Coord{Row: i, Col: p - 2 - i}}
		for j := 0; j <= p-1; j++ {
			if j == p-2-i {
				continue
			}
			ch.Covers = append(ch.Covers, layout.Coord{Row: i, Col: j})
		}
		chains = append(chains, ch)
	}
	for i := 0; i < p-1; i++ {
		ch := layout.Chain{Kind: layout.ParityD, Parity: layout.Coord{Row: i, Col: p}}
		for j := 0; j <= p-1; j++ {
			if j == i {
				continue
			}
			r := ((i-j-1)%p + p) % p
			ch.Covers = append(ch.Covers, layout.Coord{Row: r, Col: j})
		}
		chains = append(chains, ch)
	}
	return chains
}

// Chains implements layout.Code.
func (c *Code) Chains() []layout.Chain { return c.chains }

var _ layout.Code = (*Code)(nil)
