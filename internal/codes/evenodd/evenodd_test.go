package evenodd

import (
	"errors"
	"math/rand"
	"testing"

	"code56/internal/codes/codetest"
	"code56/internal/layout"
	"code56/internal/xorblk"
)

func TestConformance(t *testing.T) {
	for _, p := range []int{3, 5, 7, 11, 13} {
		c := MustNew(p)
		codetest.Conformance(t, c, codetest.Expect{
			Rows:        p - 1,
			Cols:        p + 2,
			DataCells:   (p - 1) * p,
			ParityCells: 2 * (p - 1),
		})
	}
}

func TestRejectsNonPrime(t *testing.T) {
	for _, p := range []int{0, 1, 2, 4, 6} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) should fail", p)
		}
	}
}

// TestSAdjuster verifies the chain formulation against EVENODD's original
// definition: diagonal parity i = S XOR (XOR of diagonal i), with S the XOR
// of diagonal p-1.
func TestSAdjuster(t *testing.T) {
	for _, p := range []int{5, 7} {
		c := MustNew(p)
		s := layout.NewStripe(c.Geometry(), 16)
		s.FillRandom(c, rand.New(rand.NewSource(5)))
		layout.Encode(c, s)

		adj := make([]byte, 16)
		for _, co := range c.diagonal(p - 1) {
			xorblk.Xor(adj, s.Block(co))
		}
		for d := 0; d < p-1; d++ {
			want := append([]byte(nil), adj...)
			for _, co := range c.diagonal(d) {
				xorblk.Xor(want, s.Block(co))
			}
			got := s.Block(layout.Coord{Row: d, Col: p + 1})
			if !xorblk.Equal(got, want) {
				t.Errorf("p=%d: diagonal parity %d does not match S-adjusted definition", p, d)
			}
		}
	}
}

// TestNotPeelable documents that EVENODD double data-column failures defeat
// pure peeling (every diagonal chain shares the S diagonal), which is why
// the framework's GF(2) elimination decoder exists.
func TestNotPeelable(t *testing.T) {
	c := MustNew(5)
	orig := layout.NewStripe(c.Geometry(), 16)
	orig.FillRandom(c, rand.New(rand.NewSource(6)))
	layout.Encode(c, orig)
	s := orig.Clone()
	es := layout.EraseColumns(s, 0, 1)
	_, err := layout.PeelDecode(c, s, es)
	if !errors.Is(err, layout.ErrUnrecoverable) {
		t.Fatalf("expected peeling to get stuck on EVENODD, got %v", err)
	}
	// ... and elimination finishes the job on the partial state.
	if _, err := layout.SolveDecode(c, s, es); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(orig) {
		t.Fatal("elimination recovery produced wrong contents")
	}
}

// TestUpdateComplexity documents EVENODD's high update cost: cells on the S
// diagonal are covered by *every* diagonal chain plus their row chain.
func TestUpdateComplexity(t *testing.T) {
	p := 5
	c := MustNew(p)
	for _, d := range layout.DataElements(c) {
		n := len(layout.ChainsCovering(c, d))
		onS := (d.Row+d.Col)%p == p-1
		want := 2
		if onS {
			want = p // row chain + all p-1 diagonal chains
		}
		if n != want {
			t.Errorf("cell %v (S diagonal=%v): in %d chains, want %d", d, onS, n, want)
		}
	}
}

// TestExactTolerance: the code tolerates exactly 2 column failures.
func TestExactTolerance(t *testing.T) {
	codetest.ExactTolerance(t, MustNew(5))
}
