// Package evenodd implements the EVENODD code (Blaum, Brady, Bruck, Menon,
// IEEE ToC 1995), the classic horizontal RAID-6 MDS code used as a
// conversion baseline by the paper.
//
// An EVENODD stripe has p-1 rows and p+2 columns (p prime): columns 0..p-1
// hold data, column p the row parity, and column p+1 the diagonal parity.
// Diagonal parity i equals S ⊕ XOR(diagonal i), where S is the XOR of the
// special diagonal p-1. Expressed as a pure parity chain, diagonal parity i
// therefore covers the union of diagonal i and diagonal p-1 — a formulation
// that lets the shared chain framework encode and (via GF(2) elimination)
// decode EVENODD without special cases. Double data-column failures are not
// peelable in this representation; the framework's elimination decoder
// handles them, which the tests assert explicitly.
package evenodd

import (
	"fmt"

	"code56/internal/layout"
)

// Code is the EVENODD code for p+2 disks. It implements layout.Code.
type Code struct {
	p      int
	chains []layout.Chain
}

// New returns EVENODD for prime p (p+2 disks).
func New(p int) (*Code, error) {
	if !layout.IsPrime(p) || p < 3 {
		return nil, fmt.Errorf("evenodd: p = %d must be a prime >= 3", p)
	}
	c := &Code{p: p}
	c.chains = c.buildChains()
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(p int) *Code {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the prime parameter; the code spans P()+2 disks.
func (c *Code) P() int { return c.p }

// Name implements layout.Code.
func (c *Code) Name() string { return "evenodd" }

// Geometry implements layout.Code: (p-1) rows × (p+2) columns.
func (c *Code) Geometry() layout.Geometry {
	return layout.Geometry{Rows: c.p - 1, Cols: c.p + 2, P: c.p}
}

// FaultTolerance implements layout.Code.
func (c *Code) FaultTolerance() int { return 2 }

// Kind implements layout.Code.
func (c *Code) Kind(row, col int) layout.Kind {
	switch col {
	case c.p:
		return layout.ParityH
	case c.p + 1:
		return layout.ParityD
	default:
		return layout.Data
	}
}

// diagonal returns the data cells on diagonal d: (r, j) with
// (r+j) mod p == d, 0 <= j <= p-1, 0 <= r <= p-2.
func (c *Code) diagonal(d int) []layout.Coord {
	p := c.p
	var cells []layout.Coord
	for j := 0; j <= p-1; j++ {
		r := ((d-j)%p + p) % p
		if r == p-1 {
			continue
		}
		cells = append(cells, layout.Coord{Row: r, Col: j})
	}
	return cells
}

func (c *Code) buildChains() []layout.Chain {
	p := c.p
	chains := make([]layout.Chain, 0, 2*(p-1))
	for i := 0; i < p-1; i++ {
		ch := layout.Chain{Kind: layout.ParityH, Parity: layout.Coord{Row: i, Col: p}}
		for j := 0; j <= p-1; j++ {
			ch.Covers = append(ch.Covers, layout.Coord{Row: i, Col: j})
		}
		chains = append(chains, ch)
	}
	special := c.diagonal(p - 1) // the S adjuster
	for d := 0; d < p-1; d++ {
		ch := layout.Chain{Kind: layout.ParityD, Parity: layout.Coord{Row: d, Col: p + 1}}
		ch.Covers = append(ch.Covers, c.diagonal(d)...)
		ch.Covers = append(ch.Covers, special...)
		chains = append(chains, ch)
	}
	return chains
}

// Chains implements layout.Code.
func (c *Code) Chains() []layout.Chain { return c.chains }

var _ layout.Code = (*Code)(nil)
