package evenodd

import (
	"math/rand"
	"testing"

	"code56/internal/layout"
)

// TestReconstructDoubleAllPairs verifies the dedicated decoder against the
// original stripe for every failed-column pair and several primes —
// including the mixed data/parity cases and the S-recovery paths.
func TestReconstructDoubleAllPairs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []int{3, 5, 7, 11, 13} {
		c := MustNew(p)
		orig := layout.NewStripe(c.Geometry(), 32)
		orig.FillRandom(c, r)
		layout.Encode(c, orig)
		for f1 := 0; f1 < p+2; f1++ {
			for f2 := f1 + 1; f2 < p+2; f2++ {
				s := orig.Clone()
				s.ZeroColumn(f1)
				s.ZeroColumn(f2)
				st, err := c.ReconstructDouble(s, f2, f1) // order must not matter
				if err != nil {
					t.Fatalf("p=%d (%d,%d): %v", p, f1, f2, err)
				}
				if !s.Equal(orig) {
					t.Fatalf("p=%d (%d,%d): wrong reconstruction", p, f1, f2)
				}
				if st.Recovered != 2*(p-1) {
					t.Errorf("p=%d (%d,%d): recovered %d, want %d", p, f1, f2, st.Recovered, 2*(p-1))
				}
			}
		}
	}
}

func TestRecoverSingleAllColumns(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, p := range []int{5, 7} {
		c := MustNew(p)
		orig := layout.NewStripe(c.Geometry(), 16)
		orig.FillRandom(c, r)
		layout.Encode(c, orig)
		for f := 0; f < p+2; f++ {
			s := orig.Clone()
			s.ZeroColumn(f)
			if _, err := c.RecoverSingle(s, f); err != nil {
				t.Fatal(err)
			}
			if !s.Equal(orig) {
				t.Fatalf("p=%d col %d: wrong single recovery", p, f)
			}
		}
	}
}

func TestReconstructDoubleRejectsBadInput(t *testing.T) {
	c := MustNew(5)
	s := layout.NewStripe(c.Geometry(), 16)
	if _, err := c.ReconstructDouble(s, 2, 2); err == nil {
		t.Error("identical columns accepted")
	}
	if _, err := c.ReconstructDouble(s, -1, 2); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := c.ReconstructDouble(s, 0, 9); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := c.RecoverSingle(s, 99); err == nil {
		t.Error("out-of-range single column accepted")
	}
}

// TestDedicatedMatchesGeneric cross-checks the zig-zag against the generic
// elimination decoder on identical erasures.
func TestDedicatedMatchesGeneric(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := 7
	c := MustNew(p)
	orig := layout.NewStripe(c.Geometry(), 16)
	orig.FillRandom(c, r)
	layout.Encode(c, orig)
	for f1 := 0; f1 < p; f1++ {
		for f2 := f1 + 1; f2 < p; f2++ {
			a := orig.Clone()
			a.ZeroColumn(f1)
			a.ZeroColumn(f2)
			if _, err := c.ReconstructDouble(a, f1, f2); err != nil {
				t.Fatal(err)
			}
			b := orig.Clone()
			es := layout.EraseColumns(b, f1, f2)
			if _, err := layout.SolveDecode(c, b, es); err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("(%d,%d): dedicated and generic decoders disagree", f1, f2)
			}
		}
	}
}

// BenchmarkDecodeDedicatedVsGeneric quantifies the win of the dedicated
// algorithm over GF(2) elimination.
func BenchmarkDecodeDedicatedVsGeneric(b *testing.B) {
	c := MustNew(13)
	orig := layout.NewStripe(c.Geometry(), 4096)
	orig.FillRandom(c, rand.New(rand.NewSource(4)))
	layout.Encode(c, orig)
	bytes := int64(2 * c.Geometry().Rows * 4096)

	b.Run("dedicated", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := orig.Clone()
			s.ZeroColumn(1)
			s.ZeroColumn(4)
			b.StartTimer()
			if _, err := c.ReconstructDouble(s, 1, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("elimination", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := orig.Clone()
			es := layout.EraseColumns(s, 1, 4)
			b.StartTimer()
			if _, err := layout.SolveDecode(c, s, es); err != nil {
				b.Fatal(err)
			}
		}
	})
}
