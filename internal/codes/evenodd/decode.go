package evenodd

import (
	"fmt"

	"code56/internal/layout"
	"code56/internal/xorblk"
)

// This file implements EVENODD's dedicated reconstruction algorithms
// (Blaum et al. 1995, §III): unlike the repository's generic GF(2)
// elimination decoder — which EVENODD needs because its S-adjusted
// diagonal chains defeat plain peeling — the dedicated decoder recovers the
// S adjuster first and then walks the classic zig-zag, costing O(p²) block
// XORs instead of elimination overhead.

func mod(a, p int) int { return ((a % p) + p) % p }

// computeS recomputes the S adjuster as the XOR of all row parities and all
// diagonal parities (both parity columns must be intact).
func (c *Code) computeS(s *layout.Stripe, dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < c.p-1; r++ {
		xorblk.Xor(dst, s.Block(layout.Coord{Row: r, Col: c.p}))
		xorblk.Xor(dst, s.Block(layout.Coord{Row: r, Col: c.p + 1}))
	}
}

// sFromDiagonal recomputes S using the diagonal that passes through the
// phantom cell of failed data column f: that diagonal has no surviving
// unknowns, so its chain yields S directly. Requires the diagonal parity
// column intact.
func (c *Code) sFromDiagonal(s *layout.Stripe, f int, dst []byte) {
	p := c.p
	dStar := mod(p-1+f, p)
	for i := range dst {
		dst[i] = 0
	}
	if dStar != p-1 {
		xorblk.Xor(dst, s.Block(layout.Coord{Row: dStar, Col: p + 1}))
	}
	// XOR the diagonal's surviving data cells (column f's member is the
	// phantom row, i.e. zero).
	for _, co := range c.diagonal(dStar) {
		if co.Col != f {
			xorblk.Xor(dst, s.Block(co))
		}
	}
}

// recoverDataColumnByRows rebuilds data column f from the row parities.
func (c *Code) recoverDataColumnByRows(s *layout.Stripe, f int, st *layout.DecodeStats, read map[layout.Coord]bool) {
	p := c.p
	for r := 0; r < p-1; r++ {
		ch := c.chains[r] // row chain r
		layout.SolveChainTracked(s, ch, layout.Coord{Row: r, Col: f}, read, st)
	}
}

// recoverDataColumnByDiagonals rebuilds data column f from the diagonal
// parities and S (row parity column unavailable).
func (c *Code) recoverDataColumnByDiagonals(s *layout.Stripe, f int, sAdj []byte, st *layout.DecodeStats, read map[layout.Coord]bool) {
	p := c.p
	acc := make([]byte, s.BlockSize)
	for r := 0; r < p-1; r++ {
		d := mod(r+f, p)
		copy(acc, sAdj)
		if d != p-1 {
			xorblk.Xor(acc, s.Block(layout.Coord{Row: d, Col: p + 1}))
			read[layout.Coord{Row: d, Col: p + 1}] = true
			st.XORs++
		}
		for _, co := range c.diagonal(d) {
			if co.Col == f {
				continue
			}
			xorblk.Xor(acc, s.Block(co))
			read[co] = true
			st.XORs++
		}
		s.SetBlock(layout.Coord{Row: r, Col: f}, acc)
		st.Recovered++
	}
}

// reencodeColumn recomputes a parity column (col == p for row parity,
// col == p+1 for diagonal parity) from intact data.
func (c *Code) reencodeColumn(s *layout.Stripe, col int, st *layout.DecodeStats, read map[layout.Coord]bool) {
	for _, ch := range c.chains {
		if ch.Parity.Col == col {
			layout.SolveChainTracked(s, ch, ch.Parity, read, st)
		}
	}
}

// RecoverSingle rebuilds one failed column in place using the cheapest
// dedicated path.
func (c *Code) RecoverSingle(s *layout.Stripe, failed int) (layout.DecodeStats, error) {
	p := c.p
	if failed < 0 || failed > p+1 {
		return layout.DecodeStats{}, fmt.Errorf("evenodd: column %d out of range [0,%d]", failed, p+1)
	}
	var st layout.DecodeStats
	read := make(map[layout.Coord]bool)
	switch failed {
	case p, p + 1:
		c.reencodeColumn(s, failed, &st, read)
	default:
		c.recoverDataColumnByRows(s, failed, &st, read)
	}
	st.BlocksRead = len(read)
	return st, nil
}

// ReconstructDouble rebuilds any two failed columns in place using the
// dedicated EVENODD algorithm.
func (c *Code) ReconstructDouble(s *layout.Stripe, colA, colB int) (layout.DecodeStats, error) {
	p := c.p
	if colA == colB {
		return layout.DecodeStats{}, fmt.Errorf("evenodd: identical failed columns %d", colA)
	}
	f1, f2 := colA, colB
	if f1 > f2 {
		f1, f2 = f2, f1
	}
	if f1 < 0 || f2 > p+1 {
		return layout.DecodeStats{}, fmt.Errorf("evenodd: columns (%d,%d) out of range", colA, colB)
	}
	var st layout.DecodeStats
	read := make(map[layout.Coord]bool)

	switch {
	case f1 == p && f2 == p+1:
		// Both parity columns: re-encode from data.
		c.reencodeColumn(s, p, &st, read)
		c.reencodeColumn(s, p+1, &st, read)

	case f2 == p+1:
		// Data column + diagonal parity: rows first, then diagonals.
		c.recoverDataColumnByRows(s, f1, &st, read)
		c.reencodeColumn(s, p+1, &st, read)

	case f2 == p:
		// Data column + row parity: recover S from the phantom diagonal,
		// rebuild the data column via diagonals, re-encode row parities.
		sAdj := make([]byte, s.BlockSize)
		c.sFromDiagonal(s, f1, sAdj)
		c.recoverDataColumnByDiagonals(s, f1, sAdj, &st, read)
		c.reencodeColumn(s, p, &st, read)

	default:
		// Two data columns: the classic zig-zag.
		c.zigzag(s, f1, f2, &st, read)
	}
	st.BlocksRead = len(read)
	return st, nil
}

// zigzag implements the double-data-column reconstruction: compute S (both
// parity columns intact), form row and diagonal syndromes, then alternate
// between the two failed columns starting from the phantom row.
func (c *Code) zigzag(s *layout.Stripe, i, j int, st *layout.DecodeStats, read map[layout.Coord]bool) {
	p := c.p
	bs := s.BlockSize

	sAdj := make([]byte, bs)
	c.computeS(s, sAdj)
	for r := 0; r < p-1; r++ {
		read[layout.Coord{Row: r, Col: p}] = true
		read[layout.Coord{Row: r, Col: p + 1}] = true
	}
	st.XORs += 2*(p-1) - 1

	// Row syndromes R[u] = C[u][i] ^ C[u][j]; phantom row p-1 is zero.
	rowSyn := make([][]byte, p)
	for u := 0; u < p-1; u++ {
		acc := make([]byte, bs)
		copy(acc, s.Block(layout.Coord{Row: u, Col: p}))
		for col := 0; col <= p-1; col++ {
			if col == i || col == j {
				continue
			}
			co := layout.Coord{Row: u, Col: col}
			xorblk.Xor(acc, s.Block(co))
			read[co] = true
			st.XORs++
		}
		rowSyn[u] = acc
	}
	rowSyn[p-1] = make([]byte, bs)

	// Diagonal syndromes Dg[d] = C[<d-i>][i] ^ C[<d-j>][j].
	diagSyn := make([][]byte, p)
	for d := 0; d < p; d++ {
		acc := make([]byte, bs)
		copy(acc, sAdj)
		if d != p-1 {
			xorblk.Xor(acc, s.Block(layout.Coord{Row: d, Col: p + 1}))
			st.XORs++
		}
		for _, co := range c.diagonal(d) {
			if co.Col == i || co.Col == j {
				continue
			}
			xorblk.Xor(acc, s.Block(co))
			read[co] = true
			st.XORs++
		}
		diagSyn[d] = acc
	}

	// Zig-zag from the phantom cell (p-1, i).
	prev := make([]byte, bs) // C[cur][i], initially the phantom zero
	cur := p - 1
	for k := 0; k < p-1; k++ {
		d := mod(cur+i, p)
		rj := mod(d-j, p)
		// C[rj][j] = Dg[d] ^ C[cur][i]
		cellJ := make([]byte, bs)
		xorblk.XorInto(cellJ, diagSyn[d], prev)
		st.XORs++
		s.SetBlock(layout.Coord{Row: rj, Col: j}, cellJ)
		st.Recovered++
		// C[rj][i] = R[rj] ^ C[rj][j]
		cellI := make([]byte, bs)
		xorblk.XorInto(cellI, rowSyn[rj], cellJ)
		st.XORs++
		s.SetBlock(layout.Coord{Row: rj, Col: i}, cellI)
		st.Recovered++
		prev = cellI
		cur = rj
	}
}
