package layout

import (
	"errors"
	"fmt"

	"code56/internal/xorblk"
)

// ErrUnrecoverable is returned when an erasure pattern exceeds what the
// code's parity chains can solve.
var ErrUnrecoverable = errors.New("layout: erasure pattern is unrecoverable")

// DecodeStats reports the work a reconstruction performed, in the paper's
// cost units.
type DecodeStats struct {
	// XORs is the number of block XOR operations.
	XORs int
	// BlocksRead is the number of *distinct* surviving blocks read. The
	// hybrid single-disk recovery analysis (paper §III-E-4, Fig. 6) is a
	// comparison of this quantity between recovery strategies.
	BlocksRead int
	// Recovered is the number of erased blocks reconstructed.
	Recovered int
	// UsedElimination reports whether the Gaussian-elimination fallback
	// was needed (peeling alone was insufficient).
	UsedElimination bool
}

// PeelDecode recovers erased elements by repeatedly finding a parity chain
// with exactly one erased member and solving it. It mutates s in place and
// removes recovered coordinates from es. It returns ErrUnrecoverable if
// peeling gets stuck before es is empty; in that case s holds the partial
// recovery and es the still-missing cells.
//
// Peeling is exactly the recovery-chain procedure the RAID-6 papers
// describe (e.g. Code 5-6's Algorithm 1 and RDP's zig-zag reconstruction),
// generalized to any erasure pattern.
func PeelDecode(code Code, s *Stripe, es ErasureSet) (DecodeStats, error) {
	var st DecodeStats
	read := make(map[Coord]bool)
	chains := code.Chains()
	for len(es) > 0 {
		progress := false
		for _, ch := range chains {
			missing, ok := soleMissing(ch, es)
			if !ok {
				continue
			}
			solveChain(s, ch, missing, read, &st)
			delete(es, missing)
			progress = true
		}
		if !progress {
			return st, fmt.Errorf("%w: peeling stuck with %d cells missing (%s)", ErrUnrecoverable, len(es), code.Name())
		}
	}
	st.BlocksRead = len(read)
	return st, nil
}

// soleMissing returns the single erased member of the chain, if exactly one
// member is erased.
func soleMissing(ch Chain, es ErasureSet) (Coord, bool) {
	var missing Coord
	count := 0
	if es[ch.Parity] {
		missing = ch.Parity
		count++
	}
	for _, m := range ch.Covers {
		if es[m] {
			if count++; count > 1 {
				return Coord{}, false
			}
			missing = m
		}
	}
	return missing, count == 1
}

// SolveChain reconstructs the missing member of ch in place as the XOR of
// all other chain members, which must all be intact. It returns the number
// of block XOR operations performed. Code-specific reconstruction
// algorithms (e.g. Code 5-6's two recovery chains) are built from this
// primitive.
func SolveChain(s *Stripe, ch Chain, missing Coord) int {
	var st DecodeStats
	SolveChainTracked(s, ch, missing, nil, &st)
	return st.XORs
}

// SolveChainTracked is SolveChain with read-set and stats accounting; read
// may be nil.
func SolveChainTracked(s *Stripe, ch Chain, missing Coord, read map[Coord]bool, st *DecodeStats) {
	if read == nil {
		read = make(map[Coord]bool)
	}
	solveChain(s, ch, missing, read, st)
}

// solveChain reconstructs the missing member of ch as the XOR of all other
// members, updating read-set and stats.
func solveChain(s *Stripe, ch Chain, missing Coord, read map[Coord]bool, st *DecodeStats) {
	dst := s.Block(missing)
	for i := range dst {
		dst[i] = 0
	}
	n := 0
	for _, m := range ch.Members() {
		if m == missing {
			continue
		}
		xorblk.Xor(dst, s.Block(m))
		read[m] = true
		n++
	}
	if n > 0 {
		st.XORs += n - 1
	}
	st.Recovered++
}

// SolveDecode recovers erased elements by GF(2) Gaussian elimination over
// the code's parity constraints. It handles every pattern that is linearly
// recoverable, including those peeling cannot reach (EVENODD's S-adjusted
// diagonal chains under double column failure). It mutates s in place; on
// success es is emptied.
func SolveDecode(code Code, s *Stripe, es ErasureSet) (DecodeStats, error) {
	var st DecodeStats
	st.UsedElimination = true
	if len(es) == 0 {
		return st, nil
	}
	// Index the unknowns.
	unknowns := make([]Coord, 0, len(es))
	idx := make(map[Coord]int, len(es))
	for c := range es {
		idx[c] = len(unknowns)
		unknowns = append(unknowns, c)
	}
	read := make(map[Coord]bool)

	// Build one equation per chain that touches an unknown:
	// XOR(unknown members) = XOR(known members).
	type equation struct {
		vars  []uint64 // bitset over unknowns
		konst []byte
	}
	words := (len(unknowns) + 63) / 64
	var eqs []equation
	for _, ch := range code.Chains() {
		var vars []uint64
		var konst []byte
		for _, m := range ch.Members() {
			if j, erased := idx[m]; erased {
				if vars == nil {
					vars = make([]uint64, words)
				}
				vars[j/64] ^= 1 << (j % 64)
			} else {
				if konst == nil {
					konst = make([]byte, s.BlockSize)
				}
				xorblk.Xor(konst, s.Block(m))
				read[m] = true
				st.XORs++
			}
		}
		if vars == nil {
			continue
		}
		if konst == nil {
			konst = make([]byte, s.BlockSize)
		}
		eqs = append(eqs, equation{vars: vars, konst: konst})
	}
	st.XORs -= len(eqs) // first XOR into a zero buffer is a copy, not an XOR

	// Forward elimination to row echelon form with back-substitution folded
	// in (reduce fully: Gauss-Jordan).
	pivotOf := make([]int, 0, len(unknowns)) // equation index per pivot column order
	pivotCol := make([]int, 0, len(unknowns))
	used := make([]bool, len(eqs))
	for col := 0; col < len(unknowns); col++ {
		pivot := -1
		for e := range eqs {
			if !used[e] && bitGet(eqs[e].vars, col) {
				pivot = e
				break
			}
		}
		if pivot < 0 {
			continue
		}
		used[pivot] = true
		pivotOf = append(pivotOf, pivot)
		pivotCol = append(pivotCol, col)
		for e := range eqs {
			if e != pivot && bitGet(eqs[e].vars, col) {
				for w := range eqs[e].vars {
					eqs[e].vars[w] ^= eqs[pivot].vars[w]
				}
				xorblk.Xor(eqs[e].konst, eqs[pivot].konst)
				st.XORs++
			}
		}
	}
	if len(pivotOf) < len(unknowns) {
		return st, fmt.Errorf("%w: rank %d < %d unknowns (%s)", ErrUnrecoverable, len(pivotOf), len(unknowns), code.Name())
	}
	// After Gauss-Jordan each pivot equation has exactly one variable left.
	for k, e := range pivotOf {
		col := pivotCol[k]
		if popcount(eqs[e].vars) != 1 {
			return st, fmt.Errorf("%w: non-diagonal solution matrix (%s)", ErrUnrecoverable, code.Name())
		}
		s.SetBlock(unknowns[col], eqs[e].konst)
		st.Recovered++
	}
	for c := range es {
		delete(es, c)
	}
	st.BlocksRead = len(read)
	return st, nil
}

// Reconstruct recovers the erasure set using peeling and, if peeling gets
// stuck, Gaussian elimination on the remaining cells. This is the
// general-purpose entry point used by the RAID-6 driver.
func Reconstruct(code Code, s *Stripe, es ErasureSet) (DecodeStats, error) {
	st, err := PeelDecode(code, s, es)
	if err == nil {
		return st, nil
	}
	st2, err := SolveDecode(code, s, es)
	st.XORs += st2.XORs
	st.BlocksRead += st2.BlocksRead // approximation: sets may overlap across phases
	st.Recovered += st2.Recovered
	st.UsedElimination = true
	return st, err
}

func bitGet(bs []uint64, i int) bool { return bs[i/64]&(1<<(i%64)) != 0 }

func popcount(bs []uint64) int {
	n := 0
	for _, w := range bs {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
