package layout

import (
	"fmt"
	"sync"

	"code56/internal/bufpool"
	"code56/internal/xorblk"
)

// Encoder is the reusable, allocation-free form of Encode/Verify for one
// code: the chain dependency order is resolved once at construction (Encode
// re-derives it per call), and the per-call cover-pointer scratch is rented
// from an internal pool, so steady-state Encode and Verify allocate
// nothing. An Encoder is safe for concurrent use — the parallel stripe
// engine drives one Encoder from many workers.
type Encoder struct {
	code   Code
	chains []Chain
	// order lists chain indices such that every chain appears after the
	// chains whose parities it covers (RDP's diagonals cover the row-parity
	// column, so row chains come first there).
	order []int
	// scratch pools *coverScratch (cover-pointer slices) across calls.
	scratch sync.Pool
}

// coverScratch is one worker's cover-pointer slice, pooled by the Encoder.
type coverScratch struct{ covers [][]byte }

// NewEncoder resolves the code's chain dependency order. It panics on
// cyclic parity dependencies, exactly as Encode does — both indicate a
// malformed code, caught by the code's own construction tests.
func NewEncoder(code Code) *Encoder {
	chains := code.Chains()
	e := &Encoder{code: code, chains: chains, order: make([]int, 0, len(chains))}
	maxCovers := 0
	pending := make(map[Coord]bool, len(chains))
	for _, ch := range chains {
		pending[ch.Parity] = true
		if len(ch.Covers) > maxCovers {
			maxCovers = len(ch.Covers)
		}
	}
	done := make([]bool, len(chains))
	for remaining := len(chains); remaining > 0; {
		progress := false
		for i, ch := range chains {
			if done[i] {
				continue
			}
			ready := true
			for _, m := range ch.Covers {
				if pending[m] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			e.order = append(e.order, i)
			delete(pending, ch.Parity)
			done[i] = true
			remaining--
			progress = true
		}
		if !progress {
			panic(fmt.Sprintf("layout: %s has cyclic parity dependencies", code.Name()))
		}
	}
	e.scratch.New = func() any { return &coverScratch{covers: make([][]byte, 0, maxCovers)} }
	return e
}

// Code returns the code the encoder was built for.
func (e *Encoder) Code() Code { return e.code }

// Encode computes every parity element of the stripe from the data
// elements, like the package-level Encode, and returns the block XOR count.
// The stripe must have the encoder's code's geometry.
//
//c56:noalloc
func (e *Encoder) Encode(s *Stripe) int {
	cs := e.scratch.Get().(*coverScratch)
	xors := 0
	for _, i := range e.order {
		ch := &e.chains[i]
		covers := cs.covers[:0]
		for _, m := range ch.Covers {
			covers = append(covers, s.Block(m)) //lint:allow noalloc pooled scratch is pre-sized to the widest chain, append never grows it
		}
		xors += xorblk.XorMulti(s.Block(ch.Parity), covers...)
	}
	cs.covers = cs.covers[:0]
	e.scratch.Put(cs)
	return xors
}

// EncodeInterleaved encodes a batch of stripes with the loop order
// inverted relative to calling Encode per stripe: chains outer, stripes
// inner. While one chain is in flight its cover coordinates are fixed, so
// the inner loop reads the same cells of consecutive stripes —
// sequential addresses on each covering disk — instead of sweeping the
// whole chain set of one stripe before touching the next. Parity-column
// writes stream the same way. The result is bit-identical to encoding
// each stripe individually: chain i's covers may include parities of
// earlier chains, and those are finished for every stripe before chain i
// starts (the outer loop follows the same dependency order Encode uses).
// It returns the total block XOR count across the batch and allocates
// nothing in steady state.
//
//c56:noalloc
func (e *Encoder) EncodeInterleaved(stripes []*Stripe) int {
	cs := e.scratch.Get().(*coverScratch)
	xors := 0
	for _, i := range e.order {
		ch := &e.chains[i]
		for _, s := range stripes {
			covers := cs.covers[:0]
			for _, m := range ch.Covers {
				covers = append(covers, s.Block(m)) //lint:allow noalloc pooled scratch is pre-sized to the widest chain, append never grows it
			}
			xors += xorblk.XorMulti(s.Block(ch.Parity), covers...)
		}
	}
	cs.covers = cs.covers[:0]
	e.scratch.Put(cs)
	return xors
}

// Verify reports whether every parity chain of the stripe XORs to zero,
// like the package-level Verify but without per-call allocation (the
// accumulator block is rented from bufpool).
//
//c56:noalloc
func (e *Encoder) Verify(s *Stripe) bool {
	acc := bufpool.Get(s.BlockSize)
	cs := e.scratch.Get().(*coverScratch)
	ok := true
	for i := range e.chains {
		ch := &e.chains[i]
		copy(acc, s.Block(ch.Parity))
		covers := cs.covers[:0]
		for _, m := range ch.Covers {
			covers = append(covers, s.Block(m)) //lint:allow noalloc pooled scratch is pre-sized to the widest chain, append never grows it
		}
		xorblk.AccumulateMulti(acc, covers...)
		if !xorblk.IsZero(acc) {
			ok = false
			break
		}
	}
	cs.covers = cs.covers[:0]
	e.scratch.Put(cs)
	bufpool.Put(acc)
	return ok
}
