package layout

// IsPrime reports whether n is a prime number. Array codes in this
// repository are constructed from a prime parameter p; constructors use this
// to reject invalid geometries.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime strictly greater than n. The virtual
// disk mechanism (paper §IV-B2) uses it to pick the Code 5-6 geometry for a
// RAID-5 with an arbitrary number of disks.
func NextPrime(n int) int {
	for p := n + 1; ; p++ {
		if IsPrime(p) {
			return p
		}
	}
}

// PrimeAtLeast returns n if n is prime, otherwise the smallest prime
// greater than n.
func PrimeAtLeast(n int) int {
	if IsPrime(n) {
		return n
	}
	return NextPrime(n)
}
