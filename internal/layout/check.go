package layout

import (
	"fmt"
	"math/rand"
)

// ValidateStructure checks the structural invariants every code in this
// repository must satisfy and returns a descriptive error on the first
// violation:
//
//   - every chain's parity and covered coordinates lie inside the stripe;
//   - chain cover sets contain no duplicates and never the parity itself;
//   - the parity cell of each chain is classified as a parity kind;
//   - every cell classified as parity is the parity of exactly one chain;
//   - every data element is covered by at least one chain (otherwise a
//     single-disk failure would already lose data).
func ValidateStructure(c Code) error {
	g := c.Geometry()
	parityOwner := make(map[Coord]int)
	for i, ch := range c.Chains() {
		if !g.Contains(ch.Parity) {
			return fmt.Errorf("%s: chain %d parity %v outside stripe", c.Name(), i, ch.Parity)
		}
		if !c.Kind(ch.Parity.Row, ch.Parity.Col).IsParity() {
			return fmt.Errorf("%s: chain %d parity %v classified as %v", c.Name(), i, ch.Parity, c.Kind(ch.Parity.Row, ch.Parity.Col))
		}
		if prev, dup := parityOwner[ch.Parity]; dup {
			return fmt.Errorf("%s: cell %v is parity of chains %d and %d", c.Name(), ch.Parity, prev, i)
		}
		parityOwner[ch.Parity] = i
		seen := make(map[Coord]bool, len(ch.Covers))
		for _, m := range ch.Covers {
			if !g.Contains(m) {
				return fmt.Errorf("%s: chain %d covers %v outside stripe", c.Name(), i, m)
			}
			if m == ch.Parity {
				return fmt.Errorf("%s: chain %d covers its own parity %v", c.Name(), i, m)
			}
			if seen[m] {
				return fmt.Errorf("%s: chain %d covers %v twice", c.Name(), i, m)
			}
			seen[m] = true
		}
	}
	for r := 0; r < g.Rows; r++ {
		for j := 0; j < g.Cols; j++ {
			co := Coord{r, j}
			k := c.Kind(r, j)
			if k.IsParity() {
				if _, ok := parityOwner[co]; !ok {
					return fmt.Errorf("%s: cell %v classified %v but no chain owns it", c.Name(), co, k)
				}
			}
			if k == Data && len(ChainsCovering(c, co)) == 0 {
				return fmt.Errorf("%s: data cell %v not covered by any chain", c.Name(), co)
			}
		}
	}
	return nil
}

// CheckMDS exhaustively verifies that the code tolerates the concurrent
// failure of any FaultTolerance() columns: for every column combination it
// encodes a random stripe, erases the columns, reconstructs, and compares
// against the original. The block size is kept small since correctness does
// not depend on it. It returns the first failing combination.
func CheckMDS(c Code, seed int64) error {
	g := c.Geometry()
	r := rand.New(rand.NewSource(seed))
	orig := NewStripe(g, 16)
	orig.FillRandom(c, r)
	Encode(c, orig)
	if !Verify(c, orig) {
		return fmt.Errorf("%s: freshly encoded stripe fails verification", c.Name())
	}
	// Check all failure cardinalities up to the tolerance (single failures
	// must also recover).
	for t := 1; t <= c.FaultTolerance(); t++ {
		var rec func(start int, chosen []int) error
		rec = func(start int, chosen []int) error {
			if len(chosen) == t {
				return checkErasure(c, orig, chosen)
			}
			for col := start; col < g.Cols; col++ {
				if err := rec(col+1, append(chosen, col)); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0, nil); err != nil {
			return err
		}
	}
	return nil
}

// MeasureTolerance determines the code's true column-failure tolerance by
// construction: the largest t such that every t-column erasure of an
// encoded random stripe reconstructs, verified exhaustively up to maxT.
// Tests use it to confirm that FaultTolerance() is neither overstated nor
// understated (a RAID-6 code must fail some 3-column erasure — otherwise it
// would be wasting redundancy).
func MeasureTolerance(c Code, maxT int, seed int64) (int, error) {
	g := c.Geometry()
	r := rand.New(rand.NewSource(seed))
	orig := NewStripe(g, 8)
	orig.FillRandom(c, r)
	Encode(c, orig)
	tolerance := 0
	for t := 1; t <= maxT && t <= g.Cols; t++ {
		ok := true
		var rec func(start int, chosen []int) bool
		rec = func(start int, chosen []int) bool {
			if len(chosen) == t {
				return checkErasure(c, orig, chosen) == nil
			}
			for col := start; col < g.Cols; col++ {
				if !rec(col+1, append(chosen, col)) {
					return false
				}
			}
			return true
		}
		ok = rec(0, nil)
		if !ok {
			break
		}
		tolerance = t
	}
	return tolerance, nil
}

func checkErasure(c Code, orig *Stripe, cols []int) error {
	s := orig.Clone()
	es := EraseColumns(s, cols...)
	if _, err := Reconstruct(c, s, es); err != nil {
		return fmt.Errorf("%s: columns %v: %w", c.Name(), cols, err)
	}
	if !s.Equal(orig) {
		return fmt.Errorf("%s: columns %v: reconstruction produced wrong contents", c.Name(), cols)
	}
	return nil
}
