// Package layout defines the shared framework for XOR-based MDS array codes.
//
// Every RAID-6 code in this repository (Code 5-6, RDP, EVENODD, X-Code,
// P-Code, H-Code, HDP) is declared as a stripe geometry plus a set of parity
// chains. A parity chain is a set of element coordinates whose XOR is the
// zero block: one member is the parity element, the rest are the elements it
// covers. Declaring codes this way gives us, for free and uniformly across
// codes:
//
//   - a generic encoder (compute each parity from its chain),
//   - a generic verifier (every chain must XOR to zero),
//   - a generic peeling decoder (iteratively recover elements from chains
//     with a single missing member),
//   - a generic GF(2) Gaussian-elimination decoder for patterns peeling
//     cannot reach (EVENODD's S-adjusted diagonals need this),
//   - structural introspection for the migration planner, which compares a
//     target code's chains against an existing RAID-5 layout to decide which
//     old parities survive a conversion untouched.
package layout

import "fmt"

// Kind classifies what a stripe cell holds.
type Kind int

const (
	// Data marks an ordinary data element.
	Data Kind = iota
	// ParityH marks a horizontal (row) parity element.
	ParityH
	// ParityD marks a diagonal parity element.
	ParityD
	// ParityA marks an anti-diagonal parity element (X-Code's second
	// parity family).
	ParityA
	// Unused marks a cell that exists in the rectangular stripe matrix but
	// holds nothing in this code's layout (no RAID-6 code here needs it,
	// but migration overlays use it for holes left by invalidated
	// parities).
	Unused
)

// String returns a short human-readable tag for the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case ParityH:
		return "parityH"
	case ParityD:
		return "parityD"
	case ParityA:
		return "parityA"
	case Unused:
		return "unused"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsParity reports whether the kind is any parity flavor.
func (k Kind) IsParity() bool {
	return k == ParityH || k == ParityD || k == ParityA
}

// Coord addresses one element inside a stripe: Row is the offset within the
// stripe, Col is the disk.
type Coord struct {
	Row, Col int
}

// String formats the coordinate as (row,col).
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Row, c.Col) }

// Chain is one parity constraint: Parity XOR (XOR of Covers) == 0.
// Covers never contains Parity.
type Chain struct {
	// Kind is the parity family this chain belongs to (ParityH, ParityD,
	// or ParityA).
	Kind Kind
	// Parity is the coordinate of the parity element.
	Parity Coord
	// Covers lists the elements the parity protects.
	Covers []Coord
}

// Members returns the full constraint set: the parity element followed by
// every covered element.
func (ch Chain) Members() []Coord {
	m := make([]Coord, 0, len(ch.Covers)+1)
	m = append(m, ch.Parity)
	m = append(m, ch.Covers...)
	return m
}

// Geometry describes the shape of one stripe.
type Geometry struct {
	// Rows is the number of rows per stripe.
	Rows int
	// Cols is the number of disks (columns).
	Cols int
	// P is the prime parameter the code was constructed from.
	P int
}

// Elements returns Rows*Cols, the total number of cells per stripe.
func (g Geometry) Elements() int { return g.Rows * g.Cols }

// Contains reports whether c is a valid cell of the stripe.
//
//c56:noalloc
func (g Geometry) Contains(c Coord) bool {
	return c.Row >= 0 && c.Row < g.Rows && c.Col >= 0 && c.Col < g.Cols
}

// Index flattens a coordinate to a row-major index.
//
//c56:noalloc
func (g Geometry) Index(c Coord) int { return c.Row*g.Cols + c.Col }

// CoordOf is the inverse of Index.
//
//c56:noalloc
func (g Geometry) CoordOf(i int) Coord { return Coord{Row: i / g.Cols, Col: i % g.Cols} }

// Code is the interface every array code implements. Implementations must be
// stateless and safe for concurrent use.
type Code interface {
	// Name returns a short identifier, e.g. "code56" or "rdp".
	Name() string
	// Geometry returns the stripe shape.
	Geometry() Geometry
	// Chains returns every parity chain of one stripe. The returned slice
	// and its contents must not be mutated by callers; implementations
	// may cache it.
	Chains() []Chain
	// Kind classifies the cell at (row, col).
	Kind(row, col int) Kind
	// FaultTolerance returns the number of concurrent full-column
	// failures the code tolerates (2 for every RAID-6 code here).
	FaultTolerance() int
}

// DataElements returns the coordinates of every data cell of the code, in
// row-major order.
func DataElements(c Code) []Coord {
	g := c.Geometry()
	var out []Coord
	for r := 0; r < g.Rows; r++ {
		for j := 0; j < g.Cols; j++ {
			if c.Kind(r, j) == Data {
				out = append(out, Coord{r, j})
			}
		}
	}
	return out
}

// ParityElements returns the coordinates of every parity cell.
func ParityElements(c Code) []Coord {
	g := c.Geometry()
	var out []Coord
	for r := 0; r < g.Rows; r++ {
		for j := 0; j < g.Cols; j++ {
			if c.Kind(r, j).IsParity() {
				out = append(out, Coord{r, j})
			}
		}
	}
	return out
}

// ChainsCovering returns the indices (into c.Chains()) of every chain whose
// cover set includes the element at co. For codes with optimal update
// complexity this has length 2 for every data element.
func ChainsCovering(c Code, co Coord) []int {
	var out []int
	for i, ch := range c.Chains() {
		for _, m := range ch.Covers {
			if m == co {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// StorageEfficiency returns dataElements/totalElements for the code.
func StorageEfficiency(c Code) float64 {
	g := c.Geometry()
	return float64(len(DataElements(c))) / float64(g.Elements())
}
