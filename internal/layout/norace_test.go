//go:build !race

package layout

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
