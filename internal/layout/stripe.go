package layout

import (
	"fmt"
	"math/rand"
	"sync"

	"code56/internal/xorblk"
)

// Stripe holds the blocks of one stripe of an array code. Blocks are stored
// row-major; every block has the same size.
type Stripe struct {
	Geom      Geometry
	BlockSize int
	blocks    [][]byte
}

// NewStripe allocates a zeroed stripe for the given geometry. All blocks are
// carved from one backing allocation.
func NewStripe(g Geometry, blockSize int) *Stripe {
	if blockSize <= 0 {
		panic(fmt.Sprintf("layout: invalid block size %d", blockSize))
	}
	backing := make([]byte, g.Elements()*blockSize)
	s := &Stripe{Geom: g, BlockSize: blockSize, blocks: make([][]byte, g.Elements())}
	for i := range s.blocks {
		s.blocks[i], backing = backing[:blockSize:blockSize], backing[blockSize:]
	}
	return s
}

// StripePool recycles stripes of one geometry and block size so per-stripe
// hot loops (encode, scrub, rebuild, degraded reads) reuse the same backing
// memory instead of allocating a fresh stripe each time. A pooled stripe
// comes back with unspecified contents — every consumer in this repository
// fills all cells (from disk reads or SetBlock) before reading them.
// Safe for concurrent use.
type StripePool struct {
	geom      Geometry
	blockSize int
	pool      sync.Pool
}

// NewStripePool returns a pool producing stripes of the given shape.
func NewStripePool(g Geometry, blockSize int) *StripePool {
	return &StripePool{geom: g, blockSize: blockSize}
}

// Get returns a stripe, reusing a returned one when available. Contents are
// unspecified.
//
//c56:noalloc
func (p *StripePool) Get() *Stripe {
	if s, _ := p.pool.Get().(*Stripe); s != nil {
		return s
	}
	return NewStripe(p.geom, p.blockSize) //lint:allow noalloc pool miss mints the stripe that later Gets recycle
}

// Put returns a stripe for reuse. The caller must not retain any reference
// to the stripe or its blocks. Stripes of a different shape are dropped.
//
//c56:noalloc
func (p *StripePool) Put(s *Stripe) {
	if s == nil || s.Geom != p.geom || s.BlockSize != p.blockSize {
		return
	}
	p.pool.Put(s)
}

// Block returns the block at coordinate c. The returned slice aliases the
// stripe's storage.
//
//c56:noalloc
func (s *Stripe) Block(c Coord) []byte {
	if !s.Geom.Contains(c) {
		panic(fmt.Sprintf("layout: coordinate %v outside %dx%d stripe", c, s.Geom.Rows, s.Geom.Cols))
	}
	return s.blocks[s.Geom.Index(c)]
}

// SetBlock copies b into the block at c. b must be exactly BlockSize long.
//
//c56:noalloc
func (s *Stripe) SetBlock(c Coord, b []byte) {
	if len(b) != s.BlockSize {
		panic(fmt.Sprintf("layout: block size %d, want %d", len(b), s.BlockSize))
	}
	copy(s.Block(c), b)
}

// Clone returns a deep copy of the stripe.
func (s *Stripe) Clone() *Stripe {
	out := NewStripe(s.Geom, s.BlockSize)
	for i, b := range s.blocks {
		copy(out.blocks[i], b)
	}
	return out
}

// Zero clears the block at c.
//
//c56:noalloc
func (s *Stripe) Zero(c Coord) {
	b := s.Block(c)
	for i := range b {
		b[i] = 0
	}
}

// ZeroColumn clears every block in column col, modeling a failed disk whose
// contents are unknown (reconstruction must never read them).
func (s *Stripe) ZeroColumn(col int) {
	for r := 0; r < s.Geom.Rows; r++ {
		s.Zero(Coord{r, col})
	}
}

// FillRandom fills every data element (per code's classification) with
// pseudo-random bytes from r, leaving parity cells zero. Use Encode
// afterwards to make the stripe consistent.
func (s *Stripe) FillRandom(code Code, r *rand.Rand) {
	for _, c := range DataElements(code) {
		r.Read(s.Block(c))
	}
}

// Equal reports whether two stripes have the same geometry, block size and
// contents.
func (s *Stripe) Equal(o *Stripe) bool {
	if s.Geom != o.Geom || s.BlockSize != o.BlockSize {
		return false
	}
	for i := range s.blocks {
		if !xorblk.Equal(s.blocks[i], o.blocks[i]) {
			return false
		}
	}
	return true
}

// Encode computes every parity element of the stripe from the data elements
// according to the code's chains. It returns the number of block XOR
// operations performed (the cost model's unit of computation).
//
// Chains may cover parity elements of other chains (RDP's diagonals cover
// the row-parity column), so parities are computed in dependency order:
// a chain is ready once none of its covered elements is itself an
// un-computed parity.
func Encode(code Code, s *Stripe) int {
	chains := code.Chains()
	pending := make(map[Coord]bool, len(chains))
	for _, ch := range chains {
		pending[ch.Parity] = true
	}
	done := make([]bool, len(chains))
	xors := 0
	var covers [][]byte // scratch reused across chains
	for remaining := len(chains); remaining > 0; {
		progress := false
		for i, ch := range chains {
			if done[i] {
				continue
			}
			ready := true
			for _, m := range ch.Covers {
				if pending[m] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			covers = covers[:0]
			for _, m := range ch.Covers {
				covers = append(covers, s.Block(m))
			}
			// The multi-source kernel folds several covers per pass over
			// the parity block; its return value is the chain's n-1 XOR
			// cost, keeping the accounting identical to one-at-a-time
			// folding.
			xors += xorblk.XorMulti(s.Block(ch.Parity), covers...)
			delete(pending, ch.Parity)
			done[i] = true
			remaining--
			progress = true
		}
		if !progress {
			panic(fmt.Sprintf("layout: %s has cyclic parity dependencies", code.Name()))
		}
	}
	return xors
}

// Verify reports whether every parity chain of the stripe XORs to zero.
func Verify(code Code, s *Stripe) bool {
	acc := make([]byte, s.BlockSize)
	var covers [][]byte
	for _, ch := range code.Chains() {
		copy(acc, s.Block(ch.Parity))
		covers = covers[:0]
		for _, m := range ch.Covers {
			covers = append(covers, s.Block(m))
		}
		xorblk.AccumulateMulti(acc, covers...)
		if !xorblk.IsZero(acc) {
			return false
		}
	}
	return true
}

// ErasureSet tracks which elements of a stripe are lost.
type ErasureSet map[Coord]bool

// EraseColumns zeroes the given columns of the stripe and returns the
// corresponding erasure set.
func EraseColumns(s *Stripe, cols ...int) ErasureSet {
	es := make(ErasureSet)
	for _, col := range cols {
		s.ZeroColumn(col)
		for r := 0; r < s.Geom.Rows; r++ {
			es[Coord{r, col}] = true
		}
	}
	return es
}

// EraseCells zeroes the given cells and returns them as an erasure set.
func EraseCells(s *Stripe, cells ...Coord) ErasureSet {
	es := make(ErasureSet)
	for _, c := range cells {
		s.Zero(c)
		es[c] = true
	}
	return es
}
