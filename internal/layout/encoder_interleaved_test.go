package layout

import (
	"math/rand"
	"testing"
)

// makeStripes returns n toy-geometry stripes with random data cells and
// zero parity.
func makeStripes(n int, seed int64) []*Stripe {
	r := rand.New(rand.NewSource(seed))
	out := make([]*Stripe, n)
	for i := range out {
		out[i] = NewStripe(toy{}.Geometry(), 64)
		out[i].FillRandom(toy{}, r)
	}
	return out
}

// TestEncodeInterleavedMatchesEncode pins the bit-identical contract: a
// batch encoded chain-outer/stripe-inner must equal the same stripes
// encoded one at a time, with the same total XOR count.
func TestEncodeInterleavedMatchesEncode(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7} {
		enc := NewEncoder(toy{})
		batch := makeStripes(n, int64(100+n))
		serial := make([]*Stripe, n)
		wantXORs := 0
		for i, s := range batch {
			serial[i] = s.Clone()
			wantXORs += enc.Encode(serial[i])
		}
		if got := enc.EncodeInterleaved(batch); got != wantXORs {
			t.Fatalf("n=%d: EncodeInterleaved xors = %d, want %d", n, got, wantXORs)
		}
		for i, s := range batch {
			if !s.Equal(serial[i]) {
				t.Fatalf("n=%d: stripe %d differs between interleaved and per-stripe encode", n, i)
			}
			if !Verify(toy{}, s) {
				t.Fatalf("n=%d: stripe %d fails Verify after interleaved encode", n, i)
			}
		}
	}
}

// TestEncodeInterleavedAllocationFree pins the batch encode path at zero
// allocations — the cover scratch is pooled exactly as in Encode.
func TestEncodeInterleavedAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	enc := NewEncoder(toy{})
	batch := makeStripes(4, 7)
	if n := testing.AllocsPerRun(100, func() { enc.EncodeInterleaved(batch) }); n != 0 {
		t.Errorf("EncodeInterleaved allocates %.1f times per call, want 0", n)
	}
}
