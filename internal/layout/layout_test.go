package layout

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// toy is a minimal 2-row × 3-column code with one horizontal parity per row
// in column 2, used to exercise the framework without pulling in a real
// code package (which would create an import cycle with the codes' tests).
type toy struct{}

func (toy) Name() string       { return "toy" }
func (toy) Geometry() Geometry { return Geometry{Rows: 2, Cols: 3, P: 3} }
func (toy) FaultTolerance() int {
	return 1
}
func (toy) Kind(row, col int) Kind {
	if col == 2 {
		return ParityH
	}
	return Data
}
func (toy) Chains() []Chain {
	return []Chain{
		{Kind: ParityH, Parity: Coord{0, 2}, Covers: []Coord{{0, 0}, {0, 1}}},
		{Kind: ParityH, Parity: Coord{1, 2}, Covers: []Coord{{1, 0}, {1, 1}}},
	}
}

func TestGeometry(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 6, P: 5}
	if g.Elements() != 24 {
		t.Fatalf("Elements = %d", g.Elements())
	}
	for i := 0; i < g.Elements(); i++ {
		c := g.CoordOf(i)
		if !g.Contains(c) {
			t.Fatalf("CoordOf(%d) = %v not contained", i, c)
		}
		if g.Index(c) != i {
			t.Fatalf("Index(CoordOf(%d)) = %d", i, g.Index(c))
		}
	}
	for _, bad := range []Coord{{-1, 0}, {0, -1}, {4, 0}, {0, 6}} {
		if g.Contains(bad) {
			t.Errorf("Contains(%v) should be false", bad)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Data: "data", ParityH: "parityH", ParityD: "parityD", ParityA: "parityA", Unused: "unused", Kind(99): "Kind(99)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Data.IsParity() || Unused.IsParity() {
		t.Error("Data/Unused must not be parity kinds")
	}
	for _, k := range []Kind{ParityH, ParityD, ParityA} {
		if !k.IsParity() {
			t.Errorf("%v must be a parity kind", k)
		}
	}
}

func TestStripeBasics(t *testing.T) {
	s := NewStripe(Geometry{Rows: 2, Cols: 3, P: 3}, 8)
	b := s.Block(Coord{1, 2})
	if len(b) != 8 {
		t.Fatalf("block size %d", len(b))
	}
	s.SetBlock(Coord{0, 0}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if s.Block(Coord{0, 0})[0] != 1 {
		t.Fatal("SetBlock did not copy")
	}
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone differs")
	}
	c.Block(Coord{0, 0})[0] = 9
	if c.Equal(s) {
		t.Fatal("clone aliases original")
	}
	s.Zero(Coord{0, 0})
	if s.Block(Coord{0, 0})[3] != 0 {
		t.Fatal("Zero did not clear")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range Block should panic")
			}
		}()
		s.Block(Coord{5, 5})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong-size SetBlock should panic")
			}
		}()
		s.SetBlock(Coord{0, 0}, []byte{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewStripe with non-positive block size should panic")
			}
		}()
		NewStripe(Geometry{Rows: 1, Cols: 1}, 0)
	}()
}

func TestEncodeVerifyToy(t *testing.T) {
	s := NewStripe(toy{}.Geometry(), 4)
	s.FillRandom(toy{}, rand.New(rand.NewSource(1)))
	xors := Encode(toy{}, s)
	if xors != 2 { // two chains, two covers each: 1 XOR per chain
		t.Errorf("encode XORs = %d, want 2", xors)
	}
	if !Verify(toy{}, s) {
		t.Fatal("verify failed")
	}
	s.Block(Coord{0, 1})[0] ^= 1
	if Verify(toy{}, s) {
		t.Fatal("corruption undetected")
	}
}

func TestPeelDecodeToy(t *testing.T) {
	orig := NewStripe(toy{}.Geometry(), 4)
	orig.FillRandom(toy{}, rand.New(rand.NewSource(2)))
	Encode(toy{}, orig)

	s := orig.Clone()
	es := EraseCells(s, Coord{0, 0}, Coord{1, 2})
	st, err := PeelDecode(toy{}, s, es)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(orig) {
		t.Fatal("wrong recovery")
	}
	if st.Recovered != 2 {
		t.Errorf("recovered %d, want 2", st.Recovered)
	}

	// Two erasures in the same chain defeat peeling on the toy code.
	s = orig.Clone()
	es = EraseCells(s, Coord{0, 0}, Coord{0, 1})
	if _, err := PeelDecode(toy{}, s, es); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("want ErrUnrecoverable, got %v", err)
	}
	// ...and elimination cannot fix it either (genuinely unrecoverable).
	if _, err := SolveDecode(toy{}, s, es); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("want ErrUnrecoverable from elimination, got %v", err)
	}
	// Reconstruct reports the same.
	if _, err := Reconstruct(toy{}, s, es); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("want ErrUnrecoverable from Reconstruct, got %v", err)
	}
}

func TestSolveDecodeEmpty(t *testing.T) {
	s := NewStripe(toy{}.Geometry(), 4)
	st, err := SolveDecode(toy{}, s, ErasureSet{})
	if err != nil || st.Recovered != 0 {
		t.Fatalf("empty erasure set: %v %+v", err, st)
	}
}

func TestSolveChain(t *testing.T) {
	orig := NewStripe(toy{}.Geometry(), 4)
	orig.FillRandom(toy{}, rand.New(rand.NewSource(3)))
	Encode(toy{}, orig)
	s := orig.Clone()
	s.Zero(Coord{0, 1})
	xors := SolveChain(s, toy{}.Chains()[0], Coord{0, 1})
	if xors != 1 {
		t.Errorf("xors = %d, want 1", xors)
	}
	if !s.Equal(orig) {
		t.Fatal("SolveChain produced wrong block")
	}
}

func TestEraseColumns(t *testing.T) {
	s := NewStripe(toy{}.Geometry(), 4)
	s.FillRandom(toy{}, rand.New(rand.NewSource(4)))
	es := EraseColumns(s, 1)
	if len(es) != 2 || !es[Coord{0, 1}] || !es[Coord{1, 1}] {
		t.Fatalf("erasure set %v", es)
	}
	for c := range es {
		b := s.Block(c)
		for _, v := range b {
			if v != 0 {
				t.Fatal("erased block not zeroed")
			}
		}
	}
}

func TestPrimes(t *testing.T) {
	primes := map[int]bool{}
	for _, p := range []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97} {
		primes[p] = true
	}
	for n := -5; n < 100; n++ {
		if IsPrime(n) != primes[n] {
			t.Errorf("IsPrime(%d) = %v", n, IsPrime(n))
		}
	}
	if NextPrime(4) != 5 || NextPrime(5) != 7 || NextPrime(13) != 17 {
		t.Error("NextPrime wrong")
	}
	if PrimeAtLeast(5) != 5 || PrimeAtLeast(6) != 7 {
		t.Error("PrimeAtLeast wrong")
	}
}

// TestNextPrimeProperty: NextPrime(n) > n, is prime, and no prime lies
// strictly between n and it.
func TestNextPrimeProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw % 2000)
		p := NextPrime(n)
		if p <= n || !IsPrime(p) {
			return false
		}
		for k := n + 1; k < p; k++ {
			if IsPrime(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChainMembers(t *testing.T) {
	ch := Chain{Parity: Coord{0, 2}, Covers: []Coord{{0, 0}, {0, 1}}}
	m := ch.Members()
	if len(m) != 3 || m[0] != (Coord{0, 2}) {
		t.Fatalf("Members = %v", m)
	}
}

func TestValidateStructureRejectsBadCodes(t *testing.T) {
	bad := badCode{toy{}, []Chain{{Kind: ParityH, Parity: Coord{0, 5}, Covers: []Coord{{0, 0}}}}}
	if err := ValidateStructure(bad); err == nil {
		t.Error("out-of-stripe parity accepted")
	}
	bad.chains = []Chain{
		{Kind: ParityH, Parity: Coord{0, 2}, Covers: []Coord{{0, 0}, {0, 0}}},
		{Kind: ParityH, Parity: Coord{1, 2}, Covers: []Coord{{1, 0}, {1, 1}}},
	}
	if err := ValidateStructure(bad); err == nil {
		t.Error("duplicate cover accepted")
	}
	bad.chains = []Chain{
		{Kind: ParityH, Parity: Coord{0, 2}, Covers: []Coord{{0, 2}}},
		{Kind: ParityH, Parity: Coord{1, 2}, Covers: []Coord{{1, 0}, {1, 1}}},
	}
	if err := ValidateStructure(bad); err == nil {
		t.Error("self-covering parity accepted")
	}
	bad.chains = []Chain{
		{Kind: ParityH, Parity: Coord{0, 2}, Covers: []Coord{{0, 1}}},
		{Kind: ParityH, Parity: Coord{1, 2}, Covers: []Coord{{1, 0}, {1, 1}}},
	}
	if err := ValidateStructure(bad); err == nil {
		t.Error("uncovered data cell accepted")
	}
}

type badCode struct {
	toy
	chains []Chain
}

func (b badCode) Chains() []Chain { return b.chains }

func TestRenderLayout(t *testing.T) {
	var b strings.Builder
	if err := RenderLayout(&b, toy{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"toy", "disk0", "H"} {
		if !strings.Contains(out, want) {
			t.Errorf("layout rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderChain(t *testing.T) {
	var b strings.Builder
	if err := RenderChain(&b, toy{}, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), " P ") {
		t.Errorf("chain rendering missing parity mark:\n%s", b.String())
	}
	if err := RenderChain(&b, toy{}, 99); err == nil {
		t.Error("out-of-range chain accepted")
	}
	if err := RenderChain(&b, toy{}, -1); err == nil {
		t.Error("negative chain accepted")
	}
}

// TestCheckMDSAndToleranceToy exercises the checker machinery in-package:
// the toy code tolerates exactly one column failure.
func TestCheckMDSAndToleranceToy(t *testing.T) {
	if err := CheckMDS(toy{}, 1); err != nil {
		t.Fatal(err)
	}
	got, err := MeasureTolerance(toy{}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("toy tolerance %d, want 1", got)
	}
}

func TestIntrospectionHelpers(t *testing.T) {
	pe := ParityElements(toy{})
	if len(pe) != 2 || pe[0] != (Coord{0, 2}) || pe[1] != (Coord{1, 2}) {
		t.Fatalf("ParityElements = %v", pe)
	}
	if eff := StorageEfficiency(toy{}); eff != 4.0/6 {
		t.Fatalf("StorageEfficiency = %v", eff)
	}
	if got := ChainsCovering(toy{}, Coord{1, 1}); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ChainsCovering = %v", got)
	}
	if got := ChainsCovering(toy{}, Coord{0, 2}); len(got) != 0 {
		t.Fatalf("parity should be uncovered, got %v", got)
	}
}
