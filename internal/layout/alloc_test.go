package layout

import "testing"

// The //c56:noalloc annotations in this package are statically verified
// by c56-lint; these AllocsPerRun assertions are the runtime half of the
// contract (and the lint suite's cross-check test requires every
// annotated exported function to appear here).

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
}

func TestEncoderAllocationFree(t *testing.T) {
	skipIfRace(t)
	enc := NewEncoder(toy{})
	s := makeStripes(1, 42)[0]
	if n := testing.AllocsPerRun(100, func() { enc.Encode(s) }); n != 0 {
		t.Errorf("Encode allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if !enc.Verify(s) {
			t.Fatal("encoded stripe fails Verify")
		}
	}); n != 0 {
		t.Errorf("Verify allocates %.1f times per call, want 0", n)
	}
}

func TestGeometryAllocationFree(t *testing.T) {
	skipIfRace(t)
	g := toy{}.Geometry()
	c := Coord{Row: 1, Col: 2}
	if n := testing.AllocsPerRun(100, func() {
		if !g.Contains(c) {
			t.Fatal("coordinate must be inside the toy geometry")
		}
		if g.CoordOf(g.Index(c)) != c {
			t.Fatal("Index/CoordOf must round-trip")
		}
	}); n != 0 {
		t.Errorf("Contains/Index/CoordOf allocate %.1f times per call, want 0", n)
	}
}

func TestStripeAccessAllocationFree(t *testing.T) {
	skipIfRace(t)
	s := makeStripes(1, 7)[0]
	c := Coord{Row: 0, Col: 1}
	block := make([]byte, s.BlockSize)
	if n := testing.AllocsPerRun(100, func() {
		copy(block, s.Block(c))
		s.SetBlock(c, block)
		s.Zero(c)
	}); n != 0 {
		t.Errorf("Block/SetBlock/Zero allocate %.1f times per call, want 0", n)
	}
}

func TestStripePoolAllocationFree(t *testing.T) {
	skipIfRace(t)
	p := NewStripePool(toy{}.Geometry(), 64)
	p.Put(p.Get()) // warm: mint the stripe the steady-state cycle reuses
	if n := testing.AllocsPerRun(100, func() {
		p.Put(p.Get())
	}); n != 0 {
		t.Errorf("StripePool Get+Put allocates %.1f times per cycle, want 0", n)
	}
}
