package layout

import (
	"fmt"
	"io"
	"strings"
)

// RenderLayout writes an ASCII picture of the code's stripe — the textual
// counterpart of the paper's layout figures (Fig. 2 RDP, Fig. 3 X-Code,
// Fig. 4 Code 5-6, Fig. 7 right-oriented Code 5-6): one box per cell,
// data cells blank, parity cells tagged with their family letter.
//
//	H = horizontal parity, D = diagonal parity, A = anti-diagonal parity
func RenderLayout(w io.Writer, c Code) error {
	g := c.Geometry()
	if _, err := fmt.Fprintf(w, "%s: %d rows x %d columns (p = %d)\n", c.Name(), g.Rows, g.Cols, g.P); err != nil {
		return err
	}
	header := "     "
	for j := 0; j < g.Cols; j++ {
		header += fmt.Sprintf(" disk%-2d", j)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for r := 0; r < g.Rows; r++ {
		row := fmt.Sprintf("row %d", r)
		for j := 0; j < g.Cols; j++ {
			var tag string
			switch c.Kind(r, j) {
			case ParityH:
				tag = "H"
			case ParityD:
				tag = "D"
			case ParityA:
				tag = "A"
			case Unused:
				tag = "-"
			default:
				tag = "."
			}
			row += fmt.Sprintf("   %s   ", tag)
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// RenderChain writes one parity chain as a coordinate picture: the parity
// cell marked P, covered cells marked by their 1-based order — the way the
// paper's encoding figures shade one chain's members.
func RenderChain(w io.Writer, c Code, chainIdx int) error {
	chains := c.Chains()
	if chainIdx < 0 || chainIdx >= len(chains) {
		return fmt.Errorf("layout: chain %d outside 0..%d", chainIdx, len(chains)-1)
	}
	ch := chains[chainIdx]
	g := c.Geometry()
	mark := make(map[Coord]string)
	mark[ch.Parity] = " P "
	for i, m := range ch.Covers {
		mark[m] = fmt.Sprintf("%2d ", i+1)
	}
	if _, err := fmt.Fprintf(w, "%s chain %d (%s parity at %v, %d covers)\n",
		c.Name(), chainIdx, strings.TrimPrefix(ch.Kind.String(), "parity"), ch.Parity, len(ch.Covers)); err != nil {
		return err
	}
	for r := 0; r < g.Rows; r++ {
		var b strings.Builder
		for j := 0; j < g.Cols; j++ {
			if m, ok := mark[Coord{r, j}]; ok {
				b.WriteString("[" + m + "]")
			} else {
				b.WriteString("[ . ]")
			}
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
