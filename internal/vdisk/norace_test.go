//go:build !race

package vdisk

const raceEnabled = false
