package vdisk

import "testing"

// The healthy-path disk I/O methods carry //c56:noalloc annotations —
// raid6's zero-allocation stripe paths sit directly on top of them — and
// c56-lint proves them allocation-free statically. These AllocsPerRun
// assertions are the runtime half of that contract; fault paths (latent
// injection, retries, fail-stop) are exempt by design and exercised in
// faults_test.go instead.
func TestHealthyDiskIOAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	a := NewArray(3, 4096)
	buf := make([]byte, a.BlockSize())
	for i := range buf {
		buf[i] = byte(i)
	}
	d := a.Disk(0)
	if err := d.Write(5, buf); err != nil { // warm the backing page map
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"Disk.Read": func() {
			if err := d.Read(5, buf); err != nil {
				t.Fatalf("Read: %v", err)
			}
		},
		"Disk.Write": func() {
			if err := d.Write(5, buf); err != nil {
				t.Fatalf("Write: %v", err)
			}
		},
		"Disk.Failed":     func() { _ = d.Failed() },
		"Array.Disk":      func() { _ = a.Disk(0) },
		"Array.BlockSize": func() { _ = a.BlockSize() },
	} {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, n)
		}
	}
}
