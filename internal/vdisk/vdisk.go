// Package vdisk provides the simulated block-device substrate the RAID
// layers run on: in-memory disks with per-disk I/O accounting, fail-stop
// failure injection, and latent sector errors (the unrecoverable-error class
// the paper's motivation section cites as the reason to migrate RAID-5
// arrays to RAID-6).
//
// Disks are safe for concurrent use; the online-migration engine drives
// application I/O and conversion I/O against the same disks from separate
// goroutines.
package vdisk

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"code56/internal/bufpool"
	"code56/internal/telemetry"
)

// Error values returned by disk operations.
var (
	// ErrFailed is returned by any I/O against a fail-stopped disk.
	ErrFailed = errors.New("vdisk: disk failed")
	// ErrLatent is returned when reading a block with an injected latent
	// sector error; writes clear the error (sector remap semantics).
	ErrLatent = errors.New("vdisk: latent sector error")
	// ErrTransient is returned when the fault injector makes an I/O fail
	// transiently; the same operation may succeed when retried (see
	// SetRetry for the built-in retry-with-backoff policy).
	ErrTransient = errors.New("vdisk: transient I/O error")
	// ErrBadBlock is returned for negative block addresses or size
	// mismatches.
	ErrBadBlock = errors.New("vdisk: bad block request")
)

// Stats counts the I/O a disk has served. Failed operations are not
// counted.
//
// Contract: Stats counters are *resettable* — ResetStats zeroes them, and
// the migration cost accounting relies on that to scope totals to one
// experiment phase. The per-disk telemetry gauges
// (vdisk.disk.<id>.reads/.writes) mirror Stats exactly, including resets.
// The package-wide telemetry counters (vdisk.reads, vdisk.writes, …) are
// *monotonic* for the life of the process and are never reset; use those
// for rates and cross-experiment totals.
type Stats struct {
	Reads  int64
	Writes int64
}

// Total returns Reads+Writes.
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// Disk is a simulated block device with a fixed block size over a
// pluggable BlockStore (in-memory by default; see NewDiskStore and the
// filestore package for durable backends). Unwritten blocks read as zero,
// matching the NULL/virtual-element semantics the migration algorithms
// rely on. The zero value is not usable; construct with NewDisk or
// NewDiskStore.
type Disk struct {
	id        int
	blockSize int

	mu sync.RWMutex
	// store is fixed at construction (Replace wipes media through the
	// store's Resetter rather than swapping the store), so it carries no
	// guard annotation.
	store  BlockStore
	failed bool //c56:guardedby mu
	// failedErr caches the wrapped fail-stop error, built on first use:
	// every I/O against a failed disk returns the same value, so the
	// degraded-read hot path (reconstruct around the failure, possibly for
	// millions of blocks) does not allocate a fresh error per call.
	failedErr error          //c56:guardedby mu
	latent    map[int64]bool //c56:guardedby mu
	stats     Stats          //c56:guardedby mu
	tel       diskTel

	// faults, when non-nil, is the armed fault injector (see faults.go).
	faults *faultState //c56:guardedby mu
	// retryMax/retryBase are the transient-error retry policy: up to
	// retryMax retries with exponential backoff starting at retryBase.
	retryMax  int           //c56:guardedby mu
	retryBase time.Duration //c56:guardedby mu
}

// NewDisk returns an empty memory-backed disk with the given id and block
// size, bound to the default telemetry registry (rebind with SetTelemetry).
func NewDisk(id, blockSize int) *Disk {
	if blockSize <= 0 {
		panic(fmt.Sprintf("vdisk: invalid block size %d", blockSize))
	}
	return NewDiskStore(id, blockSize, NewMemStore(blockSize))
}

// NewDiskStore returns a disk over an explicit BlockStore — the seam the
// durable backends plug into. The store's existing contents (a reopened
// file image) become the disk's contents.
func NewDiskStore(id, blockSize int, store BlockStore) *Disk {
	if blockSize <= 0 {
		panic(fmt.Sprintf("vdisk: invalid block size %d", blockSize))
	}
	if store == nil {
		panic("vdisk: nil block store")
	}
	d := &Disk{
		id:        id,
		blockSize: blockSize,
		store:     store,
		latent:    make(map[int64]bool),
	}
	d.bindTelemetry(nil, nil)
	return d
}

// ID returns the disk's identifier.
func (d *Disk) ID() int { return d.id }

// BlockSize returns the disk's block size in bytes.
func (d *Disk) BlockSize() int { return d.blockSize }

// Read copies block b into buf. buf must be exactly one block long.
// Transient faults from the injector are retried per the SetRetry policy
// before the error is surfaced.
//
//c56:noalloc
func (d *Disk) Read(b int64, buf []byte) error {
	if b < 0 || len(buf) != d.blockSize {
		return fmt.Errorf("%w: read block %d, buf %d", ErrBadBlock, b, len(buf))
	}
	max, base := d.retryPolicy()
	for attempt := 0; ; attempt++ {
		err := d.readAttempt(b, buf)
		if err == nil || !errors.Is(err, ErrTransient) || attempt >= max {
			return err
		}
		d.tel.retries.Inc()
		time.Sleep(backoff(base, attempt+1))
	}
}

//c56:noalloc
func (d *Disk) readAttempt(b int64, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// The latency clock starts after the lock is acquired: the histograms
	// measure device service time only, excluding queueing behind other
	// callers (see diskTel).
	start := time.Now()
	if err := d.faultCheck(b, false); err != nil {
		d.tel.readErrs.Inc()
		return err
	}
	if d.latent[b] {
		d.tel.readErrs.Inc()
		d.tel.latent.Inc()
		d.tel.tr.Event("vdisk.latent_hit", telemetry.A("disk", d.id), telemetry.A("block", b))
		return fmt.Errorf("%w: disk %d block %d", ErrLatent, d.id, b)
	}
	if _, err := d.store.ReadAt(buf, b*int64(d.blockSize)); err != nil {
		d.tel.readErrs.Inc()
		return fmt.Errorf("vdisk: disk %d block %d: %w", d.id, b, err)
	}
	d.stats.Reads++
	d.tel.reads.Set(d.stats.Reads)
	d.tel.allReads.Inc()
	d.tel.ioRate.Inc()
	d.tel.ioBytes.Observe(float64(d.blockSize))
	d.tel.readLat.Observe(float64(time.Since(start).Nanoseconds()) / 1e3)
	return nil
}

// faultCheck runs the fail-stop state and the armed injector against one
// I/O attempt. Caller holds d.mu.
//
//c56:requires mu
//c56:noalloc
func (d *Disk) faultCheck(b int64, write bool) error {
	if d.failed {
		if d.failedErr == nil {
			d.failedErr = fmt.Errorf("%w: disk %d", ErrFailed, d.id)
		}
		return d.failedErr
	}
	f := d.faults
	if f == nil {
		return nil
	}
	f.ios++
	if f.cfg.FailAtIO > 0 && f.ios >= f.cfg.FailAtIO {
		d.failed = true
		d.tel.fails.Inc()
		d.tel.tr.Event("vdisk.scheduled_fail", telemetry.A("disk", d.id), telemetry.A("at_io", f.ios))
		return fmt.Errorf("%w: disk %d (scheduled failure at I/O %d)", ErrFailed, d.id, f.ios)
	}
	prob := f.cfg.ReadTransientProb
	if write {
		prob = f.cfg.WriteTransientProb
	}
	if prob > 0 && f.rng.Float64() < prob {
		d.tel.transients.Inc()
		return fmt.Errorf("%w: disk %d block %d", ErrTransient, d.id, b)
	}
	if !write && f.cfg.LatentProb > 0 && !d.latent[b] && f.rng.Float64() < f.cfg.LatentProb {
		d.latent[b] = true                                                                          //lint:allow noalloc latent-error injection is a simulated-fault path, not steady state
		d.tel.tr.Event("vdisk.latent_injected", telemetry.A("disk", d.id), telemetry.A("block", b)) //lint:allow noalloc fault-path trace event
	}
	return nil
}

// Write stores data as block b. data must be exactly one block long.
// Writing clears any latent error on the block. Transient faults from the
// injector are retried per the SetRetry policy.
//
//c56:noalloc
func (d *Disk) Write(b int64, data []byte) error {
	if b < 0 || len(data) != d.blockSize {
		return fmt.Errorf("%w: write block %d, data %d", ErrBadBlock, b, len(data))
	}
	max, base := d.retryPolicy()
	for attempt := 0; ; attempt++ {
		err := d.writeAttempt(b, data)
		if err == nil || !errors.Is(err, ErrTransient) || attempt >= max {
			return err
		}
		d.tel.retries.Inc()
		time.Sleep(backoff(base, attempt+1))
	}
}

//c56:noalloc
func (d *Disk) writeAttempt(b int64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := time.Now() // after the lock: service time only, see diskTel
	if err := d.faultCheck(b, true); err != nil {
		d.tel.writeErrs.Inc()
		return err
	}
	if _, err := d.store.WriteAt(data, b*int64(d.blockSize)); err != nil {
		d.tel.writeErrs.Inc()
		return fmt.Errorf("vdisk: disk %d block %d: %w", d.id, b, err)
	}
	delete(d.latent, b)
	d.stats.Writes++
	d.tel.writes.Set(d.stats.Writes)
	d.tel.allWrites.Inc()
	d.tel.ioRate.Inc()
	d.tel.ioBytes.Observe(float64(d.blockSize))
	d.tel.writeLat.Observe(float64(time.Since(start).Nanoseconds()) / 1e3)
	return nil
}

// Trim discards block b's contents; subsequent reads return zeros. It is
// not counted as an I/O (it models invalidating a parity block's mapping,
// not writing it — use Write for the paper's NULL-write accounting).
// Stores implementing Trimmer deallocate; others get the block zeroed.
func (d *Disk) Trim(b int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	off := b * int64(d.blockSize)
	if t, ok := d.store.(Trimmer); ok {
		_ = t.Trim(off, int64(d.blockSize))
		return
	}
	zero := bufpool.GetZero(d.blockSize)
	defer bufpool.Put(zero)
	_, _ = d.store.WriteAt(zero, off)
}

// Sync is the disk's durability barrier: it flushes every prior write to
// the backing store's stable medium (a no-op for memory-backed disks). A
// fail-stopped disk cannot be synced.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		if d.failedErr == nil {
			d.failedErr = fmt.Errorf("%w: disk %d", ErrFailed, d.id)
		}
		return d.failedErr
	}
	if err := d.store.Sync(); err != nil {
		return fmt.Errorf("vdisk: disk %d: %w", d.id, err)
	}
	d.tel.syncs.Inc()
	return nil
}

// Close releases the disk's backing store. The disk is unusable after.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store.Close()
}

// Store exposes the disk's BlockStore (snapshot plumbing and tests).
func (d *Disk) Store() BlockStore {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.store
}

// Fail marks the disk fail-stopped: every subsequent I/O errors until
// Replace is called.
func (d *Disk) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.failed {
		d.tel.fails.Inc()
		d.tel.tr.Event("vdisk.fail", telemetry.A("disk", d.id))
	}
	d.failed = true
}

// Failed reports whether the disk is fail-stopped.
//
//c56:noalloc
func (d *Disk) Failed() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.failed
}

// Replace swaps in a fresh drive: contents, latent errors and any armed
// fault injector are discarded (new hardware does not inherit the old
// drive's fault scenario — re-arm with SetFaults if desired) and the disk
// accepts I/O again. Stats are preserved (they describe the slot, which is
// how the migration cost accounting uses them), as is the retry policy
// (it describes the controller, not the drive).
//
// Wiping the media goes through the store's Resetter capability (both
// built-in backends have it). If the reset fails — a durable backend that
// cannot truncate its file — the disk stays fail-stopped with the reset
// error, so a half-wiped drive is never silently put back in service.
func (d *Disk) Replace() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if r, ok := d.store.(Resetter); ok {
		if err := r.Reset(); err != nil {
			d.failed = true
			d.failedErr = fmt.Errorf("%w: disk %d (replace: %v)", ErrFailed, d.id, err)
			return
		}
	}
	d.failed = false
	d.failedErr = nil
	d.latent = make(map[int64]bool)
	d.faults = nil
	d.tel.replaces.Inc()
	d.tel.tr.Event("vdisk.replace", telemetry.A("disk", d.id))
}

// InjectLatentError marks block b with a latent sector error: reads fail
// until the block is rewritten.
func (d *Disk) InjectLatentError(b int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.latent[b] = true
	d.tel.tr.Event("vdisk.latent_injected", telemetry.A("disk", d.id), telemetry.A("block", b))
}

// Stats returns a snapshot of the disk's I/O counters.
func (d *Disk) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stats
}

// ResetStats zeroes the I/O counters and the per-disk telemetry gauges
// mirroring them. The package-wide monotonic counters are unaffected (see
// the Stats contract).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.tel.reads.Set(0)
	d.tel.writes.Set(0)
}

// BlocksInUse returns the number of blocks holding written data. It is
// backend-dependent: stores listing extents (MemStore) report allocated
// blocks exactly; others report the high-water block count from Size.
func (d *Disk) BlocksInUse() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if l, ok := d.store.(ExtentLister); ok {
		return len(l.Extents(d.blockSize))
	}
	size, err := d.store.Size()
	if err != nil {
		return 0
	}
	return int((size + int64(d.blockSize) - 1) / int64(d.blockSize))
}

// Array is an ordered set of disks sharing a block size and a Backend. It
// supports the add/remove operations RAID level migration performs.
type Array struct {
	mu sync.RWMutex
	// blockSize is fixed at construction and shared by every disk, so it
	// carries no guard annotation.
	blockSize int
	disks     []*Disk             //c56:guardedby mu
	nextID    int                 //c56:guardedby mu
	backend   Backend             //c56:guardedby mu
	reg       *telemetry.Registry //c56:guardedby mu
	tr        *telemetry.Tracer   //c56:guardedby mu

	// faults/retryMax/retryBase remember the array-wide fault scenario and
	// retry policy so disks attached later with Add() join them.
	faults    *FaultConfig  //c56:guardedby mu
	retryMax  int           //c56:guardedby mu
	retryBase time.Duration //c56:guardedby mu
}

// NewArray returns an array of n fresh memory-backed disks.
func NewArray(n, blockSize int) *Array {
	a, err := NewArrayBackend(n, blockSize, MemBackend{})
	if err != nil {
		// MemBackend.Open never fails.
		panic(err)
	}
	return a
}

// NewArrayBackend returns an array of n disks whose stores come from the
// given backend (slots 0..n-1). Stores that already hold data — reopened
// file images — keep their contents.
func NewArrayBackend(n, blockSize int, b Backend) (*Array, error) {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return NewArrayFrom(blockSize, b, ids)
}

// NewArrayFrom assembles an array over the backend's stores for the given
// slot ids, in order — the reopen path for durable arrays, where the slot
// set on media (including a diagonal-parity disk added by an interrupted
// migration) decides the geometry. Opened stores are closed again if a
// later open fails.
func NewArrayFrom(blockSize int, b Backend, ids []int) (*Array, error) {
	if b == nil {
		b = MemBackend{}
	}
	a := &Array{blockSize: blockSize, backend: b}
	for _, id := range ids {
		s, err := b.Open(id, blockSize)
		if err != nil {
			_ = a.Close()
			return nil, fmt.Errorf("vdisk: opening store for disk %d: %w", id, err)
		}
		a.disks = append(a.disks, NewDiskStore(id, blockSize, s))
		if id >= a.nextID {
			a.nextID = id + 1
		}
	}
	return a, nil
}

// Backend returns the array's store backend (MemBackend for the default
// in-memory arrays). The facade uses it to detect durable arrays and
// thread the migration journal to their directory.
func (a *Array) Backend() Backend {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.backend
}

// BlockSize returns the shared block size.
//
//c56:noalloc
func (a *Array) BlockSize() int { return a.blockSize }

// Len returns the number of disks.
func (a *Array) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.disks)
}

// Disk returns disk i.
//
//c56:noalloc
func (a *Array) Disk(i int) *Disk {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.disks[i]
}

// Add appends a fresh disk and returns it (the "add a new disk to the
// array" step of the paper's Algorithm 2). It panics if the backend cannot
// mint the slot's store; use Attach to handle that error — memory-backed
// arrays never fail.
func (a *Array) Add() *Disk {
	d, err := a.Attach()
	if err != nil {
		panic(err)
	}
	return d
}

// Attach appends a fresh disk, minting its store from the array's backend,
// and returns it. It is Add with the backend error surfaced.
func (a *Array) Attach() (*Disk, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	backend := a.backend
	if backend == nil {
		backend = MemBackend{}
	}
	s, err := backend.Open(a.nextID, a.blockSize)
	if err != nil {
		return nil, fmt.Errorf("vdisk: opening store for disk %d: %w", a.nextID, err)
	}
	d := NewDiskStore(a.nextID, a.blockSize, s)
	if a.reg != nil || a.tr != nil {
		d.bindTelemetry(a.reg, a.tr)
	}
	if a.faults != nil {
		cfg := *a.faults
		cfg.Seed = derivedSeed(a.faults.Seed, d.id)
		_ = d.SetFaults(cfg) // cfg was validated when the array armed it
	}
	if a.retryMax > 0 || a.retryBase > 0 {
		_ = d.SetRetry(a.retryMax, a.retryBase)
	}
	a.nextID++
	a.disks = append(a.disks, d)
	return d, nil
}

// Sync flushes every non-failed disk to stable media — the array-wide
// durability barrier the migration journal orders its watermark records
// behind. Failed disks are skipped (their contents are dead anyway and the
// journal parks the migration at its watermark); the first store error is
// returned.
func (a *Array) Sync() error {
	a.mu.RLock()
	disks := append([]*Disk(nil), a.disks...)
	a.mu.RUnlock()
	for _, d := range disks {
		if d.Failed() {
			continue
		}
		if err := d.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every disk's backing store and returns the first error.
// The array is unusable after.
func (a *Array) Close() error {
	a.mu.RLock()
	disks := append([]*Disk(nil), a.disks...)
	a.mu.RUnlock()
	var first error
	for _, d := range disks {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RemoveLast detaches and returns the last disk (the RAID-6 → RAID-5
// conversion direction). It returns nil if the array is empty.
func (a *Array) RemoveLast() *Disk {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.disks) == 0 {
		return nil
	}
	d := a.disks[len(a.disks)-1]
	a.disks = a.disks[:len(a.disks)-1]
	return d
}

// FailedDisks returns the slot indices of fail-stopped disks, in order.
// It is the substrate of the observability plane's array health checker: an
// empty result means every disk accepts I/O.
func (a *Array) FailedDisks() []int {
	a.mu.RLock()
	disks := append([]*Disk(nil), a.disks...)
	a.mu.RUnlock()
	var failed []int
	for i, d := range disks {
		if d.Failed() {
			failed = append(failed, i)
		}
	}
	return failed
}

// TotalStats sums the stats of all disks.
func (a *Array) TotalStats() Stats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var t Stats
	for _, d := range a.disks {
		s := d.Stats()
		t.Reads += s.Reads
		t.Writes += s.Writes
	}
	return t
}

// ResetStats zeroes every disk's counters.
func (a *Array) ResetStats() {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, d := range a.disks {
		d.ResetStats()
	}
}
