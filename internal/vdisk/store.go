package vdisk

import (
	"fmt"
	"sort"
	"sync"
)

// BlockStore is the media a Disk performs I/O against. The vdisk layer
// keeps the simulation concerns — fault injection, latent sectors, retry
// policies, telemetry — and delegates byte storage to a BlockStore, so the
// same RAID machinery runs over in-memory pages (MemStore), sparse local
// files (internal/vdisk/filestore), or any future backend.
//
// Contract:
//
//   - The store is sparse: reading a byte range that was never written
//     returns zeros, and ReadAt always fills p completely (n == len(p))
//     unless it fails. Stores never return io.EOF for reads past their
//     current size.
//   - WriteAt extends the store as needed; Size reports the high-water
//     mark in bytes (the end of the furthest write).
//   - Sync is a durability barrier: when it returns, every prior WriteAt
//     is on stable media. MemStore's Sync is a no-op by definition.
//   - Close releases the backing resources; the store is unusable after.
//
// Implementations must be safe for concurrent use: the Disk serializes its
// own I/O, but snapshots and syncs may run from other goroutines.
type BlockStore interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Size() (int64, error)
	Sync() error
	Close() error
}

// Optional BlockStore capabilities. Disk methods probe for these with type
// assertions and fall back to portable behavior when absent.
type (
	// Trimmer deallocates a byte range: subsequent reads return zeros.
	// Without it, Disk.Trim falls back to writing zeros.
	Trimmer interface {
		Trim(off, length int64) error
	}
	// Resetter discards all contents, returning the store to its freshly
	// created state (Disk.Replace's "new drive" semantics).
	Resetter interface {
		Reset() error
	}
	// ExtentLister enumerates the allocated block addresses for the given
	// block size, sorted ascending. Snapshots use it to stay sparse;
	// stores without it are enumerated densely from Size, skipping
	// all-zero blocks.
	ExtentLister interface {
		Extents(blockSize int) []int64
	}
)

// Backend mints the BlockStore for each disk slot of an array: it is the
// unit of backend selection (the facade's "mem:" | "file:<dir>" specs map
// to MemBackend and filestore.Backend). Open both creates new stores and
// reopens existing ones — a slot id that was written before returns a
// store holding its durable contents.
type Backend interface {
	Open(id, blockSize int) (BlockStore, error)
}

// MemBackend is the default Backend: every slot gets a fresh MemStore.
// Contents do not survive the process; Sync is a no-op.
type MemBackend struct{}

// Open returns a new empty MemStore for the slot.
func (MemBackend) Open(id, blockSize int) (BlockStore, error) {
	return NewMemStore(blockSize), nil
}

// MemStore is the in-memory BlockStore: a sparse page map. It is the
// extraction of the original Disk block map behind the BlockStore seam,
// and remains the zero-configuration default for tests and simulations.
type MemStore struct {
	mu       sync.RWMutex
	pageSize int              // fixed at construction
	pages    map[int64][]byte //c56:guardedby mu
	// size is the high-water mark in bytes.
	size int64 //c56:guardedby mu
}

// NewMemStore returns an empty in-memory store with the given page size
// (the disk's block size; page granularity is what keeps Extents exact).
func NewMemStore(pageSize int) *MemStore {
	if pageSize <= 0 {
		panic(fmt.Sprintf("vdisk: invalid mem store page size %d", pageSize))
	}
	return &MemStore{pageSize: pageSize, pages: make(map[int64][]byte)}
}

// ReadAt fills p from offset off; unwritten ranges read as zero.
func (s *MemStore) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("vdisk: mem store read at negative offset %d", off)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ps := int64(s.pageSize)
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		page, po := pos/ps, pos%ps
		c := len(p) - n
		if rem := int(ps - po); c > rem {
			c = rem
		}
		dst := p[n : n+c]
		if data, ok := s.pages[page]; ok {
			copy(dst, data[po:int(po)+c])
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		n += c
	}
	return n, nil
}

// WriteAt stores p at offset off, allocating pages as needed.
func (s *MemStore) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("vdisk: mem store write at negative offset %d", off)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := int64(s.pageSize)
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		page, po := pos/ps, pos%ps
		c := len(p) - n
		if rem := int(ps - po); c > rem {
			c = rem
		}
		data, ok := s.pages[page]
		if !ok {
			data = make([]byte, s.pageSize)
			s.pages[page] = data
		}
		copy(data[po:int(po)+c], p[n:n+c])
		n += c
	}
	if end := off + int64(len(p)); end > s.size {
		s.size = end
	}
	return n, nil
}

// Size returns the high-water mark in bytes.
func (s *MemStore) Size() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size, nil
}

// Sync is a no-op: memory has no separate durable medium.
func (s *MemStore) Sync() error { return nil }

// Close discards the pages.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = make(map[int64][]byte)
	s.size = 0
	return nil
}

// Trim deallocates the fully covered pages and zeroes the partial edges.
func (s *MemStore) Trim(off, length int64) error {
	if off < 0 || length < 0 {
		return fmt.Errorf("vdisk: mem store trim [%d,+%d)", off, length)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := int64(s.pageSize)
	end := off + length
	for pos := off; pos < end; {
		page, po := pos/ps, pos%ps
		c := ps - po
		if rem := end - pos; c > rem {
			c = rem
		}
		if po == 0 && c == ps {
			delete(s.pages, page)
		} else if data, ok := s.pages[page]; ok {
			seg := data[po : po+c]
			for i := range seg {
				seg[i] = 0
			}
		}
		pos += c
	}
	return nil
}

// Reset discards all contents (Disk.Replace's fresh-drive semantics).
func (s *MemStore) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = make(map[int64][]byte)
	s.size = 0
	return nil
}

// Extents returns the allocated block addresses, sorted. When blockSize
// differs from the store's page size the page map granularity does not
// line up, so enumeration falls back to the dense range implied by Size
// (the Disk always constructs its MemStore with its own block size, so
// the exact path is the one taken in practice).
func (s *MemStore) Extents(blockSize int) []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if blockSize != s.pageSize {
		n := (s.size + int64(blockSize) - 1) / int64(blockSize)
		out := make([]int64, 0, n)
		for b := int64(0); b < n; b++ {
			out = append(out, b)
		}
		return out
	}
	out := make([]int64, 0, len(s.pages))
	for b := range s.pages {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PagesInUse returns the number of allocated pages (BlocksInUse's exact
// source for memory-backed disks).
func (s *MemStore) PagesInUse() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}
