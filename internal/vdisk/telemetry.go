package vdisk

import (
	"strconv"

	"code56/internal/telemetry"
)

// Telemetry metric names (see README "Telemetry" for the full reference):
//
//	vdisk.reads / vdisk.writes           counters, monotonic, all disks
//	vdisk.read_errors                    counter, failed/latent/transient reads
//	vdisk.write_errors                   counter, failed/transient writes
//	vdisk.latent_errors                  counter, latent-sector read hits
//	vdisk.transient_errors               counter, injector transient faults
//	vdisk.retries                        counter, transient retry attempts
//	vdisk.failures / vdisk.replacements  counters, Fail()/Replace() calls
//	vdisk.syncs                          counter, durability barriers (Sync)
//	vdisk.io_bytes                       histogram, bytes per served I/O
//	vdisk.io_rate                        rate, served I/Os (IOPS windows)
//	vdisk.disk.<id>.reads / .writes      gauges, mirror Stats (resettable)
//	vdisk.disk.<id>.read_latency_us      histogram, per-disk read latency
//	vdisk.disk.<id>.write_latency_us     histogram, per-disk write latency
//
// Trace events: vdisk.fail, vdisk.replace, vdisk.scheduled_fail,
// vdisk.latent_injected, vdisk.latent_hit — each with a "disk" attribute.

// latencyBucketsUS covers the sub-microsecond map hit through a slow
// multi-millisecond contended access.
var latencyBucketsUS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// sizeBuckets covers the block sizes the paper evaluates (4 KB and 8 KB)
// plus the neighbors tests use.
var sizeBuckets = []float64{512, 1024, 2048, 4096, 8192, 16384, 65536}

// diskTel holds one disk's bound instruments. All fields are resolved at
// bind time so the hot path performs no registry lookups.
type diskTel struct {
	tr     *telemetry.Tracer
	reads  *telemetry.Gauge // mirrors Stats.Reads; zeroed by ResetStats
	writes *telemetry.Gauge // mirrors Stats.Writes; zeroed by ResetStats
	// readLat/writeLat measure device service time only: the clock starts
	// after the disk's lock is acquired, so queueing behind concurrent
	// callers (lock contention) never inflates the histograms.
	readLat  *telemetry.Histogram
	writeLat *telemetry.Histogram
	ioBytes  *telemetry.Histogram
	// ioRate feeds the live IOPS windows (1 s/10 s/60 s + EWMA) the
	// observability plane and watch mode display; shared across disks.
	ioRate     *telemetry.Rate
	allReads   *telemetry.Counter // monotonic, shared across disks
	allWrites  *telemetry.Counter
	readErrs   *telemetry.Counter
	writeErrs  *telemetry.Counter
	latent     *telemetry.Counter
	transients *telemetry.Counter // injector-produced transient faults
	retries    *telemetry.Counter // retry attempts after transient faults
	fails      *telemetry.Counter
	replaces   *telemetry.Counter
	syncs      *telemetry.Counter // durability barriers (Disk.Sync calls)
}

// bindTelemetry (re)binds the disk's instruments to a registry and tracer.
// nil selects the process-wide defaults.
func (d *Disk) bindTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Per-disk instruments go through the PerInstance seam so the name
	// fragments stay compile-time constants (the metricname invariant);
	// only the disk id is runtime data.
	inst := reg.PerInstance("vdisk.disk", strconv.Itoa(d.id))
	d.tel = diskTel{
		tr:         tr,
		reads:      inst.Gauge("reads"),
		writes:     inst.Gauge("writes"),
		readLat:    inst.Histogram("read_latency_us", latencyBucketsUS),
		writeLat:   inst.Histogram("write_latency_us", latencyBucketsUS),
		ioBytes:    reg.Histogram("vdisk.io_bytes", sizeBuckets),
		ioRate:     reg.Rate("vdisk.io_rate"),
		allReads:   reg.Counter("vdisk.reads"),
		allWrites:  reg.Counter("vdisk.writes"),
		readErrs:   reg.Counter("vdisk.read_errors"),
		writeErrs:  reg.Counter("vdisk.write_errors"),
		latent:     reg.Counter("vdisk.latent_errors"),
		transients: reg.Counter("vdisk.transient_errors"),
		retries:    reg.Counter("vdisk.retries"),
		fails:      reg.Counter("vdisk.failures"),
		replaces:   reg.Counter("vdisk.replacements"),
		syncs:      reg.Counter("vdisk.syncs"),
	}
	d.tel.reads.Set(d.stats.Reads)
	d.tel.writes.Set(d.stats.Writes)
}

// SetTelemetry rebinds the disk's instruments. Pass nil for either argument
// to use telemetry.Default() / telemetry.DefaultTracer().
func (d *Disk) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	d.bindTelemetry(reg, tr)
}

// SetTelemetry rebinds every current disk's instruments and makes future
// Add()ed disks bind to the same registry and tracer. Pass nil for either
// argument to use the process-wide defaults.
func (a *Array) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	a.mu.Lock()
	a.reg, a.tr = reg, tr
	disks := append([]*Disk(nil), a.disks...)
	a.mu.Unlock()
	for _, d := range disks {
		d.bindTelemetry(reg, tr)
	}
}
