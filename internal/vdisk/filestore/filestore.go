// Package filestore is the durable vdisk backend: one sparse local file
// per disk, accessed with pread/pwrite (os.File.ReadAt/WriteAt) and
// explicit fsync barriers. It is what turns every kill/resume scenario
// from synthetic to real — a file-backed array survives a SIGKILL and
// reopens to exactly the bytes that were synced.
//
// Layout: a Backend owns a directory and mints one image file per disk
// slot, named disk-NNNN.img. Holes in the image (writes past EOF, trimmed
// ranges) read as zeros, matching the vdisk sparse contract. The files
// carry no header — the array's geometry and identity live in the
// directory's meta.json (internal/durable) and the migration intent log
// (internal/wal), never in the data path.
package filestore

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"code56/internal/bufpool"
	"code56/internal/vdisk"
)

// Store is a BlockStore over one sparse local file.
type Store struct {
	f *os.File
}

// Open creates or opens the image file at path. An existing file keeps
// its contents — that is the reopen path.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	return &Store{f: f}, nil
}

// ReadAt fills p from offset off. Ranges beyond EOF (and holes) read as
// zeros and never return io.EOF, per the vdisk sparse contract.
func (s *Store) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("filestore: read at negative offset %d", off)
	}
	n, err := s.f.ReadAt(p, off)
	if err == io.EOF {
		tail := p[n:]
		for i := range tail {
			tail[i] = 0
		}
		return len(p), nil
	}
	return n, err
}

// WriteAt stores p at offset off; writes past EOF extend the file
// sparsely (the filesystem materializes holes for the skipped range).
func (s *Store) WriteAt(p []byte, off int64) (int, error) {
	return s.f.WriteAt(p, off)
}

// Size returns the file's current size (the high-water mark).
func (s *Store) Size() (int64, error) {
	st, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Sync is the durability barrier: fsync the image file.
func (s *Store) Sync() error { return s.f.Sync() }

// Close closes the image file.
func (s *Store) Close() error { return s.f.Close() }

// Reset truncates the image to empty — Disk.Replace's fresh-drive wipe.
func (s *Store) Reset() error { return s.f.Truncate(0) }

// Trim zeroes the byte range. A range reaching EOF is truncated away
// (keeping the image sparse); interior ranges are zero-filled in pooled
// chunks, since portable Go has no hole punching.
func (s *Store) Trim(off, length int64) error {
	if off < 0 || length < 0 {
		return fmt.Errorf("filestore: trim [%d,+%d)", off, length)
	}
	size, err := s.Size()
	if err != nil {
		return err
	}
	if off >= size {
		return nil
	}
	if off+length >= size {
		return s.f.Truncate(off)
	}
	const chunk = 64 << 10
	zero := bufpool.GetZero(chunk)
	defer bufpool.Put(zero)
	for length > 0 {
		c := int64(chunk)
		if length < c {
			c = length
		}
		if _, err := s.f.WriteAt(zero[:c], off); err != nil {
			return err
		}
		off += c
		length -= c
	}
	return nil
}

// Path returns the image file's path.
func (s *Store) Path() string { return s.f.Name() }

// Backend mints one image file per disk slot inside a directory. It
// implements vdisk.Backend.
type Backend struct {
	dir string
}

// NewBackend returns a Backend over dir, creating the directory if
// needed.
func NewBackend(dir string) (*Backend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	return &Backend{dir: dir}, nil
}

// Dir returns the backing directory. The facade uses it to locate the
// array's meta.json and migration intent log next to the images.
func (b *Backend) Dir() string { return b.dir }

// Open creates or reopens the image for the slot.
func (b *Backend) Open(id, blockSize int) (vdisk.BlockStore, error) {
	if id < 0 {
		return nil, fmt.Errorf("filestore: negative disk id %d", id)
	}
	return Open(filepath.Join(b.dir, DiskFileName(id)))
}

// DiskFileName returns the image file name for a disk slot.
func DiskFileName(id int) string { return fmt.Sprintf("disk-%04d.img", id) }

// Scan returns the disk slot ids with image files present in dir, sorted
// ascending — how reopen discovers the on-media geometry (including a
// diagonal-parity disk added by an interrupted migration).
func Scan(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	var ids []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(e.Name(), "disk-%d.img", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// SyncDir fsyncs the directory itself, making renames and newly created
// files inside it durable (the metadata barrier after an atomic
// meta.json swap).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems cannot fsync a directory handle; the rename
		// itself is still atomic, only its durability is best-effort.
		var pe *fs.PathError
		if errors.As(err, &pe) {
			return nil
		}
		return err
	}
	return nil
}
