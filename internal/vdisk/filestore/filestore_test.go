package filestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"code56/internal/vdisk"
)

func TestReopenPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, DiskFileName(0))
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{5}, 512)
	if _, err := s.WriteAt(blk, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := make([]byte, 512)
	if _, err := s2.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Fatal("contents did not survive reopen")
	}
	// The skipped range [0,4096) is a hole and reads as zeros.
	hole := make([]byte, 4096)
	for i := range hole {
		hole[i] = 0xFF
	}
	if _, err := s2.ReadAt(hole, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hole, make([]byte, 4096)) {
		t.Fatal("hole reads non-zero")
	}
}

func TestReadPastEOFZeroFills(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "d.img"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	// Read straddling EOF: prefix from the file, tail zero-filled.
	got := []byte{9, 9, 9, 9, 9, 9}
	n, err := s.ReadAt(got, 1)
	if err != nil || n != len(got) {
		t.Fatalf("straddling read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, []byte{2, 3, 0, 0, 0, 0}) {
		t.Fatalf("straddling read: %v", got)
	}
	if _, err := s.ReadAt(got, -1); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestTrimTailTruncatesInteriorZeroes(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "d.img"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blk := bytes.Repeat([]byte{7}, 1024)
	if _, err := s.WriteAt(blk, 0); err != nil {
		t.Fatal(err)
	}

	// Interior trim zero-fills without shrinking the file.
	if err := s.Trim(256, 256); err != nil {
		t.Fatal(err)
	}
	if size, _ := s.Size(); size != 1024 {
		t.Fatalf("interior trim changed size to %d", size)
	}
	got := make([]byte, 256)
	if _, err := s.ReadAt(got, 256); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 256)) {
		t.Fatal("interior trim left non-zero bytes")
	}

	// Trim reaching EOF truncates, keeping the image small.
	if err := s.Trim(512, 1<<20); err != nil {
		t.Fatal(err)
	}
	if size, _ := s.Size(); size != 512 {
		t.Fatalf("tail trim: size %d, want 512", size)
	}
	// Trim entirely past EOF is a no-op.
	if err := s.Trim(1<<20, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.Trim(-1, 10); err == nil {
		t.Fatal("negative trim should error")
	}
}

func TestResetWipes(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "d.img"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.WriteAt([]byte{1}, 9999); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if size, _ := s.Size(); size != 0 {
		t.Fatalf("reset: size %d", size)
	}
}

func TestScanAndNames(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []int{3, 0, 11} {
		if err := os.WriteFile(filepath.Join(dir, DiskFileName(id)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Non-image noise must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "disk-0xxx.img"), 0o755); err != nil {
		t.Fatal(err)
	}
	ids, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 11}
	if len(ids) != len(want) {
		t.Fatalf("scan: %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("scan: %v, want %v", ids, want)
		}
	}
}

func TestBackendOpenRejectsNegativeID(t *testing.T) {
	b, err := NewBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(-1, 512); err == nil {
		t.Fatal("negative id should error")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir of missing dir should error")
	}
}

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
}

// TestFileDiskIOAllocationFree pins the durable backend's steady-state
// data path at zero allocations: Disk.Read/Write over a file store is
// pread/pwrite plus pooled buffers, same as the memory backend.
func TestFileDiskIOAllocationFree(t *testing.T) {
	skipIfRace(t)
	b, err := NewBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := vdisk.NewArrayBackend(1, 4096, b)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	d := a.Disk(0)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := d.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := d.Read(0, buf); err != nil {
			t.Fatalf("Read: %v", err)
		}
	}); n != 0 {
		t.Errorf("file-backed Read allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := d.Write(0, buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}); n != 0 {
		t.Errorf("file-backed Write allocates %.1f times per call, want 0", n)
	}
}
