//go:build !race

package filestore

const raceEnabled = false
