package vdisk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Snapshot format: a versioned binary stream so simulated arrays (and
// mid-migration states) can be persisted and restored across runs.
//
//	magic "C56VDSK1"
//	array: uint32 diskCount, uint32 blockSize
//	per disk: uint32 id, uint8 failed,
//	          uint32 nBlocks,  nBlocks × (int64 addr, blockSize bytes)
//	          uint32 nLatent,  nLatent × int64 addr
var snapshotMagic = [8]byte{'C', '5', '6', 'V', 'D', 'S', 'K', '1'}

// ErrBadSnapshot is returned when Load encounters a malformed stream.
var ErrBadSnapshot = errors.New("vdisk: bad snapshot")

// Save serializes the array — contents, failure states, latent errors and
// I/O-neutral metadata — to w.
func (a *Array) Save(w io.Writer) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(a.disks))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(a.blockSize)); err != nil {
		return err
	}
	for _, d := range a.disks {
		if err := d.save(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (d *Disk) save(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := binary.Write(w, binary.LittleEndian, uint32(d.id)); err != nil {
		return err
	}
	failed := uint8(0)
	if d.failed {
		failed = 1
	}
	if err := binary.Write(w, binary.LittleEndian, failed); err != nil {
		return err
	}
	addrs := make([]int64, 0, len(d.blocks))
	for b := range d.blocks {
		addrs = append(addrs, b)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	if err := binary.Write(w, binary.LittleEndian, uint32(len(addrs))); err != nil {
		return err
	}
	for _, b := range addrs {
		if err := binary.Write(w, binary.LittleEndian, b); err != nil {
			return err
		}
		if _, err := w.Write(d.blocks[b]); err != nil {
			return err
		}
	}
	lat := make([]int64, 0, len(d.latent))
	for b := range d.latent {
		lat = append(lat, b)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if err := binary.Write(w, binary.LittleEndian, uint32(len(lat))); err != nil {
		return err
	}
	for _, b := range lat {
		if err := binary.Write(w, binary.LittleEndian, b); err != nil {
			return err
		}
	}
	return nil
}

// Load reconstructs an array from a snapshot written by Save. I/O counters
// start at zero (they describe activity, not state).
func Load(r io.Reader) (*Array, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic[:])
	}
	var diskCount, blockSize uint32
	if err := binary.Read(br, binary.LittleEndian, &diskCount); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &blockSize); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if blockSize == 0 || blockSize > 1<<30 || diskCount > 1<<16 {
		return nil, fmt.Errorf("%w: implausible geometry (%d disks, %d-byte blocks)", ErrBadSnapshot, diskCount, blockSize)
	}
	a := &Array{blockSize: int(blockSize)}
	maxID := -1
	for i := uint32(0); i < diskCount; i++ {
		d, err := loadDisk(br, int(blockSize))
		if err != nil {
			return nil, err
		}
		a.disks = append(a.disks, d)
		if d.id > maxID {
			maxID = d.id
		}
	}
	a.nextID = maxID + 1
	return a, nil
}

func loadDisk(r io.Reader, blockSize int) (*Disk, error) {
	var id uint32
	if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	var failed uint8
	if err := binary.Read(r, binary.LittleEndian, &failed); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	d := NewDisk(int(id), blockSize)
	d.failed = failed != 0
	var nBlocks uint32
	if err := binary.Read(r, binary.LittleEndian, &nBlocks); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	for i := uint32(0); i < nBlocks; i++ {
		var addr int64
		if err := binary.Read(r, binary.LittleEndian, &addr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if addr < 0 {
			return nil, fmt.Errorf("%w: negative block address", ErrBadSnapshot)
		}
		buf := make([]byte, blockSize)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		d.blocks[addr] = buf
	}
	var nLatent uint32
	if err := binary.Read(r, binary.LittleEndian, &nLatent); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	for i := uint32(0); i < nLatent; i++ {
		var addr int64
		if err := binary.Read(r, binary.LittleEndian, &addr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		d.latent[addr] = true
	}
	return d, nil
}
