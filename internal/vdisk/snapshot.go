package vdisk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"code56/internal/bufpool"
)

// Snapshot format: a versioned binary stream so simulated arrays (and
// mid-migration states) can be persisted and restored across runs.
//
//	magic "C56VDSK1"
//	array: uint32 diskCount, uint32 blockSize
//	per disk: uint32 id, uint8 failed,
//	          uint32 nBlocks,  nBlocks × (int64 addr, blockSize bytes)
//	          uint32 nLatent,  nLatent × int64 addr
//
// Save and Load go through the BlockStore seam, so snapshots work
// uniformly across backends: a memory array can be restored onto files
// (LoadBackend) and vice versa, and fault-injection state travels with
// the disk regardless of where the bytes live.
var snapshotMagic = [8]byte{'C', '5', '6', 'V', 'D', 'S', 'K', '1'}

// ErrBadSnapshot is returned when Load encounters a malformed stream.
var ErrBadSnapshot = errors.New("vdisk: bad snapshot")

// Save serializes the array — contents, failure states, latent errors and
// I/O-neutral metadata — to w.
func (a *Array) Save(w io.Writer) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(a.disks))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(a.blockSize)); err != nil {
		return err
	}
	for _, d := range a.disks {
		if err := d.save(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// extents enumerates the disk's written block addresses through the store:
// exact allocated pages when the store lists extents, otherwise the dense
// high-water range with all-zero blocks skipped (a zero block is
// indistinguishable from an unwritten one — sparse semantics). Caller
// holds d.mu.
func (d *Disk) extents() ([]int64, error) {
	if l, ok := d.store.(ExtentLister); ok {
		return l.Extents(d.blockSize), nil
	}
	size, err := d.store.Size()
	if err != nil {
		return nil, err
	}
	n := (size + int64(d.blockSize) - 1) / int64(d.blockSize)
	buf := bufpool.Get(d.blockSize)
	defer bufpool.Put(buf)
	addrs := make([]int64, 0, n)
	for b := int64(0); b < n; b++ {
		if _, err := d.store.ReadAt(buf, b*int64(d.blockSize)); err != nil {
			return nil, err
		}
		if !allZero(buf) {
			addrs = append(addrs, b)
		}
	}
	return addrs, nil
}

func allZero(p []byte) bool {
	for _, c := range p {
		if c != 0 {
			return false
		}
	}
	return true
}

func (d *Disk) save(w io.Writer) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := binary.Write(w, binary.LittleEndian, uint32(d.id)); err != nil {
		return err
	}
	failed := uint8(0)
	if d.failed {
		failed = 1
	}
	if err := binary.Write(w, binary.LittleEndian, failed); err != nil {
		return err
	}
	addrs, err := d.extents()
	if err != nil {
		return fmt.Errorf("vdisk: snapshotting disk %d: %w", d.id, err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(addrs))); err != nil {
		return err
	}
	buf := bufpool.Get(d.blockSize)
	defer bufpool.Put(buf)
	for _, b := range addrs {
		if err := binary.Write(w, binary.LittleEndian, b); err != nil {
			return err
		}
		if _, err := d.store.ReadAt(buf, b*int64(d.blockSize)); err != nil {
			return fmt.Errorf("vdisk: snapshotting disk %d block %d: %w", d.id, b, err)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	lat := make([]int64, 0, len(d.latent))
	for b := range d.latent {
		lat = append(lat, b)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if err := binary.Write(w, binary.LittleEndian, uint32(len(lat))); err != nil {
		return err
	}
	for _, b := range lat {
		if err := binary.Write(w, binary.LittleEndian, b); err != nil {
			return err
		}
	}
	return nil
}

// Load reconstructs a memory-backed array from a snapshot written by Save.
// I/O counters start at zero (they describe activity, not state).
func Load(r io.Reader) (*Array, error) {
	return LoadBackend(r, MemBackend{})
}

// LoadBackend reconstructs an array from a snapshot onto the given
// backend's stores — the cross-backend restore path (e.g. rehydrating a
// memory snapshot onto durable files). Block contents are written through
// each store's WriteAt without touching I/O stats.
func LoadBackend(r io.Reader, backend Backend) (*Array, error) {
	if backend == nil {
		backend = MemBackend{}
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic[:])
	}
	var diskCount, blockSize uint32
	if err := binary.Read(br, binary.LittleEndian, &diskCount); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &blockSize); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if blockSize == 0 || blockSize > 1<<30 || diskCount > 1<<16 {
		return nil, fmt.Errorf("%w: implausible geometry (%d disks, %d-byte blocks)", ErrBadSnapshot, diskCount, blockSize)
	}
	a := &Array{blockSize: int(blockSize), backend: backend}
	maxID := -1
	for i := uint32(0); i < diskCount; i++ {
		d, err := loadDisk(br, int(blockSize), backend)
		if err != nil {
			_ = a.Close()
			return nil, err
		}
		a.disks = append(a.disks, d)
		if d.id > maxID {
			maxID = d.id
		}
	}
	a.nextID = maxID + 1
	return a, nil
}

func loadDisk(r io.Reader, blockSize int, backend Backend) (*Disk, error) {
	var id uint32
	if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	var failed uint8
	if err := binary.Read(r, binary.LittleEndian, &failed); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	store, err := backend.Open(int(id), blockSize)
	if err != nil {
		return nil, fmt.Errorf("vdisk: opening store for disk %d: %w", id, err)
	}
	d := NewDiskStore(int(id), blockSize, store)
	d.mu.Lock()
	d.failed = failed != 0
	d.mu.Unlock()
	var nBlocks uint32
	if err := binary.Read(r, binary.LittleEndian, &nBlocks); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	buf := bufpool.Get(blockSize)
	defer bufpool.Put(buf)
	for i := uint32(0); i < nBlocks; i++ {
		var addr int64
		if err := binary.Read(r, binary.LittleEndian, &addr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if addr < 0 {
			return nil, fmt.Errorf("%w: negative block address", ErrBadSnapshot)
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if _, err := store.WriteAt(buf, addr*int64(blockSize)); err != nil {
			return nil, fmt.Errorf("vdisk: restoring disk %d block %d: %w", id, addr, err)
		}
	}
	var nLatent uint32
	if err := binary.Read(r, binary.LittleEndian, &nLatent); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	for i := uint32(0); i < nLatent; i++ {
		var addr int64
		if err := binary.Read(r, binary.LittleEndian, &addr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		d.mu.Lock()
		d.latent[addr] = true
		d.mu.Unlock()
	}
	return d, nil
}
