package vdisk_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"code56/internal/vdisk"
	"code56/internal/vdisk/filestore"
)

// storeBackends returns one fresh Backend per implementation, so every
// contract test runs identically over memory and files.
func storeBackends(t *testing.T) map[string]vdisk.Backend {
	t.Helper()
	fb, err := filestore.NewBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]vdisk.Backend{
		"mem":  vdisk.MemBackend{},
		"file": fb,
	}
}

// TestStoreContract drives the BlockStore contract — sparse zero reads,
// roundtrips, unaligned spans, size high-water, trim, reset — identically
// over both backends.
func TestStoreContract(t *testing.T) {
	for name, backend := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			s, err := backend.Open(0, 512)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			// Unwritten ranges read as zero, even far past any write.
			buf := make([]byte, 1024)
			for i := range buf {
				buf[i] = 0xAA
			}
			if n, err := s.ReadAt(buf, 1<<20); err != nil || n != len(buf) {
				t.Fatalf("sparse read: n=%d err=%v", n, err)
			}
			if !bytes.Equal(buf, make([]byte, 1024)) {
				t.Fatal("sparse read returned non-zero bytes")
			}

			// Aligned write/read roundtrip.
			blk := bytes.Repeat([]byte{7}, 512)
			if _, err := s.WriteAt(blk, 512); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 512)
			if _, err := s.ReadAt(got, 512); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, blk) {
				t.Fatal("roundtrip mismatch")
			}

			// Unaligned span across block boundaries.
			span := []byte("unaligned-span-crossing-blocks")
			if _, err := s.WriteAt(span, 500); err != nil {
				t.Fatal(err)
			}
			got = make([]byte, len(span))
			if _, err := s.ReadAt(got, 500); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, span) {
				t.Fatalf("unaligned roundtrip: got %q want %q", got, span)
			}

			// Size is the high-water mark.
			size, err := s.Size()
			if err != nil {
				t.Fatal(err)
			}
			if size < 1024 {
				t.Fatalf("size %d, want >= 1024", size)
			}

			// Trim: the range reads as zero afterwards.
			tr, ok := s.(vdisk.Trimmer)
			if !ok {
				t.Fatal("store does not implement Trimmer")
			}
			if err := tr.Trim(512, 512); err != nil {
				t.Fatal(err)
			}
			got = make([]byte, 512)
			for i := range got {
				got[i] = 0xAA
			}
			if _, err := s.ReadAt(got, 512); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[12:], make([]byte, 500)) {
				t.Fatal("trimmed range reads non-zero")
			}

			// Reset returns the store to its pristine state.
			rs, ok := s.(vdisk.Resetter)
			if !ok {
				t.Fatal("store does not implement Resetter")
			}
			if err := rs.Reset(); err != nil {
				t.Fatal(err)
			}
			if size, err := s.Size(); err != nil || size != 0 {
				t.Fatalf("after reset: size=%d err=%v", size, err)
			}

			if err := s.Sync(); err != nil {
				t.Fatalf("sync: %v", err)
			}
		})
	}
}

// TestDiskOverBackends runs Disk-level semantics — zero reads, latent
// errors, fail/replace, trim, stats — identically over both backends:
// the simulation machinery must not care where the bytes live.
func TestDiskOverBackends(t *testing.T) {
	for name, backend := range storeBackends(t) {
		t.Run(name, func(t *testing.T) {
			a, err := vdisk.NewArrayBackend(3, 256, backend)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			d := a.Disk(1)

			blk := bytes.Repeat([]byte{3}, 256)
			if err := d.Write(7, blk); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 256)
			if err := d.Read(7, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, blk) {
				t.Fatal("roundtrip mismatch")
			}
			if err := d.Read(1000, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, make([]byte, 256)) {
				t.Fatal("unwritten block reads non-zero")
			}

			// Latent error: read fails until rewritten.
			d.InjectLatentError(7)
			if err := d.Read(7, got); !errors.Is(err, vdisk.ErrLatent) {
				t.Fatalf("latent read: %v", err)
			}
			if err := d.Write(7, blk); err != nil {
				t.Fatal(err)
			}
			if err := d.Read(7, got); err != nil {
				t.Fatal(err)
			}

			// Fail-stop and replace: contents wiped, I/O resumes.
			d.Fail()
			if err := d.Read(7, got); !errors.Is(err, vdisk.ErrFailed) {
				t.Fatalf("failed read: %v", err)
			}
			if err := d.Sync(); !errors.Is(err, vdisk.ErrFailed) {
				t.Fatalf("failed sync: %v", err)
			}
			d.Replace()
			if err := d.Read(7, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, make([]byte, 256)) {
				t.Fatal("replaced disk kept old contents")
			}

			// Trim reads back as zeros and is not counted as I/O.
			if err := d.Write(3, blk); err != nil {
				t.Fatal(err)
			}
			pre := d.Stats()
			d.Trim(3)
			if st := d.Stats(); st != pre {
				t.Fatalf("trim moved stats: %+v -> %+v", pre, st)
			}
			if err := d.Read(3, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, make([]byte, 256)) {
				t.Fatal("trimmed block reads non-zero")
			}

			if err := a.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFaultInjectionUniformAcrossBackends arms the same deterministic
// fault scenario over both backends and requires the identical fault
// sequence: the injector draws from the I/O stream, not the media.
func TestFaultInjectionUniformAcrossBackends(t *testing.T) {
	results := make(map[string][]bool)
	for name, backend := range storeBackends(t) {
		a, err := vdisk.NewArrayBackend(2, 128, backend)
		if err != nil {
			t.Fatal(err)
		}
		cfg := vdisk.FaultConfig{Seed: 42, ReadTransientProb: 0.3}
		if err := a.SetFaults(cfg); err != nil {
			t.Fatal(err)
		}
		var seq []bool
		buf := make([]byte, 128)
		for i := 0; i < 64; i++ {
			err := a.Disk(0).Read(int64(i), buf)
			seq = append(seq, errors.Is(err, vdisk.ErrTransient))
		}
		results[name] = seq
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(results["mem"]) == 0 {
		t.Fatal("no fault sequence recorded")
	}
	for i := range results["mem"] {
		if results["mem"][i] != results["file"][i] {
			t.Fatalf("fault sequence diverges at I/O %d: mem=%v file=%v",
				i, results["mem"][i], results["file"][i])
		}
	}
}

// TestSnapshotAcrossBackends saves a file-backed array and restores it
// onto both backends; contents, failure state and latent errors must
// survive either direction.
func TestSnapshotAcrossBackends(t *testing.T) {
	src, err := filestore.NewBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := vdisk.NewArrayBackend(3, 128, src)
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{9}, 128)
	if err := a.Disk(0).Write(5, blk); err != nil {
		t.Fatal(err)
	}
	if err := a.Disk(1).Write(2, blk); err != nil {
		t.Fatal(err)
	}
	a.Disk(1).InjectLatentError(9)
	a.Disk(2).Fail()

	var snap bytes.Buffer
	if err := a.Save(&snap); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	dst, err := filestore.NewBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, backend := range map[string]vdisk.Backend{"mem": vdisk.MemBackend{}, "file": dst} {
		t.Run(name, func(t *testing.T) {
			b, err := vdisk.LoadBackend(bytes.NewReader(snap.Bytes()), backend)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			got := make([]byte, 128)
			if err := b.Disk(0).Read(5, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, blk) {
				t.Fatal("restored block mismatch")
			}
			if err := b.Disk(1).Read(9, got); !errors.Is(err, vdisk.ErrLatent) {
				t.Fatalf("latent error lost in restore: %v", err)
			}
			if !b.Disk(2).Failed() {
				t.Fatal("failure state lost in restore")
			}
		})
	}
}

// TestAttachOverFileBackend: the migration's "add a disk" step must mint
// a durable image, and reopening the directory must see it.
func TestAttachOverFileBackend(t *testing.T) {
	dir := t.TempDir()
	fb, err := filestore.NewBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := vdisk.NewArrayBackend(2, 128, fb)
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Attach()
	if err != nil {
		t.Fatal(err)
	}
	blk := bytes.Repeat([]byte{1}, 128)
	if err := d.Write(0, blk); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	ids, err := filestore.Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[2] != 2 {
		t.Fatalf("scan: %v, want [0 1 2]", ids)
	}
	fb2, err := filestore.NewBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vdisk.NewArrayFrom(128, fb2, ids)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := make([]byte, 128)
	if err := b.Disk(2).Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Fatal("attached disk's contents not durable")
	}
	if _, err := filestore.Scan(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("scan of missing dir should error")
	}
}
