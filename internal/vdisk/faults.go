package vdisk

import (
	"fmt"
	"math/rand"
	"time"
)

// FaultConfig describes a deterministic, seeded fault scenario for a disk.
// The zero value injects nothing. All probabilities are per-operation and
// drawn from a rand.Rand seeded with Seed, so a given config replayed
// against the same I/O sequence produces the same faults — tests and the
// c56-sim/c56-migrate fault modes rely on that reproducibility. (Under
// concurrent workers the per-disk I/O order, and therefore the draw order,
// follows the goroutine interleaving; fully deterministic scenarios should
// drive conversion with one worker.)
type FaultConfig struct {
	// Seed seeds the disk's fault RNG. Array.SetFaults derives a distinct
	// per-disk seed from this value so disks fault independently.
	Seed int64
	// ReadTransientProb is the probability that a read fails with
	// ErrTransient (absorbed by the retry policy, if one is set).
	ReadTransientProb float64
	// WriteTransientProb is the probability that a write fails with
	// ErrTransient.
	WriteTransientProb float64
	// LatentProb is the probability that a read discovers a new latent
	// sector error on its block: the read (and every subsequent read)
	// fails with ErrLatent until the block is rewritten — the way real
	// latent sector errors manifest.
	LatentProb float64
	// FailAtIO, when positive, fail-stops the whole disk at its FailAtIO-th
	// I/O attempt counted from SetFaults — a scheduled mid-operation disk
	// failure. The disk then errors until Replace.
	FailAtIO int64
}

// Validate checks the config's ranges.
func (c FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ReadTransientProb", c.ReadTransientProb},
		{"WriteTransientProb", c.WriteTransientProb},
		{"LatentProb", c.LatentProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("vdisk: %s = %v outside [0,1]", p.name, p.v)
		}
	}
	if c.FailAtIO < 0 {
		return fmt.Errorf("vdisk: FailAtIO = %d is negative", c.FailAtIO)
	}
	return nil
}

// faultState is a disk's armed injector: config, RNG, and the I/O attempt
// count since arming. Guarded by the disk's mu.
type faultState struct {
	cfg FaultConfig
	rng *rand.Rand
	ios int64
}

// SetFaults arms the disk's fault injector with cfg (replacing any previous
// one and restarting the I/O count). A zero config disarms it.
func (d *Disk) SetFaults(cfg FaultConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if cfg == (FaultConfig{}) {
		d.faults = nil
		return nil
	}
	d.faults = &faultState{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	return nil
}

// SetRetry installs a retry-with-backoff policy for transient I/O errors:
// a failed attempt is retried up to max times, sleeping base, 2*base,
// 4*base, … between attempts. Only ErrTransient is retried — fail-stop and
// latent errors cannot succeed on retry. max = 0 disables retries.
func (d *Disk) SetRetry(max int, base time.Duration) error {
	if max < 0 || base < 0 {
		return fmt.Errorf("vdisk: invalid retry policy (max %d, base %v)", max, base)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.retryMax = max
	d.retryBase = base
	return nil
}

// retryPolicy snapshots the disk's retry knobs.
//
//c56:noalloc
func (d *Disk) retryPolicy() (int, time.Duration) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.retryMax, d.retryBase
}

// backoff returns the sleep before retry attempt n (1-based).
//
//c56:noalloc
func backoff(base time.Duration, n int) time.Duration {
	if base <= 0 {
		return 0
	}
	if n > 20 { // cap the shift; 2^20*base is already absurd
		n = 20
	}
	return base << (n - 1)
}

// derivedSeed spreads one scenario seed across disk ids so per-disk RNG
// streams are independent (splitmix64-style mixing).
func derivedSeed(seed int64, id int) int64 {
	z := uint64(seed) + uint64(id+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// SetFaults arms every disk's injector with a per-disk seed derived from
// cfg.Seed, and remembers the scenario so disks attached later with Add()
// join it. A zero config disarms all current and future disks.
func (a *Array) SetFaults(cfg FaultConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	a.mu.Lock()
	if cfg == (FaultConfig{}) {
		a.faults = nil
	} else {
		c := cfg
		a.faults = &c
	}
	disks := append([]*Disk(nil), a.disks...)
	a.mu.Unlock()
	for _, d := range disks {
		dc := cfg
		if dc != (FaultConfig{}) {
			dc.Seed = derivedSeed(cfg.Seed, d.ID())
		}
		if err := d.SetFaults(dc); err != nil {
			return err
		}
	}
	return nil
}

// SetRetry installs the retry policy on every current disk and on disks
// attached later with Add().
func (a *Array) SetRetry(max int, base time.Duration) error {
	if max < 0 || base < 0 {
		return fmt.Errorf("vdisk: invalid retry policy (max %d, base %v)", max, base)
	}
	a.mu.Lock()
	a.retryMax, a.retryBase = max, base
	disks := append([]*Disk(nil), a.disks...)
	a.mu.Unlock()
	for _, d := range disks {
		if err := d.SetRetry(max, base); err != nil {
			return err
		}
	}
	return nil
}
