package vdisk

import (
	"bytes"
	"errors"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	a := NewArray(3, 16)
	want := map[[2]int64][]byte{}
	for d := 0; d < 3; d++ {
		for b := int64(0); b < 5; b++ {
			data := bytes.Repeat([]byte{byte(d*10 + int(b))}, 16)
			if err := a.Disk(d).Write(b*7, data); err != nil {
				t.Fatal(err)
			}
			want[[2]int64{int64(d), b * 7}] = data
		}
	}
	a.Disk(1).InjectLatentError(14)
	a.Disk(2).Fail()
	extra := a.Add() // ID 3
	_ = extra

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 4 || b.BlockSize() != 16 {
		t.Fatalf("geometry %d disks / %d bytes", b.Len(), b.BlockSize())
	}
	out := make([]byte, 16)
	for k, w := range want {
		d, addr := int(k[0]), k[1]
		if d == 2 {
			continue // failed disk refuses I/O
		}
		if addr == 14 && d == 1 {
			continue // latent, checked below
		}
		if err := b.Disk(d).Read(addr, out); err != nil {
			t.Fatalf("disk %d block %d: %v", d, addr, err)
		}
		if !bytes.Equal(out, w) {
			t.Fatalf("disk %d block %d contents differ", d, addr)
		}
	}
	if err := b.Disk(1).Read(14, out); !errors.Is(err, ErrLatent) {
		t.Errorf("latent error not restored: %v", err)
	}
	if !b.Disk(2).Failed() {
		t.Error("failed state not restored")
	}
	if b.Disk(3).BlocksInUse() != 0 {
		t.Error("empty disk not empty after restore")
	}
	// ID allocation continues past the snapshot's max.
	if b.Add().ID() != 4 {
		t.Error("nextID not restored")
	}
	// Counters start fresh.
	if b.Disk(0).Stats().Writes != 0 {
		t.Error("stats should reset on load")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a snapshot at all")); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("garbage accepted: %v", err)
	}
	if _, err := Load(bytes.NewBuffer(nil)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("empty stream accepted: %v", err)
	}
	// Truncated valid stream.
	a := NewArray(2, 8)
	_ = a.Disk(0).Write(0, make([]byte, 8))
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := Load(bytes.NewBuffer(trunc)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("truncated stream accepted: %v", err)
	}
	// Implausible geometry.
	bad := append([]byte{}, buf.Bytes()[:8]...)
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0) // huge disk count, zero block size
	if _, err := Load(bytes.NewBuffer(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("implausible geometry accepted: %v", err)
	}
}
