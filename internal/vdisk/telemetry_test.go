package vdisk

import (
	"testing"

	"code56/internal/telemetry"
)

// TestResetStatsResetsGauges pins the monotonic-vs-resettable contract:
// per-disk gauges mirror Stats and zero with ResetStats, while the
// package-wide counters keep their totals.
func TestResetStatsResetsGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := NewArray(2, 8)
	a.SetTelemetry(reg, nil)

	b := make([]byte, 8)
	for i := int64(0); i < 5; i++ {
		if err := a.Disk(0).Write(i, b); err != nil {
			t.Fatal(err)
		}
		if err := a.Disk(0).Read(i, b); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["vdisk.disk.0.reads"]; got != 5 {
		t.Fatalf("per-disk read gauge = %d, want 5", got)
	}
	if got := snap.Gauges["vdisk.disk.0.writes"]; got != 5 {
		t.Fatalf("per-disk write gauge = %d, want 5", got)
	}

	a.ResetStats()
	snap = reg.Snapshot()
	for _, name := range []string{"vdisk.disk.0.reads", "vdisk.disk.0.writes", "vdisk.disk.1.reads", "vdisk.disk.1.writes"} {
		if got := snap.Gauges[name]; got != 0 {
			t.Errorf("after ResetStats, gauge %s = %d, want 0", name, got)
		}
	}
	if got := snap.Counters["vdisk.reads"]; got != 5 {
		t.Errorf("monotonic vdisk.reads = %d after reset, want 5", got)
	}
	if got := snap.Counters["vdisk.writes"]; got != 5 {
		t.Errorf("monotonic vdisk.writes = %d after reset, want 5", got)
	}
	if st := a.Disk(0).Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Errorf("Stats not reset: %+v", st)
	}

	// A disk added after SetTelemetry is bound to the same registry.
	d := a.Add()
	if err := d.Write(0, b); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["vdisk.disk.2.writes"]; got != 1 {
		t.Errorf("late-added disk gauge = %d, want 1", got)
	}
}
