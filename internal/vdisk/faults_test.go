package vdisk

import (
	"errors"
	"testing"
	"time"
)

// TestFaultConfigValidate pins the config's range checks.
func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{ReadTransientProb: -0.1},
		{ReadTransientProb: 1.1},
		{WriteTransientProb: 2},
		{LatentProb: -1},
		{FailAtIO: -1},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		d := NewDisk(0, 64)
		if d.SetFaults(cfg) == nil {
			t.Errorf("Disk.SetFaults accepted %+v", cfg)
		}
		a := NewArray(2, 64)
		if a.SetFaults(cfg) == nil {
			t.Errorf("Array.SetFaults accepted %+v", cfg)
		}
	}
	if err := (FaultConfig{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

// TestFaultInjectionDeterminism: the same config against the same I/O
// sequence must produce the same faults, and a different seed a different
// pattern.
func TestFaultInjectionDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		d := NewDisk(0, 16)
		buf := make([]byte, 16)
		for b := int64(0); b < 64; b++ {
			if err := d.Write(b, buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.SetFaults(FaultConfig{Seed: seed, ReadTransientProb: 0.3}); err != nil {
			t.Fatal(err)
		}
		var pattern []bool
		for b := int64(0); b < 64; b++ {
			pattern = append(pattern, errors.Is(d.Read(b, buf), ErrTransient))
		}
		return pattern
	}
	a, b := run(5), run(5)
	same := true
	anyFault := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] {
			anyFault = true
		}
	}
	if !same {
		t.Fatal("same seed produced different fault patterns")
	}
	if !anyFault {
		t.Fatal("ReadTransientProb 0.3 over 64 reads injected nothing")
	}
	c := run(6)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

// TestScheduledFailure: FailAtIO fail-stops the disk at exactly the Nth
// I/O attempt, the failure persists, and Replace (which disarms the
// injector) restores service without re-tripping it.
func TestScheduledFailure(t *testing.T) {
	d := NewDisk(3, 16)
	buf := make([]byte, 16)
	for b := int64(0); b < 8; b++ {
		if err := d.Write(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SetFaults(FaultConfig{Seed: 1, FailAtIO: 5}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := d.Read(0, buf); err != nil {
			t.Fatalf("I/O %d failed early: %v", i, err)
		}
	}
	if err := d.Read(0, buf); !errors.Is(err, ErrFailed) {
		t.Fatalf("I/O 5 = %v, want ErrFailed", err)
	}
	if !d.Failed() {
		t.Fatal("disk not marked failed")
	}
	if err := d.Write(0, buf); !errors.Is(err, ErrFailed) {
		t.Fatalf("write after failure = %v, want ErrFailed", err)
	}
	d.Replace()
	if err := d.Write(0, buf); err != nil {
		t.Fatalf("write after Replace: %v", err)
	}
	// Replace disarmed the scenario: the replacement drive must not
	// immediately re-trip the scheduled failure.
	for i := 0; i < 20; i++ {
		if err := d.Read(0, buf); err != nil {
			t.Fatalf("replacement disk faulted: %v", err)
		}
	}
}

// TestRetryAbsorbsTransients: with a retry budget larger than the longest
// transient streak, every I/O eventually succeeds; with none, transients
// surface.
func TestRetryAbsorbsTransients(t *testing.T) {
	d := NewDisk(0, 16)
	buf := make([]byte, 16)
	for b := int64(0); b < 32; b++ {
		if err := d.Write(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SetFaults(FaultConfig{Seed: 9, ReadTransientProb: 0.4, WriteTransientProb: 0.4}); err != nil {
		t.Fatal(err)
	}

	// No retry policy: some of these must fail transiently.
	failed := 0
	for b := int64(0); b < 32; b++ {
		if errors.Is(d.Read(b, buf), ErrTransient) {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("prob 0.4 over 32 reads produced no transient errors")
	}

	// Generous retries: everything succeeds. (0.4^21 is ~4e-9 per op; with
	// a fixed seed the outcome is deterministic anyway.)
	if err := d.SetRetry(20, 0); err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 32; b++ {
		if err := d.Read(b, buf); err != nil {
			t.Fatalf("read %d not absorbed by retries: %v", b, err)
		}
		if err := d.Write(b, buf); err != nil {
			t.Fatalf("write %d not absorbed by retries: %v", b, err)
		}
	}
}

// TestRetryExhaustion: a retry budget smaller than the transient streak
// surfaces ErrTransient, and fail-stop/latent errors are never retried.
func TestRetryExhaustion(t *testing.T) {
	d := NewDisk(0, 16)
	buf := make([]byte, 16)
	if err := d.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.SetRetry(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.SetFaults(FaultConfig{Seed: 3, ReadTransientProb: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(0, buf); !errors.Is(err, ErrTransient) {
		t.Fatalf("read = %v, want ErrTransient after retry exhaustion", err)
	}

	// Latent errors must not burn retry time: a retried latent read fails
	// just as fast.
	if err := d.SetFaults(FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	d.InjectLatentError(0)
	if err := d.SetRetry(1000, time.Hour); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := d.Read(0, buf); !errors.Is(err, ErrLatent) {
		t.Fatalf("latent read = %v, want ErrLatent", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("latent error was retried (slept on backoff)")
	}
}

// TestRetryValidation pins the policy's range checks and that invalid
// policies leave state untouched.
func TestRetryValidation(t *testing.T) {
	d := NewDisk(0, 16)
	if err := d.SetRetry(-1, 0); err == nil {
		t.Fatal("negative retry count accepted")
	}
	if err := d.SetRetry(1, -time.Second); err == nil {
		t.Fatal("negative backoff accepted")
	}
	a := NewArray(2, 16)
	if err := a.SetRetry(-1, 0); err == nil {
		t.Fatal("Array.SetRetry accepted negative count")
	}
}

// TestLatentDiscoveryPersistsUntilWrite: a latent error discovered by the
// injector keeps failing reads until the block is rewritten.
func TestLatentDiscoveryPersistsUntilWrite(t *testing.T) {
	d := NewDisk(0, 16)
	buf := make([]byte, 16)
	for b := int64(0); b < 16; b++ {
		if err := d.Write(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SetFaults(FaultConfig{Seed: 11, LatentProb: 0.5}); err != nil {
		t.Fatal(err)
	}
	var bad int64 = -1
	for b := int64(0); b < 16; b++ {
		if errors.Is(d.Read(b, buf), ErrLatent) {
			bad = b
			break
		}
	}
	if bad < 0 {
		t.Fatal("LatentProb 0.5 over 16 reads discovered nothing")
	}
	// Disarm so the re-read cannot be masked by a fresh injection.
	if err := d.SetFaults(FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(bad, buf); !errors.Is(err, ErrLatent) {
		t.Fatalf("re-read of latent block = %v, want ErrLatent", err)
	}
	if err := d.Write(bad, buf); err != nil {
		t.Fatalf("rewrite of latent block: %v", err)
	}
	if err := d.Read(bad, buf); err != nil {
		t.Fatalf("read after rewrite = %v, want success", err)
	}
}

// TestArrayFaultsDeriveDistinctSeeds: arming a whole array gives each disk
// an independent fault stream, and disks attached later join the scenario.
func TestArrayFaultsDeriveDistinctSeeds(t *testing.T) {
	a := NewArray(2, 16)
	buf := make([]byte, 16)
	for i := 0; i < a.Len(); i++ {
		for b := int64(0); b < 64; b++ {
			if err := a.Disk(i).Write(b, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.SetFaults(FaultConfig{Seed: 21, ReadTransientProb: 0.3}); err != nil {
		t.Fatal(err)
	}
	pattern := func(i int) []bool {
		var out []bool
		for b := int64(0); b < 64; b++ {
			out = append(out, errors.Is(a.Disk(i).Read(b, buf), ErrTransient))
		}
		return out
	}
	p0, p1 := pattern(0), pattern(1)
	same := true
	for i := range p0 {
		if p0[i] != p1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("disks 0 and 1 share a fault stream; per-disk seeds not derived")
	}

	// A disk added later inherits the armed scenario.
	d := a.Add()
	if err := d.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	hit := false
	for i := 0; i < 64; i++ {
		if errors.Is(d.Read(0, buf), ErrTransient) {
			hit = true
			break
		}
	}
	if !hit {
		t.Fatal("disk attached after SetFaults never faults")
	}
}
