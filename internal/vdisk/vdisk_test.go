package vdisk

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestReadUnwrittenIsZero(t *testing.T) {
	d := NewDisk(0, 8)
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := d.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 8)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := NewDisk(1, 4)
	want := []byte{9, 8, 7, 6}
	if err := d.Write(10, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := d.Read(10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// The disk must not alias caller buffers.
	want[0] = 0
	if err := d.Read(10, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatal("disk aliases caller's write buffer")
	}
	if d.BlocksInUse() != 1 {
		t.Fatalf("BlocksInUse = %d", d.BlocksInUse())
	}
}

func TestBadRequests(t *testing.T) {
	d := NewDisk(0, 4)
	if err := d.Read(-1, make([]byte, 4)); !errors.Is(err, ErrBadBlock) {
		t.Errorf("negative read: %v", err)
	}
	if err := d.Read(0, make([]byte, 3)); !errors.Is(err, ErrBadBlock) {
		t.Errorf("short buf: %v", err)
	}
	if err := d.Write(0, make([]byte, 5)); !errors.Is(err, ErrBadBlock) {
		t.Errorf("long write: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewDisk(0) should panic")
			}
		}()
		NewDisk(0, 0)
	}()
}

func TestFailAndReplace(t *testing.T) {
	d := NewDisk(0, 4)
	if err := d.Write(0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	d.Fail()
	if !d.Failed() {
		t.Fatal("Failed() false after Fail")
	}
	if err := d.Read(0, make([]byte, 4)); !errors.Is(err, ErrFailed) {
		t.Errorf("read on failed disk: %v", err)
	}
	if err := d.Write(0, make([]byte, 4)); !errors.Is(err, ErrFailed) {
		t.Errorf("write on failed disk: %v", err)
	}
	d.Replace()
	if d.Failed() {
		t.Fatal("still failed after Replace")
	}
	buf := make([]byte, 4)
	if err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 4)) {
		t.Fatal("replacement disk kept old contents")
	}
}

func TestLatentErrors(t *testing.T) {
	d := NewDisk(0, 4)
	if err := d.Write(5, []byte{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	d.InjectLatentError(5)
	if err := d.Read(5, make([]byte, 4)); !errors.Is(err, ErrLatent) {
		t.Errorf("latent read: %v", err)
	}
	// Rewriting remaps the sector.
	if err := d.Write(5, []byte{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(5, make([]byte, 4)); err != nil {
		t.Errorf("read after rewrite: %v", err)
	}
}

func TestStats(t *testing.T) {
	d := NewDisk(0, 4)
	buf := make([]byte, 4)
	_ = d.Read(0, buf)
	_ = d.Write(0, buf)
	_ = d.Write(1, buf)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 2 || s.Total() != 3 {
		t.Fatalf("stats %+v", s)
	}
	// Failed I/O is not counted.
	d.Fail()
	_ = d.Read(0, buf)
	if d.Stats().Reads != 1 {
		t.Fatal("failed read counted")
	}
	d.Replace()
	d.ResetStats()
	if d.Stats().Total() != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestTrim(t *testing.T) {
	d := NewDisk(0, 4)
	_ = d.Write(7, []byte{1, 2, 3, 4})
	d.Trim(7)
	buf := make([]byte, 4)
	if err := d.Read(7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 4)) {
		t.Fatal("trimmed block not zero")
	}
}

func TestArrayAddRemove(t *testing.T) {
	a := NewArray(4, 4)
	if a.Len() != 4 {
		t.Fatalf("len %d", a.Len())
	}
	d := a.Add()
	if a.Len() != 5 || d.ID() != 4 {
		t.Fatalf("after Add: len %d id %d", a.Len(), d.ID())
	}
	got := a.RemoveLast()
	if got != d || a.Len() != 4 {
		t.Fatal("RemoveLast mismatch")
	}
	// IDs keep increasing even after removal (no reuse).
	if a.Add().ID() != 5 {
		t.Fatal("disk ID reused")
	}
	empty := &Array{blockSize: 4}
	if empty.RemoveLast() != nil {
		t.Fatal("RemoveLast on empty should be nil")
	}
}

func TestArrayStats(t *testing.T) {
	a := NewArray(2, 4)
	buf := make([]byte, 4)
	_ = a.Disk(0).Write(0, buf)
	_ = a.Disk(1).Read(0, buf)
	s := a.TotalStats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("total stats %+v", s)
	}
	a.ResetStats()
	if a.TotalStats().Total() != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

// TestConcurrentAccess exercises the disk under parallel readers and
// writers; run with -race to validate locking.
func TestConcurrentAccess(t *testing.T) {
	d := NewDisk(0, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			buf := make([]byte, 8)
			for j := 0; j < 200; j++ {
				buf[0] = seed
				if err := d.Write(int64(j%10), buf); err != nil {
					t.Error(err)
					return
				}
				if err := d.Read(int64(j%10), buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(byte(i))
	}
	wg.Wait()
	if d.Stats().Total() != 8*200*2 {
		t.Fatalf("stats %+v", d.Stats())
	}
}
