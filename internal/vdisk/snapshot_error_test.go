package vdisk

import (
	"bytes"
	"errors"
	"testing"
)

// snapshotBytes returns a small valid snapshot: 2 disks, 16-byte blocks,
// one written block, one latent error, one failed disk.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	a := NewArray(2, 16)
	if err := a.Disk(0).Write(3, bytes.Repeat([]byte{0xAB}, 16)); err != nil {
		t.Fatal(err)
	}
	a.Disk(0).InjectLatentError(9)
	a.Disk(1).Fail()
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotTruncatedEverywhere cuts a valid snapshot at every possible
// offset: Load must return ErrBadSnapshot for each prefix — never panic,
// never succeed on partial state.
func TestSnapshotTruncatedEverywhere(t *testing.T) {
	snap := snapshotBytes(t)
	for n := 0; n < len(snap); n++ {
		_, err := Load(bytes.NewReader(snap[:n]))
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("truncation at byte %d of %d: got %v, want ErrBadSnapshot", n, len(snap), err)
		}
	}
	// Sanity: the untruncated stream loads.
	if _, err := Load(bytes.NewReader(snap)); err != nil {
		t.Fatalf("full snapshot failed to load: %v", err)
	}
}

// TestSnapshotBadMagic corrupts each magic byte in turn.
func TestSnapshotBadMagic(t *testing.T) {
	snap := snapshotBytes(t)
	for i := 0; i < 8; i++ {
		bad := append([]byte(nil), snap...)
		bad[i] ^= 0xFF
		if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("magic byte %d corrupted: got %v, want ErrBadSnapshot", i, err)
		}
	}
}

// TestSnapshotMismatchedBlockSize patches the header's block size so the
// declared geometry disagrees with the payload that follows.
func TestSnapshotMismatchedBlockSize(t *testing.T) {
	snap := snapshotBytes(t)
	// The little-endian uint32 block size lives at bytes 12..16.
	patch := func(v uint32) []byte {
		bad := append([]byte(nil), snap...)
		bad[12], bad[13], bad[14], bad[15] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return bad
	}
	for _, v := range []uint32{0, 64, 1 << 31} {
		if _, err := Load(bytes.NewReader(patch(v))); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("block size patched to %d: got %v, want ErrBadSnapshot", v, err)
		}
	}
}

// TestSnapshotNegativeBlockAddress checks that a stream carrying a negative
// block address is rejected rather than stored.
func TestSnapshotNegativeBlockAddress(t *testing.T) {
	snap := snapshotBytes(t)
	// Layout: magic(8) count(4) blockSize(4) | disk0: id(4) failed(1)
	// nBlocks(4) addr(8)... — the first block address starts at byte 25.
	bad := append([]byte(nil), snap...)
	for i := 25; i < 33; i++ {
		bad[i] = 0xFF // addr = -1
	}
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("negative block address: got %v, want ErrBadSnapshot", err)
	}
}
