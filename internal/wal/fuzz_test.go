package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to Open as a log image. The invariant
// under fuzz: replay either rejects the file (ErrCorrupt) or yields a
// CRC-clean record prefix and truncates the rest — it must never panic,
// never over-allocate on a hostile length prefix, and a second open of
// the repaired file must replay the identical records (replay is
// idempotent).
func FuzzReplay(f *testing.F) {
	// Seeds: empty, header-only, one good record, torn/flipped variants.
	f.Add([]byte{})
	f.Add(Magic[:])
	good := func() []byte {
		dir, _ := os.MkdirTemp("", "walfuzz")
		defer os.RemoveAll(dir)
		p := filepath.Join(dir, "w.log")
		l, _, _ := Open(p)
		l.Append(1, []byte("seed-record"))
		l.Sync()
		l.Close()
		b, _ := os.ReadFile(p)
		return b
	}()
	f.Add(good)
	f.Add(good[:len(good)-3])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 1
	f.Add(flipped)
	f.Add(append(append([]byte(nil), good...), 0xFF, 0xFF, 0xFF, 0x7F, 9, 9))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "w.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l, recs, err := Open(path)
		if err != nil {
			return // rejected outright: fine
		}
		for _, r := range recs {
			if len(r.Payload) > MaxPayload {
				t.Fatalf("replayed oversized payload: %d", len(r.Payload))
			}
		}
		// The log must be usable after repair.
		if err := l.Append(200, []byte("post-repair")); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("sync after repair: %v", err)
		}
		l.Close()

		// Idempotence: reopening replays the same prefix plus our append.
		l2, recs2, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer l2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen: %d records, want %d", len(recs2), len(recs)+1)
		}
		for i, r := range recs {
			if r.Type != recs2[i].Type || !bytes.Equal(r.Payload, recs2[i].Payload) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
		last := recs2[len(recs2)-1]
		if last.Type != 200 || string(last.Payload) != "post-repair" {
			t.Fatalf("appended record mangled: %+v", last)
		}
	})
}
