package wal

import (
	"os"
	"sync/atomic"
)

// CrashPoints is the crash-point injector behind the kill-9/reopen/verify
// test family. Arm it with FailAfterSync(n) and it fires — by default
// SIGKILLing the process, no deferred cleanup, no atexit — immediately
// after the n-th durability barrier completes. Components that own
// barriers call Hit() after each one; anything the process "did" after
// the fatal barrier is exactly what a real power cut would discard.
//
// The zero value and a nil *CrashPoints are both disarmed and safe to
// call.
type CrashPoints struct {
	// remaining counts down on each Hit; firing happens at the
	// transition to zero, so FailAfterSync(1) dies after the first
	// barrier.
	remaining atomic.Int64
	armed     atomic.Bool
	// tornAfter, when >= 0 via FailDuringAppend, makes the next WAL
	// Append persist only that many bytes of the record and then fire —
	// simulating a tear inside a record rather than between records.
	tornAfter atomic.Int64
	tornArmed atomic.Bool
	// hits counts every completed barrier, armed or not, so a golden
	// (uninterrupted) run sizes the crash matrix: sweep n = 1..Hits().
	hits atomic.Int64
	fire atomic.Pointer[func()]
}

// FailAfterSync arms the injector to fire right after the n-th (1-based)
// completed durability barrier.
func (c *CrashPoints) FailAfterSync(n int64) {
	c.remaining.Store(n)
	c.armed.Store(true)
}

// FailDuringAppend arms a torn-write: the next Append persists only the
// first n bytes of its record (n may be 0), syncs, and fires.
func (c *CrashPoints) FailDuringAppend(n int) {
	c.tornAfter.Store(int64(n))
	c.tornArmed.Store(true)
}

// SetFire replaces the crash action (default: SIGKILL self). Tests that
// must stay in-process install a panic or a flag-setting closure.
func (c *CrashPoints) SetFire(f func()) { c.fire.Store(&f) }

// Hit records one completed durability barrier, firing if the armed
// countdown reaches zero. Nil-safe.
func (c *CrashPoints) Hit() {
	if c == nil {
		return
	}
	c.hits.Add(1)
	if !c.armed.Load() {
		return
	}
	if c.remaining.Add(-1) == 0 {
		c.Fire()
	}
}

// Hits returns how many barriers completed on this injector (counted
// whether or not it is armed). Nil-safe.
func (c *CrashPoints) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// TornWrite returns the armed torn-append byte count and disarms it, or
// -1 when no torn write is pending. Nil-safe.
func (c *CrashPoints) TornWrite() int {
	if c == nil || !c.tornArmed.CompareAndSwap(true, false) {
		return -1
	}
	return int(c.tornAfter.Load())
}

// Fire executes the crash action. The default is an unconditional
// SIGKILL of this process: no deferred functions, no flushes — the
// closest portable stand-in for pulling the plug.
func (c *CrashPoints) Fire() {
	if c != nil {
		if f := c.fire.Load(); f != nil {
			(*f)()
			return
		}
	}
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill()
	}
	// Kill is asynchronous on some platforms; don't outrun it.
	select {}
}
