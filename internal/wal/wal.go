// Package wal is a write-ahead intent log with per-record CRCs and
// torn-tail recovery. The migrator journals its watermark and the
// superblock flip through it, so a process killed at any point reopens
// to a prefix of the record stream that was actually made durable.
//
// File format (all integers little-endian):
//
//	header: 8-byte magic "C56WAL01"
//	record: uint32 payloadLen | uint8 type | payload | uint32 crc
//
// The CRC is IEEE CRC-32 over the type byte followed by the payload, so
// neither field can be corrupted independently. Replay walks records
// from the header; the first short read, oversized length, or CRC
// mismatch marks the torn tail — everything before it is the durable
// prefix, everything from it on is truncated away. A torn tail is the
// expected result of dying mid-append and is not an error; a corrupt
// file magic is.
//
// Durability contract: Append only buffers the record in the OS page
// cache; Sync is the barrier that makes every record appended so far
// durable. Callers order their side effects around Sync — e.g. the
// migrator syncs the data disks BEFORE appending a watermark record and
// syncing the log, so a journaled watermark never claims stripes whose
// bytes could still be lost.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Magic identifies a wal file; bump the suffix on format changes.
var Magic = [8]byte{'C', '5', '6', 'W', 'A', 'L', '0', '1'}

// MaxPayload bounds a single record. Replay treats a larger length
// prefix as corruption, so a bit flip in the length field cannot make
// replay attempt a multi-gigabyte allocation.
const MaxPayload = 1 << 20

// ErrCorrupt is returned when the file cannot be a wal at all (bad
// magic). Torn tails are NOT corrupt — they replay as the durable
// prefix.
var ErrCorrupt = errors.New("wal: corrupt log")

const headerSize = 8
const recordOverhead = 4 + 1 + 4 // len + type + crc

// Record is one replayed log entry.
type Record struct {
	Type    uint8
	Payload []byte
}

// Log is an append-only intent log over one file.
type Log struct {
	f     *os.File
	off   int64 // end of the durable+buffered record stream
	syncs int64
	crash *CrashPoints // optional injector; nil-safe
}

// Open creates the log at path (writing the header) or opens an
// existing one, replaying its records. Records whose CRC verifies are
// returned in order; a torn tail is truncated so the next Append lands
// on a clean boundary. A file with a wrong magic fails with ErrCorrupt.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f}
	recs, err := l.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return l, recs, nil
}

// replay validates the header (writing it into an empty file), scans
// records, truncates the torn tail, and positions off at the end.
func (l *Log) replay() ([]Record, error) {
	st, err := l.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := l.f.WriteAt(Magic[:], 0); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.off = headerSize
		return nil, nil
	}
	var magic [8]byte
	if _, err := io.ReadFull(io.NewSectionReader(l.f, 0, headerSize), magic[:]); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic[:])
	}
	var recs []Record
	off := int64(headerSize)
	for {
		rec, next, ok := readRecord(l.f, off, st.Size())
		if !ok {
			break // torn tail: keep the durable prefix, drop the rest
		}
		recs = append(recs, rec)
		off = next
	}
	if off < st.Size() {
		if err := l.f.Truncate(off); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	l.off = off
	return recs, nil
}

// readRecord parses one record at off. ok=false means the bytes at off
// are not a whole, CRC-clean record (torn tail).
func readRecord(f *os.File, off, size int64) (rec Record, next int64, ok bool) {
	var hdr [5]byte
	if off+int64(len(hdr)) > size {
		return rec, 0, false
	}
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return rec, 0, false
	}
	plen := binary.LittleEndian.Uint32(hdr[:4])
	if plen > MaxPayload {
		return rec, 0, false
	}
	total := int64(recordOverhead) + int64(plen)
	if off+total > size {
		return rec, 0, false
	}
	body := make([]byte, int(plen)+4)
	if _, err := f.ReadAt(body, off+5); err != nil {
		return rec, 0, false
	}
	payload, sum := body[:plen], binary.LittleEndian.Uint32(body[plen:])
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:5])
	crc.Write(payload)
	if crc.Sum32() != sum {
		return rec, 0, false
	}
	return Record{Type: hdr[4], Payload: payload}, off + total, true
}

// Append buffers one record at the end of the log. It is NOT durable
// until Sync returns.
func (l *Log) Append(typ uint8, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wal: payload %d exceeds max %d", len(payload), MaxPayload)
	}
	buf := make([]byte, recordOverhead+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf[4] = typ
	copy(buf[5:], payload)
	crc := crc32.NewIEEE()
	crc.Write(buf[4 : 5+len(payload)])
	binary.LittleEndian.PutUint32(buf[5+len(payload):], crc.Sum32())
	if l.crash != nil {
		if n := l.crash.TornWrite(); n >= 0 && n < len(buf) {
			// Injected torn append: persist only a prefix of the record,
			// exactly what dying mid-write leaves behind.
			l.f.WriteAt(buf[:n], l.off)
			l.f.Sync()
			l.crash.Fire()
		}
	}
	if _, err := l.f.WriteAt(buf, l.off); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.off += int64(len(buf))
	return nil
}

// Sync is the log's durability barrier: all appended records become
// crash-safe. It also drives the crash injector — each completed sync
// is one countdown tick.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncs++
	l.crash.Hit()
	return nil
}

// Syncs returns how many durability barriers have completed on this
// handle — the crash matrix uses it to size its injection sweep.
func (l *Log) Syncs() int64 { return l.syncs }

// Reset truncates the log back to an empty record stream (header only).
// The truncate is fsynced so a crash cannot resurrect pre-reset records.
func (l *Log) Reset() error {
	if err := l.f.Truncate(headerSize); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.off = headerSize
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.syncs++
	l.crash.Hit()
	return nil
}

// Close closes the log file without syncing (callers Sync explicitly).
func (l *Log) Close() error { return l.f.Close() }

// Path returns the log file's path.
func (l *Log) Path() string { return l.f.Name() }

// SetCrashPoints arms a crash injector on this handle. Pass nil to
// disarm.
func (l *Log) SetCrashPoints(cp *CrashPoints) { l.crash = cp }

// CrashPoints returns the armed injector (nil when disarmed).
func (l *Log) CrashPoints() *CrashPoints { return l.crash }
