package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []Record{
		{Type: 1, Payload: []byte("begin")},
		{Type: 2, Payload: nil},
		{Type: 3, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, r := range want {
		if err := l.Append(r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Syncs() != 1 {
		t.Fatalf("syncs=%d", l.Syncs())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Type != want[i].Type || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	// Appending after replay lands on a clean boundary.
	if err := l2.Append(4, []byte("more")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	_, recs = openT(t, path)
	if len(recs) != 4 || recs[3].Type != 4 {
		t.Fatalf("after continue: %d records", len(recs))
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	if err := l.Append(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate dying mid-append: stitch half a record onto the end.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(raw, 0xFF, 0x00, 0x00, 0x00, 0x07, 'p', 'a', 'r') // bogus len + partial body
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "durable" {
		t.Fatalf("replay: %+v", recs)
	}
	// The tail was truncated away.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(len(raw)) {
		t.Fatalf("torn tail not truncated: %d vs %d", st.Size(), len(raw))
	}
}

func TestBitFlipDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	for i := byte(1); i <= 3; i++ {
		if err := l.Append(i, []byte{i, i, i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	raw, _ := os.ReadFile(path)
	// Flip a payload bit in the SECOND record; replay must keep record 1
	// and reject 2 and 3 (a prefix, never a gap).
	recLen := 4 + 1 + 3 + 4
	raw[8+recLen+5] ^= 0x80
	os.WriteFile(path, raw, 0o644)

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || recs[0].Type != 1 {
		t.Fatalf("replay after bit flip: %+v", recs)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("NOTAWAL0 trailing"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	// Short header (fewer than 8 bytes) is also corrupt, not torn.
	if err := os.WriteFile(path, []byte("C56"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header: %v", err)
	}
}

func TestOversizedLengthIsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	l.Append(1, []byte("ok"))
	l.Sync()
	l.Close()
	raw, _ := os.ReadFile(path)
	// A length prefix beyond MaxPayload must not allocate or be trusted.
	huge := append(raw, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)
	os.WriteFile(path, huge, 0o644)
	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 {
		t.Fatalf("replay: %+v", recs)
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	l.Append(1, []byte("old"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs := openT(t, path)
	if len(recs) != 1 || recs[0].Type != 2 {
		t.Fatalf("after reset: %+v", recs)
	}
}

func TestMaxPayloadEnforced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	defer l.Close()
	if err := l.Append(1, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized append should error")
	}
	if err := l.Append(1, make([]byte, MaxPayload)); err != nil {
		t.Fatalf("max-size append: %v", err)
	}
}

func TestCrashPointsCountdown(t *testing.T) {
	var cp CrashPoints
	fired := 0
	cp.SetFire(func() { fired++ })
	cp.FailAfterSync(3)
	for i := 0; i < 5; i++ {
		cp.Hit()
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1 (at the 3rd hit)", fired)
	}
	// Disarmed and nil injectors are inert.
	var disarmed CrashPoints
	disarmed.Hit()
	var nilCP *CrashPoints
	nilCP.Hit()
	if nilCP.TornWrite() != -1 {
		t.Fatal("nil TornWrite should be -1")
	}
}

func TestFailDuringAppendLeavesTornRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	if err := l.Append(1, []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var cp CrashPoints
	fired := false
	cp.SetFire(func() { fired = true })
	cp.FailDuringAppend(6) // persist 6 bytes of the record, then die
	l.SetCrashPoints(&cp)
	if l.CrashPoints() != &cp {
		t.Fatal("injector not armed")
	}
	if err := l.Append(2, []byte("torn-me")); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("injector did not fire")
	}
	l.Close() // the in-memory handle "died" here; reopen sees the torn image

	// Note Append completed in-memory after firing (our fake fire
	// returns); a real SIGKILL stops before that. Reconstruct the real
	// on-disk state: truncate to what the torn write persisted.
	st, _ := os.Stat(path)
	durable := int64(8 + (4 + 1 + 5 + 4) + 6)
	if st.Size() < durable {
		t.Fatalf("file too short: %d", st.Size())
	}
	os.Truncate(path, durable)

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "whole" {
		t.Fatalf("replay over torn record: %+v", recs)
	}
}
