// Package mttdl quantifies the paper's motivation (§I, Table I): aging
// disks fail at 5–9% per year, and a RAID-5's single-failure tolerance
// leaves the array's mean time to data loss (MTTDL) short enough that
// migration to a double-fault-tolerant RAID-6 is warranted.
//
// Two independent estimates are provided — the classical Markov closed
// forms and a continuous-time Monte Carlo simulation of the same model
// (exponential per-disk failures, one repair in progress at a time) — and
// the tests require them to agree.
package mttdl

import (
	"fmt"
	"math"
	"math/rand"
)

// HoursPerYear converts annualized rates to hourly ones.
const HoursPerYear = 8760.0

// Params describes an array for reliability estimation.
type Params struct {
	// Disks is the number of disks in the array.
	Disks int
	// AFR is the per-disk annualized failure rate (e.g. 0.086 for the
	// paper's year-3 disks).
	AFR float64
	// MTTRHours is the mean time to repair (rebuild) one disk.
	MTTRHours float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Disks < 2 {
		return fmt.Errorf("mttdl: need >= 2 disks, got %d", p.Disks)
	}
	if p.AFR <= 0 || p.AFR >= 1 {
		return fmt.Errorf("mttdl: AFR %v outside (0,1)", p.AFR)
	}
	if p.MTTRHours <= 0 {
		return fmt.Errorf("mttdl: MTTR %v must be positive", p.MTTRHours)
	}
	return nil
}

// mttfHours converts the AFR to a per-disk mean time to failure.
func (p Params) mttfHours() float64 { return HoursPerYear / p.AFR }

// RAID5Hours returns the classical Markov MTTDL of a single-fault-tolerant
// array: MTTF² / (n(n-1)·MTTR).
func RAID5Hours(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	mttf := p.mttfHours()
	n := float64(p.Disks)
	return mttf * mttf / (n * (n - 1) * p.MTTRHours), nil
}

// RAID6Hours returns the classical Markov MTTDL of a double-fault-tolerant
// array: MTTF³ / (n(n-1)(n-2)·MTTR²).
func RAID6Hours(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.Disks < 3 {
		return 0, fmt.Errorf("mttdl: RAID-6 needs >= 3 disks")
	}
	mttf := p.mttfHours()
	n := float64(p.Disks)
	return mttf * mttf * mttf / (n * (n - 1) * (n - 2) * p.MTTRHours * p.MTTRHours), nil
}

// LossProbability converts an MTTDL (hours) into the probability of data
// loss within the given horizon: 1 - exp(-t/MTTDL).
func LossProbability(mttdlHours, horizonYears float64) float64 {
	return 1 - math.Exp(-horizonYears*HoursPerYear/mttdlHours)
}

// SimulateHours estimates the MTTDL by Monte Carlo over the same
// continuous-time Markov model the closed forms assume: each healthy disk
// fails at rate 1/MTTF, one failed disk at a time is repaired at rate
// 1/MTTR, and data is lost when more than `tolerance` disks are down
// simultaneously. It returns the mean time to loss over `trials` runs.
func SimulateHours(p Params, tolerance, trials int, seed int64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if tolerance < 1 || tolerance >= p.Disks {
		return 0, fmt.Errorf("mttdl: tolerance %d outside [1,%d)", tolerance, p.Disks)
	}
	if trials <= 0 {
		return 0, fmt.Errorf("mttdl: trials must be positive")
	}
	lambda := 1 / p.mttfHours()
	mu := 1 / p.MTTRHours
	r := rand.New(rand.NewSource(seed))

	total := 0.0
	for tr := 0; tr < trials; tr++ {
		t := 0.0
		failed := 0
		for failed <= tolerance {
			failRate := float64(p.Disks-failed) * lambda
			repairRate := 0.0
			if failed > 0 {
				repairRate = mu
			}
			rate := failRate + repairRate
			t += r.ExpFloat64() / rate
			if r.Float64() < failRate/rate {
				failed++
			} else {
				failed--
			}
		}
		total += t
	}
	return total / float64(trials), nil
}
