package mttdl

import (
	"math"
	"testing"
)

// year3 is the paper's Table I year-3 AFR (8.6%), its worst year.
var year3 = Params{Disks: 5, AFR: 0.086, MTTRHours: 24}

func TestClosedForms(t *testing.T) {
	r5, err := RAID5Hours(year3)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := RAID6Hours(Params{Disks: 6, AFR: 0.086, MTTRHours: 24})
	if err != nil {
		t.Fatal(err)
	}
	// RAID-6 must beat RAID-5 by orders of magnitude even with an extra
	// disk: every repair window shrinks the exposure by ~MTTF/MTTR.
	if r6 < 100*r5 {
		t.Errorf("RAID-6 MTTDL %.3g not far beyond RAID-5's %.3g", r6, r5)
	}
	// Spot value: MTTF = 8760/0.086 ≈ 101860 h;
	// RAID-5: MTTF²/(5·4·24).
	mttf := HoursPerYear / 0.086
	want := mttf * mttf / (5 * 4 * 24)
	if math.Abs(r5-want)/want > 1e-12 {
		t.Errorf("RAID5Hours = %v, want %v", r5, want)
	}
}

func TestLossProbability(t *testing.T) {
	if p := LossProbability(HoursPerYear, 1); math.Abs(p-(1-math.Exp(-1))) > 1e-12 {
		t.Errorf("1-year loss with 1-year MTTDL = %v", p)
	}
	if p := LossProbability(1e12, 1); p > 1e-6 {
		t.Errorf("huge MTTDL should give tiny loss probability, got %v", p)
	}
	// Monotone in horizon.
	if LossProbability(1e6, 5) <= LossProbability(1e6, 1) {
		t.Error("loss probability must grow with horizon")
	}
}

func TestValidation(t *testing.T) {
	bads := []Params{
		{Disks: 1, AFR: 0.05, MTTRHours: 24},
		{Disks: 5, AFR: 0, MTTRHours: 24},
		{Disks: 5, AFR: 1.5, MTTRHours: 24},
		{Disks: 5, AFR: 0.05, MTTRHours: 0},
	}
	for i, p := range bads {
		if _, err := RAID5Hours(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := RAID6Hours(Params{Disks: 2, AFR: 0.05, MTTRHours: 24}); err == nil {
		t.Error("RAID-6 with 2 disks accepted")
	}
	if _, err := SimulateHours(year3, 0, 10, 1); err == nil {
		t.Error("tolerance 0 accepted")
	}
	if _, err := SimulateHours(year3, 1, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

// TestSimulationMatchesClosedFormRAID5: the Monte Carlo estimate must agree
// with the Markov closed form within sampling error (the closed form is an
// approximation valid for MTTR << MTTF, which holds by ~3 orders of
// magnitude here).
func TestSimulationMatchesClosedFormRAID5(t *testing.T) {
	closed, err := RAID5Hours(year3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateHours(year3, 1, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := sim / closed; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("simulated/closed = %.3f (sim %.3g, closed %.3g)", ratio, sim, closed)
	}
}

// TestSimulationMatchesClosedFormRAID6 uses an artificially high AFR so
// double-failure losses occur in feasible simulation time, and accepts a
// wider band (the closed form degrades as MTTR/MTTF grows).
func TestSimulationMatchesClosedFormRAID6(t *testing.T) {
	p := Params{Disks: 6, AFR: 0.5, MTTRHours: 72}
	closed, err := RAID6Hours(p)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateHours(p, 2, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := sim / closed; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("simulated/closed = %.3f (sim %.3g, closed %.3g)", ratio, sim, closed)
	}
}

// TestPaperMotivation reproduces §I quantitatively: with Table I's aged-disk
// AFRs, a 5-disk RAID-5's 5-year data-loss probability is substantial,
// while the migrated 6-disk Code 5-6 RAID-6 brings it down by orders of
// magnitude.
func TestPaperMotivation(t *testing.T) {
	afrs := map[int]float64{1: 0.017, 2: 0.081, 3: 0.086, 4: 0.058, 5: 0.072}
	for year, afr := range afrs {
		r5, err := RAID5Hours(Params{Disks: 5, AFR: afr, MTTRHours: 24})
		if err != nil {
			t.Fatal(err)
		}
		r6, err := RAID6Hours(Params{Disks: 6, AFR: afr, MTTRHours: 24})
		if err != nil {
			t.Fatal(err)
		}
		p5 := LossProbability(r5, 5)
		p6 := LossProbability(r6, 5)
		if p6 >= p5/100 {
			t.Errorf("year %d: RAID-6 loss %.2e not ≪ RAID-5's %.2e", year, p6, p5)
		}
	}
	// The worst aged year leaves RAID-5 clearly above a 0.1% 5-year loss
	// budget — the paper's "insufficient reliability".
	r5, _ := RAID5Hours(Params{Disks: 5, AFR: 0.086, MTTRHours: 24})
	if p := LossProbability(r5, 5); p < 1e-3 {
		t.Errorf("year-3 RAID-5 5-year loss probability %.2e unexpectedly low", p)
	}
}
