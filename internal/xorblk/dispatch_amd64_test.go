//go:build !purego && !noasm

package xorblk

import (
	"bytes"
	"fmt"
	"testing"
)

// TestAsmKernelSelectedOnCapableHost is the CI bench-smoke gate: if the
// CPUID probe reports AVX2 support, init must have selected an assembly
// tier, and that tier's output must match the wide kernel bit-for-bit on
// a seeded corpus. A host without AVX2 skips — the generic wide selection
// is still covered by TestTierSelection.
func TestAsmKernelSelectedOnCapableHost(t *testing.T) {
	avx2, avx512, _ := probeCPU()
	if !avx2 {
		t.Skip("host CPU lacks AVX2; asm tier not expected")
	}
	want := "avx2"
	if avx512 {
		want = "avx512"
	}
	if KernelName != want {
		t.Fatalf("probe reports avx2=%v avx512=%v but KernelName = %q, want %q",
			avx2, avx512, KernelName, want)
	}
	if asmLevel == levelNone {
		t.Fatalf("probe reports AVX2 but asmLevel is levelNone")
	}

	// Fuzz-seeded corpus: deterministic slabs at the shapes the fuzzer
	// seeds with, checked asm-vs-wide for every shape.
	for _, n := range []int{64, 261, 400, 1030, 4096, 65536} {
		srcs := tierSrcs(t, 4, n, 0)
		asmDst := slab(t, n, int64(n))[:n]
		wideDst := append([]byte(nil), asmDst...)
		xorKernel(asmDst, srcs[0])
		xorWide(wideDst, srcs[0])
		if !bytes.Equal(asmDst, wideDst) {
			t.Fatalf("asm xor diverges from wide at n=%d", n)
		}
		fold4Kernel(asmDst, srcs[0], srcs[1], srcs[2], srcs[3])
		fold4Wide(wideDst, srcs[0], srcs[1], srcs[2], srcs[3])
		if !bytes.Equal(asmDst, wideDst) {
			t.Fatalf("asm fold4 diverges from wide at n=%d", n)
		}
	}
}

// TestProbeFeatureConsistency pins invariants of the CPUID probe: AVX-512
// implies AVX2 (the dispatcher's fold-back chain depends on it), and the
// feature list mirrors the returned booleans.
func TestProbeFeatureConsistency(t *testing.T) {
	avx2, avx512, feats := probeCPU()
	if avx512 && !avx2 {
		t.Fatal("probe reports AVX-512 without AVX2; dispatcher assumes avx512 ⇒ avx2")
	}
	has := func(s string) bool {
		for _, f := range feats {
			if f == s {
				return true
			}
		}
		return false
	}
	if avx2 != has("avx2") {
		t.Fatalf("avx2=%v but features=%v", avx2, feats)
	}
	if avx512 != has("avx512f") {
		t.Fatalf("avx512=%v but features=%v", avx512, feats)
	}
	// Features() must return a copy, not the backing array.
	got := Features()
	if len(got) > 0 {
		got[0] = "clobbered"
		if Features()[0] == "clobbered" {
			t.Fatal("Features() exposes internal state; must return a copy")
		}
	}
}

// TestNonTemporalPathMatchesReference lowers NonTemporalThreshold so the
// streaming-store main loops run at test-sized buffers, then sweeps all
// five shapes across sizes and alignments — including unaligned
// destinations, which exercise the ntPeel head that realigns dst to the
// 64-byte boundary VMOVNTDQ requires. Safe to mutate the threshold: the
// package's tests don't run in parallel.
func TestNonTemporalPathMatchesReference(t *testing.T) {
	if asmLevel == levelNone {
		t.Skip("no asm tier on this host; NT path unreachable")
	}
	saved := NonTemporalThreshold
	NonTemporalThreshold = 256
	defer func() { NonTemporalThreshold = saved }()

	sizes := []int{256, 257, 300, 319, 320, 511, 512, 1024, 4096, 4099}
	for _, size := range sizes {
		for _, dstOff := range []int{0, 1, 7, 8, 33, 63} {
			runTierShapes(t, availableKernels()[0], size, dstOff, tierSrcs(t, 4, size, 3))
		}
	}
}

// TestNonTemporalAtProductionSizes runs one large pass (4 MiB) per shape
// with the threshold lowered to 1 MiB, so the streaming-store main loops
// are covered at production-scale buffers — many megabytes, many unrolled
// iterations — not just the small slabs the sweep above uses. The default
// threshold itself (32 MiB, past any LLC) is deliberately not crossed
// here: allocating >32 MiB per source slab is test overkill when the NT
// code path is identical at any size past the peel.
func TestNonTemporalAtProductionSizes(t *testing.T) {
	if asmLevel == levelNone {
		t.Skip("no asm tier on this host; NT path unreachable")
	}
	saved := NonTemporalThreshold
	NonTemporalThreshold = 1 << 20
	defer func() { NonTemporalThreshold = saved }()

	const size = 4 << 20
	for _, dstOff := range []int{0, 5} {
		runTierShapes(t, availableKernels()[0], size, dstOff, tierSrcs(t, 4, size, 0))
	}
}

// TestNtPeel pins the alignment-peel arithmetic: below the threshold it
// declines; at or above it, it returns however many bytes bring dst to a
// 64-byte boundary (zero when already aligned).
func TestNtPeel(t *testing.T) {
	saved := NonTemporalThreshold
	NonTemporalThreshold = 128
	defer func() { NonTemporalThreshold = saved }()

	raw := make([]byte, 512)
	// Find a 64-byte-aligned origin inside raw.
	origin := int(-ptr(raw) & 63)
	aligned := raw[origin:]
	if h := ntPeel(aligned[:64]); h != -1 {
		t.Fatalf("ntPeel below threshold = %d, want -1", h)
	}
	if h := ntPeel(aligned[:256]); h != 0 {
		t.Fatalf("ntPeel aligned = %d, want 0", h)
	}
	for _, off := range []int{1, 17, 63} {
		if h := ntPeel(aligned[off : off+256]); h != 64-off {
			t.Fatalf("ntPeel off=%d = %d, want %d", off, h, 64-off)
		}
	}
}

// TestDispatchAllocations pins the full dispatch chain — level branch, NT
// peel, asm stub call, word-path tail — at zero allocations for every
// shape, both below and above the streaming threshold (lowered so the
// 2 MiB size engages the non-temporal branch).
func TestDispatchAllocations(t *testing.T) {
	saved := NonTemporalThreshold
	NonTemporalThreshold = 1 << 20
	defer func() { NonTemporalThreshold = saved }()

	for _, size := range []int{4096, 2 << 20} {
		dst := make([]byte, size)
		a, b, c, e := make([]byte, size), make([]byte, size), make([]byte, size), make([]byte, size)
		for name, fn := range map[string]func(){
			"xor":   func() { xorKernel(dst, a) },
			"into":  func() { xorIntoKernel(dst, a, b) },
			"fold2": func() { fold2Kernel(dst, a, b) },
			"fold3": func() { fold3Kernel(dst, a, b, c) },
			"fold4": func() { fold4Kernel(dst, a, b, c, e) },
		} {
			if n := testing.AllocsPerRun(20, fn); n != 0 {
				t.Errorf("%s dispatch at size %d allocates %.1f times per call, want 0",
					name, size, n)
			}
		}
	}
}

// BenchmarkDispatchTiers reports throughput of every tier the host can
// run at a cache-resident and a streaming size, giving `go test -bench`
// users the same comparison c56-bench records in BENCH_xor.json.
func BenchmarkDispatchTiers(b *testing.B) {
	for _, size := range []int{4096, 2 << 20} {
		dst := make([]byte, size)
		src := make([]byte, size)
		for _, k := range availableKernels() {
			b.Run(fmt.Sprintf("%s/%d", k.name, size), func(b *testing.B) {
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					k.xor(dst, src)
				}
			})
		}
	}
}
