//go:build !purego

// The wide kernels: 64 bytes (eight uint64 words) per unrolled inner-loop
// iteration over unsafe-reinterpreted word slices. The reinterpretation is
// legal only when every operand starts on an 8-byte boundary; Go heap
// allocations of 8 bytes or more always do, so block buffers take this path
// and only deliberately mis-sliced views (tests, sub-block ranges at odd
// offsets) fall back to the word path. The 8-way unrolled body indexes a
// re-sliced 8-element window, which lets the compiler hoist the bounds
// check and vectorize the body — on amd64 this runs several times faster
// than the encoding/binary word loop and is limited by memory bandwidth
// for blocks beyond the L1 cache.
//
// The wide kernels are both a dispatch tier of their own (the fastest tier
// on hosts without SIMD assembly, and the whole fast path under -tags
// noasm) and the fallback the assembly dispatchers in dispatch_amd64.go /
// dispatch_arm64.go lean on for short blocks and ragged tails.
//
// Build with -tags purego to exclude this file and all unsafe use; the
// word path then serves every call (see kernel_purego.go).

package xorblk

import "unsafe"

// wideWords is the unroll factor of the wide inner loop, in uint64 words.
const wideWords = 8

// wideKernels is the wide tier for availableKernels: the fastest portable
// path, and the fallback tier of the assembly dispatchers.
var wideKernels = kernelSet{
	name:  "wide",
	xor:   xorWide,
	into:  xorIntoWide,
	fold2: fold2Wide,
	fold3: fold3Wide,
	fold4: fold4Wide,
}

// ptr returns b's data pointer for alignment tests. The empty-slice case
// never reaches it (callers test length first).
//
//c56:noalloc
func ptr(b []byte) uintptr { return uintptr(unsafe.Pointer(unsafe.SliceData(b))) }

// words reinterprets b's aligned prefix as uint64s.
//
//c56:noalloc
func words(b []byte) []uint64 {
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

//c56:noalloc
func xorWide(dst, src []byte) {
	n := len(dst)
	if n < wideWords*8 || (ptr(dst)|ptr(src))&7 != 0 {
		xorWords(dst, src)
		return
	}
	dw, sw := words(dst), words(src)
	i := 0
	for ; i+wideWords <= len(dw); i += wideWords {
		d := dw[i : i+wideWords : i+wideWords]
		s := sw[i : i+wideWords : i+wideWords]
		d[0] ^= s[0]
		d[1] ^= s[1]
		d[2] ^= s[2]
		d[3] ^= s[3]
		d[4] ^= s[4]
		d[5] ^= s[5]
		d[6] ^= s[6]
		d[7] ^= s[7]
	}
	for ; i < len(dw); i++ {
		dw[i] ^= sw[i]
	}
	for j := n &^ 7; j < n; j++ {
		dst[j] ^= src[j]
	}
}

//c56:noalloc
func xorIntoWide(dst, a, b []byte) {
	n := len(dst)
	if n < wideWords*8 || (ptr(dst)|ptr(a)|ptr(b))&7 != 0 {
		xorIntoWords(dst, a, b)
		return
	}
	dw, aw, bw := words(dst), words(a), words(b)
	i := 0
	for ; i+wideWords <= len(dw); i += wideWords {
		d := dw[i : i+wideWords : i+wideWords]
		x := aw[i : i+wideWords : i+wideWords]
		y := bw[i : i+wideWords : i+wideWords]
		d[0] = x[0] ^ y[0]
		d[1] = x[1] ^ y[1]
		d[2] = x[2] ^ y[2]
		d[3] = x[3] ^ y[3]
		d[4] = x[4] ^ y[4]
		d[5] = x[5] ^ y[5]
		d[6] = x[6] ^ y[6]
		d[7] = x[7] ^ y[7]
	}
	for ; i < len(dw); i++ {
		dw[i] = aw[i] ^ bw[i]
	}
	for j := n &^ 7; j < n; j++ {
		dst[j] = a[j] ^ b[j]
	}
}

//c56:noalloc
func fold2Wide(dst, a, b []byte) {
	n := len(dst)
	if n < wideWords*8 || (ptr(dst)|ptr(a)|ptr(b))&7 != 0 {
		fold2Words(dst, a, b)
		return
	}
	dw, aw, bw := words(dst), words(a), words(b)
	i := 0
	for ; i+wideWords <= len(dw); i += wideWords {
		d := dw[i : i+wideWords : i+wideWords]
		x := aw[i : i+wideWords : i+wideWords]
		y := bw[i : i+wideWords : i+wideWords]
		d[0] ^= x[0] ^ y[0]
		d[1] ^= x[1] ^ y[1]
		d[2] ^= x[2] ^ y[2]
		d[3] ^= x[3] ^ y[3]
		d[4] ^= x[4] ^ y[4]
		d[5] ^= x[5] ^ y[5]
		d[6] ^= x[6] ^ y[6]
		d[7] ^= x[7] ^ y[7]
	}
	for ; i < len(dw); i++ {
		dw[i] ^= aw[i] ^ bw[i]
	}
	for j := n &^ 7; j < n; j++ {
		dst[j] ^= a[j] ^ b[j]
	}
}

//c56:noalloc
func fold3Wide(dst, a, b, c []byte) {
	n := len(dst)
	if n < wideWords*8 || (ptr(dst)|ptr(a)|ptr(b)|ptr(c))&7 != 0 {
		fold3Words(dst, a, b, c)
		return
	}
	dw, aw, bw, cw := words(dst), words(a), words(b), words(c)
	i := 0
	for ; i+wideWords <= len(dw); i += wideWords {
		d := dw[i : i+wideWords : i+wideWords]
		x := aw[i : i+wideWords : i+wideWords]
		y := bw[i : i+wideWords : i+wideWords]
		z := cw[i : i+wideWords : i+wideWords]
		d[0] ^= x[0] ^ y[0] ^ z[0]
		d[1] ^= x[1] ^ y[1] ^ z[1]
		d[2] ^= x[2] ^ y[2] ^ z[2]
		d[3] ^= x[3] ^ y[3] ^ z[3]
		d[4] ^= x[4] ^ y[4] ^ z[4]
		d[5] ^= x[5] ^ y[5] ^ z[5]
		d[6] ^= x[6] ^ y[6] ^ z[6]
		d[7] ^= x[7] ^ y[7] ^ z[7]
	}
	for ; i < len(dw); i++ {
		dw[i] ^= aw[i] ^ bw[i] ^ cw[i]
	}
	for j := n &^ 7; j < n; j++ {
		dst[j] ^= a[j] ^ b[j] ^ c[j]
	}
}

//c56:noalloc
func fold4Wide(dst, a, b, c, e []byte) {
	n := len(dst)
	if n < wideWords*8 || (ptr(dst)|ptr(a)|ptr(b)|ptr(c)|ptr(e))&7 != 0 {
		fold4Words(dst, a, b, c, e)
		return
	}
	dw, aw, bw, cw, ew := words(dst), words(a), words(b), words(c), words(e)
	i := 0
	for ; i+wideWords <= len(dw); i += wideWords {
		d := dw[i : i+wideWords : i+wideWords]
		x := aw[i : i+wideWords : i+wideWords]
		y := bw[i : i+wideWords : i+wideWords]
		z := cw[i : i+wideWords : i+wideWords]
		w := ew[i : i+wideWords : i+wideWords]
		d[0] ^= x[0] ^ y[0] ^ z[0] ^ w[0]
		d[1] ^= x[1] ^ y[1] ^ z[1] ^ w[1]
		d[2] ^= x[2] ^ y[2] ^ z[2] ^ w[2]
		d[3] ^= x[3] ^ y[3] ^ z[3] ^ w[3]
		d[4] ^= x[4] ^ y[4] ^ z[4] ^ w[4]
		d[5] ^= x[5] ^ y[5] ^ z[5] ^ w[5]
		d[6] ^= x[6] ^ y[6] ^ z[6] ^ w[6]
		d[7] ^= x[7] ^ y[7] ^ z[7] ^ w[7]
	}
	for ; i < len(dw); i++ {
		dw[i] ^= aw[i] ^ bw[i] ^ cw[i] ^ ew[i]
	}
	for j := n &^ 7; j < n; j++ {
		dst[j] ^= a[j] ^ b[j] ^ c[j] ^ e[j]
	}
}
