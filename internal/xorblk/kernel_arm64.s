//go:build !purego && !noasm

// arm64 NEON XOR kernels. Each iteration moves 64 bytes per stream
// through four 128-bit vector registers; n is a positive multiple of 64
// (the dispatcher in dispatch_arm64.go folds the ragged tail through the
// word path). Loads and stores tolerate unaligned operands. Source
// pointers post-increment on load; the destination pointer post-increments
// on the final store.

#include "textflag.h"

// func neonXor(dst, src *byte, n int)
// dst[i] ^= src[i]
TEXT ·neonXor(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2

loop:
	VLD1.P 64(R1), [V0.B16, V1.B16, V2.B16, V3.B16]
	VLD1   (R0), [V4.B16, V5.B16, V6.B16, V7.B16]
	VEOR   V4.B16, V0.B16, V0.B16
	VEOR   V5.B16, V1.B16, V1.B16
	VEOR   V6.B16, V2.B16, V2.B16
	VEOR   V7.B16, V3.B16, V3.B16
	VST1.P [V0.B16, V1.B16, V2.B16, V3.B16], 64(R0)
	SUBS   $64, R2, R2
	BNE    loop
	RET

// func neonInto(dst, a, b *byte, n int)
// dst[i] = a[i] ^ b[i] (dst is not read)
TEXT ·neonInto(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3

loop:
	VLD1.P 64(R1), [V0.B16, V1.B16, V2.B16, V3.B16]
	VLD1.P 64(R2), [V4.B16, V5.B16, V6.B16, V7.B16]
	VEOR   V4.B16, V0.B16, V0.B16
	VEOR   V5.B16, V1.B16, V1.B16
	VEOR   V6.B16, V2.B16, V2.B16
	VEOR   V7.B16, V3.B16, V3.B16
	VST1.P [V0.B16, V1.B16, V2.B16, V3.B16], 64(R0)
	SUBS   $64, R3, R3
	BNE    loop
	RET

// func neonFold2(dst, a, b *byte, n int)
// dst[i] ^= a[i] ^ b[i]
TEXT ·neonFold2(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3

loop:
	VLD1.P 64(R1), [V0.B16, V1.B16, V2.B16, V3.B16]
	VLD1.P 64(R2), [V4.B16, V5.B16, V6.B16, V7.B16]
	VLD1   (R0), [V8.B16, V9.B16, V10.B16, V11.B16]
	VEOR   V4.B16, V0.B16, V0.B16
	VEOR   V5.B16, V1.B16, V1.B16
	VEOR   V6.B16, V2.B16, V2.B16
	VEOR   V7.B16, V3.B16, V3.B16
	VEOR   V8.B16, V0.B16, V0.B16
	VEOR   V9.B16, V1.B16, V1.B16
	VEOR   V10.B16, V2.B16, V2.B16
	VEOR   V11.B16, V3.B16, V3.B16
	VST1.P [V0.B16, V1.B16, V2.B16, V3.B16], 64(R0)
	SUBS   $64, R3, R3
	BNE    loop
	RET

// func neonFold3(dst, a, b, c *byte, n int)
// dst[i] ^= a[i] ^ b[i] ^ c[i]
TEXT ·neonFold3(SB), NOSPLIT, $0-40
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD c+24(FP), R3
	MOVD n+32(FP), R4

loop:
	VLD1.P 64(R1), [V0.B16, V1.B16, V2.B16, V3.B16]
	VLD1.P 64(R2), [V4.B16, V5.B16, V6.B16, V7.B16]
	VLD1.P 64(R3), [V8.B16, V9.B16, V10.B16, V11.B16]
	VLD1   (R0), [V12.B16, V13.B16, V14.B16, V15.B16]
	VEOR   V4.B16, V0.B16, V0.B16
	VEOR   V5.B16, V1.B16, V1.B16
	VEOR   V6.B16, V2.B16, V2.B16
	VEOR   V7.B16, V3.B16, V3.B16
	VEOR   V8.B16, V0.B16, V0.B16
	VEOR   V9.B16, V1.B16, V1.B16
	VEOR   V10.B16, V2.B16, V2.B16
	VEOR   V11.B16, V3.B16, V3.B16
	VEOR   V12.B16, V0.B16, V0.B16
	VEOR   V13.B16, V1.B16, V1.B16
	VEOR   V14.B16, V2.B16, V2.B16
	VEOR   V15.B16, V3.B16, V3.B16
	VST1.P [V0.B16, V1.B16, V2.B16, V3.B16], 64(R0)
	SUBS   $64, R4, R4
	BNE    loop
	RET

// func neonFold4(dst, a, b, c, e *byte, n int)
// dst[i] ^= a[i] ^ b[i] ^ c[i] ^ e[i]
TEXT ·neonFold4(SB), NOSPLIT, $0-48
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD c+24(FP), R3
	MOVD e+32(FP), R5
	MOVD n+40(FP), R4

loop:
	VLD1.P 64(R1), [V0.B16, V1.B16, V2.B16, V3.B16]
	VLD1.P 64(R2), [V4.B16, V5.B16, V6.B16, V7.B16]
	VLD1.P 64(R3), [V8.B16, V9.B16, V10.B16, V11.B16]
	VLD1.P 64(R5), [V12.B16, V13.B16, V14.B16, V15.B16]
	VLD1   (R0), [V16.B16, V17.B16, V18.B16, V19.B16]
	VEOR   V4.B16, V0.B16, V0.B16
	VEOR   V5.B16, V1.B16, V1.B16
	VEOR   V6.B16, V2.B16, V2.B16
	VEOR   V7.B16, V3.B16, V3.B16
	VEOR   V8.B16, V0.B16, V0.B16
	VEOR   V9.B16, V1.B16, V1.B16
	VEOR   V10.B16, V2.B16, V2.B16
	VEOR   V11.B16, V3.B16, V3.B16
	VEOR   V12.B16, V0.B16, V0.B16
	VEOR   V13.B16, V1.B16, V1.B16
	VEOR   V14.B16, V2.B16, V2.B16
	VEOR   V15.B16, V3.B16, V3.B16
	VEOR   V16.B16, V0.B16, V0.B16
	VEOR   V17.B16, V1.B16, V1.B16
	VEOR   V18.B16, V2.B16, V2.B16
	VEOR   V19.B16, V3.B16, V3.B16
	VST1.P [V0.B16, V1.B16, V2.B16, V3.B16], 64(R0)
	SUBS   $64, R4, R4
	BNE    loop
	RET
