package xorblk

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randBlock(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestXorMatchesBytes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 63, 64, 65, 4096, 4097} {
		a := randBlock(r, n)
		b := randBlock(r, n)
		want := append([]byte(nil), a...)
		XorBytes(want, b)
		got := append([]byte(nil), a...)
		Xor(got, b)
		if !bytes.Equal(got, want) {
			t.Errorf("n=%d: Xor disagrees with XorBytes", n)
		}
	}
}

func TestXorSelfInverse(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		orig := append([]byte(nil), a...)
		Xor(a, b)
		Xor(a, b)
		return bytes.Equal(a, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorCommutativeAssociative(t *testing.T) {
	f := func(a, b, c []byte) bool {
		n := min3(len(a), len(b), len(c))
		a, b, c = a[:n], b[:n], c[:n]
		// (a^b)^c
		x := append([]byte(nil), a...)
		Xor(x, b)
		Xor(x, c)
		// a^(c^b)
		y := append([]byte(nil), c...)
		Xor(y, b)
		Xor(y, a)
		return bytes.Equal(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func TestXorInto(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 3, 8, 100, 4096} {
		a := randBlock(r, n)
		b := randBlock(r, n)
		dst := randBlock(r, n) // garbage contents must be ignored
		XorInto(dst, a, b)
		want := append([]byte(nil), a...)
		Xor(want, b)
		if !bytes.Equal(dst, want) {
			t.Errorf("n=%d: XorInto wrong", n)
		}
	}
}

func TestXorMulti(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	srcs := make([][]byte, 5)
	for i := range srcs {
		srcs[i] = randBlock(r, 128)
	}
	dst := randBlock(r, 128)
	XorMulti(dst, srcs...)
	want := make([]byte, 128)
	for _, s := range srcs {
		XorBytes(want, s)
	}
	if !bytes.Equal(dst, want) {
		t.Error("XorMulti wrong")
	}
	// Zero sources zeroes dst.
	XorMulti(dst)
	if !IsZero(dst) {
		t.Error("XorMulti with no sources should zero dst")
	}
}

func TestAccumulateMulti(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := randBlock(r, 64)
	b := randBlock(r, 64)
	dst := append([]byte(nil), a...)
	n := AccumulateMulti(dst, b)
	if n != 1 {
		t.Errorf("op count = %d, want 1", n)
	}
	want := append([]byte(nil), a...)
	Xor(want, b)
	if !bytes.Equal(dst, want) {
		t.Error("AccumulateMulti wrong result")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(nil) {
		t.Error("nil should be zero")
	}
	if !IsZero(make([]byte, 100)) {
		t.Error("all-zero should be zero")
	}
	for _, pos := range []int{0, 7, 8, 9, 99} {
		b := make([]byte, 100)
		b[pos] = 1
		if IsZero(b) {
			t.Errorf("nonzero at %d not detected", pos)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]byte{1, 2}, []byte{1, 2}) {
		t.Error("equal slices reported unequal")
	}
	if Equal([]byte{1, 2}, []byte{1, 3}) {
		t.Error("unequal contents reported equal")
	}
	if Equal([]byte{1}, []byte{1, 2}) {
		t.Error("unequal lengths reported equal")
	}
}

func TestXorPanicsOnMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"Xor":           func() { Xor(make([]byte, 3), make([]byte, 4)) },
		"XorBytes":      func() { XorBytes(make([]byte, 3), make([]byte, 4)) },
		"XorInto":       func() { XorInto(make([]byte, 3), make([]byte, 3), make([]byte, 4)) },
		"XorMulti":      func() { XorMulti(make([]byte, 3), make([]byte, 3), make([]byte, 4)) },
		"XorMultiRange": func() { XorMultiRange(make([]byte, 3), 0, 3, make([]byte, 4)) },
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
					return
				}
				// The message must name both lengths so the culprit block
				// is identifiable from the panic alone.
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "3") || !strings.Contains(msg, "4") {
					t.Errorf("%s: panic message %q does not include both lengths", name, msg)
				}
			}()
			f()
		}()
	}
}

func TestXorMultiRangePanicsOutOfBounds(t *testing.T) {
	for name, f := range map[string]func(){
		"lo<0":  func() { XorMultiRange(make([]byte, 8), -1, 4) },
		"hi>n":  func() { XorMultiRange(make([]byte, 8), 0, 9) },
		"lo>hi": func() { XorMultiRange(make([]byte, 8), 5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on bad range", name)
				}
			}()
			f()
		}()
	}
}

// The per-path kernel benchmarks live in kernel_bench_test.go
// (BenchmarkXorKernel compares the wide, word and byte paths by size).
