package xorblk

import (
	"bytes"
	"math/rand"
	"testing"
)

// foldedRef computes the reference XOR of srcs via the portable byte kernel:
// zero dst, then fold each source in sequence (k block XORs for k sources).
func foldedRef(n int, srcs [][]byte) []byte {
	want := make([]byte, n)
	for _, s := range srcs {
		XorBytes(want, s)
	}
	return want
}

// TestXorMultiManySources exercises the 2/3/4-way unrolled paths: every
// source count from 0 to 9 crosses the fold4/fold3/fold2/Xor tail cases,
// and the lengths cover word-aligned, odd, and sub-word blocks.
func TestXorMultiManySources(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 5, 8, 13, 16, 24, 31, 64, 100, 4096, 4099} {
		for k := 0; k <= 9; k++ {
			srcs := make([][]byte, k)
			for i := range srcs {
				srcs[i] = randBlock(r, n)
			}
			dst := randBlock(r, n) // prior contents must be ignored
			ops := XorMulti(dst, srcs...)
			if !bytes.Equal(dst, foldedRef(n, srcs)) {
				t.Errorf("n=%d k=%d: XorMulti disagrees with folded XorBytes", n, k)
			}
			wantOps := k - 1
			if k == 0 {
				wantOps = 0
			}
			if ops != wantOps {
				t.Errorf("n=%d k=%d: XorMulti reported %d XOR ops, want %d", n, k, ops, wantOps)
			}
		}
	}
}

// TestXorMultiOpCountRegression is the cost-model regression: folding k
// sources with XorMulti must never exceed the XOR count of k sequential Xor
// calls into a zeroed destination. Backed by BenchmarkXorMulti4Src /
// BenchmarkXorSequential4Src, which compare the wall-clock side.
func TestXorMultiOpCountRegression(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for k := 1; k <= 8; k++ {
		srcs := make([][]byte, k)
		for i := range srcs {
			srcs[i] = randBlock(r, 4096)
		}
		dst := make([]byte, 4096)
		multiOps := XorMulti(dst, srcs...)
		// Sequential baseline: zero dst, Xor each source = k block XORs.
		seqOps := 0
		seq := make([]byte, 4096)
		for _, s := range srcs {
			Xor(seq, s)
			seqOps++
		}
		if multiOps > seqOps {
			t.Errorf("k=%d: XorMulti spent %d block XORs, sequential spends %d", k, multiOps, seqOps)
		}
		if !bytes.Equal(dst, seq) {
			t.Errorf("k=%d: XorMulti result diverges from sequential folding", k)
		}
	}
}

// TestXorMultiRangeMatchesWhole splits a block into chunks (including odd
// split points) and checks the ranges compose to exactly XorMulti's result.
func TestXorMultiRangeMatchesWhole(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const n = 1000
	srcs := make([][]byte, 5)
	for i := range srcs {
		srcs[i] = randBlock(r, n)
	}
	want := make([]byte, n)
	XorMulti(want, srcs...)

	for _, cuts := range [][]int{
		{0, n},
		{0, 1, n},
		{0, 500, n},
		{0, 7, 13, 512, 999, n},
	} {
		dst := randBlock(r, n)
		for i := 0; i+1 < len(cuts); i++ {
			XorMultiRange(dst, cuts[i], cuts[i+1], srcs...)
		}
		if !bytes.Equal(dst, want) {
			t.Errorf("cuts %v: chunked XorMultiRange diverges from XorMulti", cuts)
		}
	}

	// Untouched bytes outside the range must survive.
	dst := bytes.Repeat([]byte{0xAA}, n)
	XorMultiRange(dst, 100, 200, srcs...)
	for i, b := range dst {
		inRange := i >= 100 && i < 200
		if !inRange && b != 0xAA {
			t.Fatalf("byte %d outside [100,200) was modified", i)
		}
		if inRange && b != want[i] {
			t.Fatalf("byte %d inside range wrong", i)
		}
	}

	// Empty source list zeroes only the range.
	XorMultiRange(dst, 0, 50)
	if !IsZero(dst[:50]) {
		t.Error("empty-source range not zeroed")
	}
	if dst[150] != want[150] {
		t.Error("bytes beyond empty-source range modified")
	}
}

func benchMulti(b *testing.B, k, n int, multi bool) {
	r := rand.New(rand.NewSource(10))
	srcs := make([][]byte, k)
	for i := range srcs {
		srcs[i] = randBlock(r, n)
	}
	dst := make([]byte, n)
	b.SetBytes(int64(k * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if multi {
			XorMulti(dst, srcs...)
		} else {
			clear(dst)
			for _, s := range srcs {
				Xor(dst, s)
			}
		}
	}
}

func BenchmarkXorMulti4Src4K(b *testing.B)      { benchMulti(b, 4, 4096, true) }
func BenchmarkXorSequential4Src4K(b *testing.B) { benchMulti(b, 4, 4096, false) }
func BenchmarkXorMulti8Src4K(b *testing.B)      { benchMulti(b, 8, 4096, true) }
func BenchmarkXorSequential8Src4K(b *testing.B) { benchMulti(b, 8, 4096, false) }
func BenchmarkXorMulti12Src64K(b *testing.B)    { benchMulti(b, 12, 65536, true) }
func BenchmarkXorSequential12Src64K(b *testing.B) {
	benchMulti(b, 12, 65536, false)
}
