//go:build purego

// Portable kernel bindings: with -tags purego no unsafe code and no
// assembly is compiled and every kernel resolves to the encoding/binary
// word path. Every dispatch file must define exactly the same symbols
// (xorKernel..., KernelName, Features, availableKernels) — CI builds and
// tests every tag set so none can rot.

package xorblk

// KernelName identifies the fast path compiled into this binary.
const KernelName = "word"

// Features lists the detected CPU SIMD features. The purego build probes
// nothing and uses none.
func Features() []string { return nil }

// availableKernels lists the tiers this build can run: the word path only.
func availableKernels() []kernelSet { return []kernelSet{wordKernels} }

//c56:noalloc
func xorKernel(dst, src []byte) { xorWords(dst, src) }

//c56:noalloc
func xorIntoKernel(dst, a, b []byte) { xorIntoWords(dst, a, b) }

//c56:noalloc
func fold2Kernel(dst, a, b []byte) { fold2Words(dst, a, b) }

//c56:noalloc
func fold3Kernel(dst, a, b, c []byte) { fold3Words(dst, a, b, c) }

//c56:noalloc
func fold4Kernel(dst, a, b, c, e []byte) {
	fold4Words(dst, a, b, c, e)
}
