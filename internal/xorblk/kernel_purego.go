//go:build purego

// Portable kernel bindings: with -tags purego no unsafe code is compiled
// and every kernel resolves to the encoding/binary word path. This file
// and kernel_wide.go must define exactly the same symbols — CI builds and
// tests both tag sets so neither can rot.

package xorblk

// KernelName identifies the fast path compiled into this binary.
const KernelName = "word"

func xorKernel(dst, src []byte)       { xorWords(dst, src) }
func xorIntoKernel(dst, a, b []byte)  { xorIntoWords(dst, a, b) }
func fold2Kernel(dst, a, b []byte)    { fold2Words(dst, a, b) }
func fold3Kernel(dst, a, b, c []byte) { fold3Words(dst, a, b, c) }
func fold4Kernel(dst, a, b, c, e []byte) {
	fold4Words(dst, a, b, c, e)
}
