package xorblk

// This file is the build-independent spine of the kernel dispatch: every
// build (default, -tags noasm, -tags purego, any GOARCH) provides the same
// two hooks —
//
//   - availableKernels(): the full five-shape kernel sets this binary can
//     run on this host, fastest first, always ending with the portable
//     word set. The cross-tier equivalence tests iterate it so every tier
//     the host can execute is verified bit-identical against the byte
//     reference, and Tiers() projects it for benchmarks.
//   - KernelName / Features(): what the dispatcher selected, so benchmark
//     reports (BENCH_xor.json, BENCH_parallel.json) record which kernel
//     produced their numbers.
//
// The dispatch files (kernel_purego.go, dispatch_generic.go,
// dispatch_amd64.go, dispatch_arm64.go) each define availableKernels,
// KernelName, Features and the xorKernel/... bindings for exactly one
// build-tag combination; CI builds and tests all of them so none can rot.

// kernelSet bundles the five kernel shapes of one dispatch tier. Every
// shape must be bit-identical to the byte reference for all lengths and
// alignments — the tier tests enforce that for each set returned by
// availableKernels.
type kernelSet struct {
	name  string
	xor   func(dst, src []byte)
	into  func(dst, a, b []byte)
	fold2 func(dst, a, b []byte)
	fold3 func(dst, a, b, c []byte)
	fold4 func(dst, a, b, c, e []byte)
}

// wordKernels is the portable tier present in every build: eight bytes per
// iteration through encoding/binary, no unsafe, no assembly.
var wordKernels = kernelSet{
	name:  "word",
	xor:   xorWords,
	into:  xorIntoWords,
	fold2: fold2Words,
	fold3: fold3Words,
	fold4: fold4Words,
}

// KernelTier is one selectable dst ^= src implementation, exported for
// benchmark sweeps (cmd/c56-bench) so they measure every tier the host can
// run rather than hard-coding kernel names.
type KernelTier struct {
	// Name identifies the tier: "avx512", "avx2", "neon", "wide", "word"
	// or "byte".
	Name string
	// Xor computes dst[i] ^= src[i] with this tier's kernel.
	Xor func(dst, src []byte)
}

// Tiers returns every xor tier this binary can run on this host, fastest
// first, ending with the byte reference. Tiers()[0] is the kernel the
// package-level entry points dispatch to; its name equals KernelName.
func Tiers() []KernelTier {
	ks := availableKernels()
	out := make([]KernelTier, 0, len(ks)+1)
	for _, k := range ks {
		out = append(out, KernelTier{Name: k.name, Xor: k.xor})
	}
	return append(out, KernelTier{Name: "byte", Xor: XorBytes})
}
