//go:build !purego && !noasm

#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
