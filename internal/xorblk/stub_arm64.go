//go:build !purego && !noasm

// Assembly stub declarations for the arm64 NEON kernels (kernel_arm64.s).
// n is a positive multiple of 64 bytes; operands may be unaligned (arm64
// vector loads and stores tolerate any alignment). The //go:noescape
// annotations keep the dispatcher's &slice[0] arguments off the heap,
// preserving the package's zero-allocation contract.

package xorblk

//go:noescape
func neonXor(dst, src *byte, n int)

//go:noescape
func neonInto(dst, a, b *byte, n int)

//go:noescape
func neonFold2(dst, a, b *byte, n int)

//go:noescape
func neonFold3(dst, a, b, c *byte, n int)

//go:noescape
func neonFold4(dst, a, b, c, e *byte, n int)
