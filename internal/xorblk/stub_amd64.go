//go:build !purego && !noasm

// Assembly stub declarations for the amd64 kernels (kernel_amd64.s) and
// the init-time CPU probe (cpuid_amd64.s). Every kernel takes raw data
// pointers plus a byte count n that the dispatcher has already floored to
// a whole number of vector lanes (32 bytes for AVX2, 64 for AVX-512,
// n > 0); nt selects non-temporal stores and requires dst to be 64-byte
// aligned. The //go:noescape annotations keep the dispatcher's &slice[0]
// arguments off the heap, preserving the package's zero-allocation
// contract.

package xorblk

// cpuid executes CPUID with the given leaf and subleaf.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

//go:noescape
func avx2Xor(dst, src *byte, n int, nt bool)

//go:noescape
func avx2Into(dst, a, b *byte, n int, nt bool)

//go:noescape
func avx2Fold2(dst, a, b *byte, n int, nt bool)

//go:noescape
func avx2Fold3(dst, a, b, c *byte, n int, nt bool)

//go:noescape
func avx2Fold4(dst, a, b, c, e *byte, n int, nt bool)

//go:noescape
func avx512Xor(dst, src *byte, n int, nt bool)

//go:noescape
func avx512Into(dst, a, b *byte, n int, nt bool)

//go:noescape
func avx512Fold2(dst, a, b *byte, n int, nt bool)

//go:noescape
func avx512Fold3(dst, a, b, c *byte, n int, nt bool)

//go:noescape
func avx512Fold4(dst, a, b, c, e *byte, n int, nt bool)
