//go:build !purego && !noasm

// amd64 XOR kernels. Shared conventions (see stub_amd64.go for the Go
// signatures and dispatch_amd64.go for the selection logic):
//
//   - n is a positive multiple of the lane width (32 bytes for the AVX2
//     kernels, 64 for AVX-512); the dispatcher folds the ragged tail
//     through the word path.
//   - Sources and destination may be unaligned (VMOVDQU/VMOVDQU64 loads
//     and stores), except under nt, where the destination must be 64-byte
//     aligned for VMOVNTDQ; the dispatcher peels the head to guarantee it.
//   - The main loops process four vector registers per iteration (128 B
//     for AVX2, 256 B for AVX-512); the remainder loop finishes one lane
//     at a time with cached stores (at most three lanes, not worth a
//     streaming variant).
//   - nt selects the non-temporal main loop, ending with SFENCE so the
//     weakly-ordered streaming stores are globally visible before return.
//   - Every kernel ends with VZEROUPPER so the caller's SSE code pays no
//     AVX transition penalty.

#include "textflag.h"

// func avx2Xor(dst, src *byte, n int, nt bool)
// dst[i] ^= src[i]
TEXT ·avx2Xor(SB), NOSPLIT, $0-25
	MOVQ    dst+0(FP), DI
	MOVQ    src+8(FP), SI
	MOVQ    n+16(FP), CX
	MOVBQZX nt+24(FP), AX
	MOVQ    CX, DX
	SHRQ    $7, CX            // CX = 128-byte iterations
	ANDQ    $127, DX          // DX = remainder bytes (multiple of 32)
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ   CX, CX
	JZ      rem
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VPXOR   64(DI), Y2, Y2
	VPXOR   96(DI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	DECQ    CX
	JMP     loop

ntloop:
	TESTQ    CX, CX
	JZ       ntdone
	VMOVDQU  (SI), Y0
	VMOVDQU  32(SI), Y1
	VMOVDQU  64(SI), Y2
	VMOVDQU  96(SI), Y3
	VPXOR    (DI), Y0, Y0
	VPXOR    32(DI), Y1, Y1
	VPXOR    64(DI), Y2, Y2
	VPXOR    96(DI), Y3, Y3
	VMOVNTDQ Y0, (DI)
	VMOVNTDQ Y1, 32(DI)
	VMOVNTDQ Y2, 64(DI)
	VMOVNTDQ Y3, 96(DI)
	ADDQ     $128, SI
	ADDQ     $128, DI
	DECQ     CX
	JMP      ntloop

ntdone:
	SFENCE

rem:
	TESTQ   DX, DX
	JZ      done
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, DX
	JMP     rem

done:
	VZEROUPPER
	RET

// func avx2Into(dst, a, b *byte, n int, nt bool)
// dst[i] = a[i] ^ b[i] (dst is not read)
TEXT ·avx2Into(SB), NOSPLIT, $0-33
	MOVQ    dst+0(FP), DI
	MOVQ    a+8(FP), SI
	MOVQ    b+16(FP), R8
	MOVQ    n+24(FP), CX
	MOVBQZX nt+32(FP), AX
	MOVQ    CX, DX
	SHRQ    $7, CX
	ANDQ    $127, DX
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ   CX, CX
	JZ      rem
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VPXOR   64(R8), Y2, Y2
	VPXOR   96(R8), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, R8
	ADDQ    $128, DI
	DECQ    CX
	JMP     loop

ntloop:
	TESTQ    CX, CX
	JZ       ntdone
	VMOVDQU  (SI), Y0
	VMOVDQU  32(SI), Y1
	VMOVDQU  64(SI), Y2
	VMOVDQU  96(SI), Y3
	VPXOR    (R8), Y0, Y0
	VPXOR    32(R8), Y1, Y1
	VPXOR    64(R8), Y2, Y2
	VPXOR    96(R8), Y3, Y3
	VMOVNTDQ Y0, (DI)
	VMOVNTDQ Y1, 32(DI)
	VMOVNTDQ Y2, 64(DI)
	VMOVNTDQ Y3, 96(DI)
	ADDQ     $128, SI
	ADDQ     $128, R8
	ADDQ     $128, DI
	DECQ     CX
	JMP      ntloop

ntdone:
	SFENCE

rem:
	TESTQ   DX, DX
	JZ      done
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, DI
	SUBQ    $32, DX
	JMP     rem

done:
	VZEROUPPER
	RET

// func avx2Fold2(dst, a, b *byte, n int, nt bool)
// dst[i] ^= a[i] ^ b[i]
TEXT ·avx2Fold2(SB), NOSPLIT, $0-33
	MOVQ    dst+0(FP), DI
	MOVQ    a+8(FP), SI
	MOVQ    b+16(FP), R8
	MOVQ    n+24(FP), CX
	MOVBQZX nt+32(FP), AX
	MOVQ    CX, DX
	SHRQ    $7, CX
	ANDQ    $127, DX
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ   CX, CX
	JZ      rem
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VPXOR   64(R8), Y2, Y2
	VPXOR   96(R8), Y3, Y3
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VPXOR   64(DI), Y2, Y2
	VPXOR   96(DI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, R8
	ADDQ    $128, DI
	DECQ    CX
	JMP     loop

ntloop:
	TESTQ    CX, CX
	JZ       ntdone
	VMOVDQU  (SI), Y0
	VMOVDQU  32(SI), Y1
	VMOVDQU  64(SI), Y2
	VMOVDQU  96(SI), Y3
	VPXOR    (R8), Y0, Y0
	VPXOR    32(R8), Y1, Y1
	VPXOR    64(R8), Y2, Y2
	VPXOR    96(R8), Y3, Y3
	VPXOR    (DI), Y0, Y0
	VPXOR    32(DI), Y1, Y1
	VPXOR    64(DI), Y2, Y2
	VPXOR    96(DI), Y3, Y3
	VMOVNTDQ Y0, (DI)
	VMOVNTDQ Y1, 32(DI)
	VMOVNTDQ Y2, 64(DI)
	VMOVNTDQ Y3, 96(DI)
	ADDQ     $128, SI
	ADDQ     $128, R8
	ADDQ     $128, DI
	DECQ     CX
	JMP      ntloop

ntdone:
	SFENCE

rem:
	TESTQ   DX, DX
	JZ      done
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, DI
	SUBQ    $32, DX
	JMP     rem

done:
	VZEROUPPER
	RET

// func avx2Fold3(dst, a, b, c *byte, n int, nt bool)
// dst[i] ^= a[i] ^ b[i] ^ c[i]
TEXT ·avx2Fold3(SB), NOSPLIT, $0-41
	MOVQ    dst+0(FP), DI
	MOVQ    a+8(FP), SI
	MOVQ    b+16(FP), R8
	MOVQ    c+24(FP), R9
	MOVQ    n+32(FP), CX
	MOVBQZX nt+40(FP), AX
	MOVQ    CX, DX
	SHRQ    $7, CX
	ANDQ    $127, DX
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ   CX, CX
	JZ      rem
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VPXOR   64(R8), Y2, Y2
	VPXOR   96(R8), Y3, Y3
	VPXOR   (R9), Y0, Y0
	VPXOR   32(R9), Y1, Y1
	VPXOR   64(R9), Y2, Y2
	VPXOR   96(R9), Y3, Y3
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VPXOR   64(DI), Y2, Y2
	VPXOR   96(DI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, R8
	ADDQ    $128, R9
	ADDQ    $128, DI
	DECQ    CX
	JMP     loop

ntloop:
	TESTQ    CX, CX
	JZ       ntdone
	VMOVDQU  (SI), Y0
	VMOVDQU  32(SI), Y1
	VMOVDQU  64(SI), Y2
	VMOVDQU  96(SI), Y3
	VPXOR    (R8), Y0, Y0
	VPXOR    32(R8), Y1, Y1
	VPXOR    64(R8), Y2, Y2
	VPXOR    96(R8), Y3, Y3
	VPXOR    (R9), Y0, Y0
	VPXOR    32(R9), Y1, Y1
	VPXOR    64(R9), Y2, Y2
	VPXOR    96(R9), Y3, Y3
	VPXOR    (DI), Y0, Y0
	VPXOR    32(DI), Y1, Y1
	VPXOR    64(DI), Y2, Y2
	VPXOR    96(DI), Y3, Y3
	VMOVNTDQ Y0, (DI)
	VMOVNTDQ Y1, 32(DI)
	VMOVNTDQ Y2, 64(DI)
	VMOVNTDQ Y3, 96(DI)
	ADDQ     $128, SI
	ADDQ     $128, R8
	ADDQ     $128, R9
	ADDQ     $128, DI
	DECQ     CX
	JMP      ntloop

ntdone:
	SFENCE

rem:
	TESTQ   DX, DX
	JZ      done
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VPXOR   (R9), Y0, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, DI
	SUBQ    $32, DX
	JMP     rem

done:
	VZEROUPPER
	RET

// func avx2Fold4(dst, a, b, c, e *byte, n int, nt bool)
// dst[i] ^= a[i] ^ b[i] ^ c[i] ^ e[i]
TEXT ·avx2Fold4(SB), NOSPLIT, $0-49
	MOVQ    dst+0(FP), DI
	MOVQ    a+8(FP), SI
	MOVQ    b+16(FP), R8
	MOVQ    c+24(FP), R9
	MOVQ    e+32(FP), R10
	MOVQ    n+40(FP), CX
	MOVBQZX nt+48(FP), AX
	MOVQ    CX, DX
	SHRQ    $7, CX
	ANDQ    $127, DX
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ   CX, CX
	JZ      rem
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VPXOR   (R8), Y0, Y0
	VPXOR   32(R8), Y1, Y1
	VPXOR   64(R8), Y2, Y2
	VPXOR   96(R8), Y3, Y3
	VPXOR   (R9), Y0, Y0
	VPXOR   32(R9), Y1, Y1
	VPXOR   64(R9), Y2, Y2
	VPXOR   96(R9), Y3, Y3
	VPXOR   (R10), Y0, Y0
	VPXOR   32(R10), Y1, Y1
	VPXOR   64(R10), Y2, Y2
	VPXOR   96(R10), Y3, Y3
	VPXOR   (DI), Y0, Y0
	VPXOR   32(DI), Y1, Y1
	VPXOR   64(DI), Y2, Y2
	VPXOR   96(DI), Y3, Y3
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, R8
	ADDQ    $128, R9
	ADDQ    $128, R10
	ADDQ    $128, DI
	DECQ    CX
	JMP     loop

ntloop:
	TESTQ    CX, CX
	JZ       ntdone
	VMOVDQU  (SI), Y0
	VMOVDQU  32(SI), Y1
	VMOVDQU  64(SI), Y2
	VMOVDQU  96(SI), Y3
	VPXOR    (R8), Y0, Y0
	VPXOR    32(R8), Y1, Y1
	VPXOR    64(R8), Y2, Y2
	VPXOR    96(R8), Y3, Y3
	VPXOR    (R9), Y0, Y0
	VPXOR    32(R9), Y1, Y1
	VPXOR    64(R9), Y2, Y2
	VPXOR    96(R9), Y3, Y3
	VPXOR    (R10), Y0, Y0
	VPXOR    32(R10), Y1, Y1
	VPXOR    64(R10), Y2, Y2
	VPXOR    96(R10), Y3, Y3
	VPXOR    (DI), Y0, Y0
	VPXOR    32(DI), Y1, Y1
	VPXOR    64(DI), Y2, Y2
	VPXOR    96(DI), Y3, Y3
	VMOVNTDQ Y0, (DI)
	VMOVNTDQ Y1, 32(DI)
	VMOVNTDQ Y2, 64(DI)
	VMOVNTDQ Y3, 96(DI)
	ADDQ     $128, SI
	ADDQ     $128, R8
	ADDQ     $128, R9
	ADDQ     $128, R10
	ADDQ     $128, DI
	DECQ     CX
	JMP      ntloop

ntdone:
	SFENCE

rem:
	TESTQ   DX, DX
	JZ      done
	VMOVDQU (SI), Y0
	VPXOR   (R8), Y0, Y0
	VPXOR   (R9), Y0, Y0
	VPXOR   (R10), Y0, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, DI
	SUBQ    $32, DX
	JMP     rem

done:
	VZEROUPPER
	RET

// func avx512Xor(dst, src *byte, n int, nt bool)
// dst[i] ^= src[i]
TEXT ·avx512Xor(SB), NOSPLIT, $0-25
	MOVQ    dst+0(FP), DI
	MOVQ    src+8(FP), SI
	MOVQ    n+16(FP), CX
	MOVBQZX nt+24(FP), AX
	MOVQ    CX, DX
	SHRQ    $8, CX            // CX = 256-byte iterations
	ANDQ    $255, DX          // DX = remainder bytes (multiple of 64)
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ     CX, CX
	JZ        rem
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VPXORQ    128(DI), Z2, Z2
	VPXORQ    192(DI), Z3, Z3
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	VMOVDQU64 Z2, 128(DI)
	VMOVDQU64 Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, DI
	DECQ      CX
	JMP       loop

ntloop:
	TESTQ     CX, CX
	JZ        ntdone
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VPXORQ    128(DI), Z2, Z2
	VPXORQ    192(DI), Z3, Z3
	VMOVNTDQ  Z0, (DI)
	VMOVNTDQ  Z1, 64(DI)
	VMOVNTDQ  Z2, 128(DI)
	VMOVNTDQ  Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, DI
	DECQ      CX
	JMP       ntloop

ntdone:
	SFENCE

rem:
	TESTQ     DX, DX
	JZ        done
	VMOVDQU64 (SI), Z0
	VPXORQ    (DI), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	SUBQ      $64, DX
	JMP       rem

done:
	VZEROUPPER
	RET

// func avx512Into(dst, a, b *byte, n int, nt bool)
// dst[i] = a[i] ^ b[i] (dst is not read)
TEXT ·avx512Into(SB), NOSPLIT, $0-33
	MOVQ    dst+0(FP), DI
	MOVQ    a+8(FP), SI
	MOVQ    b+16(FP), R8
	MOVQ    n+24(FP), CX
	MOVBQZX nt+32(FP), AX
	MOVQ    CX, DX
	SHRQ    $8, CX
	ANDQ    $255, DX
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ     CX, CX
	JZ        rem
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    128(R8), Z2, Z2
	VPXORQ    192(R8), Z3, Z3
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	VMOVDQU64 Z2, 128(DI)
	VMOVDQU64 Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, R8
	ADDQ      $256, DI
	DECQ      CX
	JMP       loop

ntloop:
	TESTQ     CX, CX
	JZ        ntdone
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    128(R8), Z2, Z2
	VPXORQ    192(R8), Z3, Z3
	VMOVNTDQ  Z0, (DI)
	VMOVNTDQ  Z1, 64(DI)
	VMOVNTDQ  Z2, 128(DI)
	VMOVNTDQ  Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, R8
	ADDQ      $256, DI
	DECQ      CX
	JMP       ntloop

ntdone:
	SFENCE

rem:
	TESTQ     DX, DX
	JZ        done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ      $64, SI
	ADDQ      $64, R8
	ADDQ      $64, DI
	SUBQ      $64, DX
	JMP       rem

done:
	VZEROUPPER
	RET

// func avx512Fold2(dst, a, b *byte, n int, nt bool)
// dst[i] ^= a[i] ^ b[i]
TEXT ·avx512Fold2(SB), NOSPLIT, $0-33
	MOVQ    dst+0(FP), DI
	MOVQ    a+8(FP), SI
	MOVQ    b+16(FP), R8
	MOVQ    n+24(FP), CX
	MOVBQZX nt+32(FP), AX
	MOVQ    CX, DX
	SHRQ    $8, CX
	ANDQ    $255, DX
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ     CX, CX
	JZ        rem
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    128(R8), Z2, Z2
	VPXORQ    192(R8), Z3, Z3
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VPXORQ    128(DI), Z2, Z2
	VPXORQ    192(DI), Z3, Z3
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	VMOVDQU64 Z2, 128(DI)
	VMOVDQU64 Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, R8
	ADDQ      $256, DI
	DECQ      CX
	JMP       loop

ntloop:
	TESTQ     CX, CX
	JZ        ntdone
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    128(R8), Z2, Z2
	VPXORQ    192(R8), Z3, Z3
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VPXORQ    128(DI), Z2, Z2
	VPXORQ    192(DI), Z3, Z3
	VMOVNTDQ  Z0, (DI)
	VMOVNTDQ  Z1, 64(DI)
	VMOVNTDQ  Z2, 128(DI)
	VMOVNTDQ  Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, R8
	ADDQ      $256, DI
	DECQ      CX
	JMP       ntloop

ntdone:
	SFENCE

rem:
	TESTQ     DX, DX
	JZ        done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VPXORQ    (DI), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ      $64, SI
	ADDQ      $64, R8
	ADDQ      $64, DI
	SUBQ      $64, DX
	JMP       rem

done:
	VZEROUPPER
	RET

// func avx512Fold3(dst, a, b, c *byte, n int, nt bool)
// dst[i] ^= a[i] ^ b[i] ^ c[i]
TEXT ·avx512Fold3(SB), NOSPLIT, $0-41
	MOVQ    dst+0(FP), DI
	MOVQ    a+8(FP), SI
	MOVQ    b+16(FP), R8
	MOVQ    c+24(FP), R9
	MOVQ    n+32(FP), CX
	MOVBQZX nt+40(FP), AX
	MOVQ    CX, DX
	SHRQ    $8, CX
	ANDQ    $255, DX
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ     CX, CX
	JZ        rem
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    128(R8), Z2, Z2
	VPXORQ    192(R8), Z3, Z3
	VPXORQ    (R9), Z0, Z0
	VPXORQ    64(R9), Z1, Z1
	VPXORQ    128(R9), Z2, Z2
	VPXORQ    192(R9), Z3, Z3
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VPXORQ    128(DI), Z2, Z2
	VPXORQ    192(DI), Z3, Z3
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	VMOVDQU64 Z2, 128(DI)
	VMOVDQU64 Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, R8
	ADDQ      $256, R9
	ADDQ      $256, DI
	DECQ      CX
	JMP       loop

ntloop:
	TESTQ     CX, CX
	JZ        ntdone
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    128(R8), Z2, Z2
	VPXORQ    192(R8), Z3, Z3
	VPXORQ    (R9), Z0, Z0
	VPXORQ    64(R9), Z1, Z1
	VPXORQ    128(R9), Z2, Z2
	VPXORQ    192(R9), Z3, Z3
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VPXORQ    128(DI), Z2, Z2
	VPXORQ    192(DI), Z3, Z3
	VMOVNTDQ  Z0, (DI)
	VMOVNTDQ  Z1, 64(DI)
	VMOVNTDQ  Z2, 128(DI)
	VMOVNTDQ  Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, R8
	ADDQ      $256, R9
	ADDQ      $256, DI
	DECQ      CX
	JMP       ntloop

ntdone:
	SFENCE

rem:
	TESTQ     DX, DX
	JZ        done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VPXORQ    (R9), Z0, Z0
	VPXORQ    (DI), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ      $64, SI
	ADDQ      $64, R8
	ADDQ      $64, R9
	ADDQ      $64, DI
	SUBQ      $64, DX
	JMP       rem

done:
	VZEROUPPER
	RET

// func avx512Fold4(dst, a, b, c, e *byte, n int, nt bool)
// dst[i] ^= a[i] ^ b[i] ^ c[i] ^ e[i]
TEXT ·avx512Fold4(SB), NOSPLIT, $0-49
	MOVQ    dst+0(FP), DI
	MOVQ    a+8(FP), SI
	MOVQ    b+16(FP), R8
	MOVQ    c+24(FP), R9
	MOVQ    e+32(FP), R10
	MOVQ    n+40(FP), CX
	MOVBQZX nt+48(FP), AX
	MOVQ    CX, DX
	SHRQ    $8, CX
	ANDQ    $255, DX
	TESTQ   AX, AX
	JNZ     ntloop

loop:
	TESTQ     CX, CX
	JZ        rem
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    128(R8), Z2, Z2
	VPXORQ    192(R8), Z3, Z3
	VPXORQ    (R9), Z0, Z0
	VPXORQ    64(R9), Z1, Z1
	VPXORQ    128(R9), Z2, Z2
	VPXORQ    192(R9), Z3, Z3
	VPXORQ    (R10), Z0, Z0
	VPXORQ    64(R10), Z1, Z1
	VPXORQ    128(R10), Z2, Z2
	VPXORQ    192(R10), Z3, Z3
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VPXORQ    128(DI), Z2, Z2
	VPXORQ    192(DI), Z3, Z3
	VMOVDQU64 Z0, (DI)
	VMOVDQU64 Z1, 64(DI)
	VMOVDQU64 Z2, 128(DI)
	VMOVDQU64 Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, R8
	ADDQ      $256, R9
	ADDQ      $256, R10
	ADDQ      $256, DI
	DECQ      CX
	JMP       loop

ntloop:
	TESTQ     CX, CX
	JZ        ntdone
	VMOVDQU64 (SI), Z0
	VMOVDQU64 64(SI), Z1
	VMOVDQU64 128(SI), Z2
	VMOVDQU64 192(SI), Z3
	VPXORQ    (R8), Z0, Z0
	VPXORQ    64(R8), Z1, Z1
	VPXORQ    128(R8), Z2, Z2
	VPXORQ    192(R8), Z3, Z3
	VPXORQ    (R9), Z0, Z0
	VPXORQ    64(R9), Z1, Z1
	VPXORQ    128(R9), Z2, Z2
	VPXORQ    192(R9), Z3, Z3
	VPXORQ    (R10), Z0, Z0
	VPXORQ    64(R10), Z1, Z1
	VPXORQ    128(R10), Z2, Z2
	VPXORQ    192(R10), Z3, Z3
	VPXORQ    (DI), Z0, Z0
	VPXORQ    64(DI), Z1, Z1
	VPXORQ    128(DI), Z2, Z2
	VPXORQ    192(DI), Z3, Z3
	VMOVNTDQ  Z0, (DI)
	VMOVNTDQ  Z1, 64(DI)
	VMOVNTDQ  Z2, 128(DI)
	VMOVNTDQ  Z3, 192(DI)
	ADDQ      $256, SI
	ADDQ      $256, R8
	ADDQ      $256, R9
	ADDQ      $256, R10
	ADDQ      $256, DI
	DECQ      CX
	JMP       ntloop

ntdone:
	SFENCE

rem:
	TESTQ     DX, DX
	JZ        done
	VMOVDQU64 (SI), Z0
	VPXORQ    (R8), Z0, Z0
	VPXORQ    (R9), Z0, Z0
	VPXORQ    (DI), Z0, Z0
	VPXORQ    (R10), Z0, Z0
	VMOVDQU64 Z0, (DI)
	ADDQ      $64, SI
	ADDQ      $64, R8
	ADDQ      $64, R9
	ADDQ      $64, R10
	ADDQ      $64, DI
	SUBQ      $64, DX
	JMP       rem

done:
	VZEROUPPER
	RET
