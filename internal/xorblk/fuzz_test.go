package xorblk

import (
	"bytes"
	"testing"
)

// FuzzXorMulti feeds arbitrary bytes through the unrolled multi-source
// kernel and cross-checks it against the portable byte-at-a-time reference
// (zero dst, fold each source with XorBytes). The fuzzer's pool is carved
// from one input buffer at varying counts, lengths and offsets, so odd
// lengths and unaligned slice starts (relative to the 8-byte word stride)
// are exercised heavily. Run with `go test -fuzz=FuzzXorMulti` to explore;
// the seed corpus below runs on every plain `go test`.
func FuzzXorMulti(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(3), uint8(0))
	f.Add(bytes.Repeat([]byte{0xFF}, 61), uint8(5), uint8(1))
	f.Add(bytes.Repeat([]byte{0xA5}, 128), uint8(9), uint8(7))
	f.Fuzz(func(t *testing.T, pool []byte, k, off uint8) {
		// Derive k sources of length n from the pool, starting at offset
		// `off` so slices land on odd alignments within the backing array.
		count := int(k%10) + 1
		start := int(off % 8)
		if start > len(pool) {
			start = len(pool)
		}
		pool = pool[start:]
		n := len(pool) / count
		srcs := make([][]byte, count)
		for i := range srcs {
			srcs[i] = pool[i*n : (i+1)*n]
		}

		dst := make([]byte, n)
		for i := range dst {
			dst[i] = byte(i) // garbage that XorMulti must overwrite
		}
		ops := XorMulti(dst, srcs...)
		if want := count - 1; ops != want {
			t.Fatalf("XorMulti reported %d ops for %d sources, want %d", ops, count, want)
		}

		want := foldedRef(n, srcs)
		if !bytes.Equal(dst, want) {
			t.Fatalf("XorMulti (n=%d, k=%d, off=%d) disagrees with folded XorBytes", n, count, start)
		}

		// The chunked variant over an odd split must agree too.
		dst2 := make([]byte, n)
		mid := n / 3
		XorMultiRange(dst2, 0, mid, srcs...)
		XorMultiRange(dst2, mid, n, srcs...)
		if !bytes.Equal(dst2, want) {
			t.Fatalf("XorMultiRange split at %d of %d disagrees with reference", mid, n)
		}
	})
}
