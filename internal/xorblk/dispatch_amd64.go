//go:build !purego && !noasm

// amd64 dispatch: runtime CPU-feature-detected assembly kernels layered on
// the wide→word→byte hierarchy. A CPUID/XGETBV probe (cpuid_amd64.s) runs
// once at init and selects the widest vector tier the CPU and OS support:
//
//	avx512 — 64-byte ZMM lanes, 256 bytes per unrolled iteration
//	avx2   — 32-byte YMM lanes, 128 bytes per unrolled iteration
//	wide   — the portable uint64×8 kernels (no usable SIMD extensions)
//
// The assembly kernels (kernel_amd64.s) require no source or destination
// alignment (VMOVDQU loads), process only whole vector lanes, and leave
// the ragged tail to the word path, so every shape stays bit-identical to
// the byte reference for all lengths and alignments — the same contract
// the wide kernels honor, enforced by the cross-tier fuzz tests.
//
// Above NonTemporalThreshold (an LLC-sized working set — see the variable
// for why it must clear the last-level cache, not just L2) the kernels
// switch to non-temporal stores (VMOVNTDQ): a block that large is leaving
// cache anyway, and streaming stores stop the destination from evicting
// the source columns. Non-temporal stores require a 64-byte-aligned
// destination, so the dispatcher peels the unaligned head (< 64 bytes)
// through the word path first.
//
// Build with -tags noasm to exclude this file and all assembly while
// keeping the unsafe wide kernels; -tags purego excludes both.

package xorblk

// Dispatch levels, widest first. asmLevel is fixed at init; every
// package-level entry point branches on it once per call.
const (
	levelNone = iota
	levelAVX2
	levelAVX512
)

// asmMinLen is the block size below which the assembly tiers are skipped:
// under one cache line the call overhead and tail handling cost more than
// the wide kernel's plain loop.
const asmMinLen = 64

// NonTemporalThreshold is the block size, in bytes, at and above which the
// assembly kernels use non-temporal stores. VMOVNTDQ bypasses every cache
// level, not just L1/L2, so streaming pays off only once a block exceeds
// its share of the last-level cache — below that, cached stores keep the
// destination LLC-resident for its next use and win by a wide margin
// (measured on an AVX-512 host: cached 50 GB/s vs non-temporal 6.4 GB/s at
// 1 MiB). The default therefore clears any plausible shared-LLC slice;
// hosts whose steady-state XOR working sets truly exceed the LLC can lower
// it. It is a variable (not a const) for that tuning and so tests can
// drive the non-temporal path with affordable buffer sizes.
var NonTemporalThreshold = 32 << 20

var (
	asmLevel = levelNone
	features []string

	// KernelName identifies the fast path selected for this binary on
	// this host: "avx512", "avx2", or "wide" when the probe finds no
	// usable vector extensions.
	KernelName = "wide"
)

func init() {
	avx2, avx512, feats := probeCPU()
	features = feats
	switch {
	case avx512:
		asmLevel, KernelName = levelAVX512, "avx512"
	case avx2:
		asmLevel, KernelName = levelAVX2, "avx2"
	}
}

// Features lists the CPU SIMD features the init-time probe detected,
// whether or not the selected kernel uses them.
func Features() []string { return append([]string(nil), features...) }

// probeCPU interrogates CPUID and XCR0 for the vector extensions the
// assembly kernels need. AVX2 requires the OS to save YMM state (OSXSAVE +
// XCR0 bits 1-2); AVX-512 additionally requires the F foundation and XCR0
// bits 5-7 (opmask, ZMM hi256, hi16 ZMM).
func probeCPU() (avx2, avx512 bool, feats []string) {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return
	}
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 { // XMM and YMM state enabled
		return
	}
	feats = append(feats, "avx")
	_, b7, _, _ := cpuid(7, 0)
	if b7&(1<<5) != 0 {
		avx2 = true
		feats = append(feats, "avx2")
	}
	if avx2 && b7&(1<<16) != 0 && xlo&0xe0 == 0xe0 {
		avx512 = true
		feats = append(feats, "avx512f")
		if b7&(1<<30) != 0 {
			feats = append(feats, "avx512bw")
		}
		if b7&(1<<31) != 0 {
			feats = append(feats, "avx512vl")
		}
	}
	return
}

// availableKernels lists the tiers this host can run, fastest first. The
// assembly tiers appear only when the probe enabled them, so the
// cross-tier tests cover exactly what this machine can execute.
func availableKernels() []kernelSet {
	ks := make([]kernelSet, 0, 4)
	if asmLevel >= levelAVX512 {
		ks = append(ks, asmKernels(levelAVX512, "avx512"))
	}
	if asmLevel >= levelAVX2 {
		ks = append(ks, asmKernels(levelAVX2, "avx2"))
	}
	return append(ks, wideKernels, wordKernels)
}

// asmKernels pins the five dispatch shapes to one assembly level, for
// tier-by-tier testing and benchmarking.
func asmKernels(level int, name string) kernelSet {
	return kernelSet{
		name:  name,
		xor:   func(dst, src []byte) { xorLevel(level, dst, src) },
		into:  func(dst, a, b []byte) { xorIntoLevel(level, dst, a, b) },
		fold2: func(dst, a, b []byte) { fold2Level(level, dst, a, b) },
		fold3: func(dst, a, b, c []byte) { fold3Level(level, dst, a, b, c) },
		fold4: func(dst, a, b, c, e []byte) { fold4Level(level, dst, a, b, c, e) },
	}
}

// ntPeel decides the non-temporal question for one call: a negative result
// keeps cached stores; otherwise the returned count (< 64, possibly 0) is
// the number of leading bytes the caller must fold through the word path
// so dst reaches the 64-byte alignment VMOVNTDQ requires.
//
//c56:noalloc
func ntPeel(dst []byte) int {
	if len(dst) < NonTemporalThreshold {
		return -1
	}
	return int(-ptr(dst) & 63)
}

// Package-level kernel bindings: dispatch on the init-selected level.

//c56:noalloc
func xorKernel(dst, src []byte) { xorLevel(asmLevel, dst, src) }

//c56:noalloc
func xorIntoKernel(dst, a, b []byte) { xorIntoLevel(asmLevel, dst, a, b) }

//c56:noalloc
func fold2Kernel(dst, a, b []byte) { fold2Level(asmLevel, dst, a, b) }

//c56:noalloc
func fold3Kernel(dst, a, b, c []byte) { fold3Level(asmLevel, dst, a, b, c) }

//c56:noalloc
func fold4Kernel(dst, a, b, c, e []byte) { fold4Level(asmLevel, dst, a, b, c, e) }

//c56:noalloc
func xorLevel(level int, dst, src []byte) {
	n := len(dst)
	if level == levelNone || n < asmMinLen {
		xorWide(dst, src)
		return
	}
	nt := false
	if h := ntPeel(dst); h >= 0 {
		nt = true
		if h > 0 {
			xorWords(dst[:h], src[:h])
			dst, src = dst[h:], src[h:]
			n -= h
		}
	}
	var m int
	if level == levelAVX512 {
		m = n &^ 63
		avx512Xor(&dst[0], &src[0], m, nt)
	} else {
		m = n &^ 31
		avx2Xor(&dst[0], &src[0], m, nt)
	}
	if m < n {
		xorWords(dst[m:], src[m:])
	}
}

//c56:noalloc
func xorIntoLevel(level int, dst, a, b []byte) {
	n := len(dst)
	if level == levelNone || n < asmMinLen {
		xorIntoWide(dst, a, b)
		return
	}
	nt := false
	if h := ntPeel(dst); h >= 0 {
		nt = true
		if h > 0 {
			xorIntoWords(dst[:h], a[:h], b[:h])
			dst, a, b = dst[h:], a[h:], b[h:]
			n -= h
		}
	}
	var m int
	if level == levelAVX512 {
		m = n &^ 63
		avx512Into(&dst[0], &a[0], &b[0], m, nt)
	} else {
		m = n &^ 31
		avx2Into(&dst[0], &a[0], &b[0], m, nt)
	}
	if m < n {
		xorIntoWords(dst[m:], a[m:], b[m:])
	}
}

//c56:noalloc
func fold2Level(level int, dst, a, b []byte) {
	n := len(dst)
	if level == levelNone || n < asmMinLen {
		fold2Wide(dst, a, b)
		return
	}
	nt := false
	if h := ntPeel(dst); h >= 0 {
		nt = true
		if h > 0 {
			fold2Words(dst[:h], a[:h], b[:h])
			dst, a, b = dst[h:], a[h:], b[h:]
			n -= h
		}
	}
	var m int
	if level == levelAVX512 {
		m = n &^ 63
		avx512Fold2(&dst[0], &a[0], &b[0], m, nt)
	} else {
		m = n &^ 31
		avx2Fold2(&dst[0], &a[0], &b[0], m, nt)
	}
	if m < n {
		fold2Words(dst[m:], a[m:], b[m:])
	}
}

//c56:noalloc
func fold3Level(level int, dst, a, b, c []byte) {
	n := len(dst)
	if level == levelNone || n < asmMinLen {
		fold3Wide(dst, a, b, c)
		return
	}
	nt := false
	if h := ntPeel(dst); h >= 0 {
		nt = true
		if h > 0 {
			fold3Words(dst[:h], a[:h], b[:h], c[:h])
			dst, a, b, c = dst[h:], a[h:], b[h:], c[h:]
			n -= h
		}
	}
	var m int
	if level == levelAVX512 {
		m = n &^ 63
		avx512Fold3(&dst[0], &a[0], &b[0], &c[0], m, nt)
	} else {
		m = n &^ 31
		avx2Fold3(&dst[0], &a[0], &b[0], &c[0], m, nt)
	}
	if m < n {
		fold3Words(dst[m:], a[m:], b[m:], c[m:])
	}
}

//c56:noalloc
func fold4Level(level int, dst, a, b, c, e []byte) {
	n := len(dst)
	if level == levelNone || n < asmMinLen {
		fold4Wide(dst, a, b, c, e)
		return
	}
	nt := false
	if h := ntPeel(dst); h >= 0 {
		nt = true
		if h > 0 {
			fold4Words(dst[:h], a[:h], b[:h], c[:h], e[:h])
			dst, a, b, c, e = dst[h:], a[h:], b[h:], c[h:], e[h:]
			n -= h
		}
	}
	var m int
	if level == levelAVX512 {
		m = n &^ 63
		avx512Fold4(&dst[0], &a[0], &b[0], &c[0], &e[0], m, nt)
	} else {
		m = n &^ 31
		avx2Fold4(&dst[0], &a[0], &b[0], &c[0], &e[0], m, nt)
	}
	if m < n {
		fold4Words(dst[m:], a[m:], b[m:], c[m:], e[m:])
	}
}
