package xorblk

import (
	"bytes"
	"testing"
)

// The dispatch hierarchy promises that every tier — assembly, wide, word —
// produces bit-identical output to the byte reference for every length and
// alignment. These tests run the promise against availableKernels(), so on
// an AVX-512 host the avx512, avx2, wide and word tiers are all verified,
// while purego/noasm builds verify exactly the tiers they ship.

// tierSrcs carves arity deterministic pseudo-random sources of the given
// size at srcOff within their slabs.
func tierSrcs(t *testing.T, arity, size, srcOff int) [][]byte {
	t.Helper()
	srcs := make([][]byte, arity)
	for i := range srcs {
		srcs[i] = slab(t, size+srcOff, int64(size*1000+srcOff*10+i))[srcOff : srcOff+size]
	}
	return srcs
}

// runTierShapes drives all five shapes of one kernel set over the given
// operands and fails on any divergence from the byte reference.
func runTierShapes(t *testing.T, k kernelSet, size, dstOff int, srcs [][]byte) {
	t.Helper()

	// xor: dst ^= srcs[0]
	dst := slab(t, size+dstOff, int64(size+dstOff))[dstOff : dstOff+size]
	ref := append([]byte(nil), dst...)
	k.xor(dst, srcs[0])
	XorBytes(ref, srcs[0])
	if !bytes.Equal(dst, ref) {
		t.Fatalf("%s xor size=%d dstOff=%d diverges from reference", k.name, size, dstOff)
	}

	// into: dst = srcs[0] ^ srcs[1]
	dst = slab(t, size+dstOff, 11)[dstOff : dstOff+size]
	k.into(dst, srcs[0], srcs[1])
	ref = append([]byte(nil), srcs[0]...)
	XorBytes(ref, srcs[1])
	if !bytes.Equal(dst, ref) {
		t.Fatalf("%s into size=%d dstOff=%d diverges from reference", k.name, size, dstOff)
	}

	// fold2/fold3/fold4: dst ^= XOR of the first 2/3/4 sources.
	for arity := 2; arity <= 4; arity++ {
		dst = slab(t, size+dstOff, int64(13+arity))[dstOff : dstOff+size]
		ref = append([]byte(nil), dst...)
		XorBytes(ref, refFold(size, srcs[:arity]))
		switch arity {
		case 2:
			k.fold2(dst, srcs[0], srcs[1])
		case 3:
			k.fold3(dst, srcs[0], srcs[1], srcs[2])
		case 4:
			k.fold4(dst, srcs[0], srcs[1], srcs[2], srcs[3])
		}
		if !bytes.Equal(dst, ref) {
			t.Fatalf("%s fold%d size=%d dstOff=%d diverges from reference", k.name, arity, size, dstOff)
		}
	}
}

func TestAvailableKernelsMatchReference(t *testing.T) {
	sizes := []int{0, 1, 31, 32, 33, 63, 64, 65, 96, 127, 128, 255, 256, 257,
		511, 1024, 4096, 4099, 8192}
	for _, k := range availableKernels() {
		t.Run(k.name, func(t *testing.T) {
			for _, size := range sizes {
				for _, dstOff := range []int{0, 1, 7, 8} {
					for _, srcOff := range []int{0, 3, 8} {
						runTierShapes(t, k, size, dstOff, tierSrcs(t, 4, size, srcOff))
					}
				}
			}
		})
	}
}

// TestTierSelection pins the dispatch bookkeeping: the first available
// kernel is the one KernelName reports and the one Tiers leads with, the
// word tier is always present as the portable floor, and the byte
// reference closes the benchmark tier list.
func TestTierSelection(t *testing.T) {
	ks := availableKernels()
	if len(ks) == 0 {
		t.Fatal("availableKernels returned no tiers")
	}
	if ks[0].name != KernelName {
		t.Fatalf("KernelName = %q but fastest available tier is %q", KernelName, ks[0].name)
	}
	if ks[len(ks)-1].name != "word" {
		t.Fatalf("tier list must end with the word tier, got %q", ks[len(ks)-1].name)
	}
	tiers := Tiers()
	if tiers[0].Name != KernelName {
		t.Fatalf("Tiers()[0] = %q, want KernelName %q", tiers[0].Name, KernelName)
	}
	if last := tiers[len(tiers)-1]; last.Name != "byte" {
		t.Fatalf("Tiers() must end with the byte reference, got %q", last.Name)
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.name] {
			t.Fatalf("tier %q listed twice", k.name)
		}
		seen[k.name] = true
	}
}

// TestTierAllocations pins every shape of every tier at zero allocations:
// the dispatchers pass &slice[0] into //go:noescape assembly stubs, and a
// single escape would multiply across all hot paths (the PR 4 contract).
func TestTierAllocations(t *testing.T) {
	dst := make([]byte, 4096)
	srcs := [][]byte{make([]byte, 4096), make([]byte, 4096),
		make([]byte, 4096), make([]byte, 4096)}
	for _, k := range availableKernels() {
		for name, fn := range map[string]func(){
			"xor":   func() { k.xor(dst, srcs[0]) },
			"into":  func() { k.into(dst, srcs[0], srcs[1]) },
			"fold2": func() { k.fold2(dst, srcs[0], srcs[1]) },
			"fold3": func() { k.fold3(dst, srcs[0], srcs[1], srcs[2]) },
			"fold4": func() { k.fold4(dst, srcs[0], srcs[1], srcs[2], srcs[3]) },
		} {
			if n := testing.AllocsPerRun(100, fn); n != 0 {
				t.Errorf("%s %s allocates %.1f times per call, want 0", k.name, name, n)
			}
		}
	}
}

// FuzzKernelTiers cross-checks all five shapes of every tier the host can
// run against the byte reference at fuzzer-chosen lengths and alignments —
// the cross-tier equivalence contract explored beyond the deterministic
// sweeps.
func FuzzKernelTiers(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add(bytes.Repeat([]byte{0x5A}, 400), uint8(1), uint8(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 261), uint8(7), uint8(0))
	f.Add(bytes.Repeat([]byte{0xA5}, 1030), uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, pool []byte, dstOff, srcOff uint8) {
		do, so := int(dstOff%8), int(srcOff%8)
		if len(pool) < so+5 {
			return
		}
		pool = pool[so:]
		n := len(pool) / 5
		srcs := [][]byte{pool[0:n], pool[n : 2*n], pool[2*n : 3*n], pool[3*n : 4*n]}
		seed := pool[4*n : 5*n]
		for _, k := range availableKernels() {
			// xor
			dst := make([]byte, n+do)[do:]
			copy(dst, seed)
			ref := append([]byte(nil), dst...)
			k.xor(dst, srcs[0])
			XorBytes(ref, srcs[0])
			if !bytes.Equal(dst, ref) {
				t.Fatalf("%s xor (n=%d, dstOff=%d, srcOff=%d) diverges", k.name, n, do, so)
			}
			// into
			dst = make([]byte, n+do)[do:]
			k.into(dst, srcs[0], srcs[1])
			ref = append([]byte(nil), srcs[0]...)
			XorBytes(ref, srcs[1])
			if !bytes.Equal(dst, ref) {
				t.Fatalf("%s into (n=%d, dstOff=%d, srcOff=%d) diverges", k.name, n, do, so)
			}
			// folds
			for arity := 2; arity <= 4; arity++ {
				dst = make([]byte, n+do)[do:]
				copy(dst, seed)
				ref = append([]byte(nil), dst...)
				XorBytes(ref, refFold(n, srcs[:arity]))
				switch arity {
				case 2:
					k.fold2(dst, srcs[0], srcs[1])
				case 3:
					k.fold3(dst, srcs[0], srcs[1], srcs[2])
				case 4:
					k.fold4(dst, srcs[0], srcs[1], srcs[2], srcs[3])
				}
				if !bytes.Equal(dst, ref) {
					t.Fatalf("%s fold%d (n=%d, dstOff=%d, srcOff=%d) diverges", k.name, arity, n, do, so)
				}
			}
		}
	})
}
