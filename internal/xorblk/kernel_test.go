package xorblk

import (
	"bytes"
	"math/rand"
	"testing"
)

// The wide kernels take an unsafe fast path only when every operand is
// 8-byte aligned, falling back to the word path otherwise; either way the
// result must equal the byte-at-a-time reference for every combination of
// alignment and tail length. These tests sweep both dimensions explicitly
// (the fuzz targets explore them further), for every arity the fold
// hierarchy dispatches on: 1 (Xor), 2, 3, 4, and >4 (multi-pass foldAll).

// slab returns a deterministic pseudo-random buffer with headroom for the
// worst offset.
func slab(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	b := make([]byte, n+16)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// refFold returns the XOR of all srcs computed with the byte reference.
func refFold(n int, srcs [][]byte) []byte {
	out := make([]byte, n)
	for _, s := range srcs {
		XorBytes(out, s[:n])
	}
	return out
}

func TestKernelsMatchReferenceAcrossAlignments(t *testing.T) {
	sizes := []int{0, 1, 7, 8, 9, 63, 64, 65, 127, 128, 511, 4096, 4099}
	for _, size := range sizes {
		for _, dstOff := range []int{0, 1, 4, 8} {
			for _, srcOff := range []int{0, 3, 8} {
				for arity := 1; arity <= 6; arity++ {
					srcs := make([][]byte, arity)
					for i := range srcs {
						srcs[i] = slab(t, size, int64(size*100+srcOff*10+i))[srcOff : srcOff+size]
					}
					want := refFold(size, srcs)

					// Accumulating form: dst ^= XOR of srcs.
					dst := slab(t, size, int64(size+dstOff))[dstOff : dstOff+size]
					ref := append([]byte(nil), dst...)
					XorBytes(ref, want)
					AccumulateMulti(dst, srcs...)
					if !bytes.Equal(dst, ref) {
						t.Fatalf("AccumulateMulti size=%d dstOff=%d srcOff=%d arity=%d diverges from reference",
							size, dstOff, srcOff, arity)
					}

					// Overwriting form: dst = XOR of srcs.
					dst2 := slab(t, size, 7)[dstOff : dstOff+size]
					XorMulti(dst2, srcs...)
					if !bytes.Equal(dst2, want) {
						t.Fatalf("XorMulti size=%d dstOff=%d srcOff=%d arity=%d diverges from reference",
							size, dstOff, srcOff, arity)
					}
				}
			}
		}
	}
}

func TestXorIntoMatchesReferenceAcrossAlignments(t *testing.T) {
	for _, size := range []int{0, 5, 8, 64, 65, 321, 4096} {
		for _, off := range []int{0, 1, 8} {
			a := slab(t, size, 1)[off : off+size]
			b := slab(t, size, 2)[off : off+size]
			dst := make([]byte, size)
			XorInto(dst, a, b)
			want := append([]byte(nil), a...)
			XorBytes(want, b)
			if !bytes.Equal(dst, want) {
				t.Fatalf("XorInto size=%d off=%d diverges from reference", size, off)
			}
		}
	}
}

func TestXorWordsMatchesBytes(t *testing.T) {
	for _, size := range []int{0, 3, 8, 64, 67, 1024} {
		d1 := slab(t, size, 3)[:size]
		d2 := append([]byte(nil), d1...)
		s := slab(t, size, 4)[:size]
		XorWords(d1, s)
		XorBytes(d2, s)
		if !bytes.Equal(d1, d2) {
			t.Fatalf("XorWords diverges from XorBytes at size %d", size)
		}
	}
}

// TestKernelAllocations asserts the kernels themselves are allocation-free:
// they are the innermost loops of every hot path, so a single allocation
// here multiplies across the whole stack.
func TestKernelAllocations(t *testing.T) {
	dst := make([]byte, 4096)
	srcs := [][]byte{make([]byte, 4096), make([]byte, 4096), make([]byte, 4096),
		make([]byte, 4096), make([]byte, 4096)}
	for name, fn := range map[string]func(){
		"Xor":           func() { Xor(dst, srcs[0]) },
		"XorBytes":      func() { XorBytes(dst, srcs[0]) },
		"XorWords":      func() { XorWords(dst, srcs[0]) },
		"XorInto":       func() { XorInto(dst, srcs[0], srcs[1]) },
		"XorMulti":      func() { XorMulti(dst, srcs...) },
		"XorMultiRange": func() { XorMultiRange(dst, 5, 4091, srcs...) },
		"Accumulate":    func() { AccumulateMulti(dst, srcs...) },
		"IsZero":        func() { IsZero(dst) },
		"Equal":         func() { Equal(dst, srcs[0]) },
	} {
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, n)
		}
	}
}

// FuzzXorKernel cross-checks the dispatching Xor (wide under the default
// build, word under -tags purego) against XorBytes at fuzzer-chosen
// alignments and lengths, including the aligned-head/ragged-tail split the
// wide path carves.
func FuzzXorKernel(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add(bytes.Repeat([]byte{0x5A}, 200), uint8(1), uint8(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 129), uint8(7), uint8(0))
	f.Fuzz(func(t *testing.T, pool []byte, dstOff, srcOff uint8) {
		do, so := int(dstOff%8), int(srcOff%8)
		if len(pool) < do+so+2 {
			return
		}
		rest := pool[do+so:]
		n := len(rest) / 2
		src := rest[:n]
		if so > 0 {
			src = pool[so : so+n]
		}
		dst := make([]byte, n+do)[do:]
		copy(dst, rest[n:])
		ref := append([]byte(nil), dst...)
		Xor(dst, src)
		XorBytes(ref, src)
		if !bytes.Equal(dst, ref) {
			t.Fatalf("Xor (n=%d, dstOff=%d, srcOff=%d) disagrees with XorBytes", n, do, so)
		}
	})
}
