// Package xorblk provides the XOR kernels used by every array code in this
// repository. All RAID-6 parity math here is pure XOR over byte blocks
// (no Galois-field multiplication), so these kernels are the entire
// computational substrate of encoding, decoding, and migration.
//
// The code paths form a hierarchy (fastest first), with the top selected
// once at init by a runtime CPU-feature probe:
//
//   - the asm tiers (amd64: avx512, avx2; arm64: neon): hand-written
//     assembly kernels processing 256/128/64 bytes per unrolled iteration.
//     A stdlib-only CPUID/XGETBV probe (dispatch_amd64.go) picks the widest
//     tier the CPU and OS support; KernelName reports the choice. On amd64,
//     blocks at or above NonTemporalThreshold use non-temporal stores.
//     Excluded by the noasm and purego build tags.
//   - the wide path: 64-byte unrolled uint64×8 inner loops over
//     unsafe-reinterpreted word slices, taken when every operand is 8-byte
//     aligned (heap block buffers always are). The top tier under -tags
//     noasm and on architectures without asm kernels; excluded by purego.
//     See kernel_wide.go.
//   - the word path: eight bytes per iteration through encoding/binary,
//     endianness-agnostic because XOR commutes with any byte permutation.
//     The fallback for unaligned operands and ragged asm tails, and the
//     only fast path under -tags purego.
//   - the byte path (XorBytes): one byte per iteration; the reference
//     implementation everything else is verified against.
//
// Every tier is bit-identical for all lengths and alignments — the
// cross-tier fuzz tests (FuzzKernelTiers) prove it for every kernel the
// host can run, and Tiers() exposes the runnable hierarchy so benchmarks
// can compare them.
//
// For parity generation over many sources, XorMulti folds up to four source
// streams per pass over dst (2/3/4-way unrolled inner loops), which cuts the
// number of times dst is pulled through the cache compared with folding one
// source at a time. XorMultiRange is the chunked variant: it applies the same
// kernel to a sub-range [lo, hi) of every block, so a large block can be
// split across goroutines (see internal/parallel.XorMulti).
package xorblk

import (
	"encoding/binary"
	"fmt"
)

// wordSize is the stride of the word path in bytes.
const wordSize = 8

// checkLen panics when dst and src lengths differ, naming both lengths —
// a mismatch is always a programming error in stripe handling (blocks within
// a stripe share one block size), and the lengths identify the culprit.
//
//c56:noalloc
func checkLen(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("xorblk: length mismatch: dst %d bytes, src %d bytes", len(dst), len(src)))
	}
}

// Xor sets dst[i] ^= src[i] for all i through the fastest available kernel.
// dst and src must have equal length; it panics otherwise.
//
//c56:noalloc
func Xor(dst, src []byte) {
	checkLen(dst, src)
	xorKernel(dst, src)
}

// XorBytes is the portable byte-at-a-time kernel. It is exported as the
// reference implementation that benchmarks and fuzz tests compare the word
// and wide paths against; library code should call Xor.
//
//c56:noalloc
func XorBytes(dst, src []byte) {
	checkLen(dst, src)
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// XorWords is the word-at-a-time kernel: eight bytes per iteration through
// encoding/binary. It is exported so benchmarks can compare it against the
// wide path; library code should call Xor, which selects the fastest kernel.
//
//c56:noalloc
func XorWords(dst, src []byte) {
	checkLen(dst, src)
	xorWords(dst, src)
}

// xorWords is the word path body (no length check).
//
//c56:noalloc
func xorWords(dst, src []byte) {
	n := len(dst) &^ (wordSize - 1)
	for i := 0; i < n; i += wordSize {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// XorInto computes dst = a ^ b without reading dst's prior contents.
// All three slices must have equal length.
//
//c56:noalloc
func XorInto(dst, a, b []byte) {
	checkLen(dst, a)
	checkLen(dst, b)
	xorIntoKernel(dst, a, b)
}

// xorIntoWords is the word path for XorInto.
//
//c56:noalloc
func xorIntoWords(dst, a, b []byte) {
	n := len(dst) &^ (wordSize - 1)
	for i := 0; i < n; i += wordSize {
		x := binary.LittleEndian.Uint64(a[i:])
		y := binary.LittleEndian.Uint64(b[i:])
		binary.LittleEndian.PutUint64(dst[i:], x^y)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// fold2Words sets dst[i] ^= a[i] ^ b[i] in one pass over dst (2 source
// streams), word path.
//
//c56:noalloc
func fold2Words(dst, a, b []byte) {
	n := len(dst) &^ (wordSize - 1)
	for i := 0; i < n; i += wordSize {
		d := binary.LittleEndian.Uint64(dst[i:])
		x := binary.LittleEndian.Uint64(a[i:])
		y := binary.LittleEndian.Uint64(b[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^x^y)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= a[i] ^ b[i]
	}
}

// fold3Words sets dst[i] ^= a[i] ^ b[i] ^ c[i] in one pass over dst (3 source
// streams), word path.
//
//c56:noalloc
func fold3Words(dst, a, b, c []byte) {
	n := len(dst) &^ (wordSize - 1)
	for i := 0; i < n; i += wordSize {
		d := binary.LittleEndian.Uint64(dst[i:])
		x := binary.LittleEndian.Uint64(a[i:])
		y := binary.LittleEndian.Uint64(b[i:])
		z := binary.LittleEndian.Uint64(c[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^x^y^z)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i]
	}
}

// fold4Words sets dst[i] ^= a[i] ^ b[i] ^ c[i] ^ e[i] in one pass over dst
// (4 source streams), word path.
//
//c56:noalloc
func fold4Words(dst, a, b, c, e []byte) {
	n := len(dst) &^ (wordSize - 1)
	for i := 0; i < n; i += wordSize {
		d := binary.LittleEndian.Uint64(dst[i:])
		x := binary.LittleEndian.Uint64(a[i:])
		y := binary.LittleEndian.Uint64(b[i:])
		z := binary.LittleEndian.Uint64(c[i:])
		w := binary.LittleEndian.Uint64(e[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^x^y^z^w)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i] ^ e[i]
	}
}

// foldAll XORs every source into dst, consuming sources four, three and two
// at a time so each pass over dst folds as many streams as possible.
//
//c56:noalloc
func foldAll(dst []byte, srcs [][]byte) {
	for len(srcs) >= 4 {
		fold4Kernel(dst, srcs[0], srcs[1], srcs[2], srcs[3])
		srcs = srcs[4:]
	}
	switch len(srcs) {
	case 3:
		fold3Kernel(dst, srcs[0], srcs[1], srcs[2])
	case 2:
		fold2Kernel(dst, srcs[0], srcs[1])
	case 1:
		xorKernel(dst, srcs[0])
	}
}

// XorMulti sets dst to the XOR of all srcs. If srcs is empty, dst is zeroed.
// Every source must have the same length as dst. It returns the number of
// block XOR operations performed — len(srcs)-1 for a non-empty source list
// (the first source is copied, not XORed), the cost model's unit of
// computation. Folding k sources therefore never exceeds the k block XORs
// of k sequential Xor calls into a zeroed dst.
//
//c56:noalloc
func XorMulti(dst []byte, srcs ...[]byte) int {
	for _, s := range srcs {
		checkLen(dst, s)
	}
	if len(srcs) == 0 {
		clear(dst)
		return 0
	}
	copy(dst, srcs[0])
	foldAll(dst, srcs[1:])
	return len(srcs) - 1
}

// XorMultiRange is the chunked variant of XorMulti: it sets dst[lo:hi] to
// the XOR of srcs[i][lo:hi], leaving the rest of dst untouched. Disjoint
// ranges of the same dst may be computed concurrently from different
// goroutines — internal/parallel uses this to split one large block across
// workers. Panics if the range is out of bounds or any source's length
// differs from dst's. Like XorMulti it returns the source fold count
// (len(srcs)-1, or 0 when srcs is empty). It allocates nothing.
//
//c56:noalloc
func XorMultiRange(dst []byte, lo, hi int, srcs ...[]byte) int {
	if lo < 0 || hi > len(dst) || lo > hi {
		panic(fmt.Sprintf("xorblk: range [%d,%d) outside block of %d bytes", lo, hi, len(dst)))
	}
	for _, s := range srcs {
		checkLen(dst, s)
	}
	if len(srcs) == 0 {
		clear(dst[lo:hi])
		return 0
	}
	d := dst[lo:hi]
	copy(d, srcs[0][lo:hi])
	rest := srcs[1:]
	for len(rest) >= 4 {
		fold4Kernel(d, rest[0][lo:hi], rest[1][lo:hi], rest[2][lo:hi], rest[3][lo:hi])
		rest = rest[4:]
	}
	switch len(rest) {
	case 3:
		fold3Kernel(d, rest[0][lo:hi], rest[1][lo:hi], rest[2][lo:hi])
	case 2:
		fold2Kernel(d, rest[0][lo:hi], rest[1][lo:hi])
	case 1:
		xorKernel(d, rest[0][lo:hi])
	}
	return len(srcs) - 1
}

// AccumulateMulti XORs every source into dst, preserving dst's existing
// contents. It returns the number of XOR block operations performed, which
// the migration cost model uses to count computation work.
//
//c56:noalloc
func AccumulateMulti(dst []byte, srcs ...[]byte) int {
	for _, s := range srcs {
		checkLen(dst, s)
	}
	foldAll(dst, srcs)
	return len(srcs)
}

// IsZero reports whether every byte of b is zero. Parity verification uses
// it: XOR of a full, consistent parity chain (including the parity block)
// must be the zero block.
//
//c56:noalloc
func IsZero(b []byte) bool {
	n := len(b) &^ (wordSize - 1)
	for i := 0; i < n; i += wordSize {
		if binary.LittleEndian.Uint64(b[i:]) != 0 {
			return false
		}
	}
	for i := n; i < len(b); i++ {
		if b[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have identical length and contents.
//
//c56:noalloc
func Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
