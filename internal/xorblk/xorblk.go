// Package xorblk provides the XOR kernels used by every array code in this
// repository. All RAID-6 parity math here is pure XOR over byte blocks
// (no Galois-field multiplication), so these kernels are the entire
// computational substrate of encoding, decoding, and migration.
//
// Two code paths exist: a word-at-a-time path that processes eight bytes per
// iteration when both slices are suitably sized, and a portable byte path.
// The word path works on the byte level through encoding/binary and is
// endianness-agnostic because XOR commutes with any byte permutation.
package xorblk

import "encoding/binary"

// wordSize is the stride of the fast path in bytes.
const wordSize = 8

// Xor sets dst[i] ^= src[i] for all i. dst and src must have equal length;
// it panics otherwise, since a length mismatch is always a programming error
// in stripe handling (blocks within a stripe share one block size).
func Xor(dst, src []byte) {
	if len(dst) != len(src) {
		panic("xorblk: length mismatch")
	}
	n := len(dst) &^ (wordSize - 1)
	for i := 0; i < n; i += wordSize {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// XorBytes is the portable byte-at-a-time kernel. It is exported so that
// benchmarks can compare it against the word-wise path; library code should
// call Xor.
func XorBytes(dst, src []byte) {
	if len(dst) != len(src) {
		panic("xorblk: length mismatch")
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// XorInto computes dst = a ^ b without reading dst's prior contents.
// All three slices must have equal length.
func XorInto(dst, a, b []byte) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("xorblk: length mismatch")
	}
	n := len(dst) &^ (wordSize - 1)
	for i := 0; i < n; i += wordSize {
		x := binary.LittleEndian.Uint64(a[i:])
		y := binary.LittleEndian.Uint64(b[i:])
		binary.LittleEndian.PutUint64(dst[i:], x^y)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// XorMulti sets dst to the XOR of all srcs. If srcs is empty, dst is zeroed.
// Every source must have the same length as dst.
func XorMulti(dst []byte, srcs ...[]byte) {
	for i := range dst {
		dst[i] = 0
	}
	for _, s := range srcs {
		Xor(dst, s)
	}
}

// AccumulateMulti XORs every source into dst, preserving dst's existing
// contents. It returns the number of XOR block operations performed, which
// the migration cost model uses to count computation work.
func AccumulateMulti(dst []byte, srcs ...[]byte) int {
	for _, s := range srcs {
		Xor(dst, s)
	}
	return len(srcs)
}

// IsZero reports whether every byte of b is zero. Parity verification uses
// it: XOR of a full, consistent parity chain (including the parity block)
// must be the zero block.
func IsZero(b []byte) bool {
	n := len(b) &^ (wordSize - 1)
	for i := 0; i < n; i += wordSize {
		if binary.LittleEndian.Uint64(b[i:]) != 0 {
			return false
		}
	}
	for i := n; i < len(b); i++ {
		if b[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have identical length and contents.
func Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
