package xorblk

import (
	"fmt"
	"testing"
)

// Kernel-hierarchy benchmarks: the same two-operand XOR through the
// dispatching kernel (wide unless built with -tags purego), the word path
// and the byte reference, across block sizes spanning L1-resident to
// L2-spilling. cmd/c56-bench's -xor-out mode reports the same comparison as
// JSON; CI's bench-smoke job runs these to catch kernel regressions.

func benchXor(b *testing.B, size int, fn func(dst, src []byte)) {
	dst := make([]byte, size)
	src := make([]byte, size)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(dst, src)
	}
}

func BenchmarkXorKernel(b *testing.B) {
	for _, size := range []int{1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("path=%s/size=%d", KernelName, size), func(b *testing.B) {
			benchXor(b, size, Xor)
		})
		b.Run(fmt.Sprintf("path=word/size=%d", size), func(b *testing.B) {
			benchXor(b, size, XorWords)
		})
		b.Run(fmt.Sprintf("path=byte/size=%d", size), func(b *testing.B) {
			benchXor(b, size, XorBytes)
		})
	}
}

func BenchmarkXorMultiArity(b *testing.B) {
	const size = 4096
	for _, arity := range []int{2, 3, 4, 8} {
		srcs := make([][]byte, arity)
		for i := range srcs {
			srcs[i] = make([]byte, size)
		}
		dst := make([]byte, size)
		b.Run(fmt.Sprintf("arity=%d", arity), func(b *testing.B) {
			b.SetBytes(int64(size * arity))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				XorMulti(dst, srcs...)
			}
		})
	}
}
