//go:build !purego && !noasm

// arm64 dispatch: NEON (Advanced SIMD) is a mandatory part of the ARMv8-A
// baseline every Go arm64 target requires, so no HWCAP probe is needed —
// the NEON tier is selected unconditionally at build time. The kernels
// (kernel_arm64.s) process 64 bytes per iteration through four 128-bit
// vector registers per stream; the dispatcher folds the ragged tail
// through the word path, keeping every shape bit-identical to the byte
// reference for all lengths and alignments. arm64 has no cache-bypassing
// store with VMOVNTDQ's semantics (STNP is only a non-temporal hint), so
// there is no separate streaming path on this architecture.
//
// Build with -tags noasm to exclude this file and the assembly while
// keeping the unsafe wide kernels; -tags purego excludes both.

package xorblk

// KernelName identifies the fast path selected for this binary.
var KernelName = "neon"

// Features lists the CPU SIMD features in use. NEON is architecturally
// guaranteed on arm64, so no runtime probe is involved.
func Features() []string { return []string{"neon"} }

// neonMinLen is the block size below which the NEON kernels are skipped:
// under one 64-byte iteration the wide kernel's plain loop wins.
const neonMinLen = 64

// availableKernels lists the tiers this build can run, fastest first.
func availableKernels() []kernelSet {
	return []kernelSet{
		{name: "neon", xor: xorNeon, into: xorIntoNeon, fold2: fold2Neon,
			fold3: fold3Neon, fold4: fold4Neon},
		wideKernels,
		wordKernels,
	}
}

//c56:noalloc
func xorKernel(dst, src []byte) { xorNeon(dst, src) }

//c56:noalloc
func xorIntoKernel(dst, a, b []byte) { xorIntoNeon(dst, a, b) }

//c56:noalloc
func fold2Kernel(dst, a, b []byte) { fold2Neon(dst, a, b) }

//c56:noalloc
func fold3Kernel(dst, a, b, c []byte) { fold3Neon(dst, a, b, c) }

//c56:noalloc
func fold4Kernel(dst, a, b, c, e []byte) { fold4Neon(dst, a, b, c, e) }

//c56:noalloc
func xorNeon(dst, src []byte) {
	n := len(dst)
	if n < neonMinLen {
		xorWide(dst, src)
		return
	}
	m := n &^ 63
	neonXor(&dst[0], &src[0], m)
	if m < n {
		xorWords(dst[m:], src[m:])
	}
}

//c56:noalloc
func xorIntoNeon(dst, a, b []byte) {
	n := len(dst)
	if n < neonMinLen {
		xorIntoWide(dst, a, b)
		return
	}
	m := n &^ 63
	neonInto(&dst[0], &a[0], &b[0], m)
	if m < n {
		xorIntoWords(dst[m:], a[m:], b[m:])
	}
}

//c56:noalloc
func fold2Neon(dst, a, b []byte) {
	n := len(dst)
	if n < neonMinLen {
		fold2Wide(dst, a, b)
		return
	}
	m := n &^ 63
	neonFold2(&dst[0], &a[0], &b[0], m)
	if m < n {
		fold2Words(dst[m:], a[m:], b[m:])
	}
}

//c56:noalloc
func fold3Neon(dst, a, b, c []byte) {
	n := len(dst)
	if n < neonMinLen {
		fold3Wide(dst, a, b, c)
		return
	}
	m := n &^ 63
	neonFold3(&dst[0], &a[0], &b[0], &c[0], m)
	if m < n {
		fold3Words(dst[m:], a[m:], b[m:], c[m:])
	}
}

//c56:noalloc
func fold4Neon(dst, a, b, c, e []byte) {
	n := len(dst)
	if n < neonMinLen {
		fold4Wide(dst, a, b, c, e)
		return
	}
	m := n &^ 63
	neonFold4(&dst[0], &a[0], &b[0], &c[0], &e[0], m)
	if m < n {
		fold4Words(dst[m:], a[m:], b[m:], c[m:], e[m:])
	}
}
