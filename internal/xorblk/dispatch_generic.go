//go:build !purego && (noasm || (!amd64 && !arm64))

// Generic dispatch: the unsafe wide kernels are the fastest tier when the
// build excludes assembly (-tags noasm) or targets an architecture without
// assembly kernels. The wide kernels carry their own alignment gate and
// word-path fallback, so the bindings are direct.

package xorblk

// KernelName identifies the fast path selected for this binary.
var KernelName = "wide"

// Features lists the detected CPU SIMD features. This build runs no
// feature-specific code, so nothing is probed.
func Features() []string { return nil }

// availableKernels lists the tiers this build can run, fastest first.
func availableKernels() []kernelSet { return []kernelSet{wideKernels, wordKernels} }

//c56:noalloc
func xorKernel(dst, src []byte) { xorWide(dst, src) }

//c56:noalloc
func xorIntoKernel(dst, a, b []byte) { xorIntoWide(dst, a, b) }

//c56:noalloc
func fold2Kernel(dst, a, b []byte) { fold2Wide(dst, a, b) }

//c56:noalloc
func fold3Kernel(dst, a, b, c []byte) { fold3Wide(dst, a, b, c) }

//c56:noalloc
func fold4Kernel(dst, a, b, c, e []byte) { fold4Wide(dst, a, b, c, e) }
