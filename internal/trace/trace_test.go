package trace

import (
	"bytes"
	"reflect"
	"testing"

	"code56/internal/core"
	"code56/internal/disksim"
	"code56/internal/migrate"
	"code56/internal/raid5"
)

func code56Plan(t *testing.T) *migrate.Plan {
	t.Helper()
	p, err := migrate.NewPlan(migrate.Conversion{
		M: 4, SourceLayout: raid5.LeftAsymmetric, Code: core.MustNew(5), Approach: migrate.Direct,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFromPlanCounts: the trace's request counts must equal the plan's I/O
// totals scaled by the number of stripe groups.
func TestFromPlanCounts(t *testing.T) {
	plan := code56Plan(t)
	groups := 10
	phases := FromPlan(plan, Options{TotalDataBlocks: plan.DataBlocks * groups})
	if len(phases) != len(plan.PhaseNames) {
		t.Fatalf("%d phases, want %d", len(phases), len(plan.PhaseNames))
	}
	reads, writes := 0, 0
	for _, ph := range phases {
		for _, r := range ph {
			if r.Write {
				writes++
			} else {
				reads++
			}
		}
	}
	if reads != plan.TotalReads()*groups {
		t.Errorf("reads %d, want %d", reads, plan.TotalReads()*groups)
	}
	if writes != plan.TotalWrites()*groups {
		t.Errorf("writes %d, want %d", writes, plan.TotalWrites()*groups)
	}
}

// TestFromPlanRoundsUpGroups: a block target that is not a multiple of the
// period is covered by rounding groups up.
func TestFromPlanRoundsUpGroups(t *testing.T) {
	plan := code56Plan(t)
	phases := FromPlan(plan, Options{TotalDataBlocks: plan.DataBlocks + 1})
	n := 0
	for _, ph := range phases {
		n += len(ph)
	}
	if want := 2 * (plan.TotalReads() + plan.TotalWrites()); n != want {
		t.Errorf("requests %d, want %d (2 groups)", n, want)
	}
}

// TestLoadBalancingSpreadsWrites: without LB, Code 5-6's conversion writes
// all land on the last disk; with LB they spread across all disks.
func TestLoadBalancingSpreadsWrites(t *testing.T) {
	plan := code56Plan(t)
	opts := Options{TotalDataBlocks: plan.DataBlocks * 50}

	writesPerDisk := func(lb bool) map[int]int {
		o := opts
		o.LoadBalanced = lb
		out := make(map[int]int)
		for _, ph := range FromPlan(plan, o) {
			for _, r := range ph {
				if r.Write {
					out[r.Disk]++
				}
			}
		}
		return out
	}

	nlb := writesPerDisk(false)
	if len(nlb) != 1 {
		t.Fatalf("NLB writes hit %d disks, want 1 (dedicated parity disk)", len(nlb))
	}
	lb := writesPerDisk(true)
	if len(lb) != 5 {
		t.Fatalf("LB writes hit %d disks, want 5", len(lb))
	}
	for d, n := range lb {
		if n != 40 { // 200 total writes spread over 5 disks
			t.Errorf("disk %d got %d writes, want 40", d, n)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	in := []disksim.Request{
		{Arrival: 0, Disk: 1, LBA: 42, Write: true},
		{Arrival: 1.5, Disk: 0, LBA: 7},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestTraceReadErrors(t *testing.T) {
	for _, bad := range []string{
		"1 2 3",          // too few fields
		"x 0 0 R",        // bad arrival
		"0 x 0 R",        // bad disk
		"0 0 x R",        // bad lba
		"0 0 0 Q",        // bad op
		"0 0 0 R extra1", // too many fields — wait, that's 5 fields
	} {
		if _, err := Read(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
	// Comments and blank lines are fine.
	got, err := Read(bytes.NewBufferString("# comment\n\n0 0 0 W\n"))
	if err != nil || len(got) != 1 || !got[0].Write {
		t.Fatalf("comment handling: %v %+v", err, got)
	}
}

func TestWorkloadDeterminismAndShape(t *testing.T) {
	a := Workload(RandomRW, 100, 1000, 7)
	b := Workload(RandomRW, 100, 1000, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give same workload")
	}
	seq := Workload(SequentialRead, 50, 100, 1)
	for i, op := range seq {
		if op.Write || op.Logical != int64(i%50) {
			t.Fatalf("sequential op %d = %+v", i, op)
		}
	}
	zf := Workload(ZipfRW, 1000, 5000, 9)
	counts := map[int64]int{}
	for _, op := range zf {
		if op.Logical < 0 || op.Logical >= 1000 {
			t.Fatalf("zipf logical %d out of range", op.Logical)
		}
		counts[op.Logical]++
	}
	// Skew: the hottest block must be far above uniform expectation (5).
	hot := 0
	for _, c := range counts {
		if c > hot {
			hot = c
		}
	}
	if hot < 50 {
		t.Errorf("zipf hottest block hit %d times; expected strong skew", hot)
	}

	wh := Workload(WriteHeavy, 1000, 5000, 2)
	writes := 0
	for _, op := range wh {
		if op.Logical < 0 || op.Logical >= 1000 {
			t.Fatalf("out-of-range logical %d", op.Logical)
		}
		if op.Write {
			writes++
		}
	}
	if frac := float64(writes) / 5000; frac < 0.75 || frac > 0.85 {
		t.Errorf("write-heavy fraction %.2f, want ~0.8", frac)
	}
}

// TestSimulatedCode56BeatsRDP ties trace generation to the simulator: the
// Fig. 19 shape must hold — Code 5-6's conversion completes faster than
// RDP's best approach at the same scale.
func TestSimulatedCode56BeatsRDP(t *testing.T) {
	c56 := code56Plan(t)
	var rdpBest *migrate.Plan
	for _, c := range migrate.StandardConversions(6) {
		if c.Code.Name() != "rdp" {
			continue
		}
		p, err := migrate.NewPlan(c)
		if err != nil {
			t.Fatal(err)
		}
		if rdpBest == nil || p.Metrics().TimeLB < rdpBest.Metrics().TimeLB {
			rdpBest = p
		}
	}
	opts := Options{TotalDataBlocks: 6000, LoadBalanced: true}
	run := func(p *migrate.Plan) float64 {
		sim, err := disksim.New(p.Conv.Code.Geometry().Cols-p.Virtual, 4096, disksim.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.RunPhases(FromPlan(p, opts))
		if err != nil {
			t.Fatal(err)
		}
		return st.Makespan
	}
	t56, trdp := run(c56), run(rdpBest)
	if t56 >= trdp {
		t.Errorf("Code 5-6 simulated time %.1f >= RDP's %.1f", t56, trdp)
	}
}
