// Package trace turns migration plans into block-level I/O traces — the
// paper's §V-C methodology ("we generate different synthetic traces for the
// migration I/Os by using various coding schemes, based on the results of
// the mathematical analysis") — and provides synthetic application
// workload generators for the online-migration experiments. Traces can be
// serialized in a DiskSim-style ASCII format.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"code56/internal/disksim"
	"code56/internal/migrate"
)

// Options controls trace synthesis from a plan.
type Options struct {
	// TotalDataBlocks is the paper's B: the trace covers enough stripe
	// groups that at least this many source data blocks are involved
	// (0.6 million in §V-C).
	TotalDataBlocks int
	// LoadBalanced rotates the column roles across stripe groups (the
	// paper's "with load balancing support"), spreading the dedicated
	// parity columns' writes over all disks.
	LoadBalanced bool
}

// FromPlan expands the plan's operation stream into per-phase I/O traces.
// The plan covers one parity-rotation period; the trace replicates it
// across ceil(TotalDataBlocks / plan.DataBlocks) groups at increasing block
// addresses. Disk indexes are real-disk indexes (virtual columns are
// skipped; the planner never schedules I/O on them).
func FromPlan(plan *migrate.Plan, o Options) [][]disksim.Request {
	if o.TotalDataBlocks <= 0 {
		o.TotalDataBlocks = plan.DataBlocks
	}
	groups := (o.TotalDataBlocks + plan.DataBlocks - 1) / plan.DataBlocks
	rows := plan.Conv.Code.Geometry().Rows
	cols := plan.Conv.Code.Geometry().Cols
	realCols := cols - plan.Virtual
	phases := make([][]disksim.Request, len(plan.PhaseNames))

	for g := 0; g < groups; g++ {
		markers := make([]int, len(phases))
		for i := range phases {
			markers[i] = len(phases[i])
		}
		base := int64(g) * int64(plan.Period) * int64(rows)
		rot := 0
		if o.LoadBalanced {
			rot = g % realCols
		}
		mapDisk := func(col int) int {
			d := col - plan.Virtual
			return (d + rot) % realCols
		}
		for _, op := range plan.Ops {
			op := op
			lba := func(row int) int64 { return base + int64(op.Stripe)*int64(rows) + int64(row) }
			switch op.Kind {
			case migrate.OpReuse:
				// Zero I/O.
			case migrate.OpInvalidate:
				phases[op.Phase] = append(phases[op.Phase], disksim.Request{
					Disk: mapDisk(op.Cell.Col), LBA: lba(op.Cell.Row), Write: true,
				})
			case migrate.OpMigrate:
				for _, c := range op.Reads {
					phases[op.Phase] = append(phases[op.Phase], disksim.Request{
						Disk: mapDisk(c.Col), LBA: lba(c.Row),
					})
				}
				phases[op.Phase] = append(phases[op.Phase], disksim.Request{
					Disk: mapDisk(op.Cell.Col), LBA: lba(op.Cell.Row), Write: true,
				})
			case migrate.OpGenerate:
				for _, c := range op.Reads {
					phases[op.Phase] = append(phases[op.Phase], disksim.Request{
						Disk: mapDisk(c.Col), LBA: lba(c.Row),
					})
				}
				phases[op.Phase] = append(phases[op.Phase], disksim.Request{
					Disk: mapDisk(op.Cell.Col), LBA: lba(op.Cell.Row), Write: true,
				})
			}
		}
		// Elevator order within the stripe group: the conversion engine
		// (like any disk scheduler) issues each group's I/O in ascending
		// address order per disk, so per-disk streams are near-sequential
		// sweeps rather than chain-traversal order.
		for i := range phases {
			bucket := phases[i][markers[i]:]
			sort.SliceStable(bucket, func(a, b int) bool { return bucket[a].LBA < bucket[b].LBA })
		}
	}
	return phases
}

// Write serializes a trace in a DiskSim-style ASCII format: one request per
// line, "<arrival-ms> <disk> <lba> <R|W>".
func Write(w io.Writer, tr []disksim.Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range tr {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%.3f %d %d %s\n", r.Arrival, r.Disk, r.LBA, op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the ASCII trace format produced by Write.
func Read(r io.Reader) ([]disksim.Request, error) {
	var out []disksim.Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(f))
		}
		arrival, err := strconv.ParseFloat(f[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad arrival: %v", line, err)
		}
		disk, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad disk: %v", line, err)
		}
		lba, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad lba: %v", line, err)
		}
		var write bool
		switch f[3] {
		case "R", "r":
		case "W", "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, f[3])
		}
		out = append(out, disksim.Request{Arrival: arrival, Disk: disk, LBA: lba, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WorkloadKind selects an application I/O pattern.
type WorkloadKind int

const (
	// RandomRW issues uniformly random reads and writes.
	RandomRW WorkloadKind = iota
	// SequentialRead scans blocks in order.
	SequentialRead
	// WriteHeavy issues 80% writes at random addresses.
	WriteHeavy
	// ZipfRW issues reads and writes with a Zipf-distributed hot set —
	// the skewed access pattern real block workloads exhibit.
	ZipfRW
)

// AppOp is one application-level operation against a logical block.
type AppOp struct {
	Logical int64
	Write   bool
}

// Workload generates n application operations over logical blocks
// [0, blocks) with the given pattern; deterministic per seed.
func Workload(kind WorkloadKind, blocks int64, n int, seed int64) []AppOp {
	r := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if kind == ZipfRW && blocks > 1 {
		zipf = rand.NewZipf(r, 1.2, 1, uint64(blocks-1))
	}
	ops := make([]AppOp, n)
	for i := range ops {
		switch kind {
		case SequentialRead:
			ops[i] = AppOp{Logical: int64(i) % blocks}
		case WriteHeavy:
			ops[i] = AppOp{Logical: r.Int63n(blocks), Write: r.Intn(10) < 8}
		case ZipfRW:
			var l int64
			if zipf != nil {
				l = int64(zipf.Uint64())
			}
			ops[i] = AppOp{Logical: l, Write: r.Intn(2) == 0}
		default:
			ops[i] = AppOp{Logical: r.Int63n(blocks), Write: r.Intn(2) == 0}
		}
	}
	return ops
}
