package superblock

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"code56/internal/core"
	"code56/internal/raid6"
)

func TestBuildCodeAllNames(t *testing.T) {
	for _, name := range []string{"code56", "code56r", "rdp", "evenodd", "xcode", "pcode", "pcode-p", "hcode", "hdp"} {
		m := Manifest{Version: ManifestVersion, CodeName: name, P: 5, BlockSize: 512, Stripes: 1}
		code, err := BuildCode(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if code.Name() != name {
			t.Errorf("built %q, want %q", code.Name(), name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := BuildCode(Manifest{Version: 1, CodeName: "nonesuch", P: 5}); !errors.Is(err, ErrBadManifest) {
		t.Error("unknown code accepted")
	}
}

func TestManifestValidate(t *testing.T) {
	good := Manifest{Version: ManifestVersion, CodeName: "code56", P: 5, BlockSize: 512, Stripes: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Manifest{
		{Version: 99, CodeName: "code56", P: 5, BlockSize: 512},
		{Version: 1, CodeName: "code56", P: 5, BlockSize: 0},
		{Version: 1, CodeName: "code56", P: 5, BlockSize: 512, Stripes: -1},
		{Version: 1, CodeName: "code56", P: 4, BlockSize: 512},
	}
	for i, m := range bads {
		if err := m.Validate(); err == nil {
			t.Errorf("bad manifest %d accepted", i)
		}
	}
}

func TestSaveLoadArrayRoundTrip(t *testing.T) {
	code := core.MustNew(5)
	a := raid6.New(code, 64)
	a.SetRotation(true)
	r := rand.New(rand.NewSource(1))
	const stripes = 3
	want := map[int64][]byte{}
	for L := int64(0); L < int64(a.DataPerStripe()*stripes); L++ {
		b := make([]byte, 64)
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	a.Disks().Disk(2).InjectLatentError(5)

	var buf bytes.Buffer
	if err := SaveArray(&buf, a, stripes); err != nil {
		t.Fatal(err)
	}
	restored, m, err := LoadArray(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.CodeName != "code56" || m.P != 5 || m.Stripes != stripes || !m.Rotated {
		t.Fatalf("manifest %+v", m)
	}
	if !restored.Rotated() {
		t.Fatal("rotation not reapplied")
	}
	out := make([]byte, 64)
	for L, w := range want {
		if err := restored.ReadBlock(L, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, w) {
			t.Fatalf("block %d differs after reassembly", L)
		}
	}
	// The latent error survives the round trip and a scrub heals it.
	rep, err := restored.Scrub(stripes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentRepaired != 1 {
		t.Errorf("latent repairs %d, want 1", rep.LatentRepaired)
	}
	for st := int64(0); st < stripes; st++ {
		ok, err := restored.VerifyStripe(st)
		if err != nil || !ok {
			t.Fatalf("stripe %d: %v %v", st, ok, err)
		}
	}
}

func TestLoadArrayRejectsGarbage(t *testing.T) {
	if _, _, err := LoadArray(bytes.NewBufferString("garbage")); !errors.Is(err, ErrBadManifest) {
		t.Errorf("garbage accepted: %v", err)
	}
	// Valid magic, oversized manifest length.
	var buf bytes.Buffer
	buf.Write(streamMagic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	if _, _, err := LoadArray(&buf); !errors.Is(err, ErrBadManifest) {
		t.Errorf("oversized manifest accepted: %v", err)
	}
	// Manifest/snapshot block size mismatch.
	code := core.MustNew(5)
	a := raid6.New(code, 64)
	var good bytes.Buffer
	if err := SaveArray(&good, a, 0); err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(good.Bytes(), []byte(`"block_size":64`), []byte(`"block_size":32`), 1)
	if _, _, err := LoadArray(bytes.NewBuffer(mangled)); !errors.Is(err, ErrBadManifest) {
		t.Errorf("block-size mismatch accepted: %v", err)
	}
}

// TestSaveLoadEveryCode round-trips a small array of every code through
// the superblock stream.
func TestSaveLoadEveryCode(t *testing.T) {
	for _, name := range []string{"code56", "code56r", "rdp", "evenodd", "xcode", "pcode", "pcode-p", "hcode", "hdp"} {
		code, err := BuildCode(Manifest{Version: ManifestVersion, CodeName: name, P: 5, BlockSize: 32, Stripes: 1})
		if err != nil {
			t.Fatal(err)
		}
		a := raid6.New(code, 32)
		b := bytes.Repeat([]byte{0x42}, 32)
		if err := a.WriteBlock(0, b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := SaveArray(&buf, a, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		restored, m, err := LoadArray(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.CodeName != name {
			t.Fatalf("%s: manifest says %s", name, m.CodeName)
		}
		out := make([]byte, 32)
		if err := restored.ReadBlock(0, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("%s: contents lost", name)
		}
		if ok, _ := restored.VerifyStripe(0); !ok {
			t.Fatalf("%s: stripe inconsistent after reassembly", name)
		}
	}
}
