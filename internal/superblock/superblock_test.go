package superblock

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"code56/internal/core"
	"code56/internal/raid6"
)

func TestBuildCodeAllNames(t *testing.T) {
	for _, name := range []string{"code56", "code56r", "rdp", "evenodd", "xcode", "pcode", "pcode-p", "hcode", "hdp"} {
		m := Manifest{Version: ManifestVersion, CodeName: name, P: 5, BlockSize: 512, Stripes: 1}
		code, err := BuildCode(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if code.Name() != name {
			t.Errorf("built %q, want %q", code.Name(), name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := BuildCode(Manifest{Version: 1, CodeName: "nonesuch", P: 5}); !errors.Is(err, ErrBadManifest) {
		t.Error("unknown code accepted")
	}
}

func TestManifestValidate(t *testing.T) {
	good := Manifest{Version: ManifestVersion, CodeName: "code56", P: 5, BlockSize: 512, Stripes: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Manifest{
		{Version: 99, CodeName: "code56", P: 5, BlockSize: 512},
		{Version: 1, CodeName: "code56", P: 5, BlockSize: 0},
		{Version: 1, CodeName: "code56", P: 5, BlockSize: 512, Stripes: -1},
		{Version: 1, CodeName: "code56", P: 4, BlockSize: 512},
	}
	for i, m := range bads {
		if err := m.Validate(); err == nil {
			t.Errorf("bad manifest %d accepted", i)
		}
	}
}

func TestSaveLoadArrayRoundTrip(t *testing.T) {
	code := core.MustNew(5)
	a := raid6.New(code, 64)
	a.SetRotation(true)
	r := rand.New(rand.NewSource(1))
	const stripes = 3
	want := map[int64][]byte{}
	for L := int64(0); L < int64(a.DataPerStripe()*stripes); L++ {
		b := make([]byte, 64)
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	a.Disks().Disk(2).InjectLatentError(5)

	var buf bytes.Buffer
	if err := SaveArray(&buf, a, stripes); err != nil {
		t.Fatal(err)
	}
	restored, m, err := LoadArray(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.CodeName != "code56" || m.P != 5 || m.Stripes != stripes || !m.Rotated {
		t.Fatalf("manifest %+v", m)
	}
	if !restored.Rotated() {
		t.Fatal("rotation not reapplied")
	}
	out := make([]byte, 64)
	for L, w := range want {
		if err := restored.ReadBlock(L, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, w) {
			t.Fatalf("block %d differs after reassembly", L)
		}
	}
	// The latent error survives the round trip and a scrub heals it.
	rep, err := restored.Scrub(stripes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentRepaired != 1 {
		t.Errorf("latent repairs %d, want 1", rep.LatentRepaired)
	}
	for st := int64(0); st < stripes; st++ {
		ok, err := restored.VerifyStripe(st)
		if err != nil || !ok {
			t.Fatalf("stripe %d: %v %v", st, ok, err)
		}
	}
}

func TestLoadArrayRejectsGarbage(t *testing.T) {
	if _, _, err := LoadArray(bytes.NewBufferString("garbage")); !errors.Is(err, ErrBadManifest) {
		t.Errorf("garbage accepted: %v", err)
	}
	// Valid magic, oversized manifest length.
	var buf bytes.Buffer
	buf.Write(streamMagic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F})
	if _, _, err := LoadArray(&buf); !errors.Is(err, ErrBadManifest) {
		t.Errorf("oversized manifest accepted: %v", err)
	}
	// Manifest/snapshot block size mismatch.
	code := core.MustNew(5)
	a := raid6.New(code, 64)
	var good bytes.Buffer
	if err := SaveArray(&good, a, 0); err != nil {
		t.Fatal(err)
	}
	mangled := bytes.Replace(good.Bytes(), []byte(`"block_size":64`), []byte(`"block_size":32`), 1)
	if _, _, err := LoadArray(bytes.NewBuffer(mangled)); !errors.Is(err, ErrBadManifest) {
		t.Errorf("block-size mismatch accepted: %v", err)
	}
}

// rebuildStream assembles a superblock stream from an arbitrary manifest
// and a pre-serialized disk snapshot, bypassing SaveArray's validation so
// tests can produce streams a buggy or hostile writer might.
func rebuildStream(t *testing.T, m Manifest, snapshot []byte) []byte {
	t.Helper()
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(streamMagic[:])
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(blob))); err != nil {
		t.Fatal(err)
	}
	buf.Write(blob)
	buf.Write(snapshot)
	return buf.Bytes()
}

// TestLoadArrayFuzzTable drives LoadArray with truncated, corrupted, and
// inconsistent streams. Every case must fail with a descriptive error —
// never panic, never hand back a half-assembled array.
func TestLoadArrayFuzzTable(t *testing.T) {
	code := core.MustNew(5)
	a := raid6.New(code, 64)
	if err := a.WriteBlock(0, bytes.Repeat([]byte{0x5A}, 64)); err != nil {
		t.Fatal(err)
	}
	var goodBuf bytes.Buffer
	if err := SaveArray(&goodBuf, a, 1); err != nil {
		t.Fatal(err)
	}
	good := goodBuf.Bytes()

	// Locate the snapshot so corrupted manifests can keep a valid tail.
	manifestLen := binary.LittleEndian.Uint32(good[8:12])
	snapshot := good[12+int(manifestLen):]
	okManifest := Manifest{Version: ManifestVersion, CodeName: "code56", P: 5, BlockSize: 64, Stripes: 1}

	// Sanity: the reassembled baseline loads.
	if _, _, err := LoadArray(bytes.NewReader(rebuildStream(t, okManifest, snapshot))); err != nil {
		t.Fatalf("baseline stream rejected: %v", err)
	}

	manifest := func(mut func(*Manifest)) []byte {
		m := okManifest
		mut(&m)
		return rebuildStream(t, m, snapshot)
	}
	cases := []struct {
		name        string
		stream      []byte
		badManifest bool // must map to ErrBadManifest, not just any error
	}{
		{"empty", nil, true},
		{"bad magic", append([]byte("C56ARRY2"), good[8:]...), true},
		{"zero manifest length", append(append([]byte{}, good[:8]...), 0, 0, 0, 0), true},
		{"oversized manifest length", append(append([]byte{}, good[:8]...), 0xFF, 0xFF, 0xFF, 0x7F), true},
		{"manifest length past end", func() []byte {
			s := append([]byte{}, good...)
			binary.LittleEndian.PutUint32(s[8:12], uint32(len(s)))
			return s
		}(), true},
		{"manifest not JSON", rebuildStream(t, okManifest, snapshot)[:12+int(manifestLen)/2], true},
		{"wrong version", manifest(func(m *Manifest) { m.Version = 99 }), true},
		{"zero block size", manifest(func(m *Manifest) { m.BlockSize = 0 }), true},
		{"negative stripes", manifest(func(m *Manifest) { m.Stripes = -1 }), true},
		{"unknown code", manifest(func(m *Manifest) { m.CodeName = "nonesuch" }), true},
		{"non-prime p", manifest(func(m *Manifest) { m.P = 6 }), true},
		{"block size disagrees with snapshot", manifest(func(m *Manifest) { m.BlockSize = 32 }), true},
		{"snapshot truncated", good[:len(good)-len(snapshot)/2], false},
		{"snapshot missing", good[:12+int(manifestLen)], false},
	}
	for _, tc := range cases {
		arr, _, err := LoadArray(bytes.NewReader(tc.stream))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if arr != nil {
			t.Errorf("%s: returned an array alongside error %v", tc.name, err)
		}
		if tc.badManifest && !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: error %v does not wrap ErrBadManifest", tc.name, err)
		}
	}

	// Fuzz-style sweep: every possible truncation of a valid stream must
	// fail cleanly, and no single corrupted header byte may crash the
	// loader or smuggle through an array with the wrong identity.
	for n := 0; n < len(good); n++ {
		if arr, _, err := LoadArray(bytes.NewReader(good[:n])); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted (array %v)", n, len(good), arr != nil)
		}
	}
	header := 12 + int(manifestLen)
	for i := 0; i < header; i++ {
		mut := append([]byte{}, good...)
		mut[i] ^= 0xFF
		arr, m, err := LoadArray(bytes.NewReader(mut))
		if err != nil {
			continue // rejected: fine
		}
		// A flip the JSON decoder tolerates must still yield a validated
		// manifest and a usable array.
		if arr == nil {
			t.Fatalf("byte %d flip: nil array with nil error", i)
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("byte %d flip: loaded with invalid manifest %+v: %v", i, m, verr)
		}
	}
}

// TestSaveLoadEveryCode round-trips a small array of every code through
// the superblock stream.
func TestSaveLoadEveryCode(t *testing.T) {
	for _, name := range []string{"code56", "code56r", "rdp", "evenodd", "xcode", "pcode", "pcode-p", "hcode", "hdp"} {
		code, err := BuildCode(Manifest{Version: ManifestVersion, CodeName: name, P: 5, BlockSize: 32, Stripes: 1})
		if err != nil {
			t.Fatal(err)
		}
		a := raid6.New(code, 32)
		b := bytes.Repeat([]byte{0x42}, 32)
		if err := a.WriteBlock(0, b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := SaveArray(&buf, a, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		restored, m, err := LoadArray(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.CodeName != name {
			t.Fatalf("%s: manifest says %s", name, m.CodeName)
		}
		out := make([]byte, 32)
		if err := restored.ReadBlock(0, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("%s: contents lost", name)
		}
		if ok, _ := restored.VerifyStripe(0); !ok {
			t.Fatalf("%s: stripe inconsistent after reassembly", name)
		}
	}
}
