// Package superblock gives arrays an mdadm-like identity: a Manifest
// records what an array is (code, prime, variant, geometry, rotation), and
// SaveArray/LoadArray persist a complete RAID-6 — manifest plus disk
// snapshot — as one stream, so a simulated array can be torn down and
// reassembled across processes without out-of-band knowledge.
package superblock

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"code56/internal/codes/evenodd"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/raid6"
	"code56/internal/vdisk"

	hcodepkg "code56/internal/codes/hcode"
)

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// ErrBadManifest is returned for malformed or unsupported manifests.
var ErrBadManifest = errors.New("superblock: bad manifest")

// Manifest identifies an array's code and geometry.
type Manifest struct {
	// Version is the manifest format version.
	Version int `json:"version"`
	// CodeName is the code's Name() ("code56", "rdp", "evenodd",
	// "xcode", "pcode", "pcode-p", "hcode", "hdp", "code56r").
	CodeName string `json:"code"`
	// P is the code's prime parameter.
	P int `json:"p"`
	// BlockSize is the array's block size in bytes.
	BlockSize int `json:"block_size"`
	// Stripes is the number of stripes the array holds.
	Stripes int64 `json:"stripes"`
	// Rotated records per-stripe parity rotation.
	Rotated bool `json:"rotated,omitempty"`
}

// ManifestFor derives the manifest of a live array.
func ManifestFor(a *raid6.Array, stripes int64) Manifest {
	return Manifest{
		Version:   ManifestVersion,
		CodeName:  a.Code().Name(),
		P:         a.Code().Geometry().P,
		BlockSize: a.BlockSize(),
		Stripes:   stripes,
		Rotated:   a.Rotated(),
	}
}

// BuildCode reconstructs the erasure code a manifest names.
func BuildCode(m Manifest) (layout.Code, error) {
	switch m.CodeName {
	case "code56":
		return core.New(m.P)
	case "code56r":
		return core.NewOriented(m.P, core.Right)
	case "rdp":
		return rdp.New(m.P)
	case "evenodd":
		return evenodd.New(m.P)
	case "xcode":
		return xcode.New(m.P)
	case "pcode":
		return pcode.New(m.P, pcode.VariantPMinus1)
	case "pcode-p":
		return pcode.New(m.P, pcode.VariantP)
	case "hcode":
		return hcodepkg.New(m.P)
	case "hdp":
		return hdp.New(m.P)
	default:
		return nil, fmt.Errorf("%w: unknown code %q", ErrBadManifest, m.CodeName)
	}
}

// Validate checks internal consistency.
func (m Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadManifest, m.Version)
	}
	if m.BlockSize <= 0 {
		return fmt.Errorf("%w: block size %d", ErrBadManifest, m.BlockSize)
	}
	if m.Stripes < 0 {
		return fmt.Errorf("%w: negative stripes", ErrBadManifest)
	}
	if _, err := BuildCode(m); err != nil {
		if errors.Is(err, ErrBadManifest) {
			return err
		}
		// A code constructor rejecting the parameters (e.g. non-prime P)
		// means the manifest itself is bad; keep the rejection uniformly
		// detectable via errors.Is(err, ErrBadManifest).
		return fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	return nil
}

var streamMagic = [8]byte{'C', '5', '6', 'A', 'R', 'R', 'Y', '1'}

// SaveArray writes the array — manifest and full disk snapshot — to w.
func SaveArray(w io.Writer, a *raid6.Array, stripes int64) error {
	m := ManifestFor(a, stripes)
	if err := m.Validate(); err != nil {
		return err
	}
	blob, err := json.Marshal(m)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(streamMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(blob))); err != nil {
		return err
	}
	if _, err := bw.Write(blob); err != nil {
		return err
	}
	if err := a.Disks().Save(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadArray reassembles an array saved by SaveArray.
func LoadArray(r io.Reader) (*raid6.Array, Manifest, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, Manifest{}, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if magic != streamMagic {
		return nil, Manifest{}, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, Manifest{}, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if n == 0 || n > 1<<20 {
		return nil, Manifest{}, fmt.Errorf("%w: manifest size %d", ErrBadManifest, n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(br, blob); err != nil {
		return nil, Manifest{}, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, Manifest{}, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if err := m.Validate(); err != nil {
		return nil, Manifest{}, err
	}
	code, err := BuildCode(m)
	if err != nil {
		return nil, Manifest{}, err
	}
	disks, err := vdisk.Load(br)
	if err != nil {
		return nil, Manifest{}, err
	}
	if disks.BlockSize() != m.BlockSize {
		return nil, Manifest{}, fmt.Errorf("%w: snapshot block size %d vs manifest %d", ErrBadManifest, disks.BlockSize(), m.BlockSize)
	}
	a, err := raid6.Wrap(code, disks)
	if err != nil {
		return nil, Manifest{}, err
	}
	a.SetRotation(m.Rotated)
	return a, m, nil
}
