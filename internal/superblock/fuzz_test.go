package superblock

import (
	"bytes"
	"testing"

	"code56/internal/core"
	"code56/internal/raid6"
)

// FuzzLoadArray throws arbitrary streams at LoadArray. Malformed input
// must fail with an error — never panic or hang — and any stream that
// does load must survive a save/reload round-trip with its manifest
// intact (the same contract TestSaveLoadArrayRoundTrip checks for
// well-formed streams). Run with `go test -fuzz=FuzzLoadArray` to
// explore; the seeds (and testdata/fuzz corpus) run on every plain
// `go test`.
func FuzzLoadArray(f *testing.F) {
	// A genuine stream, so the fuzzer starts from valid structure and
	// mutates inward (manifest JSON, geometry fields, per-disk records).
	var buf bytes.Buffer
	a := raid6.New(core.MustNew(5), 64)
	a.SetRotation(true)
	if err := SaveArray(&buf, a, 3); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated mid-snapshot
	f.Add([]byte{})              // empty stream
	f.Add([]byte("C56ARRY1"))    // magic only
	f.Add([]byte("C56VDSK1...")) // the inner magic where the outer belongs

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, m, err := LoadArray(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is the expected outcome
		}
		var out bytes.Buffer
		if err := SaveArray(&out, loaded, m.Stripes); err != nil {
			t.Fatalf("re-save of a loaded array failed: %v", err)
		}
		reloaded, m2, err := LoadArray(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-load of a re-saved array failed: %v", err)
		}
		if m2 != m {
			t.Fatalf("manifest drifted across round-trip: %+v vs %+v", m2, m)
		}
		if reloaded.BlockSize() != loaded.BlockSize() {
			t.Fatalf("block size drifted: %d vs %d", reloaded.BlockSize(), loaded.BlockSize())
		}
	})
}
