package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDumpMetricsAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.txt")
	if err := os.WriteFile(path, []byte("stale partial content"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	r.Counter("dump.ok").Add(7)
	if err := DumpMetrics(r, path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := "dump.ok 7\n"; string(got) != want {
		t.Fatalf("dump = %q, want %q", got, want)
	}
	// No temp files left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".metrics-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestDumpMetricsJSONSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	r := NewRegistry()
	r.Gauge("dump.depth").Set(3)
	if err := DumpMetrics(r, path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), `"dump.depth": 3`) {
		t.Fatalf("JSON dump missing gauge: %s", got)
	}
}

func TestDumpMetricsErrorLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "gone") // nonexistent directory
	err := DumpMetrics(NewRegistry(), filepath.Join(sub, "m.txt"))
	if err == nil {
		t.Fatal("dump into a nonexistent directory should fail")
	}

	// An unwritable directory must fail without touching an existing file.
	path := filepath.Join(dir, "keep.txt")
	if err := os.WriteFile(path, []byte("previous complete dump"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Getuid() != 0 { // root ignores directory permissions
		if err := DumpMetrics(NewRegistry(), path); err == nil {
			t.Fatal("dump into an unwritable directory should fail")
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil || string(got) != "previous complete dump" {
			t.Fatalf("existing dump clobbered: %q, %v", got, rerr)
		}
	}
}

func TestDumpMetricsEmptyPathIsNoop(t *testing.T) {
	if err := DumpMetrics(NewRegistry(), ""); err != nil {
		t.Fatal(err)
	}
}

func TestAttachTraceFileEmptyPath(t *testing.T) {
	tr := NewTracer()
	closeFn, err := AttachTraceFile(tr, "")
	if err != nil {
		t.Fatal(err)
	}
	if closeFn == nil {
		t.Fatal("close func must never be nil")
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	if tr.enabled() {
		t.Fatal("empty path must not attach a sink")
	}
}

func TestAttachTraceFileStderr(t *testing.T) {
	tr := NewTracer()
	closeFn, err := AttachTraceFile(tr, "-")
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if !tr.enabled() {
		t.Fatal("\"-\" must attach the stderr sink")
	}
	if err := closeFn(); err != nil {
		t.Fatal("closing the stderr sink must be a no-op, got", err)
	}
}

func TestAttachTraceFileUnwritablePath(t *testing.T) {
	tr := NewTracer()
	closeFn, err := AttachTraceFile(tr, filepath.Join(t.TempDir(), "no", "such", "dir.jsonl"))
	if err == nil {
		t.Fatal("unwritable path should fail")
	}
	if closeFn == nil {
		t.Fatal("close func must never be nil, even on error")
	}
	if cerr := closeFn(); cerr != nil {
		t.Fatal("error-path close func must be a no-op, got", cerr)
	}
	if tr.enabled() {
		t.Fatal("failed attach must not leave a sink behind")
	}
}

func TestAttachTraceFileWritesEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr := NewTracer()
	closeFn, err := AttachTraceFile(tr, path)
	if err != nil {
		t.Fatal(err)
	}
	tr.StartSpan("cli.span").End()
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), `"cli.span"`) {
		t.Fatalf("trace file missing span: %s", got)
	}
}
