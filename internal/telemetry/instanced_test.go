package telemetry

import "testing"

func TestPerInstanceNaming(t *testing.T) {
	r := NewRegistry()
	inst := r.PerInstance("vdisk.disk", "3")
	inst.Counter("reads").Inc()
	inst.Gauge("depth").Set(7)
	inst.Histogram("latency_us", []float64{1, 10}).Observe(5)

	s := r.Snapshot()
	if got := s.Counters["vdisk.disk.3.reads"]; got != 1 {
		t.Errorf("vdisk.disk.3.reads = %d, want 1", got)
	}
	if got := s.Gauges["vdisk.disk.3.depth"]; got != 7 {
		t.Errorf("vdisk.disk.3.depth = %d, want 7", got)
	}
	h, ok := s.Histograms["vdisk.disk.3.latency_us"]
	if !ok || h.Count != 1 || h.Sum != 5 {
		t.Errorf("vdisk.disk.3.latency_us = %+v, want one observation of 5", h)
	}
}

func TestPerInstanceSharesInstruments(t *testing.T) {
	// Two Instanced values for the same prefix/id resolve to the same
	// underlying instruments, exactly like repeated Registry lookups.
	r := NewRegistry()
	a := r.PerInstance("vdisk.disk", "0")
	b := r.PerInstance("vdisk.disk", "0")
	if a.Counter("reads") != b.Counter("reads") {
		t.Error("same prefix/id/suffix resolved to distinct counters")
	}
	// Distinct ids stay distinct.
	c := r.PerInstance("vdisk.disk", "1")
	if a.Counter("reads") == c.Counter("reads") {
		t.Error("distinct instance ids shared a counter")
	}
}

func TestPerInstanceNilRegistry(t *testing.T) {
	// A nil receiver resolves to the process-wide default, matching the
	// rest of the Registry API's nil behavior.
	var r *Registry
	inst := r.PerInstance("telemetry_test.nilcase", "0")
	inst.Counter("hits").Inc()
	if got := Default().Snapshot().Counters["telemetry_test.nilcase.0.hits"]; got != 1 {
		t.Errorf("nil-registry PerInstance counter = %d, want 1 in Default()", got)
	}
}
