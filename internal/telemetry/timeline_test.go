package telemetry

import (
	"testing"
	"time"
)

func TestTimelineSinkAggregatesSpans(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(NewTimelineSink(reg))

	for i := 0; i < 3; i++ {
		sp := tr.StartSpan("migrate.online")
		sp.Event("step") // events carry no duration and must be ignored
		sp.End()
	}
	tr.StartSpan("raid6.scrub").End()
	tr.Event("loose")

	s := reg.Snapshot()
	if got := s.Histograms["trace.span_us.migrate.online"].Count; got != 3 {
		t.Fatalf("migrate.online span count = %d, want 3", got)
	}
	if got := s.Histograms["trace.span_us.raid6.scrub"].Count; got != 1 {
		t.Fatalf("raid6.scrub span count = %d, want 1", got)
	}
	if len(s.Histograms) != 2 {
		t.Fatalf("got %d histograms %v, want exactly the two span timelines",
			len(s.Histograms), s.Histograms)
	}
}

func TestTimelineSinkRecordsDuration(t *testing.T) {
	reg := NewRegistry()
	sink := NewTimelineSink(reg)
	sink.Emit(Event{Phase: "end", Name: "x.phase", Dur: 3 * time.Millisecond})
	h := reg.Snapshot().Histograms["trace.span_us.x.phase"]
	if h.Count != 1 || h.Sum != 3000 {
		t.Fatalf("span histogram = %+v, want one 3000 µs observation", h)
	}
	if q := h.Quantile(0.5); q <= 0 {
		t.Fatalf("span p50 = %g, want > 0", q)
	}
}

func TestRingSinkDroppedCounter(t *testing.T) {
	reg := NewRegistry()
	ring := NewRingSink(3)
	ring.SetTelemetry(reg)

	for i := 0; i < 3; i++ {
		ring.Emit(Event{Name: "keep"})
	}
	if ring.Dropped() != 0 || reg.Counter("trace.dropped_spans").Value() != 0 {
		t.Fatalf("drops before the ring wraps: %d", ring.Dropped())
	}
	for i := 0; i < 5; i++ {
		ring.Emit(Event{Name: "evict"})
	}
	if got := ring.Dropped(); got != 5 {
		t.Fatalf("Dropped() = %d, want 5", got)
	}
	if got := reg.Counter("trace.dropped_spans").Value(); got != 5 {
		t.Fatalf("trace.dropped_spans = %d, want 5", got)
	}
	// The retained window is still the newest events.
	ev := ring.Events()
	if len(ev) != 3 || ev[0].Name != "evict" {
		t.Fatalf("retained %v, want the 3 newest", ev)
	}
}
