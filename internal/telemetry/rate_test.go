package telemetry

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a Rate deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestRateWindows(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry()
	rt := r.Rate("x.ops")
	rt.now = clk.now

	// 10 events per second for 5 seconds, then snapshot mid-second.
	for s := 0; s < 5; s++ {
		for i := 0; i < 10; i++ {
			rt.Inc()
		}
		clk.advance(time.Second)
	}
	clk.advance(500 * time.Millisecond)

	s := rt.Snapshot()
	if s.Total != 50 {
		t.Fatalf("total = %d, want 50", s.Total)
	}
	// The current second (age 0) is empty; the 1 s window sees only it.
	if s.Rate1s != 0 {
		t.Fatalf("rate1s = %g, want 0 (current second is idle)", s.Rate1s)
	}
	// 10 s window: 50 events over 9.5 elapsed seconds ≈ 5.26/s.
	if s.Rate10s < 5.0 || s.Rate10s > 5.5 {
		t.Fatalf("rate10s = %g, want ≈5.26", s.Rate10s)
	}
	// 60 s window: 50 events over 59.5 s ≈ 0.84/s.
	if s.Rate60s < 0.8 || s.Rate60s > 0.9 {
		t.Fatalf("rate60s = %g, want ≈0.84", s.Rate60s)
	}
	if s.EWMA <= 0 {
		t.Fatalf("ewma = %g, want > 0", s.EWMA)
	}
}

func TestRateCurrentSecondCounts(t *testing.T) {
	clk := newFakeClock()
	rt := newRate()
	rt.now = clk.now
	clk.advance(500 * time.Millisecond)
	rt.Add(5)
	s := rt.Snapshot()
	// 5 events in the half-elapsed current second → 10/s.
	if s.Rate1s < 9.9 || s.Rate1s > 10.1 {
		t.Fatalf("rate1s = %g, want 10", s.Rate1s)
	}
}

func TestRateDecaysToZero(t *testing.T) {
	clk := newFakeClock()
	rt := newRate()
	rt.now = clk.now
	rt.Add(100)
	clk.advance(2 * time.Minute)
	s := rt.Snapshot()
	if s.Rate1s != 0 || s.Rate10s != 0 || s.Rate60s != 0 || s.EWMA != 0 {
		t.Fatalf("stale events still visible: %+v", s)
	}
	if s.Total != 100 {
		t.Fatalf("total = %d, want 100 (cumulative)", s.Total)
	}
}

func TestRateEWMAFavorsRecent(t *testing.T) {
	clk := newFakeClock()
	slow, fast := newRate(), newRate()
	slow.now, fast.now = clk.now, clk.now
	// Same total: slow spent it 50 s ago, fast spent it just now.
	slow.Add(100)
	clk.advance(50 * time.Second)
	fast.Add(100)
	clk.advance(500 * time.Millisecond)
	if s, f := slow.Snapshot().EWMA, fast.Snapshot().EWMA; f <= s {
		t.Fatalf("recent burst EWMA %g should exceed old burst EWMA %g", f, s)
	}
}

func TestRateIgnoresNonPositiveAndNil(t *testing.T) {
	var nr *Rate
	nr.Inc() // must not panic
	if s := nr.Snapshot(); s.Total != 0 {
		t.Fatalf("nil rate snapshot = %+v", s)
	}
	rt := newRate()
	rt.Add(0)
	rt.Add(-5)
	if got := rt.Snapshot().Total; got != 0 {
		t.Fatalf("total = %d, want 0", got)
	}
}

func TestRateGetOrCreateAndSnapshot(t *testing.T) {
	r := NewRegistry()
	if r.Rate("x.rate") != r.Rate("x.rate") {
		t.Fatal("Rate is not get-or-create")
	}
	r.Rate("x.rate").Add(3)
	s := r.Snapshot()
	if s.Rates["x.rate"].Total != 3 {
		t.Fatalf("snapshot rates = %+v, want total 3", s.Rates)
	}
	// Nil registry falls back to the default.
	var nilReg *Registry
	nilReg.Rate("via.default_rate").Inc()
	if Default().Rate("via.default_rate").Snapshot().Total != 1 {
		t.Fatal("nil registry Rate should fall back to Default()")
	}
}

func TestRateConcurrent(t *testing.T) {
	rt := newRate()
	var wg sync.WaitGroup
	const workers, each = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rt.Inc()
				if i%100 == 0 {
					rt.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := rt.Snapshot().Total; got != workers*each {
		t.Fatalf("total = %d, want %d", got, workers*each)
	}
}
