//go:build !race

package telemetry

const raceEnabled = false
