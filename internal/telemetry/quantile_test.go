package telemetry

import "testing"

func TestQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.lat", []float64{10, 20, 40})
	// 10 observations uniformly in the first bucket's range.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	s := h.Snapshot()
	// Rank q*10 interpolated across [0, 10): the median is the bucket's
	// midpoint, q=1 its upper bound, q=0 its lower edge.
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("p50 = %g, want 5", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("p100 = %g, want 10", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("p0 = %g, want 0", got)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.lat2", []float64{1, 2, 4, 8})
	// One observation per bucket except the overflow.
	for _, v := range []float64{0.5, 1.5, 3, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// p99 lands in the last finite bucket (4, 8]: rank 3.96 of 4.
	if got := s.Quantile(0.99); got <= 4 || got > 8 {
		t.Fatalf("p99 = %g, want in (4, 8]", got)
	}
	// p25 is the first bucket's upper bound (rank 1 of 4 completes it).
	if got := s.Quantile(0.25); got != 1 {
		t.Fatalf("p25 = %g, want 1", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.single", []float64{100})
	h.Observe(50)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 50 {
		t.Fatalf("single-bucket p50 = %g, want 50 (midpoint)", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("single-bucket p100 = %g, want 100", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.over", []float64{1, 10})
	h.Observe(100) // lands in +Inf
	s := h.Snapshot()
	// Nothing to interpolate toward: the largest finite bound is returned.
	if got := s.Quantile(0.5); got != 10 {
		t.Fatalf("overflow p50 = %g, want 10", got)
	}
}

func TestQuantileClampsAndNoBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.clamp", []float64{10})
	h.Observe(5)
	s := h.Snapshot()
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Fatalf("q<0 not clamped: %g vs %g", got, s.Quantile(0))
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Fatalf("q>1 not clamped: %g vs %g", got, s.Quantile(1))
	}
	// A bound-less histogram (only the +Inf bucket) falls back to the mean.
	nb := HistogramSnapshot{Counts: []int64{4}, Count: 4, Sum: 12}
	if got := nb.Quantile(0.5); got != 3 {
		t.Fatalf("bound-less p50 = %g, want mean 3", got)
	}
}
