package telemetry

import (
	"fmt"
	"os"
	"strings"
)

// DumpMetrics writes a registry dump to path: "-" means stdout, a path
// ending in ".json" selects the JSON form, anything else the expvar-style
// text form. It is the implementation behind the CLIs' -metrics flag.
func DumpMetrics(r *Registry, path string) error {
	if path == "" {
		return nil
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("telemetry: metrics dump: %w", err)
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(path, ".json") {
		return r.WriteJSON(w)
	}
	return r.WriteText(w)
}

// AttachTraceFile creates path ("-" means stderr) and attaches a JSON-lines
// sink writing to it to the tracer. The returned func flushes and closes the
// file; call it once tracing is done. The func is never nil, so callers can
// defer it unconditionally even on error. It is the implementation behind
// the CLIs' -trace flag.
func AttachTraceFile(t *Tracer, path string) (func() error, error) {
	noop := func() error { return nil }
	if path == "" {
		return noop, nil
	}
	if path == "-" {
		t.AddSink(NewJSONLSink(os.Stderr))
		return noop, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return noop, fmt.Errorf("telemetry: trace file: %w", err)
	}
	t.AddSink(NewJSONLSink(f))
	return f.Close, nil
}
