package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DumpMetrics writes a registry dump to path: "-" means stdout, a path
// ending in ".json" selects the JSON form, anything else the expvar-style
// text form. It is the implementation behind the CLIs' -metrics flag.
//
// File dumps are atomic: the dump is written to a temporary file in the
// target directory and renamed into place, so a crash (or disk-full error)
// mid-dump never leaves a truncated metrics file where a previous complete
// one stood.
func DumpMetrics(r *Registry, path string) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return writeDump(r, os.Stdout, path)
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".metrics-*.tmp")
	if err != nil {
		return fmt.Errorf("telemetry: metrics dump: %w", err)
	}
	tmp := f.Name()
	if err := writeDump(r, f, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("telemetry: metrics dump: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("telemetry: metrics dump: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("telemetry: metrics dump: %w", err)
	}
	return nil
}

// writeDump picks the dump format from the destination path's suffix.
func writeDump(r *Registry, w *os.File, path string) error {
	if strings.HasSuffix(path, ".json") {
		return r.WriteJSON(w)
	}
	return r.WriteText(w)
}

// AttachTraceFile creates path ("-" means stderr) and attaches a JSON-lines
// sink writing to it to the tracer. The returned func flushes and closes the
// file; call it once tracing is done. The func is never nil, so callers can
// defer it unconditionally even on error. It is the implementation behind
// the CLIs' -trace flag.
func AttachTraceFile(t *Tracer, path string) (func() error, error) {
	noop := func() error { return nil }
	if path == "" {
		return noop, nil
	}
	if path == "-" {
		t.AddSink(NewJSONLSink(os.Stderr))
		return noop, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return noop, fmt.Errorf("telemetry: trace file: %w", err)
	}
	t.AddSink(NewJSONLSink(f))
	return f.Close, nil
}
