package telemetry

import (
	"math"
	"sync"
	"time"
)

// rateBuckets is the size of a Rate's ring: one bucket per second, enough
// to cover the 60 s window plus the partially filled current second.
const rateBuckets = 64

type rateBucket struct {
	sec int64 // unix second this bucket counts, 0 when never used
	n   int64
}

// Rate is a windowed event-rate instrument: a ring of per-second buckets
// from which 1 s / 10 s / 60 s rates and an exponentially weighted moving
// average are derived at snapshot time. Unlike a Counter (whose consumers
// must diff successive scrapes themselves), a Rate answers "how fast right
// now?" directly — it is what the live observability plane and the
// c56-migrate watch mode display for migration stripes/s and vdisk IOPS.
//
// Add is a short critical section on a per-instrument mutex (no
// allocation), cheap enough for per-I/O call sites that already serialize
// on their own locks. The zero value is not usable; obtain instances from
// Registry.Rate.
type Rate struct {
	mu      sync.Mutex
	buckets [rateBuckets]rateBucket //c56:guardedby mu
	total   int64                   //c56:guardedby mu
	// now is the clock, replaceable by tests for deterministic windows. It
	// is fixed at construction, so it needs no guard.
	now func() time.Time
}

func newRate() *Rate { return &Rate{now: time.Now} }

// Add records d events at the current time. Non-positive deltas are
// ignored (a rate counts occurrences, like a Counter).
//
//c56:noalloc
func (r *Rate) Add(d int64) {
	if r == nil || d <= 0 {
		return
	}
	sec := r.nowFunc()().Unix()
	r.mu.Lock()
	b := &r.buckets[sec%rateBuckets]
	if b.sec != sec {
		b.sec, b.n = sec, 0
	}
	b.n += d
	r.total += d
	r.mu.Unlock()
}

// Inc records one event.
//
//c56:noalloc
func (r *Rate) Inc() { r.Add(1) }

//c56:noalloc
func (r *Rate) nowFunc() func() time.Time {
	if r.now == nil {
		return time.Now
	}
	return r.now
}

// RateSnapshot is a point-in-time view of a Rate.
type RateSnapshot struct {
	// Total is the cumulative event count since the instrument was created.
	Total int64 `json:"total"`
	// Rate1s/Rate10s/Rate60s are events per second over the trailing 1, 10
	// and 60 second windows. Each window includes the current partial
	// second and is divided by the true elapsed window length, so the
	// values do not saw-tooth at second boundaries.
	Rate1s  float64 `json:"rate_1s"`
	Rate10s float64 `json:"rate_10s"`
	Rate60s float64 `json:"rate_60s"`
	// EWMA is an exponentially weighted per-second rate over the trailing
	// minute (time constant 10 s): a smoothed "current speed" that reacts
	// in seconds but does not jitter with individual bucket boundaries.
	EWMA float64 `json:"ewma"`
}

// ewmaTau is the EWMA time constant in seconds.
const ewmaTau = 10.0

// Snapshot derives the windowed rates from the ring.
func (r *Rate) Snapshot() RateSnapshot {
	if r == nil {
		return RateSnapshot{}
	}
	now := r.nowFunc()()
	nowSec := now.Unix()
	frac := now.Sub(now.Truncate(time.Second)).Seconds()

	r.mu.Lock()
	s := RateSnapshot{Total: r.total}
	var sum1, sum10, sum60 int64
	var wSum float64
	for i := 0; i < rateBuckets; i++ {
		b := r.buckets[i]
		if b.sec == 0 {
			continue
		}
		age := nowSec - b.sec // 0 = current second
		if age < 0 || age >= 60 {
			continue
		}
		if age < 1 {
			sum1 += b.n
		}
		if age < 10 {
			sum10 += b.n
		}
		sum60 += b.n
		wSum += expNeg(float64(age)/ewmaTau) * float64(b.n)
	}
	r.mu.Unlock()

	// Each window spans its completed seconds plus the fraction of the
	// current one that has elapsed.
	s.Rate1s = float64(sum1) / maxf(frac, minWindow)
	s.Rate10s = float64(sum10) / (9 + maxf(frac, minWindow))
	s.Rate60s = float64(sum60) / (59 + maxf(frac, minWindow))
	// Normalizing by the full window's weight sum (not just the seconds
	// that saw events) makes the EWMA decay toward zero when events stop.
	s.EWMA = wSum / ewmaNorm
	return s
}

// minWindow bounds window divisors away from zero (a snapshot taken
// exactly on a second boundary would otherwise divide by ~0).
const minWindow = 0.1

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ewmaNorm is the EWMA normalizer: Σ exp(-age/τ) over the 60 s window.
var ewmaNorm = func() float64 {
	var n float64
	for age := 0; age < 60; age++ {
		n += expNeg(float64(age) / ewmaTau)
	}
	return n
}()

func expNeg(x float64) float64 { return math.Exp(-x) }
