package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.reads")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x.reads") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("x.depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	// Nil instruments and nil registries are inert, not panics.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	var nr *Registry
	nr.Counter("via.default").Inc()
	if Default().Counter("via.default").Value() != 1 {
		t.Fatal("nil registry should fall back to Default()")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{1, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 560.5 {
		t.Fatalf("sum = %g, want 560.5", s.Sum)
	}
	if got := s.Mean(); got != 112.1 {
		t.Fatalf("mean = %g, want 112.1", got)
	}
}

// TestSnapshotCoherence hammers a registry from many goroutines and checks
// that snapshots are never torn: counters never regress between snapshots
// and a histogram's count always equals the sum of its buckets.
func TestSnapshotCoherence(t *testing.T) {
	r := NewRegistry()
	const writers, each = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops")
			h := r.Histogram("size", []float64{1, 2, 4, 8})
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(float64(i % 10))
			}
		}()
	}
	go func() { wg.Wait(); close(stop) }()

	var lastOps int64
	for {
		s := r.Snapshot()
		if v := s.Counters["ops"]; v < lastOps {
			t.Fatalf("counter regressed: %d -> %d", lastOps, v)
		} else {
			lastOps = v
		}
		if h, ok := s.Histograms["size"]; ok {
			var sum int64
			for _, c := range h.Counts {
				sum += c
			}
			if sum != h.Count {
				t.Fatalf("torn histogram: count %d != bucket sum %d", h.Count, sum)
			}
		}
		select {
		case <-stop:
			s := r.Snapshot()
			if s.Counters["ops"] != writers*each {
				t.Fatalf("final ops = %d, want %d", s.Counters["ops"], writers*each)
			}
			if s.Histograms["size"].Count != writers*each {
				t.Fatalf("final hist count = %d, want %d", s.Histograms["size"].Count, writers*each)
			}
			return
		default:
		}
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("g").Set(-4)
	r.Histogram("h", []float64{1}).Observe(3)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	want := []string{"a.count 1", "b.count 2", "g -4", "h.count 1", "h.mean 3", "h.sum 3"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %v, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if s.Counters["b.count"] != 2 || s.Gauges["g"] != -4 || s.Histograms["h"].Count != 1 {
		t.Fatalf("JSON round-trip mismatch: %+v", s)
	}
}

func TestTracerSpansAndRing(t *testing.T) {
	ring := NewRingSink(16)
	tr := NewTracer(ring)
	sp := tr.StartSpan("work", A("n", 3))
	sp.Event("step", A("i", 0))
	sp.End(A("ok", true))
	tr.Event("loose")

	ev := ring.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	if ev[0].Phase != "begin" || ev[0].Name != "work" || ev[0].Span == 0 {
		t.Fatalf("bad begin event %+v", ev[0])
	}
	if ev[1].Phase != "event" || ev[1].Span != ev[0].Span {
		t.Fatalf("span event not linked: %+v", ev[1])
	}
	if ev[2].Phase != "end" || ev[2].Dur < 0 {
		t.Fatalf("bad end event %+v", ev[2])
	}
	if ev[3].Phase != "event" || ev[3].Span != 0 {
		t.Fatalf("bad loose event %+v", ev[3])
	}
}

func TestTracerNilAndSinkless(t *testing.T) {
	var tr *Tracer // falls back to the (sink-less) default tracer
	sp := tr.StartSpan("noop")
	sp.Event("e")
	sp.End()
	tr.Event("e2")

	sl := NewTracer()
	if sp := sl.StartSpan("noop"); sp != nil {
		t.Fatal("sink-less tracer should return an inert nil span")
	}
}

func TestRingSinkEviction(t *testing.T) {
	ring := NewRingSink(3)
	for i := 0; i < 5; i++ {
		ring.Emit(Event{Name: string(rune('a' + i))})
	}
	ev := ring.Events()
	if ring.Total() != 5 || len(ev) != 3 {
		t.Fatalf("total %d retained %d, want 5/3", ring.Total(), len(ev))
	}
	if ev[0].Name != "c" || ev[2].Name != "e" {
		t.Fatalf("wrong eviction order: %v", ev)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	sp := tr.StartSpan("phase", A("name", "migrate"))
	time.Sleep(time.Millisecond)
	sp.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var begin, end map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &begin); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &end); err != nil {
		t.Fatal(err)
	}
	if begin["phase"] != "begin" || begin["name"] != "phase" {
		t.Fatalf("bad begin line: %v", begin)
	}
	if attrs, ok := begin["attrs"].(map[string]any); !ok || attrs["name"] != "migrate" {
		t.Fatalf("bad attrs: %v", begin)
	}
	if end["phase"] != "end" || end["dur_us"].(float64) <= 0 {
		t.Fatalf("bad end line: %v", end)
	}
}
