package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event is one trace record. Spans emit a "begin" record at StartSpan and
// an "end" record (with Dur set) at End; free-standing events have Phase
// "event". Span carries the span's id so sinks can pair begin/end records;
// events emitted through a span carry its id too.
type Event struct {
	Time  time.Time
	Span  uint64
	Phase string // "begin", "end" or "event"
	Name  string
	Dur   time.Duration
	Attrs []Attr
}

// Sink receives trace events. Implementations must be safe for concurrent
// use; Emit is called synchronously from the traced goroutine.
type Sink interface {
	Emit(Event)
}

// Tracer fans events out to its sinks. A nil *Tracer and a tracer with no
// sinks are both valid and nearly free, so hot paths can trace
// unconditionally. Sinks can be attached at any time.
type Tracer struct {
	mu     sync.RWMutex
	sinks  []Sink //c56:guardedby mu
	nextID atomic.Uint64
	active atomic.Bool // true once a sink is attached
}

// NewTracer returns a tracer emitting to the given sinks.
func NewTracer(sinks ...Sink) *Tracer {
	t := &Tracer{sinks: sinks}
	t.active.Store(len(sinks) > 0)
	return t
}

var defaultTracer = NewTracer()

// DefaultTracer returns the process-wide tracer. It starts with no sinks
// (events are dropped at the cost of one atomic load); CLIs attach sinks
// via AddSink. Components fall back to it when handed a nil *Tracer.
func DefaultTracer() *Tracer { return defaultTracer }

func (t *Tracer) orDefault() *Tracer {
	if t == nil {
		return defaultTracer
	}
	return t
}

// AddSink attaches a sink.
func (t *Tracer) AddSink(s Sink) {
	t = t.orDefault()
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.active.Store(true)
	t.mu.Unlock()
}

// enabled reports whether emitting is worth the allocation.
func (t *Tracer) enabled() bool { return t != nil && t.active.Load() }

func (t *Tracer) emit(e Event) {
	t.mu.RLock()
	sinks := t.sinks
	t.mu.RUnlock()
	for _, s := range sinks {
		s.Emit(e)
	}
}

// Event emits a free-standing event.
func (t *Tracer) Event(name string, attrs ...Attr) {
	t = t.orDefault()
	if !t.enabled() {
		return
	}
	t.emit(Event{Time: time.Now(), Phase: "event", Name: name, Attrs: attrs})
}

// Span is an in-flight traced operation. The zero/nil span is inert, as is
// any span from a sink-less tracer, so callers never need to nil-check.
type Span struct {
	t     *Tracer
	id    uint64
	name  string
	start time.Time
}

// StartSpan emits a "begin" record and returns the span. If no sink is
// attached the returned span is inert (and nil — still safe to use).
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	t = t.orDefault()
	if !t.enabled() {
		return nil
	}
	sp := &Span{t: t, id: t.nextID.Add(1), name: name, start: time.Now()}
	t.emit(Event{Time: sp.start, Span: sp.id, Phase: "begin", Name: name, Attrs: attrs})
	return sp
}

// Event emits an event inside the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.emit(Event{Time: time.Now(), Span: s.id, Phase: "event", Name: name, Attrs: attrs})
}

// End emits the span's "end" record with its duration.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	s.t.emit(Event{Time: now, Span: s.id, Phase: "end", Name: s.name, Dur: now.Sub(s.start), Attrs: attrs})
}

// jsonEvent is the JSON-lines wire form of an Event.
type jsonEvent struct {
	Time  string         `json:"t"`
	Span  uint64         `json:"span,omitempty"`
	Phase string         `json:"phase"`
	Name  string         `json:"name"`
	DurUS int64          `json:"dur_us,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// JSONLSink writes one JSON object per event to an io.Writer.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line. Encoding errors are dropped (the
// tracer must never fail the traced operation).
func (s *JSONLSink) Emit(e Event) {
	je := jsonEvent{
		Time:  e.Time.Format(time.RFC3339Nano),
		Span:  e.Span,
		Phase: e.Phase,
		Name:  e.Name,
		DurUS: e.Dur.Microseconds(),
	}
	if len(e.Attrs) > 0 {
		je.Attrs = make(map[string]any, len(e.Attrs))
		for _, a := range e.Attrs {
			je.Attrs[a.Key] = a.Value
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(je)
}

// RingSink keeps the last N events in memory — the test sink, and the
// bounded-memory sink for long-running processes. Once the ring is full
// every new event evicts the oldest; evictions are counted (Dropped, and
// the "trace.dropped_spans" counter of the bound registry) so silent event
// loss under load is visible rather than inferred.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event //c56:guardedby mu
	next  int     //c56:guardedby mu
	total int     //c56:guardedby mu
	// dropped mirrors the eviction count into a registry. It is rebound
	// by SetTelemetry under mu but carries no annotation: Counter pointers
	// are safe to Inc through even while being swapped.
	dropped *Counter
}

// NewRingSink returns a ring sink with the given capacity, counting
// evictions into the default registry's "trace.dropped_spans" counter
// (rebind with SetTelemetry).
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1
	}
	s := &RingSink{buf: make([]Event, capacity)}
	s.bindTelemetry(nil)
	return s
}

// SetTelemetry rebinds the sink's eviction counter to reg (nil selects the
// process-wide default registry).
func (s *RingSink) SetTelemetry(reg *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bindTelemetry(reg)
}

func (s *RingSink) bindTelemetry(reg *Registry) {
	s.dropped = reg.Counter("trace.dropped_spans")
}

// Emit stores the event, evicting the oldest once full.
func (s *RingSink) Emit(e Event) {
	s.mu.Lock()
	if s.total >= len(s.buf) {
		s.dropped.Inc()
	}
	s.buf[s.next] = e
	s.next = (s.next + 1) % len(s.buf)
	s.total++
	s.mu.Unlock()
}

// Dropped returns how many events have been evicted from the ring.
func (s *RingSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total <= len(s.buf) {
		return 0
	}
	return int64(s.total - len(s.buf))
}

// Total returns how many events were ever emitted.
func (s *RingSink) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.total
	if n > len(s.buf) {
		n = len(s.buf)
	}
	out := make([]Event, 0, n)
	start := 0
	if s.total > len(s.buf) {
		start = s.next
	}
	for i := 0; i < n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}
