package telemetry

// TimelineSink aggregates span durations into per-name histograms: every
// "end" event observes its duration (in microseconds) into the histogram
// "trace.span_us.<span name>" of the bound registry. Attaching one to a
// tracer gives every instrumented phase — the migrator's plan/exec/online
// spans, scrub passes, rebuilds — a live latency distribution without any
// per-call-site wiring, and the observability plane exposes the result as
// ordinary histogram series.
//
// The "trace.span_us." prefix plus a runtime span name is this package's
// own naming seam (the telemetry package is exempt from the metricname
// analyzer precisely so it can implement such seams); span names are
// already constant pkg.snake_case strings at their StartSpan call sites.
type TimelineSink struct {
	reg *Registry
}

// spanBucketsUS spans microsecond-scale leaf operations through
// minute-scale whole-migration spans.
var spanBucketsUS = []float64{
	10, 50, 100, 500, 1e3, 5e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7, 6e7,
}

// NewTimelineSink returns a sink recording span durations into reg (nil
// selects the process-wide default registry).
func NewTimelineSink(reg *Registry) *TimelineSink {
	return &TimelineSink{reg: reg.orDefault()}
}

// Emit records "end" events; begin records and free-standing events carry
// no duration and are ignored.
func (s *TimelineSink) Emit(e Event) {
	if e.Phase != "end" {
		return
	}
	s.reg.Histogram("trace.span_us."+e.Name, spanBucketsUS).
		Observe(float64(e.Dur.Microseconds()))
}
