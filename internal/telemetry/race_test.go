//go:build race

package telemetry

// raceEnabled reports whether the race detector instruments this build; its
// shadow-memory bookkeeping allocates, so AllocsPerRun assertions skip.
const raceEnabled = true
