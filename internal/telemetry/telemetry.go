// Package telemetry is the repository's dependency-free observability
// substrate: a metrics registry of atomic counters, gauges and fixed-bucket
// histograms, plus a lightweight span/event tracer with pluggable sinks
// (JSON-lines, an in-memory ring for tests, and expvar-style text
// exposition of the registry).
//
// The paper's whole argument is quantitative — conversion I/O counts, XOR
// tallies, online-migration interference — so the same quantities the
// offline analysis (internal/analysis) derives from plans are counted live
// here as the engines run. Every layer of the stack records into a
// Registry: vdisk (per-disk I/O latency/size), raid5/raid6 (stripe I/O,
// degraded reads, parity updates, XORs), migrate (conversion progress,
// write redirects), recovery (reads/XORs per rebuilt element) and disksim
// (replayed requests, service times).
//
// Instruments are get-or-create by name and safe for concurrent use; the
// hot-path cost of an un-sinked tracer or an idle registry is a few atomic
// operations. Components accept an explicit *Registry/*Tracer and fall
// back to the process-wide Default()/DefaultTracer() when given nil, so
// CLIs can simply dump Default() at exit while tests isolate themselves
// with fresh instances.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0; negative deltas are
// ignored to preserve monotonicity).
//
//c56:noalloc
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
//
//c56:noalloc
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
//
//c56:noalloc
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value: it can move both ways and be
// reset, unlike a Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//c56:noalloc
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (either sign).
//
//c56:noalloc
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
//
//c56:noalloc
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic bucket counters.
// Bucket i counts observations v <= Bounds[i]; the last bucket is the
// overflow (+Inf) bucket. The observation count is always the sum of the
// bucket counters, so snapshots cannot tear between count and buckets.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
//
//c56:noalloc
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the upper bucket bounds; Counts has len(Bounds)+1
	// entries, the last being the overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	// Count is the total number of observations (sum of Counts).
	Count int64 `json:"count"`
	// Sum is the sum of observed values.
	Sum float64 `json:"sum"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]; out-of-range values are
// clamped) by linear interpolation within the bucket holding the target
// rank, the same estimate Prometheus's histogram_quantile computes. The
// first bucket interpolates from 0 (or from its bound when that is
// negative); ranks landing in the +Inf overflow bucket return the largest
// finite bound, since there is nothing to interpolate toward. An empty
// histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if len(s.Bounds) == 0 {
		// Only the overflow bucket exists: the mean is the best estimate.
		return s.Mean()
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if rank > float64(cum+c) {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		} else if s.Bounds[0] < 0 {
			lower = s.Bounds[0]
		}
		upper := s.Bounds[i]
		return lower + (upper-lower)*(rank-float64(cum))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot returns a copy of the histogram's current state. Count is
// derived from the bucket counters, so it equals their sum exactly.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: append([]float64(nil), h.bounds...)}
	s.Counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// Registry holds named instruments. Lookup is get-or-create: the first
// registration of a name fixes its kind (and, for histograms, its bucket
// bounds); later lookups return the same instrument.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter   //c56:guardedby mu
	gauges   map[string]*Gauge     //c56:guardedby mu
	hists    map[string]*Histogram //c56:guardedby mu
	rates    map[string]*Rate      //c56:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		rates:    make(map[string]*Rate),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Components fall back to it
// when handed a nil *Registry.
func Default() *Registry { return defaultRegistry }

// orDefault resolves nil to the process-wide registry, so call sites can
// hold a possibly-nil *Registry and still always record.
func (r *Registry) orDefault() *Registry {
	if r == nil {
		return defaultRegistry
	}
	return r
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r = r.orDefault()
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r = r.orDefault()
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given upper
// bucket bounds if needed. The first registration's bounds win.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r = r.orDefault()
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Rate returns the named windowed-rate instrument, creating it if needed.
func (r *Registry) Rate(name string) *Rate {
	r = r.orDefault()
	r.mu.RLock()
	rt := r.rates[name]
	r.mu.RUnlock()
	if rt != nil {
		return rt
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rt = r.rates[name]; rt == nil {
		rt = newRate()
		r.rates[name] = rt
	}
	return rt
}

// Instanced is a per-instance namespace of a registry: instruments named
// "<prefix>.<id>.<suffix>", e.g. "vdisk.disk.3.reads". It exists so that
// dynamic identities (one gauge per disk, per shard, per backend) have a
// single sanctioned seam: the prefix and every suffix remain compile-time
// constants — which the c56-lint metricname analyzer enforces — while the
// instance id carries the only runtime-varying part of the name.
type Instanced struct {
	r    *Registry
	base string // "<prefix>.<id>"
}

// PerInstance returns the instrument namespace "<prefix>.<id>". The prefix
// must be a constant in pkg.snake_case (enforced by c56-lint's metricname
// analyzer); the id is free-form runtime data identifying the instance.
func (r *Registry) PerInstance(prefix, id string) Instanced {
	return Instanced{r: r.orDefault(), base: prefix + "." + id}
}

// Counter returns the instance's counter "<prefix>.<id>.<suffix>".
func (i Instanced) Counter(suffix string) *Counter {
	return i.r.Counter(i.base + "." + suffix)
}

// Gauge returns the instance's gauge "<prefix>.<id>.<suffix>".
func (i Instanced) Gauge(suffix string) *Gauge {
	return i.r.Gauge(i.base + "." + suffix)
}

// Histogram returns the instance's histogram "<prefix>.<id>.<suffix>",
// creating it with the given upper bucket bounds if needed.
func (i Instanced) Histogram(suffix string, bounds []float64) *Histogram {
	return i.r.Histogram(i.base+"."+suffix, bounds)
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// Individual values are read atomically; since counters are monotonic, a
// snapshot taken while writers run never shows a counter lower than an
// earlier snapshot did.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Rates      map[string]RateSnapshot      `json:"rates,omitempty"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r = r.orDefault()
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Rates:      make(map[string]RateSnapshot, len(r.rates)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, rt := range r.rates {
		s.Rates[name] = rt.Snapshot()
	}
	return s
}

// WriteText writes an expvar-style text exposition: one "name value" line
// per instrument, sorted by name. Histograms expose count, sum and mean.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+3*len(s.Histograms)+2*len(s.Rates))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", name, h.Count),
			fmt.Sprintf("%s.sum %g", name, h.Sum),
			fmt.Sprintf("%s.mean %g", name, h.Mean()))
	}
	for name, rt := range s.Rates {
		lines = append(lines,
			fmt.Sprintf("%s.total %d", name, rt.Total),
			fmt.Sprintf("%s.ewma %g", name, rt.EWMA))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the full snapshot (including histogram buckets) as one
// indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
