package telemetry

import "testing"

// The instruments' mutating paths carry //c56:noalloc annotations —
// they sit on every per-I/O hot path in the repository — and c56-lint
// proves them allocation-free statically. These AllocsPerRun assertions
// are the runtime half of that contract.
func TestInstrumentsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	reg := NewRegistry()
	c := reg.Counter("alloctest.counter")
	g := reg.Gauge("alloctest.gauge")
	h := reg.Histogram("alloctest.histogram", []float64{1, 10, 100})
	r := reg.Rate("alloctest.rate")
	r.Inc() // warm the clock path
	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Counter.Value":     func() { _ = c.Value() },
		"Gauge.Set":         func() { g.Set(7) },
		"Gauge.Add":         func() { g.Add(-2) },
		"Gauge.Value":       func() { _ = g.Value() },
		"Histogram.Observe": func() { h.Observe(12.5) },
		"Rate.Inc":          func() { r.Inc() },
		"Rate.Add":          func() { r.Add(4) },
	} {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, n)
		}
	}
}
