package migrate

import (
	"code56/internal/layout"
	"code56/internal/raid5"
)

// CellClass says what a target-stripe cell contains at the moment the
// conversion starts.
type CellClass int

const (
	// OldData marks a cell holding a source data block.
	OldData CellClass = iota
	// OldParity marks a cell holding a source parity block.
	OldParity
	// Reserved marks a cell on a source disk that the source array had to
	// keep free so the target layout fits — the paper's "extra space"
	// (Fig. 12), e.g. X-Code's two parity rows.
	Reserved
	// NewCell marks a cell on a disk added by the conversion.
	NewCell
	// VirtualCell marks a cell that is NULL by construction under the
	// virtual-disk extension (§IV-B2): cells of virtual disks, and data
	// cells whose horizontal parity would live on a virtual disk.
	VirtualCell
)

// String returns a short tag.
func (c CellClass) String() string {
	switch c {
	case OldData:
		return "oldData"
	case OldParity:
		return "oldParity"
	case Reserved:
		return "reserved"
	case NewCell:
		return "new"
	case VirtualCell:
		return "virtual"
	default:
		return "?"
	}
}

// Overlay maps one target stripe onto the source array state: every cell is
// classified, and each absorbed source row records where its parity sits.
type Overlay struct {
	// Conv is the conversion being planned.
	Conv Conversion
	// Index is the target stripe index within the rotation period.
	Index int
	// Class[r][j] classifies cell (r, j).
	Class [][]CellClass
	// DataRows lists the target rows that absorb source rows, ascending.
	DataRows []int
	// OldParityCol[i] is the target column holding the parity of the i-th
	// absorbed source row (the row placed at DataRows[i]).
	OldParityCol []int
	// Virtual is the number of virtual columns (0 unless the conversion
	// uses the virtual-disk extension).
	Virtual int
}

// sourceParityCol returns the target column holding the parity of global
// source row R: the raid5 rotation over the M real source disks, offset by
// the virtual columns.
func sourceParityCol(c Conversion, virtual int, globalRow int64) int {
	// Reuse raid5's rotation arithmetic through a throwaway descriptor.
	a, err := raid5.New(c.M, 1, c.SourceLayout)
	if err != nil {
		panic(err) // Conversion.Validate rejects M < 3 first
	}
	return virtual + a.ParityDisk(globalRow)
}

// dataRowsOf returns the target rows that hold data cells. Under the
// virtual-disk extension, rows whose horizontal parity cell sits on a
// virtual column are excluded (their data elements are virtual).
func dataRowsOf(code layout.Code, virtual int) []int {
	g := code.Geometry()
	var rows []int
	for r := 0; r < g.Rows; r++ {
		hasData := false
		parityOnVirtual := false
		for j := 0; j < g.Cols; j++ {
			switch code.Kind(r, j) {
			case layout.Data:
				hasData = true
			case layout.ParityH:
				if j < virtual {
					parityOnVirtual = true
				}
			}
		}
		if hasData && !parityOnVirtual {
			rows = append(rows, r)
		}
	}
	return rows
}

// buildOverlay classifies target stripe number idx (within the rotation
// period) for the conversion. Used by the planner and the executor.
func buildOverlay(c Conversion, idx int) Overlay {
	virtual := c.Virtual
	g := c.Code.Geometry()
	ov := Overlay{Conv: c, Index: idx, Virtual: virtual}
	ov.DataRows = dataRowsOf(c.Code, virtual)
	k := len(ov.DataRows)

	rowToOldIdx := make(map[int]int, k)
	ov.OldParityCol = make([]int, k)
	for i, r := range ov.DataRows {
		rowToOldIdx[r] = i
		globalRow := int64(idx*k + i)
		ov.OldParityCol[i] = sourceParityCol(c, virtual, globalRow)
	}

	oldCols := virtual + c.M // columns [virtual, oldCols) are source disks
	ov.Class = make([][]CellClass, g.Rows)
	for r := 0; r < g.Rows; r++ {
		ov.Class[r] = make([]CellClass, g.Cols)
		oldIdx, isDataRow := rowToOldIdx[r]
		for j := 0; j < g.Cols; j++ {
			switch {
			case j < virtual:
				ov.Class[r][j] = VirtualCell
			case j >= oldCols:
				ov.Class[r][j] = NewCell
			case !isDataRow:
				// A source-disk cell in a non-data row: either reserved
				// space for the target's parity rows (X-Code, P-Code) or,
				// under the virtual-disk extension, a virtual data row.
				if virtual > 0 {
					ov.Class[r][j] = VirtualCell
				} else {
					ov.Class[r][j] = Reserved
				}
			case j == ov.OldParityCol[oldIdx]:
				ov.Class[r][j] = OldParity
			case c.Code.Kind(r, j) == layout.Data:
				ov.Class[r][j] = OldData
			default:
				// A target parity cell on a source disk that does not
				// hold the source parity: the source must have kept it
				// free (HDP's horizontal-parity diagonal).
				ov.Class[r][j] = Reserved
			}
		}
	}
	return ov
}

// OldDataCells returns the coordinates of cells classified OldData.
func (ov Overlay) OldDataCells() []layout.Coord {
	var out []layout.Coord
	for r, row := range ov.Class {
		for j, cl := range row {
			if cl == OldData {
				out = append(out, layout.Coord{Row: r, Col: j})
			}
		}
	}
	return out
}

// Count returns the number of cells with the given class.
func (ov Overlay) Count(cl CellClass) int {
	n := 0
	for _, row := range ov.Class {
		for _, c := range row {
			if c == cl {
				n++
			}
		}
	}
	return n
}
