package migrate

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"code56/internal/vdisk"
)

// TestThrottleCancellationReturnsQuickly: a cancelled migration must not
// sleep out its throttle interval. With a 1-second throttle and a
// cancellation after the first stripe, Wait has to return in milliseconds
// (the throttle sleep used to be a bare time.Sleep).
func TestThrottleCancellationReturnsQuickly(t *testing.T) {
	const rows = 64
	a, _ := newLoadedRAID5(t, 4, rows, 71)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	mig.SetThrottle(time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mig.SetProgressFunc(func(converted, total int64) {
		if converted >= 1 {
			cancel()
		}
	})
	if err := mig.StartContext(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = mig.Wait()
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("Wait took %v with a 1s throttle; the cancelled sleep was not interrupted", elapsed)
	}
}

// TestPauseInterruptsThrottleSleep: Pause must park a worker sleeping in
// its throttle interval instead of waiting the interval out.
func TestPauseInterruptsThrottleSleep(t *testing.T) {
	const rows = 64
	a, _ := newLoadedRAID5(t, 4, rows, 72)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	mig.SetThrottle(time.Second)
	converted := make(chan struct{}, rows)
	mig.SetProgressFunc(func(c, total int64) {
		select {
		case converted <- struct{}{}:
		default:
		}
	})
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	<-converted // the worker is now in (or about to enter) its throttle sleep
	start := time.Now()
	mig.Pause()
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("Pause took %v; the throttle sleep was not interrupted", elapsed)
	}
	mig.SetThrottle(0) // let the rest of the conversion finish promptly
	mig.Resume()
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSetThrottleMidFlightWakesSleepingWorkers: a concurrent throttle
// update — the bandwidth timetable's schedule boundaries do exactly this —
// must wake workers sleeping out the old interval immediately, including
// the change to 0 (off). With a 30-second throttle armed and a switch to
// off after the first stripe, the whole conversion has to finish in well
// under one old interval. Several goroutines retune concurrently so the
// race detector exercises SetThrottle against the sleeping workers.
func TestSetThrottleMidFlightWakesSleepingWorkers(t *testing.T) {
	const rows = 64
	a, _ := newLoadedRAID5(t, 4, rows, 74)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.SetParallelism(2); err != nil {
		t.Fatal(err)
	}
	mig.SetThrottle(30 * time.Second)
	converted := make(chan struct{}, rows)
	mig.SetProgressFunc(func(c, total int64) {
		select {
		case converted <- struct{}{}:
		default:
		}
	})
	start := time.Now()
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	<-converted // at least one worker has entered (or is entering) its sleep
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(ms int) {
			defer wg.Done()
			mig.SetThrottle(time.Duration(ms) * time.Millisecond)
		}(i)
	}
	wg.Wait()
	mig.SetThrottle(0) // off: nobody may finish the old 30s interval
	if got := mig.Throttle(); got != 0 {
		t.Fatalf("Throttle() = %v after SetThrottle(0)", got)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("conversion took %v with the throttle turned off after the first stripe; sleeping workers were not woken", elapsed)
	}
	if converted, total := mig.Progress(); converted != total {
		t.Fatalf("converted %d/%d stripes", converted, total)
	}
}

// TestConversionHealsLatentErrors: latent sector errors in stripes the
// conversion walks are reconstructed from RAID-5 redundancy and rewritten,
// counted in FaultsRepaired, and gone afterwards.
func TestConversionHealsLatentErrors(t *testing.T) {
	const rows = 16
	a, want := newLoadedRAID5(t, 4, rows, 73)
	// Two latent errors on data cells (Locate only maps data blocks), on
	// distinct disks and rows — RAID-5 reconstructs at most one per row.
	type loc struct {
		row  int64
		disk int
	}
	var bad []loc
	seenDisk := map[int]bool{}
	seenRow := map[int64]bool{}
	for L := int64(0); L < rows*3 && len(bad) < 2; L++ {
		row, disk := a.Locate(L)
		if seenDisk[disk] || seenRow[row] {
			continue
		}
		seenDisk[disk] = true
		seenRow[row] = true
		a.Disks().Disk(disk).InjectLatentError(row)
		bad = append(bad, loc{row, disk})
	}

	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := mig.Stats().FaultsRepaired; got != 2 {
		t.Fatalf("FaultsRepaired = %d, want 2", got)
	}
	// The medium is healed: direct reads succeed again.
	buf := make([]byte, 32)
	for _, b := range bad {
		if err := a.Disks().Disk(b.disk).Read(b.row, buf); err != nil {
			t.Fatalf("latent block (disk %d, row %d) not rewritten: %v", b.disk, b.row, err)
		}
	}
	verifyConverted(t, mig, want, rows/4, "latent-heal")
}

// TestConversionSurvivesTransientErrors: transient faults beyond the retry
// budget are served by reconstruction; the conversion completes and the
// result verifies.
func TestConversionSurvivesTransientErrors(t *testing.T) {
	const rows = 32
	a, want := newLoadedRAID5(t, 4, rows, 74)
	if err := a.Disks().SetRetry(2, 0); err != nil {
		t.Fatal(err)
	}
	err := a.Disks().SetFaults(vdisk.FaultConfig{Seed: 8, ReadTransientProb: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := a.Disks().SetFaults(vdisk.FaultConfig{}); err != nil {
		t.Fatal(err)
	}
	verifyConverted(t, mig, want, rows/4, "transient-survive")
}

// TestWriteServesDegradedOldValue: an application write whose old-value
// read hits a latent sector error reconstructs the old data, keeps the
// diagonal parity coherent, and clears the error by rewriting.
func TestWriteServesDegradedOldValue(t *testing.T) {
	const rows = 16
	a, want := newLoadedRAID5(t, 4, rows, 75)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}

	// Damage a block after conversion, then overwrite it through the
	// migrator: the read-modify-write must reconstruct the old value to
	// compute parity deltas.
	const logical = 7
	row, disk := a.Locate(logical)
	a.Disks().Disk(disk).InjectLatentError(row)
	data := bytes.Repeat([]byte{0xAB}, 32)
	if err := mig.Write(logical, data); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	want[logical] = data
	verifyConverted(t, mig, want, rows/4, "degraded-write")
}

// TestHealDoesNotClobberConcurrentWrites races application writes against
// the conversion's latent-block heals: every data row carries a latent
// error, and the foreground overwrites each such block while the conversion
// is reconstructing and rewriting it. The heal must never overwrite a
// racing write's fresh data with the stale reconstructed old value (which
// would also leave the RAID-5 parity, already updated for the new data,
// inconsistent with the block).
func TestHealDoesNotClobberConcurrentWrites(t *testing.T) {
	const rows = 64 // 16 stripes at p=5
	a, want := newLoadedRAID5(t, 4, rows, 77)
	// One latent data cell per row (RAID-5 reconstructs at most one lost
	// block per row), so nearly every stripe's conversion takes the heal
	// path while the writes below race it.
	type loc struct {
		logical int64
		row     int64
		disk    int
	}
	var bad []loc
	seenRow := map[int64]bool{}
	for L := int64(0); L < rows*3; L++ {
		row, disk := a.Locate(L)
		if seenRow[row] {
			continue
		}
		seenRow[row] = true
		a.Disks().Disk(disk).InjectLatentError(row)
		bad = append(bad, loc{L, row, disk})
	}
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(78))
	for _, b := range bad {
		data := make([]byte, 32)
		r.Read(data)
		if err := mig.Write(b.logical, data); err != nil {
			t.Fatalf("racing write %d: %v", b.logical, err)
		}
		want[b.logical] = data
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	verifyConverted(t, mig, want, rows/4, "heal-vs-write")
}

// TestKillAndResumeSurvivesDiskFailure is the acceptance scenario: latent
// errors on two disks plus a whole-disk failure mid-conversion. The
// conversion heals the latent errors, parks at its watermark when the disk
// dies, serves reads degraded, and after Replace + rebuild a second
// migrator resumes from the watermark. A final scrub and full read-back
// prove zero data loss.
func TestKillAndResumeSurvivesDiskFailure(t *testing.T) {
	const (
		m       = 4
		rows    = 32 // 8 Code 5-6 stripes
		stripes = rows / m
	)
	a, want := newLoadedRAID5(t, m, rows, 76)

	// Latent errors on two data cells in stripes 0-1 (the conversion walks
	// every data cell there before the disk dies), on distinct disks and
	// rows — RAID-5 reconstructs at most one lost block per row.
	planted := 0
	seenDisk := map[int]bool{}
	seenRow := map[int64]bool{}
	for L := int64(0); L < rows*(m-1) && planted < 2; L++ {
		row, disk := a.Locate(L)
		if row >= 2*m || seenDisk[disk] || seenRow[row] {
			continue
		}
		seenDisk[disk] = true
		seenRow[row] = true
		a.Disks().Disk(disk).InjectLatentError(row)
		planted++
	}
	if planted != 2 {
		t.Fatalf("planted %d latent errors, want 2", planted)
	}
	// Disk 2 fail-stops at its 14th I/O after arming — mid-conversion.
	if err := a.Disks().Disk(2).SetFaults(vdisk.FaultConfig{Seed: 5, FailAtIO: 14}); err != nil {
		t.Fatal(err)
	}

	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	err = mig.Wait()
	if !errors.Is(err, vdisk.ErrFailed) {
		t.Fatalf("Wait = %v, want the scheduled disk failure", err)
	}
	watermark, total := mig.Progress()
	if watermark == 0 || watermark >= total {
		t.Fatalf("watermark %d of %d; the failure should hit mid-conversion", watermark, total)
	}
	if got := mig.Stats().FaultsRepaired; got != 2 {
		t.Fatalf("FaultsRepaired = %d, want both latent errors healed before the disk died", got)
	}

	// Degraded service: every block still readable with disk 2 down.
	buf := make([]byte, 32)
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatalf("degraded read %d: %v", L, err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("degraded read %d wrong", L)
		}
	}

	// Hot-swap and rebuild, then resume from the watermark.
	a.Disks().Disk(2).Replace()
	if err := a.Rebuild(2, rows); err != nil {
		t.Fatal(err)
	}
	mig2, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig2.ResumeFrom(watermark); err != nil {
		t.Fatal(err)
	}
	if err := mig2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig2.Wait(); err != nil {
		t.Fatalf("resumed conversion: %v", err)
	}

	r6 := verifyConverted(t, mig2, want, stripes, "kill-and-resume")
	rep, err := r6.ScrubWithMode(stripes, 1 /* ScrubCheck */)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("final scrub found damage: %+v", rep)
	}
}
