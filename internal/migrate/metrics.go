package migrate

// Metrics are the paper's §V-A evaluation quantities, normalized per source
// data block (the paper's B) so they can be read directly against Figures
// 9–17. Time metrics are in units of B·Te, with Te the per-request access
// time.
type Metrics struct {
	// InvalidParityRatio is Fig. 9: invalidated old parities / B.
	InvalidParityRatio float64
	// MigrationRatio is Fig. 10: migrated parity blocks / B (a parity
	// migrated twice counts twice, per the paper's "sum of migrated
	// parity blocks").
	MigrationRatio float64
	// NewParityRatio is Fig. 11: generated parity blocks / B.
	NewParityRatio float64
	// ExtraSpaceRatio is Fig. 12: reserved cells / source-disk capacity.
	ExtraSpaceRatio float64
	// XORRatio is Fig. 13: XOR operations / B.
	XORRatio float64
	// WriteRatio is Fig. 14: write I/Os / B.
	WriteRatio float64
	// ReadRatio: read I/Os / B (not plotted separately; part of Fig. 15).
	ReadRatio float64
	// TotalIORatio is Fig. 15: (reads+writes) / B.
	TotalIORatio float64
	// TimeNLB is Fig. 16: conversion time without load-balancing support,
	// in B·Te — the sum over phases of the busiest disk's I/O count.
	TimeNLB float64
	// TimeLB is Fig. 17: conversion time with load-balancing support, in
	// B·Te — dedicated-parity roles rotate across stripe groups, so every
	// real disk carries the average load.
	TimeLB float64
}

// Metrics computes the paper's quantities from the plan.
func (p *Plan) Metrics() Metrics {
	b := float64(p.DataBlocks)
	var m Metrics
	m.InvalidParityRatio = float64(p.Invalidated) / b
	m.MigrationRatio = float64(p.Migrated) / b
	m.NewParityRatio = float64(p.Generated) / b
	m.ExtraSpaceRatio = float64(p.ReservedCells) / float64(p.SourceCells)
	m.XORRatio = float64(p.XORs) / b

	realDisks := p.Conv.Code.Geometry().Cols - p.Virtual
	var reads, writes int
	for _, ph := range p.PhaseIO {
		busiest := 0
		phaseTotal := 0
		for j := range ph.Reads {
			load := ph.Reads[j] + ph.Writes[j]
			phaseTotal += load
			if load > busiest {
				busiest = load
			}
			reads += ph.Reads[j]
			writes += ph.Writes[j]
		}
		m.TimeNLB += float64(busiest) / b
		m.TimeLB += float64(phaseTotal) / float64(realDisks) / b
	}
	m.ReadRatio = float64(reads) / b
	m.WriteRatio = float64(writes) / b
	m.TotalIORatio = float64(reads+writes) / b
	return m
}

// TotalReads returns the plan's total read I/Os.
func (p *Plan) TotalReads() int {
	n := 0
	for _, ph := range p.PhaseIO {
		for _, r := range ph.Reads {
			n += r
		}
	}
	return n
}

// TotalWrites returns the plan's total write I/Os.
func (p *Plan) TotalWrites() int {
	n := 0
	for _, ph := range p.PhaseIO {
		for _, w := range ph.Writes {
			n += w
		}
	}
	return n
}
