package migrate

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"code56/internal/durable"
	"code56/internal/superblock"
	"code56/internal/wal"
)

// The migration intent log. An online migration over a file-backed array
// journals its progress through a Journal so that a crash — at any point
// — reopens to a resumable state:
//
//	begin      the migration's geometry, appended once at Start
//	watermark  the contiguous converted-stripe cursor at a checkpoint
//	finish     every stripe converted and synced
//	meta-done  the directory's meta.json flipped to RAID-6
//
// The barrier ordering is what makes a journaled watermark trustworthy:
// a checkpoint reads the cursor FIRST, then syncs the data disks, then
// appends the watermark record and syncs the log. Any stripe the record
// claims was therefore fully on media before the claim itself became
// durable. The converse order could journal a watermark whose stripes
// still sat in the page cache — a crash would then "resume" past
// unconverted stripes. Stripes converted after the cursor was read are
// simply redone on resume; diagonal-parity conversion is idempotent.
//
// The final meta flip is a two-record commit: finish is appended and
// synced, durable.Save atomically renames the new meta.json into place,
// then meta-done is appended. Replay distinguishes the three crash
// windows: no finish → resume converting; finish but no meta-done →
// conversion done, redo the (idempotent) meta flip; meta-done → the
// directory is a RAID-6 and there is nothing to resume.
//
// Scope: the journal covers conversion progress and the identity flip.
// Foreground writes served during the migration follow ordinary
// volatile-cache semantics — they become durable at the next checkpoint's
// disk sync. A write whose pages were only partially flushed when the
// machine died (data block but not its parities, or vice versa) is
// repaired the usual way: parity scrub. The journal never claims more
// than it synced.
const (
	recBegin     uint8 = 1
	recWatermark uint8 = 2
	recFinish    uint8 = 3
	recMetaDone  uint8 = 4
)

// DefaultCheckpointInterval is how many watermark stripes may accumulate
// between journal checkpoints. Smaller intervals tighten the redo window
// after a crash at the cost of more fsync barriers.
const DefaultCheckpointInterval = 16

// ErrNoMigration is returned when a directory's intent log records no
// begun migration.
var ErrNoMigration = errors.New("migrate: no migration in progress")

// ErrMigrationComplete is returned when the directory already completed
// its migration (the meta flip landed; the array is a RAID-6).
var ErrMigrationComplete = errors.New("migrate: migration already complete")

// BeginRecord is the begin record's payload: the geometry needed to
// rebuild the migrator on resume, cross-checkable against meta.json.
type BeginRecord struct {
	Rows      int64  `json:"rows"`
	BlockSize int    `json:"block_size"`
	DataDisks int    `json:"data_disks"` // RAID-5 disk count (p-1)
	Layout    string `json:"layout"`
}

// JournalState is what replaying the intent log established.
type JournalState struct {
	// Begun reports a begin record (a migration was started on this
	// directory and has not completed).
	Begun bool
	// Begin is the begin record's payload, valid when Begun.
	Begin BeginRecord
	// Cursor is the highest durable watermark (0 if none was journaled).
	Cursor int64
	// Finished reports the finish record: all stripes converted+synced.
	Finished bool
	// MetaFlipped reports the meta-done record: meta.json is RAID-6.
	MetaFlipped bool
}

// Journal wires an OnlineMigrator to a directory's intent log. Obtain one
// with OpenJournal, inspect State, then either attach it to a migrator
// (AttachJournal) or close it.
type Journal struct {
	mu sync.Mutex
	// dir and log are fixed at construction; the log's methods are still
	// always driven under mu so its records stay ordered.
	dir      string
	log      *wal.Log
	state    JournalState //c56:guardedby mu
	interval int64        //c56:guardedby mu
	// lastCP is the cursor at the last checkpoint.
	lastCP int64 //c56:guardedby mu
	// syncDisks and finishMeta are wired by AttachJournal.
	syncDisks  func() error     //c56:guardedby mu
	finishMeta durable.Meta     //c56:guardedby mu
	crash      *wal.CrashPoints //c56:guardedby mu
}

// OpenJournal opens (creating if absent) the directory's intent log and
// replays it. Torn tails are repaired per the wal package's rules; a log
// that cannot be a wal at all surfaces wal.ErrCorrupt.
func OpenJournal(dir string) (*Journal, error) {
	log, recs, err := wal.Open(durable.WALPath(dir))
	if err != nil {
		return nil, err
	}
	j := &Journal{
		dir:      dir,
		log:      log,
		interval: DefaultCheckpointInterval,
	}
	for _, r := range recs {
		switch r.Type {
		case recBegin:
			var b BeginRecord
			if err := json.Unmarshal(r.Payload, &b); err != nil {
				log.Close()
				return nil, fmt.Errorf("migrate: bad begin record: %w", err)
			}
			j.state = JournalState{Begun: true, Begin: b}
		case recWatermark:
			if len(r.Payload) != 8 {
				log.Close()
				return nil, fmt.Errorf("migrate: bad watermark record (%d bytes)", len(r.Payload))
			}
			if c := int64(binary.LittleEndian.Uint64(r.Payload)); c > j.state.Cursor {
				j.state.Cursor = c
			}
		case recFinish:
			j.state.Finished = true
		case recMetaDone:
			j.state.MetaFlipped = true
		}
	}
	j.lastCP = j.state.Cursor
	return j, nil
}

// State returns what replay established.
func (j *Journal) State() JournalState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Dir returns the journaled directory.
func (j *Journal) Dir() string { return j.dir }

// SetCheckpointInterval sets how many watermark stripes may pass between
// checkpoints (>= 1). Call before the migration starts.
func (j *Journal) SetCheckpointInterval(n int64) error {
	if n < 1 {
		return fmt.Errorf("migrate: checkpoint interval %d must be >= 1", n)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.interval = n
	return nil
}

// SetCrashPoints arms a crash injector across every durability barrier
// the journal drives: log syncs, data-disk syncs and the meta flip each
// count one barrier. Pass nil to disarm.
func (j *Journal) SetCrashPoints(cp *wal.CrashPoints) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.crash = cp
	j.log.SetCrashPoints(cp)
}

// Syncs returns how many log durability barriers completed — the crash
// matrix sizes its sweep from a golden run's count.
func (j *Journal) Syncs() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Syncs()
}

// Close closes the intent log (without deleting it).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}

// begin journals the start of a fresh migration. A stale log from an
// aborted earlier attempt (Begun=false but bytes present) is reset first.
func (j *Journal) begin(b BeginRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Begun {
		// Resuming: the begin record is already durable; nothing to add.
		return nil
	}
	blob, err := json.Marshal(b)
	if err != nil {
		return err
	}
	if err := j.log.Append(recBegin, blob); err != nil {
		return err
	}
	if err := j.log.Sync(); err != nil {
		return err
	}
	j.state = JournalState{Begun: true, Begin: b}
	return nil
}

// maybeCheckpoint journals cursor if it advanced at least the checkpoint
// interval past the last checkpoint. cursor must be a value the caller
// read BEFORE this call — the disk sync below then covers every stripe
// the record claims.
func (j *Journal) maybeCheckpoint(cursor int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor-j.lastCP < j.interval {
		return nil
	}
	return j.checkpointLocked(cursor)
}

// checkpointLocked: sync data disks, then journal the watermark, then
// sync the log. Caller holds j.mu.
//
//c56:requires mu
func (j *Journal) checkpointLocked(cursor int64) error {
	if j.syncDisks != nil {
		if err := j.syncDisks(); err != nil {
			return fmt.Errorf("migrate: checkpoint disk sync: %w", err)
		}
		j.crash.Hit()
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(cursor))
	if err := j.log.Append(recWatermark, buf[:]); err != nil {
		return err
	}
	if err := j.log.Sync(); err != nil {
		return err
	}
	j.lastCP = cursor
	if cursor > j.state.Cursor {
		j.state.Cursor = cursor
	}
	return nil
}

// finish commits the completed conversion: a final checkpoint at the
// total stripe count, the finish record, the atomic meta flip to RAID-6,
// and the meta-done record. Idempotent per replayed state — a crash
// between any two barriers redoes only the remaining steps on resume.
func (j *Journal) finish(total int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Finished {
		if err := j.checkpointLocked(total); err != nil {
			return err
		}
		if err := j.log.Append(recFinish, nil); err != nil {
			return err
		}
		if err := j.log.Sync(); err != nil {
			return err
		}
		j.state.Finished = true
	}
	if !j.state.MetaFlipped {
		if err := durable.Save(j.dir, j.finishMeta); err != nil {
			return err
		}
		j.crash.Hit()
		if err := j.log.Append(recMetaDone, nil); err != nil {
			return err
		}
		if err := j.log.Sync(); err != nil {
			return err
		}
		j.state.MetaFlipped = true
	}
	return nil
}

// AttachJournal wires the migrator to a directory's intent log: Start
// journals the begin record, the workers checkpoint the watermark as it
// advances, and completion commits the finish/meta-flip sequence. Call
// after OpenJournal (and ResumeFrom, when resuming) and before Start.
// The journal's replayed cursor must match the migrator's resume point —
// pass State().Cursor to ResumeFrom.
func (m *OnlineMigrator) AttachJournal(j *Journal) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return errors.New("migrate: already started")
	}
	st := j.State()
	if st.MetaFlipped {
		return ErrMigrationComplete
	}
	if st.Begun {
		if st.Begin.Rows != m.rows {
			return fmt.Errorf("migrate: journal rows %d vs migrator %d", st.Begin.Rows, m.rows)
		}
		if st.Begin.BlockSize != m.r5.BlockSize() {
			return fmt.Errorf("migrate: journal block size %d vs array %d", st.Begin.BlockSize, m.r5.BlockSize())
		}
		if st.Cursor != m.cursor {
			return fmt.Errorf("migrate: journal cursor %d vs migrator resume point %d (pass State().Cursor to ResumeFrom)", st.Cursor, m.cursor)
		}
	}
	j.mu.Lock()
	j.syncDisks = m.r5.Disks().Sync
	p := m.code.P()
	j.finishMeta = durable.Meta{
		Version:   durable.MetaVersion,
		Kind:      durable.KindRAID6,
		BlockSize: m.r5.BlockSize(),
		Disks:     p,
		Manifest: &superblock.Manifest{
			Version:   superblock.ManifestVersion,
			CodeName:  m.code.Name(),
			P:         p,
			BlockSize: m.r5.BlockSize(),
			Stripes:   m.stripes,
		},
	}
	j.mu.Unlock()
	m.journal = j
	return nil
}

// Journal returns the attached intent-log journal (nil when the
// migration is not journaled).
func (m *OnlineMigrator) Journal() *Journal {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journal
}
