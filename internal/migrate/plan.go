package migrate

import (
	"fmt"
	"sort"

	"code56/internal/layout"
	"code56/internal/telemetry"
)

// OpKind enumerates the conversion operations the paper's §V-A cost model
// distinguishes.
type OpKind int

const (
	// OpReuse marks an old parity that serves as a target parity
	// untouched — zero I/O, the Code 5-6 design point.
	OpReuse OpKind = iota
	// OpInvalidate sets an old parity block to NULL (one write).
	OpInvalidate
	// OpMigrate moves an old parity block (one read + one write).
	OpMigrate
	// OpGenerate computes a new parity block from its chain (reads for
	// uncached contributors, XORs, one write).
	OpGenerate
)

// String returns a short tag.
func (k OpKind) String() string {
	switch k {
	case OpReuse:
		return "reuse"
	case OpInvalidate:
		return "invalidate"
	case OpMigrate:
		return "migrate"
	case OpGenerate:
		return "generate"
	default:
		return "?"
	}
}

// Op is one conversion operation on one target stripe.
type Op struct {
	Kind OpKind
	// Phase indexes Plan.PhaseNames.
	Phase int
	// Stripe is the target stripe index within the planning period.
	Stripe int
	// Cell is the cell acted upon (destination for OpMigrate).
	Cell layout.Coord
	// From is the source cell for OpMigrate.
	From layout.Coord
	// Contribs lists the non-zero contributor cells of an OpGenerate (the
	// chain covers that actually hold content).
	Contribs []layout.Coord
	// Reads lists the contributor cells that cost a disk read (those not
	// already cached by earlier operations in the same phase and stripe).
	Reads []layout.Coord
	// XORs is the number of block XOR operations of an OpGenerate.
	XORs int
}

// PhaseIO aggregates the per-column I/O of one conversion phase.
type PhaseIO struct {
	Name string
	// Reads[j] and Writes[j] count the I/Os issued to target column j
	// during the phase, across the whole planning period.
	Reads, Writes []int
}

// Plan is the complete conversion schedule over one parity-rotation period,
// plus the aggregates the paper's metrics derive from.
type Plan struct {
	Conv    Conversion
	Virtual int
	// Period is the number of target stripes planned (one full source
	// parity-rotation period, so all averages are exact).
	Period int
	// OldRowsPerStripe is how many source rows each target stripe absorbs.
	OldRowsPerStripe int
	// DataBlocks is the number of source data blocks in the period (the
	// paper's B for normalization).
	DataBlocks int
	PhaseNames []string
	Ops        []Op

	Reused, Invalidated, Migrated, Generated int
	// ReservedCells / SourceCells give the extra-space ratio (Fig. 12):
	// cells the source disks must keep free over the source disks' total
	// capacity in the period.
	ReservedCells, SourceCells int
	XORs                       int
	PhaseIO                    []PhaseIO
}

// planner carries the mutable state of plan construction.
type planner struct {
	plan    *Plan
	geom    layout.Geometry
	virtual int

	// content tracks, per stripe, which cells currently hold non-zero
	// content (old data, surviving parities, generated parities).
	content map[int]map[layout.Coord]bool
	// cache tracks, per stripe, cells resident in conversion memory for
	// the current phase (reads are free for cached cells).
	cache      map[int]map[layout.Coord]bool
	curPhase   int
	phaseReads []int
	phaseWr    []int
}

// NewPlan builds the conversion plan. The conversion must Validate().
// Planning is traced as a "migrate.plan" span on the default tracer,
// annotated with the conversion label and the resulting op counts.
func NewPlan(c Conversion) (plan *Plan, err error) {
	sp := telemetry.DefaultTracer().StartSpan("migrate.plan", telemetry.A("conversion", c.Label()))
	defer func() {
		if err != nil {
			sp.End(telemetry.A("error", err.Error()))
		} else {
			sp.End(telemetry.A("ops", len(plan.Ops)),
				telemetry.A("data_blocks", plan.DataBlocks),
				telemetry.A("xors", plan.XORs))
		}
	}()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	virtual := c.Virtual
	g := c.Code.Geometry()
	p := &planner{
		plan:    &Plan{Conv: c, Virtual: virtual},
		geom:    g,
		virtual: virtual,
		content: make(map[int]map[layout.Coord]bool),
		cache:   make(map[int]map[layout.Coord]bool),
	}
	ov0 := buildOverlay(c, 0)
	k := len(ov0.DataRows)
	if k == 0 {
		return nil, fmt.Errorf("migrate: no data rows for %s", c.Label())
	}
	p.plan.OldRowsPerStripe = k
	p.plan.Period = lcm(c.M, k) / k

	overlays := make([]Overlay, p.plan.Period)
	for i := range overlays {
		overlays[i] = buildOverlay(c, i)
		p.plan.DataBlocks += overlays[i].Count(OldData)
		p.plan.ReservedCells += overlays[i].Count(Reserved)
		p.plan.SourceCells += c.M * g.Rows
		ct := make(map[layout.Coord]bool)
		for r, row := range overlays[i].Class {
			for j, cl := range row {
				if cl == OldData || cl == OldParity {
					ct[layout.Coord{Row: r, Col: j}] = true
				}
			}
		}
		p.content[i] = ct
	}

	switch c.Approach {
	case Direct:
		p.beginPhase("convert")
		for st, ov := range overlays {
			reused, pendingNulls := p.directOldParities(st, ov)
			p.generateAll(st, ov, reused)
			// Invalidation writes are deferred to the end of the stripe's
			// conversion: the paper's Table VI prescribes that "old parity
			// blocks in RAID-5 should be retained until conversion is
			// done", so a disk failing mid-conversion can still recover
			// through the old row parities. The generated parities already
			// treat these cells as NULL (metadata invalidation), so the
			// final NULL write only reconciles the physical state.
			for _, c := range pendingNulls {
				p.plan.Ops = append(p.plan.Ops, Op{Kind: OpInvalidate, Phase: p.curPhase, Stripe: st, Cell: c})
				p.write(st, c)
			}
		}
		p.endPhase()
	case ViaRAID0:
		p.beginPhase("degrade")
		for st, ov := range overlays {
			for i, r := range ov.DataRows {
				p.invalidate(st, layout.Coord{Row: r, Col: ov.OldParityCol[i]})
			}
		}
		p.endPhase()
		p.beginPhase("upgrade")
		for st, ov := range overlays {
			p.generateAll(st, ov, nil)
		}
		p.endPhase()
	case ViaRAID4:
		dedicated := virtual + c.M
		p.beginPhase("degrade")
		for st, ov := range overlays {
			for i, r := range ov.DataRows {
				from := layout.Coord{Row: r, Col: ov.OldParityCol[i]}
				to := layout.Coord{Row: r, Col: dedicated}
				p.migrate(st, from, to)
			}
		}
		p.endPhase()
		p.beginPhase("upgrade")
		for st, ov := range overlays {
			reused := p.raid4Horizontals(st, ov, dedicated)
			p.generateAll(st, ov, reused)
		}
		p.endPhase()
	default:
		return nil, fmt.Errorf("migrate: unknown approach %d", c.Approach)
	}
	return p.plan, nil
}

func (p *planner) beginPhase(name string) {
	p.plan.PhaseNames = append(p.plan.PhaseNames, name)
	p.curPhase = len(p.plan.PhaseNames) - 1
	p.phaseReads = make([]int, p.geom.Cols)
	p.phaseWr = make([]int, p.geom.Cols)
	p.cache = make(map[int]map[layout.Coord]bool)
}

func (p *planner) endPhase() {
	p.plan.PhaseIO = append(p.plan.PhaseIO, PhaseIO{
		Name:  p.plan.PhaseNames[p.curPhase],
		Reads: p.phaseReads, Writes: p.phaseWr,
	})
}

func (p *planner) cached(st int, c layout.Coord) bool { return p.cache[st][c] }

func (p *planner) touch(st int, c layout.Coord) {
	m := p.cache[st]
	if m == nil {
		m = make(map[layout.Coord]bool)
		p.cache[st] = m
	}
	m[c] = true
}

// read charges a disk read for c unless cached; either way c is cached
// afterwards.
func (p *planner) read(st int, c layout.Coord) bool {
	if p.cached(st, c) {
		return false
	}
	p.phaseReads[c.Col]++
	p.touch(st, c)
	return true
}

func (p *planner) write(st int, c layout.Coord) {
	p.phaseWr[c.Col]++
	p.touch(st, c)
}

func (p *planner) invalidate(st int, c layout.Coord) {
	p.plan.Ops = append(p.plan.Ops, Op{Kind: OpInvalidate, Phase: p.curPhase, Stripe: st, Cell: c})
	p.plan.Invalidated++
	p.write(st, c)
	delete(p.content[st], c)
}

func (p *planner) migrate(st int, from, to layout.Coord) {
	op := Op{Kind: OpMigrate, Phase: p.curPhase, Stripe: st, Cell: to, From: from}
	if p.read(st, from) {
		op.Reads = []layout.Coord{from}
	}
	p.write(st, to)
	p.plan.Ops = append(p.plan.Ops, op)
	p.plan.Migrated++
	delete(p.content[st], from)
	p.content[st][to] = true
}

func (p *planner) reuse(st int, c layout.Coord) {
	p.plan.Ops = append(p.plan.Ops, Op{Kind: OpReuse, Phase: p.curPhase, Stripe: st, Cell: c})
	p.plan.Reused++
}

// directOldParities classifies each old parity under the Direct approach:
// reuse when it already is the target horizontal parity of its row and its
// chain matches; otherwise invalidate. Invalidation is logical here (the
// cell is treated as NULL by all generated parities); the physical NULL
// write — needed only for cells that no generated parity overwrites — is
// returned for the caller to schedule after generation. It returns the set
// of parity cells satisfied by reuse and the cells awaiting NULL writes.
func (p *planner) directOldParities(st int, ov Overlay) (reused map[layout.Coord]bool, pendingNulls []layout.Coord) {
	reused = make(map[layout.Coord]bool)
	for i, r := range ov.DataRows {
		c := layout.Coord{Row: r, Col: ov.OldParityCol[i]}
		kind := ov.Conv.Code.Kind(c.Row, c.Col)
		if kind == layout.ParityH && p.chainMatchesRow(st, ov, c) {
			p.reuse(st, c)
			reused[c] = true
			continue
		}
		p.plan.Invalidated++
		delete(p.content[st], c)
		if kind.IsParity() {
			// The generated parity overwrites the stale block; no
			// separate NULL write is needed.
			continue
		}
		pendingNulls = append(pendingNulls, c)
	}
	return reused, pendingNulls
}

// chainMatchesRow reports whether the target parity chain at cell c equals
// the old parity stored there: every contentful cover must be an OldData
// cell of c's row.
func (p *planner) chainMatchesRow(st int, ov Overlay, c layout.Coord) bool {
	ch, ok := chainAt(ov.Conv.Code, c)
	if !ok {
		return false
	}
	rowData := make(map[layout.Coord]bool)
	for j, cl := range ov.Class[c.Row] {
		if cl == OldData {
			rowData[layout.Coord{Row: c.Row, Col: j}] = true
		}
	}
	covered := 0
	for _, m := range ch.Covers {
		if !p.content[st][m] {
			continue // zero cell contributes nothing
		}
		if !rowData[m] {
			return false
		}
		covered++
	}
	return covered == len(rowData)
}

// raid4Horizontals resolves the target horizontal parities from the
// dedicated RAID-4 column: in place if the target keeps them there (RDP,
// EVENODD), by a second migration if the target scatters them (H-Code).
// It returns the set of horizontal parity cells already satisfied.
func (p *planner) raid4Horizontals(st int, ov Overlay, dedicated int) map[layout.Coord]bool {
	done := make(map[layout.Coord]bool)
	for _, ch := range ov.Conv.Code.Chains() {
		if ch.Kind != layout.ParityH {
			continue
		}
		h := ch.Parity
		src := layout.Coord{Row: h.Row, Col: dedicated}
		if !p.content[st][src] {
			continue // no migrated parity for this row (virtual rows)
		}
		if h == src {
			if p.chainMatchesRow(st, ov, h) {
				p.reuse(st, h)
				done[h] = true
			}
			continue
		}
		// The dedicated cell vacates either way: evaluate the chain as if
		// the parity had left it (it may itself be one of the chain's
		// covers, as with H-Code's pure-data column).
		delete(p.content[st], src)
		if p.chainMatchesRowFrom(st, ov, ch, h.Row) {
			p.content[st][src] = true // migrate() re-deletes it
			p.migrate(st, src, h)
			done[h] = true
		} else {
			// The migrated parity is useless for this target: NULL it so
			// the stale block cannot corrupt the cell's final role.
			p.content[st][src] = true
			p.invalidate(st, src)
		}
	}
	return done
}

// chainMatchesRowFrom is chainMatchesRow for a chain whose parity has not
// been placed yet: the migrated old parity of row `row` satisfies the chain
// if every contentful cover is an OldData cell of that row.
func (p *planner) chainMatchesRowFrom(st int, ov Overlay, ch layout.Chain, row int) bool {
	rowData := make(map[layout.Coord]bool)
	for j, cl := range ov.Class[row] {
		if cl == OldData {
			rowData[layout.Coord{Row: row, Col: j}] = true
		}
	}
	covered := 0
	for _, m := range ch.Covers {
		if !p.content[st][m] {
			continue
		}
		if !rowData[m] {
			return false
		}
		covered++
	}
	return covered == len(rowData)
}

// chainAt returns the chain whose parity is at cell c.
func chainAt(code layout.Code, c layout.Coord) (layout.Chain, bool) {
	for _, ch := range code.Chains() {
		if ch.Parity == c {
			return ch, true
		}
	}
	return layout.Chain{}, false
}

// generateAll emits OpGenerate for every parity cell of the stripe that is
// neither virtual nor already satisfied, in chain dependency order.
func (p *planner) generateAll(st int, ov Overlay, satisfied map[layout.Coord]bool) {
	code := ov.Conv.Code
	chains := code.Chains()
	// Dependency order: a chain is ready once none of its covers is a
	// pending parity.
	pending := make(map[layout.Coord]bool)
	var todo []int
	for i, ch := range chains {
		c := ch.Parity
		if c.Col < p.virtual {
			continue // virtual parity: not materialized
		}
		if satisfied[c] {
			continue
		}
		pending[c] = true
		todo = append(todo, i)
	}
	for len(todo) > 0 {
		var next []int
		progressed := false
		for _, i := range todo {
			ch := chains[i]
			ready := true
			for _, m := range ch.Covers {
				if pending[m] {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, i)
				continue
			}
			p.generate(st, ch)
			delete(pending, ch.Parity)
			progressed = true
		}
		if !progressed {
			panic(fmt.Sprintf("migrate: cyclic parity dependencies in %s", code.Name()))
		}
		todo = next
	}
}

func (p *planner) generate(st int, ch layout.Chain) {
	op := Op{Kind: OpGenerate, Phase: p.curPhase, Stripe: st, Cell: ch.Parity}
	covers := append([]layout.Coord(nil), ch.Covers...)
	sort.Slice(covers, func(a, b int) bool {
		if covers[a].Row != covers[b].Row {
			return covers[a].Row < covers[b].Row
		}
		return covers[a].Col < covers[b].Col
	})
	for _, m := range covers {
		if !p.content[st][m] {
			continue
		}
		op.Contribs = append(op.Contribs, m)
		if p.read(st, m) {
			op.Reads = append(op.Reads, m)
		}
	}
	if n := len(op.Contribs); n > 1 {
		op.XORs = n - 1
	}
	p.write(st, ch.Parity)
	p.plan.Ops = append(p.plan.Ops, op)
	p.plan.Generated++
	p.plan.XORs += op.XORs
	p.content[st][ch.Parity] = len(op.Contribs) > 0
	if len(op.Contribs) == 0 {
		delete(p.content[st], ch.Parity)
	}
}
