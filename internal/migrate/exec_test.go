package migrate

import (
	"context"
	"errors"
	"testing"

	"code56/internal/parallel"
	"code56/internal/telemetry"
)

// TestExecuteAllStandardConversions replays every (code, approach) plan of
// the paper's comparison matrix against simulated disks and verifies that
// (a) the result is a consistent RAID-6 array, (b) no data block was
// corrupted, and (c) the disks' observed I/O counters match the plan's
// accounting exactly.
func TestExecuteAllStandardConversions(t *testing.T) {
	for _, n := range []int{5, 6, 7} {
		for _, c := range StandardConversions(n) {
			c := c
			t.Run(c.Label(), func(t *testing.T) {
				plan := mustPlan(t, c)
				ex := NewExecutor(plan, 64, 42)
				if err := ex.Run(); err != nil {
					t.Fatal(err)
				}
				reads, writes := ex.DiskIOTotals() // before VerifyResult's own reads
				if err := ex.VerifyResult(); err != nil {
					t.Fatal(err)
				}
				wantR := make([]int, len(reads))
				wantW := make([]int, len(writes))
				for _, ph := range plan.PhaseIO {
					for j := range ph.Reads {
						if j < plan.Virtual {
							if ph.Reads[j] != 0 || ph.Writes[j] != 0 {
								t.Fatalf("I/O scheduled on virtual column %d", j)
							}
							continue
						}
						wantR[j-plan.Virtual] += ph.Reads[j]
						wantW[j-plan.Virtual] += ph.Writes[j]
					}
				}
				for j := range reads {
					if reads[j] != wantR[j] || writes[j] != wantW[j] {
						t.Errorf("disk %d: observed %dr/%dw, plan says %dr/%dw",
							j, reads[j], writes[j], wantR[j], wantW[j])
					}
				}
			})
		}
	}
}

// TestVirtualDiskConversion exercises §IV-B2 for every m in 3..12: the
// virtual-disk plan must execute and verify, reuse all real parities, and
// invalidate/migrate nothing.
func TestVirtualDiskConversion(t *testing.T) {
	for m := 3; m <= 12; m++ {
		plan, err := NewVirtualPlan(m, 0)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if plan.Invalidated != 0 || plan.Migrated != 0 {
			t.Errorf("m=%d: invalidated %d migrated %d, want 0/0", m, plan.Invalidated, plan.Migrated)
		}
		if plan.Reused == 0 {
			t.Errorf("m=%d: no parities reused", m)
		}
		ex := NewExecutor(plan, 32, int64(m))
		if err := ex.Run(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if err := ex.VerifyResult(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
	}
}

// TestVirtualFig8 pins the paper's Fig. 8 example: m=3 → p=5 with one
// virtual disk; 6 usable data blocks per stripe; 4 diagonal parities
// generated; 3 horizontal parities reused.
func TestVirtualFig8(t *testing.T) {
	conv, v, err := VirtualConversion(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("v = %d, want 1", v)
	}
	plan, err := NewPlan(conv)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Period != 1 {
		t.Fatalf("period %d, want 1", plan.Period)
	}
	if plan.DataBlocks != 6 {
		t.Errorf("data blocks %d, want 6", plan.DataBlocks)
	}
	if plan.Generated != 4 {
		t.Errorf("generated %d, want 4", plan.Generated)
	}
	if plan.Reused != 3 {
		t.Errorf("reused %d, want 3", plan.Reused)
	}
}

// TestStorageEfficiencyEq6 pins the paper's Eq. 6 numbers: m=3 gives 6/13,
// and the virtual-disk penalty versus a typical RAID-6 stays under the
// paper's 3.8% bound for 3 <= m <= 30.
func TestStorageEfficiencyEq6(t *testing.T) {
	if got, want := Code56StorageEfficiency(3), 6.0/13; !approxEq(got, want) {
		t.Errorf("m=3: %v, want %v", got, want)
	}
	// Where m+1 is prime there is no penalty at all.
	if got, want := Code56StorageEfficiency(4), 3.0/5; !approxEq(got, want) {
		t.Errorf("m=4: %v, want %v", got, want)
	}
	// The paper's <3.8% bound holds over its plotted range of m; the
	// penalty grows slowly with the prime gap beyond it.
	maxPenalty := 0.0
	for m := 3; m <= 20; m++ {
		typical := TypicalRAID6StorageEfficiency(m)
		c56 := Code56StorageEfficiency(m)
		if c56 > typical+1e-9 {
			t.Errorf("m=%d: Code 5-6 efficiency %v exceeds MDS optimum %v", m, c56, typical)
		}
		if pen := typical - c56; pen > maxPenalty {
			maxPenalty = pen
		}
	}
	// The worst case in range is m=3: 1/2 - 6/13 = 0.03846, which the
	// paper rounds to "less than 3.8%".
	if maxPenalty > 1.0/2-6.0/13+1e-9 {
		t.Errorf("max virtual-disk penalty %.4f exceeds the m=3 worst case", maxPenalty)
	}
}

// TestRunContextParallelMatchesPlan replays plans with 4 workers and checks
// the executor still validates: consistent RAID-6 result, intact data, and
// telemetry counters exactly equal to the plan's aggregates (stripe fan-out
// must not change the work done, only its schedule).
func TestRunContextParallelMatchesPlan(t *testing.T) {
	for _, n := range []int{6, 7} {
		for _, c := range StandardConversions(n) {
			c := c
			t.Run(c.Label(), func(t *testing.T) {
				plan := mustPlan(t, c)
				reg := telemetry.NewRegistry()
				ex := NewExecutor(plan, 64, 43)
				ex.SetTelemetry(reg, telemetry.NewTracer())
				if err := ex.RunContext(context.Background(), parallel.WithWorkers(4)); err != nil {
					t.Fatal(err)
				}
				if err := ex.VerifyResult(); err != nil {
					t.Fatal(err)
				}
				got := reg.Snapshot().Counters
				if got["migrate.exec.reads"] != int64(plan.TotalReads()) ||
					got["migrate.exec.writes"] != int64(plan.TotalWrites()) ||
					got["migrate.exec.xors"] != int64(plan.XORs) {
					t.Errorf("parallel counters %dr/%dw/%dx diverge from plan %dr/%dw/%dx",
						got["migrate.exec.reads"], got["migrate.exec.writes"], got["migrate.exec.xors"],
						plan.TotalReads(), plan.TotalWrites(), plan.XORs)
				}
			})
		}
	}
}

// TestRunContextCancelled: a pre-cancelled context stops the executor
// before any operation runs.
func TestRunContextCancelled(t *testing.T) {
	plan, err := NewVirtualPlan(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(plan, 32, 44)
	ex.Disks().ResetStats()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ex.RunContext(ctx, parallel.WithWorkers(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
