// Package migrate implements RAID level migration between RAID-5 and
// RAID-6, the subject of the paper. It contains:
//
//   - a *planner* that, for a (source RAID-5, target code, approach)
//     triple, structurally diffs the source parity layout against the
//     target layout and emits the exact conversion operation stream
//     (invalidate / migrate / generate / reuse) — the paper's Figures 9–17
//     metrics are aggregations of this stream;
//   - an *offline executor* that replays the stream against simulated
//     disks and verifies the result is a consistent RAID-6 array (tying
//     the analysis to a real implementation);
//   - an *online converter* implementing the paper's Algorithm 2 for
//     Code 5-6: conversion and application I/O proceed concurrently on
//     live disks, with write requests interrupting the conversion thread;
//   - *virtual disk* support (paper §IV-B2) extending Code 5-6 migration
//     to a RAID-5 with any number of disks.
package migrate

import (
	"fmt"

	"code56/internal/layout"
	"code56/internal/raid5"
)

// Approach is one of the paper's three conversion strategies (§I).
type Approach int

const (
	// ViaRAID0 degrades the RAID-5 to a RAID-0 (invalidating every old
	// parity) and then upgrades to RAID-6 (generating every new parity).
	ViaRAID0 Approach = iota
	// ViaRAID4 degrades the RAID-5 to a RAID-4 (migrating every old
	// parity to a dedicated disk) and then upgrades to RAID-6
	// (generating the diagonal-family parities; horizontal parities are
	// reused from the dedicated disk, or migrated a second time if the
	// target scatters them).
	ViaRAID4
	// Direct converts in place: old parities are reused where the target
	// layout matches (Code 5-6's design point) and invalidated where it
	// does not.
	Direct
)

// String returns the paper's name for the approach.
func (a Approach) String() string {
	switch a {
	case ViaRAID0:
		return "RAID-5→RAID-0→RAID-6"
	case ViaRAID4:
		return "RAID-5→RAID-4→RAID-6"
	case Direct:
		return "RAID-5→RAID-6"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Short returns a compact tag for tables.
func (a Approach) Short() string {
	switch a {
	case ViaRAID0:
		return "via-raid0"
	case ViaRAID4:
		return "via-raid4"
	case Direct:
		return "direct"
	default:
		return fmt.Sprintf("approach%d", int(a))
	}
}

// Conversion describes one migration scenario: a RAID-5 of M disks with the
// given parity layout converted to a RAID-6 using Code under Approach.
type Conversion struct {
	// M is the number of disks in the source RAID-5.
	M int
	// SourceLayout is the source parity rotation (the paper's default is
	// left-asymmetric).
	SourceLayout raid5.Layout
	// Code is the target RAID-6 code.
	Code layout.Code
	// Approach is the conversion strategy.
	Approach Approach
	// Virtual is the number of virtual (all-NULL, non-physical) columns
	// padding the target layout, per §IV-B2. Zero for exact geometries.
	Virtual int
}

// N returns the number of real disks in the resulting RAID-6 (the target
// code's column count minus virtual columns).
func (c Conversion) N() int { return c.Code.Geometry().Cols - c.Virtual }

// Label formats the conversion the way the paper labels its figures,
// e.g. "RAID-5→RAID-6(code56,4,5)".
func (c Conversion) Label() string {
	return fmt.Sprintf("%s(%s,%d,%d)", c.Approach, c.Code.Name(), c.M, c.N())
}

// Validate checks that the source geometry is compatible with the target
// code under the approach:
//
//   - the source disks must map onto the target's columns (all of them for
//     in-place vertical codes, a prefix for codes that add disks);
//   - the target must have data rows to receive the source's rows;
//   - M must be at least 3 (a valid RAID-5).
func (c Conversion) Validate() error {
	if c.M < 3 {
		return fmt.Errorf("migrate: source RAID-5 needs >= 3 disks, got %d", c.M)
	}
	if c.Code == nil {
		return fmt.Errorf("migrate: nil target code")
	}
	g := c.Code.Geometry()
	if c.Virtual < 0 {
		return fmt.Errorf("migrate: negative virtual disk count %d", c.Virtual)
	}
	if c.Virtual > 0 && c.Approach != Direct {
		return fmt.Errorf("migrate: virtual disks only apply to direct conversion")
	}
	if c.Virtual+c.M > g.Cols {
		return fmt.Errorf("migrate: %d virtual + %d source disks exceed target's %d columns", c.Virtual, c.M, g.Cols)
	}
	if c.Approach != Direct && c.M == g.Cols {
		return fmt.Errorf("migrate: %s needs added disks, but source already has %d disks", c.Approach, g.Cols)
	}
	ov := buildOverlay(c, 0)
	if len(ov.DataRows) == 0 {
		return fmt.Errorf("migrate: target %s has no data rows", c.Code.Name())
	}
	// Every source parity must land on a source column.
	period := c.RotationPeriod()
	for g := 0; g < period; g++ {
		o := buildOverlay(c, g)
		for _, pd := range o.OldParityCol {
			if pd < c.Virtual || pd >= c.Virtual+c.M {
				return fmt.Errorf("migrate: source parity column %d outside source disks", pd)
			}
		}
	}
	return nil
}

// OldRowsPerStripe returns how many source RAID-5 rows one target stripe
// absorbs (the number of target rows containing data cells).
func (c Conversion) OldRowsPerStripe() int {
	return len(buildOverlay(c, 0).DataRows)
}

// RotationPeriod returns the number of consecutive target stripes after
// which the source parity rotation realigns: lcm(M, K)/K with K the old
// rows per stripe. Planning over one period yields exact long-run averages.
func (c Conversion) RotationPeriod() int {
	k := c.OldRowsPerStripe()
	return lcm(c.M, k) / k
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
