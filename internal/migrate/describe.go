package migrate

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Describe writes the plan's operation stream and aggregates in a
// human-readable form — the ops view of a conversion, for debugging
// planners and for operators wanting to see exactly what a migration will
// do before running it. maxOps bounds the number of operations printed
// (<= 0 prints everything).
func (p *Plan) Describe(w io.Writer, maxOps int) error {
	fmt.Fprintf(w, "plan: %s\n", p.Conv.Label())
	fmt.Fprintf(w, "  source: %d disks (%v)", p.Conv.M, p.Conv.SourceLayout)
	if p.Virtual > 0 {
		fmt.Fprintf(w, " + %d virtual", p.Virtual)
	}
	fmt.Fprintf(w, "; target: %s over %d disks\n", p.Conv.Code.Name(), p.Conv.N())
	fmt.Fprintf(w, "  window: %d stripes (%d source rows each), %d data blocks\n",
		p.Period, p.OldRowsPerStripe, p.DataBlocks)
	fmt.Fprintf(w, "  parities: %d reused, %d invalidated, %d migrated, %d generated; %d XORs\n",
		p.Reused, p.Invalidated, p.Migrated, p.Generated, p.XORs)
	for i, ph := range p.PhaseIO {
		r, wr := 0, 0
		for j := range ph.Reads {
			r += ph.Reads[j]
			wr += ph.Writes[j]
		}
		fmt.Fprintf(w, "  phase %d (%s): %d reads, %d writes\n", i, ph.Name, r, wr)
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  #\tphase\tstripe\top\tcell\tdetail")
	n := len(p.Ops)
	truncated := false
	if maxOps > 0 && n > maxOps {
		n = maxOps
		truncated = true
	}
	for i := 0; i < n; i++ {
		op := p.Ops[i]
		detail := ""
		switch op.Kind {
		case OpMigrate:
			detail = fmt.Sprintf("from %v", op.From)
		case OpGenerate:
			detail = fmt.Sprintf("%d contributors, %d fresh reads, %d XORs",
				len(op.Contribs), len(op.Reads), op.XORs)
		}
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%s\t%v\t%s\n",
			i, p.PhaseNames[op.Phase], op.Stripe, op.Kind, op.Cell, detail)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if truncated {
		fmt.Fprintf(w, "  ... %d more operations\n", len(p.Ops)-n)
	}
	return nil
}
