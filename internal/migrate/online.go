package migrate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"code56/internal/bufpool"
	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/raid5"
	"code56/internal/raid6"
	"code56/internal/telemetry"
	"code56/internal/vdisk"
	"code56/internal/xorblk"
)

// OnlineMigrator implements the paper's Algorithm 2: bidirectional online
// conversion between a RAID-5 and a Code 5-6 RAID-6. While the conversion
// goroutine fills the added diagonal-parity disk stripe by stripe, the
// application keeps reading and writing through the migrator:
//
//   - reads never conflict (the conversion only writes to the new disk) and
//     proceed concurrently;
//   - writes interrupt the conversion (they take priority, per the paper),
//     perform the ordinary RAID-5 read-modify-write, and additionally update
//     the diagonal parity when their stripe has already been converted. A
//     write landing in the stripe currently being converted marks it dirty,
//     and the conversion thread redoes that stripe before advancing.
//
// The RAID-5's block layout is untouched — that is Code 5-6's design — so
// application block addresses mean the same thing before, during and after
// the migration.
//
// Writes take strict priority, as the paper prescribes; a saturating write
// stream therefore stalls the conversion entirely (use Stats to observe
// the interaction, and schedule migrations in low-traffic windows or
// throttle the application — the migrator itself never throttles writes).
type OnlineMigrator struct {
	r5      *raid5.Array
	code    *core.Code56
	rows    int64 // RAID-5 rows covered by the conversion
	stripes int64

	// writeMu serializes application writes: a RAID-5 read-modify-write
	// spans several blocks and must not interleave with another write.
	writeMu sync.Mutex

	mu            sync.Mutex
	cond          *sync.Cond
	pendingWrites int  //c56:guardedby mu
	userPaused    bool //c56:guardedby mu
	parallelism   int  //c56:guardedby mu
	// workers counts conversion goroutines still running; parked, those
	// waiting on writes/pause. nextClaim is the next stripe a worker will
	// claim and cursor the contiguous watermark of converted stripes.
	workers   int   //c56:guardedby mu
	parked    int   //c56:guardedby mu
	nextClaim int64 //c56:guardedby mu
	cursor    int64 //c56:guardedby mu
	// inProgress holds stripes being converted right now; dirtySet,
	// in-progress stripes written concurrently; doneSet, converted stripes
	// above the watermark.
	inProgress map[int64]bool //c56:guardedby mu
	dirtySet   map[int64]bool //c56:guardedby mu
	doneSet    map[int64]bool //c56:guardedby mu
	started    bool           //c56:guardedby mu
	finished   bool           //c56:guardedby mu
	err        error          //c56:guardedby mu
	done       chan struct{}
	// wake is closed (and replaced) by interruptLocked to cut short any
	// worker sleeping in its throttle interval when the migration must
	// react now: cancellation, a conversion error, or Pause.
	wake chan struct{} //c56:guardedby mu

	// throttle, if positive, is slept between stripes to bound the
	// conversion's interference with foreground I/O.
	throttle time.Duration //c56:guardedby mu
	// onProgress, if set, is called (without locks held) after each
	// stripe completes.
	onProgress func(converted, total int64) //c56:guardedby mu
	// journal, if attached, records begin/watermark/finish intent records
	// so a crash mid-migration reopens to a resumable state (see
	// AttachJournal; nil for purely in-memory migrations).
	journal *Journal //c56:guardedby mu

	stats     MigrationStats //c56:guardedby mu
	startTime time.Time      //c56:guardedby mu
	endTime   time.Time      //c56:guardedby mu

	// tel is rebound only before Start (see SetTelemetry), so the running
	// migration reads it without the lock.
	tel onlineTel
	// span is the migrate.online root span, set once by StartContext.
	span *telemetry.Span //c56:guardedby mu
}

// onlineTel holds the migrator's bound telemetry instruments (see README
// "Telemetry" for the metric reference).
type onlineTel struct {
	tr           *telemetry.Tracer
	converted    *telemetry.Counter // stripes converted (incl. redone)
	redone       *telemetry.Counter // stripes reconverted after a racing write
	interrupts   *telemetry.Counter // app writes that interrupted the conversion
	diagUpd      *telemetry.Counter // write-redirect hits on converted stripes
	appReads     *telemetry.Counter // application reads served
	appWrites    *telemetry.Counter // application writes served
	faultRepairs *telemetry.Counter // faulty blocks healed by the conversion
	xors         *telemetry.Counter // conversion XORs (Equation 2 evaluations)
	// redirectXORs counts the extra XORs write redirects spend updating
	// already-converted diagonal parities (kept separate so xors matches
	// the plan's conversion-only accounting).
	redirectXORs *telemetry.Counter
	progress     *telemetry.Gauge // contiguous converted-stripe watermark
	// stripeRate feeds the live stripes/s windows (1 s/10 s/60 s + EWMA)
	// behind ProgressReport.RecentStripesPerSec and the migrate.stripe_rate
	// series of the observability plane.
	stripeRate *telemetry.Rate
}

func bindOnlineTel(reg *telemetry.Registry, tr *telemetry.Tracer) onlineTel {
	return onlineTel{
		tr:           tr,
		converted:    reg.Counter("migrate.stripes_converted"),
		redone:       reg.Counter("migrate.stripes_redone"),
		interrupts:   reg.Counter("migrate.write_interrupts"),
		diagUpd:      reg.Counter("migrate.diagonal_updates"),
		appReads:     reg.Counter("migrate.app_reads"),
		appWrites:    reg.Counter("migrate.app_writes"),
		faultRepairs: reg.Counter("migrate.fault_repairs"),
		xors:         reg.Counter("migrate.conversion_xors"),
		redirectXORs: reg.Counter("migrate.redirect_xors"),
		progress:     reg.Gauge("migrate.progress_stripes"),
		stripeRate:   reg.Rate("migrate.stripe_rate"),
	}
}

// MigrationStats counts the online conversion's interactions with the
// foreground workload.
type MigrationStats struct {
	// StripesConverted counts completed stripe conversions, including
	// repeats of dirtied stripes.
	StripesConverted int64
	// StripesRedone counts stripes that had to be reconverted because an
	// application write raced with their conversion.
	StripesRedone int64
	// WriteInterrupts counts application writes served while the
	// conversion was active (each interrupted it briefly).
	WriteInterrupts int64
	// DiagonalUpdates counts writes that also updated an
	// already-converted stripe's diagonal parity.
	DiagonalUpdates int64
	// FaultsRepaired counts blocks the conversion found unreadable (latent
	// or persistent-transient errors), reconstructed from RAID-5
	// redundancy, and rewrote in place.
	FaultsRepaired int64
}

// NewOnlineMigrator prepares a migration of the given RAID-5 array to a
// Code 5-6 RAID-6. rows is the number of RAID-5 stripe rows holding data;
// it must be a positive multiple of p-1 (one Code 5-6 stripe absorbs p-1
// rows). The array must have p-1 disks, p prime. Left-oriented layouts use
// the paper's default Code 5-6; right-oriented layouts use the mirrored
// orientation of the paper's Fig. 7 — either way the existing parities are
// already in place.
func NewOnlineMigrator(a *raid5.Array, rows int64) (*OnlineMigrator, error) {
	p := a.M() + 1
	if !layout.IsPrime(p) {
		return nil, fmt.Errorf("migrate: %d disks + 1 = %d is not prime; use NewVirtualPlan for arbitrary sizes", a.M(), p)
	}
	orient := core.Left
	if a.Layout() == raid5.RightAsymmetric || a.Layout() == raid5.RightSymmetric {
		orient = core.Right
	}
	if rows <= 0 || rows%int64(p-1) != 0 {
		return nil, fmt.Errorf("migrate: rows = %d must be a positive multiple of %d", rows, p-1)
	}
	code, err := core.NewOriented(p, orient)
	if err != nil {
		return nil, err
	}
	m := &OnlineMigrator{
		r5:          a,
		code:        code,
		rows:        rows,
		stripes:     rows / int64(p-1),
		parallelism: 1,
		inProgress:  make(map[int64]bool),
		dirtySet:    make(map[int64]bool),
		doneSet:     make(map[int64]bool),
		done:        make(chan struct{}),
		wake:        make(chan struct{}),
		tel:         bindOnlineTel(nil, nil),
	}
	m.cond = sync.NewCond(&m.mu)
	return m, nil
}

// SetTelemetry rebinds the migrator's counters, progress gauge and tracer.
// Pass nil for either argument to use the process-wide defaults. Call
// before Start.
func (m *OnlineMigrator) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tel = bindOnlineTel(reg, tr)
}

// Code returns the Code 5-6 instance used by the migration.
func (m *OnlineMigrator) Code() *core.Code56 { return m.code }

// BlockSize returns the underlying array's block size. The migrator serves
// application I/O in whole blocks of this size (see Read / Write).
func (m *OnlineMigrator) BlockSize() int { return m.r5.BlockSize() }

// StripeConversionBytes returns how many bytes of disk I/O converting one
// stripe costs: the data blocks each diagonal chain reads plus the parity
// block it writes. It is the unit a bandwidth timetable divides a target
// rate by to derive the per-stripe throttle sleep (rate shaping happens in
// units of conversion I/O, the quantity that actually contends with
// foreground traffic).
func (m *OnlineMigrator) StripeConversionBytes() int64 {
	p := m.code.P()
	blocks := 0
	for i := 0; i < p-1; i++ {
		blocks += len(m.code.Chains()[p-1+i].Covers) + 1
	}
	return int64(blocks) * int64(m.r5.BlockSize())
}

// SetThrottle makes each conversion worker sleep d between stripes,
// bounding its interference with foreground I/O. Zero disables throttling;
// negative durations are treated as zero.
//
// SetThrottle is safe to call while the migration runs — the bandwidth
// timetable retunes it on schedule boundaries — and a mid-flight change
// takes effect immediately: workers sleeping out the old interval are
// woken, re-read the new value, and pace their next stripes by it, so
// switching to a faster rate (or to off) never waits out a stale sleep.
func (m *OnlineMigrator) SetThrottle(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if d == m.throttle {
		return // no change: don't wake sleepers for nothing
	}
	m.throttle = d
	if m.started && !m.finished {
		m.interruptLocked()
	}
}

// Throttle returns the current per-stripe pacing sleep (0 = unthrottled).
func (m *OnlineMigrator) Throttle() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.throttle
}

// SetParallelism sets how many stripes are converted concurrently (each by
// its own goroutine; default 1, matching the paper's single conversion
// thread). Stripe conversions are independent — they read disjoint rows
// and write disjoint diagonal-parity blocks — so parallelism trades
// foreground interference for conversion speed. Call before Start.
func (m *OnlineMigrator) SetParallelism(k int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return errors.New("migrate: already started")
	}
	if k < 1 {
		return fmt.Errorf("migrate: parallelism %d must be >= 1", k)
	}
	m.parallelism = k
	return nil
}

// SetProgressFunc installs a callback invoked (without locks held) after
// every converted stripe. Install before Start.
func (m *OnlineMigrator) SetProgressFunc(fn func(converted, total int64)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onProgress = fn
}

// ResumeFrom sets the conversion cursor before Start, for resuming an
// interrupted migration (e.g. after restoring a disk snapshot): stripes
// below the cursor are assumed already converted.
func (m *OnlineMigrator) ResumeFrom(stripe int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return errors.New("migrate: already started")
	}
	if stripe < 0 || stripe > m.stripes {
		return fmt.Errorf("migrate: resume stripe %d outside [0,%d]", stripe, m.stripes)
	}
	m.cursor = stripe
	m.nextClaim = stripe
	return nil
}

// interruptLocked wakes any worker sleeping in its throttle interval: the
// current wake channel is closed (a closed channel stays readable, so no
// wakeup is ever missed) and replaced for future sleeps. Caller holds m.mu.
//
//c56:requires mu
func (m *OnlineMigrator) interruptLocked() {
	close(m.wake)
	m.wake = make(chan struct{})
}

// Pause blocks the conversion at the next stripe boundaries and returns
// once every conversion worker is parked (or the conversion finished).
// Application I/O continues; Resume restarts the conversion.
func (m *OnlineMigrator) Pause() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.userPaused = true
	m.interruptLocked()
	m.span.Event("migrate.pause", telemetry.A("at_stripe", m.cursor))
	m.cond.Broadcast()
	for m.started && !m.finished && m.parked < m.workers {
		m.cond.Wait()
	}
}

// Resume releases a Pause.
func (m *OnlineMigrator) Resume() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.userPaused = false
	m.span.Event("migrate.resume", telemetry.A("at_stripe", m.cursor))
	m.cond.Broadcast()
}

// Start adds the diagonal-parity disk (Algorithm 2, Step 2) — unless a
// resumed migration already has it — and launches the conversion goroutine
// (Step 3).
func (m *OnlineMigrator) Start() error {
	return m.StartContext(context.Background())
}

// StartContext is Start bound to a context: when ctx is cancelled the
// conversion workers stop at the next stripe boundary and Wait returns
// ctx's error. Cancellation never corrupts the array — the contiguous
// converted-stripe watermark (Progress) only advances over fully converted
// stripes, the RAID-5 data and parity layout is untouched by design, and
// application reads and writes keep working throughout. A cancelled
// migration is resumed by creating a new migrator and calling
// ResumeFrom(converted) with the watermark (any partially written diagonal
// blocks above it are simply rewritten).
func (m *OnlineMigrator) StartContext(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return errors.New("migrate: already started")
	}
	m.started = true
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				m.mu.Lock()
				if !m.finished && m.err == nil {
					m.err = ctx.Err()
					m.span.Event("migrate.cancelled", telemetry.A("at_stripe", m.cursor))
				}
				m.interruptLocked()
				m.cond.Broadcast()
				m.mu.Unlock()
			case <-m.done:
			}
		}()
	}
	m.startTime = time.Now()
	if m.r5.Disks().Len() < m.code.P() {
		if _, err := m.r5.Disks().Attach(); err != nil {
			m.started = false
			return fmt.Errorf("migrate: adding diagonal-parity disk: %w", err)
		}
	}
	if m.journal != nil {
		err := m.journal.begin(BeginRecord{
			Rows:      m.rows,
			BlockSize: m.r5.BlockSize(),
			DataDisks: m.code.P() - 1,
			Layout:    m.r5.Layout().String(),
		})
		if err != nil {
			m.started = false
			return err
		}
	}
	m.span = m.tel.tr.StartSpan("migrate.online",
		telemetry.A("stripes", m.stripes),
		telemetry.A("disks", m.code.P()-1),
		telemetry.A("resume_from", m.cursor),
		telemetry.A("parallelism", m.parallelism))
	m.workers = m.parallelism
	go m.convert()
	return nil
}

// Wait blocks until the conversion thread finishes and returns its error.
func (m *OnlineMigrator) Wait() error {
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Progress returns how many of the total stripes are fully converted.
func (m *OnlineMigrator) Progress() (converted, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cursor, m.stripes
}

// ProgressReport is a coherent point-in-time view of a running (or
// finished) migration, taken under the migrator's lock: every field
// describes the same instant, so Converted, Stats and the derived
// rate/ETA never disagree with each other.
type ProgressReport struct {
	// Converted is the contiguous converted-stripe watermark; Total is
	// the migration's stripe count.
	Converted, Total int64
	// Started and Finished report the migration's lifecycle state.
	Started, Finished bool
	// Paused reports an explicit Pause() in effect.
	Paused bool
	// Workers is how many conversion goroutines are still running; Parked
	// is how many of them are waiting out application writes or a pause.
	Workers, Parked int
	// Error is the terminal error's message, empty while healthy. (A
	// string, not an error, so the report serializes cleanly over the
	// observability plane's /progress endpoint.)
	Error string
	// Elapsed is the time since Start (frozen once the conversion ends).
	Elapsed time.Duration
	// StripesPerSec is the mean conversion rate so far (0 before Start).
	StripesPerSec float64
	// RecentStripesPerSec is the smoothed current conversion rate (the
	// migrate.stripe_rate EWMA): unlike the lifetime mean it reacts within
	// seconds when the conversion stalls behind foreground writes or a
	// throttle change.
	RecentStripesPerSec float64
	// ETA estimates the remaining conversion time from the mean rate;
	// zero when unknown (not started or no stripes converted yet).
	ETA time.Duration
	// Stats snapshots the interaction counters at the same instant.
	Stats MigrationStats
}

// State names the migration's lifecycle phase: "pending", "running",
// "parked" (workers waiting out foreground writes), "paused", "finished"
// or "failed". It is what the observability plane's health checker and the
// watch mode display.
func (p ProgressReport) State() string {
	switch {
	case !p.Started:
		return "pending"
	case p.Error != "":
		return "failed"
	case p.Finished:
		return "finished"
	case p.Paused:
		return "paused"
	case p.Workers > 0 && p.Parked == p.Workers:
		return "parked"
	default:
		return "running"
	}
}

// Fraction returns the converted fraction in [0, 1].
func (p ProgressReport) Fraction() float64 {
	if p.Total == 0 {
		return 1
	}
	return float64(p.Converted) / float64(p.Total)
}

// ProgressSnapshot returns a coherent progress report for live reporting
// (the CLIs' percent / stripes-per-second / ETA line).
func (m *OnlineMigrator) ProgressSnapshot() ProgressReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := ProgressReport{
		Converted: m.cursor,
		Total:     m.stripes,
		Started:   m.started,
		Finished:  m.finished,
		Paused:    m.userPaused,
		Workers:   m.workers,
		Parked:    m.parked,
		Stats:     m.stats,
	}
	if m.err != nil {
		r.Error = m.err.Error()
	}
	if !m.started {
		return r
	}
	r.RecentStripesPerSec = m.tel.stripeRate.Snapshot().EWMA
	switch {
	case m.finished:
		r.Elapsed = m.endTime.Sub(m.startTime)
	default:
		r.Elapsed = time.Since(m.startTime)
	}
	if secs := r.Elapsed.Seconds(); secs > 0 && r.Converted > 0 {
		r.StripesPerSec = float64(r.Converted) / secs
		if remaining := r.Total - r.Converted; remaining > 0 {
			r.ETA = time.Duration(float64(remaining) / r.StripesPerSec * float64(time.Second))
		}
	}
	return r
}

// Stats returns a snapshot of the migration's interaction counters.
func (m *OnlineMigrator) Stats() MigrationStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Result wraps the converted disks as a RAID-6 array. Call after Wait.
func (m *OnlineMigrator) Result() (*raid6.Array, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.finished {
		return nil, errors.New("migrate: conversion not finished")
	}
	if m.err != nil {
		return nil, m.err
	}
	return raid6.Wrap(m.code, m.r5.Disks())
}

// convert runs the conversion workers of Algorithm 2 (one per unit of
// parallelism) and marks the migration finished when they drain.
func (m *OnlineMigrator) convert() {
	defer close(m.done)
	// Snapshot the worker count under the lock: SetParallelism rejects
	// changes after Start, but convert runs on its own goroutine and must
	// not read the field while another Start-era caller still holds mu.
	m.mu.Lock()
	workers := m.parallelism
	m.mu.Unlock()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.worker()
		}()
	}
	wg.Wait()
	m.mu.Lock()
	if m.journal != nil && m.err == nil && m.cursor == m.stripes {
		// Commit the completed conversion while still unfinished: the
		// final checkpoint, the finish record, and the atomic meta flip
		// to RAID-6 (all idempotent; a crash inside redoes the remainder
		// on the next ResumeMigration).
		j, total := m.journal, m.stripes
		m.mu.Unlock()
		err := j.finish(total)
		m.mu.Lock()
		if err != nil && m.err == nil {
			m.err = err
		}
	}
	m.finished = true
	m.endTime = time.Now()
	span, st, err := m.span, m.stats, m.err
	m.cond.Broadcast()
	m.mu.Unlock()
	attrs := []telemetry.Attr{
		telemetry.A("stripes_converted", st.StripesConverted),
		telemetry.A("stripes_redone", st.StripesRedone),
		telemetry.A("write_interrupts", st.WriteInterrupts),
		telemetry.A("diagonal_updates", st.DiagonalUpdates),
	}
	if err != nil {
		attrs = append(attrs, telemetry.A("error", err.Error()))
	}
	span.End(attrs...)
}

// waitRunnable parks the calling worker while application writes are in
// flight or the migration is paused. Caller must hold m.mu; the lock is
// held on return. Returns false if the worker should exit (error elsewhere).
//
//c56:requires mu
func (m *OnlineMigrator) waitRunnable() bool {
	for (m.pendingWrites > 0 || m.userPaused) && m.err == nil {
		m.parked++
		m.cond.Broadcast() // unblock Pause()
		m.cond.Wait()
		m.parked--
	}
	return m.err == nil
}

// worker claims stripes and converts them until the work (or the migration)
// is over.
func (m *OnlineMigrator) worker() {
	defer func() {
		m.mu.Lock()
		m.workers--
		m.cond.Broadcast()
		m.mu.Unlock()
	}()
	for {
		m.mu.Lock()
		if !m.waitRunnable() || m.nextClaim >= m.stripes {
			m.mu.Unlock()
			return
		}
		st := m.nextClaim
		m.nextClaim++
		m.inProgress[st] = true
		delete(m.dirtySet, st)
		m.mu.Unlock()

		for {
			if err := m.convertStripe(st); err != nil {
				m.mu.Lock()
				if m.err == nil {
					m.err = err
				}
				delete(m.inProgress, st)
				m.interruptLocked()
				m.cond.Broadcast()
				m.mu.Unlock()
				return
			}
			m.mu.Lock()
			m.stats.StripesConverted++
			m.tel.converted.Inc()
			m.tel.stripeRate.Inc()
			if m.dirtySet[st] {
				// A concurrent write raced with our reads; redo the
				// stripe (after letting pending writes drain).
				delete(m.dirtySet, st)
				m.stats.StripesRedone++
				m.tel.redone.Inc()
				m.span.Event("migrate.stripe_redone", telemetry.A("stripe", st))
				if !m.waitRunnable() {
					delete(m.inProgress, st)
					m.mu.Unlock()
					return
				}
				m.mu.Unlock()
				continue
			}
			break
		}
		// Stripe committed: advance the contiguous watermark.
		delete(m.inProgress, st)
		m.doneSet[st] = true
		for m.doneSet[m.cursor] {
			delete(m.doneSet, m.cursor)
			m.cursor++
		}
		m.tel.progress.Set(m.cursor)
		progress, total := m.cursor, m.stripes
		fn := m.onProgress
		j := m.journal
		throttle := m.throttle
		wake := m.wake // captured under the same lock as throttle
		if m.err != nil || m.userPaused {
			throttle = 0 // don't sleep into a state we must react to
		}
		m.cond.Broadcast()
		m.mu.Unlock()

		if j != nil {
			// progress was read before the checkpoint's disk sync, so the
			// journaled watermark never claims unsynced stripes.
			if err := j.maybeCheckpoint(progress); err != nil {
				m.mu.Lock()
				if m.err == nil {
					m.err = err
				}
				m.interruptLocked()
				m.cond.Broadcast()
				m.mu.Unlock()
				return
			}
		}
		if fn != nil {
			fn(progress, total)
		}
		if throttle > 0 {
			// Interruptible throttle: cancellation, errors and Pause close
			// wake, so a worker never holds up Wait (or Pause) for a full
			// throttle interval.
			t := time.NewTimer(throttle)
			select {
			case <-t.C:
			case <-wake:
				t.Stop()
			}
		}
	}
}

// convertStripe computes and writes the p-1 diagonal parity blocks of one
// stripe (the conversion thread's body in Algorithm 2: read the data
// blocks, calculate the diagonal parity per Equation 2, write it).
func (m *OnlineMigrator) convertStripe(st int64) error {
	p := m.code.P()
	g := m.code.Geometry()
	base := st * int64(g.Rows)
	buf := bufpool.Get(m.r5.BlockSize())
	defer bufpool.Put(buf)
	parity := bufpool.Get(m.r5.BlockSize())
	defer bufpool.Put(parity)
	newDisk := m.r5.Disks().Disk(p - 1)
	for i := 0; i < p-1; i++ {
		// Writes may be waiting between chains; let them through. A
		// migration error elsewhere (including context cancellation) aborts
		// this stripe — its partial diagonal writes sit above the watermark
		// and are redone on resume.
		m.mu.Lock()
		for m.pendingWrites > 0 && m.err == nil {
			m.cond.Wait()
		}
		if err := m.err; err != nil {
			m.mu.Unlock()
			return err
		}
		m.mu.Unlock()

		// The first contributor is copied, the rest are folded in, so the
		// XOR tally matches the planner's n-1 accounting (and the plan's
		// Metrics aggregates) exactly.
		ch := m.code.Chains()[p-1+i] // diagonal chain i
		for j, c := range ch.Covers {
			dst := parity
			if j > 0 {
				dst = buf
			}
			if err := m.readOrRepair(base+int64(c.Row), c.Col, dst); err != nil {
				return fmt.Errorf("migrate: converting stripe %d: %w", st, err)
			}
			if j > 0 {
				xorblk.Xor(parity, buf)
				m.tel.xors.Inc()
			}
		}
		if err := newDisk.Write(base+int64(ch.Parity.Row), parity); err != nil {
			return fmt.Errorf("migrate: converting stripe %d: %w", st, err)
		}
	}
	return nil
}

// readOrRepair reads one RAID-5 cell for the conversion. A latent sector
// error (or a transient that survived the disk's retry policy) is served
// by RAID-5 reconstruction and the block is rewritten in place — healing
// the medium, so the conversion leaves the array healthier than it found
// it. A fail-stopped disk cannot be repaired in place: the error
// propagates, stopping the conversion at its contiguous watermark; after
// Replace and Rebuild a new migrator resumes from there with ResumeFrom.
func (m *OnlineMigrator) readOrRepair(row int64, disk int, buf []byte) error {
	err := m.r5.Disks().Disk(disk).Read(row, buf)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, vdisk.ErrLatent) || errors.Is(err, vdisk.ErrTransient):
	default:
		return err
	}
	// The in-place heal must not interleave with an application write to the
	// same block: conversion I/O runs while Write() proceeds (that is the
	// dirtySet/redo design), and a write landing between ReconstructBlock and
	// the rewrite below would be silently overwritten with the stale
	// reconstructed value while the RAID-5 parity — already updated for the
	// new data — stays inconsistent with it. writeMu serializes the heal with
	// the write path; the stripe redo only recomputes diagonal parity and
	// could not undo either.
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	// Re-check under the lock: a racing write may already have rewritten the
	// block (clearing the latent error), in which case its current content is
	// the value to convert and there is nothing to heal.
	switch rerr := m.r5.Disks().Disk(disk).Read(row, buf); {
	case rerr == nil:
		return nil
	case errors.Is(rerr, vdisk.ErrLatent) || errors.Is(rerr, vdisk.ErrTransient):
	default:
		return rerr
	}
	if rerr := m.r5.ReconstructBlock(row, disk, buf); rerr != nil {
		return fmt.Errorf("reconstructing after %v: %w", err, rerr)
	}
	// Rewriting clears the latent error (writes remap the sector).
	if werr := m.r5.Disks().Disk(disk).Write(row, buf); werr != nil {
		return werr
	}
	m.mu.Lock()
	m.stats.FaultsRepaired++
	span := m.span
	m.mu.Unlock()
	m.tel.faultRepairs.Inc()
	span.Event("migrate.fault_repaired",
		telemetry.A("row", row), telemetry.A("disk", disk))
	return nil
}

// Read serves an application read (Algorithm 2's online thread): it never
// conflicts with the conversion.
func (m *OnlineMigrator) Read(logical int64, buf []byte) error {
	m.tel.appReads.Inc()
	return m.r5.ReadBlock(logical, buf)
}

// Write serves an application write: it interrupts the conversion thread,
// performs the RAID-5 read-modify-write, updates the diagonal parity if the
// block's stripe is already converted, and resumes the conversion.
func (m *OnlineMigrator) Write(logical int64, data []byte) error {
	if len(data) != m.r5.BlockSize() {
		return fmt.Errorf("migrate: write of %d bytes, want %d", len(data), m.r5.BlockSize())
	}
	row, disk := m.r5.Locate(logical)
	if row >= m.rows {
		return fmt.Errorf("migrate: row %d beyond migrated region (%d rows)", row, m.rows)
	}

	m.writeMu.Lock()
	defer m.writeMu.Unlock()

	m.mu.Lock()
	m.pendingWrites++ // interrupt the conversion workers
	st := row / int64(m.code.P()-1)
	needDiag := m.started && (st < m.cursor || m.doneSet[st])
	if m.inProgress[st] {
		m.dirtySet[st] = true
	}
	if m.started && !m.finished {
		m.stats.WriteInterrupts++
		m.tel.interrupts.Inc()
	}
	if needDiag {
		m.stats.DiagonalUpdates++
		m.tel.diagUpd.Inc()
	}
	m.tel.appWrites.Inc()
	m.mu.Unlock()

	err := m.writeLocked(logical, row, disk, data, needDiag)

	m.mu.Lock()
	m.pendingWrites--
	m.cond.Broadcast() // resume the conversion thread
	m.mu.Unlock()
	return err
}

func (m *OnlineMigrator) writeLocked(logical, row int64, disk int, data []byte, needDiag bool) error {
	blockSize := m.r5.BlockSize()
	old := bufpool.Get(blockSize)
	defer bufpool.Put(old)
	if err := m.r5.Disks().Disk(disk).Read(row, old); err != nil {
		// Serve the old value degraded: read-modify-write must go on even
		// when the block's disk failed or the sector is bad — the RAID-5
		// write path below handles the actual update.
		if !errors.Is(err, vdisk.ErrFailed) && !errors.Is(err, vdisk.ErrLatent) &&
			!errors.Is(err, vdisk.ErrTransient) {
			return err
		}
		if rerr := m.r5.ReconstructBlock(row, disk, old); rerr != nil {
			return fmt.Errorf("migrate: degraded old-value read: %w", rerr)
		}
	}
	if err := m.r5.WriteBlock(logical, data); err != nil {
		return err
	}
	if !needDiag {
		return nil
	}
	// Apply the XOR delta to the diagonal parity of the block's chain.
	delta := bufpool.Get(blockSize)
	defer bufpool.Put(delta)
	xorblk.XorInto(delta, old, data)
	m.tel.redirectXORs.Add(2) // delta + fold into the diagonal parity
	rows := int64(m.code.P() - 1)
	inRow := int(row % rows)
	chainIdx := m.code.DiagonalChainOf(inRow, disk)
	addr := (row/rows)*rows + int64(chainIdx)
	newDisk := m.r5.Disks().Disk(m.code.P() - 1)
	parity := bufpool.Get(blockSize)
	defer bufpool.Put(parity)
	if err := newDisk.Read(addr, parity); err != nil {
		return err
	}
	xorblk.Xor(parity, delta)
	return newDisk.Write(addr, parity)
}

// Downgrade converts a Code 5-6 RAID-6 back to a RAID-5 (the paper's
// RAID-6→RAID-5 direction): it detaches the diagonal-parity disk and
// returns it. The remaining disks form the original RAID-5 unchanged.
func Downgrade(a *raid6.Array) error {
	if _, ok := a.Code().(*core.Code56); !ok {
		return fmt.Errorf("migrate: downgrade requires Code 5-6, got %s", a.Code().Name())
	}
	if a.Disks().RemoveLast() == nil {
		return errors.New("migrate: empty array")
	}
	return nil
}
