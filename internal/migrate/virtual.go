package migrate

import (
	"fmt"

	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/raid5"
)

// VirtualConversion builds the Code 5-6 direct conversion for a RAID-5 of
// any m >= 3 disks (paper §IV-B2): the stripe geometry uses p = the
// smallest prime >= m+1, and v = p-m-1 virtual disks (all-NULL columns that
// do not physically exist) pad the layout. The resulting RAID-6 has m+1
// real disks.
func VirtualConversion(m int, src raid5.Layout) (Conversion, int, error) {
	if m < 3 {
		return Conversion{}, 0, fmt.Errorf("migrate: source RAID-5 needs >= 3 disks, got %d", m)
	}
	p := layout.PrimeAtLeast(m + 1)
	v := p - m - 1
	code, err := core.New(p)
	if err != nil {
		return Conversion{}, 0, err
	}
	return Conversion{M: m, SourceLayout: src, Code: code, Approach: Direct, Virtual: v}, v, nil
}

// NewVirtualPlan plans the Code 5-6 direct conversion for a RAID-5 of any
// m >= 3 disks, inserting virtual disks as needed.
func NewVirtualPlan(m int, src raid5.Layout) (*Plan, error) {
	conv, _, err := VirtualConversion(m, src)
	if err != nil {
		return nil, err
	}
	return NewPlan(conv)
}

// Code56StorageEfficiency evaluates the paper's Equation 6: the storage
// efficiency of a RAID-6 built from a RAID-5 of m disks with Code 5-6 and
// virtual disks, (n-1)(n-2) / ((n-1)n + v) with n = m+1 real disks.
func Code56StorageEfficiency(m int) float64 {
	n := m + 1
	p := layout.PrimeAtLeast(n)
	v := p - n
	return float64((n-1)*(n-2)) / float64((n-1)*n+v)
}

// TypicalRAID6StorageEfficiency is the MDS optimum for m+1 disks:
// (m-1)/(m+1). Fig. 18 plots it against Code56StorageEfficiency.
func TypicalRAID6StorageEfficiency(m int) float64 {
	return float64(m-1) / float64(m+1)
}
