package migrate

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"code56/internal/telemetry"
)

// perStripeXORs is the conversion XOR cost of one stripe: folding each
// diagonal chain costs one XOR per cover beyond the first (the same n-1
// accounting the offline planner uses).
func perStripeXORs(m *OnlineMigrator) int64 {
	p := m.code.P()
	var n int64
	for _, ch := range m.code.Chains()[p-1 : 2*(p-1)] {
		n += int64(len(ch.Covers) - 1)
	}
	return n
}

// TestConcurrentMigrationTelemetry runs an online migration with concurrent
// application readers and writers against a private registry and checks the
// counters stay coherent under the race detector: snapshots taken while the
// migration runs never regress and never show a torn histogram, and the
// final counters equal both the migrator's own stats and the number of
// operations the application actually issued.
func TestConcurrentMigrationTelemetry(t *testing.T) {
	const m, stripes = 4, 64
	p := m + 1
	rows := int64(stripes * (p - 1))
	blocks := rows * int64(m-1)
	a, want := newLoadedRAID5(t, m, rows, 7)

	reg := telemetry.NewRegistry()
	ring := telemetry.NewRingSink(4096)
	tr := telemetry.NewTracer(ring)
	a.SetTelemetry(reg, tr)

	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	mig.SetTelemetry(reg, tr)
	mig.SetThrottle(50 * time.Microsecond) // keep conversion in flight while app I/O flows
	if err := mig.SetParallelism(2); err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}

	// Snapshot poller: counters are monotonic, so no snapshot may show a
	// value below an earlier one, and a histogram's Count must always
	// equal the sum of its buckets.
	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		prev := make(map[string]int64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot()
			for name, v := range snap.Counters {
				if v < prev[name] {
					t.Errorf("counter %s regressed: %d then %d", name, prev[name], v)
					return
				}
				prev[name] = v
			}
			for name, h := range snap.Histograms {
				var sum int64
				for _, c := range h.Counts {
					sum += c
				}
				if sum != h.Count {
					t.Errorf("torn histogram snapshot %s: count %d, bucket sum %d", name, h.Count, sum)
					return
				}
			}
		}
	}()

	var reads, writes int64
	var mu sync.Mutex // orders mig.Write against the `want` bookkeeping
	var appWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		appWG.Add(1)
		go func(g int) {
			defer appWG.Done()
			r := rand.New(rand.NewSource(int64(100 + g)))
			buf := make([]byte, 32)
			for i := 0; i < 200; i++ {
				L := r.Int63n(blocks)
				if r.Intn(2) == 0 {
					b := make([]byte, 32)
					r.Read(b)
					mu.Lock()
					err := mig.Write(L, b)
					if err == nil {
						want[L] = b
					}
					mu.Unlock()
					if err != nil {
						t.Errorf("app write %d: %v", L, err)
						return
					}
					atomic.AddInt64(&writes, 1)
				} else {
					if err := mig.Read(L, buf); err != nil {
						t.Errorf("app read %d: %v", L, err)
						return
					}
					atomic.AddInt64(&reads, 1)
				}
			}
		}(g)
	}
	appWG.Wait()
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	pollWG.Wait()

	snap := reg.Snapshot()
	c := snap.Counters
	st := mig.Stats()
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"migrate.stripes_converted", c["migrate.stripes_converted"], st.StripesConverted},
		{"migrate.stripes_redone", c["migrate.stripes_redone"], st.StripesRedone},
		{"migrate.write_interrupts", c["migrate.write_interrupts"], st.WriteInterrupts},
		{"migrate.diagonal_updates", c["migrate.diagonal_updates"], st.DiagonalUpdates},
		{"migrate.app_reads", c["migrate.app_reads"], reads},
		{"migrate.app_writes", c["migrate.app_writes"], writes},
		{"migrate.conversion_xors", c["migrate.conversion_xors"], st.StripesConverted * perStripeXORs(mig)},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
	if got := snap.Gauges["migrate.progress_stripes"]; got != int64(stripes) {
		t.Errorf("progress watermark gauge = %d, want %d", got, stripes)
	}

	// The span trace must bracket the migration: one begin and one end of
	// migrate.online, in that order.
	var begin, end int
	for _, ev := range ring.Events() {
		if ev.Name != "migrate.online" {
			continue
		}
		switch ev.Phase {
		case "begin":
			begin++
			if end > 0 {
				t.Error("migrate.online ended before it began")
			}
		case "end":
			end++
		}
	}
	if begin != 1 || end != 1 {
		t.Errorf("migrate.online span: %d begins, %d ends, want 1 each", begin, end)
	}

	verifyConverted(t, mig, want, stripes, "telemetry")
}
