package migrate

import (
	"context"
	"fmt"
	"math/rand"

	"code56/internal/bufpool"
	"code56/internal/layout"
	"code56/internal/parallel"
	"code56/internal/telemetry"
	"code56/internal/vdisk"
	"code56/internal/xorblk"
)

// Executor replays a Plan against simulated disks, so that (a) the plan's
// I/O accounting is validated against real per-disk counters and (b) the
// conversion's correctness is validated by verifying every resulting RAID-6
// stripe and the integrity of all user data.
type Executor struct {
	plan      *Plan
	blockSize int
	disks     *vdisk.Array
	geom      layout.Geometry
	// want remembers every source data block for post-conversion
	// integrity checks, keyed by stripe and cell.
	want map[int]map[layout.Coord][]byte

	reg *telemetry.Registry
	tr  *telemetry.Tracer
}

// SetTelemetry rebinds the executor's counters and tracer (and those of
// its disks). Pass nil for either argument to use the process-wide
// defaults. Call before Run.
func (e *Executor) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	e.reg, e.tr = reg, tr
	e.disks.SetTelemetry(reg, tr)
}

// NewExecutor sets up source disks populated with random data laid out per
// the plan's overlays (data blocks plus consistent RAID-5 parities), plus
// the disks the conversion adds. Disk i serves target column Virtual+i.
func NewExecutor(plan *Plan, blockSize int, seed int64) *Executor {
	e, err := NewExecutorBackend(plan, blockSize, seed, vdisk.MemBackend{})
	if err != nil {
		// MemBackend cannot fail to open a store.
		panic(err)
	}
	return e
}

// NewExecutorBackend is NewExecutor with the disks opened on the given
// backend, so offline conversions can run over durable files and their
// result directories reopened later.
func NewExecutorBackend(plan *Plan, blockSize int, seed int64, backend vdisk.Backend) (*Executor, error) {
	e := &Executor{
		plan:      plan,
		blockSize: blockSize,
		geom:      plan.Conv.Code.Geometry(),
		want:      make(map[int]map[layout.Coord][]byte),
	}
	realCols := e.geom.Cols - plan.Virtual
	disks, err := vdisk.NewArrayBackend(realCols, blockSize, backend)
	if err != nil {
		return nil, err
	}
	e.disks = disks

	r := rand.New(rand.NewSource(seed))
	for st := 0; st < plan.Period; st++ {
		ov := buildOverlay(plan.Conv, st)
		e.want[st] = make(map[layout.Coord][]byte)
		// Per-row parity accumulators.
		parity := make(map[int][]byte)
		for rowIdx, row := range ov.DataRows {
			parity[row] = make([]byte, blockSize)
			_ = rowIdx
		}
		for row, classes := range ov.Class {
			for col, cl := range classes {
				if cl != OldData {
					continue
				}
				b := make([]byte, blockSize)
				r.Read(b)
				c := layout.Coord{Row: row, Col: col}
				e.want[st][c] = b
				e.mustWrite(st, c, b)
				if acc, ok := parity[row]; ok {
					xorblk.Xor(acc, b)
				}
			}
		}
		for i, row := range ov.DataRows {
			c := layout.Coord{Row: row, Col: ov.OldParityCol[i]}
			e.mustWrite(st, c, parity[row])
		}
	}
	e.disks.ResetStats()
	return e, nil
}

// Disks exposes the executor's disk array (for stats assertions).
func (e *Executor) Disks() *vdisk.Array { return e.disks }

func (e *Executor) disk(c layout.Coord) *vdisk.Disk {
	return e.disks.Disk(c.Col - e.plan.Virtual)
}

func (e *Executor) addr(st int, c layout.Coord) int64 {
	return int64(st)*int64(e.geom.Rows) + int64(c.Row)
}

func (e *Executor) mustWrite(st int, c layout.Coord, b []byte) {
	if err := e.disk(c).Write(e.addr(st, c), b); err != nil {
		panic(err)
	}
}

// imageKey identifies a cached block.
type imageKey struct {
	stripe int
	cell   layout.Coord
}

// Run executes the plan's operations in order. It returns an error if an
// operation needs a block that is neither scheduled for reading nor cached —
// which would mean the planner's read accounting is wrong. RunContext is the
// concurrent, cancelable form; Run keeps the original serial signature.
func (e *Executor) Run() error {
	return e.RunContext(context.Background(), parallel.WithWorkers(1))
}

// RunContext executes the plan with independent stripes of each phase
// spread over internal/parallel's pool (parallel.WithWorkers). Every
// operation of a plan reads, caches and writes blocks of its own stripe
// only — the conversion-memory cache is keyed by stripe — so stripes within
// a phase commute; phases stay strictly ordered (a barrier between them
// models the plan's "conversion memory drains between phases" rule). The
// telemetry counters and the resulting disk image are identical to a serial
// Run for any worker count.
func (e *Executor) RunContext(ctx context.Context, opts ...parallel.Option) error {
	reads := e.reg.Counter("migrate.exec.reads")
	writes := e.reg.Counter("migrate.exec.writes")
	xors := e.reg.Counter("migrate.exec.xors")

	// Group ops into contiguous phases, then by stripe within each phase
	// (first-appearance order, op order within a stripe preserved).
	type phaseGroup struct {
		phase   int
		stripes [][]Op
	}
	var (
		phases []*phaseGroup
		cur    *phaseGroup
		slot   map[int]int
	)
	for _, op := range e.plan.Ops {
		if cur == nil || op.Phase != cur.phase {
			cur = &phaseGroup{phase: op.Phase}
			slot = make(map[int]int)
			phases = append(phases, cur)
		}
		j, ok := slot[op.Stripe]
		if !ok {
			j = len(cur.stripes)
			slot[op.Stripe] = j
			cur.stripes = append(cur.stripes, nil)
		}
		cur.stripes[j] = append(cur.stripes[j], op)
	}

	for _, pg := range phases {
		phaseSpan := e.tr.StartSpan("migrate.exec.phase",
			telemetry.A("phase", pg.phase),
			telemetry.A("name", e.plan.PhaseNames[pg.phase]),
			telemetry.A("conversion", e.plan.Conv.Label()))
		// One stripe group's working set spans the stripe's rows on every
		// real disk; batch claims to that footprint (parallel.ForEachBatch).
		stripeBytes := int64(e.geom.Rows) * int64(e.disks.Len()) * int64(e.blockSize)
		err := parallel.ForEachBatch(ctx, int64(len(pg.stripes)), stripeBytes, func(i int64) error {
			return e.runStripeOps(pg.stripes[i], reads, writes, xors)
		}, opts...)
		if err != nil {
			phaseSpan.End(telemetry.A("error", err.Error()))
			return err
		}
		phaseSpan.End()
	}
	return nil
}

// runStripeOps executes one stripe's ops of one phase against its private
// conversion-memory cache. Conversion-memory block buffers are rented from
// bufpool for the duration of the stripe; the rented list (not the image
// map) owns them, because OpMigrate stores the same buffer under two keys.
func (e *Executor) runStripeOps(ops []Op, reads, writes, xors *telemetry.Counter) error {
	image := make(map[imageKey][]byte, len(ops))
	rented := make([][]byte, 0, len(ops)+1)
	defer func() {
		for _, b := range rented {
			bufpool.Put(b)
		}
	}()
	zero := bufpool.GetZero(e.blockSize)
	rented = append(rented, zero)
	var contribs [][]byte
	for _, op := range ops {
		for _, c := range op.Reads {
			buf := bufpool.Get(e.blockSize)
			rented = append(rented, buf)
			if err := e.disk(c).Read(e.addr(op.Stripe, c), buf); err != nil {
				return err
			}
			reads.Inc()
			image[imageKey{op.Stripe, c}] = buf
		}
		switch op.Kind {
		case OpReuse:
			// Zero I/O by design.
		case OpInvalidate:
			if err := e.disk(op.Cell).Write(e.addr(op.Stripe, op.Cell), zero); err != nil {
				return err
			}
			writes.Inc()
			image[imageKey{op.Stripe, op.Cell}] = zero
		case OpMigrate:
			b, ok := image[imageKey{op.Stripe, op.From}]
			if !ok {
				return fmt.Errorf("migrate: op needs %v of stripe %d but it is neither read nor cached", op.From, op.Stripe)
			}
			if err := e.disk(op.Cell).Write(e.addr(op.Stripe, op.Cell), b); err != nil {
				return err
			}
			writes.Inc()
			image[imageKey{op.Stripe, op.Cell}] = b
			e.disk(op.From).Trim(e.addr(op.Stripe, op.From))
		case OpGenerate:
			acc := bufpool.Get(e.blockSize)
			rented = append(rented, acc)
			contribs = contribs[:0]
			for _, c := range op.Contribs {
				b, ok := image[imageKey{op.Stripe, c}]
				if !ok {
					return fmt.Errorf("migrate: generate %v needs %v of stripe %d but it is neither read nor cached", op.Cell, c, op.Stripe)
				}
				contribs = append(contribs, b)
			}
			xorblk.XorMulti(acc, contribs...)
			xors.Add(int64(op.XORs))
			if err := e.disk(op.Cell).Write(e.addr(op.Stripe, op.Cell), acc); err != nil {
				return err
			}
			writes.Inc()
			image[imageKey{op.Stripe, op.Cell}] = acc
		}
	}
	return nil
}

// VerifyResult checks that every stripe of the converted array satisfies all
// of the target code's parity chains (virtual cells read as zero) and that
// every source data block survived unchanged. Call after Run.
func (e *Executor) VerifyResult() error {
	code := e.plan.Conv.Code
	for st := 0; st < e.plan.Period; st++ {
		s := layout.NewStripe(e.geom, e.blockSize)
		for row := 0; row < e.geom.Rows; row++ {
			for col := e.plan.Virtual; col < e.geom.Cols; col++ {
				c := layout.Coord{Row: row, Col: col}
				if err := e.disk(c).Read(e.addr(st, c), s.Block(c)); err != nil {
					return err
				}
			}
		}
		if !layout.Verify(code, s) {
			return fmt.Errorf("migrate: stripe %d of %s is not a consistent RAID-6 stripe", st, e.plan.Conv.Label())
		}
		for c, want := range e.want[st] {
			if !xorblk.Equal(s.Block(c), want) {
				return fmt.Errorf("migrate: stripe %d: data block %v corrupted by conversion", st, c)
			}
		}
	}
	return nil
}

// DiskIOTotals returns the reads and writes each disk served during Run
// (indexes are real-disk indexes: target column minus Virtual).
func (e *Executor) DiskIOTotals() (reads, writes []int) {
	n := e.disks.Len()
	reads = make([]int, n)
	writes = make([]int, n)
	for i := 0; i < n; i++ {
		s := e.disks.Disk(i).Stats()
		reads[i] = int(s.Reads)
		writes[i] = int(s.Writes)
	}
	return reads, writes
}
