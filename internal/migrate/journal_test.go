package migrate

import (
	"errors"
	"math/rand"
	"testing"

	"code56/internal/durable"
	"code56/internal/raid5"
	"code56/internal/vdisk"
	"code56/internal/vdisk/filestore"
)

// newFileRAID5 builds a file-backed RAID-5 (p-1 disks) with rows of
// random data and consistent parity, and writes its raid5 meta.json.
func newFileRAID5(t *testing.T, dir string, p int, rows int64, blockSize int) *raid5.Array {
	t.Helper()
	fb, err := filestore.NewBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	disks, err := vdisk.NewArrayBackend(p-1, blockSize, fb)
	if err != nil {
		t.Fatal(err)
	}
	a, err := raid5.Wrap(disks, p-1, raid5.LeftAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	buf := make([]byte, blockSize)
	for l := int64(0); l < rows*int64(a.M()-1); l++ {
		r.Read(buf)
		if err := a.WriteBlock(l, buf); err != nil {
			t.Fatal(err)
		}
	}
	meta := durable.Meta{
		Version:   durable.MetaVersion,
		Kind:      durable.KindRAID5,
		BlockSize: blockSize,
		Disks:     p - 1,
		Layout:    raid5.LeftAsymmetric.String(),
		Rows:      rows,
	}
	if err := durable.Save(dir, meta); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestJournaledMigrationCommits(t *testing.T) {
	dir := t.TempDir()
	const p, rows, bs = 5, 8, 512
	a := newFileRAID5(t, dir, p, rows, bs)

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.State(); st.Begun || st.Finished || st.MetaFlipped {
		t.Fatalf("fresh journal state: %+v", st)
	}
	if err := j.SetCheckpointInterval(1); err != nil {
		t.Fatal(err)
	}
	m, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	if m.Journal() != j {
		t.Fatal("journal not attached")
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	r6, err := m.Result()
	if err != nil {
		t.Fatal(err)
	}
	for st := int64(0); st < rows/int64(p-1); st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil || !ok {
			t.Fatalf("stripe %d: ok=%v err=%v", st, ok, err)
		}
	}
	if st := j.State(); !st.Finished || !st.MetaFlipped {
		t.Fatalf("post-commit journal state: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The directory now identifies as a RAID-6...
	meta, err := durable.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kind != durable.KindRAID6 || meta.Manifest == nil || meta.Manifest.P != p {
		t.Fatalf("flipped meta: %+v", meta)
	}
	// ...and a reopened journal refuses to attach.
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	m2, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.AttachJournal(j2); !errors.Is(err, ErrMigrationComplete) {
		t.Fatalf("attach to complete journal: %v", err)
	}
}

func TestJournalCheckpointAndResumeState(t *testing.T) {
	dir := t.TempDir()
	const p, rows, bs = 5, 8, 512
	a := newFileRAID5(t, dir, p, rows, bs)

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.SetCheckpointInterval(1)
	begin := BeginRecord{Rows: rows, BlockSize: bs, DataDisks: p - 1, Layout: raid5.LeftAsymmetric.String()}
	if err := j.begin(begin); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	j.syncDisks = a.Disks().Sync
	j.mu.Unlock()
	if err := j.maybeCheckpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay finds the begin record and the durable watermark.
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := j2.State()
	if !st.Begun || st.Cursor != 1 || st.Finished {
		t.Fatalf("replayed state: %+v", st)
	}
	if st.Begin != begin {
		t.Fatalf("begin record: %+v != %+v", st.Begin, begin)
	}

	// Resume from the replayed cursor: the remaining stripe converts and
	// the meta flip lands.
	m, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ResumeFrom(st.Cursor); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachJournal(j2); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := j2.State(); !st.MetaFlipped {
		t.Fatalf("resumed run did not flip meta: %+v", st)
	}
	j2.Close()
}

func TestAttachJournalValidation(t *testing.T) {
	dir := t.TempDir()
	const p, rows, bs = 5, 8, 512
	a := newFileRAID5(t, dir, p, rows, bs)

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.begin(BeginRecord{Rows: rows, BlockSize: bs, DataDisks: p - 1, Layout: "left-asymmetric"}); err != nil {
		t.Fatal(err)
	}
	// Wrong rows.
	m, _ := NewOnlineMigrator(a, rows*2)
	if err := m.AttachJournal(j); err == nil {
		t.Fatal("rows mismatch accepted")
	}
	// Cursor mismatch (journal says 0, migrator resumes from 1).
	m2, _ := NewOnlineMigrator(a, rows)
	m2.ResumeFrom(1)
	if err := m2.AttachJournal(j); err == nil {
		t.Fatal("cursor mismatch accepted")
	}
	// Interval must be positive.
	if err := j.SetCheckpointInterval(0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

// TestFinishIsIdempotent drives the finish-but-not-flipped crash window:
// a journal whose log records finish but not meta-done must redo only
// the meta flip when a resumed (trivially complete) migration commits.
func TestFinishIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	const p, rows, bs = 5, 8, 512
	a := newFileRAID5(t, dir, p, rows, bs)
	total := rows / int64(p-1)

	// Run the conversion but stop the commit between the finish record
	// and the meta flip, as a crash there would.
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.SetCheckpointInterval(1)
	if err := j.begin(BeginRecord{Rows: rows, BlockSize: bs, DataDisks: p - 1, Layout: "left-asymmetric"}); err != nil {
		t.Fatal(err)
	}
	m, _ := NewOnlineMigrator(a, rows)
	if err := m.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	// Forge the crash window: rewind the journal's in-memory flip flag
	// and delete the meta-done record's effect by rewriting meta.json
	// back to RAID-5. (A real crash leaves exactly this: finish durable,
	// flip not.)
	if err := durable.Save(dir, durable.Meta{
		Version: durable.MetaVersion, Kind: durable.KindRAID5,
		BlockSize: bs, Disks: p - 1,
		Layout: "left-asymmetric", Rows: rows,
	}); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	j.state.MetaFlipped = false
	j.mu.Unlock()
	if err := j.finish(total); err != nil {
		t.Fatal(err)
	}
	meta, err := durable.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Kind != durable.KindRAID6 {
		t.Fatalf("redone flip: %+v", meta)
	}
	j.Close()
}
