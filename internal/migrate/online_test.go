package migrate

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"code56/internal/core"
	"code56/internal/layout"
	"code56/internal/raid5"
	"code56/internal/raid6"
	"code56/internal/vdisk"
)

// newLoadedRAID5 builds a RAID-5 of m disks with `rows` rows of random data
// and returns the array plus the expected block contents.
func newLoadedRAID5(t *testing.T, m int, rows int64, seed int64) (*raid5.Array, map[int64][]byte) {
	t.Helper()
	a, err := raid5.New(m, 32, raid5.LeftAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	want := make(map[int64][]byte)
	for L := int64(0); L < rows*int64(m-1); L++ {
		b := make([]byte, 32)
		r.Read(b)
		want[L] = b
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	return a, want
}

func verifyConverted(t *testing.T, mig *OnlineMigrator, want map[int64][]byte, stripes int64, ctx string) *raid6.Array {
	t.Helper()
	r6, err := mig.Result()
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	for st := int64(0); st < stripes; st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		if !ok {
			t.Fatalf("%s: stripe %d inconsistent after online conversion", ctx, st)
		}
	}
	buf := make([]byte, 32)
	for L, w := range want {
		if err := mig.Read(L, buf); err != nil {
			t.Fatalf("%s: read %d: %v", ctx, L, err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("%s: block %d corrupted", ctx, L)
		}
	}
	return r6
}

func TestOnlineMigrationQuiet(t *testing.T) {
	const rows = 16 // 4 stripes at p=5
	a, want := newLoadedRAID5(t, 4, rows, 1)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	if c, total := mig.Progress(); c != total || total != 4 {
		t.Fatalf("progress %d/%d, want 4/4", c, total)
	}
	verifyConverted(t, mig, want, 4, "quiet")
}

// TestOnlineMigrationUnderLoad drives concurrent reads and writes while the
// conversion runs (run with -race). Afterwards every stripe must verify and
// every block must hold its final written value.
func TestOnlineMigrationUnderLoad(t *testing.T) {
	const (
		m       = 6 // p = 7
		rows    = 6 * 8
		blocks  = rows * (m - 1)
		writers = 4
	)
	a, want := newLoadedRAID5(t, m, rows, 2)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	// Pause before Start so the workers park before converting anything:
	// the write below then provably lands while the conversion is live,
	// making the WriteInterrupts assertion deterministic (on a fast machine
	// the 8-stripe conversion can otherwise finish before any writer
	// goroutine is scheduled).
	mig.Pause()
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	guaranteed := make([]byte, 32)
	for i := range guaranteed {
		guaranteed[i] = 0x5A
	}
	if err := mig.Write(0, guaranteed); err != nil {
		t.Fatal(err)
	}
	want[0] = guaranteed
	mig.Resume()

	var mu sync.Mutex // guards want
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			buf := make([]byte, 32)
			for i := 0; i < 150; i++ {
				L := int64(r.Intn(blocks))
				if r.Intn(2) == 0 {
					if err := mig.Read(L, buf); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				b := make([]byte, 32)
				r.Read(b)
				mu.Lock()
				if err := mig.Write(L, b); err != nil {
					mu.Unlock()
					t.Error(err)
					return
				}
				want[L] = b
				mu.Unlock()
			}
		}(int64(100 + w))
	}
	wg.Wait()
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	st := mig.Stats()
	if st.StripesConverted < 8 {
		t.Errorf("stats: %d stripes converted, want >= 8", st.StripesConverted)
	}
	if st.StripesConverted != 8+st.StripesRedone {
		t.Errorf("stats inconsistent: converted %d != stripes 8 + redone %d", st.StripesConverted, st.StripesRedone)
	}
	if st.WriteInterrupts == 0 {
		t.Error("stats: no write interrupts recorded under concurrent load")
	}
	// Writes after the conversion finished must also maintain RAID-6
	// consistency.
	post := make([]byte, 32)
	for i := range post {
		post[i] = 0xAB
	}
	if err := mig.Write(3, post); err != nil {
		t.Fatal(err)
	}
	want[3] = post
	verifyConverted(t, mig, want, rows/(m), "under load")
}

func TestOnlineMigrationRejectsBadSetups(t *testing.T) {
	a, _ := raid5.New(5, 32, raid5.LeftAsymmetric) // 5+1 = 6 not prime
	if _, err := NewOnlineMigrator(a, 5); err == nil {
		t.Error("non-prime disk count accepted")
	}
	c, _ := raid5.New(4, 32, raid5.LeftAsymmetric)
	if _, err := NewOnlineMigrator(c, 5); err == nil {
		t.Error("non-multiple row count accepted")
	}
	if _, err := NewOnlineMigrator(c, 0); err == nil {
		t.Error("zero rows accepted")
	}
	mig, err := NewOnlineMigrator(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mig.Result(); err == nil {
		t.Error("Result before conversion accepted")
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err == nil {
		t.Error("double Start accepted")
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if err := mig.Write(999999, buf); err == nil {
		t.Error("write beyond migrated region accepted")
	}
}

// TestBidirectional converts RAID-5 → RAID-6 → RAID-5 and checks the data
// still reads back through the RAID-5 view (the paper's §IV-A: downgrading
// is deleting the last column).
func TestBidirectional(t *testing.T) {
	const rows = 8
	a, want := newLoadedRAID5(t, 4, rows, 3)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	r6 := verifyConverted(t, mig, want, 2, "pre-downgrade")
	if err := Downgrade(r6); err != nil {
		t.Fatal(err)
	}
	if a.Disks().Len() != 4 {
		t.Fatalf("disk count %d after downgrade, want 4", a.Disks().Len())
	}
	buf := make([]byte, 32)
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d corrupted by downgrade", L)
		}
	}
	for row := int64(0); row < rows; row++ {
		ok, err := a.VerifyRow(row)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("row %d inconsistent after downgrade", row)
		}
	}
}

// TestDoubleFailureAfterMigration is the paper's motivation end to end: a
// RAID-5 cannot survive two disk failures, but after online migration to
// Code 5-6 the same data does.
func TestDoubleFailureAfterMigration(t *testing.T) {
	const rows = 16
	a, want := newLoadedRAID5(t, 4, rows, 4)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	r6, err := mig.Result()
	if err != nil {
		t.Fatal(err)
	}
	r6.Disks().Disk(1).Fail()
	r6.Disks().Disk(3).Fail()
	buf := make([]byte, 32)
	// Degraded reads must still serve every RAID-5-addressed block. The
	// RAID-5 path cannot (two failures); the RAID-6 view can, using the
	// shared disk layout: RAID-5 (row, disk) is cell (row mod p-1, disk)
	// of stripe row/(p-1).
	p := mig.Code().P()
	for L, w := range want {
		row, disk := a.Locate(L)
		cell := layout.Coord{Row: int(row % int64(p-1)), Col: disk}
		if err := r6.ReadCell(row/int64(p-1), cell, buf); err != nil {
			t.Fatalf("degraded read %d: %v", L, err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("degraded read %d wrong contents", L)
		}
	}
	// Rebuild both disks and verify full recovery.
	r6.Disks().Disk(1).Replace()
	r6.Disks().Disk(3).Replace()
	if err := r6.Rebuild(rows/4, 1, 3); err != nil {
		t.Fatal(err)
	}
	for L, w := range want {
		if err := mig.Read(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d wrong after double-failure rebuild", L)
		}
	}
}

// TestOnlineMigrationDiskFailureSurfaces: a disk failing mid-conversion
// must surface as a clean error from Wait (no hang, no panic). A real
// deployment would pause and rebuild; the migrator's job is to stop
// coherently.
func TestOnlineMigrationDiskFailureSurfaces(t *testing.T) {
	a, _ := newLoadedRAID5(t, 4, 4*64, 9)
	mig, err := NewOnlineMigrator(a, 4*64)
	if err != nil {
		t.Fatal(err)
	}
	a.Disks().Disk(2).Fail() // fails before conversion starts
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err == nil {
		t.Fatal("conversion with a failed disk should report an error")
	}
	if _, err := mig.Result(); err == nil {
		t.Fatal("Result after failed conversion should error")
	}
}

// TestPauseResumeAndProgress: Pause parks the conversion at a stripe
// boundary while application I/O continues; Resume completes it; the
// progress callback fires once per stripe.
func TestPauseResumeAndProgress(t *testing.T) {
	const rows = 4 * 8
	a, want := newLoadedRAID5(t, 4, rows, 21)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls := 0
	mig.SetProgressFunc(func(done, total int64) {
		mu.Lock()
		calls++
		mu.Unlock()
		if total != 8 || done < 1 || done > 8 {
			t.Errorf("progress %d/%d out of range", done, total)
		}
	})
	mig.SetThrottle(time.Millisecond)
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	mig.Pause()
	frozen, _ := mig.Progress()
	// Application I/O proceeds while paused.
	b := make([]byte, 32)
	for i := range b {
		b[i] = 0x5A
	}
	if err := mig.Write(1, b); err != nil {
		t.Fatal(err)
	}
	want[1] = b
	if got, _ := mig.Progress(); got != frozen {
		t.Errorf("progress moved from %d to %d while paused", frozen, got)
	}
	mig.Resume()
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	gotCalls := calls
	mu.Unlock()
	if int64(gotCalls) != 8-frozen {
		t.Errorf("progress callback fired %d times, want %d", gotCalls, 8-frozen)
	}
	verifyConverted(t, mig, want, 8, "pause/resume")
}

// TestPauseBeforeFinishIsSafe: pausing right around completion must not
// hang.
func TestPauseAroundCompletion(t *testing.T) {
	const rows = 4
	a, _ := newLoadedRAID5(t, 4, rows, 22)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	mig.Pause() // after completion: returns immediately
	mig.Resume()
}

// TestCrashResumeFromSnapshot: migrate halfway, snapshot the disks
// ("crash"), restore into a fresh array, resume from the saved cursor, and
// verify the final RAID-6 — the durability story for long migrations.
func TestCrashResumeFromSnapshot(t *testing.T) {
	const rows = 4 * 10
	a, want := newLoadedRAID5(t, 4, rows, 23)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	// Pause the moment the 4th stripe completes.
	paused := make(chan struct{})
	var once sync.Once
	mig.SetProgressFunc(func(done, total int64) {
		if done == 4 {
			once.Do(func() { close(paused) })
		}
	})
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	<-paused
	mig.Pause()
	cursor, _ := mig.Progress()
	if cursor < 4 {
		t.Fatalf("cursor %d after 4 stripes", cursor)
	}

	// "Crash": snapshot the disks mid-migration.
	var snap bytes.Buffer
	if err := a.Disks().Save(&snap); err != nil {
		t.Fatal(err)
	}
	mig.Resume()
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}

	// Restore and resume on a fresh process's state.
	disks, err := vdisk.Load(&snap)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := raid5.Wrap(disks, 4, raid5.LeftAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	mig2, err := NewOnlineMigrator(restored, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig2.ResumeFrom(cursor); err != nil {
		t.Fatal(err)
	}
	if err := mig2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig2.Wait(); err != nil {
		t.Fatal(err)
	}
	if disks.Len() != 5 {
		t.Fatalf("resumed migration has %d disks, want 5 (no duplicate add)", disks.Len())
	}
	verifyConverted(t, mig2, want, 10, "crash-resume")

	// ResumeFrom validation.
	mig3, _ := NewOnlineMigrator(restored, rows)
	if err := mig3.ResumeFrom(-1); err == nil {
		t.Error("negative resume cursor accepted")
	}
	if err := mig3.ResumeFrom(999); err == nil {
		t.Error("out-of-range resume cursor accepted")
	}
}

// TestParallelMigrationUnderLoad runs the conversion with 4 concurrent
// stripe workers while application reads and writes hammer the array
// (run with -race). Everything must verify afterwards.
func TestParallelMigrationUnderLoad(t *testing.T) {
	const (
		m      = 6
		rows   = 6 * 16
		blocks = rows * (m - 1)
	)
	a, want := newLoadedRAID5(t, m, rows, 31)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	if err := mig.SetParallelism(0); err == nil {
		t.Fatal("parallelism 0 accepted")
	}
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig.SetParallelism(2); err == nil {
		t.Fatal("SetParallelism after Start accepted")
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			buf := make([]byte, 32)
			for i := 0; i < 200; i++ {
				L := int64(r.Intn(blocks))
				if r.Intn(3) == 0 {
					if err := mig.Read(L, buf); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				b := make([]byte, 32)
				r.Read(b)
				mu.Lock()
				if err := mig.Write(L, b); err != nil {
					mu.Unlock()
					t.Error(err)
					return
				}
				want[L] = b
				mu.Unlock()
			}
		}(int64(300 + w))
	}
	wg.Wait()
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	if c, total := mig.Progress(); c != total {
		t.Fatalf("progress %d/%d after Wait", c, total)
	}
	st := mig.Stats()
	if st.StripesConverted < 16 {
		t.Errorf("converted %d stripes, want >= 16", st.StripesConverted)
	}
	verifyConverted(t, mig, want, 16, "parallel under load")
}

// TestParallelQuietMatchesSerial: with no application traffic, parallel and
// serial conversions produce byte-identical arrays.
func TestParallelQuietMatchesSerial(t *testing.T) {
	const rows = 4 * 6
	a1, _ := newLoadedRAID5(t, 4, rows, 37)
	a2, _ := newLoadedRAID5(t, 4, rows, 37) // same seed, same contents
	m1, err := NewOnlineMigrator(a1, rows)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewOnlineMigrator(a2, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.SetParallelism(3); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*OnlineMigrator{m1, m2} {
		if err := m.Start(); err != nil {
			t.Fatal(err)
		}
		if err := m.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	buf1 := make([]byte, 32)
	buf2 := make([]byte, 32)
	for d := 0; d < 5; d++ {
		for b := int64(0); b < rows; b++ {
			if err := a1.Disks().Disk(d).Read(b, buf1); err != nil {
				t.Fatal(err)
			}
			if err := a2.Disks().Disk(d).Read(b, buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf1, buf2) {
				t.Fatalf("disk %d block %d differs between serial and parallel conversion", d, b)
			}
		}
	}
}

// TestOnlineMigrationRightLayouts: the paper's Fig. 7 — right-oriented
// RAID-5 arrays migrate with the mirrored Code 5-6 orientation, parities in
// place.
func TestOnlineMigrationRightLayouts(t *testing.T) {
	for _, l := range []raid5.Layout{raid5.RightAsymmetric, raid5.RightSymmetric} {
		const rows = 16
		a, err := raid5.New(4, 32, l)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(41))
		want := make(map[int64][]byte)
		for L := int64(0); L < rows*3; L++ {
			b := make([]byte, 32)
			r.Read(b)
			want[L] = b
			if err := a.WriteBlock(L, b); err != nil {
				t.Fatal(err)
			}
		}
		mig, err := NewOnlineMigrator(a, rows)
		if err != nil {
			t.Fatal(err)
		}
		if mig.Code().Orientation() != core.Right {
			t.Fatalf("%v: orientation %v, want Right", l, mig.Code().Orientation())
		}
		if err := mig.Start(); err != nil {
			t.Fatal(err)
		}
		// A few writes mid-flight exercise the right-oriented diagonal
		// update path.
		for L := int64(0); L < 12; L += 4 {
			b := make([]byte, 32)
			r.Read(b)
			if err := mig.Write(L, b); err != nil {
				t.Fatal(err)
			}
			want[L] = b
		}
		if err := mig.Wait(); err != nil {
			t.Fatal(err)
		}
		verifyConverted(t, mig, want, 4, l.String())
	}
}

// TestCancelMidMigrationLeavesResumableState: a context-cancelled migration
// must stop promptly, keep every application block intact, and leave the
// array resumable — a fresh migrator resuming from the watermark completes
// the conversion to a fully consistent RAID-6.
func TestCancelMidMigrationLeavesResumableState(t *testing.T) {
	const m, stripes = 4, 32
	rows := int64(m * stripes)
	a, want := newLoadedRAID5(t, m, rows, 23)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	mig.SetThrottle(500 * time.Microsecond)

	// Cancel from the progress callback once a few stripes are through, so
	// the cancellation always lands mid-migration.
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	mig.SetProgressFunc(func(done, total int64) {
		if done >= 3 {
			once.Do(cancel)
		}
	})
	if err := mig.StartContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	converted, total := mig.Progress()
	if converted < 3 || converted >= total {
		t.Fatalf("cancelled migration converted %d of %d stripes; want mid-migration", converted, total)
	}
	if _, err := mig.Result(); err == nil {
		t.Fatal("Result on a cancelled migration should fail")
	}

	// The data layer is untouched: every block still reads back through the
	// RAID-5 (and thus through a resumed migrator).
	buf := make([]byte, 32)
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatalf("read %d after cancel: %v", L, err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d corrupted by cancelled migration", L)
		}
	}
	// Every stripe below the watermark is already a consistent Code 5-6
	// stripe (the new disk's diagonal parities are in place).
	code, err := core.NewOriented(m+1, core.Left)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := raid6.Wrap(code, a.Disks())
	if err != nil {
		t.Fatal(err)
	}
	for st := int64(0); st < converted; st++ {
		ok, err := r6.VerifyStripe(st)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("converted stripe %d inconsistent after cancel", st)
		}
	}

	// Resume from the watermark with a fresh migrator and finish.
	mig2, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	if err := mig2.ResumeFrom(converted); err != nil {
		t.Fatal(err)
	}
	if err := mig2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := mig2.Wait(); err != nil {
		t.Fatal(err)
	}
	verifyConverted(t, mig2, want, stripes, "resume after cancel")
}

// TestStartContextPreCancelled: starting with an already-cancelled context
// converts nothing and reports the context error.
func TestStartContextPreCancelled(t *testing.T) {
	const rows = 16
	a, want := newLoadedRAID5(t, 4, rows, 24)
	mig, err := NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	mig.SetThrottle(time.Millisecond) // ensure the watcher beats the workers
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := mig.StartContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	// Data still intact.
	buf := make([]byte, 32)
	for L, w := range want {
		if err := a.ReadBlock(L, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w) {
			t.Fatalf("block %d corrupted", L)
		}
	}
}
