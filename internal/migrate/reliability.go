package migrate

import (
	"code56/internal/layout"
)

// ReliabilityGrade is the paper's Table VI scale for the risk a conversion
// approach poses to the data while the conversion is in flight.
type ReliabilityGrade int

// Grades of Table VI.
const (
	// ReliabilityLow: some step of the conversion leaves data unprotected
	// — a single disk failure at that moment loses data (the RAID-0
	// intermediate of the degrade/upgrade path).
	ReliabilityLow ReliabilityGrade = iota
	// ReliabilityMedium: data stays recoverable throughout, but parity
	// blocks are relocated in flight ("errors may occur when old parity
	// blocks are migrated").
	ReliabilityMedium
	// ReliabilityHigh: data stays recoverable and no parity ever moves
	// (old parities retained in place until the conversion completes).
	ReliabilityHigh
)

// String returns the paper's spelling.
func (g ReliabilityGrade) String() string {
	switch g {
	case ReliabilityLow:
		return "Low"
	case ReliabilityMedium:
		return "Medium"
	case ReliabilityHigh:
		return "High"
	default:
		return "?"
	}
}

// Reliability is the measured in-flight protection of one conversion plan
// (the paper's Table VI, derived rather than asserted).
type Reliability struct {
	// SingleFailureSafe reports whether, after every operation of the
	// conversion, every source data block would survive the failure of
	// any single disk.
	SingleFailureSafe bool
	// UnsafeSteps counts (op index, failed column) combinations that
	// would lose data.
	UnsafeSteps int
	// ParityMoves counts parity blocks relocated in flight.
	ParityMoves int
	// Grade is the Table VI classification derived from the above.
	Grade ReliabilityGrade
}

// protChain is one usable protection relation during conversion: the XOR of
// Cells is zero (with invalidated/hole cells treated per their semantics at
// the time the chain is usable).
type protChain struct {
	cells []layout.Coord
}

// ReliabilityProfile replays the plan symbolically and measures the
// conversion window's fault tolerance. Analysis runs on the first stripe of
// the period (the windows are per-stripe; unconverted stripes are ordinary
// RAID-5 and finished stripes full RAID-6).
func (p *Plan) ReliabilityProfile() Reliability {
	const stripe = 0
	ov := buildOverlay(p.Conv, stripe)
	g := p.Conv.Code.Geometry()

	// Real (content-bearing) source cells and the initial protection:
	// one RAID-5 row chain per absorbed source row.
	dataCells := make(map[layout.Coord]bool)
	for r, row := range ov.Class {
		for j, cl := range row {
			if cl == OldData {
				dataCells[layout.Coord{Row: r, Col: j}] = true
			}
		}
	}
	chains := make(map[int]protChain)
	next := 0
	parityOf := make(map[layout.Coord]int) // live parity cell -> chain
	for i, r := range ov.DataRows {
		pc := layout.Coord{Row: r, Col: ov.OldParityCol[i]}
		cells := []layout.Coord{pc}
		for j, cl := range ov.Class[r] {
			if cl == OldData {
				cells = append(cells, layout.Coord{Row: r, Col: j})
			}
		}
		chains[next] = protChain{cells: cells}
		parityOf[pc] = next
		next++
	}

	rel := Reliability{SingleFailureSafe: true, ParityMoves: p.Migrated}

	// check evaluates whether all data cells survive any single column
	// failure under the current chain set.
	check := func() {
		for col := p.Virtual; col < g.Cols; col++ {
			if !recoverableAfterColumnLoss(g, chains, dataCells, col) {
				rel.SingleFailureSafe = false
				rel.UnsafeSteps++
			}
		}
	}

	check()
	for _, op := range p.Ops {
		if op.Stripe != stripe {
			continue
		}
		switch op.Kind {
		case OpReuse:
			// The old parity doubles as the new horizontal parity;
			// protection unchanged.
		case OpInvalidate:
			// The physical NULL write: if the cell still anchors a
			// protection chain, that chain dies now.
			if id, ok := parityOf[op.Cell]; ok {
				delete(chains, id)
				delete(parityOf, op.Cell)
			}
		case OpMigrate:
			// The parity value moves; its chain follows the new location.
			if id, ok := parityOf[op.From]; ok {
				delete(parityOf, op.From)
				ch := chains[id]
				for k, c := range ch.cells {
					if c == op.From {
						ch.cells[k] = op.Cell
					}
				}
				chains[id] = ch
				parityOf[op.Cell] = id
			}
		case OpGenerate:
			// Writing the new parity may overwrite a cell anchoring an
			// old chain (HDP's anti-diagonal) — that chain dies...
			if id, ok := parityOf[op.Cell]; ok {
				delete(chains, id)
				delete(parityOf, op.Cell)
			}
			// ...and a new protection chain becomes usable: the parity
			// plus its contentful contributors.
			cells := append([]layout.Coord{op.Cell}, op.Contribs...)
			chains[next] = protChain{cells: cells}
			parityOf[op.Cell] = next
			next++
		}
		check()
	}

	switch {
	case !rel.SingleFailureSafe:
		rel.Grade = ReliabilityLow
	case rel.ParityMoves > 0:
		rel.Grade = ReliabilityMedium
	default:
		rel.Grade = ReliabilityHigh
	}
	return rel
}

// recoverableAfterColumnLoss checks, by peeling over the usable protection
// chains, whether every data cell in the failed column can be rebuilt.
func recoverableAfterColumnLoss(g layout.Geometry, chains map[int]protChain, dataCells map[layout.Coord]bool, col int) bool {
	lost := make(map[layout.Coord]bool)
	needed := 0
	for c := range dataCells {
		if c.Col == col {
			lost[c] = true
			needed++
		}
	}
	if needed == 0 {
		// Only parity (or nothing) on this column: data is safe.
		return true
	}
	// Every cell of the failed column is unreadable, including parities.
	for r := 0; r < g.Rows; r++ {
		lost[layout.Coord{Row: r, Col: col}] = true
	}
	recovered := 0
	for changed := true; changed && recovered < needed; {
		changed = false
		for _, ch := range chains {
			missing := 0
			var miss layout.Coord
			for _, c := range ch.cells {
				if lost[c] {
					missing++
					miss = c
				}
			}
			if missing == 1 {
				delete(lost, miss)
				if dataCells[miss] {
					recovered++
				}
				changed = true
			}
		}
	}
	return recovered == needed
}
