package migrate

import (
	"code56/internal/codes/evenodd"
	"code56/internal/codes/hcode"
	"code56/internal/codes/hdp"
	"code56/internal/codes/pcode"
	"code56/internal/codes/rdp"
	"code56/internal/codes/xcode"
	"code56/internal/layout"
	"code56/internal/raid5"
)

// horizontalApproaches mirrors the paper's §V-A methodology: EVENODD, RDP
// and H-Code convert through an intermediate RAID-0 or RAID-4; the vertical
// codes and Code 5-6 convert directly.
var horizontalApproaches = []Approach{ViaRAID0, ViaRAID4}

// conv builds a conversion with the paper's default left-asymmetric source.
func conv(m int, code layout.Code, a Approach) Conversion {
	return Conversion{M: m, SourceLayout: raid5.LeftAsymmetric, Code: code, Approach: a}
}

// StandardConversions returns the paper's §V-A comparison set for a target
// RAID-6 of n disks: every code whose geometry yields n disks, paired with
// the approaches the paper evaluates it under. Supported n: 5, 6, 7 (the
// values of the paper's Figures 9–17 and Table IV).
func StandardConversions(n int) []Conversion {
	var out []Conversion
	add := func(c Conversion) { out = append(out, c) }

	// Horizontal codes (via RAID-0 / RAID-4): disks added, M = data cols.
	if p := n - 2; layout.IsPrime(p) && p >= 3 { // EVENODD: n = p+2, M = p
		for _, a := range horizontalApproaches {
			add(conv(p, evenodd.MustNew(p), a))
		}
	}
	if p := n - 1; layout.IsPrime(p) && p >= 3 { // RDP: n = p+1, M = p-1
		for _, a := range horizontalApproaches {
			add(conv(p-1, rdp.MustNew(p), a))
		}
	}
	if p := n - 1; layout.IsPrime(p) && p >= 3 { // H-Code: n = p+1, M = p-1
		for _, a := range horizontalApproaches {
			add(conv(p-1, hcode.MustNew(p), a))
		}
	}

	// Vertical codes (direct, in place).
	if p := n; layout.IsPrime(p) && p >= 5 { // X-Code: n = p, M = p
		add(conv(p, xcode.MustNew(p), Direct))
	}
	if p := n + 1; layout.IsPrime(p) && p >= 5 { // P-Code: n = p-1, M = p-1
		add(conv(p-1, pcode.MustNew(p, pcode.VariantPMinus1), Direct))
	}
	if p := n; layout.IsPrime(p) && p >= 5 { // P-Code p-disk variant: n = p, M = p
		add(conv(p, pcode.MustNew(p, pcode.VariantP), Direct))
	}
	if p := n + 1; layout.IsPrime(p) && p >= 5 { // HDP: n = p-1, M = p-1
		add(conv(p-1, hdp.MustNew(p), Direct))
	}

	// Code 5-6: M = n-1, one disk added; where n is not prime the
	// virtual-disk extension pads the geometry (§IV-B2).
	if c56, _, err := VirtualConversion(n-1, raid5.LeftAsymmetric); err == nil {
		add(c56)
	}
	return out
}

// BestPlans groups StandardConversions(n) by code and keeps, for each code,
// the plan whose conversion time (NLB or LB per the flag) is smallest —
// the paper's "best conversion approach" selection for Table IV.
func BestPlans(n int, loadBalanced bool) (map[string]*Plan, error) {
	best := make(map[string]*Plan)
	for _, c := range StandardConversions(n) {
		p, err := NewPlan(c)
		if err != nil {
			return nil, err
		}
		name := c.Code.Name()
		cur, ok := best[name]
		if !ok {
			best[name] = p
			continue
		}
		mNew, mCur := p.Metrics(), cur.Metrics()
		tNew, tCur := mNew.TimeNLB, mCur.TimeNLB
		if loadBalanced {
			tNew, tCur = mNew.TimeLB, mCur.TimeLB
		}
		if tNew < tCur {
			best[name] = p
		}
	}
	return best, nil
}
