package migrate

import (
	"math"
	"strings"
	"testing"

	"code56/internal/core"
	"code56/internal/raid5"
)

func mustPlan(t *testing.T, c Conversion) *Plan {
	t.Helper()
	p, err := NewPlan(c)
	if err != nil {
		t.Fatalf("%s: %v", c.Label(), err)
	}
	return p
}

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestCode56PaperExample reproduces the paper's worked example (§V-A):
// RAID-5→RAID-6(Code 5-6, 4, 5): invalid, migration and extra-space ratios
// are zero; new parity ratio 1/3; write I/Os B/3; total I/Os 4B/3;
// computation cost 2B/3; conversion time B·Te/3.
func TestCode56PaperExample(t *testing.T) {
	p := mustPlan(t, conv(4, core.MustNew(5), Direct))
	m := p.Metrics()
	if m.InvalidParityRatio != 0 || m.MigrationRatio != 0 || m.ExtraSpaceRatio != 0 {
		t.Errorf("invalid/migration/extra = %v/%v/%v, want 0/0/0",
			m.InvalidParityRatio, m.MigrationRatio, m.ExtraSpaceRatio)
	}
	if !approxEq(m.NewParityRatio, 1.0/3) {
		t.Errorf("new parity ratio %v, want 1/3", m.NewParityRatio)
	}
	if !approxEq(m.WriteRatio, 1.0/3) {
		t.Errorf("write ratio %v, want 1/3", m.WriteRatio)
	}
	if !approxEq(m.ReadRatio, 1.0) {
		t.Errorf("read ratio %v, want 1 (every data block read once)", m.ReadRatio)
	}
	if !approxEq(m.TotalIORatio, 4.0/3) {
		t.Errorf("total I/O ratio %v, want 4/3", m.TotalIORatio)
	}
	if !approxEq(m.XORRatio, 2.0/3) {
		t.Errorf("XOR ratio %v, want 2/3", m.XORRatio)
	}
	if !approxEq(m.TimeNLB, 1.0/3) {
		t.Errorf("NLB time %v, want 1/3", m.TimeNLB)
	}
	if p.Reused != 4 || p.Generated != 4 {
		t.Errorf("reused/generated = %d/%d, want 4/4 per stripe", p.Reused, p.Generated)
	}
}

// TestCode56GeneralFormulas checks Code 5-6's closed-form conversion costs
// for several primes: new parity ratio 1/(p-2), total I/O (p-1)/(p-2),
// XORs (p-3)/(p-2), NLB time 1/(p-2).
func TestCode56GeneralFormulas(t *testing.T) {
	for _, p := range []int{5, 7, 11, 13} {
		pl := mustPlan(t, conv(p-1, core.MustNew(p), Direct))
		m := pl.Metrics()
		d := float64(p - 2)
		if !approxEq(m.NewParityRatio, 1/d) {
			t.Errorf("p=%d: new parity ratio %v, want %v", p, m.NewParityRatio, 1/d)
		}
		if !approxEq(m.TotalIORatio, float64(p-1)/d) {
			t.Errorf("p=%d: total I/O %v, want %v", p, m.TotalIORatio, float64(p-1)/d)
		}
		if !approxEq(m.XORRatio, float64(p-3)/d) {
			t.Errorf("p=%d: XOR ratio %v, want %v", p, m.XORRatio, float64(p-3)/d)
		}
		if !approxEq(m.TimeNLB, 1/d) {
			t.Errorf("p=%d: NLB time %v, want %v", p, m.TimeNLB, 1/d)
		}
		if m.InvalidParityRatio != 0 || m.MigrationRatio != 0 || m.ExtraSpaceRatio != 0 {
			t.Errorf("p=%d: nonzero invalid/migrate/extra ratios", p)
		}
	}
}

// TestRAID0PaperExample reproduces Fig. 1(a)'s accounting:
// RAID-5→RAID-0→RAID-6(RDP,4,6): 12 data blocks, 4 invalidated parities,
// 8 new parities, 12 write I/Os (the paper: "8+4=12").
func TestRAID0PaperExample(t *testing.T) {
	cs := StandardConversions(6)
	var pl *Plan
	for _, c := range cs {
		if c.Code.Name() == "rdp" && c.Approach == ViaRAID0 {
			pl = mustPlan(t, c)
		}
	}
	if pl == nil {
		t.Fatal("RDP via RAID-0 not in standard set for n=6")
	}
	perStripe := pl.DataBlocks / pl.Period
	if perStripe != 12 {
		t.Fatalf("data blocks per stripe = %d, want 12", perStripe)
	}
	m := pl.Metrics()
	if !approxEq(m.InvalidParityRatio, 1.0/3) {
		t.Errorf("invalid ratio %v, want 1/3", m.InvalidParityRatio)
	}
	if !approxEq(m.NewParityRatio, 2.0/3) {
		t.Errorf("new parity ratio %v, want 2/3", m.NewParityRatio)
	}
	if !approxEq(m.WriteRatio, 1.0) {
		t.Errorf("write ratio %v, want 1 (12 writes per 12 data)", m.WriteRatio)
	}
	if m.MigrationRatio != 0 {
		t.Errorf("migration ratio %v, want 0", m.MigrationRatio)
	}
}

// TestRAID4RDP checks Fig. 1(b)'s structure: migration ratio 1/3 (4 old
// parities per 12 data), only diagonal parities generated (ratio 1/3), no
// invalidation.
func TestRAID4RDP(t *testing.T) {
	for _, c := range StandardConversions(6) {
		if c.Code.Name() != "rdp" || c.Approach != ViaRAID4 {
			continue
		}
		m := mustPlan(t, c).Metrics()
		if !approxEq(m.MigrationRatio, 1.0/3) {
			t.Errorf("migration ratio %v, want 1/3", m.MigrationRatio)
		}
		if !approxEq(m.NewParityRatio, 1.0/3) {
			t.Errorf("new parity ratio %v, want 1/3 (diagonals only)", m.NewParityRatio)
		}
		if m.InvalidParityRatio != 0 {
			t.Errorf("invalid ratio %v, want 0", m.InvalidParityRatio)
		}
		return
	}
	t.Fatal("RDP via RAID-4 not found")
}

// TestXCodeExtraSpace checks Fig. 1(c)/Fig. 12: direct conversion to X-Code
// reserves 2/p of each disk (40% at p=5), and invalidates all old parities.
func TestXCodeExtraSpace(t *testing.T) {
	for _, c := range StandardConversions(5) {
		if c.Code.Name() != "xcode" {
			continue
		}
		m := mustPlan(t, c).Metrics()
		if !approxEq(m.ExtraSpaceRatio, 0.4) {
			t.Errorf("extra space %v, want 0.40", m.ExtraSpaceRatio)
		}
		if !approxEq(m.InvalidParityRatio, 0.25) {
			t.Errorf("invalid ratio %v, want 1/4 (m=5 disks)", m.InvalidParityRatio)
		}
		return
	}
	t.Fatal("X-Code not in standard set for n=5")
}

// TestCode56WinsEverywhere asserts the paper's headline shape: at every
// compared n, Code 5-6's direct conversion has the lowest new-parity ratio,
// write I/Os, total I/Os and conversion time among every code's best
// approach, and is the only scheme with zero invalidation+migration.
func TestCode56WinsEverywhere(t *testing.T) {
	for _, n := range []int{5, 6, 7} {
		for _, lb := range []bool{false, true} {
			best, err := BestPlans(n, lb)
			if err != nil {
				t.Fatal(err)
			}
			c56, ok := best["code56"]
			if !ok {
				t.Fatalf("n=%d: Code 5-6 missing", n)
			}
			m56 := c56.Metrics()
			for name, pl := range best {
				if name == "code56" {
					continue
				}
				m := pl.Metrics()
				if m.NewParityRatio < m56.NewParityRatio {
					t.Errorf("n=%d: %s new-parity ratio %.3f beats Code 5-6's %.3f", n, name, m.NewParityRatio, m56.NewParityRatio)
				}
				if m.TotalIORatio < m56.TotalIORatio {
					t.Errorf("n=%d: %s total I/O %.3f beats Code 5-6's %.3f", n, name, m.TotalIORatio, m56.TotalIORatio)
				}
				if m.WriteRatio < m56.WriteRatio {
					t.Errorf("n=%d: %s writes %.3f beat Code 5-6's %.3f", n, name, m.WriteRatio, m56.WriteRatio)
				}
				time56, timeOther := m56.TimeNLB, m.TimeNLB
				if lb {
					time56, timeOther = m56.TimeLB, m.TimeLB
				}
				// Documented deviation (see EXPERIMENTS.md): at non-prime
				// n the virtual-disk geometry concentrates Code 5-6's
				// writes on the single added disk, and HDP edges it under
				// the NLB bottleneck model. Everywhere else Code 5-6 must
				// win outright.
				if name == "hdp" && !lb && n == 6 {
					continue
				}
				if timeOther < time56 {
					t.Errorf("n=%d lb=%v: %s time %.3f beats Code 5-6's %.3f", n, lb, name, timeOther, time56)
				}
				if m.InvalidParityRatio+m.MigrationRatio <= 0 {
					t.Errorf("n=%d: %s shows zero parity-handling cost; only Code 5-6 should", n, name)
				}
			}
		}
	}
}

// TestStandardConversionSetShape checks the §V-A pairing: horizontal codes
// get two approaches, vertical codes get direct only.
func TestStandardConversionSetShape(t *testing.T) {
	byName := map[string][]Approach{}
	for _, n := range []int{5, 6, 7} {
		for _, c := range StandardConversions(n) {
			byName[c.Code.Name()] = append(byName[c.Code.Name()], c.Approach)
			if c.N() != n {
				t.Errorf("conversion %s yields %d disks, want %d", c.Label(), c.N(), n)
			}
			if err := c.Validate(); err != nil {
				t.Errorf("%s: %v", c.Label(), err)
			}
		}
	}
	for _, name := range []string{"evenodd", "rdp", "hcode"} {
		for _, a := range byName[name] {
			if a == Direct {
				t.Errorf("%s paired with direct conversion; paper uses intermediate approaches", name)
			}
		}
	}
	for _, name := range []string{"xcode", "pcode", "pcode-p", "hdp", "code56"} {
		for _, a := range byName[name] {
			if a != Direct {
				t.Errorf("%s paired with %v; paper uses direct conversion", name, a)
			}
		}
	}
}

func TestValidateRejectsBadConversions(t *testing.T) {
	if err := (Conversion{M: 2, Code: core.MustNew(5), Approach: Direct}).Validate(); err == nil {
		t.Error("M=2 accepted")
	}
	if err := (Conversion{M: 4, Code: nil, Approach: Direct}).Validate(); err == nil {
		t.Error("nil code accepted")
	}
	if err := (Conversion{M: 6, Code: core.MustNew(5), Approach: Direct}).Validate(); err == nil {
		t.Error("M larger than target accepted")
	}
	// A RAID-0/4 approach needs added disks.
	if err := (Conversion{M: 5, SourceLayout: raid5.LeftAsymmetric, Code: core.MustNew(5), Approach: ViaRAID0}).Validate(); err == nil {
		t.Error("via-RAID0 without added disks accepted")
	}
}

// TestRotationPeriod: Code 5-6 realigns every stripe (period 1); EVENODD at
// p=5 absorbs 4 rows per stripe over 5 disks (period 5).
func TestRotationPeriod(t *testing.T) {
	if got := conv(4, core.MustNew(5), Direct).RotationPeriod(); got != 1 {
		t.Errorf("code56 period %d, want 1", got)
	}
	for _, c := range StandardConversions(7) {
		if c.Code.Name() == "evenodd" {
			if got := c.RotationPeriod(); got != 5 {
				t.Errorf("evenodd period %d, want 5", got)
			}
		}
	}
}

// TestPlanTotalsMatchPhaseIO: the aggregate helpers agree with the
// per-phase tables.
func TestPlanTotalsMatchPhaseIO(t *testing.T) {
	for _, c := range StandardConversions(6) {
		p := mustPlan(t, c)
		r, w := 0, 0
		for _, ph := range p.PhaseIO {
			for j := range ph.Reads {
				r += ph.Reads[j]
				w += ph.Writes[j]
			}
		}
		if p.TotalReads() != r || p.TotalWrites() != w {
			t.Errorf("%s: totals %d/%d vs phase sums %d/%d", c.Label(), p.TotalReads(), p.TotalWrites(), r, w)
		}
		// Op counts reconcile with the aggregates.
		var reuse, inval, mig, gen int
		for _, op := range p.Ops {
			switch op.Kind {
			case OpReuse:
				reuse++
			case OpInvalidate:
				inval++
			case OpMigrate:
				mig++
			case OpGenerate:
				gen++
			}
		}
		if reuse != p.Reused || mig != p.Migrated || gen != p.Generated {
			t.Errorf("%s: op counts r%d/m%d/g%d vs aggregates r%d/m%d/g%d",
				c.Label(), reuse, mig, gen, p.Reused, p.Migrated, p.Generated)
		}
		if inval > p.Invalidated {
			t.Errorf("%s: more NULL writes (%d) than invalidated parities (%d)", c.Label(), inval, p.Invalidated)
		}
	}
}

// TestOverlayClassification spot-checks the overlay builder on the
// conversions whose shapes the paper describes explicitly.
func TestOverlayClassification(t *testing.T) {
	// Code 5-6 m=4: anti-diagonal old parities, new last column, no
	// reserved cells.
	c := conv(4, core.MustNew(5), Direct)
	ov := buildOverlay(c, 0)
	if len(ov.DataRows) != 4 {
		t.Fatalf("code56 data rows %d, want 4", len(ov.DataRows))
	}
	for i, r := range ov.DataRows {
		if ov.OldParityCol[i] != 3-i {
			t.Errorf("row %d old parity col %d, want %d", r, ov.OldParityCol[i], 3-i)
		}
	}
	if n := ov.Count(Reserved); n != 0 {
		t.Errorf("code56 reserved cells %d, want 0", n)
	}
	if n := ov.Count(NewCell); n != 4 {
		t.Errorf("code56 new cells %d, want 4", n)
	}
	if n := ov.Count(OldData); n != 12 {
		t.Errorf("code56 old data %d, want 12", n)
	}

	// X-Code m=5: two reserved rows (Fig. 1(c)'s 40%).
	for _, cx := range StandardConversions(5) {
		if cx.Code.Name() != "xcode" {
			continue
		}
		ovx := buildOverlay(cx, 0)
		if n := ovx.Count(Reserved); n != 10 {
			t.Errorf("xcode reserved cells %d, want 10 (two rows of five)", n)
		}
		if len(ovx.OldDataCells()) != 12 {
			t.Errorf("xcode old data %d, want 12", len(ovx.OldDataCells()))
		}
	}
}

// TestReliabilityProfileDirectly exercises the profiler on hand-picked
// plans (the analysis-level Table VI test covers the matrix).
func TestReliabilityProfileDirectly(t *testing.T) {
	p := mustPlan(t, conv(4, core.MustNew(5), Direct))
	rel := p.ReliabilityProfile()
	if !rel.SingleFailureSafe || rel.Grade != ReliabilityHigh || rel.ParityMoves != 0 {
		t.Errorf("code56 direct reliability %+v, want safe/High/0 moves", rel)
	}
	for _, c := range StandardConversions(6) {
		if c.Code.Name() == "rdp" && c.Approach == ViaRAID0 {
			rel := mustPlan(t, c).ReliabilityProfile()
			if rel.SingleFailureSafe || rel.Grade != ReliabilityLow || rel.UnsafeSteps == 0 {
				t.Errorf("rdp via-raid0 reliability %+v, want unsafe/Low", rel)
			}
		}
	}
	for _, g := range []ReliabilityGrade{ReliabilityLow, ReliabilityMedium, ReliabilityHigh, ReliabilityGrade(9)} {
		if g.String() == "" {
			t.Error("empty grade string")
		}
	}
}

// TestRightLayoutPlansMatch: right-symmetric and right-asymmetric sources
// share parity positions, so their Code 5-6 (Right) conversion plans carry
// identical metrics — and match the left-oriented baseline (Fig. 7).
func TestRightLayoutPlansMatch(t *testing.T) {
	right, err := core.NewOriented(5, core.Right)
	if err != nil {
		t.Fatal(err)
	}
	ra := mustPlan(t, Conversion{M: 4, SourceLayout: raid5.RightAsymmetric, Code: right, Approach: Direct})
	rs := mustPlan(t, Conversion{M: 4, SourceLayout: raid5.RightSymmetric, Code: right, Approach: Direct})
	left := mustPlan(t, conv(4, core.MustNew(5), Direct))
	if ra.Metrics() != rs.Metrics() {
		t.Error("right-asymmetric and right-symmetric plans differ")
	}
	if ra.Metrics() != left.Metrics() {
		t.Error("right-oriented plan differs from the left-oriented baseline")
	}
	if ra.Reused != 4 || ra.Invalidated != 0 {
		t.Errorf("right-oriented plan reused %d, invalidated %d", ra.Reused, ra.Invalidated)
	}
	ex := NewExecutor(ra, 32, 5)
	if err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if err := ex.VerifyResult(); err != nil {
		t.Fatal(err)
	}
}

// TestDescribe smoke-tests the operator-facing plan dump.
func TestDescribe(t *testing.T) {
	p := mustPlan(t, conv(4, core.MustNew(5), Direct))
	var b strings.Builder
	if err := p.Describe(&b, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"plan:", "reused", "phase 0", "reuse", "more operations"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe output missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := p.Describe(&b, 0); err != nil { // unbounded
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "more operations") {
		t.Error("unbounded describe should not truncate")
	}
}
