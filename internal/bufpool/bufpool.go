// Package bufpool is the repository's block-buffer recycler: a size-classed
// pool of []byte scratch buffers for the per-stripe hot paths (encode,
// degraded read, rebuild, scrub, migration), so steady-state operation
// allocates nothing and the garbage collector never sees stripe churn.
//
// Code 5-6's computation is pure XOR, so once the kernels run at memory
// bandwidth the remaining throughput ceiling is allocator and GC traffic:
// a per-stripe make([]byte, blockSize) on every encode turns a bulk encode
// into a garbage factory. Renting scratch here instead makes the hot loops
// allocation-free (verified by testing.AllocsPerRun regression tests in the
// consuming packages).
//
// Buffers live in power-of-two size classes from 512 B to 16 MiB, each a
// sync.Pool. Get and Put are themselves allocation-free: pooled buffers
// travel inside reused *entry boxes (a bare []byte stored in an interface
// would heap-allocate its slice header on every Put). Requests outside the
// class range fall through to plain make and are dropped on Put.
//
// Telemetry (process-default registry):
//
//	bufpool.hits            Gets served from the pool
//	bufpool.misses          Gets that had to allocate
//	bufpool.bytes_in_flight rented bytes not yet returned (gauge)
package bufpool

import (
	"math/bits"
	"sync"

	"code56/internal/telemetry"
)

const (
	// minClassBits..maxClassBits bound the pooled buffer capacities:
	// 1<<minClassBits = 512 B (smaller scratch is cheaper to allocate than
	// to track) up to 1<<maxClassBits = 16 MiB (covers the largest block
	// sizes the CLIs accept; anything bigger is a one-off, not stripe churn).
	minClassBits = 9
	maxClassBits = 24
	numClasses   = maxClassBits - minClassBits + 1
)

// entry boxes a pooled buffer. Entries themselves are pooled so that
// Get/Put never allocate: storing a raw []byte in a sync.Pool would copy
// its 24-byte header to the heap on every Put.
type entry struct{ buf []byte }

var (
	classes [numClasses]sync.Pool
	entries = sync.Pool{New: func() any { return new(entry) }}

	hits     = telemetry.Default().Counter("bufpool.hits")
	misses   = telemetry.Default().Counter("bufpool.misses")
	inFlight = telemetry.Default().Gauge("bufpool.bytes_in_flight")
)

// classFor returns the index of the smallest class holding n bytes, or -1
// when n is outside the pooled range.
//
//c56:noalloc
func classFor(n int) int {
	if n <= 0 || n > 1<<maxClassBits {
		return -1
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c < minClassBits {
		c = minClassBits
	}
	return c - minClassBits
}

// Get rents a buffer of length n. Its contents are unspecified (rented
// buffers come back dirty) — callers that fill the buffer before reading it
// (disk reads, XorInto, XorMulti) need nothing more; accumulators that XOR
// into it must use GetZero. Return the buffer with Put when done.
//
//c56:noalloc
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		if n <= 0 {
			return nil
		}
		misses.Inc()
		return make([]byte, n) //lint:allow noalloc out-of-class request: the miss path allocates by design
	}
	if e, _ := classes[c].Get().(*entry); e != nil {
		b := e.buf[:n]
		e.buf = nil
		entries.Put(e)
		hits.Inc()
		inFlight.Add(int64(cap(b)))
		return b
	}
	misses.Inc()
	b := make([]byte, n, 1<<(c+minClassBits)) //lint:allow noalloc pool miss mints the class buffer that later Gets recycle
	inFlight.Add(int64(cap(b)))
	return b
}

// GetZero rents a zeroed buffer of length n — for XOR accumulators and
// other read-before-fully-written uses.
//
//c56:noalloc
func GetZero(n int) []byte {
	b := Get(n)
	clear(b)
	return b
}

// Put returns a rented buffer to its size class. Buffers whose capacity is
// not an exact pooled class size (including every buffer Get had to
// allocate beyond the class range) are dropped for the GC; nil is ignored.
// The caller must not retain any reference to b after Put.
//
//c56:noalloc
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minClassBits || c > 1<<maxClassBits || c&(c-1) != 0 {
		return
	}
	inFlight.Add(int64(-c))
	e := entries.Get().(*entry)
	e.buf = b[:c]
	classes[bits.Len(uint(c-1))-minClassBits].Put(e)
}

// InFlight returns the rented bytes not yet returned — the live value of
// the bufpool.bytes_in_flight gauge, exposed for leak assertions in tests.
//
//c56:noalloc
func InFlight() int64 { return inFlight.Value() }
