package bufpool

import (
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	for _, n := range []int{1, 511, 512, 513, 4096, 100000, 1 << 24} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len %d", n, len(b))
		}
		if c := cap(b); c&(c-1) != 0 || c < n {
			t.Fatalf("Get(%d): cap %d is not a power-of-two class", n, c)
		}
		Put(b)
	}
}

func TestGetZeroIsZero(t *testing.T) {
	b := Get(4096)
	for i := range b {
		b[i] = 0xAA
	}
	Put(b)
	z := GetZero(4096)
	defer Put(z)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZero: byte %d = %#x, want 0", i, v)
		}
	}
}

func TestReuseSameClass(t *testing.T) {
	b := Get(4096)
	p := &b[0]
	Put(b)
	// The very next same-class Get should be served from the pool. sync.Pool
	// gives no hard guarantee, but single-goroutine put-then-get on the same
	// P is its happy path; if this flakes, the pool is broken in practice.
	b2 := Get(2500) // rounds up to the same 4096-byte class
	defer Put(b2)
	if &b2[0] != p {
		t.Errorf("Get after Put did not reuse the pooled buffer")
	}
}

func TestOutOfRangeSizes(t *testing.T) {
	if b := Get(0); b != nil {
		t.Errorf("Get(0) = %v, want nil", b)
	}
	if b := Get(-5); b != nil {
		t.Errorf("Get(-5) = %v, want nil", b)
	}
	huge := Get(1<<24 + 1)
	if len(huge) != 1<<24+1 {
		t.Fatalf("oversize Get: len %d", len(huge))
	}
	Put(huge)                   // dropped, must not panic
	Put(nil)                    // ignored, must not panic
	Put(make([]byte, 100, 300)) // non-class cap: dropped, must not panic
}

func TestInFlightBalances(t *testing.T) {
	before := InFlight()
	bufs := make([][]byte, 0, 8)
	for i := 0; i < 8; i++ {
		bufs = append(bufs, Get(8192))
	}
	if got := InFlight(); got != before+8*8192 {
		t.Fatalf("in flight after 8 Gets: %d, want %d", got, before+8*8192)
	}
	for _, b := range bufs {
		Put(b)
	}
	if got := InFlight(); got != before {
		t.Fatalf("in flight after Puts: %d, want %d", got, before)
	}
}

func TestGetPutAllocationFree(t *testing.T) {
	// Warm the class and the entry pool.
	Put(Get(4096))
	if n := testing.AllocsPerRun(200, func() {
		b := Get(4096)
		Put(b)
	}); n != 0 {
		t.Errorf("Get+Put allocates %.1f times per cycle, want 0", n)
	}
}

// TestGetZeroInFlightAllocationFree covers the remaining exported
// //c56:noalloc paths: the zeroing rental and the in-flight gauge read.
func TestGetZeroInFlightAllocationFree(t *testing.T) {
	Put(Get(4096)) // warm the class and the entry pool
	if n := testing.AllocsPerRun(200, func() {
		b := GetZero(4096)
		if InFlight() <= 0 {
			t.Fatal("rented bytes must be in flight")
		}
		Put(b)
	}); n != 0 {
		t.Errorf("GetZero+InFlight+Put allocates %.1f times per cycle, want 0", n)
	}
}
