package obs

import (
	"encoding/json"
	"fmt"

	"code56/internal/migrate"
	"code56/internal/vdisk"
)

// Status is a health checker's verdict, ordered by severity.
type Status int

const (
	// StatusOK: the component is fully operational.
	StatusOK Status = iota
	// StatusDegraded: the component still serves (degraded reads, a paused
	// migration) but has lost redundancy or throughput.
	StatusDegraded
	// StatusFailed: the component cannot do its job.
	StatusFailed
)

// String returns the wire form used in /healthz responses.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDegraded:
		return "degraded"
	default:
		return "failed"
	}
}

// MarshalJSON writes the status as its string form.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the string form back, so clients (and tests) can
// decode /healthz responses into the same types the server serves.
func (s *Status) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	switch str {
	case "ok":
		*s = StatusOK
	case "degraded":
		*s = StatusDegraded
	case "failed":
		*s = StatusFailed
	default:
		return fmt.Errorf("obs: unknown health status %q", str)
	}
	return nil
}

// worse returns the more severe of two statuses.
func worse(a, b Status) Status {
	if b > a {
		return b
	}
	return a
}

// Health is one checker's report.
type Health struct {
	Status Status `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// CheckFunc produces a point-in-time health report. Checkers are invoked
// on every /healthz and /readyz request, so they must be cheap and safe
// for concurrent use.
type CheckFunc func() Health

// ArrayHealth returns a checker reporting the vdisk array's redundancy
// state: ok while every disk accepts I/O, degraded (listing the slots)
// while any disk is fail-stopped. Replace + rebuild returns it to ok.
func ArrayHealth(a *vdisk.Array) CheckFunc {
	return func() Health {
		failed := a.FailedDisks()
		if len(failed) == 0 {
			return Health{Status: StatusOK, Detail: fmt.Sprintf("%d disks healthy", a.Len())}
		}
		return Health{
			Status: StatusDegraded,
			Detail: fmt.Sprintf("%d/%d disks failed: %v", len(failed), a.Len(), failed),
		}
	}
}

// MigratorHealth returns a checker reporting the online migrator's
// lifecycle: running/parked/pending/finished are ok, an explicit pause is
// degraded, and a terminal conversion error is failed.
func MigratorHealth(m *migrate.OnlineMigrator) CheckFunc {
	return func() Health {
		pr := m.ProgressSnapshot()
		detail := fmt.Sprintf("%s: %d/%d stripes", pr.State(), pr.Converted, pr.Total)
		switch pr.State() {
		case "failed":
			return Health{Status: StatusFailed, Detail: detail + ": " + pr.Error}
		case "paused":
			return Health{Status: StatusDegraded, Detail: detail}
		default:
			return Health{Status: StatusOK, Detail: detail}
		}
	}
}

// ProgressSource is anything that can report live migration progress;
// *migrate.OnlineMigrator implements it.
type ProgressSource interface {
	ProgressSnapshot() migrate.ProgressReport
}
