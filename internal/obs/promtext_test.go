package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"code56/internal/telemetry"
)

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"vdisk.reads":          "vdisk_reads",
		"migrate.stripe_rate":  "migrate_stripe_rate",
		"trace.span_us.online": "trace_span_us_online",
		"a-b c":                "a_b_c",
		"9lives":               "_9lives",
		"ok:colon":             "ok:colon",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func renderSnapshot(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := writeProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWritePromCountersAndGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("vdisk.reads").Add(42)
	reg.Gauge("migrate.progress_stripes").Set(7)
	out := renderSnapshot(t, reg)
	for _, want := range []string{
		"# TYPE vdisk_reads counter\n",
		"vdisk_reads 42\n",
		"# TYPE migrate_progress_stripes gauge\n",
		"migrate_progress_stripes 7\n",
		`# HELP vdisk_reads Registry instrument "vdisk.reads".` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromHistogramCumulative(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("obs.test_us", []float64{10, 100})
	for _, v := range []float64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	out := renderSnapshot(t, reg)
	for _, want := range []string{
		"# TYPE obs_test_us histogram\n",
		`obs_test_us_bucket{le="10"} 1` + "\n",
		`obs_test_us_bucket{le="100"} 2` + "\n",
		`obs_test_us_bucket{le="+Inf"} 4` + "\n",
		"obs_test_us_sum 5555\n",
		"obs_test_us_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromRateFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := reg.Rate("vdisk.io_rate")
	r.Add(9)
	out := renderSnapshot(t, reg)
	for _, want := range []string{
		"# TYPE vdisk_io_rate_total counter\n",
		"vdisk_io_rate_total 9\n",
		"# TYPE vdisk_io_rate_1s gauge\n",
		"# TYPE vdisk_io_rate_10s gauge\n",
		"# TYPE vdisk_io_rate_60s gauge\n",
		"# TYPE vdisk_io_rate_ewma gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromSortedFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("zz.last").Inc()
	reg.Counter("aa.first").Inc()
	reg.Gauge("mm.middle").Set(1)
	out := renderSnapshot(t, reg)
	var fams []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(fams) {
		t.Fatalf("families not sorted: %v", fams)
	}
}

// checkExposition is a small format validator: every non-comment line must
// be "name{labels} value" with a legal metric name and a parseable value,
// every sample must follow its family's # TYPE line, histogram buckets
// must be cumulative and end at le="+Inf" equal to _count. It is the smoke
// parser the acceptance criteria ask for, shared with the server tests.
func checkExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	typed := make(map[string]bool)
	samples := make(map[string]float64)
	var lastCum float64
	var lastHist string
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if !nameRe.MatchString(f[2]) {
				t.Fatalf("line %d: illegal metric name %q", ln+1, f[2])
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, f[3])
			}
			typed[f[2]] = true
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, m[3], err)
		}
		base := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(m[1], suffix); fam != m[1] && typed[fam] {
				base = fam
			}
		}
		if !typed[base] {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, m[1])
		}
		if strings.HasSuffix(m[1], "_bucket") {
			hist := strings.TrimSuffix(m[1], "_bucket")
			if hist != lastHist {
				lastHist, lastCum = hist, 0
			}
			if v < lastCum {
				t.Fatalf("line %d: non-cumulative bucket: %q", ln+1, line)
			}
			lastCum = v
			if m[2] == `{le="+Inf"}` {
				samples[fmt.Sprintf("%s_count?", hist)] = v // matched below
			}
		}
		samples[m[1]+m[2]] = v
	}
	for key, inf := range samples {
		if hist, ok := strings.CutSuffix(key, "_count?"); ok {
			if cnt := samples[hist+"_count"]; cnt != inf {
				t.Fatalf("histogram %s: le=+Inf bucket %g != _count %g", hist, inf, cnt)
			}
		}
	}
	return samples
}

func TestCheckExpositionAcceptsRenderer(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("vdisk.reads").Add(3)
	reg.Gauge("obs.watch_clients").Set(0)
	h := reg.Histogram("trace.span_us.online", []float64{10, 100, 1000})
	h.Observe(7)
	h.Observe(70)
	h.Observe(7000)
	reg.Rate("migrate.stripe_rate").Add(12)
	out := renderSnapshot(t, reg)
	samples := checkExposition(t, out)
	if samples["vdisk_reads"] != 3 {
		t.Fatalf("vdisk_reads = %g, want 3", samples["vdisk_reads"])
	}
	if samples["migrate_stripe_rate_total"] != 12 {
		t.Fatalf("migrate_stripe_rate_total = %g, want 12", samples["migrate_stripe_rate_total"])
	}
	if samples[`trace_span_us_online_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("+Inf bucket = %g, want 3", samples[`trace_span_us_online_bucket{le="+Inf"}`])
	}
}
