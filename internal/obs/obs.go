// Package obs is the live observability plane: a stdlib-only HTTP server
// exposing the telemetry registry and the engines' runtime state while
// they run — the online counterpart of the after-the-fact DumpMetrics
// snapshots and JSONL trace files.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition v0.0.4 of the registry
//	               (histograms as cumulative _bucket/_sum/_count series,
//	               rates as _total + windowed gauges)
//	/metrics.json  the registry snapshot as JSON (DumpMetrics's format)
//	/healthz       aggregated health of the registered checkers
//	               (200 ok / 503 degraded-or-failed, JSON detail)
//	/readyz        readiness: 503 only when a checker reports failed
//	/progress      live ProgressSnapshot of every registered migrator;
//	               ?watch=1 streams one JSON line per interval
//	/debug/pprof/  the runtime profiler (CPU, heap, goroutines, ...)
//
// Every render starts from Registry.Snapshot(), so serialization happens
// with no registry locks held: a stalled scraper can never back-pressure
// the I/O hot paths (see DESIGN.md). The server is what every CLI mounts
// behind its -http flag, and what the future network block service will
// inherit.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"code56/internal/migrate"
	"code56/internal/telemetry"
)

// Server is the observability plane. A nil *Server is inert: every method
// is a no-op, so CLIs can wire registrations unconditionally and only
// construct the server when -http is set.
type Server struct {
	reg *telemetry.Registry
	mux *http.ServeMux

	mu      sync.RWMutex
	checks  []namedCheck  //c56:guardedby mu
	sources []namedSource //c56:guardedby mu

	// quit is closed by Close: active ?watch=1 streams end at their next
	// tick instead of holding a graceful shutdown hostage until every
	// watching client disconnects on its own.
	quit      chan struct{}
	closeOnce sync.Once

	requests *telemetry.Counter // obs.http_requests
	scrapes  *telemetry.Counter // obs.scrapes
	watchers *telemetry.Gauge   // obs.watch_clients
}

type namedCheck struct {
	name string
	fn   CheckFunc
}

type namedSource struct {
	name string
	src  ProgressSource
}

// New returns a server exposing reg (nil selects the process-wide default
// registry). The server's own traffic counters (obs.http_requests,
// obs.scrapes, obs.watch_clients) register into the same registry, so the
// plane observes itself.
func New(reg *telemetry.Registry) *Server {
	s := &Server{
		reg:      reg,
		quit:     make(chan struct{}),
		requests: reg.Counter("obs.http_requests"),
		scrapes:  reg.Counter("obs.scrapes"),
		watchers: reg.Gauge("obs.watch_clients"),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/progress", s.handleProgress)
	// net/http/pprof auto-registers on http.DefaultServeMux (which this
	// server never serves); wire its handlers onto our mux explicitly.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// RegisterHealth adds a named health checker consulted by /healthz and
// /readyz, in registration order. No-op on a nil server or checker.
func (s *Server) RegisterHealth(name string, fn CheckFunc) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks = append(s.checks, namedCheck{name: name, fn: fn})
}

// RegisterProgress adds a named migration progress source served by
// /progress. No-op on a nil server or source.
func (s *Server) RegisterProgress(name string, src ProgressSource) {
	if s == nil || src == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, namedSource{name: name, src: src})
}

// Handle mounts an application handler on the plane's mux, so a service
// (the c56-serve block API) shares one listener with its own /metrics,
// /healthz and /progress endpoints. Patterns follow net/http.ServeMux
// rules; the plane's own endpoints keep their paths. No-op on a nil server
// or handler.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil || h == nil {
		return
	}
	s.mux.Handle(pattern, h)
}

// Close ends the plane's long-lived streams: every active ?watch=1 client
// is released at its next tick. It does not stop an HTTP server wrapping
// the plane — Handle.Shutdown composes the two. Safe to call more than
// once; no-op on a nil server.
func (s *Server) Close() {
	if s == nil {
		return
	}
	s.closeOnce.Do(func() { close(s.quit) })
}

// Handler returns the plane's HTTP handler (also usable under a parent
// mux or in httptest servers).
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serve) }

func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `code56 observability plane
  /metrics       Prometheus text exposition
  /metrics.json  registry snapshot as JSON
  /healthz       aggregated component health
  /readyz        readiness probe
  /progress      live migration progress (?watch=1 streams)
  /debug/pprof/  runtime profiles
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.scrapes.Inc()
	snap := s.reg.Snapshot() // all locks released before the first byte
	w.Header().Set("Content-Type", promContentType)
	_ = writeProm(w, snap)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.WriteJSON(w)
}

// healthReport is the /healthz response body.
type healthReport struct {
	Status Status            `json:"status"`
	Checks map[string]Health `json:"checks,omitempty"`
}

func (s *Server) runChecks() healthReport {
	s.mu.RLock()
	checks := append([]namedCheck(nil), s.checks...)
	s.mu.RUnlock()
	rep := healthReport{Status: StatusOK, Checks: make(map[string]Health, len(checks))}
	for _, c := range checks {
		h := c.fn()
		rep.Checks[c.name] = h
		rep.Status = worse(rep.Status, h.Status)
	}
	return rep
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rep := s.runChecks()
	w.Header().Set("Content-Type", "application/json")
	if rep.Status != StatusOK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	rep := s.runChecks()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if rep.Status == StatusFailed {
		// Degraded components still serve I/O (that is what redundancy is
		// for); only outright failure makes the process unready.
		names := make([]string, 0, len(rep.Checks))
		for name, h := range rep.Checks {
			if h.Status == StatusFailed {
				names = append(names, name+": "+h.Detail)
			}
		}
		sort.Strings(names)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "not ready: %v\n", names)
		return
	}
	fmt.Fprintln(w, "ready")
}

// progressEntry wraps a ProgressReport with its derived state name for the
// wire.
type progressEntry struct {
	migrate.ProgressReport
	State string
}

func (s *Server) progressMap() (map[string]progressEntry, bool) {
	s.mu.RLock()
	sources := append([]namedSource(nil), s.sources...)
	s.mu.RUnlock()
	out := make(map[string]progressEntry, len(sources))
	allDone := len(sources) > 0
	for _, src := range sources {
		pr := src.src.ProgressSnapshot()
		out[src.name] = progressEntry{ProgressReport: pr, State: pr.State()}
		if !pr.Finished {
			allDone = false
		}
	}
	return out, allDone
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("watch") == "" {
		m, _ := s.progressMap()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m)
		return
	}

	// Watch mode: one JSON object per line, flushed every interval, until
	// the client goes away, the plane shuts down, or every registered
	// migration has finished (the final state is always emitted).
	interval := 500 * time.Millisecond
	if raw := r.URL.Query().Get("interval_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil {
			// A malformed interval must not silently become the default:
			// the client asked for a specific cadence and would watch at
			// the wrong one without noticing.
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{
				"error": fmt.Sprintf("interval_ms: %q is not an integer", raw),
			})
			return
		}
		if ms < 20 {
			ms = 20
		}
		if ms > 10000 {
			ms = 10000
		}
		interval = time.Duration(ms) * time.Millisecond
	}
	s.watchers.Add(1)
	defer s.watchers.Add(-1)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		m, done := s.progressMap()
		if err := enc.Encode(m); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.quit:
			return
		case <-tick.C:
		}
	}
}

// Handle is a started plane: the bound listener plus its shutdown. A nil
// *Handle is inert, so callers can defer Close/Drain unconditionally.
type Handle struct {
	srv *Server
	ln  net.Listener
	hs  *http.Server
}

// Addr returns the bound address ("" for a nil handle) — useful with
// ":0" listeners.
func (h *Handle) Addr() string {
	if h == nil {
		return ""
	}
	return h.ln.Addr().String()
}

// Close stops the plane immediately: watch streams are released, the
// listener stops, and active connections are closed without waiting for
// in-flight requests. Use Shutdown or Drain for a graceful exit.
func (h *Handle) Close() error {
	if h == nil {
		return nil
	}
	h.srv.Close()
	return h.hs.Close()
}

// Shutdown stops the plane gracefully: the listener stops accepting,
// active ?watch=1 streams end at their next tick (they would otherwise
// count as in-flight requests forever), and remaining requests — a scrape
// mid-render, a pprof profile mid-capture — get until ctx's deadline to
// finish. When ctx expires first the stragglers are closed hard; the
// context error is returned so callers can tell a drained exit from a
// forced one.
func (h *Handle) Shutdown(ctx context.Context) error {
	if h == nil {
		return nil
	}
	h.srv.Close()
	if err := h.hs.Shutdown(ctx); err != nil {
		_ = h.hs.Close()
		return err
	}
	return nil
}

// drainTimeout bounds how long Drain waits for in-flight requests; long
// enough for any scrape, short enough that a CLI exit never feels hung.
const drainTimeout = 2 * time.Second

// Drain is the CLIs' exit path: Shutdown with a short built-in deadline,
// so `defer handle.Drain()` gives every -http CLI (and c56-serve's signal
// handler) a clean stop without plumbing a context through main.
func (h *Handle) Drain() error {
	if h == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return h.Shutdown(ctx)
}

// Start binds addr and serves the plane in a background goroutine until
// the returned handle is closed.
func (s *Server) Start(addr string) (*Handle, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return s.StartListener(ln), nil
}

// StartListener serves the plane on an already-bound listener — the seam
// for wrapping the listener first (c56-serve caps concurrent connections
// with serve.LimitListener before handing it here).
func (s *Server) StartListener(ln net.Listener) *Handle {
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	return &Handle{srv: s, ln: ln, hs: hs}
}

// Plane is the CLIs' -http implementation: for a non-empty addr it serves
// the default registry's plane and attaches a TimelineSink to the default
// tracer, so every span-instrumented phase gains a trace.span_us.<name>
// histogram for free. An empty addr returns (nil, nil, nil) — the nil
// server and handle are inert, letting callers register and defer
// unconditionally.
func Plane(addr string) (*Server, *Handle, error) {
	if addr == "" {
		return nil, nil, nil
	}
	telemetry.DefaultTracer().AddSink(telemetry.NewTimelineSink(nil))
	s := New(nil)
	h, err := s.Start(addr)
	if err != nil {
		return nil, nil, err
	}
	return s, h, nil
}
