package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"code56/internal/migrate"
	"code56/internal/raid5"
	"code56/internal/telemetry"
)

// newLoadedRAID5 builds a RAID-5 of m disks with rows rows of random data.
func newLoadedRAID5(t *testing.T, m int, rows int64) *raid5.Array {
	t.Helper()
	a, err := raid5.New(m, 32, raid5.LeftAsymmetric)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b := make([]byte, 32)
	for L := int64(0); L < rows*int64(m-1); L++ {
		r.Read(b)
		if err := a.WriteBlock(L, b); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func newTestPlane(t *testing.T, reg *telemetry.Registry) (*Server, *httptest.Server) {
	t.Helper()
	s := New(reg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpointExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("vdisk.reads").Add(11)
	reg.Histogram("migrate.stripe_us", []float64{100, 1000}).Observe(42)
	reg.Rate("migrate.stripe_rate").Add(5)
	_, ts := newTestPlane(t, reg)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, promContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := checkExposition(t, string(body))
	if samples["vdisk_reads"] != 11 {
		t.Fatalf("vdisk_reads = %g, want 11", samples["vdisk_reads"])
	}
	if samples["migrate_stripe_rate_total"] != 5 {
		t.Fatalf("migrate_stripe_rate_total = %g, want 5", samples["migrate_stripe_rate_total"])
	}
	// The plane's self-metrics register into the same registry: this very
	// scrape must appear.
	if samples["obs_scrapes"] < 1 {
		t.Fatalf("obs_scrapes = %g, want >= 1", samples["obs_scrapes"])
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("vdisk.writes").Add(3)
	_, ts := newTestPlane(t, reg)
	code, body := get(t, ts.URL+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Counters["vdisk.writes"] != 3 {
		t.Fatalf("vdisk.writes = %d, want 3", snap.Counters["vdisk.writes"])
	}
}

func TestIndexAndPprof(t *testing.T) {
	_, ts := newTestPlane(t, telemetry.NewRegistry())
	if code, body := get(t, ts.URL+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: status %d body %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", code)
	}
	if code, body := get(t, ts.URL+"/debug/pprof/goroutine?debug=1"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof: status %d", code)
	}
}

// TestHealthzFlipsOnDiskFailure is the acceptance-criteria health check:
// ok -> degraded when a disk fails -> ok again after Replace + rebuild.
func TestHealthzFlipsOnDiskFailure(t *testing.T) {
	const rows = 8
	a := newLoadedRAID5(t, 4, rows)
	s, ts := newTestPlane(t, telemetry.NewRegistry())
	s.RegisterHealth("vdisk", ArrayHealth(a.Disks()))

	getHealth := func() (int, healthReport) {
		t.Helper()
		code, body := get(t, ts.URL+"/healthz")
		var rep healthReport
		if err := json.Unmarshal([]byte(body), &rep); err != nil {
			t.Fatalf("healthz body not JSON: %v\n%s", err, body)
		}
		return code, rep
	}

	if code, rep := getHealth(); code != http.StatusOK || rep.Status != StatusOK {
		t.Fatalf("healthy array: status %d health %v", code, rep)
	}

	a.Disks().Disk(2).Fail()
	code, rep := getHealth()
	if code != http.StatusServiceUnavailable || rep.Status != StatusDegraded {
		t.Fatalf("failed disk: status %d health %v", code, rep)
	}
	if !strings.Contains(rep.Checks["vdisk"].Detail, "[2]") {
		t.Fatalf("degraded detail %q does not name slot 2", rep.Checks["vdisk"].Detail)
	}
	// Degraded is not dead: /readyz must still say ready.
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz during degradation: status %d body %q", code, body)
	}

	a.Disks().Disk(2).Replace()
	if err := a.Rebuild(2, rows); err != nil {
		t.Fatal(err)
	}
	if code, rep := getHealth(); code != http.StatusOK || rep.Status != StatusOK {
		t.Fatalf("after rebuild: status %d health %v", code, rep)
	}
}

func TestReadyzFailsOnFailedStatus(t *testing.T) {
	s, ts := newTestPlane(t, telemetry.NewRegistry())
	s.RegisterHealth("doomed", func() Health {
		return Health{Status: StatusFailed, Detail: "broken"}
	})
	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "doomed") {
		t.Fatalf("readyz: status %d body %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz: status %d, want 503", code)
	}
}

func TestMigratorHealthStates(t *testing.T) {
	a := newLoadedRAID5(t, 4, 8)
	mig, err := migrate.NewOnlineMigrator(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	check := MigratorHealth(mig)
	if h := check(); h.Status != StatusOK || !strings.Contains(h.Detail, "pending") {
		t.Fatalf("pending: %v", h)
	}
	mig.Pause()
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	if h := check(); h.Status != StatusDegraded || !strings.Contains(h.Detail, "paused") {
		t.Fatalf("paused: %v", h)
	}
	mig.Resume()
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	if h := check(); h.Status != StatusOK || !strings.Contains(h.Detail, "finished") {
		t.Fatalf("finished: %v", h)
	}
}

func TestProgressSnapshotEndpoint(t *testing.T) {
	a := newLoadedRAID5(t, 4, 8)
	mig, err := migrate.NewOnlineMigrator(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestPlane(t, telemetry.NewRegistry())
	s.RegisterProgress("r5tor6", mig)

	code, body := get(t, ts.URL+"/progress")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var m map[string]struct {
		Converted, Total int64
		State            string
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("progress body not JSON: %v\n%s", err, body)
	}
	pr, ok := m["r5tor6"]
	if !ok {
		t.Fatalf("progress missing source: %s", body)
	}
	if pr.State != "pending" || pr.Total != 2 {
		t.Fatalf("pending report = %+v", pr)
	}
}

// TestProgressWatchStreams is the acceptance-criteria watch check: a
// throttled migration's /progress?watch=1 stream must show advancing
// watermarks and terminate with the finished state.
func TestProgressWatchStreams(t *testing.T) {
	const rows = 8 * 4 // 8 stripes at p=5
	a := newLoadedRAID5(t, 4, rows)
	mig, err := migrate.NewOnlineMigrator(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	mig.SetThrottle(30 * time.Millisecond) // ~8 ticks of stream per run
	s, ts := newTestPlane(t, telemetry.NewRegistry())
	s.RegisterProgress("r5tor6", mig)
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/progress?watch=1&interval_ms=20")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type entry struct {
		Converted, Total int64
		State            string
	}
	var (
		last      entry
		lines     int
		watermark []int64
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var m map[string]entry
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("stream line %d not JSON: %v\n%s", lines+1, err, sc.Text())
		}
		e, ok := m["r5tor6"]
		if !ok {
			t.Fatalf("stream line %d missing source: %s", lines+1, sc.Text())
		}
		if e.Converted < last.Converted {
			t.Fatalf("watermark went backwards: %d -> %d", last.Converted, e.Converted)
		}
		watermark = append(watermark, e.Converted)
		last = e
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
	if lines < 2 {
		t.Fatalf("watch stream emitted %d lines, want >= 2 (watermarks %v)", lines, watermark)
	}
	if last.State != "finished" || last.Converted != last.Total || last.Total != 8 {
		t.Fatalf("final stream entry = %+v, want finished 8/8", last)
	}
	// "Advancing" means at least one strictly increasing step was observed
	// mid-stream, not just the final jump to done.
	advanced := false
	for i := 1; i < len(watermark); i++ {
		if watermark[i] > watermark[i-1] {
			advanced = true
		}
	}
	if !advanced {
		t.Fatalf("watermark never advanced across stream: %v", watermark)
	}
}

// TestProgressWatchClientDisconnect verifies a dropped watcher ends its
// stream goroutine (the watch_clients gauge returns to zero).
func TestProgressWatchClientDisconnect(t *testing.T) {
	a := newLoadedRAID5(t, 4, 8)
	mig, err := migrate.NewOnlineMigrator(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Never started: the stream would run forever, so only a client
	// disconnect can end it.
	reg := telemetry.NewRegistry()
	s, ts := newTestPlane(t, reg)
	s.RegisterProgress("r5tor6", mig)

	resp, err := http.Get(ts.URL + "/progress?watch=1&interval_ms=20")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	if g := reg.Snapshot().Gauges["obs.watch_clients"]; g != 1 {
		t.Fatalf("obs.watch_clients = %d during stream, want 1", g)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Gauges["obs.watch_clients"] == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("obs.watch_clients did not return to 0 after disconnect")
}

func TestNilServerAndHandleAreInert(t *testing.T) {
	var s *Server
	s.RegisterHealth("x", func() Health { return Health{} })
	s.RegisterProgress("x", nil)
	s.Handle("/v1/", http.NotFoundHandler())
	s.Close()
	var h *Handle
	if h.Addr() != "" {
		t.Fatal("nil handle Addr not empty")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestProgressWatchRejectsMalformedInterval: a non-integer interval_ms is a
// 400 with a JSON error body, not a silent fall-back to the 500 ms default
// (the client asked for a specific cadence and would stream at the wrong
// one without noticing). An absent parameter still selects the default.
func TestProgressWatchRejectsMalformedInterval(t *testing.T) {
	a := newLoadedRAID5(t, 4, 8)
	mig, err := migrate.NewOnlineMigrator(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestPlane(t, telemetry.NewRegistry())
	s.RegisterProgress("r5tor6", mig)

	for _, bad := range []string{"abc", "1.5", "20ms", "-"} {
		resp, err := http.Get(ts.URL + "/progress?watch=1&interval_ms=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("interval_ms=%q: status %d, want 400", bad, resp.StatusCode)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Fatalf("interval_ms=%q: body %q is not a JSON error object (%v)", bad, body, err)
		}
	}

	// Absent parameter: the stream starts (default interval) — finish the
	// migration so the request ends on its own.
	if err := mig.Start(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/progress?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("absent interval_ms: status %d, want 200", resp.StatusCode)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := mig.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownEndsWatchStreams: a graceful Shutdown must not wait for
// watching clients to disconnect — active ?watch=1 streams are ended at
// their next tick and Shutdown returns within its deadline.
func TestShutdownEndsWatchStreams(t *testing.T) {
	a := newLoadedRAID5(t, 4, 8)
	mig, err := migrate.NewOnlineMigrator(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Never started: the watch stream would run forever on its own.
	s := New(telemetry.NewRegistry())
	s.RegisterProgress("r5tor6", mig)
	h, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/progress?watch=1&interval_ms=20", h.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err) // the stream is live
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := h.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v; the watch stream held the drain hostage", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %v, want prompt watch-stream release", elapsed)
	}
	// The stream the server ended reaches EOF (or a closed-connection
	// error) rather than hanging.
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Logf("stream end: %v", err)
	}
}

// TestHandleMountsApplicationHandler: a service handler mounted with
// Handle shares the plane's listener, and its traffic counts in
// obs.http_requests like the plane's own endpoints.
func TestHandleMountsApplicationHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, ts := newTestPlane(t, reg)
	s.Handle("/v1/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "block service")
	}))
	code, body := get(t, ts.URL+"/v1/anything")
	if code != http.StatusOK || !strings.Contains(body, "block service") {
		t.Fatalf("mounted handler: status %d body %q", code, body)
	}
	code, _ = get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("plane endpoint after Handle: status %d", code)
	}
	if n := reg.Snapshot().Counters["obs.http_requests"]; n < 2 {
		t.Fatalf("obs.http_requests = %d, want >= 2", n)
	}
}

func TestStartServesAndCloses(t *testing.T) {
	s := New(telemetry.NewRegistry())
	h, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := h.Addr()
	if addr == "" {
		t.Fatal("empty bound address")
	}
	code, _ := get(t, fmt.Sprintf("http://%s/healthz", addr))
	if code != http.StatusOK {
		t.Fatalf("healthz over Start listener: status %d", code)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("listener still serving after Close")
	}
}

func TestPlaneEmptyAddrIsNoop(t *testing.T) {
	s, h, err := Plane("")
	if err != nil || s != nil || h != nil {
		t.Fatalf("Plane(\"\") = %v %v %v, want all nil", s, h, err)
	}
	s.RegisterHealth("x", func() Health { return Health{} }) // must not panic
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}
