package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"code56/internal/telemetry"
)

// This file renders a telemetry.Snapshot in the Prometheus text exposition
// format, version 0.0.4 — the format every Prometheus-compatible scraper
// (Prometheus, VictoriaMetrics, Grafana Agent, vmagent) ingests natively.
//
// Rendering always starts from Snapshot(): the registry's locks are
// released before a single byte is serialized, so a slow or stalled
// scraper can never block the I/O hot paths recording into the registry
// (see DESIGN.md).
//
// Mapping from registry instruments:
//
//   - counters  -> counter samples (dots in names become underscores:
//     "vdisk.reads" -> vdisk_reads)
//   - gauges    -> gauge samples
//   - histograms-> full histogram families: cumulative <name>_bucket
//     series with le labels ending at le="+Inf", plus <name>_sum and
//     <name>_count
//   - rates     -> a <name>_total counter and gauges for the derived
//     windows: <name>_1s, <name>_10s, <name>_60s, <name>_ewma

// promContentType is the exposition content type scrapers negotiate.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a dotted registry name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], prefixing an underscore when the first rune
// would otherwise be a digit.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value; Prometheus accepts Go's shortest-form
// floats plus the special spellings +Inf/-Inf/NaN (which our instruments
// never produce).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// family is one rendered metric family, ordered by name for deterministic
// scrapes (and stable diffs in tests and CI greps).
type family struct {
	name  string
	lines []string
}

func writeProm(w io.Writer, s telemetry.Snapshot) error {
	fams := make([]family, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms)+5*len(s.Rates))

	add := func(name, typ, orig string, samples ...string) {
		lines := make([]string, 0, 2+len(samples))
		lines = append(lines,
			fmt.Sprintf("# HELP %s Registry instrument %q.", name, orig),
			fmt.Sprintf("# TYPE %s %s", name, typ))
		lines = append(lines, samples...)
		fams = append(fams, family{name: name, lines: lines})
	}

	for name, v := range s.Counters {
		n := promName(name)
		add(n, "counter", name, fmt.Sprintf("%s %d", n, v))
	}
	for name, v := range s.Gauges {
		n := promName(name)
		add(n, "gauge", name, fmt.Sprintf("%s %d", n, v))
	}
	for name, h := range s.Histograms {
		n := promName(name)
		samples := make([]string, 0, len(h.Counts)+2)
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			samples = append(samples, fmt.Sprintf("%s_bucket{le=%q} %d", n, le, cum))
		}
		samples = append(samples,
			fmt.Sprintf("%s_sum %s", n, promFloat(h.Sum)),
			fmt.Sprintf("%s_count %d", n, h.Count))
		add(n, "histogram", name, samples...)
	}
	for name, r := range s.Rates {
		n := promName(name)
		add(n+"_total", "counter", name, fmt.Sprintf("%s_total %d", n, r.Total))
		for _, win := range []struct {
			suffix string
			v      float64
		}{
			{"_1s", r.Rate1s}, {"_10s", r.Rate10s}, {"_60s", r.Rate60s}, {"_ewma", r.EWMA},
		} {
			add(n+win.suffix, "gauge", name, fmt.Sprintf("%s%s %s", n, win.suffix, promFloat(win.v)))
		}
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		for _, l := range f.lines {
			if _, err := fmt.Fprintln(w, l); err != nil {
				return err
			}
		}
	}
	return nil
}
