// Package recovery generalizes the paper's §III-E-4 hybrid single-disk
// recovery (after Xiang et al., SIGMETRICS 2010) to every array code in
// the repository: when one disk fails, each lost element can usually be
// rebuilt through more than one parity chain, and choosing the combination
// that maximizes shared reads minimizes the total blocks fetched — which
// shortens rebuild time (MTTR) and thus raises reliability.
//
// The planner searches the per-element chain choices exhaustively when the
// space is small and by hill climbing otherwise; the resulting plan can be
// executed against a stripe and is verified by tests to equal Code 5-6's
// specialized planner where both apply.
package recovery

import (
	"context"
	"fmt"
	"math"
	"sync"

	"code56/internal/layout"
	"code56/internal/parallel"
	"code56/internal/telemetry"
)

// Plan is a read-minimizing rebuild schedule for one failed column.
type Plan struct {
	// Failed is the failed column.
	Failed int
	// Lost lists the column's cells in rebuild order.
	Lost []layout.Coord
	// ChainOf[i] is the index (into Code.Chains()) of the chain used to
	// rebuild Lost[i].
	ChainOf []int
	// Reads is the number of distinct surviving blocks the plan touches.
	Reads int
	// Candidates is the total number of usable (cell, chain) pairs the
	// planner chose from.
	Candidates int
}

// candidatesFor returns the chains that can rebuild cell c when only
// column `failed` is lost: chains containing c and no other cell of that
// column.
func candidatesFor(code layout.Code, c layout.Coord, failed int) []int {
	var out []int
	for i, ch := range code.Chains() {
		containsC := false
		usable := true
		for _, m := range ch.Members() {
			if m == c {
				containsC = true
				continue
			}
			if m.Col == failed {
				usable = false
				break
			}
		}
		if containsC && usable {
			out = append(out, i)
		}
	}
	return out
}

// readSet accumulates the distinct blocks read for a particular choice.
func readSet(code layout.Code, lost []layout.Coord, choice []int) int {
	read := make(map[layout.Coord]bool)
	for i, c := range lost {
		for _, m := range code.Chains()[choice[i]].Members() {
			if m != c {
				read[m] = true
			}
		}
	}
	return len(read)
}

// exhaustiveLimit bounds the exact search over chain-choice combinations.
const exhaustiveLimit = 1 << 16

// PlanColumn computes a read-minimizing plan for rebuilding column failed.
func PlanColumn(code layout.Code, failed int) (Plan, error) {
	g := code.Geometry()
	if failed < 0 || failed >= g.Cols {
		return Plan{}, fmt.Errorf("recovery: column %d outside 0..%d", failed, g.Cols-1)
	}
	var lost []layout.Coord
	for r := 0; r < g.Rows; r++ {
		lost = append(lost, layout.Coord{Row: r, Col: failed})
	}
	cands := make([][]int, len(lost))
	total := 0
	combos := 1.0
	for i, c := range lost {
		cands[i] = candidatesFor(code, c, failed)
		if len(cands[i]) == 0 {
			return Plan{}, fmt.Errorf("recovery: cell %v has no usable chain — not single-failure recoverable", c)
		}
		total += len(cands[i])
		combos *= float64(len(cands[i]))
	}

	choice := make([]int, len(lost))
	best := make([]int, len(lost))
	bestReads := math.MaxInt

	if combos <= exhaustiveLimit {
		var rec func(i int)
		rec = func(i int) {
			if i == len(lost) {
				if n := readSet(code, lost, choice); n < bestReads {
					bestReads = n
					copy(best, choice)
				}
				return
			}
			for _, ch := range cands[i] {
				choice[i] = ch
				rec(i + 1)
			}
		}
		rec(0)
	} else {
		// Hill climbing from the first-candidate baseline: repeatedly
		// adopt the single-cell change that shrinks the read set most.
		for i := range choice {
			choice[i] = cands[i][0]
		}
		cur := readSet(code, lost, choice)
		for improved := true; improved; {
			improved = false
			for i := range lost {
				orig := choice[i]
				for _, alt := range cands[i] {
					if alt == orig {
						continue
					}
					choice[i] = alt
					if n := readSet(code, lost, choice); n < cur {
						cur = n
						orig = alt
						improved = true
					} else {
						choice[i] = orig
					}
				}
				choice[i] = orig
			}
		}
		bestReads = cur
		copy(best, choice)
	}

	return Plan{Failed: failed, Lost: lost, ChainOf: best, Reads: bestReads, Candidates: total}, nil
}

// ConventionalReads returns the read cost of the baseline strategy: every
// lost element rebuilt through its horizontal-family chain where one
// exists, else the first usable chain (vertical codes).
func ConventionalReads(code layout.Code, failed int) (int, error) {
	g := code.Geometry()
	var lost []layout.Coord
	choice := make([]int, 0, g.Rows)
	for r := 0; r < g.Rows; r++ {
		c := layout.Coord{Row: r, Col: failed}
		cands := candidatesFor(code, c, failed)
		if len(cands) == 0 {
			return 0, fmt.Errorf("recovery: cell %v unrecoverable", c)
		}
		pick := cands[0]
		for _, i := range cands {
			if code.Chains()[i].Kind == layout.ParityH {
				pick = i
				break
			}
		}
		lost = append(lost, c)
		choice = append(choice, pick)
	}
	return readSet(code, lost, choice), nil
}

// Execute rebuilds the failed column of s in place per the plan. The failed
// column's blocks are assumed zeroed. Chains are solved in an order that
// respects dependencies (a chain whose parity is itself lost is solved
// after that parity's own rebuild — cannot happen here since each chain
// avoids the failed column except for its target cell).
func (p Plan) Execute(code layout.Code, s *layout.Stripe) (layout.DecodeStats, error) {
	return p.ExecuteObserved(code, s, nil, nil)
}

// ExecuteObserved is Execute with telemetry: it wraps the rebuild in a
// "recovery.rebuild" span with one event per recovered element (chain used,
// XORs spent) and bumps the recovery.elements_rebuilt / recovery.xors /
// recovery.blocks_read counters. Pass nil for either argument to use the
// process-wide defaults.
func (p Plan) ExecuteObserved(code layout.Code, s *layout.Stripe, reg *telemetry.Registry, tr *telemetry.Tracer) (layout.DecodeStats, error) {
	sp := tr.StartSpan("recovery.rebuild",
		telemetry.A("code", code.Name()),
		telemetry.A("failed_column", p.Failed),
		telemetry.A("elements", len(p.Lost)))
	var st layout.DecodeStats
	chains := code.Chains()
	read := make(map[layout.Coord]bool, 4*len(p.Lost))
	for i, c := range p.Lost {
		ch := chains[p.ChainOf[i]]
		before := st.XORs
		layout.SolveChainTracked(s, ch, c, read, &st)
		sp.Event("recovery.element",
			telemetry.A("row", c.Row),
			telemetry.A("chain", p.ChainOf[i]),
			telemetry.A("xors", st.XORs-before),
			telemetry.A("reads_so_far", len(read)))
	}
	st.BlocksRead = len(read)
	reg.Counter("recovery.elements_rebuilt").Add(int64(len(p.Lost)))
	reg.Counter("recovery.xors").Add(int64(st.XORs))
	reg.Counter("recovery.blocks_read").Add(int64(st.BlocksRead))
	if st.BlocksRead != p.Reads {
		err := fmt.Errorf("recovery: executed %d reads, plan promised %d", st.BlocksRead, p.Reads)
		sp.End(telemetry.A("error", err.Error()))
		return st, err
	}
	sp.End(telemetry.A("reads", st.BlocksRead), telemetry.A("xors", st.XORs))
	return st, nil
}

// ExecuteStripes rebuilds the plan's failed column across many stripes of
// one array concurrently: the plan is computed once per code (chain choices
// do not depend on block contents), and each stripe's rebuild touches only
// that stripe's blocks, so stripes fan out over internal/parallel's pool
// per parallel.WithWorkers (in contiguous cache-budget batches, see
// parallel.ForEachBatch / WithBatchBytes). Every stripe's failed-column
// blocks are assumed
// zeroed, as for Execute. It returns the aggregated DecodeStats (sums over
// stripes) and stops at the first failing stripe or ctx cancellation.
// Telemetry counters are bumped per stripe exactly as ExecuteObserved does;
// pass nil reg/tr for the process-wide defaults.
func (p Plan) ExecuteStripes(ctx context.Context, code layout.Code, stripes []*layout.Stripe, reg *telemetry.Registry, tr *telemetry.Tracer, opts ...parallel.Option) (layout.DecodeStats, error) {
	var (
		mu    sync.Mutex
		total layout.DecodeStats
	)
	var itemBytes int64
	if len(stripes) > 0 {
		g := stripes[0].Geom
		itemBytes = int64(g.Elements()) * int64(stripes[0].BlockSize)
	}
	err := parallel.ForEachBatch(ctx, int64(len(stripes)), itemBytes, func(i int64) error {
		st, err := p.ExecuteObserved(code, stripes[i], reg, tr)
		if err != nil {
			return fmt.Errorf("recovery: stripe %d: %w", i, err)
		}
		mu.Lock()
		total.XORs += st.XORs
		total.BlocksRead += st.BlocksRead
		total.Recovered += st.Recovered
		mu.Unlock()
		return nil
	}, opts...)
	return total, err
}
